// Ablation — UTRP cost and accuracy as the adversary's communication budget
// c varies (the paper fixes c = 20).
//
// Two questions: (1) how fast does the Eq. (3) frame size grow with c —
// i.e. what does tolerating a chattier adversary cost the honest system;
// (2) does simulated detection stay above alpha across the whole range.
#include <cstdint>

#include "attack/utrp_attack.h"
#include "bench_common.h"
#include "math/frame_optimizer.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const auto opt = bench::parse_figure_options(argc, argv);
  const sim::TrialRunner runner(opt.threads);

  constexpr std::uint64_t kTags = 1000;
  constexpr std::uint64_t kTolerance = 10;
  bench::banner("Ablation: adversary communication budget sweep (n = " +
                std::to_string(kTags) + ", m = " + std::to_string(kTolerance) +
                ", alpha = " + util::format_double(opt.alpha, 2) + ")");

  const auto trp = math::optimize_trp_frame(kTags, kTolerance, opt.alpha);
  std::cout << "TRP reference frame: " << trp.frame_size << " slots\n\n";

  util::Table table({"budget_c", "utrp_f", "overhead_vs_trp", "expected_cprime",
                     "eq3_detection", "simulated_detection"});
  for (const std::uint64_t c : {0u, 5u, 10u, 20u, 40u, 80u, 160u, 320u}) {
    const auto plan = math::optimize_utrp_frame(kTags, kTolerance, opt.alpha, c);
    const hash::SlotHasher hasher;
    const auto result = runner.run_boolean(
        opt.trials, util::derive_seed(opt.seed, c),
        [&](std::uint64_t, util::Rng& rng) {
          tag::TagSet set = tag::TagSet::make_random(kTags, rng);
          const tag::TagSet stolen = set.steal_random(kTolerance + 1, rng);
          return attack::run_utrp_static_model_attack(set.tags(), stolen.tags(),
                                                      hasher, plan.frame_size,
                                                      rng(), c)
              .detected;
        });
    table.begin_row();
    table.add_cell(static_cast<long long>(c));
    table.add_cell(static_cast<long long>(plan.frame_size));
    table.add_cell(static_cast<long long>(plan.frame_size) -
                   static_cast<long long>(trp.frame_size));
    table.add_cell(plan.expected_cprime, 1);
    table.add_cell(plan.predicted_detection, 4);
    table.add_cell(result.proportion(), 4);
  }
  bench::emit(table, opt);
  return 0;
}
