// Tests for the wire layer: codec, messages, links, and full sessions.
#include <gtest/gtest.h>

#include <stdexcept>

#include "protocol/trp.h"
#include "tag/tag_set.h"
#include "util/random.h"
#include "wire/codec.h"
#include "wire/link.h"
#include "wire/messages.h"
#include "wire/session.h"

namespace {

using namespace rfid;
using wire::Decoder;
using wire::Encoder;

// ----------------------------------------------------------------- codec --

TEST(Codec, PrimitiveRoundTrip) {
  Encoder enc;
  enc.put_u8(0xab);
  enc.put_u32(0xdeadbeef);
  enc.put_u64(0x0123456789abcdefULL);
  enc.put_f64(3.14159);
  enc.put_string("hello RFID");

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8(), 0xab);
  EXPECT_EQ(dec.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.get_u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(dec.get_f64(), 3.14159);
  EXPECT_EQ(dec.get_string(), "hello RFID");
  EXPECT_NO_THROW(dec.expect_exhausted());
}

TEST(Codec, TruncationThrows) {
  Encoder enc;
  enc.put_u32(42);
  Decoder dec(enc.bytes());
  (void)dec.get_u32();
  EXPECT_THROW((void)dec.get_u8(), std::invalid_argument);
}

TEST(Codec, TrailingGarbageDetected) {
  Encoder enc;
  enc.put_u8(1);
  enc.put_u8(2);
  Decoder dec(enc.bytes());
  (void)dec.get_u8();
  EXPECT_THROW(dec.expect_exhausted(), std::invalid_argument);
}

TEST(Codec, FrameRoundTrip) {
  Encoder enc;
  enc.put_string("payload");
  const auto framed = wire::frame_payload(enc.bytes());
  const auto payload = wire::unframe_payload(framed);
  EXPECT_EQ(payload, enc.bytes());
}

TEST(Codec, FrameChecksumCatchesBitFlip) {
  Encoder enc;
  enc.put_u64(12345);
  auto framed = wire::frame_payload(enc.bytes());
  framed[5] ^= std::byte{0x01};
  EXPECT_THROW((void)wire::unframe_payload(framed), std::invalid_argument);
}

TEST(Codec, FrameLengthMismatchCaught) {
  Encoder enc;
  enc.put_u64(12345);
  auto framed = wire::frame_payload(enc.bytes());
  framed.pop_back();
  EXPECT_THROW((void)wire::unframe_payload(framed), std::invalid_argument);
}

// -------------------------------------------------------------- messages --

TEST(Messages, ChallengeRequestRoundTrip) {
  const wire::ChallengeRequest msg{"warehouse east", 17};
  const auto decoded = wire::decode_challenge_request(wire::encode(msg));
  EXPECT_EQ(decoded.group_name, "warehouse east");
  EXPECT_EQ(decoded.round, 17u);
}

TEST(Messages, TrpChallengeRoundTrip) {
  const wire::TrpChallengeMsg msg{3, {1068, 0xfeedfaceULL}};
  const auto decoded = wire::decode_trp_challenge(wire::encode(msg));
  EXPECT_EQ(decoded.round, 3u);
  EXPECT_EQ(decoded.challenge.frame_size, 1068u);
  EXPECT_EQ(decoded.challenge.r, 0xfeedfaceULL);
}

TEST(Messages, UtrpChallengeRoundTrip) {
  wire::UtrpChallengeMsg msg;
  msg.round = 9;
  msg.challenge.frame_size = 5;
  msg.challenge.seeds = {1, 2, 3, 4, 5};
  const auto decoded = wire::decode_utrp_challenge(wire::encode(msg));
  EXPECT_EQ(decoded.round, 9u);
  EXPECT_EQ(decoded.challenge.frame_size, 5u);
  EXPECT_EQ(decoded.challenge.seeds, msg.challenge.seeds);
}

TEST(Messages, BitstringReportRoundTrip) {
  bits::Bitstring bs(130);
  bs.set(0);
  bs.set(64);
  bs.set(129);
  const wire::BitstringReport msg{"g", 4, bs, 12345.5};
  const auto decoded = wire::decode_bitstring_report(wire::encode(msg));
  EXPECT_EQ(decoded.bitstring, bs);
  EXPECT_EQ(decoded.round, 4u);
  EXPECT_DOUBLE_EQ(decoded.scan_time_us, 12345.5);
}

TEST(Messages, VerdictAckRoundTrip) {
  const auto yes = wire::decode_verdict_ack(wire::encode(wire::VerdictAck{7, true}));
  EXPECT_EQ(yes.round, 7u);
  EXPECT_TRUE(yes.intact);
  const auto no = wire::decode_verdict_ack(wire::encode(wire::VerdictAck{8, false}));
  EXPECT_FALSE(no.intact);
}

TEST(Messages, PeekTypeAndWrongTypeRejected) {
  const auto frame = wire::encode(wire::ChallengeRequest{"x", 1});
  EXPECT_EQ(wire::peek_type(frame), wire::MessageType::kChallengeRequest);
  EXPECT_THROW((void)wire::decode_trp_challenge(frame), std::invalid_argument);
}

TEST(Messages, MalformedChallengeRejected) {
  const auto frame = wire::encode(wire::TrpChallengeMsg{1, {0, 5}});
  EXPECT_THROW((void)wire::decode_trp_challenge(frame), std::invalid_argument);
}

// ------------------------------------------------------------------ link --

TEST(Link, DeliversAfterLatency) {
  sim::EventQueue queue;
  util::Rng rng(1);
  wire::Link link(queue, {.latency_us = 500.0}, rng);
  double delivered_at = -1.0;
  Encoder enc;
  enc.put_u8(7);
  ASSERT_TRUE(link.send(enc.bytes(), [&](std::vector<std::byte> f) {
    delivered_at = queue.now();
    EXPECT_EQ(f.size(), 1u);
  }));
  (void)queue.run();
  EXPECT_DOUBLE_EQ(delivered_at, 500.0);
}

TEST(Link, DropsAtConfiguredRate) {
  sim::EventQueue queue;
  util::Rng rng(2);
  wire::Link link(queue, {.latency_us = 1.0, .jitter_us = 0.0, .drop_prob = 0.3},
                  rng);
  int delivered = 0;
  constexpr int kFrames = 5000;
  for (int i = 0; i < kFrames; ++i) {
    (void)link.send({}, [&](std::vector<std::byte>) { ++delivered; });
  }
  (void)queue.run();
  EXPECT_EQ(link.frames_sent(), static_cast<std::uint64_t>(kFrames));
  EXPECT_NEAR(static_cast<double>(link.frames_dropped()) / kFrames, 0.3, 0.03);
  EXPECT_EQ(static_cast<std::uint64_t>(delivered) + link.frames_dropped(),
            link.frames_sent());
}

TEST(Link, JitterBoundsDelay) {
  sim::EventQueue queue;
  util::Rng rng(3);
  wire::Link link(queue, {.latency_us = 100.0, .jitter_us = 50.0}, rng);
  for (int i = 0; i < 200; ++i) {
    (void)link.send({}, [&](std::vector<std::byte>) {
      EXPECT_GE(queue.now(), 100.0);
      EXPECT_LT(queue.now(), 150.0 + 1e-9);
    });
  }
  (void)queue.run();
}

// --------------------------------------------------------------- session --

TEST(Session, PerfectLinksCompleteAllRounds) {
  sim::EventQueue queue;
  util::Rng rng(4);
  const tag::TagSet set = tag::TagSet::make_random(200, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 5, .confidence = 0.95});
  wire::SessionConfig config;
  config.group_name = "g";
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), 5, config, rng);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.rounds_completed, 5u);
  ASSERT_EQ(outcome.verdicts.size(), 5u);
  for (const auto& verdict : outcome.verdicts) EXPECT_TRUE(verdict.intact);
  EXPECT_EQ(outcome.retransmissions, 0u);
  // 4 messages per round, both directions counted.
  EXPECT_EQ(outcome.frames_sent, 20u);
}

TEST(Session, LossyLinksStillCompleteViaRetransmission) {
  sim::EventQueue queue;
  util::Rng rng(5);
  const tag::TagSet set = tag::TagSet::make_random(150, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 5, .confidence = 0.95});
  wire::SessionConfig config;
  config.uplink = {.latency_us = 1000.0, .jitter_us = 200.0, .drop_prob = 0.25};
  config.downlink = {.latency_us = 1000.0, .jitter_us = 200.0, .drop_prob = 0.25};
  config.max_retries = 30;
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), 4, config, rng);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.rounds_completed, 4u);
  EXPECT_GT(outcome.frames_dropped, 0u);
  EXPECT_GT(outcome.retransmissions, 0u);
  for (const auto& verdict : outcome.verdicts) EXPECT_TRUE(verdict.intact);
}

TEST(Session, DetectsTheftOverTheWire) {
  sim::EventQueue queue;
  util::Rng rng(6);
  tag::TagSet set = tag::TagSet::make_random(300, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 5, .confidence = 0.95});
  (void)set.steal_random(60, rng);
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), 3, {}, rng);
  EXPECT_TRUE(outcome.completed);
  ASSERT_EQ(outcome.verdicts.size(), 3u);
  for (const auto& verdict : outcome.verdicts) EXPECT_FALSE(verdict.intact);
}

TEST(Session, DeadLinkGivesUpGracefully) {
  sim::EventQueue queue;
  util::Rng rng(7);
  const tag::TagSet set = tag::TagSet::make_random(50, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 2, .confidence = 0.95});
  wire::SessionConfig config;
  config.uplink = {.latency_us = 1000.0, .jitter_us = 0.0, .drop_prob = 1.0};
  config.max_retries = 3;
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), 1, config, rng);
  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.rounds_completed, 0u);
  EXPECT_EQ(outcome.frames_dropped, outcome.frames_sent);
  EXPECT_EQ(outcome.failure, wire::FailureReason::kTimeoutExhausted);
}

TEST(UtrpSession, PerfectLinksCompleteAndCommitCounters) {
  sim::EventQueue queue;
  util::Rng rng(9);
  tag::TagSet set = tag::TagSet::make_random(150, rng);
  protocol::UtrpServer server(set,
                              {.tolerated_missing = 3, .confidence = 0.95}, 20);
  wire::SessionConfig config;
  const auto outcome =
      wire::run_utrp_session(queue, server, set.tags(), 4, config, rng);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.rounds_completed, 4u);
  for (const auto& verdict : outcome.verdicts) EXPECT_TRUE(verdict.intact);
  EXPECT_FALSE(server.needs_resync());
  // Counters advanced: at least one tag heard more than the initial seeds.
  bool counters_moved = false;
  for (const auto& t : set.tags()) {
    if (t.counter() >= 4) counters_moved = true;
  }
  EXPECT_TRUE(counters_moved);
}

TEST(UtrpSession, TheftDetectedAndResyncFlagged) {
  sim::EventQueue queue;
  util::Rng rng(10);
  tag::TagSet set = tag::TagSet::make_random(200, rng);
  protocol::UtrpServer server(set,
                              {.tolerated_missing = 3, .confidence = 0.95}, 20);
  (void)set.steal_random(40, rng);
  wire::SessionConfig config;
  const auto outcome =
      wire::run_utrp_session(queue, server, set.tags(), 1, config, rng);
  EXPECT_TRUE(outcome.completed);
  ASSERT_EQ(outcome.verdicts.size(), 1u);
  EXPECT_FALSE(outcome.verdicts[0].intact);
  EXPECT_TRUE(server.needs_resync());
}

TEST(UtrpSession, DeadlineEnforcedAgainstSlowLinks) {
  // An honest reader behind a miserable link: the content is right but the
  // wall-clock budget is blown by retransmissions — Alg. 5's timer fires.
  sim::EventQueue queue;
  util::Rng rng(11);
  tag::TagSet set = tag::TagSet::make_random(100, rng);
  protocol::UtrpServer server(set,
                              {.tolerated_missing = 3, .confidence = 0.95}, 20);
  wire::SessionConfig config;
  config.uplink = {.latency_us = 200000.0, .jitter_us = 0.0, .drop_prob = 0.0};
  config.downlink = {.latency_us = 200000.0, .jitter_us = 0.0, .drop_prob = 0.0};
  config.retry_timeout_us = 500000.0;
  config.utrp_deadline_us = 100000.0;  // far less than one link round trip
  const auto outcome =
      wire::run_utrp_session(queue, server, set.tags(), 1, config, rng);
  EXPECT_TRUE(outcome.completed);
  ASSERT_EQ(outcome.verdicts.size(), 1u);
  EXPECT_FALSE(outcome.verdicts[0].intact);
  EXPECT_FALSE(outcome.verdicts[0].deadline_met);
  EXPECT_EQ(outcome.verdicts[0].mismatched_slots, 0u);  // content was right
}

TEST(UtrpSession, GenerousDeadlinePasses) {
  sim::EventQueue queue;
  util::Rng rng(12);
  tag::TagSet set = tag::TagSet::make_random(100, rng);
  protocol::UtrpServer server(set,
                              {.tolerated_missing = 3, .confidence = 0.95}, 20);
  wire::SessionConfig config;
  config.utrp_deadline_us = 10e6;  // ten simulated seconds
  const auto outcome =
      wire::run_utrp_session(queue, server, set.tags(), 2, config, rng);
  EXPECT_TRUE(outcome.completed);
  for (const auto& verdict : outcome.verdicts) EXPECT_TRUE(verdict.intact);
}

TEST(Session, TwoGroupsInterleaveOnOneQueue) {
  // Two independent sessions share the simulated clock: their events
  // interleave like two readers on one backhaul, and both must complete
  // with correct verdicts.
  sim::EventQueue queue;
  util::Rng rng(13);
  const tag::TagSet intact_set = tag::TagSet::make_random(120, rng);
  tag::TagSet robbed_set = tag::TagSet::make_random(120, rng);
  const protocol::TrpServer server_a(
      intact_set.ids(), {.tolerated_missing = 3, .confidence = 0.95});
  const protocol::TrpServer server_b(
      robbed_set.ids(), {.tolerated_missing = 3, .confidence = 0.95});
  (void)robbed_set.steal_random(30, rng);

  // Run A to completion first on the shared queue, then B starting at A's
  // finish time (sequential reuse); the clock must only move forward.
  wire::SessionConfig config;
  config.group_name = "A";
  const auto outcome_a =
      wire::run_trp_session(queue, server_a, intact_set.tags(), 2, config, rng);
  const double a_finish = outcome_a.finished_at_us;
  config.group_name = "B";
  const auto outcome_b =
      wire::run_trp_session(queue, server_b, robbed_set.tags(), 2, config, rng);
  EXPECT_TRUE(outcome_a.completed);
  EXPECT_TRUE(outcome_b.completed);
  EXPECT_GT(outcome_b.finished_at_us, a_finish);
  for (const auto& verdict : outcome_a.verdicts) EXPECT_TRUE(verdict.intact);
  for (const auto& verdict : outcome_b.verdicts) EXPECT_FALSE(verdict.intact);
}

TEST(Session, RejectsZeroRounds) {
  sim::EventQueue queue;
  util::Rng rng(14);
  const tag::TagSet set = tag::TagSet::make_random(20, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 1, .confidence = 0.9});
  EXPECT_THROW((void)wire::run_trp_session(queue, server, set.tags(), 0, {}, rng),
               std::invalid_argument);
}

TEST(Session, RetransmittedRequestsReuseTheSameChallenge) {
  // Idempotency property: even under heavy drop, each round produces at
  // most one verdict (duplicates are replayed, not re-verified).
  sim::EventQueue queue;
  util::Rng rng(8);
  const tag::TagSet set = tag::TagSet::make_random(100, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 2, .confidence = 0.95});
  wire::SessionConfig config;
  config.uplink = {.latency_us = 500.0, .jitter_us = 0.0, .drop_prob = 0.4};
  config.downlink = {.latency_us = 500.0, .jitter_us = 0.0, .drop_prob = 0.4};
  config.max_retries = 50;
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), 6, config, rng);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.verdicts.size(), 6u);
}

}  // namespace
