// Warehouse monitoring: the paper's motivating scenario (Sec. 1) end to end.
//
// A retailer's back-room server monitors several heterogeneous groups at
// once — the "different sized groups" flexibility the paper claims over
// yoking-proof schemes:
//   * "razor-blades"  — 60 high-value items, zero tolerance, 99% confidence,
//                       trusted dock reader (TRP);
//   * "apparel"       — 1200 garments, m = 20, 95%, trusted reader (TRP);
//   * "electronics"   — 400 boxed TVs, m = 5, 95%, UNtrusted night-shift
//                       reader (UTRP with a c = 20 adversary budget).
//
// The simulation runs a week of nightly scans: day 3 an employee steals six
// TVs and forges the reply with a collaborator (Alg. 4-style split), day 5
// shoplifters take 25 garments. Watch the alert log.
#include <cstdio>

#include "rfidmon.h"

namespace {

using namespace rfid;

void print_alerts(const server::InventoryServer& inv, std::size_t since) {
  for (std::size_t i = since; i < inv.alerts().size(); ++i) {
    const auto& a = inv.alerts()[i];
    std::printf("  !! ALERT [%s] round %llu: %llu slot(s) mismatched%s — "
                "estimated ~%.0f of %llu items present\n",
                a.group_name.c_str(),
                static_cast<unsigned long long>(a.round),
                static_cast<unsigned long long>(a.mismatched_slots),
                a.deadline_missed ? ", deadline missed" : "",
                a.estimated_present,
                static_cast<unsigned long long>(a.enrolled_size));
  }
}

}  // namespace

int main() {
  util::Rng rng(7);
  server::InventoryServer inventory;

  tag::TagSet razors = tag::TagSet::make_random(60, rng);
  tag::TagSet apparel = tag::TagSet::make_random(1200, rng);
  tag::TagSet tvs = tag::TagSet::make_random(400, rng);

  const auto razors_id = inventory.enroll(
      razors, {.name = "razor-blades",
               .policy = {.tolerated_missing = 0, .confidence = 0.99},
               .protocol = server::ProtocolKind::kTrp});
  const auto apparel_id = inventory.enroll(
      apparel, {.name = "apparel",
                .policy = {.tolerated_missing = 20, .confidence = 0.95},
                .protocol = server::ProtocolKind::kTrp});
  const auto tvs_id = inventory.enroll(
      tvs, {.name = "electronics",
            .policy = {.tolerated_missing = 5, .confidence = 0.95},
            .protocol = server::ProtocolKind::kUtrp,
            .comm_budget = 20});

  std::printf("enrolled 3 groups; challenge frames: razors=%u apparel=%u "
              "electronics=%u slots\n\n",
              inventory.frame_size(razors_id), inventory.frame_size(apparel_id),
              inventory.frame_size(tvs_id));

  const protocol::TrpReader trusted_reader;
  const protocol::UtrpReader night_reader;
  tag::TagSet stolen_tvs;  // what the dishonest employee holds

  for (int night = 1; night <= 7; ++night) {
    std::printf("night %d:\n", night);
    const std::size_t alerts_before = inventory.alerts().size();

    if (night == 3) {
      stolen_tvs = tvs.steal_random(6, rng);
      std::printf("  (an employee smuggles out 6 TVs and keeps their tags "
                  "with an accomplice)\n");
    }
    if (night == 5) {
      (void)apparel.steal_random(25, rng);
      std::printf("  (shoplifters got away with 25 garments)\n");
    }

    // Trusted TRP rounds for razors and apparel.
    for (const auto& [id, set] : {std::pair<server::GroupId, tag::TagSet*>{
                                      razors_id, &razors},
                                  {apparel_id, &apparel}}) {
      const auto c = inventory.challenge_trp(id, rng);
      const auto bs = trusted_reader.scan(set->tags(), c, rng);
      (void)inventory.submit_trp(id, c, bs);
    }

    // The electronics cage is scanned by the night-shift reader. Honest
    // before the theft; afterwards it mounts the budgeted split attack.
    {
      const auto c = inventory.challenge_utrp(tvs_id, rng);
      bits::Bitstring reported(c.frame_size);
      if (stolen_tvs.empty()) {
        reported = night_reader.scan(tvs.tags(), c).bitstring;
      } else {
        const auto attack = attack::run_utrp_split_attack(
            tvs.tags(), stolen_tvs.tags(), hash::SlotHasher{}, c,
            /*comm_budget=*/20);
        reported = attack.forged;
      }
      (void)inventory.submit_utrp(tvs_id, c, reported, /*deadline_met=*/true);
      tvs.begin_round();
      stolen_tvs.begin_round();
    }

    if (inventory.alerts().size() == alerts_before) {
      std::printf("  all groups verified intact\n");
    } else {
      print_alerts(inventory, alerts_before);
    }
    if (inventory.needs_resync(tvs_id)) {
      std::printf("  -> electronics group flagged for physical re-audit "
                  "(counters may have diverged)\n");
    }
  }

  std::printf("\nweek summary: %zu alert(s) recorded\n",
              inventory.alerts().size());
  return 0;
}
