// Unit tests for the util substrate: RNG, statistics, tables, CLI, logging.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/cli.h"
#include "util/expect.h"
#include "util/log.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using rfid::util::BinomialProportion;
using rfid::util::CliArgs;
using rfid::util::Rng;
using rfid::util::RunningStat;
using rfid::util::Table;

// ---------------------------------------------------------------- random --

TEST(SplitMix64, MatchesReferenceVector) {
  // Reference outputs for seed 0 from the canonical splitmix64.c.
  std::uint64_t state = 0;
  EXPECT_EQ(rfid::util::splitmix64_next(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(rfid::util::splitmix64_next(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(rfid::util::splitmix64_next(state), 0x06c45d188009454fULL);
}

TEST(DeriveSeed, DistinctIndicesGiveDistinctSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 50; ++a) {
    for (std::uint64_t b = 0; b < 50; ++b) {
      seen.insert(rfid::util::derive_seed(42, a, b));
    }
  }
  EXPECT_EQ(seen.size(), 2500u);
}

TEST(DeriveSeed, DependsOnMasterSeed) {
  EXPECT_NE(rfid::util::derive_seed(1, 7, 7), rfid::util::derive_seed(2, 7, 7));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroContract) {
  // below(0) asks for a draw from the empty range [0, 0) — a caller bug.
  // Debug builds refuse loudly; release builds degrade to 0 without
  // consuming a draw (so a buggy caller does not silently desync streams).
  Rng rng(9);
#ifdef NDEBUG
  EXPECT_EQ(rng.below(0), 0u);
  Rng fresh(9);
  (void)fresh.below(0);
  EXPECT_EQ(rng(), fresh());  // no draw was consumed
#else
  EXPECT_THROW((void)rng.below(0), std::invalid_argument);
  EXPECT_THROW((void)rng.between(5, 4), std::invalid_argument);  // empty range
#endif
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  // Mean of U(0,1) is 0.5 with sigma/sqrt(N) ~ 0.0009.
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(17);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  // Chi-square with 9 dof; 99.9% quantile ~ 27.9.
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(Rng, ChanceRespectsProbabilityExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// ----------------------------------------------------------------- stats --

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MatchesTwoPassComputation) {
  Rng rng(23);
  std::vector<double> xs;
  RunningStat s;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform() * 100.0 - 50.0;
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(BinomialProportion, CountsSuccesses) {
  BinomialProportion p;
  for (int i = 0; i < 10; ++i) p.add(i < 7);
  EXPECT_EQ(p.trials(), 10u);
  EXPECT_EQ(p.successes(), 7u);
  EXPECT_DOUBLE_EQ(p.proportion(), 0.7);
}

TEST(BinomialProportion, WilsonIntervalContainsProportion) {
  BinomialProportion p;
  for (int i = 0; i < 1000; ++i) p.add(i < 950);
  const auto ci = p.wilson();
  EXPECT_LT(ci.lo, 0.95);
  EXPECT_GT(ci.hi, 0.95);
  EXPECT_GT(ci.lo, 0.93);
  EXPECT_LT(ci.hi, 0.97);
}

TEST(BinomialProportion, WilsonHandlesExtremes) {
  BinomialProportion all;
  for (int i = 0; i < 100; ++i) all.add(true);
  const auto hi = all.wilson();
  EXPECT_GT(hi.lo, 0.9);
  EXPECT_DOUBLE_EQ(hi.hi, 1.0);

  BinomialProportion none;
  for (int i = 0; i < 100; ++i) none.add(false);
  const auto lo = none.wilson();
  EXPECT_DOUBLE_EQ(lo.lo, 0.0);
  EXPECT_LT(lo.hi, 0.1);
}

TEST(BinomialProportion, EmptyIntervalIsVacuous) {
  const BinomialProportion p;
  const auto ci = p.wilson();
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, 1.0);
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(rfid::util::quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(rfid::util::quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(rfid::util::quantile(xs, 1.0), 5.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(rfid::util::quantile(xs, 0.25), 2.5);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW((void)rfid::util::quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)rfid::util::quantile({1.0}, 1.5), std::invalid_argument);
}

// ----------------------------------------------------------------- table --

TEST(Table, AlignedPrintContainsHeadersAndCells) {
  Table t({"n", "slots"});
  t.begin_row();
  t.add_cell(100LL);
  t.add_cell(271LL);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("slots"), std::string::npos);
  EXPECT_NE(out.find("271"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name", "value"});
  t.begin_row();
  t.add_cell(std::string("a,b"));
  t.add_cell(std::string("say \"hi\""));
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RejectsOverfullRow) {
  Table t({"only"});
  t.begin_row();
  t.add_cell(1LL);
  EXPECT_THROW(t.add_cell(2LL), std::invalid_argument);
}

TEST(Table, RejectsIncompleteRowOnNextBegin) {
  Table t({"a", "b"});
  t.begin_row();
  t.add_cell(1LL);
  EXPECT_THROW(t.begin_row(), std::invalid_argument);
}

TEST(Table, CellAccessorRoundTrips) {
  Table t({"a"});
  t.begin_row();
  t.add_cell(3.14159, 2);
  EXPECT_EQ(t.cell(0, 0), "3.14");
  EXPECT_THROW((void)t.cell(1, 0), std::invalid_argument);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(rfid::util::format_double(0.95, 4), "0.9500");
  EXPECT_EQ(rfid::util::format_double(1234.0, 0), "1234");
}

// ------------------------------------------------------------------- cli --

TEST(CliArgs, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--trials", "500", "--seed=42", "--csv"};
  CliArgs args(5, argv, {"trials", "seed", "csv"});
  EXPECT_EQ(args.get_int_or("trials", 0), 500);
  EXPECT_EQ(args.get_int_or("seed", 0), 42);
  EXPECT_TRUE(args.get_bool("csv"));
  EXPECT_FALSE(args.get_bool("trials-other"));
}

TEST(CliArgs, DefaultsApplyWhenAbsent) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv, {"trials"});
  EXPECT_EQ(args.get_int_or("trials", 1000), 1000);
  EXPECT_DOUBLE_EQ(args.get_double_or("trials", 0.5), 0.5);
  EXPECT_EQ(args.get_or("trials", "fallback"), "fallback");
}

TEST(CliArgs, RejectsUnknownOption) {
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_THROW(CliArgs(2, argv, {"trials"}), std::invalid_argument);
}

TEST(CliArgs, RejectsNonOptionToken) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(CliArgs(2, argv, {"trials"}), std::invalid_argument);
}

TEST(CliArgs, ParsesDoubles) {
  const char* argv[] = {"prog", "--alpha", "0.99"};
  CliArgs args(3, argv, {"alpha"});
  EXPECT_DOUBLE_EQ(args.get_double_or("alpha", 0.0), 0.99);
}

// ---------------------------------------------------------------- expect --

TEST(Expect, ThrowsInvalidArgumentWithContext) {
  try {
    RFID_EXPECT(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("one is not two"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Ensure, ThrowsLogicError) {
  EXPECT_THROW(RFID_ENSURE(false, "broken invariant"), std::logic_error);
}

TEST(Expect, PassesSilently) {
  EXPECT_NO_THROW(RFID_EXPECT(true, "fine"));
  EXPECT_NO_THROW(RFID_ENSURE(true, "fine"));
}

// ------------------------------------------------------------------- log --

TEST(Log, LevelGateIsRespected) {
  using rfid::util::LogLevel;
  const LogLevel old = rfid::util::log_level();
  rfid::util::set_log_level(LogLevel::kError);
  EXPECT_EQ(rfid::util::log_level(), LogLevel::kError);
  rfid::util::set_log_level(LogLevel::kOff);
  RFID_LOG(Error) << "suppressed entirely";  // must not crash
  rfid::util::set_log_level(old);
}

}  // namespace
