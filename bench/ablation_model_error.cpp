// Ablation — how much do the analysis approximations matter?
//
// Three layers of approximation separate the paper's math from the
// mechanics: (1) Poisson empty-slot probability e^{-n/f} vs the exact
// (1-1/f)^n; (2) the Binomial independence assumption on N0 in Theorem 1;
// (3) the mean-field shortcut 1-(1-e^{-n/f})^x. This bench puts all three
// next to the ground truth (protocol simulation with real IDs and hashing)
// at the Eq. 2 frame size, quantifying reproduction caveat #2 of
// EXPERIMENTS.md: predicted detection overshoots simulated detection by a
// fraction of a percent, which is exactly why some Fig. 5 bars graze alpha.
#include <cstdint>

#include "bench_common.h"
#include "math/approximation.h"
#include "math/detection.h"
#include "math/frame_optimizer.h"
#include "protocol/trp.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rfid;
  auto opt = bench::parse_figure_options(argc, argv);
  opt.n_step = std::max<std::uint64_t>(opt.n_step, 400);
  const sim::TrialRunner runner(opt.threads);

  constexpr std::uint64_t kTolerance = 10;
  bench::banner("Ablation: analysis models vs simulated ground truth (m = " +
                std::to_string(kTolerance) + ", f from Eq. 2/poisson, " +
                std::to_string(opt.trials) + " trials/point)");

  util::Table table({"n", "frame_f", "g_poisson", "g_exact", "g_mean_field",
                     "simulated", "poisson_minus_sim"});
  for (const std::uint64_t n : bench::tag_count_sweep(opt)) {
    if (kTolerance + 1 > n) continue;
    const auto plan = math::optimize_trp_frame(n, kTolerance, opt.alpha);
    const std::uint64_t f = plan.frame_size;
    const double g_poisson = math::detection_probability(
        n, kTolerance + 1, f, math::EmptySlotModel::kPoissonApprox);
    const double g_exact = math::detection_probability(
        n, kTolerance + 1, f, math::EmptySlotModel::kExact);
    const double g_mean_field =
        math::detection_probability_mean_field(n, kTolerance + 1, f);

    const protocol::MonitoringPolicy policy{.tolerated_missing = kTolerance,
                                            .confidence = opt.alpha};
    const auto simulated = runner.run_boolean(
        opt.trials, util::derive_seed(opt.seed, n),
        [&](std::uint64_t, util::Rng& rng) {
          tag::TagSet set = tag::TagSet::make_random(n, rng);
          const protocol::TrpServer server(set.ids(), policy);
          (void)set.steal_random(kTolerance + 1, rng);
          const auto c = server.issue_challenge(rng);
          const protocol::TrpReader reader;
          return !server.verify(c, reader.scan(set.tags(), c, rng)).intact;
        });

    table.begin_row();
    table.add_cell(static_cast<long long>(n));
    table.add_cell(static_cast<long long>(f));
    table.add_cell(g_poisson, 4);
    table.add_cell(g_exact, 4);
    table.add_cell(g_mean_field, 4);
    table.add_cell(simulated.proportion(), 4);
    table.add_cell(g_poisson - simulated.proportion(), 4);
  }
  bench::emit(table, opt);
  std::cout << "Every analytic column overshoots the simulation slightly:\n"
               "slots are negatively correlated (one tag occupies exactly one\n"
               "slot), which the Binomial model ignores. The gap shrinks\n"
               "with n and is well inside the paper's 1000-trial noise.\n";
  return 0;
}
