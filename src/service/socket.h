// Thin RAII layer over POSIX loopback TCP sockets.
//
// The service front-end needs exactly four things from the OS: a listener
// bound to an ephemeral loopback port (tests and benches never collide on a
// fixed port), non-blocking accepted connections it can multiplex with
// poll(2), a blocking client connect with a deadline, and a self-pipe that
// lets worker threads interrupt the IO loop's poll. Everything above this
// header is byte-in/byte-out — no socket API leaks past it.
//
// All sends use MSG_NOSIGNAL: a peer that vanished mid-write must surface
// as an error return, never as a process-killing SIGPIPE.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace rfid::service {

/// Move-only owner of one socket (or pipe end) file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close() noexcept;

  void set_nonblocking(bool on);
  /// Blocking-socket receive deadline (SO_RCVTIMEO); 0 disables it.
  void set_receive_timeout(std::chrono::milliseconds timeout);

  /// Non-blocking read. Returns bytes read, 0 on orderly peer close,
  /// -1 when the call would block; throws std::system_error on hard errors.
  [[nodiscard]] long read_some(std::span<std::byte> out);
  /// Non-blocking write (MSG_NOSIGNAL). Returns bytes written or -1 when
  /// the call would block; throws std::system_error when the peer is gone.
  [[nodiscard]] long write_some(std::span<const std::byte> data);

  /// Blocking whole-buffer send; returns false if the peer vanished.
  [[nodiscard]] bool send_all(std::span<const std::byte> data);
  /// Blocking whole-buffer receive; returns false on close/timeout before
  /// `out` is full.
  [[nodiscard]] bool recv_all(std::span<std::byte> out);

 private:
  int fd_ = -1;
};

/// Listening TCP socket on 127.0.0.1. Port 0 (the default, and what every
/// hermetic test uses) asks the kernel for an ephemeral port; port() reports
/// what was actually bound.
class Listener {
 public:
  explicit Listener(std::uint16_t port = 0);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] int fd() const noexcept { return socket_.fd(); }

  /// Non-blocking accept; the returned socket is already non-blocking.
  [[nodiscard]] std::optional<Socket> accept();

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Blocking loopback connect with a deadline. Throws std::system_error on
/// refusal or timeout.
[[nodiscard]] Socket connect_loopback(std::uint16_t port,
                                      std::chrono::milliseconds timeout);

/// Self-pipe for interrupting a poll loop from another thread. wake() is
/// async-signal-safe-ish (a single write); drain() empties the pipe.
class WakePipe {
 public:
  WakePipe();

  [[nodiscard]] int read_fd() const noexcept { return read_end_.fd(); }
  void wake() noexcept;
  void drain() noexcept;

 private:
  Socket read_end_;
  Socket write_end_;
};

/// Best-effort bump of RLIMIT_NOFILE to its hard limit; returns the soft
/// limit after the attempt. A thousand concurrent loopback tenants cost two
/// descriptors each (client + accepted side), which outruns the classic
/// 1024 default.
std::uint64_t raise_fd_limit() noexcept;

}  // namespace rfid::service
