#include "fault/daemon_fault.h"

#include <string>
#include <utility>

namespace rfid::fault {

std::string_view to_string(DaemonCrashPoint point) noexcept {
  switch (point) {
    case DaemonCrashPoint::kEpochStart: return "epoch_start";
    case DaemonCrashPoint::kAfterFleetRun: return "after_fleet_run";
    case DaemonCrashPoint::kBeforeCheckpoint: return "before_checkpoint";
    case DaemonCrashPoint::kAfterCheckpoint: return "after_checkpoint";
  }
  return "unknown";
}

DaemonFaultInjector::DaemonFaultInjector(DaemonFaultPlan plan)
    : plan_(std::move(plan)),
      crash_fired_(plan_.crashes.size(), false),
      hang_fired_(plan_.hang_epochs.size(), false) {}

void DaemonFaultInjector::at(std::uint64_t epoch, DaemonCrashPoint point) {
  std::unique_lock<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < plan_.crashes.size(); ++i) {
    const DaemonCrash& crash = plan_.crashes[i];
    if (crash_fired_[i] || crash.epoch != epoch || crash.point != point) {
      continue;
    }
    crash_fired_[i] = true;
    ++crashes_delivered_;
    const std::string what = "daemon crash injected at epoch " +
                             std::to_string(epoch) + " (" +
                             std::string(to_string(point)) + ")";
    lock.unlock();
    throw CrashInjected(what);
  }
}

void DaemonFaultInjector::maybe_hang(std::uint64_t epoch) {
  std::unique_lock<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < plan_.hang_epochs.size(); ++i) {
    if (hang_fired_[i] || plan_.hang_epochs[i] != epoch) continue;
    hang_fired_[i] = true;
    ++hangs_delivered_;
    cv_.wait(lock, [this] { return killed_; });
    lock.unlock();
    throw CrashInjected("daemon hang at epoch " + std::to_string(epoch) +
                        " killed by supervisor");
  }
}

void DaemonFaultInjector::kill() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    killed_ = true;
  }
  cv_.notify_all();
}

void DaemonFaultInjector::reset_kill() {
  const std::lock_guard<std::mutex> lock(mu_);
  killed_ = false;
}

std::uint64_t DaemonFaultInjector::crashes_delivered() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return crashes_delivered_;
}

std::uint64_t DaemonFaultInjector::hangs_delivered() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hangs_delivered_;
}

}  // namespace rfid::fault
