// Ablation — are the paper's worst-case assumptions actually the worst?
//
// Two assumptions get validated empirically:
//
//  (1) Lemma 1 / Theorem 2: "missing exactly m+1 tags is the hardest case
//      for detection". Sweep the actual number stolen x with the frame fixed
//      at Eq. 2's f(n, m, α): simulated detection must rise monotonically in
//      x and sit just above α at x = m+1.
//
//  (2) Sec. 5.4's split: the dishonest reader keeps all n−m−1 remaining tags
//      and hands the collaborator exactly the stolen ones. Could lending the
//      collaborator some LEGIT tags help? No — every legit tag moved to R2
//      makes R1 see more empty slots (burning the budget faster) AND turns
//      that tag's replies into post-budget mismatches. The sweep shows
//      detection rising as tags migrate, confirming the paper's strategy is
//      the adversary's best.
#include <cstdint>
#include <vector>

#include "attack/utrp_attack.h"
#include "bench_common.h"
#include "math/frame_optimizer.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const auto opt = bench::parse_figure_options(argc, argv);
  const sim::TrialRunner runner(opt.threads);

  constexpr std::uint64_t kTags = 500;
  constexpr std::uint64_t kTolerance = 10;

  bench::banner("(1) Lemma 1: detection vs actual missing count x, frame "
                "fixed for m = " + std::to_string(kTolerance) + " (" +
                std::to_string(opt.trials) + " trials/row)");
  {
    const auto plan = math::optimize_trp_frame(kTags, kTolerance, opt.alpha);
    const protocol::MonitoringPolicy policy{.tolerated_missing = kTolerance,
                                            .confidence = opt.alpha};
    util::Table table({"missing_x", "simulated_detect", "theorem1_g",
                       "is_design_point"});
    for (const std::uint64_t x :
         {1ull, 5ull, 11ull, 15ull, 22ull, 33ull, 55ull}) {
      const auto result = runner.run_boolean(
          opt.trials, util::derive_seed(opt.seed, x),
          [&](std::uint64_t, util::Rng& rng) {
            tag::TagSet set = tag::TagSet::make_random(kTags, rng);
            const protocol::TrpServer server(set.ids(), policy);
            (void)set.steal_random(x, rng);
            const auto c = server.issue_challenge(rng);
            const protocol::TrpReader reader;
            return !server.verify(c, reader.scan(set.tags(), c, rng)).intact;
          });
      table.begin_row();
      table.add_cell(static_cast<long long>(x));
      table.add_cell(result.proportion(), 4);
      table.add_cell(math::detection_probability(kTags, x, plan.frame_size), 4);
      table.add_cell(std::string(x == kTolerance + 1 ? "<= design point" : ""));
    }
    bench::emit(table, opt);
  }

  bench::banner("(2) Does lending legit tags to the collaborator help the "
                "adversary? (mechanical attack, c = " +
                std::to_string(opt.budget) + ")");
  {
    const auto plan =
        math::optimize_utrp_frame(kTags, kTolerance, opt.alpha, opt.budget);
    const protocol::MonitoringPolicy policy{.tolerated_missing = kTolerance,
                                            .confidence = opt.alpha};
    util::Table table({"legit_tags_lent", "r1_holds", "r2_holds",
                       "simulated_detect"});
    for (const std::uint64_t lent : {0ull, 5ull, 25ull, 100ull, 244ull}) {
      const auto result = runner.run_boolean(
          opt.trials, util::derive_seed(opt.seed, lent, 7),
          [&](std::uint64_t, util::Rng& rng) {
            tag::TagSet set = tag::TagSet::make_random(kTags, rng);
            const protocol::UtrpServer server(set, policy, opt.budget, plan);
            tag::TagSet r2_tags = set.steal_random(kTolerance + 1, rng);
            // The adversary additionally hands `lent` legit tags to R2
            // (they are physically moved next to the collaborator's reader).
            tag::TagSet lent_tags = set.steal_random(lent, rng);
            std::vector<tag::Tag> r2_all(r2_tags.tags().begin(),
                                         r2_tags.tags().end());
            r2_all.insert(r2_all.end(), lent_tags.tags().begin(),
                          lent_tags.tags().end());
            tag::TagSet r2_set{std::move(r2_all)};
            const auto c = server.issue_challenge(rng);
            const auto attack = attack::run_utrp_split_attack(
                set.tags(), r2_set.tags(), hash::SlotHasher{}, c, opt.budget);
            return !server.verify(c, attack.forged).intact;
          });
      table.begin_row();
      table.add_cell(static_cast<long long>(lent));
      table.add_cell(static_cast<long long>(kTags - kTolerance - 1 - lent));
      table.add_cell(static_cast<long long>(kTolerance + 1 + lent));
      table.add_cell(result.proportion(), 4);
    }
    bench::emit(table, opt);
    std::cout << "Row 0 is the paper's strategy; every migration away from it\n"
                 "raises detection, so Sec. 5.4's \"best strategy\" holds.\n";
  }
  return 0;
}
