#include "protocol/identify.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"

namespace rfid::protocol {

IdentifyResult identify_missing_tags(const std::vector<tag::TagId>& enrolled,
                                     std::span<const tag::Tag> present_tags,
                                     const hash::SlotHasher& hasher,
                                     const IdentifyConfig& config,
                                     util::Rng& rng) {
  RFID_EXPECT(!enrolled.empty(), "nothing enrolled");
  RFID_EXPECT(config.frame_load > 0.0, "frame load must be positive");
  RFID_EXPECT(config.max_rounds >= 1, "need at least one round");

  IdentifyResult result;

  enum class Status : std::uint8_t { kUnknown, kMissing, kPresent };
  std::vector<Status> status(enrolled.size(), Status::kUnknown);
  std::size_t unknown_count = enrolled.size();

  std::vector<std::uint32_t> slot_of(enrolled.size());
  std::size_t candidate_count = enrolled.size();  // everyone not proven missing
  while (unknown_count > 0 && result.rounds < config.max_rounds) {
    ++result.rounds;
    // Frames must be sized to the tags that still REPLY — proven-present
    // tags cannot be silenced (the reader has no per-tag addressing without
    // IDs), so they keep occupying slots and would swamp a frame sized only
    // to the unknowns.
    const auto f = static_cast<std::uint32_t>(std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(
               config.frame_load * static_cast<double>(candidate_count)))));
    result.total_slots += f;
    const std::uint64_t r = rng();

    // What the reader observes: every physically present tag replies in its
    // slot (tags have no notion of their classification status).
    std::vector<std::uint32_t> occupancy(f, 0);
    for (const tag::Tag& t : present_tags) {
      ++occupancy[t.trp_slot(hasher, r, f)];
    }
    std::vector<bool> observed(f);
    for (std::uint32_t s = 0; s < f; ++s) {
      observed[s] =
          radio::occupied(radio::resolve_slot(occupancy[s], config.channel, rng));
    }

    // What the server expects: slots of every tag not yet proven missing
    // (proven-missing tags cannot reply; proven-present ones still do and
    // can mask an unknown tag sharing their slot).
    std::vector<std::uint32_t> candidate_mappers(f, 0);
    for (std::size_t i = 0; i < enrolled.size(); ++i) {
      if (status[i] == Status::kMissing) continue;
      slot_of[i] = hasher.slot(enrolled[i].slot_word(), r, f);
      ++candidate_mappers[slot_of[i]];
    }

    for (std::size_t i = 0; i < enrolled.size(); ++i) {
      if (status[i] != Status::kUnknown) continue;
      const std::uint32_t s = slot_of[i];
      if (!observed[s]) {
        // Nobody replied where this tag must have: proven absent.
        status[i] = Status::kMissing;
        --unknown_count;
        --candidate_count;
      } else if (candidate_mappers[s] == 1) {
        // Occupied, and this tag is the only possible replier: present.
        status[i] = Status::kPresent;
        --unknown_count;
      }
    }
  }

  for (std::size_t i = 0; i < enrolled.size(); ++i) {
    switch (status[i]) {
      case Status::kMissing: result.missing.push_back(enrolled[i]); break;
      case Status::kPresent: result.present.push_back(enrolled[i]); break;
      case Status::kUnknown: result.unresolved.push_back(enrolled[i]); break;
    }
  }
  return result;
}

}  // namespace rfid::protocol
