// The fleet determinism contract, pinned down byte-for-byte: the same
// seeded fleet run at threads=1 and threads=8 must produce identical
// aggregated verdicts, summary text, metric exposition (Prometheus and
// JSON, session log included), and trace renderings. Everything random
// derives from (fleet seed, inventory, zone, attempt) — never from thread
// identity or scheduling order — and the orchestrator records
// observability post-run in deterministic order, so none of the
// order-sensitive sinks (histogram FP sums, span ids, log entries) can
// drift with the thread count.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "fault/fault.h"
#include "fleet/fleet.h"
#include "obs/expose.h"
#include "obs/metrics.h"
#include "obs/session_log.h"
#include "obs/trace.h"
#include "server/group_planner.h"
#include "storage/backend.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using namespace rfid;

struct Rendered {
  fleet::GlobalVerdict verdict;
  std::string summary;
  std::string prometheus;
  std::string json;
  std::string trace;
  std::string journal;
};

// A fleet that exercises every code path whose ordering could leak thread
// identity: clean TRP zones, a theft (violated verdict), a crash-then-retry
// zone (requeue), a permanently dark zone (escalation), a UTRP inventory
// with an Alg. 5 deadline (EDF priority + mirror resync on retry), and an
// admission capacity that forces a second wave.
Rendered run_fleet(unsigned threads) {
  obs::MetricsRegistry metrics;
  double clock = 0.0;
  obs::Tracer tracer([&clock] { return clock += 1.0; });
  obs::SessionLog log(256);
  storage::MemoryBackend backend;

  fleet::FleetOrchestrator orchestrator({.seed = 4242,
                                         .threads = threads,
                                         .max_zone_attempts = 3,
                                         .admission_capacity = 8,
                                         .fleet_name = "det-fleet",
                                         .metrics = &metrics,
                                         .tracer = &tracer,
                                         .session_log = &log,
                                         .journal_backend = &backend});

  util::Rng rng(2026);  // same population every call

  {
    fleet::InventorySpec spec;
    spec.name = "clean";
    spec.tags = tag::TagSet::make_random(120, rng);
    spec.plan = server::plan_groups({.total_tags = 120,
                                     .total_tolerance = 4,
                                     .alpha = 0.95,
                                     .max_group_size = 30});
    spec.rounds = 2;
    orchestrator.submit(std::move(spec));
  }
  {
    fleet::InventorySpec spec;
    spec.name = "looted";
    spec.tags = tag::TagSet::make_random(90, rng);
    spec.plan = server::plan_groups({.total_tags = 90,
                                     .total_tolerance = 3,
                                     .alpha = 0.95,
                                     .max_group_size = 30});
    spec.rounds = 2;
    for (std::uint64_t i = 0; i < 8; ++i) spec.stolen.push_back(i);
    spec.zone_faults.emplace_back(
        1, fault::parse_fault_plan("crash 10000 never\n"));
    // Drill-down on the theft: its named-tag list, identify_* metrics, and
    // summary lines must all be thread-count invariant too.
    spec.identify.enabled = true;
    orchestrator.submit(std::move(spec));
  }
  {
    fleet::InventorySpec spec;
    spec.name = "dark";
    spec.tags = tag::TagSet::make_random(30, rng);
    spec.plan = server::plan_groups({.total_tags = 30,
                                     .total_tolerance = 1,
                                     .alpha = 0.95,
                                     .max_group_size = 0});
    spec.rounds = 1;
    spec.session.uplink.drop_prob = 1.0;
    spec.session.max_retries = 2;
    orchestrator.submit(std::move(spec));
  }
  {
    fleet::InventorySpec spec;
    spec.name = "utrp-cage";
    spec.protocol = fleet::Protocol::kUtrp;
    spec.tags = tag::TagSet::make_random(60, rng);
    spec.plan = server::plan_groups({.total_tags = 60,
                                     .total_tolerance = 2,
                                     .alpha = 0.95,
                                     .max_group_size = 30});
    spec.comm_budget = 10;
    spec.rounds = 1;
    spec.session.utrp_deadline_us = 10e6;
    spec.zone_faults.emplace_back(
        0, fault::parse_fault_plan("crash 10000 never\n"));
    orchestrator.submit(std::move(spec));
  }

  const fleet::FleetResult result = orchestrator.run();
  Rendered out{result.verdict,
               fleet::summary(result),
               obs::render_prometheus(metrics.snapshot()),
               obs::render_json(metrics.snapshot(), &log),
               tracer.render(),
               backend.read("fleet.journal")};
  return out;
}

TEST(FleetDeterminism, MixedFleetIsBitIdenticalAcrossThreadCounts) {
  const Rendered one = run_fleet(1);
  const Rendered eight = run_fleet(8);

  EXPECT_EQ(one.verdict, fleet::GlobalVerdict::kViolated);
  EXPECT_EQ(one.verdict, eight.verdict);
  EXPECT_EQ(one.summary, eight.summary);
  EXPECT_EQ(one.prometheus, eight.prometheus);
  EXPECT_EQ(one.json, eight.json);
  EXPECT_EQ(one.trace, eight.trace);
  // The journal's zone records may legitimately appear in any order
  // (workers race to append), so byte-comparing it would be wrong; but its
  // CONTENT folded through recovery is canonical.
  const auto scan_one = storage::scan_fleet_journal(one.journal);
  const auto scan_eight = storage::scan_fleet_journal(eight.journal);
  EXPECT_EQ(scan_one.records.size(), scan_eight.records.size());

  // The interesting paths really ran.
  EXPECT_NE(one.summary.find("requeues: "), std::string::npos);
  EXPECT_NE(one.summary.find("zone_escalated"), std::string::npos);
  EXPECT_NE(one.summary.find("identified [filter_first]"), std::string::npos);
  EXPECT_NE(one.prometheus.find("rfidmon_identify_campaigns_total"),
            std::string::npos);
  EXPECT_NE(one.prometheus.find("rfidmon_fleet_runs_total"),
            std::string::npos);
  EXPECT_NE(one.json.find("\"fleet\":\"det-fleet\""), std::string::npos);
}

// The ISSUE acceptance scenario: >= 64 zones across >= 4 inventories, run
// to completion with a correct aggregated verdict, bit-identical at 1 and
// 8 threads.
Rendered run_big_fleet(unsigned threads) {
  obs::MetricsRegistry metrics;
  double clock = 0.0;
  obs::Tracer tracer([&clock] { return clock += 1.0; });
  obs::SessionLog log(256);

  fleet::FleetOrchestrator orchestrator({.seed = 777,
                                         .threads = threads,
                                         .fleet_name = "big-fleet",
                                         .metrics = &metrics,
                                         .tracer = &tracer,
                                         .session_log = &log});
  util::Rng rng(555);
  for (int i = 0; i < 4; ++i) {
    fleet::InventorySpec spec;
    spec.name = "inv" + std::to_string(i);
    spec.tags = tag::TagSet::make_random(320, rng);
    spec.plan = server::plan_groups({.total_tags = 320,
                                     .total_tolerance = 8,
                                     .alpha = 0.95,
                                     .max_group_size = 20});
    spec.rounds = 1;
    if (i == 1) {
      for (std::uint64_t t = 0; t < 6; ++t) spec.stolen.push_back(t);
    }
    orchestrator.submit(std::move(spec));
  }
  const fleet::FleetResult result = orchestrator.run();
  EXPECT_EQ(result.zones, 64u);
  return Rendered{result.verdict,
                  fleet::summary(result),
                  obs::render_prometheus(metrics.snapshot()),
                  obs::render_json(metrics.snapshot(), &log),
                  tracer.render(),
                  {}};
}

TEST(FleetDeterminism, SixtyFourZoneFleetIsBitIdenticalAcrossThreadCounts) {
  const Rendered one = run_big_fleet(1);
  const Rendered eight = run_big_fleet(8);
  EXPECT_EQ(one.verdict, fleet::GlobalVerdict::kViolated);
  EXPECT_EQ(one.verdict, eight.verdict);
  EXPECT_EQ(one.summary, eight.summary);
  EXPECT_EQ(one.prometheus, eight.prometheus);
  EXPECT_EQ(one.json, eight.json);
  EXPECT_EQ(one.trace, eight.trace);
}

// A fused fleet (k = 3 readers per zone): per-reader sessions fan out to
// the pool and race to finalize the zone, so this pins down the fan-in
// path specifically — the LAST terminal reader runs the fusion, whichever
// thread that lands on, and the fused verdict, trust/suspect flags,
// fusion_* metrics, per-reader session-log entries, and degraded-round
// accounting must not care. One zone carries an adversarial reader, one a
// correlated Gilbert-Elliott burst, and one is clean.
Rendered run_fused_fleet(unsigned threads) {
  obs::MetricsRegistry metrics;
  double clock = 0.0;
  obs::Tracer tracer([&clock] { return clock += 1.0; });
  obs::SessionLog log(256);
  storage::MemoryBackend backend;

  fleet::FleetOrchestrator orchestrator({.seed = 9000,
                                         .threads = threads,
                                         .max_zone_attempts = 2,
                                         .fleet_name = "fused-fleet",
                                         .metrics = &metrics,
                                         .tracer = &tracer,
                                         .session_log = &log,
                                         .journal_backend = &backend});
  util::Rng rng(808);
  fleet::InventorySpec spec;
  spec.name = "triplex";
  spec.tags = tag::TagSet::make_random(120, rng);
  spec.plan = server::plan_groups({.total_tags = 120,
                                   .total_tolerance = 4,
                                   .alpha = 0.95,
                                   .max_group_size = 40});
  spec.rounds = 2;
  spec.fusion.readers = 3;
  spec.fusion.slot_loss = 0.005;
  // The theft and the forger share zone 0: an adversary forging "all
  // present" is only visible (and only harmful) where tags are missing.
  for (std::uint64_t t = 0; t < 6; ++t) spec.stolen.push_back(t);
  spec.dishonest_readers.emplace_back(0, 2);
  spec.zone_faults.emplace_back(
      0, fault::parse_multi_reader_fault_plan(
             "correlated\nburst 0.02 0.3 1.0 0.0\n"));
  orchestrator.submit(std::move(spec));

  const fleet::FleetResult result = orchestrator.run();
  EXPECT_EQ(result.readers_suspected, 1u);  // the zone-1 forger
  return Rendered{result.verdict,
                  fleet::summary(result),
                  obs::render_prometheus(metrics.snapshot()),
                  obs::render_json(metrics.snapshot(), &log),
                  tracer.render(),
                  backend.read("fleet.journal")};
}

TEST(FleetDeterminism, FusedFleetIsBitIdenticalAcrossThreadCounts) {
  const Rendered one = run_fused_fleet(1);
  const Rendered eight = run_fused_fleet(8);
  EXPECT_EQ(one.verdict, fleet::GlobalVerdict::kViolated);
  EXPECT_EQ(one.verdict, eight.verdict);
  EXPECT_EQ(one.summary, eight.summary);
  EXPECT_EQ(one.prometheus, eight.prometheus);
  EXPECT_EQ(one.json, eight.json);
  EXPECT_EQ(one.trace, eight.trace);
  const auto scan_one = storage::scan_fleet_journal(one.journal);
  const auto scan_eight = storage::scan_fleet_journal(eight.journal);
  EXPECT_EQ(scan_one.records.size(), scan_eight.records.size());

  // The fused paths really ran and really rendered.
  EXPECT_NE(one.prometheus.find("rfidmon_fusion_slots_fused_total"),
            std::string::npos);
  EXPECT_NE(one.prometheus.find("rfidmon_fusion_votes_overruled_total"),
            std::string::npos);
  EXPECT_NE(one.json.find("\"reader\":"), std::string::npos);
  EXPECT_NE(one.summary.find("suspects: 1"), std::string::npos);
}

}  // namespace
