// TRP — the Trusted Reader Protocol (Sec. 4 of the paper).
//
// Round structure (Alg. 1):
//   1. the server issues a fresh challenge (f, r), with f sized by Eq. (2)
//      for the group's (n, m, α);
//   2. the reader broadcasts (f, r); each tag picks slot h(id ⊕ r) mod f and
//      answers with a few random bits in that slot (Algs. 2–3);
//   3. the reader reduces the frame to a bitstring (1 = slot occupied) and
//      returns it;
//   4. the server compares against the bitstring it computed from its ID
//      database: any difference ⇒ "not intact".
//
// TrpServer is the verifying side; TrpReader drives the air interface over
// the radio substrate. Both share the SlotHasher so slot choices agree.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitstring/bitstring.h"
#include "hash/slot_hash.h"
#include "math/frame_optimizer.h"
#include "obs/metrics.h"
#include "protocol/messages.h"
#include "radio/channel.h"
#include "radio/frame.h"
#include "tag/columnar.h"
#include "tag/tag_id.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace rfid::protocol {

/// Monitoring requirements for one group of tags (Sec. 3).
struct MonitoringPolicy {
  std::uint64_t tolerated_missing = 0;  // m
  double confidence = 0.95;             // alpha
  math::EmptySlotModel model = math::EmptySlotModel::kPoissonApprox;
};

class TrpServer {
 public:
  /// Enrolls the group: records all IDs and solves Eq. (2) once (n, m, α are
  /// fixed for the group's lifetime — the set is static per Sec. 3).
  TrpServer(std::vector<tag::TagId> ids, MonitoringPolicy policy,
            hash::SlotHasher hasher = hash::SlotHasher{});

  /// Enrolls from an already-columnarized population (slot words reused, not
  /// re-derived) — the handoff the fleet uses when it slices one warehouse
  /// population into many zone servers.
  TrpServer(tag::ColumnarTagSet enrolled, MonitoringPolicy policy,
            hash::SlotHasher hasher = hash::SlotHasher{});

  [[nodiscard]] std::uint64_t group_size() const noexcept { return tags_.size(); }
  /// The enrolled IDs, in enrollment order (persistence reads these back
  /// when snapshotting a running server).
  [[nodiscard]] std::span<const tag::TagId> ids() const noexcept {
    return tags_.ids();
  }
  [[nodiscard]] const MonitoringPolicy& policy() const noexcept { return policy_; }
  /// The Eq. (2) frame size used by every challenge from this server.
  [[nodiscard]] std::uint32_t frame_size() const noexcept { return plan_.frame_size; }
  /// g(n, m+1, f) at the chosen frame — the analytical detection guarantee.
  [[nodiscard]] double predicted_detection() const noexcept {
    return plan_.predicted_detection;
  }

  /// A fresh challenge with a never-before-used random number.
  [[nodiscard]] TrpChallenge issue_challenge(util::Rng& rng) const;

  /// The bitstring an intact set would produce for `challenge` (Sec. 4.1:
  /// the server can precompute it because slot choice is deterministic).
  [[nodiscard]] bits::Bitstring expected_bitstring(const TrpChallenge& challenge) const;

  /// Compares the reader's bitstring against the expectation.
  [[nodiscard]] Verdict verify(const TrpChallenge& challenge,
                               const bits::Bitstring& reported) const;

  /// verify() with the expectation supplied by the caller — the seam the
  /// InventoryServer's (group, r, f) expected-bitstring cache goes through.
  /// `expected` must be exactly expected_bitstring(challenge); instruments
  /// record the round identically to verify().
  [[nodiscard]] Verdict verify_with_expected(const TrpChallenge& challenge,
                                             const bits::Bitstring& expected,
                                             const bits::Bitstring& reported) const;

  /// Bulk execution mode (default on): expected bitstrings are computed by
  /// the fused columnar kernel (tag::bulk_trp_frame) instead of the per-tag
  /// scalar loop. Both paths are bit-identical — the flag exists so the
  /// differential battery (tests/columnar_diff_test.cpp) can prove it.
  void set_bulk_mode(bool on) noexcept { bulk_ = on; }
  [[nodiscard]] bool bulk_mode() const noexcept { return bulk_; }

  /// Attaches an observability registry: issue_challenge/verify start
  /// recording challenge counts, round outcomes, slot totals, and frame
  /// sizes under protocol="trp". Family lookups happen once, here; the hot
  /// path only touches cached atomics. Pass nullptr to detach. The registry
  /// must outlive this server.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  /// Cached series handles; null when no registry is attached.
  struct Instruments {
    obs::Counter* challenges = nullptr;
    obs::Counter* rounds_intact = nullptr;
    obs::Counter* rounds_mismatch = nullptr;
    obs::Counter* slots = nullptr;
    obs::Counter* mismatched_slots = nullptr;
    obs::Counter* bulk_slots = nullptr;  // hashes done by the bulk kernel
    obs::Histogram* frame_size = nullptr;
  };

  [[nodiscard]] Verdict verify_against(const TrpChallenge& challenge,
                                       const bits::Bitstring& expected,
                                       const bits::Bitstring& reported) const;

  tag::ColumnarTagSet tags_;  // ids + precomputed slot words
  MonitoringPolicy policy_;
  hash::SlotHasher hasher_;
  math::TrpPlan plan_;
  bool bulk_ = true;
  Instruments instruments_;
};

class TrpReader {
 public:
  explicit TrpReader(hash::SlotHasher hasher = hash::SlotHasher{},
                     radio::ChannelModel channel = {})
      : hasher_(hasher), channel_(channel) {}

  /// Executes Algs. 1–3 against the physically present tags and returns the
  /// collected bitstring. `rng` drives channel randomness only.
  [[nodiscard]] bits::Bitstring scan(std::span<const tag::Tag> present,
                                     const TrpChallenge& challenge,
                                     util::Rng& rng) const;

  /// Like scan() but also reports slot statistics (used by timing benches).
  [[nodiscard]] radio::FrameObservation scan_observed(
      std::span<const tag::Tag> present, const TrpChallenge& challenge,
      util::Rng& rng) const;

 private:
  hash::SlotHasher hasher_;
  radio::ChannelModel channel_;
};

}  // namespace rfid::protocol
