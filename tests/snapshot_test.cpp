// Tests for enrollment snapshot persistence.
#include <gtest/gtest.h>

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <streambuf>
#include <string_view>

#include "protocol/utrp.h"
#include "server/snapshot.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::server::EnrolledGroup;
using rfid::server::GroupConfig;
using rfid::server::load_snapshot;
using rfid::server::ProtocolKind;
using rfid::server::restore_server;
using rfid::server::save_snapshot;
using rfid::tag::TagSet;

std::vector<EnrolledGroup> sample_groups(rfid::util::Rng& rng) {
  std::vector<EnrolledGroup> groups;
  {
    EnrolledGroup g;
    g.config = GroupConfig{.name = "front shelf A",
                           .policy = {.tolerated_missing = 5, .confidence = 0.95},
                           .protocol = ProtocolKind::kTrp};
    g.tags = TagSet::make_random(40, rng);
    groups.push_back(std::move(g));
  }
  {
    EnrolledGroup g;
    g.config = GroupConfig{.name = "cage (night shift)",
                           .policy = {.tolerated_missing = 2, .confidence = 0.99},
                           .protocol = ProtocolKind::kUtrp,
                           .comm_budget = 35,
                           .slack_slots = 10};
    g.tags = TagSet::make_random(25, rng);
    // Give the tags non-trivial counters, as after some UTRP rounds.
    for (auto& t : g.tags.tags()) {
      for (std::uint64_t i = 0; i < 1 + (t.id().lo() % 5); ++i) {
        (void)t.utrp_receive_seed(rfid::hash::SlotHasher{}, 1, 8);
      }
      t.begin_round();
    }
    groups.push_back(std::move(g));
  }
  return groups;
}

TEST(Snapshot, RoundTripPreservesEverything) {
  rfid::util::Rng rng(1);
  const auto groups = sample_groups(rng);
  std::stringstream stream;
  save_snapshot(stream, groups);
  const auto loaded = load_snapshot(stream);

  ASSERT_EQ(loaded.size(), groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    EXPECT_EQ(loaded[g].config.name, groups[g].config.name);
    EXPECT_EQ(loaded[g].config.protocol, groups[g].config.protocol);
    EXPECT_EQ(loaded[g].config.policy.tolerated_missing,
              groups[g].config.policy.tolerated_missing);
    EXPECT_DOUBLE_EQ(loaded[g].config.policy.confidence,
                     groups[g].config.policy.confidence);
    EXPECT_EQ(loaded[g].config.comm_budget, groups[g].config.comm_budget);
    EXPECT_EQ(loaded[g].config.slack_slots, groups[g].config.slack_slots);
    ASSERT_EQ(loaded[g].tags.size(), groups[g].tags.size());
    for (std::size_t i = 0; i < groups[g].tags.size(); ++i) {
      EXPECT_EQ(loaded[g].tags.at(i).id(), groups[g].tags.at(i).id());
      EXPECT_EQ(loaded[g].tags.at(i).counter(), groups[g].tags.at(i).counter());
    }
  }
}

TEST(Snapshot, EmptyGroupListRoundTrips) {
  std::stringstream stream;
  save_snapshot(stream, {});
  EXPECT_TRUE(load_snapshot(stream).empty());
}

TEST(Snapshot, ChecksumCatchesCorruption) {
  rfid::util::Rng rng(2);
  std::stringstream stream;
  save_snapshot(stream, sample_groups(rng));
  std::string text = stream.str();
  // Flip one hex digit inside a TAG line.
  const auto pos = text.find("TAG ");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 4] = text[pos + 4] == '0' ? '1' : '0';
  std::istringstream corrupted(text);
  EXPECT_THROW((void)load_snapshot(corrupted), std::invalid_argument);
}

TEST(Snapshot, TruncationDetected) {
  rfid::util::Rng rng(3);
  std::stringstream stream;
  save_snapshot(stream, sample_groups(rng));
  std::string text = stream.str();
  text.resize(text.size() / 2);
  std::istringstream truncated(text);
  EXPECT_THROW((void)load_snapshot(truncated), std::invalid_argument);
}

TEST(Snapshot, RejectsWrongMagic) {
  std::istringstream bogus("SOMETHING ELSE\n");
  EXPECT_THROW((void)load_snapshot(bogus), std::invalid_argument);
  std::istringstream empty("");
  EXPECT_THROW((void)load_snapshot(empty), std::invalid_argument);
}

TEST(Snapshot, RejectsMultilineGroupName) {
  EnrolledGroup g;
  g.config.name = "evil\nname";
  rfid::util::Rng rng(4);
  g.tags = TagSet::make_random(1, rng);
  std::stringstream stream;
  EXPECT_THROW(save_snapshot(stream, {g}), std::invalid_argument);
}

TEST(Snapshot, RestoredUtrpServerVerifiesAgainstLiveTags) {
  // The operational point of persistence: a UTRP server rebuilt from a
  // snapshot (counters included!) must verify the real tags' next round.
  rfid::util::Rng rng(5);
  TagSet live = TagSet::make_random(120, rng);

  // Run some rounds against an initial server so the counters move.
  rfid::protocol::UtrpServer original(
      live, {.tolerated_missing = 3, .confidence = 0.95}, 20);
  const rfid::protocol::UtrpReader reader;
  for (int round = 0; round < 3; ++round) {
    const auto c = original.issue_challenge(rng);
    const auto scan = reader.scan(live.tags(), c);
    const auto verdict = original.verify(c, scan.bitstring);
    ASSERT_TRUE(verdict.intact);
    original.commit_round(c, verdict);
    live.begin_round();
  }

  // Snapshot the CURRENT state (a physical audit) and restore elsewhere.
  EnrolledGroup g;
  g.config = GroupConfig{.name = "restored",
                         .policy = {.tolerated_missing = 3, .confidence = 0.95},
                         .protocol = ProtocolKind::kUtrp,
                         .comm_budget = 20};
  g.tags = live;  // snapshot includes counters
  std::stringstream stream;
  save_snapshot(stream, {g});
  auto server = restore_server(load_snapshot(stream));

  const auto id = rfid::server::GroupId{0};
  const auto c = server.challenge_utrp(id, rng);
  const auto scan = reader.scan(live.tags(), c);
  EXPECT_TRUE(server.submit_utrp(id, c, scan.bitstring, true).intact);
}

/// Expects `fn` to throw std::invalid_argument whose message contains
/// `fragment` — how every malformed-snapshot case asserts the error is
/// actually useful to the operator reading it, not just thrown.
template <typename Fn>
void expect_rejected_with(Fn&& fn, std::string_view fragment) {
  try {
    fn();
    FAIL() << "expected rejection mentioning \"" << fragment << "\"";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string_view(e.what()).find(fragment), std::string_view::npos)
        << "message \"" << e.what() << "\" does not mention \"" << fragment
        << "\"";
  }
}

TEST(Snapshot, ErrorsCarryTheOffendingLineNumber) {
  rfid::util::Rng rng(7);
  std::stringstream stream;
  save_snapshot(stream, sample_groups(rng));
  std::string text = stream.str();
  // Break the hex of the first TAG line and compute which line that is.
  const auto pos = text.find("TAG ");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 4] = 'z';
  const auto lineno =
      1 + static_cast<std::uint64_t>(
              std::count(text.begin(), text.begin() + static_cast<long>(pos), '\n'));
  expect_rejected_with(
      [&] {
        std::istringstream is(text);
        (void)load_snapshot(is);
      },
      "line " + std::to_string(lineno) + ": bad TAG hex");
}

TEST(Snapshot, MalformedCorpusIsRejectedWithUsefulMessages) {
  rfid::util::Rng rng(8);
  std::stringstream stream;
  save_snapshot(stream, sample_groups(rng));
  const std::string good = stream.str();

  const auto load_text = [](std::string text) {
    return [text = std::move(text)] {
      std::istringstream is(text);
      (void)load_snapshot(is);
    };
  };

  // Truncated before the END line: the checksum never arrives.
  expect_rejected_with(load_text(good.substr(0, good.rfind("END "))),
                       "snapshot truncated (no END line)");
  // END present but its checksum is not hex.
  std::string bad_hex = good.substr(0, good.rfind("END "));
  bad_hex += "END zzzz\n";
  expect_rejected_with(load_text(bad_hex), "bad END checksum hex");
  // END checksum is valid hex for the wrong body.
  std::string wrong_sum = good.substr(0, good.rfind("END "));
  wrong_sum += "END 0\n";
  expect_rejected_with(load_text(wrong_sum), "snapshot checksum mismatch");
  // A TAG line with no GROUP to own it.
  expect_rejected_with(
      load_text("RFIDMON-SNAPSHOT 1\nTAG 00000001 0000000000000002 0\nEND 0\n"),
      "TAG line before any GROUP");
  // Two groups with the same name would collide on restore.
  {
    rfid::util::Rng rng2(9);
    EnrolledGroup a, b;
    a.config.name = b.config.name = "same shelf";
    a.tags = TagSet::make_random(2, rng2);
    b.tags = TagSet::make_random(2, rng2);
    std::stringstream dup;
    save_snapshot(dup, {a, b});
    expect_rejected_with(load_text(dup.str()),
                         "duplicate GROUP name: same shelf");
  }
}

TEST(Snapshot, PropertyRandomGroupSetsRoundTripExactly) {
  // Property test: any server-producible group set must survive save -> load
  // -> save byte-identically. Byte equality of the re-save subsumes field
  // equality and pins the format itself (a formatting change that loses
  // precision or reorders fields fails here).
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    rfid::util::Rng rng(seed);
    std::vector<EnrolledGroup> groups;
    const std::size_t group_count = rng.below(5);  // 0..4 groups
    for (std::size_t g = 0; g < group_count; ++g) {
      EnrolledGroup group;
      const bool utrp = rng.chance(0.5);
      group.config.name = "group " + std::to_string(seed) + "-" +
                          std::to_string(g) + (utrp ? " (cage)" : "");
      group.config.protocol = utrp ? ProtocolKind::kUtrp : ProtocolKind::kTrp;
      group.config.policy.tolerated_missing = rng.below(7);
      group.config.policy.confidence =
          0.90 + 0.01 * static_cast<double>(rng.below(10));
      group.config.comm_budget = 10 + rng.below(50);
      group.config.slack_slots = static_cast<std::uint32_t>(rng.below(16));
      group.tags = TagSet::make_random(1 + rng.below(30), rng);
      if (utrp) {
        for (auto& t : group.tags.tags()) {
          const std::uint64_t advances = rng.below(6);
          for (std::uint64_t i = 0; i < advances; ++i) {
            (void)t.utrp_receive_seed(rfid::hash::SlotHasher{}, 1, 8);
          }
          t.begin_round();
        }
      }
      groups.push_back(std::move(group));
    }

    std::stringstream first;
    save_snapshot(first, groups);
    std::istringstream reload(first.str());
    const auto loaded = load_snapshot(reload);
    std::stringstream second;
    save_snapshot(second, loaded);
    ASSERT_EQ(second.str(), first.str()) << "seed " << seed;
  }
}

namespace failing_stream {

/// streambuf with a real buffer whose flush always fails — models a disk
/// that accepts writes into the page cache and errors only at sync time.
class FlushFailBuf : public std::streambuf {
 public:
  FlushFailBuf() { setp(buf_, buf_ + sizeof(buf_)); }

 protected:
  int sync() override { return -1; }
  int_type overflow(int_type) override { return traits_type::eof(); }

 private:
  char buf_[1 << 16];
};

}  // namespace failing_stream

TEST(Snapshot, SaveThrowsWhenTheStreamFailsOnlyAtFlush) {
  // Regression for the silent-loss bug: every write fits the buffer, so the
  // stream stays good() until flush. save_snapshot must flush and check, or
  // this "successful" save would never reach storage.
  rfid::util::Rng rng(10);
  const auto groups = sample_groups(rng);
  failing_stream::FlushFailBuf buf;
  std::ostream os(&buf);
  EXPECT_THROW(save_snapshot(os, groups), std::invalid_argument);
}

TEST(Snapshot, RestoreServerPreservesGroupOrderAndSizes) {
  rfid::util::Rng rng(6);
  const auto groups = sample_groups(rng);
  const auto server = restore_server(groups);
  EXPECT_EQ(server.group_count(), 2u);
  EXPECT_EQ(server.group_size(rfid::server::GroupId{0}), 40u);
  EXPECT_EQ(server.group_size(rfid::server::GroupId{1}), 25u);
  EXPECT_EQ(server.config(rfid::server::GroupId{1}).comm_budget, 35u);
}

}  // namespace
