#include "storage/daemon_journal.h"

#include <bit>
#include <span>
#include <stdexcept>
#include <utility>

#include "hash/fnv.h"
#include "util/expect.h"

namespace rfid::storage {

namespace {

enum class RecordKind : std::uint8_t {
  kStart = 1,
  kCheckpoint = 2,
  kSnapshot = 3,
};

// Private little-endian scalar encoding, same shape as the WAL's and the
// fleet journal's — each format stays free to drift independently.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
    }
  }
  void bytes(std::string_view v) {
    u32(static_cast<std::uint32_t>(v.size()));
    out_.append(v);
  }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    return static_cast<std::uint8_t>(take(1)[0]);
  }
  [[nodiscard]] std::uint32_t u32() {
    const std::string_view b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(b[static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    const std::string_view b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(b[static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    return v;
  }
  [[nodiscard]] std::string_view bytes() { return take(u32()); }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  [[nodiscard]] std::string_view take(std::size_t n) {
    RFID_EXPECT(data_.size() - pos_ >= n, "daemon journal payload truncated");
    const std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

[[nodiscard]] std::uint64_t checksum_of(std::string_view payload) noexcept {
  return hash::fnv1a64(std::as_bytes(std::span(payload.data(), payload.size())));
}

void write_zone_health(ByteWriter& w, const DaemonZoneHealthRecord& zone) {
  w.u32(zone.miss_streak);
  w.u32(zone.intact_streak);
  w.u8(zone.violated ? 1 : 0);
  w.u8(zone.quarantined ? 1 : 0);
  w.u64(zone.quarantined_at);
  w.u32(static_cast<std::uint32_t>(zone.readers.size()));
  for (const DaemonReaderHealthRecord& reader : zone.readers) {
    w.u32(reader.bad_streak);
    w.u8(reader.quarantined ? 1 : 0);
    w.u64(reader.quarantined_at);
  }
}

void write_alert(ByteWriter& w, const DaemonAlertRecord& alert) {
  w.u64(alert.sequence);
  w.u8(alert.kind);
  w.u64(alert.epoch);
  w.u64(alert.zone);
  w.bytes(alert.detail);
  w.u32(static_cast<std::uint32_t>(alert.missing.size()));
  for (const tag::TagId& id : alert.missing) {
    w.u32(id.hi());
    w.u64(id.lo());
  }
}

[[nodiscard]] std::string encode_payload(const DaemonJournalRecord& record) {
  ByteWriter w;
  std::visit(
      [&w](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, DaemonStartRecord>) {
          w.u8(static_cast<std::uint8_t>(RecordKind::kStart));
          w.u64(r.seed);
          w.bytes(r.daemon);
          w.u64(r.config_hash);
        } else if constexpr (std::is_same_v<T, DaemonCheckpointRecord>) {
          w.u8(static_cast<std::uint8_t>(RecordKind::kCheckpoint));
          w.u64(r.epoch);
          w.u8(r.verdict);
          w.u64(r.next_alert_sequence);
          w.u32(static_cast<std::uint32_t>(r.zones.size()));
          for (const DaemonZoneHealthRecord& zone : r.zones) {
            write_zone_health(w, zone);
          }
          w.u32(static_cast<std::uint32_t>(r.alerts.size()));
          for (const DaemonAlertRecord& alert : r.alerts) {
            write_alert(w, alert);
          }
        } else {
          w.u8(static_cast<std::uint8_t>(RecordKind::kSnapshot));
          w.u64(r.next_alert_sequence);
          w.u32(static_cast<std::uint32_t>(r.verdicts.size()));
          for (const std::uint8_t verdict : r.verdicts) w.u8(verdict);
          w.u32(static_cast<std::uint32_t>(r.zones.size()));
          for (const DaemonZoneHealthRecord& zone : r.zones) {
            write_zone_health(w, zone);
          }
          w.u32(static_cast<std::uint32_t>(r.alerts.size()));
          for (const DaemonAlertRecord& alert : r.alerts) {
            write_alert(w, alert);
          }
        }
      },
      record);
  return w.take();
}

[[nodiscard]] DaemonZoneHealthRecord read_zone_health(ByteReader& r) {
  DaemonZoneHealthRecord zone;
  zone.miss_streak = r.u32();
  zone.intact_streak = r.u32();
  zone.violated = r.u8() != 0;
  zone.quarantined = r.u8() != 0;
  zone.quarantined_at = r.u64();
  const std::uint32_t readers = r.u32();
  zone.readers.reserve(readers);
  for (std::uint32_t i = 0; i < readers; ++i) {
    DaemonReaderHealthRecord reader;
    reader.bad_streak = r.u32();
    reader.quarantined = r.u8() != 0;
    reader.quarantined_at = r.u64();
    zone.readers.push_back(reader);
  }
  return zone;
}

[[nodiscard]] DaemonAlertRecord read_alert(ByteReader& r,
                                           std::uint32_t version) {
  DaemonAlertRecord alert;
  alert.sequence = r.u64();
  alert.kind = r.u8();
  alert.epoch = r.u64();
  alert.zone = r.u64();
  alert.detail = std::string(r.bytes());
  if (version >= 3) {
    const std::uint32_t missing = r.u32();
    alert.missing.reserve(missing);
    for (std::uint32_t i = 0; i < missing; ++i) {
      const std::uint32_t hi = r.u32();
      const std::uint64_t lo = r.u64();
      alert.missing.emplace_back(hi, lo);
    }
  }
  return alert;
}

[[nodiscard]] DaemonJournalRecord decode_payload(std::string_view payload,
                                                 std::uint32_t version) {
  ByteReader r(payload);
  const auto kind = static_cast<RecordKind>(r.u8());
  DaemonJournalRecord out;
  switch (kind) {
    case RecordKind::kStart: {
      DaemonStartRecord rec;
      rec.seed = r.u64();
      rec.daemon = std::string(r.bytes());
      rec.config_hash = r.u64();
      out = std::move(rec);
      break;
    }
    case RecordKind::kCheckpoint: {
      DaemonCheckpointRecord rec;
      rec.epoch = r.u64();
      rec.verdict = r.u8();
      rec.next_alert_sequence = r.u64();
      const std::uint32_t zones = r.u32();
      rec.zones.reserve(zones);
      for (std::uint32_t i = 0; i < zones; ++i) {
        rec.zones.push_back(read_zone_health(r));
      }
      const std::uint32_t alerts = r.u32();
      rec.alerts.reserve(alerts);
      for (std::uint32_t i = 0; i < alerts; ++i) {
        rec.alerts.push_back(read_alert(r, version));
      }
      out = std::move(rec);
      break;
    }
    case RecordKind::kSnapshot: {
      DaemonSnapshotRecord rec;
      rec.next_alert_sequence = r.u64();
      const std::uint32_t verdicts = r.u32();
      rec.verdicts.reserve(verdicts);
      for (std::uint32_t i = 0; i < verdicts; ++i) {
        rec.verdicts.push_back(r.u8());
      }
      const std::uint32_t zones = r.u32();
      rec.zones.reserve(zones);
      for (std::uint32_t i = 0; i < zones; ++i) {
        rec.zones.push_back(read_zone_health(r));
      }
      const std::uint32_t alerts = r.u32();
      rec.alerts.reserve(alerts);
      for (std::uint32_t i = 0; i < alerts; ++i) {
        rec.alerts.push_back(read_alert(r, version));
      }
      out = std::move(rec);
      break;
    }
    default:
      throw std::invalid_argument("unknown daemon journal record kind");
  }
  RFID_EXPECT(r.exhausted(), "trailing bytes in daemon journal payload");
  return out;
}

}  // namespace

std::string encode_daemon_record(const DaemonJournalRecord& record) {
  const std::string payload = encode_payload(record);
  ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u64(checksum_of(payload));
  std::string out = frame.take();
  out += payload;
  return out;
}

DaemonJournalScan scan_daemon_journal(std::string_view bytes) {
  DaemonJournalScan scan;
  if (bytes.substr(0, kDaemonJournalMagic.size()) == kDaemonJournalMagic) {
    scan.version = 3;
  } else if (bytes.substr(0, kDaemonJournalMagicV2.size()) ==
             kDaemonJournalMagicV2) {
    scan.version = 2;
  } else {
    scan.dropped_bytes = bytes.size();
    return scan;
  }
  scan.header_valid = true;
  std::size_t pos = kDaemonJournalMagic.size();
  scan.valid_bytes = pos;
  constexpr std::size_t kFrameHeader = 4 + 8;
  while (bytes.size() - pos >= kFrameHeader) {
    ByteReader frame(bytes.substr(pos, kFrameHeader));
    const std::uint32_t len = frame.u32();
    const std::uint64_t declared = frame.u64();
    if (bytes.size() - pos - kFrameHeader < len) break;  // torn tail
    const std::string_view payload = bytes.substr(pos + kFrameHeader, len);
    if (checksum_of(payload) != declared) break;  // torn or rotted
    try {
      scan.records.push_back(decode_payload(payload, scan.version));
    } catch (const std::invalid_argument&) {
      break;  // checksum collision on garbage; treat as corruption
    }
    pos += kFrameHeader + len;
    scan.valid_bytes = pos;
  }
  scan.dropped_bytes = bytes.size() - scan.valid_bytes;
  return scan;
}

DaemonReplay DaemonJournal::open(const DaemonStartRecord& start) {
  const std::lock_guard<std::mutex> lock(mu_);
  DaemonReplay replay;
  start_ = start;
  folded_ = {};
  checkpoints_since_snapshot_ = 0;

  DaemonJournalScan scan;
  if (backend_.exists(name_)) {
    try {
      scan = scan_daemon_journal(backend_.read(name_));
    } catch (const IoError&) {
      scan = {};
    }
  }

  // Only the suffix after the LAST start record describes a resumable
  // daemon (an earlier daemon under the same name left the prefix).
  std::size_t start_index = scan.records.size();
  for (std::size_t i = scan.records.size(); i-- > 0;) {
    if (std::holds_alternative<DaemonStartRecord>(scan.records[i])) {
      start_index = i;
      break;
    }
  }

  // Fold the suffix: a snapshot (rotation's output) resets the folded
  // state wholesale, each checkpoint extends it — the same reduction the
  // daemon itself would perform, done once here.
  DaemonSnapshotRecord folded;
  std::uint64_t tail_checkpoints = 0;
  bool resumable = false;
  if (start_index < scan.records.size()) {
    const auto& begun = std::get<DaemonStartRecord>(scan.records[start_index]);
    if (begun.seed == start.seed && begun.daemon == start.daemon) {
      for (std::size_t i = start_index + 1; i < scan.records.size(); ++i) {
        if (auto* snapshot =
                std::get_if<DaemonSnapshotRecord>(&scan.records[i])) {
          folded = std::move(*snapshot);
          tail_checkpoints = 0;
          continue;
        }
        auto& checkpoint =
            std::get<DaemonCheckpointRecord>(scan.records[i]);
        folded.verdicts.push_back(checkpoint.verdict);
        folded.zones = std::move(checkpoint.zones);
        folded.next_alert_sequence = checkpoint.next_alert_sequence;
        for (DaemonAlertRecord& alert : checkpoint.alerts) {
          folded.alerts.push_back(std::move(alert));
        }
        ++tail_checkpoints;
      }
      if (start.config_hash != 0 && begun.config_hash != 0 &&
          begun.config_hash != start.config_hash) {
        // Same daemon, different monitoring plan: its health machines and
        // epoch numbering describe zones that may no longer exist.
        replay.stale = true;
        replay.stale_checkpoints = folded.verdicts.size();
      } else {
        resumable = true;
      }
    }
  }

  if (!resumable) {
    begin_fresh_locked(start);
    return replay;
  }

  replay.fresh = false;
  folded_ = std::move(folded);
  checkpoints_since_snapshot_ = tail_checkpoints;
  replay.verdicts = folded_.verdicts;
  replay.zones = folded_.zones;
  replay.alerts = folded_.alerts;
  replay.next_alert_sequence = folded_.next_alert_sequence;

  if (scan.dropped_bytes > 0 || scan.version < 3) {
    // A torn tail must not stay: appending after it would bury every later
    // checkpoint behind unreadable bytes. Likewise a legacy-format journal:
    // checkpoint() appends current-format frames, which a later scan would
    // mis-decode under the old magic. Compact — rotation's rewrite is
    // exactly the right tool: the journal becomes [start][snapshot] in the
    // current format holding precisely the state replay just accepted.
    replay.compacted_bytes = scan.dropped_bytes;
    rotate_locked();
  }
  return replay;
}

void DaemonJournal::begin_fresh_locked(const DaemonStartRecord& start) {
  // temp -> flush -> rename: either the old journal or the complete new one
  // is readable at every point.
  const std::string tmp = name_ + ".tmp";
  try {
    if (backend_.exists(tmp)) backend_.remove(tmp);
    std::string bytes(kDaemonJournalMagic);
    bytes += encode_daemon_record(start);
    backend_.append(tmp, bytes);
    backend_.flush(tmp);
    backend_.rename(tmp, name_);
  } catch (const IoError&) {
    ++append_failures_;
  }
}

void DaemonJournal::rotate_locked() {
  // Atomically rewrite the journal as [magic][start][snapshot]. The old
  // journal stays readable until the new one is durable, so a crash at any
  // point of the rotation resumes to the same state (the torture sweep
  // crosses crash points with rotation points).
  const std::string tmp = name_ + ".tmp";
  try {
    if (backend_.exists(tmp)) backend_.remove(tmp);
    std::string bytes(kDaemonJournalMagic);
    bytes += encode_daemon_record(start_);
    bytes += encode_daemon_record(folded_);
    backend_.append(tmp, bytes);
    backend_.flush(tmp);
    backend_.rename(tmp, name_);
    checkpoints_since_snapshot_ = 0;
    ++rotations_;
  } catch (const IoError&) {
    ++append_failures_;
  }
}

void DaemonJournal::fold_locked(const DaemonCheckpointRecord& record) {
  folded_.verdicts.push_back(record.verdict);
  folded_.zones = record.zones;
  folded_.next_alert_sequence = record.next_alert_sequence;
  for (const DaemonAlertRecord& alert : record.alerts) {
    folded_.alerts.push_back(alert);
  }
}

void DaemonJournal::checkpoint(const DaemonCheckpointRecord& record) {
  const std::lock_guard<std::mutex> lock(mu_);
  try {
    backend_.append(name_, encode_daemon_record(record));
    backend_.flush(name_);
  } catch (const IoError&) {
    ++append_failures_;
  }
  // Fold BEFORE deciding to rotate: the snapshot must cover this epoch.
  // Folding happens even when the append failed — the folded image mirrors
  // what the daemon believes, and a later successful rotation repairs the
  // journal to match it.
  fold_locked(record);
  ++checkpoints_since_snapshot_;
  if (rotate_after_ > 0 && checkpoints_since_snapshot_ >= rotate_after_) {
    rotate_locked();
  }
}

}  // namespace rfid::storage
