// Query-tree (binary tree walking) ID collection — a second baseline.
//
// The related-work section cites tree-based anti-collision ([2], [3]): the
// reader broadcasts a growing ID prefix; tags whose ID matches reply. An
// empty response prunes the subtree, a lone reply yields an ID, a collision
// splits the prefix into prefix·0 and prefix·1. The protocol is
// deterministic (no RNG on tags) and memoryless, and its query count is
// n·(2 + log2(n/…)) -ish — worse than dynamic framed ALOHA for uniform IDs,
// which bench/bench_baselines quantifies against Fig. 4's collect-all.
//
// Prefixes match the most-significant bits of the tag's 64-bit slot word
// (the same word every other protocol hashes), walked depth-first exactly as
// a reader would; collection can stop early once `stop_after_collected` IDs
// are in hand.
#pragma once

#include <cstdint>
#include <span>

#include "tag/tag.h"

namespace rfid::protocol {

struct TreeWalkResult {
  std::uint64_t total_queries = 0;  // every broadcast costs one slot
  std::uint64_t collected = 0;
  std::uint64_t empty_queries = 0;
  std::uint64_t singleton_queries = 0;
  std::uint64_t collision_queries = 0;
  std::uint32_t max_depth = 0;  // longest prefix broadcast
};

/// Runs the query-tree protocol over the present tags. Stops once
/// `stop_after_collected` IDs are collected (<= present.size()).
[[nodiscard]] TreeWalkResult run_tree_walk(std::span<const tag::Tag> present,
                                           std::uint64_t stop_after_collected);

}  // namespace rfid::protocol
