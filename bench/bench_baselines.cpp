// Baseline shoot-out: every ID-collection strategy vs TRP monitoring.
//
// Extends Fig. 4 with the two extra baselines this repo implements —
// query-tree walking (deterministic, cited in the paper's related work) and
// the EPC C1G2 Q algorithm (what deployed readers actually run) — in both
// slot counts and wall-clock time. The point the paper makes with one
// baseline holds against all three: any ID-collecting approach pays per tag,
// while TRP pays only for statistical confidence.
#include <cmath>
#include <cstdint>

#include "bench_common.h"
#include "math/frame_optimizer.h"
#include "protocol/collect_all.h"
#include "protocol/q_protocol.h"
#include "protocol/tree_walk.h"
#include "radio/timing.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rfid;
  auto opt = bench::parse_figure_options(argc, argv);
  opt.n_step = std::max<std::uint64_t>(opt.n_step, 400);
  const sim::TrialRunner runner(opt.threads);
  const hash::SlotHasher hasher;
  const radio::TimingModel timing;

  constexpr std::uint64_t kTolerance = 10;
  bench::banner("Baselines: slots to account for all but m = " +
                std::to_string(kTolerance) + " tags (" +
                std::to_string(opt.trials) + " trials/point)");

  util::Table slots({"n", "aloha_lee", "query_tree", "epc_q_algo", "trp_eq2"});
  util::Table time_ms({"n", "aloha_ms", "tree_ms", "q_ms", "trp_ms"});
  for (const std::uint64_t n : bench::tag_count_sweep(opt)) {
    if (kTolerance + 1 > n) continue;
    const std::uint64_t target = n - kTolerance;

    const auto aloha = runner.run_metric(
        opt.trials, util::derive_seed(opt.seed, n, 1),
        [&](std::uint64_t, util::Rng& rng) {
          const tag::TagSet set = tag::TagSet::make_random(n, rng);
          return static_cast<double>(
              protocol::run_collect_all(set.tags(), hasher,
                                        {.stop_after_collected = target}, rng)
                  .total_slots);
        });
    const auto tree = runner.run_metric(
        opt.trials, util::derive_seed(opt.seed, n, 2),
        [&](std::uint64_t, util::Rng& rng) {
          const tag::TagSet set = tag::TagSet::make_random(n, rng);
          return static_cast<double>(
              protocol::run_tree_walk(set.tags(), target).total_queries);
        });
    const auto q = runner.run_metric(
        opt.trials, util::derive_seed(opt.seed, n, 3),
        [&](std::uint64_t, util::Rng& rng) {
          const tag::TagSet set = tag::TagSet::make_random(n, rng);
          return static_cast<double>(
              protocol::run_q_protocol(set.tags(),
                                       {.stop_after_collected = target}, rng)
                  .total_slots);
        });
    const auto trp = math::optimize_trp_frame(n, kTolerance, opt.alpha, opt.model);

    slots.begin_row();
    slots.add_cell(static_cast<long long>(n));
    slots.add_cell(aloha.mean(), 1);
    slots.add_cell(tree.mean(), 1);
    slots.add_cell(q.mean(), 1);
    slots.add_cell(static_cast<long long>(trp.frame_size));

    // Wall-clock: ID-carrying slots for the collectors, short slots for TRP.
    // (Approximate compositions: collectors' singleton slots = target; the
    // rest split per their measured mixes — recompute one representative
    // trial for the split.)
    util::Rng rng(util::derive_seed(opt.seed, n, 4));
    const tag::TagSet set = tag::TagSet::make_random(n, rng);
    const auto aloha_run = protocol::run_collect_all(
        set.tags(), hasher, {.stop_after_collected = target}, rng);
    const auto tree_run = protocol::run_tree_walk(set.tags(), target);
    const auto q_run =
        protocol::run_q_protocol(set.tags(), {.stop_after_collected = target}, rng);
    const double trp_occupied =
        static_cast<double>(trp.frame_size) *
        (1.0 - std::exp(-static_cast<double>(n) / trp.frame_size));

    time_ms.begin_row();
    time_ms.add_cell(static_cast<long long>(n));
    time_ms.add_cell(aloha_run.elapsed_us(timing) / 1000.0, 1);
    time_ms.add_cell(timing.collect_all_us(tree_run.empty_queries,
                                           tree_run.singleton_queries,
                                           tree_run.collision_queries,
                                           /*rounds=*/1) /
                         1000.0,
                     1);
    time_ms.add_cell(timing.collect_all_us(q_run.empty_slots,
                                           q_run.singleton_slots,
                                           q_run.collision_slots,
                                           q_run.query_adjusts) /
                         1000.0,
                     1);
    time_ms.add_cell(
        timing.trp_scan_us(
            trp.frame_size - static_cast<std::uint64_t>(trp_occupied),
            static_cast<std::uint64_t>(trp_occupied)) /
            1000.0,
        1);
  }
  bench::emit(slots, opt);
  std::cout << "--- wall-clock (ID slots are ~6x short-reply slots) ---\n";
  bench::emit(time_ms, opt);
  return 0;
}
