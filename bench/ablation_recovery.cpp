// Ablation — recovery time vs journal length: what checkpoint rotation buys.
//
// The durability layer (src/storage) makes every monitoring round a journaled
// mutation; recovery replays the journal suffix through the ordinary server
// entry points. Replay cost therefore grows with the number of un-checkpointed
// rounds, while restoring from a rotated snapshot is one parse. This bench
// quantifies that trade so an operator can pick rotate_after_records: for each
// journal length it reports the journal size on storage, cold-recovery time
// (journal replay) and the same store recovered after one rotate() call
// (snapshot load, zero records replayed).
//
// Extra options beyond the common set (bench_common.h):
//   --tags N       group size (default 200)
//   --repeats R    recovery timing repetitions, best-of (default 5)
#include <chrono>
#include <cstdint>
#include <string>

#include "bench_common.h"
#include "protocol/utrp.h"
#include "storage/backend.h"
#include "storage/durable_server.h"
#include "tag/tag_set.h"
#include "util/table.h"

namespace {

using namespace rfid;

/// Enrolls one UTRP group and drives `rounds` intact rounds, all journaled.
void run_rounds(storage::DurableInventoryServer& durable, tag::TagSet& set,
                std::uint64_t rounds, util::Rng& rng) {
  const server::GroupId id{0};
  const protocol::UtrpReader reader;
  for (std::uint64_t i = 0; i < rounds; ++i) {
    const auto challenge = durable.challenge_utrp(id, rng);
    (void)durable.submit_utrp(id, challenge,
                              reader.scan(set.tags(), challenge).bitstring,
                              /*deadline_met=*/true);
    set.begin_round();
  }
}

/// Best-of-`repeats` wall time of recovering a fresh server from `backend`.
double recovery_ms(storage::MemoryBackend& backend, std::uint64_t repeats) {
  double best = 0.0;
  for (std::uint64_t i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const storage::DurableInventoryServer recovered(backend);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

std::uint64_t journal_bytes(const storage::MemoryBackend& backend) {
  std::uint64_t total = 0;
  for (const std::string& name : backend.list()) {
    if (name.find(".journal.") != std::string::npos) {
      total += backend.read(name).size();
    }
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs* extra = nullptr;
  const auto opt =
      bench::parse_figure_options(argc, argv, &extra, {"tags", "repeats"});
  const auto tags = static_cast<std::uint64_t>(extra->get_int_or("tags", 200));
  const auto repeats =
      static_cast<std::uint64_t>(extra->get_int_or("repeats", 5));

  bench::banner("Recovery time vs journal length (group of " +
                std::to_string(tags) + " tags, UTRP rounds journaled)");

  util::Table table({"journal_records", "journal_kb", "recovery_ms",
                     "records_replayed", "rotated_recovery_ms"});
  for (const std::uint64_t rounds :
       {0ULL, 25ULL, 50ULL, 100ULL, 200ULL, 400ULL, 800ULL}) {
    util::Rng rng(util::derive_seed(opt.seed, rounds));
    storage::MemoryBackend backend;
    tag::TagSet set = tag::TagSet::make_random(tags, rng);
    {
      storage::DurableInventoryServer durable(backend);
      server::GroupConfig config;
      config.name = "bench";
      config.policy = {.tolerated_missing = 5, .confidence = opt.alpha};
      config.protocol = server::ProtocolKind::kUtrp;
      config.comm_budget = opt.budget;
      (void)durable.enroll(set, config);
      run_rounds(durable, set, rounds, rng);
    }

    const double cold = recovery_ms(backend, repeats);
    const std::uint64_t bytes = journal_bytes(backend);
    std::uint64_t replayed = 0;
    {
      storage::DurableInventoryServer durable(backend);
      replayed = durable.recovery_report().records_replayed;
      durable.rotate();  // checkpoint: next recovery loads the snapshot
    }
    const double warm = recovery_ms(backend, repeats);

    table.begin_row();
    table.add_cell(static_cast<unsigned long long>(rounds + 1));  // + enroll
    table.add_cell(static_cast<double>(bytes) / 1024.0, 1);
    table.add_cell(cold, 3);
    table.add_cell(static_cast<unsigned long long>(replayed));
    table.add_cell(warm, 3);
  }
  bench::emit(table, opt);
  return 0;
}
