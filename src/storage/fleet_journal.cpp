#include "storage/fleet_journal.h"

#include <bit>
#include <span>
#include <stdexcept>
#include <utility>

#include "hash/fnv.h"
#include "util/expect.h"

namespace rfid::storage {

namespace {

enum class RecordKind : std::uint8_t {
  kRunStart = 1,
  kZone = 2,
  kRunEnd = 3,
};

// Little-endian scalar encoding, same shape as the WAL's (journal.cpp keeps
// its writer/reader private, and the two formats should be free to drift).
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
    }
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(std::string_view v) {
    u32(static_cast<std::uint32_t>(v.size()));
    out_.append(v);
  }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    return static_cast<std::uint8_t>(take(1)[0]);
  }
  [[nodiscard]] std::uint32_t u32() {
    const std::string_view b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(b[static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    const std::string_view b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(b[static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    return v;
  }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] std::string_view bytes() { return take(u32()); }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  [[nodiscard]] std::string_view take(std::size_t n) {
    RFID_EXPECT(data_.size() - pos_ >= n, "fleet journal payload truncated");
    const std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

[[nodiscard]] std::uint64_t checksum_of(std::string_view payload) noexcept {
  return hash::fnv1a64(std::as_bytes(std::span(payload.data(), payload.size())));
}

[[nodiscard]] std::string encode_payload(const FleetJournalRecord& record) {
  ByteWriter w;
  std::visit(
      [&w](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, FleetRunStartRecord>) {
          w.u8(static_cast<std::uint8_t>(RecordKind::kRunStart));
          w.u64(r.seed);
          w.bytes(r.fleet);
          w.u64(r.config_hash);
        } else if constexpr (std::is_same_v<T, FleetZoneRecord>) {
          w.u8(static_cast<std::uint8_t>(RecordKind::kZone));
          w.bytes(r.inventory);
          w.u64(r.zone);
          w.u8(r.status);
          w.u32(r.attempts);
          w.u8(r.last_failure);
          w.u8(r.resynced ? 1 : 0);
          w.u64(r.rounds_completed);
          w.u64(r.intact_rounds);
          w.u64(r.mismatched_rounds);
          w.u64(r.deadline_missed_rounds);
          w.u64(r.frames_sent);
          w.u64(r.retransmissions);
          w.f64(r.duration_us);
          w.u32(r.readers);
          w.u64(r.degraded_rounds);
          w.u32(r.suspected_readers);
        } else {
          w.u8(static_cast<std::uint8_t>(RecordKind::kRunEnd));
          w.u8(r.verdict);
        }
      },
      record);
  return w.take();
}

[[nodiscard]] FleetJournalRecord decode_payload(std::string_view payload) {
  ByteReader r(payload);
  const auto kind = static_cast<RecordKind>(r.u8());
  FleetJournalRecord out;
  switch (kind) {
    case RecordKind::kRunStart: {
      FleetRunStartRecord rec;
      rec.seed = r.u64();
      rec.fleet = std::string(r.bytes());
      rec.config_hash = r.u64();
      out = std::move(rec);
      break;
    }
    case RecordKind::kZone: {
      FleetZoneRecord rec;
      rec.inventory = std::string(r.bytes());
      rec.zone = r.u64();
      rec.status = r.u8();
      rec.attempts = r.u32();
      rec.last_failure = r.u8();
      rec.resynced = r.u8() != 0;
      rec.rounds_completed = r.u64();
      rec.intact_rounds = r.u64();
      rec.mismatched_rounds = r.u64();
      rec.deadline_missed_rounds = r.u64();
      rec.frames_sent = r.u64();
      rec.retransmissions = r.u64();
      rec.duration_us = r.f64();
      rec.readers = r.u32();
      rec.degraded_rounds = r.u64();
      rec.suspected_readers = r.u32();
      out = std::move(rec);
      break;
    }
    case RecordKind::kRunEnd: {
      FleetRunEndRecord rec;
      rec.verdict = r.u8();
      out = rec;
      break;
    }
    default:
      throw std::invalid_argument("unknown fleet journal record kind");
  }
  RFID_EXPECT(r.exhausted(), "trailing bytes in fleet journal payload");
  return out;
}

}  // namespace

std::string encode_fleet_record(const FleetJournalRecord& record) {
  const std::string payload = encode_payload(record);
  ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u64(checksum_of(payload));
  std::string out = frame.take();
  out += payload;
  return out;
}

FleetJournalScan scan_fleet_journal(std::string_view bytes) {
  FleetJournalScan scan;
  if (bytes.substr(0, kFleetJournalMagic.size()) != kFleetJournalMagic) {
    scan.dropped_bytes = bytes.size();
    return scan;
  }
  scan.header_valid = true;
  std::size_t pos = kFleetJournalMagic.size();
  scan.valid_bytes = pos;
  constexpr std::size_t kFrameHeader = 4 + 8;
  while (bytes.size() - pos >= kFrameHeader) {
    ByteReader frame(bytes.substr(pos, kFrameHeader));
    const std::uint32_t len = frame.u32();
    const std::uint64_t declared = frame.u64();
    if (bytes.size() - pos - kFrameHeader < len) break;  // torn tail
    const std::string_view payload = bytes.substr(pos + kFrameHeader, len);
    if (checksum_of(payload) != declared) break;  // torn or rotted
    try {
      scan.records.push_back(decode_payload(payload));
    } catch (const std::invalid_argument&) {
      break;  // checksum collision on garbage; treat as corruption
    }
    pos += kFrameHeader + len;
    scan.valid_bytes = pos;
  }
  scan.dropped_bytes = bytes.size() - scan.valid_bytes;
  return scan;
}

std::map<std::pair<std::string, std::uint64_t>, FleetZoneRecord>
recover_interrupted_run(const FleetJournalScan& scan, std::uint64_t seed,
                        std::string_view fleet) {
  return recover_interrupted_run_checked(scan, seed, fleet, 0).zones;
}

FleetRecovery recover_interrupted_run_checked(const FleetJournalScan& scan,
                                              std::uint64_t seed,
                                              std::string_view fleet,
                                              std::uint64_t config_hash) {
  // Find the last start record; only its suffix describes the current run.
  std::size_t start = scan.records.size();
  for (std::size_t i = scan.records.size(); i-- > 0;) {
    if (std::holds_alternative<FleetRunStartRecord>(scan.records[i])) {
      start = i;
      break;
    }
  }
  FleetRecovery recovery;
  if (start == scan.records.size()) return recovery;
  const auto& begun = std::get<FleetRunStartRecord>(scan.records[start]);
  if (begun.seed != seed || begun.fleet != fleet) return recovery;
  for (std::size_t i = start + 1; i < scan.records.size(); ++i) {
    if (std::holds_alternative<FleetRunEndRecord>(scan.records[i])) {
      recovery.zones.clear();  // the run finished; nothing to resume
      return recovery;
    }
    const auto& zone = std::get<FleetZoneRecord>(scan.records[i]);
    recovery.zones.insert_or_assign({zone.inventory, zone.zone}, zone);
  }
  // A hash of 0 on either side means "unknown" (hand-built journal or a
  // caller that opted out) — folding proceeds unchecked, preserving the
  // pre-fingerprint behavior. Two known-but-different hashes mean the plan
  // changed between crash and restart: quarantine, never merge.
  if (config_hash != 0 && begun.config_hash != 0 &&
      begun.config_hash != config_hash) {
    recovery.stale = true;
    recovery.stale_records = recovery.zones.size();
    recovery.zones.clear();
  }
  return recovery;
}

FleetJournalScan FleetJournal::load() const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!backend_.exists(name_)) return {};
  try {
    return scan_fleet_journal(backend_.read(name_));
  } catch (const IoError&) {
    return {};
  }
}

void FleetJournal::begin(const FleetRunStartRecord& start,
                         const std::vector<FleetZoneRecord>& carried) {
  const std::lock_guard<std::mutex> lock(mu_);
  // temp -> flush -> rename (the durable_server rotation idiom): the old
  // journal — and any carried records it holds — stays readable until the
  // new one is fully durable, so a crash anywhere in here loses nothing,
  // and a failed write can never leave a headerless file that later
  // appends would extend into an unreadable journal.
  const std::string tmp = name_ + ".tmp";
  try {
    if (backend_.exists(tmp)) backend_.remove(tmp);
    std::string bytes(kFleetJournalMagic);
    bytes += encode_fleet_record(start);
    for (const FleetZoneRecord& zone : carried) {
      bytes += encode_fleet_record(zone);
    }
    backend_.append(tmp, bytes);
    backend_.flush(tmp);
    backend_.rename(tmp, name_);
  } catch (const IoError&) {
    ++append_failures_;
  }
}

void FleetJournal::append(const FleetJournalRecord& record) {
  const std::lock_guard<std::mutex> lock(mu_);
  append_locked(record);
}

void FleetJournal::append_locked(const FleetJournalRecord& record) {
  try {
    backend_.append(name_, encode_fleet_record(record));
    backend_.flush(name_);
  } catch (const IoError&) {
    ++append_failures_;
  }
}

}  // namespace rfid::storage
