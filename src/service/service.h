// MonitorService: the multi-tenant network front-end of the monitoring
// stack — the subsystem that turns in-process protocol machinery into a
// server real clients can hammer.
//
// One IO thread multiplexes every connection (poll-based, non-blocking)
// across two loopback listeners on ephemeral ports:
//
//   * the *service* port speaks the framed protocol of framing.h /
//     messages.h: hello -> enroll-inventory -> start-monitoring-run /
//     start-watch -> streamed verdicts, run alerts, and tenant alert
//     subscriptions (daemon alerts with the PR 9 named stolen tags ride a
//     per-tenant feed);
//   * the *HTTP* port is a plain-text scrape endpoint: GET /metrics renders
//     the obs registry as Prometheus exposition text, /metrics.json as the
//     JSON schema, /healthz as a liveness probe.
//
// Monitoring work never runs on the IO thread: admitted runs execute as
// tasks on a FleetScheduler worker pool (one FleetOrchestrator per run,
// admission-stamp EDF order), and completions travel back over a queue plus
// self-pipe wakeup. The IO thread owns all connection/tenant state, so the
// request path needs no locks at all.
//
// Admission control (the fleet wave machinery, fronted per tenant):
//
//   * token bucket per tenant (capacity + refill/s) — a tenant out of
//     tokens is REJECTED with an explicit Backpressure frame carrying
//     retry_after_ms, never silently queued;
//   * bounded in-flight runs, per tenant and globally, mapped onto
//     fleet::Admission — a request over the in-flight bound is DEFERRED
//     into a bounded FIFO wave queue (the response says so, with the queue
//     depth), and when that queue is full it is REJECTED with retry-after;
//   * slow consumers are bounded too: a connection whose outbox exceeds
//     its limit is closed, not buffered without bound.
//
// Graceful shutdown contract (stop()):
//   1. new runs are refused with Backpressure("shutting down"); connected
//      clients receive a Shutdown frame naming the drain budget;
//   2. in-flight AND already-admitted deferred runs drain through
//      FleetScheduler — their verdicts still stream out;
//   3. if the drain budget expires, the shared abort switch flips and the
//      pool stops without draining (FleetScheduler::stop(false)) — fleet
//      runs report themselves aborted, and in-flight watches observe the
//      same switch via DaemonConfig::abort and give up (their checkpointed
//      epochs stay durable), exactly like a daemon watchdog kill;
//   4. outboxes are flushed best-effort, sockets close, stats come back.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>

#include "obs/metrics.h"

namespace rfid::service {

struct ServiceConfig {
  /// Listener ports; 0 (the default) binds an ephemeral loopback port —
  /// what every hermetic test and bench uses. port()/http_port() report
  /// the bound values after start().
  std::uint16_t port = 0;
  std::uint16_t http_port = 0;
  /// Worker threads executing admitted runs (the service's FleetScheduler).
  unsigned workers = 2;
  /// Fleet worker threads inside one run's orchestrator.
  unsigned run_threads = 1;
  /// Hard ceiling on one frame's payload; a larger declared length is
  /// rejected before allocation.
  std::uint32_t max_frame_bytes = 1u << 20;
  std::uint64_t max_connections = 4096;
  std::uint64_t max_inventories_per_tenant = 64;
  std::uint64_t max_watch_epochs = 16;

  // ---- admission ----
  double tokens_per_sec = 200.0;   // token bucket refill rate, per tenant
  double token_capacity = 64.0;    // token bucket burst capacity
  std::uint64_t max_inflight_per_tenant = 2;
  std::uint64_t max_inflight = 8;  // global in-flight run bound
  std::uint64_t max_deferred = 64;  // wave queue bound; beyond = reject
  /// Retry hint when the wave queue itself is saturated.
  std::uint64_t reject_retry_ms = 100;

  /// Slow-consumer bound: queued-but-unsent bytes before the connection is
  /// closed instead of buffered further.
  std::uint64_t outbox_limit_bytes = 8u << 20;
  /// Retained per-tenant alert-feed entries (subscription backlog).
  std::uint64_t alert_backlog = 1024;
  /// Durable-watch root. Empty (the default) gives each watch an
  /// in-memory backend: checkpoints exist for the watch's own resume
  /// logic but die with the process. Non-empty switches watches to
  /// storage::FileBackend under `<journal_dir>/watch-<run_id>` — one
  /// directory per watch, named by the server-generated run id only
  /// (never by client-supplied strings), so a kill mid-watch leaves the
  /// daemon + fleet journals on disk exactly as daemon_torture_test
  /// pins them.
  std::string journal_dir;
  /// Graceful-drain budget for stop().
  std::chrono::milliseconds drain_timeout{5000};

  /// Metrics registry (not owned; may be null). Runs also record their
  /// fleet_* series here; the service adds the service_* family.
  obs::MetricsRegistry* metrics = nullptr;
  /// Clock seam (microseconds, monotone) for token buckets and run
  /// latency. Null = steady_clock. Tests inject a manual clock to pin
  /// rate-limit arithmetic deterministically.
  std::function<std::uint64_t()> clock_us;
};

struct ServiceStats {
  std::uint64_t connections = 0;  // client + http, lifetime
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t frame_errors = 0;
  std::uint64_t admitted = 0;
  std::uint64_t deferred = 0;
  std::uint64_t rejected = 0;
  std::uint64_t runs_completed = 0;
  std::uint64_t runs_aborted = 0;
  /// stop() drained every admitted run inside the budget; false means the
  /// abort switch fired and some runs came back aborted.
  bool drained_cleanly = true;
};

class MonitorService {
 public:
  explicit MonitorService(ServiceConfig config);
  ~MonitorService();

  MonitorService(const MonitorService&) = delete;
  MonitorService& operator=(const MonitorService&) = delete;

  /// Binds both listeners and launches the IO thread. Call once.
  void start();

  /// Bound service / scrape ports (valid after start()).
  [[nodiscard]] std::uint16_t port() const noexcept;
  [[nodiscard]] std::uint16_t http_port() const noexcept;

  /// Graceful shutdown per the contract above. Idempotent; also invoked by
  /// the destructor.
  ServiceStats stop();

  [[nodiscard]] bool running() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rfid::service
