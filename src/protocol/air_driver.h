// Discrete-event execution of protocol rounds on the simulated air interface.
//
// The figure benches only need slot *counts*; the timing analyses of
// Sec. 5.4 (deadline t, STmin/STmax envelopes, adversary budget c) need slot
// *times*. AirDriver replays a round on sim::EventQueue with one event per
// medium occupancy — query broadcast, each slot boundary, every UTRP re-seed
// broadcast — using radio::TimingModel durations. The result carries the
// bitstring, the exact finish time, and the full timeline, so tests can
// assert that event-driven time equals the closed-form scan-time formulas
// and examples can derive realistic deadlines.
#pragma once

#include <cstdint>
#include <vector>

#include "bitstring/bitstring.h"
#include "protocol/messages.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "radio/timing.h"
#include "sim/event_queue.h"

namespace rfid::protocol {

enum class AirEventKind : std::uint8_t {
  kQueryBroadcast,   // initial (f, r) announcement
  kEmptySlot,
  kReplySlot,
  kReseedBroadcast,  // UTRP (f', r_next)
};

struct AirEvent {
  sim::SimTime at = 0.0;  // time the medium became free again (end of event)
  AirEventKind kind = AirEventKind::kQueryBroadcast;
  std::uint32_t slot = 0;  // global slot index for slot events
};

struct AirRunResult {
  bits::Bitstring bitstring;
  double finish_us = 0.0;
  std::vector<AirEvent> timeline;
};

class AirDriver {
 public:
  explicit AirDriver(radio::TimingModel timing = {},
                     hash::SlotHasher hasher = hash::SlotHasher{},
                     radio::ChannelModel channel = {})
      : timing_(timing), hasher_(hasher), channel_(channel) {}

  /// One TRP round, event by event. `queue` keeps advancing from its current
  /// time (rounds can be chained on one queue).
  [[nodiscard]] AirRunResult run_trp_round(sim::EventQueue& queue,
                                           std::span<const tag::Tag> present,
                                           const TrpChallenge& challenge,
                                           util::Rng& rng) const;

  /// One UTRP round (ideal channel): tags mutate exactly as in utrp_scan;
  /// each observed reply additionally costs a re-seed broadcast.
  [[nodiscard]] AirRunResult run_utrp_round(sim::EventQueue& queue,
                                            std::span<tag::Tag> present,
                                            const UtrpChallenge& challenge) const;

 private:
  radio::TimingModel timing_;
  hash::SlotHasher hasher_;
  radio::ChannelModel channel_;
};

}  // namespace rfid::protocol
