#include "obs/expose.h"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <string_view>

#include "util/expect.h"

namespace rfid::obs {

std::string format_double(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  RFID_ENSURE(result.ec == std::errc{}, "to_chars cannot fail on a double");
  return std::string(buffer, result.ptr);
}

namespace {

/// Counters hold integral values in a double; print them without a decimal
/// point (Prometheus convention for counters).
[[nodiscard]] std::string format_value(double value, bool integral) {
  if (integral && std::isfinite(value)) {
    return std::to_string(static_cast<std::uint64_t>(value));
  }
  return format_double(value);
}

void append_escaped_label(std::string& out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

/// {a="x",b="y"} — empty when there are no labels. `extra` appends one more
/// pair (the histogram le label).
[[nodiscard]] std::string label_block(
    const std::vector<std::string>& names,
    const std::vector<std::string>& values, std::string_view extra_name = {},
    std::string_view extra_value = {}) {
  if (names.empty() && extra_name.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ',';
    out += names[i];
    out += "=\"";
    append_escaped_label(out, values[i]);
    out += '"';
  }
  if (!extra_name.empty()) {
    if (!names.empty()) out += ',';
    out += extra_name;
    out += "=\"";
    append_escaped_label(out, extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

void append_json_string(std::string& out, std::string_view value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += hex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// JSON numbers reject Inf/NaN; quote them (consumers of this schema treat
/// the three literals specially).
void append_json_number(std::string& out, double value) {
  if (std::isfinite(value)) {
    out += format_double(value);
  } else {
    append_json_string(out, format_double(value));
  }
}

void append_json_label_array(std::string& out,
                             const std::vector<std::string>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    append_json_string(out, values[i]);
  }
  out += ']';
}

[[nodiscard]] std::string_view kind_name(Snapshot::Kind kind) {
  switch (kind) {
    case Snapshot::Kind::kCounter: return "counter";
    case Snapshot::Kind::kGauge: return "gauge";
    case Snapshot::Kind::kHistogram: return "histogram";
  }
  return "unknown";
}

}  // namespace

std::string render_prometheus(const Snapshot& snapshot) {
  std::string out;
  for (const Snapshot::Family& family : snapshot.families) {
    out += "# HELP " + family.name + ' ' + family.help + '\n';
    out += "# TYPE " + family.name + ' ';
    out += kind_name(family.kind);
    out += '\n';
    for (const Snapshot::Series& series : family.series) {
      if (family.kind != Snapshot::Kind::kHistogram) {
        out += family.name +
               label_block(family.label_names, series.label_values) + ' ' +
               format_value(series.value,
                            family.kind == Snapshot::Kind::kCounter) +
               '\n';
        continue;
      }
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < series.bucket_counts.size(); ++b) {
        cumulative += series.bucket_counts[b];
        const std::string le = b < family.upper_bounds.size()
                                   ? format_double(family.upper_bounds[b])
                                   : "+Inf";
        out += family.name + "_bucket" +
               label_block(family.label_names, series.label_values, "le", le) +
               ' ' + std::to_string(cumulative) + '\n';
      }
      out += family.name + "_sum" +
             label_block(family.label_names, series.label_values) + ' ' +
             format_double(series.sum) + '\n';
      out += family.name + "_count" +
             label_block(family.label_names, series.label_values) + ' ' +
             std::to_string(series.count) + '\n';
    }
  }
  return out;
}

std::string render_json(const Snapshot& snapshot, const SessionLog* sessions) {
  std::string out = "{\n";
  const char* kind_keys[] = {"counters", "gauges", "histograms"};
  for (int k = 0; k < 3; ++k) {
    const auto kind = static_cast<Snapshot::Kind>(k);
    out += "  \"";
    out += kind_keys[k];
    out += "\": [";
    bool first_family = true;
    for (const Snapshot::Family& family : snapshot.families) {
      if (family.kind != kind) continue;
      if (!first_family) out += ',';
      first_family = false;
      out += "\n    {\"name\":";
      append_json_string(out, family.name);
      out += ",\"help\":";
      append_json_string(out, family.help);
      out += ",\"labelNames\":";
      append_json_label_array(out, family.label_names);
      if (kind == Snapshot::Kind::kHistogram) {
        out += ",\"upperBounds\":[";
        for (std::size_t i = 0; i < family.upper_bounds.size(); ++i) {
          if (i > 0) out += ',';
          append_json_number(out, family.upper_bounds[i]);
        }
        out += ']';
      }
      out += ",\"series\":[";
      for (std::size_t s = 0; s < family.series.size(); ++s) {
        const Snapshot::Series& series = family.series[s];
        if (s > 0) out += ',';
        out += "\n      {\"labels\":";
        append_json_label_array(out, series.label_values);
        if (kind == Snapshot::Kind::kHistogram) {
          out += ",\"bucketCounts\":[";
          for (std::size_t b = 0; b < series.bucket_counts.size(); ++b) {
            if (b > 0) out += ',';
            out += std::to_string(series.bucket_counts[b]);
          }
          out += "],\"count\":" + std::to_string(series.count) + ",\"sum\":";
          append_json_number(out, series.sum);
        } else if (kind == Snapshot::Kind::kCounter) {
          out += ",\"value\":" + format_value(series.value, true);
        } else {
          out += ",\"value\":";
          append_json_number(out, series.value);
        }
        out += '}';
      }
      if (!family.series.empty()) out += "\n    ";
      out += "]}";
    }
    if (!first_family) out += "\n  ";
    out += "],\n";
  }
  out += "  \"sessions\": [";
  if (sessions != nullptr) {
    const std::vector<SessionSummary> recent = sessions->recent();
    for (std::size_t i = 0; i < recent.size(); ++i) {
      const SessionSummary& s = recent[i];
      if (i > 0) out += ',';
      out += "\n    {\"protocol\":";
      append_json_string(out, s.protocol);
      out += ",\"group\":";
      append_json_string(out, s.group);
      // Fleet provenance is rendered only for orchestrated sessions so the
      // standalone exposition (and its golden files) is unchanged.
      if (!s.fleet.empty()) {
        out += ",\"fleet\":";
        append_json_string(out, s.fleet);
        out += ",\"attempt\":" + std::to_string(s.attempt);
      }
      // Likewise the reader index appears only for fused (k > 1) zones.
      if (s.readers > 1) {
        out += ",\"reader\":" + std::to_string(s.reader);
        out += ",\"readers\":" + std::to_string(s.readers);
      }
      out += ",\"completed\":";
      out += s.completed ? "true" : "false";
      out += ",\"outcome\":";
      append_json_string(out, s.outcome);
      out += ",\"roundsCompleted\":" + std::to_string(s.rounds_completed);
      out += ",\"roundFailures\":" + std::to_string(s.round_failures);
      out += ",\"framesSent\":" + std::to_string(s.frames_sent);
      out += ",\"retransmissions\":" + std::to_string(s.retransmissions);
      out += ",\"durationUs\":";
      append_json_number(out, s.duration_us);
      out += '}';
    }
    if (!recent.empty()) out += "\n  ";
  }
  out += "]\n}\n";
  return out;
}

}  // namespace rfid::obs
