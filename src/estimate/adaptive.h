// Adaptive multi-frame cardinality estimation (extension; the full version
// of the Kodialam & Nandagopal idea the single-frame estimators sketch).
//
// A single frame only estimates well when its load ρ = n/f sits in a sweet
// spot (empty fraction neither ~0 nor ~1). When n is unknown a priori, probe:
//
//   1. scan with a small frame; while it comes back saturated (no empty
//      slots), grow the frame geometrically — each probe costs little and
//      brackets n from below;
//   2. once a probe lands in the informative band, re-scan with the frame
//      sized to the current estimate (load ≈ 1) and average zero-estimator
//      readings until the standard error undercuts `target_relative_error`.
//
// The result reports the estimate, its standard error, and the total slots
// spent — the budget a monitoring server pays to learn a group's size before
// it can even size an Eq. (2) frame for a population nobody enrolled
// precisely.
#pragma once

#include <cstdint>
#include <functional>

#include "estimate/cardinality.h"
#include "hash/slot_hash.h"
#include "tag/tag.h"
#include "util/random.h"

#include <span>

namespace rfid::estimate {

struct AdaptiveConfig {
  std::uint32_t initial_frame = 16;
  double growth_factor = 4.0;         // frame multiplier while saturated
  double target_relative_error = 0.05;
  std::uint32_t max_probes = 64;      // hard stop (probe + refine combined)
};

struct AdaptiveEstimate {
  double estimate = 0.0;
  double std_error = 0.0;
  std::uint64_t probes = 0;        // frames transmitted in phase 1
  std::uint64_t refine_rounds = 0; // frames transmitted in phase 2
  std::uint64_t total_slots = 0;
  bool converged = false;          // hit the target error before max_probes
};

/// Estimates how many of `tags` are present using repeated real frames
/// (ideal channel). `rng` supplies the per-frame random numbers r.
[[nodiscard]] AdaptiveEstimate estimate_adaptive(std::span<const tag::Tag> tags,
                                                 const hash::SlotHasher& hasher,
                                                 const AdaptiveConfig& config,
                                                 util::Rng& rng);

}  // namespace rfid::estimate
