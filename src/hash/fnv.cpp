#include "hash/fnv.h"

namespace rfid::hash {

std::uint64_t fnv1a64(std::span<const std::byte> data) noexcept {
  std::uint64_t h = kFnv64OffsetBasis;
  for (const std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= kFnv64Prime;
  }
  return h;
}

std::uint32_t fnv1a32(std::span<const std::byte> data) noexcept {
  std::uint32_t h = kFnv32OffsetBasis;
  for (const std::byte b : data) {
    h ^= static_cast<std::uint32_t>(b);
    h *= kFnv32Prime;
  }
  return h;
}

}  // namespace rfid::hash
