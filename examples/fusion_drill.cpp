// Reader-fusion walkthrough: surviving a compromised reader.
//
// Act 1 — the blind spot: one reader per zone, and that reader is the
//         thief's. It forges the expected bitstring of the full enrolled
//         set; TRP verifies the robbed zone "intact" every time.
// Act 2 — k = 3 fusion: three overlapping readers scan the same frame,
//         the per-slot majority vote overrules the forger, the theft is
//         detected, and the trust tier names the compromised reader.
// Act 3 — the price sheet: generalized Theorem 1 frame sizes for
//         k ∈ {1, 2, 3, 5} under slot loss — why 2-of-2 voting is the
//         expensive way to buy redundancy and 2-of-3 is the knee.
#include <cstdio>
#include <utility>

#include "rfidmon.h"

namespace {

rfid::fleet::FleetResult run_zone(std::uint64_t seed, std::uint32_t readers,
                                  bool dishonest) {
  using namespace rfid;
  fleet::FleetOrchestrator orchestrator(
      {.seed = seed, .threads = 1, .fleet_name = "drill"});
  util::Rng rng(seed);
  fleet::InventorySpec spec;
  spec.name = "vault";
  spec.tags = tag::TagSet::make_random(80, rng);
  spec.plan = server::plan_groups({.total_tags = 80,
                                   .total_tolerance = 2,
                                   .alpha = 0.95,
                                   .max_group_size = 0});
  spec.rounds = 2;
  spec.fusion.readers = readers;
  for (std::uint64_t t = 0; t < 10; ++t) spec.stolen.push_back(t);
  if (dishonest) spec.dishonest_readers.emplace_back(0, 0);
  orchestrator.submit(std::move(spec));
  return orchestrator.run();
}

}  // namespace

int main() {
  using namespace rfid;

  std::printf("=== Act 1: the forging reader owns the only evidence ===\n");
  std::printf("10 of 80 tags stolen (tolerance m = 2); the zone's single\n"
              "reader forges 'all enrolled tags present'.\n");
  const fleet::FleetResult blind = run_zone(42, 1, true);
  std::printf("k = 1 verdict: %s\n\n",
              blind.verdict == fleet::GlobalVerdict::kIntact
                  ? "INTACT — the theft is invisible"
                  : "violated");

  std::printf("=== Act 2: three readers, one forger ===\n");
  const fleet::FleetResult fused = run_zone(42, 3, true);
  std::printf("k = 3 verdict: %s\n",
              fused.verdict == fleet::GlobalVerdict::kViolated
                  ? "VIOLATED — honest majority overrules the forger"
                  : "intact (bad!)");
  const fleet::ZoneReport& zone = fused.inventories.at(0).zones.at(0);
  std::printf("fused slots: %llu, phantom busy votes overruled: %llu\n",
              static_cast<unsigned long long>(zone.fused_slots),
              static_cast<unsigned long long>(zone.phantom_votes));
  for (const fleet::ReaderReport& reader : zone.readers) {
    std::printf("  reader %u: trust %.2f%s\n", reader.reader, reader.trust,
                reader.suspect ? "  << SUSPECT (persistently outvoted)" : "");
  }

  std::printf("\n=== Act 3: what redundancy costs (n = 500, m = 20, "
              "alpha = 0.95, slot loss p = 0.01) ===\n");
  std::printf("%3s  %6s  %10s  %s\n", "k", "vote", "frame", "note");
  for (const std::uint32_t k : {1u, 2u, 3u, 5u}) {
    const math::FusedSizingParams sizing{k, 0, 0.01, 0.025};
    const auto plan = math::optimize_fused_trp_frame(500, 20, 0.95, sizing);
    const char* note =
        k == 1   ? "one noisy reader: threshold T absorbs p"
        : k == 2 ? "2-of-2: any lost reply fuses empty; frames balloon"
        : k == 3 ? "2-of-3 absorbs one loss per slot; the knee"
                 : "3-of-5: more margin, same scale";
    std::printf("%3u  %2u-of-%u  %10u  %s\n", k,
                math::fused_vote_threshold(k), k, plan.frame_size, note);
  }
  std::printf("\nThe daemon layers a health tier on top: a reader suspect\n"
              "epoch after epoch is quarantined out of the scan rotation and\n"
              "paroled after a cooldown (docs/fusion.md).\n");
  return 0;
}
