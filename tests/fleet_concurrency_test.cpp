// ThreadSanitizer hammer for the fleet subsystem. These tests exist to be
// run under -fsanitize=thread (see the thread-sanitize CI job): they drive
// the work-stealing scheduler and the orchestrator hard enough that any
// missing happens-before edge — submit/steal races, requeue hand-offs, the
// wait_idle barrier, concurrent journal appends — shows up as a TSan
// report. Functional assertions are deliberately light; correctness is
// pinned elsewhere (fleet_test, fleet_determinism_test).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "fleet/fleet.h"
#include "fleet/scheduler.h"
#include "obs/metrics.h"
#include "obs/session_log.h"
#include "obs/trace.h"
#include "server/group_planner.h"
#include "storage/backend.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using namespace rfid;

// Many external threads submit into the scheduler while tasks themselves
// requeue follow-ups — the exact shape of a fleet run's retry traffic.
TEST(FleetConcurrencyHammer, ConcurrentSubmittersAndRequeues) {
  fleet::FleetScheduler scheduler(8);
  std::atomic<std::uint64_t> ran{0};

  constexpr int kSubmitters = 4;
  constexpr int kTasksPerSubmitter = 200;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&scheduler, &ran, s] {
      for (int i = 0; i < kTasksPerSubmitter; ++i) {
        const double deadline = static_cast<double>((s * 7 + i * 13) % 97);
        scheduler.submit(deadline, [&scheduler, &ran, i] {
          ran.fetch_add(1, std::memory_order_relaxed);
          if (i % 5 == 0) {  // a retryable zone resubmitting itself
            scheduler.submit(1.0, [&ran] {
              ran.fetch_add(1, std::memory_order_relaxed);
            });
          }
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  scheduler.wait_idle();

  constexpr std::uint64_t kExpected =
      kSubmitters * kTasksPerSubmitter +
      kSubmitters * (kTasksPerSubmitter / 5);
  EXPECT_EQ(ran.load(), kExpected);
  EXPECT_EQ(scheduler.executed(), kExpected);
}

// Back-to-back waves through one scheduler: wait_idle must be a full
// barrier (every effect of wave N visible before wave N+1 is submitted).
TEST(FleetConcurrencyHammer, RepeatedWaveBarriers) {
  fleet::FleetScheduler scheduler(8);
  std::uint64_t unguarded = 0;  // only safe if wait_idle really is a barrier
  for (int wave = 0; wave < 50; ++wave) {
    std::atomic<int> wave_ran{0};
    for (int i = 0; i < 32; ++i) {
      scheduler.submit(static_cast<double>(i), [&wave_ran] {
        wave_ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    scheduler.wait_idle();
    unguarded += static_cast<std::uint64_t>(wave_ran.load());
  }
  EXPECT_EQ(unguarded, 50u * 32u);
}

// A full orchestrated fleet at 8 threads: 64+ zones across 4 inventories,
// retryable crash faults (requeue traffic), a theft, a journal backend
// (concurrent appends), and the whole observability stack.
TEST(FleetConcurrencyHammer, SixtyFourZoneFleetUnderTsan) {
  obs::MetricsRegistry metrics;
  double clock = 0.0;
  obs::Tracer tracer([&clock] { return clock += 1.0; });
  obs::SessionLog log(512);
  storage::MemoryBackend backend;

  fleet::FleetOrchestrator orchestrator({.seed = 99,
                                         .threads = 8,
                                         .max_zone_attempts = 3,
                                         .fleet_name = "hammer",
                                         .metrics = &metrics,
                                         .tracer = &tracer,
                                         .session_log = &log,
                                         .journal_backend = &backend});

  util::Rng rng(31337);
  for (int i = 0; i < 4; ++i) {
    fleet::InventorySpec spec;
    spec.name = "inv" + std::to_string(i);
    spec.tags = tag::TagSet::make_random(320, rng);
    spec.plan = server::plan_groups({.total_tags = 320,
                                     .total_tolerance = 8,
                                     .alpha = 0.95,
                                     .max_group_size = 20});
    spec.rounds = 1;
    if (i == 2) {
      for (std::uint64_t t = 0; t < 12; ++t) spec.stolen.push_back(t);
    }
    // Crash faults on a few zones per inventory to force requeues.
    for (std::uint64_t z = 0; z < 16; z += 5) {
      spec.zone_faults.emplace_back(
          z, fault::parse_fault_plan("crash 10000 never\n"));
    }
    orchestrator.submit(std::move(spec));
  }

  const fleet::FleetResult result = orchestrator.run();
  EXPECT_EQ(result.zones, 64u);
  EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kViolated);
  EXPECT_GT(result.requeues, 0u);
  EXPECT_FALSE(fleet::summary(result).empty());
}

// A fused fleet at 8 threads: every zone fans out k = 3 reader sessions
// that race to the atomic fan-in counter, and the LAST terminal reader
// runs the fusion on state written by all three — the happens-before edge
// this hammer exists to check under TSan. Crash faults on individual
// readers add retry traffic through the same fan-in, and an adversarial
// reader exercises the trust/suspect accounting concurrently.
TEST(FleetConcurrencyHammer, FusedReaderFanInUnderTsan) {
  obs::MetricsRegistry metrics;
  obs::SessionLog log(512);
  storage::MemoryBackend backend;

  fleet::FleetOrchestrator orchestrator({.seed = 4711,
                                         .threads = 8,
                                         .max_zone_attempts = 3,
                                         .fleet_name = "fused-hammer",
                                         .metrics = &metrics,
                                         .session_log = &log,
                                         .journal_backend = &backend});

  util::Rng rng(2718);
  for (int i = 0; i < 2; ++i) {
    fleet::InventorySpec spec;
    spec.name = "inv" + std::to_string(i);
    spec.tags = tag::TagSet::make_random(240, rng);
    spec.plan = server::plan_groups({.total_tags = 240,
                                     .total_tolerance = 6,
                                     .alpha = 0.95,
                                     .max_group_size = 20});
    spec.rounds = 2;
    spec.fusion.readers = 3;
    if (i == 1) {
      for (std::uint64_t t = 0; t < 9; ++t) spec.stolen.push_back(t);
    }
    // Zone 0 holds inventory 1's stolen tags, so that forger casts real
    // phantom votes; inventory 0's forger forges the truth and stays
    // invisible (correctly so).
    spec.dishonest_readers.emplace_back(0, 2);
    for (std::uint64_t z = 0; z < 12; z += 4) {
      // One reader of the zone crashes and retries; the other two cross
      // the fan-in while its replacement attempt is still in flight.
      spec.zone_faults.emplace_back(
          z, fault::parse_multi_reader_fault_plan(
                 "reader=1: crash 10000 never\n"));
    }
    orchestrator.submit(std::move(spec));
  }

  const fleet::FleetResult result = orchestrator.run();
  EXPECT_EQ(result.zones, 24u);
  EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kViolated);
  EXPECT_GT(result.requeues, 0u);
  EXPECT_GE(result.readers_suspected, 1u);
  EXPECT_FALSE(fleet::summary(result).empty());
}

}  // namespace
