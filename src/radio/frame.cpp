#include "radio/frame.h"

#include "util/expect.h"

namespace rfid::radio {

std::vector<std::uint32_t> assign_trp_slots(std::span<const tag::Tag> tags,
                                            const hash::SlotHasher& hasher,
                                            std::uint64_t r,
                                            std::uint32_t frame_size) {
  RFID_EXPECT(frame_size >= 1, "frame size must be positive");
  std::vector<std::uint32_t> choices;
  choices.reserve(tags.size());
  for (const tag::Tag& t : tags) {
    choices.push_back(t.trp_slot(hasher, r, frame_size));
  }
  return choices;
}

std::vector<std::uint32_t> occupancy_histogram(
    std::span<const std::uint32_t> slot_choices, std::uint32_t frame_size) {
  std::vector<std::uint32_t> histogram(frame_size, 0);
  for (const std::uint32_t slot : slot_choices) {
    RFID_EXPECT(slot < frame_size, "slot choice outside frame");
    ++histogram[slot];
  }
  return histogram;
}

FrameObservation simulate_frame(std::span<const tag::Tag> tags,
                                const hash::SlotHasher& hasher, std::uint64_t r,
                                std::uint32_t frame_size,
                                const ChannelModel& channel, util::Rng& rng) {
  const auto choices = assign_trp_slots(tags, hasher, r, frame_size);
  const auto histogram = occupancy_histogram(choices, frame_size);

  FrameObservation obs;
  obs.outcomes.reserve(frame_size);
  obs.bitstring = bits::Bitstring(frame_size);
  for (std::uint32_t slot = 0; slot < frame_size; ++slot) {
    const SlotOutcome outcome = resolve_slot(histogram[slot], channel, rng);
    obs.outcomes.push_back(outcome);
    switch (outcome) {
      case SlotOutcome::kEmpty: ++obs.empty_slots; break;
      case SlotOutcome::kSingle: ++obs.single_slots; break;
      case SlotOutcome::kCollision: ++obs.collision_slots; break;
    }
    if (occupied(outcome)) obs.bitstring.set(slot);
  }
  return obs;
}

}  // namespace rfid::radio
