// Durable daemon journal: the continuous-monitoring loop's checkpoint log.
//
// The fleet journal (fleet_journal.h) makes one *run* resumable; this one
// makes the *daemon driving runs forever* resumable. Per completed epoch
// the daemon appends exactly ONE checkpoint record carrying everything a
// restarted daemon needs to continue without losing or double-counting
// state:
//
//   * the epoch counter and that epoch's verdict;
//   * the next alert sequence number (alert numbering survives restarts);
//   * every zone's health-state-machine fields (miss streaks, quarantine);
//   * the alerts raised during that epoch, inline.
//
// Alerts live INSIDE the checkpoint on purpose: a separate alert record
// would open a crash window between "alert durable" and "epoch durable" in
// which a restarted daemon re-runs the epoch and raises the alert again.
// One atomic record means an epoch either happened (alerts and health
// together) or it did not — the bit-identity the torture sweep pins down.
//
// Framing is the fleet journal's: magic header, then
// [u32 len][u64 fnv1a64(payload)][payload], truncate-at-first-tear.
// Replay folds every checkpoint after the last matching start record;
// a torn tail is compacted away on open() so later appends never extend
// garbage into an unreadable journal.
//
// Rotation. A checkpoint-per-epoch journal grows without bound, and replay
// cost grows with it — a daemon alive for 10k epochs pays 10k record parses
// on every restart. With rotate_after > 0 the journal folds itself every N
// checkpoints: the whole record stream is atomically rewritten as
// [magic][start][snapshot], where the snapshot record carries the SAME
// folded state replay would have produced (verdicts, full alert history,
// latest zone healths, next alert sequence). Resume cost is then O(1) in
// the daemon's lifetime — one snapshot plus at most N checkpoint parses —
// and replay is bit-identical with or without rotation (the torture sweep
// crosses crash points with rotation points to pin this down).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "storage/backend.h"
#include "tag/tag_id.h"

namespace rfid::storage {

/// Format 2 added snapshot records and the per-reader health sub-records.
/// Format 3 added the named missing-tag list to alert records (the fleet's
/// identification drill-down). Decoders reject trailing payload bytes, so
/// the version lives in the magic. Format 2 journals are still READ
/// (alerts decode with an empty missing list); anything older fails the
/// header check and the daemon begins fresh (the safe direction —
/// monitoring restarts at epoch 0, loudly). Writers always produce format
/// 3, so a resumable format-2 journal is rotated on open(): mixing v3
/// frames under a v2 magic would corrupt every later scan.
inline constexpr std::string_view kDaemonJournalMagic = "RFIDMON-DAEMON 3\n";
inline constexpr std::string_view kDaemonJournalMagicV2 = "RFIDMON-DAEMON 2\n";

struct DaemonStartRecord {
  std::uint64_t seed = 0;
  std::string daemon;
  /// Fingerprint of the daemon's monitoring configuration (same 0=unknown
  /// sentinel convention as FleetRunStartRecord::config_hash).
  std::uint64_t config_hash = 0;
};

/// One reader's health-state-machine snapshot inside a fused zone
/// (implicit index: position in DaemonZoneHealthRecord::readers).
struct DaemonReaderHealthRecord {
  std::uint32_t bad_streak = 0;  // consecutive epochs suspect or incomplete
  bool quarantined = false;      // excluded from scans until parole
  std::uint64_t quarantined_at = 0;  // epoch the quarantine began
};

/// One zone's health-state-machine snapshot (implicit index: position in
/// DaemonCheckpointRecord::zones).
struct DaemonZoneHealthRecord {
  std::uint32_t miss_streak = 0;    // consecutive epochs failed/violated
  std::uint32_t intact_streak = 0;  // consecutive intact epochs (cooldown)
  bool violated = false;            // theft evidence seen (latched)
  bool quarantined = false;
  std::uint64_t quarantined_at = 0; // epoch the quarantine began
  /// Fused (k > 1) zones: the per-reader quarantine tier; empty otherwise.
  std::vector<DaemonReaderHealthRecord> readers;
};

/// One alert, exactly as the daemon raised it. Sequence numbers are
/// strictly monotonic across the daemon's whole life, restarts included.
struct DaemonAlertRecord {
  std::uint64_t sequence = 0;
  std::uint8_t kind = 0;    // daemon::DaemonAlertKind raw value
  std::uint64_t epoch = 0;
  std::uint64_t zone = 0;
  std::string detail;
  /// Stolen tags named by the identification drill-down (format 3+; empty
  /// when the drill-down was off or the record predates it).
  std::vector<tag::TagId> missing;
};

struct DaemonCheckpointRecord {
  std::uint64_t epoch = 0;               // 0-based epoch just completed
  std::uint8_t verdict = 0;              // daemon::EpochVerdict raw value
  std::uint64_t next_alert_sequence = 0; // first sequence a later epoch uses
  std::vector<DaemonZoneHealthRecord> zones;
  std::vector<DaemonAlertRecord> alerts; // raised by THIS epoch only
};

/// The folded image of every checkpoint up to (and including) some epoch —
/// exactly what replaying them would produce. Written during rotation so
/// the rewritten journal resumes to the same state as the full record
/// stream it replaced.
struct DaemonSnapshotRecord {
  std::vector<std::uint8_t> verdicts;  // one per committed epoch, in order
  std::vector<DaemonZoneHealthRecord> zones;  // latest health machines
  std::vector<DaemonAlertRecord> alerts;      // FULL history, sequence order
  std::uint64_t next_alert_sequence = 0;
};

using DaemonJournalRecord =
    std::variant<DaemonStartRecord, DaemonCheckpointRecord,
                 DaemonSnapshotRecord>;

[[nodiscard]] std::string encode_daemon_record(
    const DaemonJournalRecord& record);

struct DaemonJournalScan {
  std::vector<DaemonJournalRecord> records;
  bool header_valid = false;
  /// Format the magic declared (3 current, 2 legacy read-only, 0 invalid).
  std::uint32_t version = 0;
  std::uint64_t valid_bytes = 0;
  std::uint64_t dropped_bytes = 0;
};

/// Truncate-at-first-tear scan; never throws on damaged input.
[[nodiscard]] DaemonJournalScan scan_daemon_journal(std::string_view bytes);

/// What open() reconstructed — already folded over the snapshot (if the
/// journal rotated) and every checkpoint after it, so the caller's resume
/// cost does not grow with the daemon's lifetime.
struct DaemonReplay {
  /// No usable prior state: missing journal, unreadable journal, or a start
  /// record for a different (seed, daemon). The folded fields are empty.
  bool fresh = true;
  /// A prior journal for this (seed, daemon) exists but its config_hash
  /// conflicts: its checkpoints were quarantined (not replayed) and the
  /// journal was begun fresh. The caller should raise an alert.
  bool stale = false;
  std::uint64_t stale_checkpoints = 0;
  /// Folded resume state: epochs 0..verdicts.size()-1 are committed.
  std::vector<std::uint8_t> verdicts;         // epoch order
  std::vector<DaemonZoneHealthRecord> zones;  // latest health machines
  std::vector<DaemonAlertRecord> alerts;      // full history, sequence order
  std::uint64_t next_alert_sequence = 0;
  /// Torn/rotted tail bytes dropped (and compacted away) during open().
  std::uint64_t compacted_bytes = 0;
};

/// Single-writer appender (the daemon's supervisor thread). Append failures
/// are swallowed and counted — a sick journal disk must not take continuous
/// monitoring down — but a scripted CrashInjected propagates: it is the
/// process dying, not the disk failing.
class DaemonJournal {
 public:
  /// rotate_after > 0 folds the journal into [start][snapshot] every that
  /// many checkpoints (and on torn-tail compaction); 0 never rotates.
  DaemonJournal(StorageBackend& backend, std::string name,
                std::uint64_t rotate_after = 0)
      : backend_(backend),
        name_(std::move(name)),
        rotate_after_(rotate_after) {}

  /// Loads and replays the journal. A matching interrupted daemon resumes
  /// (folded state returned, torn tail compacted away); anything else —
  /// missing, foreign, or config-stale — atomically begins a fresh journal
  /// holding only the new start record.
  [[nodiscard]] DaemonReplay open(const DaemonStartRecord& start);

  /// Appends one epoch checkpoint and flushes it durable; rotates first
  /// when the checkpoint-since-snapshot budget is spent.
  void checkpoint(const DaemonCheckpointRecord& record);

  [[nodiscard]] std::uint64_t append_failures() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return append_failures_;
  }

  /// Snapshot rewrites performed (rotation budget spent or tail compacted).
  [[nodiscard]] std::uint64_t rotations() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return rotations_;
  }

 private:
  void begin_fresh_locked(const DaemonStartRecord& start);
  void rotate_locked();
  void fold_locked(const DaemonCheckpointRecord& record);

  StorageBackend& backend_;
  std::string name_;
  std::uint64_t rotate_after_ = 0;
  mutable std::mutex mu_;
  std::uint64_t append_failures_ = 0;
  std::uint64_t rotations_ = 0;

  // The folded image of everything durable under this journal, maintained
  // through open() and every checkpoint() so rotation can rewrite the
  // journal without re-reading the backend.
  DaemonStartRecord start_;
  DaemonSnapshotRecord folded_;
  std::uint64_t checkpoints_since_snapshot_ = 0;
};

}  // namespace rfid::storage
