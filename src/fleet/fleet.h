// Fleet orchestration: concurrent multi-zone monitoring with deadline
// scheduling and global verdict aggregation.
//
// The group planner (server/group_planner.h) shards one inventory into
// zones whose tolerances sum to the global M; the wire layer runs one
// monitoring session per zone. This subsystem closes the loop at warehouse
// scale: a FleetOrchestrator takes one InventorySpec per inventory, executes
// every zone's session on a deadline-aware work-stealing pool
// (FleetScheduler), retries zones that failed for retryable infrastructure
// reasons on healthy capacity (capped attempts), escalates permanent
// failures as fleet alerts, and folds the per-zone outcomes into one global
// verdict:
//
//   * kViolated      — some zone produced a non-intact (or late, for UTRP)
//                      verdict in any attempt. Theft evidence outranks
//                      infrastructure failure.
//   * kInconclusive  — no violation seen, but some zone never completed a
//                      session (retries exhausted), so the pigeonhole
//                      argument over Sigma m_i = M does not close.
//   * kIntact        — every zone completed and verified intact; more than
//                      M missing tags overall would have tripped at least
//                      one zone with probability > alpha.
//
// Admission control: admission_capacity bounds how many zones run in one
// wave. Saturated submissions are either deferred to a later wave (FIFO,
// an oversized inventory gets a wave of its own) or rejected outright —
// rejected inventories are excluded from the verdict and surfaced as
// alerts, never silently dropped.
//
// Determinism contract (the TrialRunner discipline): every zone attempt
// derives its RNG and its private virtual-time EventQueue from
// (fleet seed, inventory name, zone, attempt) — never from thread identity
// or wall-clock order. Zone sessions run with all observability hooks
// detached; the orchestrator re-records metrics, spans
// (fleet -> inventory -> zone -> session), and SessionLog entries after the
// pool drains, single-threaded, in (inventory, zone, attempt) order. A
// seeded fleet is therefore bit-identical — aggregated verdicts, metric
// exposition, session logs, summary() text — on 1 thread or 64
// (tests/fleet_determinism_test.cpp pins this down).
//
// Durability: with a journal backend attached, every terminal zone outcome
// is appended to a FleetJournal (storage/fleet_journal.h). Because zone
// results are pure functions of the seed, a crashed orchestrator that
// restarts with the same (seed, fleet, specs) reuses journaled zones
// instead of re-running them.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <map>
#include <mutex>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "fusion/fusion.h"
#include "math/detection.h"
#include "obs/metrics.h"
#include "obs/session_log.h"
#include "obs/trace.h"
#include "protocol/identification.h"
#include "server/group_planner.h"
#include "storage/backend.h"
#include "storage/fleet_journal.h"
#include "tag/tag_set.h"
#include "wire/session.h"

namespace rfid::fleet {

enum class Protocol : std::uint8_t { kTrp = 0, kUtrp = 1 };

/// Terminal state of one zone after capped attempts.
enum class ZoneStatus : std::uint8_t {
  kIntact = 0,    // completed; every round verified intact
  kViolated = 1,  // some round mismatched or missed the Alg. 5 deadline
  kFailed = 2,    // never completed a session (escalated as an alert)
  /// Fused zones only: no violation seen, but some round committed below
  /// the completion quorum (or not at all), so the pigeonhole guarantee
  /// holds at reduced confidence. Aggregates as inconclusive — never
  /// silently voided, never promoted to intact.
  kDegraded = 3,
};

enum class GlobalVerdict : std::uint8_t {
  kIntact = 0,
  kViolated = 1,
  kInconclusive = 2,
};

/// What happened to an inventory at submit().
enum class Admission : std::uint8_t {
  kAccepted = 0,  // runs in the first wave
  kDeferred = 1,  // capacity-saturated; runs in a later wave
  kRejected = 2,  // capacity-saturated and deferral disabled; not monitored
};

enum class AlertKind : std::uint8_t {
  kZoneEscalated = 0,      // a zone exhausted its attempts without completing
  kInventoryRejected = 1,  // an inventory was refused admission
  /// An interrupted run was found in the journal but its recorded config
  /// fingerprint (zone counts / tolerances) no longer matches the current
  /// plan. Its zone records are quarantined — never folded into this run —
  /// and every zone re-executes.
  kRecoveredRunQuarantined = 2,
  /// A fused zone committed below its completion quorum (ZoneStatus::
  /// kDegraded): the verdict stands on fewer readers than configured.
  kZoneDegraded = 3,
};

[[nodiscard]] std::string_view to_string(Protocol protocol) noexcept;
[[nodiscard]] std::string_view to_string(ZoneStatus status) noexcept;
[[nodiscard]] std::string_view to_string(GlobalVerdict verdict) noexcept;
[[nodiscard]] std::string_view to_string(Admission admission) noexcept;
[[nodiscard]] std::string_view to_string(AlertKind kind) noexcept;

struct FleetConfig {
  std::uint64_t seed = 1;
  /// Worker threads; 0 = hardware concurrency. Never affects results.
  unsigned threads = 0;
  /// Attempt cap per zone (first try + retries). Must be >= 1.
  std::uint32_t max_zone_attempts = 3;
  /// Max zones in flight per wave; 0 = unlimited (everything is wave 0).
  std::uint64_t admission_capacity = 0;
  /// Saturated submissions: true defers to a later wave, false rejects.
  bool defer_when_saturated = true;
  /// Replay an attempt-0 fault plan on retries too. Off by default: the
  /// plans model transient outages, and a retry on healthy capacity is
  /// exactly the recovery story being tested.
  bool faults_on_retries = false;
  std::string fleet_name = "fleet";
  /// Observability sinks (none owned; each must outlive run()). All
  /// recording happens post-run on the caller's thread, in deterministic
  /// order — the tracer's documented non-thread-safety is fine here.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  obs::SessionLog* session_log = nullptr;
  /// Durable fleet-run journal (not owned; may be null for no durability).
  storage::StorageBackend* journal_backend = nullptr;
  std::string journal_name = "fleet.journal";
  /// Cooperative kill switch (not owned; may be null). When it reads true,
  /// zones that have not started are abandoned, in-flight zones finish, and
  /// run() returns early with FleetResult::aborted set — no end record is
  /// journaled, so a restart resumes the run. This is how a watchdog stops
  /// an orchestrator without inheriting a wedged wait_idle().
  const std::atomic<bool>* abort = nullptr;
};

/// One inventory: a planned population plus everything needed to run its
/// zones. The spec owns its tags and fault plans; the orchestrator keeps
/// the spec alive for the whole run.
/// Identification drill-down policy: after a zone's verdict comes back
/// kViolated, run a missing-tag identification campaign over that zone's
/// enrolled slice so the escalation names the stolen tags instead of just
/// flagging the zone. Runs as a deterministic sequential post-pass (RNG
/// derived from the fleet seed, independent of thread count and of whether
/// the zone was recovered from a journal).
struct IdentifyDrillConfig {
  bool enabled = false;
  protocol::IdentifyProtocolKind protocol =
      protocol::IdentifyProtocolKind::kFilterFirst;
  protocol::IdentifyConfig config;
};

struct InventorySpec {
  std::string name;  // stable across restarts (keys the journal)
  Protocol protocol = Protocol::kTrp;
  /// The enrolled population, in zone order: zone i covers the next
  /// plan.zones[i].tags tags (split_by_plan's slicing).
  tag::TagSet tags;
  server::GroupPlan plan;
  /// Global indices into `tags` that are physically absent (stolen).
  std::vector<std::uint64_t> stolen;
  double alpha = 0.95;
  math::EmptySlotModel model = math::EmptySlotModel::kPoissonApprox;
  /// UTRP only: Eq. (3) adversary communication budget and frame slack.
  std::uint64_t comm_budget = 100;
  std::uint32_t slack_slots = 8;
  std::uint64_t rounds = 1;  // monitoring rounds per zone session
  /// Execution knob (never affects results): zone servers compute expected
  /// bitstrings with the columnar bulk kernels. Off = scalar per-tag loops.
  bool bulk_mode = true;
  /// Session template. Observability hooks and the fault plan are
  /// overridden per zone; everything else (links, retry policy, timing,
  /// UTRP deadline) applies to every zone of this inventory.
  wire::SessionConfig session;
  /// Scheduling deadline (absolute, microseconds): earliest first. 0
  /// derives it from session.utrp_deadline_us (UTRP zones closest to
  /// Alg. 5 budget expiry run first); TRP zones default to "whenever".
  double deadline_us = 0.0;
  /// Sparse per-zone fault scripts, applied on attempt 0 (and on retries
  /// iff FleetConfig::faults_on_retries). A plain FaultPlan converts
  /// implicitly ("same script for every reader"); multi-reader scripts can
  /// address readers individually and correlate burst loss across them.
  std::vector<std::pair<std::uint64_t, fault::MultiReaderFaultPlan>>
      zone_faults;
  /// Reader redundancy: fusion.readers > 1 runs k concurrent sessions per
  /// zone against one precomputed challenge stream, fuses their bitstrings
  /// per slot, and takes the pigeonhole verdict on the fused evidence
  /// (TRP only — a UTRP scan advances tag counters, so k simultaneous
  /// scans of one zone are physically inconsistent).
  fusion::FusionConfig fusion;
  /// (zone, reader) pairs that behave adversarially: instead of scanning,
  /// the reader forges the expected bitstring of the full enrolled set —
  /// the split-attack reader of src/attack hiding a theft.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> dishonest_readers;
  /// (zone, reader) pairs excluded from the run (e.g. quarantined by the
  /// daemon's per-reader health tier): no session, no vote. The zone still
  /// runs with its remaining readers and degrades below quorum.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> excluded_readers;
  /// Post-verdict identification drill-down for violated zones.
  IdentifyDrillConfig identify;
};

/// Per-reader outcome inside a fused zone (ZoneReport::readers, k > 1).
struct ReaderReport {
  std::uint32_t reader = 0;
  bool completed = false;  // last attempt finished every round
  wire::FailureReason last_failure = wire::FailureReason::kNone;
  std::uint32_t attempts = 0;
  bool excluded = false;  // never ran (quarantined at submit)
  bool suspect = false;   // persistently outvoted or phantom evidence
  double trust = 1.0;     // final fusion weight
  std::uint64_t votes_overruled = 0;
};

/// Outcome of the post-verdict identification drill-down on one violated
/// zone (ZoneReport::identification; `ran` false when the drill-down was
/// disabled or the zone was not violated).
struct ZoneIdentification {
  bool ran = false;
  std::string protocol;  // family member name ("iterative", "filter_first")
  std::vector<tag::TagId> missing;  // the named stolen tags
  std::uint64_t present = 0;        // tags proven present
  std::uint64_t unresolved = 0;     // round cap hit before classification
  std::uint64_t rounds = 0;
  std::uint64_t slots = 0;          // framed slots + tree queries
  std::uint64_t tree_queries = 0;
  std::uint64_t filter_bits = 0;
  double estimated_missing = 0.0;   // zero-estimator after the first frame
  double duration_us = 0.0;         // honest air time of the campaign
};

struct ZoneReport {
  std::uint64_t zone = 0;
  ZoneStatus status = ZoneStatus::kFailed;
  wire::FailureReason last_failure = wire::FailureReason::kNone;
  std::uint32_t attempts = 0;  // session attempts executed (>= 1 unless recovered)
  bool resynced = false;   // UTRP mirror rebuilt from audit before a retry
  bool recovered = false;  // reused from an interrupted run's journal
  // Round accounting from the final attempt; frame counters are summed
  // across attempts (total backhaul cost of the zone).
  std::uint64_t rounds_completed = 0;
  std::uint64_t intact_rounds = 0;
  std::uint64_t mismatched_rounds = 0;
  std::uint64_t deadline_missed_rounds = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t retransmissions = 0;
  double duration_us = 0.0;  // simulated time of the final attempt
  // Fused zones (k > 1) only; all empty/zero for single-reader zones.
  std::vector<ReaderReport> readers;
  std::uint64_t degraded_rounds = 0;  // committed below quorum (no verdict)
  std::uint64_t fused_slots = 0;      // slots put through the majority vote
  std::uint64_t phantom_votes = 0;    // busy votes the fusion overruled
  std::uint64_t missed_votes = 0;     // empty votes the fusion overruled
  /// Post-verdict identification drill-down (violated zones only).
  ZoneIdentification identification;
};

struct InventoryReport {
  std::string name;
  Protocol protocol = Protocol::kTrp;
  GlobalVerdict verdict = GlobalVerdict::kInconclusive;
  std::vector<ZoneReport> zones;
  std::uint64_t tags = 0;
  std::uint64_t tolerance = 0;  // Sigma m_i == M
  double worst_zone_detection = 0.0;
  std::uint64_t wave = 0;  // admission wave it ran in
};

struct FleetAlert {
  AlertKind kind = AlertKind::kZoneEscalated;
  std::string inventory;
  std::uint64_t zone = 0;  // meaningful for kZoneEscalated
  std::string detail;
};

struct FleetResult {
  GlobalVerdict verdict = GlobalVerdict::kIntact;
  std::vector<InventoryReport> inventories;  // monitored, submission order
  std::vector<std::string> rejected;         // refused admission
  std::vector<FleetAlert> alerts;
  std::uint64_t zones = 0;            // zones monitored (recovered included)
  std::uint64_t attempts = 0;         // session attempts executed this run
  std::uint64_t requeues = 0;         // retryable failures put back on the pool
  std::uint64_t escalations = 0;      // zones that ended kFailed
  std::uint64_t resyncs = 0;          // UTRP mirrors re-audited before a retry
  std::uint64_t zones_recovered = 0;  // reused from the journal
  std::uint64_t degraded_zones = 0;   // fused zones committed below quorum
  std::uint64_t readers_suspected = 0;  // across all fused zones
  std::uint64_t zones_identified = 0;  // violated zones drilled down
  std::uint64_t tags_named = 0;        // stolen tags named by drill-downs
  std::uint64_t deferred_inventories = 0;
  std::uint64_t waves = 1;
  /// The abort switch fired (or a zone task threw): zones that never ran
  /// are reported kFailed/kCrashed, no end record was journaled, and the
  /// verdict is at best inconclusive. A restart resumes from the journal.
  bool aborted = false;
  // Diagnostics only — timing-dependent, excluded from summary().
  std::uint64_t tasks_stolen = 0;
  unsigned threads = 0;
};

/// Deterministic human-readable rendering of a result (verdict, per-
/// inventory lines, totals, alerts). Bit-identical across thread counts;
/// the timing-dependent diagnostics are deliberately left out.
[[nodiscard]] std::string summary(const FleetResult& result);

class FleetOrchestrator {
 public:
  explicit FleetOrchestrator(FleetConfig config);
  ~FleetOrchestrator();

  FleetOrchestrator(const FleetOrchestrator&) = delete;
  FleetOrchestrator& operator=(const FleetOrchestrator&) = delete;

  /// Admits an inventory (or defers/rejects it under saturation). All
  /// Eq. (3) solves happen here, sequentially, so worker threads never
  /// race on the optimizer. Must not be called after run().
  Admission submit(InventorySpec spec);

  /// Executes every admitted zone and aggregates. Call once.
  [[nodiscard]] FleetResult run();

 private:
  struct ZoneState;
  struct Inventory;

  void run_zone_attempt(std::size_t inv, std::size_t zone,
                        std::uint32_t attempt);
  void run_zone_attempt_body(std::size_t inv, std::size_t zone,
                             std::uint32_t attempt);
  void finalize_zone(std::size_t inv, std::size_t zone, bool aborted);
  void run_reader_attempt(std::size_t inv, std::size_t zone,
                          std::uint32_t reader, std::uint32_t attempt);
  void run_reader_attempt_body(std::size_t inv, std::size_t zone,
                               std::uint32_t reader, std::uint32_t attempt);
  void finalize_fused_zone(std::size_t inv, std::size_t zone);
  void journal_zone(std::size_t inv, std::size_t zone);
  [[nodiscard]] tag::TagSet audit_set(const ZoneState& state) const;
  [[nodiscard]] bool should_abort() const noexcept;
  [[nodiscard]] std::uint64_t config_fingerprint() const;
  void record_observability(const FleetResult& result);

  FleetConfig config_;
  std::vector<std::unique_ptr<Inventory>> inventories_;
  std::vector<std::string> rejected_;
  std::vector<std::uint64_t> wave_zones_;  // zones admitted per wave
  std::uint64_t deferred_count_ = 0;
  bool ran_ = false;

  /// Set when a zone task throws (first exception wins; rethrown from
  /// run() after the pool stops) — the crash story a long-running daemon
  /// supervises, not a path normal monitoring ever takes.
  std::atomic<bool> task_failed_{false};
  std::mutex error_mu_;
  std::exception_ptr first_error_;

  std::unique_ptr<class FleetScheduler> scheduler_;
  std::unique_ptr<storage::FleetJournal> journal_;
};

}  // namespace rfid::fleet
