#include "attack/timed_attack.h"

#include "util/expect.h"

namespace rfid::attack {

double honest_utrp_scan_us(const bits::Bitstring& bitstring,
                           std::uint64_t reseeds,
                           const radio::TimingModel& timing) {
  const std::uint64_t occupied = bitstring.count();
  return timing.utrp_scan_us(bitstring.size() - occupied, occupied, reseeds);
}

TimedAttackOutcome run_timed_utrp_attack(std::span<tag::Tag> s1,
                                         std::span<tag::Tag> s2,
                                         const hash::SlotHasher& hasher,
                                         const protocol::UtrpChallenge& challenge,
                                         std::uint64_t comm_budget,
                                         const radio::TimingModel& timing,
                                         double comm_roundtrip_us) {
  RFID_EXPECT(comm_roundtrip_us >= 0.0, "negative communication latency");

  const UtrpAttackResult attack =
      run_utrp_split_attack(s1, s2, hasher, challenge, comm_budget);

  TimedAttackOutcome outcome;
  outcome.forged = attack.forged;
  outcome.comms_used = attack.comms_used;
  // The pair re-seeds the physical tags after every recorded reply, exactly
  // like an honest reader — except a final-slot reply needs no re-seed.
  const std::uint64_t occupied = attack.forged.count();
  std::uint64_t reseeds = occupied;
  if (occupied > 0 && attack.forged.test(attack.forged.size() - 1)) {
    --reseeds;
  }
  outcome.air_time_us = honest_utrp_scan_us(attack.forged, reseeds, timing);
  outcome.comm_time_us =
      static_cast<double>(attack.comms_used) * comm_roundtrip_us;
  outcome.elapsed_us = outcome.air_time_us + outcome.comm_time_us;
  return outcome;
}

}  // namespace rfid::attack
