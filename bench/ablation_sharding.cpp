// Ablation — the price of sharding a population across reader zones.
//
// plan_groups() preserves the global "detect > M missing at confidence α"
// guarantee by allocating Σ m_i = M across zones (pigeonhole). This bench
// sweeps the per-zone capacity and reports total slots, the overhead versus
// one unsharded frame, and the worst zone's detection probability — showing
// sharding is purely a coverage tax (and how steep it gets as zones shrink).
#include <cstdint>

#include "bench_common.h"
#include "server/group_planner.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const auto opt = bench::parse_figure_options(argc, argv);

  constexpr std::uint64_t kTags = 2000;
  constexpr std::uint64_t kTolerance = 20;
  bench::banner("Ablation: zone capacity vs monitoring cost (N = " +
                std::to_string(kTags) + ", global M = " +
                std::to_string(kTolerance) +
                ", alpha = " + util::format_double(opt.alpha, 2) + ")");

  const auto unsharded = server::plan_groups(
      {.total_tags = kTags, .total_tolerance = kTolerance, .alpha = opt.alpha});

  util::Table table({"zone_capacity", "zones", "total_slots", "overhead_x",
                     "worst_zone_detect", "min_zone_m"});
  for (const std::uint64_t capacity :
       {0ull, 1000ull, 500ull, 250ull, 125ull, 50ull}) {
    const auto plan = server::plan_groups({.total_tags = kTags,
                                           .total_tolerance = kTolerance,
                                           .alpha = opt.alpha,
                                           .max_group_size = capacity});
    std::uint64_t min_m = ~0ull;
    for (const auto& zone : plan.zones) min_m = std::min(min_m, zone.tolerance);
    table.begin_row();
    table.add_cell(capacity == 0 ? std::string("unlimited")
                                 : std::to_string(capacity));
    table.add_cell(static_cast<long long>(plan.zones.size()));
    table.add_cell(static_cast<long long>(plan.total_slots));
    table.add_cell(static_cast<double>(plan.total_slots) /
                       static_cast<double>(unsharded.total_slots),
                   2);
    table.add_cell(plan.worst_zone_detection, 4);
    table.add_cell(static_cast<long long>(min_m));
  }
  bench::emit(table, opt);
  return 0;
}
