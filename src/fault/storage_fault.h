// Storage fault injection: the durability-layer counterpart of the wire
// FaultInjector (fault.h).
//
// The wire injector proves the *protocol* survives a hostile backhaul; this
// one proves the *server state* survives a hostile disk. FaultyBackend wraps
// any StorageBackend and scripts the failure modes a real storage stack
// exhibits at the worst possible moment:
//
//  * crash at the k-th mutating operation — before or after its effect, so a
//    torture sweep visits every possible crash point of a workload;
//  * torn write — the crashing append persists only a prefix of its bytes
//    (what a power cut mid-sector-write leaves behind);
//  * partial append — an append fails with IoError after writing a prefix
//    (disk full), without killing the process;
//  * crash-before-flush — flush reports success but persists nothing, then
//    the crash eats the buffer (a lying write cache).
//
// Bit rot is injected directly through MemoryBackend::corrupt_durable — it
// is a property of bytes at rest, not of an operation in flight.
//
// A crash is delivered as a thrown CrashInjected. The harness catches it,
// calls MemoryBackend::crash() to drop unflushed bytes, and then recovers a
// fresh DurableInventoryServer from the survivors — asserting the recovered
// state is bit-identical to the pre- or post-mutation state, never between
// (tests/storage_torture_test.cpp).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "storage/backend.h"

namespace rfid::fault {

/// The simulated power cut. Deliberately NOT derived from storage::IoError:
/// an IoError is a failure the running process may observe and handle; a
/// crash is the end of the process, and only the torture harness catches it.
struct CrashInjected : std::runtime_error {
  explicit CrashInjected(const std::string& what) : std::runtime_error(what) {}
};

/// Everything defaults to off; a default plan injects nothing.
struct StorageFaultPlan {
  /// Crash when the N-th mutating operation (1-based; append/flush/rename/
  /// remove) is reached. 0 = never.
  std::uint64_t crash_at_op = 0;
  /// Deliver the crash before the operation takes effect (true) or after
  /// its effect is in place (false).
  bool crash_before_effect = false;
  /// If the crashing op is an append: fraction of its bytes that become
  /// durable anyway (torn write). 1.0 persists the full record, 0.0 none.
  double torn_keep_fraction = 1.0;
  /// From this flush op (1-based) onward, flushes lie: they report success
  /// without persisting. 0 = flushes work.
  std::uint64_t lying_flush_from_op = 0;
  /// The N-th append (1-based) throws IoError after persisting only
  /// `partial_append_keep_fraction` of its bytes. 0 = never.
  std::uint64_t partial_append_at = 0;
  double partial_append_keep_fraction = 0.0;
};

/// Decorator over a StorageBackend executing a StorageFaultPlan. Reads pass
/// through untouched and are not counted — only mutations can tear state.
class FaultyBackend : public storage::StorageBackend {
 public:
  /// The wrapped backend must outlive the decorator. For torn-write
  /// semantics the inner backend should be a MemoryBackend (its
  /// durable/buffered split is what gives "prefix survived" meaning).
  FaultyBackend(storage::StorageBackend& inner, StorageFaultPlan plan)
      : inner_(inner), plan_(plan) {}

  [[nodiscard]] bool exists(const std::string& name) const override {
    return inner_.exists(name);
  }
  [[nodiscard]] std::vector<std::string> list() const override {
    return inner_.list();
  }
  [[nodiscard]] std::string read(const std::string& name) const override {
    return inner_.read(name);
  }
  void append(const std::string& name, std::string_view bytes) override;
  void flush(const std::string& name) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& name) override;

  /// Mutating operations observed so far — run a workload with a no-crash
  /// plan first to learn how many crash points it has.
  [[nodiscard]] std::uint64_t mutating_ops() const noexcept { return ops_; }
  [[nodiscard]] const StorageFaultPlan& plan() const noexcept { return plan_; }

 private:
  /// Counts the op; true when this op is the scripted crash point.
  [[nodiscard]] bool arm();
  [[noreturn]] void crash_now(std::string_view op);

  storage::StorageBackend& inner_;
  StorageFaultPlan plan_;
  std::uint64_t ops_ = 0;
  std::uint64_t appends_ = 0;
};

}  // namespace rfid::fault
