// Remote reader over an unreliable backhaul: the wire layer in action.
//
// The paper assumes a channel between the monitoring server and the RFID
// reader but says nothing about its reliability. This example runs nightly
// TRP rounds — and then UTRP rounds with a wall-clock deadline — across
// simulated links that drop a quarter of all frames and jitter the rest,
// showing the session layer's idempotent retransmission keeping the
// protocol sound: challenges are never double-issued, verdicts never
// double-counted, and (for UTRP) honest-but-slow links visibly burn the
// Alg. 5 timer.
#include <cstdio>

#include "rfidmon.h"

int main() {
  using namespace rfid;
  util::Rng rng(606);

  tag::TagSet stockroom = tag::TagSet::make_random(400, rng);
  const protocol::TrpServer trp_server(
      stockroom.ids(), {.tolerated_missing = 5, .confidence = 0.95});

  wire::SessionConfig flaky;
  flaky.uplink = {.latency_us = 5000.0, .jitter_us = 2000.0, .drop_prob = 0.25};
  flaky.downlink = {.latency_us = 5000.0, .jitter_us = 2000.0, .drop_prob = 0.25};
  flaky.retry_timeout_us = 40000.0;
  flaky.max_retries = 40;
  flaky.group_name = "stockroom";

  std::printf("=== TRP over a 25%%-loss backhaul ===\n");
  {
    sim::EventQueue queue;
    const auto outcome =
        wire::run_trp_session(queue, trp_server, stockroom.tags(), 5, flaky, rng);
    std::printf("rounds completed: %llu/5 (%s)\n",
                static_cast<unsigned long long>(outcome.rounds_completed),
                outcome.completed ? "session finished" : "gave up");
    std::printf("frames sent %llu, dropped %llu, retransmissions %llu\n",
                static_cast<unsigned long long>(outcome.frames_sent),
                static_cast<unsigned long long>(outcome.frames_dropped),
                static_cast<unsigned long long>(outcome.retransmissions));
    std::printf("wall clock: %.1f ms for what perfect links do in ~%.1f ms\n",
                outcome.finished_at_us / 1000.0,
                5 * (trp_server.frame_size() * 0.25));
    for (std::size_t i = 0; i < outcome.verdicts.size(); ++i) {
      std::printf("  round %zu: %s\n", i + 1,
                  outcome.verdicts[i].intact ? "intact" : "ALERT");
    }
  }

  std::printf("\n=== Theft, observed remotely ===\n");
  {
    (void)stockroom.steal_random(40, rng);
    sim::EventQueue queue;
    const auto outcome =
        wire::run_trp_session(queue, trp_server, stockroom.tags(), 1, flaky, rng);
    std::printf("verdict arrives despite the bad link: %s\n",
                !outcome.verdicts.empty() && !outcome.verdicts[0].intact
                    ? "ALERT — tags missing"
                    : "(unexpected)");
  }

  std::printf("\n=== UTRP with a deadline, honest reader, bad link ===\n");
  {
    tag::TagSet cage = tag::TagSet::make_random(200, rng);
    protocol::UtrpServer utrp_server(
        cage, {.tolerated_missing = 3, .confidence = 0.95}, 20);
    // Deadline generous against air time but tight against retransmission
    // stalls: a couple of lost frames blow it.
    wire::SessionConfig timed = flaky;
    timed.group_name = "cage";
    timed.utrp_deadline_us = 250000.0;
    sim::EventQueue queue;
    const auto outcome =
        wire::run_utrp_session(queue, utrp_server, cage.tags(), 3, timed, rng);
    int late = 0;
    for (const auto& verdict : outcome.verdicts) {
      if (!verdict.deadline_met) ++late;
    }
    std::printf("rounds: %llu, deadline misses by an HONEST reader: %d\n",
                static_cast<unsigned long long>(outcome.rounds_completed), late);
    std::printf("lesson: Alg. 5's timer must be calibrated against the\n"
                "backhaul's retransmission tail, not just STmax of the scan —\n"
                "otherwise loss turns into false alarms.\n");
  }
  return 0;
}
