// Alg. 4: the OR-combine split attack that defeats TRP (Sec. 5.1).
//
// The dishonest reader R1 keeps s1, hands the stolen tags s2 to a
// collaborator R2, and both scan with the same server challenge. Because a
// TRP bitstring is just the union of per-tag slot marks, one transmission of
// bs_s2 lets R1 return  b̂s = bs_s1 ∨ bs_s2 = bs  — indistinguishable from an
// intact set. This module exists to *demonstrate* the vulnerability (tests
// assert the forged bitstring verifies as intact) and to motivate UTRP.
#pragma once

#include <span>

#include "bitstring/bitstring.h"
#include "hash/slot_hash.h"
#include "protocol/messages.h"
#include "tag/tag.h"
#include "util/random.h"

namespace rfid::attack {

struct SplitAttackResult {
  bits::Bitstring forged;     // b̂s returned to the server
  std::uint64_t transmissions = 0;  // reader-to-reader messages used (always 1)
};

/// Executes Alg. 4 against a TRP challenge: scans s1 and s2 independently
/// (ideal channel — the adversary picks a clean RF environment) and ORs the
/// two bitstrings.
[[nodiscard]] SplitAttackResult run_trp_split_attack(
    std::span<const tag::Tag> s1, std::span<const tag::Tag> s2,
    const hash::SlotHasher& hasher, const protocol::TrpChallenge& challenge,
    util::Rng& rng);

/// The naive replay attack from Sec. 5.1: returning a bitstring recorded
/// under an older challenge. Provided so tests can show that fresh (f, r)
/// per round defeats it.
[[nodiscard]] bits::Bitstring replay_recorded_bitstring(
    const bits::Bitstring& recorded);

}  // namespace rfid::attack
