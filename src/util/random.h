// Deterministic pseudo-random number generation for simulations.
//
// Two generators, both implemented from scratch:
//  * SplitMix64  — tiny stateless-ish mixer; used to seed other generators and
//                  to derive independent per-trial streams from a master seed.
//  * Xoshiro256** — the workhorse generator for Monte-Carlo trials (fast,
//                  256-bit state, passes BigCrush per its authors).
//
// Every simulation in this library derives its stream as
//   Rng rng(derive_seed(master, point_index, trial_index));
// which makes results independent of thread scheduling.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace rfid::util {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014).
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives a well-mixed 64-bit seed from a master seed and up to two indices.
/// Distinct (master, a, b) triples give independent-looking streams.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t master,
                                                  std::uint64_t a = 0,
                                                  std::uint64_t b = 0) noexcept {
  std::uint64_t s = master;
  std::uint64_t out = splitmix64_next(s);
  s ^= a * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL;
  out ^= splitmix64_next(s);
  s ^= b * 0xd1b54a32d192ed03ULL + 0x452821e638d01377ULL;
  out ^= splitmix64_next(s);
  return out;
}

/// Xoshiro256** generator (Blackman & Vigna, 2018). Satisfies
/// std::uniform_random_bit_generator so it can drive <random> distributions,
/// though this library mostly uses the member helpers below.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via SplitMix64 (the seeding
  /// procedure recommended by the xoshiro authors).
  explicit constexpr Rng(std::uint64_t seed = 0x6d6f6e69746f72ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method (unbiased).
  ///
  /// Contract: `bound` must be nonzero — [0, 0) is empty, so there is no
  /// value to return. Debug builds throw std::invalid_argument (via
  /// RFID_DEBUG_EXPECT); release builds return 0 without consuming a draw,
  /// keeping the hot path branch-cheap. Callers must not rely on the
  /// degraded value.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi (checked in
  /// debug builds via the below() contract when the range wraps to empty).
  [[nodiscard]] std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace rfid::util
