// A small discrete-event simulation core.
//
// Used by the timing experiments: reader/collaborator/server are modeled as
// actors exchanging messages with latencies (slot boundaries, re-seed
// broadcasts, reader-to-reader round trips, the server's verification
// timer). Events are (time, sequence) ordered; ties break by scheduling
// order, so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace rfid::sim {

using SimTime = double;  // microseconds, matching radio::TimingModel

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` to run at absolute time `when` (>= now()).
  void schedule_at(SimTime when, Handler handler);
  /// Schedules `handler` to run `delay` after the current time.
  void schedule_after(SimTime delay, Handler handler) {
    schedule_at(now_ + delay, std::move(handler));
  }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  /// Runs events until the queue drains or `until` is passed. Returns the
  /// number of events processed by this call.
  std::uint64_t run(SimTime until = -1.0);

  /// Drops all pending events (e.g. after the deadline fired).
  void clear() noexcept;

 private:
  struct Event {
    SimTime when;
    std::uint64_t sequence;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace rfid::sim
