#include "server/inventory_server.h"

#include "obs/catalog.h"
#include "util/expect.h"

namespace rfid::server {

namespace {

/// Lowercase protocol label shared with the protocol engines' own series.
[[nodiscard]] std::string_view protocol_label(ProtocolKind kind) noexcept {
  return kind == ProtocolKind::kTrp ? "trp" : "utrp";
}

}  // namespace

std::string_view to_string(ProtocolKind kind) noexcept {
  switch (kind) {
    case ProtocolKind::kTrp: return "TRP";
    case ProtocolKind::kUtrp: return "UTRP";
  }
  return "unknown";
}

std::string_view to_string(AlertKind kind) noexcept {
  switch (kind) {
    case AlertKind::kRoundFailure: return "round-failure";
    case AlertKind::kResync: return "resync";
  }
  return "unknown";
}

GroupId InventoryServer::enroll(const tag::TagSet& tags, GroupConfig config) {
  RFID_EXPECT(!tags.empty(), "cannot enroll an empty group");
  const GroupId id{groups_.size()};
  if (config.protocol == ProtocolKind::kTrp) {
    protocol::TrpServer engine(tags.ids(), config.policy, hasher_);
    groups_.push_back(Group{std::move(config), std::move(engine), 0});
  } else {
    protocol::UtrpServer engine(tags, config.policy, config.comm_budget,
                                config.slack_slots, hasher_);
    groups_.push_back(Group{std::move(config), std::move(engine), 0});
  }
  Group& g = groups_.back();
  std::visit([&](auto& engine) { engine.set_bulk_mode(g.config.bulk_mode); },
             g.engine);
  if (metrics_ != nullptr) {
    std::visit([&](auto& engine) { engine.set_metrics(metrics_); }, g.engine);
    obs::catalog::groups_enrolled_total(*metrics_,
                                        protocol_label(g.config.protocol))
        .inc();
  }
  return id;
}

void InventoryServer::re_enroll(GroupId id, const tag::TagSet& tags,
                                GroupConfig config) {
  RFID_EXPECT(!tags.empty(), "cannot re-enroll an empty group");
  Group& g = group(id);
  if (config.protocol == ProtocolKind::kTrp) {
    g.engine = protocol::TrpServer(tags.ids(), config.policy, hasher_);
  } else {
    g.engine = protocol::UtrpServer(tags, config.policy, config.comm_budget,
                                    config.slack_slots, hasher_);
  }
  g.config = std::move(config);
  g.rounds = 0;
  g.active = true;
  invalidate_expected(id);
  std::visit([&](auto& engine) { engine.set_bulk_mode(g.config.bulk_mode); },
             g.engine);
  if (metrics_ != nullptr) {
    std::visit([&](auto& engine) { engine.set_metrics(metrics_); }, g.engine);
    obs::catalog::groups_enrolled_total(*metrics_,
                                        protocol_label(g.config.protocol))
        .inc();
  }
}

void InventoryServer::decommission(GroupId id) {
  Group& g = group(id);
  RFID_EXPECT(g.active, "group is already decommissioned");
  g.active = false;
  invalidate_expected(id);
}

bool InventoryServer::active(GroupId id) const { return group(id).active; }

void InventoryServer::attach_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  for (Group& g : groups_) {
    std::visit([&](auto& engine) { engine.set_metrics(registry); }, g.engine);
  }
}

const InventoryServer::Group& InventoryServer::group(GroupId id) const {
  RFID_EXPECT(id.index < groups_.size(), "unknown group");
  return groups_[id.index];
}

InventoryServer::Group& InventoryServer::group(GroupId id) {
  RFID_EXPECT(id.index < groups_.size(), "unknown group");
  return groups_[id.index];
}

const GroupConfig& InventoryServer::config(GroupId id) const {
  return group(id).config;
}

std::uint64_t InventoryServer::group_size(GroupId id) const {
  const Group& g = group(id);
  if (const auto* trp = std::get_if<protocol::TrpServer>(&g.engine)) {
    return trp->group_size();
  }
  return std::get<protocol::UtrpServer>(g.engine).group_size();
}

std::uint32_t InventoryServer::frame_size(GroupId id) const {
  const Group& g = group(id);
  if (const auto* trp = std::get_if<protocol::TrpServer>(&g.engine)) {
    return trp->frame_size();
  }
  return std::get<protocol::UtrpServer>(g.engine).frame_size();
}

std::uint64_t InventoryServer::rounds_completed(GroupId id) const {
  return group(id).rounds;
}

protocol::TrpChallenge InventoryServer::challenge_trp(GroupId id,
                                                      util::Rng& rng) const {
  const Group& g = group(id);
  RFID_EXPECT(g.active, "group is decommissioned");
  const auto* trp = std::get_if<protocol::TrpServer>(&g.engine);
  RFID_EXPECT(trp != nullptr, "group is not a TRP group");
  return trp->issue_challenge(rng);
}

protocol::Verdict InventoryServer::submit_trp(
    GroupId id, const protocol::TrpChallenge& challenge,
    const bits::Bitstring& reported) {
  Group& g = group(id);
  RFID_EXPECT(g.active, "group is decommissioned");
  const auto* trp = std::get_if<protocol::TrpServer>(&g.engine);
  RFID_EXPECT(trp != nullptr, "group is not a TRP group");
  protocol::Verdict verdict;
  if (const bits::Bitstring* cached = find_expected(id, challenge)) {
    if (metrics_ != nullptr) {
      obs::catalog::expected_cache_total(*metrics_, "hit").inc();
    }
    verdict = trp->verify_with_expected(challenge, *cached, reported);
  } else {
    if (metrics_ != nullptr) {
      obs::catalog::expected_cache_total(*metrics_, "miss").inc();
    }
    bits::Bitstring expected = trp->expected_bitstring(challenge);
    verdict = trp->verify_with_expected(challenge, expected, reported);
    store_expected(id, challenge, std::move(expected));
  }
  ++g.rounds;
  if (metrics_ != nullptr) {
    obs::catalog::verdicts_total(*metrics_, "trp",
                                 verdict.intact ? "intact" : "violated")
        .inc();
  }
  if (!verdict.intact) record_alert(id, verdict, reported);
  return verdict;
}

protocol::UtrpChallenge InventoryServer::challenge_utrp(GroupId id,
                                                        util::Rng& rng) const {
  const Group& g = group(id);
  RFID_EXPECT(g.active, "group is decommissioned");
  const auto* utrp = std::get_if<protocol::UtrpServer>(&g.engine);
  RFID_EXPECT(utrp != nullptr, "group is not a UTRP group");
  return utrp->issue_challenge(rng);
}

protocol::Verdict InventoryServer::submit_utrp(
    GroupId id, const protocol::UtrpChallenge& challenge,
    const bits::Bitstring& reported, bool deadline_met) {
  Group& g = group(id);
  RFID_EXPECT(g.active, "group is decommissioned");
  auto* utrp = std::get_if<protocol::UtrpServer>(&g.engine);
  RFID_EXPECT(utrp != nullptr, "group is not a UTRP group");
  const protocol::Verdict verdict = utrp->verify(challenge, reported, deadline_met);
  utrp->commit_round(challenge, verdict);
  ++g.rounds;
  if (metrics_ != nullptr) {
    obs::catalog::verdicts_total(*metrics_, "utrp",
                                 verdict.intact ? "intact" : "violated")
        .inc();
  }
  if (!verdict.intact) record_alert(id, verdict, reported);
  return verdict;
}

bool InventoryServer::needs_resync(GroupId id) const {
  const Group& g = group(id);
  if (const auto* utrp = std::get_if<protocol::UtrpServer>(&g.engine)) {
    return utrp->needs_resync();
  }
  return false;
}

void InventoryServer::resync(GroupId id, const tag::TagSet& audited) {
  Group& g = group(id);
  auto* utrp = std::get_if<protocol::UtrpServer>(&g.engine);
  RFID_EXPECT(utrp != nullptr, "only UTRP groups carry a mirror to resync");
  utrp->resync(audited);
  invalidate_expected(id);

  Alert alert;
  alert.sequence = next_alert_sequence_++;
  alert.kind = AlertKind::kResync;
  alert.group = id;
  alert.group_name = g.config.name;
  alert.round = g.rounds;
  alert.enrolled_size = utrp->group_size();
  alert.estimated_present = static_cast<double>(audited.size());
  alerts_.push_back(std::move(alert));
  if (metrics_ != nullptr) {
    obs::catalog::alerts_total(*metrics_, "resync").inc();
    obs::catalog::resyncs_total(*metrics_).inc();
  }
}

tag::TagSet InventoryServer::utrp_mirror(GroupId id) const {
  const Group& g = group(id);
  const auto* utrp = std::get_if<protocol::UtrpServer>(&g.engine);
  RFID_EXPECT(utrp != nullptr, "only UTRP groups carry a mirror");
  const std::span<const tag::Tag> mirror = utrp->mirror();
  return tag::TagSet(std::vector<tag::Tag>(mirror.begin(), mirror.end()));
}

tag::TagSet InventoryServer::group_tags(GroupId id) const {
  const Group& g = group(id);
  if (const auto* trp = std::get_if<protocol::TrpServer>(&g.engine)) {
    std::vector<tag::Tag> tags;
    tags.reserve(trp->ids().size());
    for (const tag::TagId tid : trp->ids()) tags.emplace_back(tid);
    return tag::TagSet(std::move(tags));
  }
  return utrp_mirror(id);
}

InventoryServer::GroupState InventoryServer::group_state(GroupId id) const {
  return GroupState{rounds_completed(id), needs_resync(id), active(id)};
}

void InventoryServer::restore_history(std::vector<Alert> alerts,
                                      const std::vector<GroupState>& states) {
  RFID_EXPECT(states.size() == groups_.size(),
              "one GroupState per enrolled group");
  RFID_EXPECT(alerts_.empty() && next_alert_sequence_ == 0,
              "restore_history applies to a freshly restored server");
  for (std::size_t i = 0; i < states.size(); ++i) {
    Group& g = groups_[i];
    RFID_EXPECT(g.rounds == 0, "restore_history applies before any rounds");
    g.rounds = states[i].rounds;
    g.active = states[i].active;
    if (states[i].needs_resync) {
      auto* utrp = std::get_if<protocol::UtrpServer>(&g.engine);
      RFID_EXPECT(utrp != nullptr, "needs_resync restored onto a TRP group");
      utrp->mark_needs_resync();
    }
  }
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    RFID_EXPECT(alerts[i].group.index < groups_.size(),
                "restored alert references an unknown group");
    RFID_EXPECT(i == 0 || alerts[i - 1].sequence < alerts[i].sequence,
                "restored alert sequences must be strictly increasing");
  }
  if (!alerts.empty()) next_alert_sequence_ = alerts.back().sequence + 1;
  alerts_ = std::move(alerts);
}

const bits::Bitstring* InventoryServer::find_expected(
    GroupId id, const protocol::TrpChallenge& challenge) const {
  for (const CachedExpectation& entry : expected_cache_) {
    if (entry.group == id.index && entry.r == challenge.r &&
        entry.frame_size == challenge.frame_size) {
      return &entry.expected;
    }
  }
  return nullptr;
}

void InventoryServer::store_expected(GroupId id,
                                     const protocol::TrpChallenge& challenge,
                                     bits::Bitstring expected) {
  CachedExpectation entry{id.index, challenge.r, challenge.frame_size,
                          std::move(expected)};
  if (expected_cache_.size() < kExpectedCacheCapacity) {
    expected_cache_.push_back(std::move(entry));
    return;
  }
  expected_cache_[expected_cache_next_] = std::move(entry);
  expected_cache_next_ = (expected_cache_next_ + 1) % kExpectedCacheCapacity;
}

void InventoryServer::invalidate_expected(GroupId id) {
  const std::size_t before = expected_cache_.size();
  std::erase_if(expected_cache_, [&](const CachedExpectation& entry) {
    return entry.group == id.index;
  });
  const std::size_t dropped = before - expected_cache_.size();
  expected_cache_next_ = 0;  // cache shrank; resume FIFO from the front
  if (dropped > 0 && metrics_ != nullptr) {
    obs::catalog::expected_cache_invalidations_total(*metrics_).inc(dropped);
  }
}

void InventoryServer::record_alert(GroupId id, const protocol::Verdict& verdict,
                                   const bits::Bitstring& reported) {
  Group& g = group(id);
  Alert alert;
  alert.sequence = next_alert_sequence_++;
  alert.group = id;
  alert.group_name = g.config.name;
  alert.round = g.rounds;
  alert.mismatched_slots = verdict.mismatched_slots;
  alert.deadline_missed = !verdict.deadline_met;
  alert.enrolled_size = group_size(id);
  alert.estimated_present = estimate::estimate_cardinality(reported).estimate;
  alerts_.push_back(std::move(alert));
  if (metrics_ != nullptr) {
    obs::catalog::alerts_total(*metrics_, "round_failure").inc();
  }
}

}  // namespace rfid::server
