#include "estimate/upe.h"

#include <cmath>

#include "util/expect.h"

namespace rfid::estimate {

namespace {

/// Solves target = fn(rho) for increasing (or decreasing) fn on [lo, hi].
template <typename Fn>
double bisect(Fn&& fn, double target, double lo, double hi, bool increasing) {
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const bool go_right = increasing ? (fn(mid) < target) : (fn(mid) > target);
    if (go_right) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

constexpr double kMaxLoad = 64.0;  // beyond this every slot collides anyway

}  // namespace

CardinalityEstimate estimate_from_collisions(std::uint64_t collision_slots,
                                             std::uint64_t frame_size) {
  RFID_EXPECT(frame_size >= 1, "frame size must be positive");
  RFID_EXPECT(collision_slots <= frame_size, "more collisions than slots");

  CardinalityEstimate est;
  est.frame_size = frame_size;
  const double f = static_cast<double>(frame_size);
  const double fraction = static_cast<double>(collision_slots) / f;

  if (collision_slots == 0) {
    est.estimate = 0.0;  // could be 0 or 1 tag per slot; lowest consistent n
    est.std_error = f;   // essentially uninformative downward
    return est;
  }
  const auto coll_fraction = [](double rho) {
    return 1.0 - (1.0 + rho) * std::exp(-rho);
  };
  if (fraction >= coll_fraction(kMaxLoad)) {
    est.saturated = true;
    est.estimate = kMaxLoad * f;
    est.std_error = est.estimate;
    return est;
  }
  const double rho = bisect(coll_fraction, fraction, 0.0, kMaxLoad,
                            /*increasing=*/true);
  est.estimate = rho * f;
  // Delta method: Var(collisions) ~ f p(1-p) with p the collision fraction;
  // d(collisions)/d(n) = rho e^{-rho}.
  const double p = coll_fraction(rho);
  const double derivative = rho * std::exp(-rho);  // d p / d rho
  if (derivative > 1e-12) {
    est.std_error = std::sqrt(f * p * (1.0 - p)) / derivative;
  } else {
    est.std_error = est.estimate;
  }
  return est;
}

CardinalityEstimate estimate_from_singletons(std::uint64_t singleton_slots,
                                             std::uint64_t frame_size,
                                             bool assume_underloaded) {
  RFID_EXPECT(frame_size >= 1, "frame size must be positive");
  RFID_EXPECT(singleton_slots <= frame_size, "more singletons than slots");

  CardinalityEstimate est;
  est.frame_size = frame_size;
  const double f = static_cast<double>(frame_size);
  const double fraction = static_cast<double>(singleton_slots) / f;
  constexpr double kPeak = 0.3678794411714423;  // 1/e at rho = 1

  RFID_EXPECT(fraction <= kPeak * 1.10,
              "singleton fraction above the rho*e^{-rho} maximum; the frame "
              "is inconsistent with the model");
  const double clamped = std::min(fraction, kPeak);
  const auto single_fraction = [](double rho) { return rho * std::exp(-rho); };
  const double rho =
      assume_underloaded
          ? bisect(single_fraction, clamped, 0.0, 1.0, /*increasing=*/true)
          : bisect(single_fraction, clamped, 1.0, kMaxLoad, /*increasing=*/false);
  est.estimate = rho * f;
  const double p = single_fraction(rho);
  const double derivative = std::abs((1.0 - rho) * std::exp(-rho));
  est.std_error = derivative > 1e-9
                      ? std::sqrt(f * p * (1.0 - p)) / derivative
                      : est.estimate;  // near the peak the estimator is blind
  return est;
}

CardinalityEstimate estimate_from_frame(std::uint64_t empty_slots,
                                        std::uint64_t singleton_slots,
                                        std::uint64_t collision_slots) {
  const std::uint64_t frame_size =
      empty_slots + singleton_slots + collision_slots;
  RFID_EXPECT(frame_size >= 1, "frame has no slots");
  if (empty_slots > 0) {
    return estimate_cardinality(empty_slots, frame_size);
  }
  return estimate_from_collisions(collision_slots, frame_size);
}

}  // namespace rfid::estimate
