#!/usr/bin/env bash
# Build, test, and regenerate every result in EXPERIMENTS.md.
#
# Usage:
#   scripts/run_all.sh [build-dir]
#
# Outputs land in <build-dir>/results/: one .txt per bench binary plus
# test_output.txt. Pass RFIDMON_BENCH_ARGS to forward options to every
# figure bench (e.g. RFIDMON_BENCH_ARGS="--trials 200 --nstep 400" for a
# quick pass).
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${BUILD_DIR}/results"
BENCH_ARGS="${RFIDMON_BENCH_ARGS:-}"

cmake -B "${BUILD_DIR}" -G Ninja
cmake --build "${BUILD_DIR}"

mkdir -p "${RESULTS_DIR}"

echo "== tests =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure \
  | tee "${RESULTS_DIR}/test_output.txt" | tail -3

echo "== durability smoke (persist -> crash -> recover) =="
"${BUILD_DIR}/examples/durability_drill" "${BUILD_DIR}/rfidmon-drill-state" \
  | tee "${RESULTS_DIR}/durability_drill.txt"

echo "== fleet orchestration (concurrent multi-zone warehouse) =="
# Exits 1 by design: the scenario contains thefts, so the verdict is
# "violated". The output itself is the artifact.
"${BUILD_DIR}/examples/warehouse_monitoring" \
  | tee "${RESULTS_DIR}/fleet_warehouse.txt" || true

echo "== continuous-monitoring daemon (crashes, churn, supervised resume) =="
# Also exits 1 by design: the scripted scenario contains a theft.
"${BUILD_DIR}/examples/daemon_watch" \
  | tee "${RESULTS_DIR}/daemon_watch.txt" || true

echo "== reader fusion (adversarial reader overruled by k = 3 vote) =="
"${BUILD_DIR}/examples/fusion_drill" | tee "${RESULTS_DIR}/fusion_drill.txt"

echo "== identification drill-down (violated zone -> named stolen tags) =="
"${BUILD_DIR}/examples/identify_drill" | tee "${RESULTS_DIR}/identify_drill.txt"

echo "== multi-tenant service (framed protocol, admission, streamed verdicts) =="
"${BUILD_DIR}/examples/service_drill" | tee "${RESULTS_DIR}/service_drill.txt"

echo "== observability (final metrics dump) =="
"${BUILD_DIR}/examples/metrics_dump" | tee "${RESULTS_DIR}/metrics_prometheus.txt" | tail -5
"${BUILD_DIR}/examples/metrics_dump" --json > "${RESULTS_DIR}/metrics_json.txt"
"${BUILD_DIR}/examples/metrics_dump" --trace > "${RESULTS_DIR}/session_traces.txt"

echo "== benches =="
for bench in "${BUILD_DIR}"/bench/*; do
  [ -x "${bench}" ] || continue
  name="$(basename "${bench}")"
  echo "-- ${name}"
  case "${name}" in
    micro_*)
      # google-benchmark binaries take their own flags.
      # Plain double: accepted by both old and new google-benchmark (the
      # "0.05s" suffix form requires >= 1.7).
      "${bench}" --benchmark_min_time=0.05 > "${RESULTS_DIR}/${name}.txt" 2>&1
      ;;
    *)
      # shellcheck disable=SC2086
      "${bench}" ${BENCH_ARGS} > "${RESULTS_DIR}/${name}.txt" 2>&1
      ;;
  esac
done

echo "done; results in ${RESULTS_DIR}/"
