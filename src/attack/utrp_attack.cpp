#include "attack/utrp_attack.h"

#include <limits>
#include <vector>

#include "util/expect.h"

namespace rfid::attack {

namespace {

constexpr std::uint32_t kNoPick = std::numeric_limits<std::uint32_t>::max();

/// One reader's half of the split set during the mechanically-faithful walk.
struct Half {
  std::span<tag::Tag> tags;
  std::vector<std::size_t> active;
  std::vector<std::uint32_t> pick;

  void init(const hash::SlotHasher& hasher, std::uint64_t seed,
            std::uint32_t frame) {
    pick.assign(tags.size(), 0);
    active.clear();
    active.reserve(tags.size());
    for (std::size_t i = 0; i < tags.size(); ++i) {
      tags[i].begin_round();
      pick[i] = tags[i].utrp_receive_seed(hasher, seed, frame);
      active.push_back(i);
    }
  }

  [[nodiscard]] std::uint32_t min_pick() const noexcept {
    std::uint32_t m = kNoPick;
    for (const std::size_t i : active) m = std::min(m, pick[i]);
    return m;
  }

  /// Silences and drops every active tag whose pick equals `local`.
  void reply_at(std::uint32_t local) {
    std::erase_if(active, [&](std::size_t i) {
      if (pick[i] != local) return false;
      tags[i].silence();
      return true;
    });
  }

  void reseed(const hash::SlotHasher& hasher, std::uint64_t seed,
              std::uint32_t frame) {
    for (const std::size_t i : active) {
      pick[i] = tags[i].utrp_receive_seed(hasher, seed, frame);
    }
  }
};

}  // namespace

UtrpAttackResult run_utrp_split_attack(std::span<tag::Tag> s1,
                                       std::span<tag::Tag> s2,
                                       const hash::SlotHasher& hasher,
                                       const protocol::UtrpChallenge& challenge,
                                       std::uint64_t comm_budget) {
  const std::uint32_t f = challenge.frame_size;
  RFID_EXPECT(f >= 1, "challenge has no slots");
  RFID_EXPECT(!challenge.seeds.empty(), "challenge has no seeds");

  UtrpAttackResult result;
  result.forged = bits::Bitstring(f);
  result.coordinated_slots = f;  // updated if the budget runs out mid-frame

  Half h1{s1, {}, {}};
  Half h2{s2, {}, {}};
  h1.init(hasher, challenge.seeds[0], f);
  h2.init(hasher, challenge.seeds[0], f);
  std::size_t seeds_consumed = 1;

  std::uint32_t subframe_start = 0;
  std::uint32_t local = 0;  // next local slot within the current sub-frame
  std::uint64_t budget = comm_budget;
  bool coordinating = true;

  std::uint32_t m1 = h1.min_pick();
  std::uint32_t m2 = h2.min_pick();

  while (subframe_start + local < f) {
    const bool r1_reply = (m1 == local);
    bool r2_reply = coordinating && (m2 == local);

    if (!r1_reply && coordinating) {
      // R1 sees an empty-of-its-own slot and must ask R2 whether to re-seed
      // (Sec. 5.4 strategy step 1). When the budget is gone, coordination
      // ends right here and R2's state becomes irrelevant to the forgery.
      if (budget == 0) {
        coordinating = false;
        result.coordinated_slots = subframe_start + local;
        r2_reply = false;
      } else {
        --budget;
        ++result.comms_used;
      }
    }

    if (r1_reply || r2_reply) {
      const std::uint32_t global = subframe_start + local;
      result.forged.set(global);
      if (r1_reply) h1.reply_at(local);
      if (r2_reply) h2.reply_at(local);

      if (global + 1 >= f) break;  // reply in the final slot
      RFID_ENSURE(seeds_consumed < challenge.seeds.size(),
                  "server issued too few seeds for this frame");
      const std::uint64_t seed = challenge.seeds[seeds_consumed++];
      const std::uint32_t sub_frame = f - (global + 1);
      subframe_start = global + 1;
      local = 0;
      h1.reseed(hasher, seed, sub_frame);
      m1 = h1.min_pick();
      if (coordinating) {
        // R2 re-seeds its half in lockstep (it learns of R1's replies over
        // the same channel; the paper charges the budget only for R1's
        // empty-slot waits, and we follow that accounting).
        h2.reseed(hasher, seed, sub_frame);
        m2 = h2.min_pick();
      }
    } else {
      ++local;
    }
  }
  return result;
}

StaticModelTrial run_utrp_static_model_attack(std::span<const tag::Tag> s1,
                                              std::span<const tag::Tag> s2,
                                              const hash::SlotHasher& hasher,
                                              std::uint32_t frame_size,
                                              std::uint64_t r,
                                              std::uint64_t comm_budget) {
  RFID_EXPECT(frame_size >= 1, "frame must have slots");
  std::vector<std::uint32_t> occupancy(frame_size, 0);
  for (const tag::Tag& t : s1) {
    ++occupancy[t.trp_slot(hasher, r, frame_size)];
  }

  StaticModelTrial trial;
  // The coordinated prefix ends one slot after R1's c-th empty slot; with no
  // budget at all there is no prefix.
  std::uint64_t empties_seen = 0;
  trial.realized_cprime = comm_budget == 0 ? 0 : frame_size;
  for (std::uint32_t slot = 0; comm_budget != 0 && slot < frame_size; ++slot) {
    if (occupancy[slot] == 0) {
      ++empties_seen;
      if (empties_seen == comm_budget) {
        trial.realized_cprime = slot + 1;
        break;
      }
    }
  }

  for (const tag::Tag& t : s2) {
    const std::uint32_t slot = t.trp_slot(hasher, r, frame_size);
    if (slot >= trial.realized_cprime) {
      ++trial.exposed_stolen;
      if (occupancy[slot] == 0) trial.detected = true;
    }
  }
  return trial;
}

}  // namespace rfid::attack
