#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"

namespace rfid::util {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::stderr_mean() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

Interval BinomialProportion::wilson(double z) const noexcept {
  if (n_ == 0) return {0.0, 1.0};
  const double n = static_cast<double>(n_);
  const double p = proportion();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double quantile(std::vector<double> samples, double q) {
  RFID_EXPECT(!samples.empty(), "quantile of empty sample set");
  RFID_EXPECT(q >= 0.0 && q <= 1.0, "quantile order must be in [0,1]");
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= samples.size()) return samples.back();
  return samples[idx] * (1.0 - frac) + samples[idx + 1] * frac;
}

}  // namespace rfid::util
