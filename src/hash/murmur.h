// MurmurHash3 (Austin Appleby, public domain design), reimplemented.
//
// murmur3_fmix64 is the 64-bit finalizer — a 5-instruction bijective mixer
// with excellent avalanche. It is the default slot-selection hash in this
// library: fast enough for hundreds of millions of per-slot evaluations in
// the Monte-Carlo benches while keeping Theorem 1's uniformity assumption
// honest (verified by chi-square tests in tests/hash_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace rfid::hash {

/// MurmurHash3 64-bit finalizer (bijective on uint64).
[[nodiscard]] constexpr std::uint64_t murmur3_fmix64(std::uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// MurmurHash3 32-bit finalizer (bijective on uint32).
[[nodiscard]] constexpr std::uint32_t murmur3_fmix32(std::uint32_t k) noexcept {
  k ^= k >> 16;
  k *= 0x85ebca6bU;
  k ^= k >> 13;
  k *= 0xc2b2ae35U;
  k ^= k >> 16;
  return k;
}

/// Full MurmurHash3 x86_32 over a byte sequence with a seed.
[[nodiscard]] std::uint32_t murmur3_x86_32(std::span<const std::byte> data,
                                           std::uint32_t seed) noexcept;

}  // namespace rfid::hash
