#include "wire/link.h"

#include "util/expect.h"

namespace rfid::wire {

bool Link::send(std::vector<std::byte> frame, const Handler& deliver) {
  RFID_EXPECT(deliver != nullptr, "null delivery handler");
  ++sent_;
  if (config_.drop_prob > 0.0 && rng_.chance(config_.drop_prob)) {
    ++dropped_;
    return false;
  }
  double delay = config_.latency_us;
  if (config_.jitter_us > 0.0) delay += rng_.uniform() * config_.jitter_us;
  queue_.schedule_after(
      delay, [deliver, payload = std::move(frame)]() mutable {
        deliver(std::move(payload));
      });
  return true;
}

}  // namespace rfid::wire
