// 96-bit EPC-style tag identifiers.
//
// Real Gen2 tags carry a 96-bit EPC; we model the full width so IDs are
// realistic, and fold it to the 64-bit word the paper's slot hash consumes
// (h operates on "ID ⊕ r", an abstract word). The fold is a fixed public
// bijection-per-high-word, so equal IDs always fold equally on the tag, the
// reader, and the server.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace rfid::tag {

class TagId {
 public:
  constexpr TagId() noexcept = default;
  constexpr TagId(std::uint32_t hi, std::uint64_t lo) noexcept : hi_(hi), lo_(lo) {}

  [[nodiscard]] constexpr std::uint32_t hi() const noexcept { return hi_; }
  [[nodiscard]] constexpr std::uint64_t lo() const noexcept { return lo_; }

  /// The 64-bit word fed to the slot hash: the low word XOR a multiplicative
  /// spread of the high 32 bits (odd constant, so distinct high words map to
  /// distinct offsets).
  [[nodiscard]] constexpr std::uint64_t slot_word() const noexcept {
    return lo_ ^ (static_cast<std::uint64_t>(hi_) * 0x9e3779b97f4a7c15ULL);
  }

  /// "urn:epc:raw:HHHHHHHH.LLLLLLLLLLLLLLLL"-style rendering (hex fields).
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const TagId&, const TagId&) noexcept = default;

 private:
  std::uint32_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

}  // namespace rfid::tag
