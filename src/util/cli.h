// Minimal command-line parsing for bench and example binaries.
//
// Supports "--key value", "--key=value" and boolean "--flag" forms. Unknown
// arguments raise std::invalid_argument so typos in experiment sweeps fail
// loudly instead of silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rfid::util {

class CliArgs {
 public:
  /// Parses argv[1..argc). `allowed` lists the recognized option names
  /// (without the leading dashes); anything else throws.
  CliArgs(int argc, const char* const* argv, std::vector<std::string> allowed);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key, std::string fallback) const;
  [[nodiscard]] std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double get_double_or(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key) const { return has(key); }

 private:
  void check_allowed(const std::string& key,
                     const std::vector<std::string>& allowed) const;

  std::map<std::string, std::string> values_;
};

}  // namespace rfid::util
