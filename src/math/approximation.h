// Closed-form approximations to Theorem 1 and Eq. (2).
//
// Replacing the Binomial(f, p) average in Theorem 1 with its mean-field
// value N0 ≈ f·e^{−n/f} gives
//     g(n, x, f) ≈ 1 − (1 − e^{−n/f})^x
// which inverts in closed form:
//     f*(n, m, α) ≈ −n / ln(1 − (1 − α)^{1/(m+1)})
// Accurate to a few slots — a couple percent relative, worst at small n —
// across the paper's whole grid (tests pin the error), it serves three roles: a sanity oracle for the exact optimizer, a
// cheap bracket hint that makes optimize_trp_frame start its search next to
// the answer, and the form practitioners can put on a whiteboard.
#pragma once

#include <cstdint>

namespace rfid::math {

/// Mean-field detection probability: 1 − (1 − e^{−n/f})^x.
/// Preconditions as detection_probability (x <= n, f >= 1).
[[nodiscard]] double detection_probability_mean_field(std::uint64_t n,
                                                      std::uint64_t x,
                                                      std::uint64_t f);

/// Closed-form frame size: smallest f with the mean-field g above alpha,
/// rounded up. Requires m + 1 <= n and alpha in (0, 1).
[[nodiscard]] std::uint32_t approximate_trp_frame(std::uint64_t n,
                                                  std::uint64_t m, double alpha);

}  // namespace rfid::math
