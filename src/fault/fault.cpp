#include "fault/fault.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <string>

#include "util/expect.h"

namespace rfid::fault {

double GilbertElliottConfig::stationary_loss() const noexcept {
  const double denom = p_enter_bad + p_exit_bad;
  if (denom <= 0.0) return loss_good;  // chain never moves: stays good
  const double pi_bad = p_enter_bad / denom;
  return pi_bad * loss_bad + (1.0 - pi_bad) * loss_good;
}

bool GilbertElliott::drop(util::Rng& rng) noexcept {
  const double loss = bad_ ? config_.loss_bad : config_.loss_good;
  const bool dropped = loss > 0.0 && rng.chance(loss);
  const double flip = bad_ ? config_.p_exit_bad : config_.p_enter_bad;
  if (flip > 0.0 && rng.chance(flip)) bad_ = !bad_;
  return dropped;
}

FrameFate FaultInjector::on_frame() {
  FrameFate fate;
  if (plan_.burst.enabled() && chain_.drop(rng_)) {
    fate.drop = true;
    ++burst_dropped_;
    return fate;  // a dropped frame cannot also be corrupted or duplicated
  }
  if (plan_.corrupt_prob > 0.0 && rng_.chance(plan_.corrupt_prob)) {
    fate.corrupt = true;
    ++corrupted_;
  }
  if (plan_.duplicate_prob > 0.0 && rng_.chance(plan_.duplicate_prob)) {
    fate.duplicate = true;
    ++duplicated_;
  }
  if (plan_.reorder_prob > 0.0 && rng_.chance(plan_.reorder_prob)) {
    fate.extra_delay_us = plan_.reorder_delay_us;
    ++reordered_;
  }
  return fate;
}

void FaultInjector::corrupt(std::vector<std::byte>& frame) {
  RFID_EXPECT(!frame.empty(), "cannot corrupt an empty frame");
  const std::uint64_t bit = rng_.below(frame.size() * 8);
  frame[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
}

namespace {

[[nodiscard]] double parse_number(std::istringstream& is, const std::string& line) {
  double v = 0.0;
  RFID_EXPECT(static_cast<bool>(is >> v), "malformed fault-plan line: " + line);
  return v;
}

[[nodiscard]] double parse_prob(std::istringstream& is, const std::string& line) {
  const double v = parse_number(is, line);
  RFID_EXPECT(v >= 0.0 && v <= 1.0,
              "fault-plan probability outside [0, 1]: " + line);
  return v;
}

/// Applies the script in `text` on top of `plan` (the layered-merge
/// primitive behind both the single- and multi-reader parsers).
void apply_fault_plan_lines(FaultPlan& plan, std::string_view text) {
  std::istringstream lines{std::string(text)};
  std::string line;
  while (std::getline(lines, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream is(line);
    std::string directive;
    if (!(is >> directive)) continue;  // blank or comment-only line

    if (directive == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_number(is, line));
    } else if (directive == "burst") {
      plan.burst.p_enter_bad = parse_prob(is, line);
      plan.burst.p_exit_bad = parse_prob(is, line);
      double loss_bad = 1.0;
      if (is >> loss_bad) {
        RFID_EXPECT(loss_bad >= 0.0 && loss_bad <= 1.0,
                    "fault-plan probability outside [0, 1]: " + line);
        if (double loss_good = 0.0; is >> loss_good) {
          RFID_EXPECT(loss_good >= 0.0 && loss_good <= 1.0,
                      "fault-plan probability outside [0, 1]: " + line);
          plan.burst.loss_good = loss_good;
        }
      }
      plan.burst.loss_bad = loss_bad;
    } else if (directive == "corrupt") {
      plan.corrupt_prob = parse_prob(is, line);
    } else if (directive == "duplicate") {
      plan.duplicate_prob = parse_prob(is, line);
    } else if (directive == "reorder") {
      plan.reorder_prob = parse_prob(is, line);
      if (double delay = 0.0; is >> delay) {
        RFID_EXPECT(delay >= 0.0, "reorder delay must be >= 0: " + line);
        plan.reorder_delay_us = delay;
      }
    } else if (directive == "skew") {
      plan.clock_skew = parse_number(is, line);
      RFID_EXPECT(plan.clock_skew > 0.0, "clock skew must be > 0: " + line);
      if (double offset = 0.0; is >> offset) plan.clock_offset_us = offset;
    } else if (directive == "crash") {
      CrashWindow window;
      window.start_us = parse_number(is, line);
      RFID_EXPECT(window.start_us >= 0.0, "crash start must be >= 0: " + line);
      std::string end;
      RFID_EXPECT(static_cast<bool>(is >> end),
                  "crash needs <start_us> <end_us|never>: " + line);
      if (end == "never") {
        window.end_us = std::numeric_limits<double>::infinity();
      } else {
        std::istringstream end_is(end);
        window.end_us = parse_number(end_is, line);
      }
      plan.reader_crashes.push_back(window);
    } else {
      RFID_EXPECT(false, "unknown fault-plan directive: " + directive);
    }
    std::string trailing;
    RFID_EXPECT(!(is >> trailing), "trailing tokens on fault-plan line: " + line);
  }
}

}  // namespace

FaultPlan parse_fault_plan(std::string_view text) {
  FaultPlan plan;
  apply_fault_plan_lines(plan, text);
  return plan;
}

FaultPlan MultiReaderFaultPlan::for_reader(std::uint32_t reader) const {
  FaultPlan plan = shared;
  for (const auto& [index, override_plan] : overrides) {
    if (index == reader) {
      plan = override_plan;
      break;
    }
  }
  // Reader 0 keeps the scripted seed so a k = 1 zone is bit-identical to
  // the legacy single-reader path; higher readers fork their own stream
  // unless the script pinned them together with `correlated`.
  if (!correlated && reader > 0) {
    plan.seed = util::derive_seed(plan.seed, reader, 0x72656164ULL /* "read" */);
  }
  return plan;
}

MultiReaderFaultPlan parse_multi_reader_fault_plan(std::string_view text) {
  MultiReaderFaultPlan plan;
  std::string shared_text;
  std::vector<std::pair<std::uint32_t, std::string>> reader_texts;

  std::istringstream lines{std::string(text)};
  std::string line;
  while (std::getline(lines, line)) {
    std::string body = line;
    if (const auto hash = body.find('#'); hash != std::string::npos) {
      body.erase(hash);
    }
    const auto start = body.find_first_not_of(" \t");
    if (start == std::string::npos) continue;

    if (body.compare(start, 7, "reader=") == 0) {
      const auto index_begin = start + 7;
      const auto colon = body.find(':', index_begin);
      RFID_EXPECT(colon != std::string::npos && colon > index_begin,
                  "malformed reader prefix (want reader=<n>:): " + line);
      std::uint32_t index = 0;
      for (auto pos = index_begin; pos < colon; ++pos) {
        RFID_EXPECT(body[pos] >= '0' && body[pos] <= '9',
                    "malformed reader prefix (want reader=<n>:): " + line);
        index = index * 10 + static_cast<std::uint32_t>(body[pos] - '0');
      }
      auto it = std::find_if(reader_texts.begin(), reader_texts.end(),
                             [&](const auto& e) { return e.first == index; });
      if (it == reader_texts.end()) {
        it = reader_texts.emplace(reader_texts.end(), index, std::string());
      }
      it->second.append(body, colon + 1, std::string::npos);
      it->second.push_back('\n');
      continue;
    }

    std::istringstream is(body);
    std::string directive;
    is >> directive;
    if (directive == "correlated") {
      std::string trailing;
      RFID_EXPECT(!(is >> trailing),
                  "trailing tokens on fault-plan line: " + line);
      plan.correlated = true;
      continue;
    }
    shared_text += body;
    shared_text.push_back('\n');
  }

  plan.shared = parse_fault_plan(shared_text);
  for (const auto& [index, reader_text] : reader_texts) {
    FaultPlan merged = plan.shared;
    apply_fault_plan_lines(merged, reader_text);
    plan.overrides.emplace_back(index, merged);
  }
  return plan;
}

}  // namespace rfid::fault
