// The fusion subsystem, bottom to top: the per-slot trust-weighted vote
// (fusion/fusion.h), the generalized Theorem 1 sizing it is computed for
// (math/fused_detection.h) — including the exact reduction to Eq. 2 at the
// trustworthy-reader point and Monte-Carlo validation of g_k against the
// full fuse-then-threshold pipeline — and the end-to-end adversarial
// guarantee: a fleet with k = 3 readers per zone detects a theft that a
// single adversarial reader hides completely at k = 1.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "bitstring/bitstring.h"
#include "fault/fault.h"
#include "fleet/fleet.h"
#include "fusion/fusion.h"
#include "math/binomial.h"
#include "math/detection.h"
#include "math/frame_optimizer.h"
#include "math/fused_detection.h"
#include "server/group_planner.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using namespace rfid;

// ---------------------------------------------------------------------------
// fuse_round: the per-slot vote.

bits::Bitstring make_bits(std::size_t size,
                          std::initializer_list<std::size_t> busy) {
  bits::Bitstring b(size);
  for (const std::size_t slot : busy) b.set(slot);
  return b;
}

TEST(FuseRound, EqualTrustTakesStrictMajority) {
  const bits::Bitstring a = make_bits(4, {0, 1});
  const bits::Bitstring b = make_bits(4, {0, 2});
  const bits::Bitstring c = make_bits(4, {0});
  const std::vector<const bits::Bitstring*> observed{&a, &b, &c};
  const std::vector<double> trust{1.0, 1.0, 1.0};

  const fusion::FusedRound round = fusion::fuse_round(observed, trust);
  EXPECT_EQ(round.valid_readers, 3u);
  EXPECT_EQ(round.slots_fused, 4u);
  EXPECT_TRUE(round.fused.test(0));    // 3 of 3
  EXPECT_FALSE(round.fused.test(1));   // 1 of 3
  EXPECT_FALSE(round.fused.test(2));   // 1 of 3
  EXPECT_FALSE(round.fused.test(3));   // 0 of 3
  // Readers a and b each phantomed one slot; c missed nothing and
  // phantomed nothing.
  EXPECT_EQ(round.phantom_busy[0], 1u);
  EXPECT_EQ(round.phantom_busy[1], 1u);
  EXPECT_EQ(round.phantom_busy[2], 0u);
  EXPECT_EQ(round.missed_busy[2], 0u);
  EXPECT_EQ(round.votes_overruled, 2u);
}

TEST(FuseRound, TiesFuseEmpty) {
  // Honest radios lose replies but never phantom them, so an even split is
  // resolved toward empty: busy requires a STRICT weight majority.
  const bits::Bitstring busy = make_bits(1, {0});
  const bits::Bitstring quiet = make_bits(1, {});
  const std::vector<const bits::Bitstring*> observed{&busy, &quiet};
  const std::vector<double> trust{1.0, 1.0};
  EXPECT_FALSE(fusion::fuse_round(observed, trust).fused.test(0));
}

TEST(FuseRound, TrustWeightsOutvoteHeadcount) {
  // Two distrusted readers phantom a slot against one trusted reader: the
  // trust mass, not the headcount, decides.
  const bits::Bitstring phantom = make_bits(1, {0});
  const bits::Bitstring honest = make_bits(1, {});
  const std::vector<const bits::Bitstring*> observed{&phantom, &phantom,
                                                     &honest};
  const std::vector<double> trust{0.2, 0.2, 1.0};
  EXPECT_FALSE(fusion::fuse_round(observed, trust).fused.test(0));
}

TEST(FuseRound, NullObservationsDoNotVote) {
  const bits::Bitstring busy = make_bits(2, {0});
  const std::vector<const bits::Bitstring*> observed{&busy, nullptr, nullptr};
  const std::vector<double> trust{1.0, 1.0, 1.0};
  const fusion::FusedRound round = fusion::fuse_round(observed, trust);
  EXPECT_EQ(round.valid_readers, 1u);
  EXPECT_TRUE(round.fused.test(0));  // 1 of 1 valid: unanimous
  EXPECT_FALSE(round.fused.test(1));
  EXPECT_EQ(round.phantom_busy[1], 0u);  // absent readers are never judged
}

// ---------------------------------------------------------------------------
// TrustTracker: decay and suspicion.

TEST(TrustTracker, SinglePhantomVoteMarksTheRoundBad) {
  fusion::FusionConfig config;
  config.readers = 3;
  config.suspect_after_rounds = 2;
  fusion::TrustTracker tracker(config);

  fusion::FusedRound round;
  round.slots_fused = 100;
  round.phantom_busy = {1, 0, 0};  // one physically impossible vote
  round.missed_busy = {0, 0, 0};
  tracker.observe_round(round);
  EXPECT_FALSE(tracker.suspect(0));  // one bad round, threshold is two
  tracker.observe_round(round);
  EXPECT_TRUE(tracker.suspect(0));
  EXPECT_FALSE(tracker.suspect(1));
  EXPECT_EQ(tracker.suspect_count(), 1u);
  EXPECT_EQ(tracker.overruled_votes(0), 2u);
}

TEST(TrustTracker, OccasionalMissedRepliesAreNotSuspicious) {
  fusion::FusionConfig config;
  config.readers = 2;
  config.suspect_overruled = 0.25;
  fusion::TrustTracker tracker(config);

  fusion::FusedRound round;
  round.slots_fused = 100;
  round.phantom_busy = {0, 0};
  round.missed_busy = {10, 60};  // 10% is fading; 60% is persistent
  tracker.observe_round(round);
  EXPECT_FALSE(tracker.suspect(0));
  EXPECT_TRUE(tracker.suspect(1));
  // Trust decays with the overruled fraction and stays above the floor.
  EXPECT_LT(tracker.trust()[1], tracker.trust()[0]);
  EXPECT_GE(tracker.trust()[1], config.min_trust);
}

TEST(TrustTracker, TrustIsFlooredAtMinTrust) {
  fusion::FusionConfig config;
  config.readers = 1;
  config.trust_decay = 1.0;
  config.min_trust = 0.05;
  fusion::TrustTracker tracker(config);
  fusion::FusedRound round;
  round.slots_fused = 10;
  round.phantom_busy = {10};
  round.missed_busy = {0};
  for (int i = 0; i < 5; ++i) tracker.observe_round(round);
  EXPECT_DOUBLE_EQ(tracker.trust()[0], config.min_trust);
}

// ---------------------------------------------------------------------------
// Generalized Theorem 1 sizing.

TEST(FusedSizing, VoteThresholdIsStrictMajority) {
  EXPECT_EQ(math::fused_vote_threshold(1), 1u);
  EXPECT_EQ(math::fused_vote_threshold(2), 2u);
  EXPECT_EQ(math::fused_vote_threshold(3), 2u);
  EXPECT_EQ(math::fused_vote_threshold(5), 3u);
}

TEST(FusedSizing, SlotFalseEmptyMatchesClosedForm) {
  // k = 3, a = 0, p = 0.2: eps = P(Binom(3, 0.8) < 2) = 0.008 + 0.096.
  EXPECT_NEAR(math::fused_slot_false_empty({3, 0, 0.2, 0.025}), 0.104, 1e-12);
  // k = 3, a = 1, p = 0.2: two honest readers must BOTH hear the slot.
  EXPECT_NEAR(math::fused_slot_false_empty({3, 1, 0.2, 0.025}),
              1.0 - 0.8 * 0.8, 1e-12);
  // The trustworthy-reader point is exact.
  EXPECT_EQ(math::fused_slot_false_empty({1, 0, 0.0, 0.025}), 0.0);
  EXPECT_EQ(math::fused_slot_false_empty({5, 2, 0.0, 0.025}), 0.0);
}

TEST(FusedSizing, MismatchThresholdIsMinimalForTheBudget) {
  const math::FusedSizingParams params{3, 1, 0.1, 0.025};
  const std::uint64_t n = 150;
  const std::uint64_t f = 256;
  const double eps = math::fused_slot_false_empty(params);
  const std::uint64_t threshold = math::fused_mismatch_threshold(n, f, params);
  ASSERT_GT(threshold, 1u);  // noisy enough that T = 1 would always alarm

  const std::uint64_t busy = std::min(n, f);
  const auto tail_at_least = [&](std::uint64_t t) {
    double below = 0.0;
    for (std::uint64_t j = 0; j < t; ++j) {
      below += math::binomial_pmf(busy, j, eps);
    }
    return 1.0 - below;
  };
  EXPECT_LE(tail_at_least(threshold), params.alert_budget);
  EXPECT_GT(tail_at_least(threshold - 1), params.alert_budget);
}

TEST(FusedSizing, NoiselessThresholdIsOne) {
  EXPECT_EQ(math::fused_mismatch_threshold(100, 256, {1, 0, 0.0, 0.025}), 1u);
  EXPECT_EQ(math::fused_mismatch_threshold(100, 256, {3, 1, 0.0, 0.025}), 1u);
}

TEST(FusedSizing, ReducesToEquationTwoAtTheTrustworthyReaderPoint) {
  // g_k at (k=1, a=0, p=0) must repeat Eq. 2's arithmetic bit for bit —
  // not merely approximate it — so the optimizer's frame-size boundaries
  // cannot drift between the legacy and the fused paths.
  const math::FusedSizingParams point{1, 0, 0.0, 0.025};
  for (const std::uint64_t n : {25ULL, 120ULL, 500ULL}) {
    for (const std::uint64_t x : {1ULL, 3ULL, 9ULL}) {
      for (const std::uint64_t f : {32ULL, 101ULL, 1024ULL}) {
        for (const auto model :
             {math::EmptySlotModel::kPoissonApprox,
              math::EmptySlotModel::kExact}) {
          EXPECT_DOUBLE_EQ(
              math::fused_detection_probability(n, x, f, point, model),
              math::detection_probability(n, x, f, model))
              << "n=" << n << " x=" << x << " f=" << f;
        }
      }
    }
  }
}

TEST(FusedSizing, OptimizerReducesToEquationTwoOptimizer) {
  const math::FusedSizingParams point{1, 0, 0.0, 0.025};
  for (const auto& [n, m] : {std::pair<std::uint64_t, std::uint64_t>{50, 2},
                             {120, 4},
                             {400, 10}}) {
    const math::TrpPlan legacy = math::optimize_trp_frame(n, m, 0.95);
    const math::TrpPlan fused = math::optimize_fused_trp_frame(
        n, m, 0.95, point);
    EXPECT_EQ(fused.frame_size, legacy.frame_size) << "n=" << n;
    EXPECT_DOUBLE_EQ(fused.predicted_detection, legacy.predicted_detection);
  }
}

TEST(FusedSizing, NoiseAndFaultBudgetOnlyEnlargeTheFrame) {
  // m must clear the mismatch threshold the noise forces (T = 29 busy
  // slots can read falsely empty at the hostile point below), or no frame
  // satisfies alpha at all — itself a property worth pinning down first.
  const std::uint64_t n = 200;
  const std::uint64_t m = 30;
  EXPECT_THROW(
      (void)math::optimize_fused_trp_frame(n, 10, 0.95, {3, 1, 0.05, 0.025}),
      std::invalid_argument);
  const auto clean = math::optimize_fused_trp_frame(n, m, 0.95,
                                                    {1, 0, 0.0, 0.025});
  const auto noisy = math::optimize_fused_trp_frame(n, m, 0.95,
                                                    {3, 0, 0.05, 0.025});
  const auto hostile = math::optimize_fused_trp_frame(n, m, 0.95,
                                                      {3, 1, 0.05, 0.025});
  EXPECT_GT(noisy.frame_size, clean.frame_size);
  EXPECT_GT(hostile.frame_size, noisy.frame_size);
  EXPECT_GT(noisy.predicted_detection, 0.95);
  EXPECT_GT(hostile.predicted_detection, 0.95);
}

TEST(FusedSizing, RejectsFaultyMajorities) {
  EXPECT_THROW((void)math::fused_slot_false_empty({2, 1, 0.0, 0.025}),
               std::invalid_argument);
  EXPECT_THROW((void)math::fused_slot_false_empty({4, 2, 0.0, 0.025}),
               std::invalid_argument);
}

// Monte-Carlo ground truth of the full pipeline: n tags balls-in-bins into
// f slots, x of them missing, k readers observing with per-slot loss p, a
// adversarial readers forging the full expected bitstring, strict-majority
// fusion, alarm at >= T mismatches. g_k's analytic value must sit within
// Monte-Carlo noise of the measured detection rate.
TEST(FusedSizing, DetectionProbabilityMatchesMonteCarlo) {
  const std::uint64_t n = 120;
  const std::uint64_t x = 6;
  const std::uint64_t f = 256;
  const math::FusedSizingParams params{3, 1, 0.1, 0.025};
  const std::uint64_t threshold = math::fused_mismatch_threshold(n, f, params);
  const std::uint32_t honest = params.readers - params.assumed_faulty;
  const std::uint32_t votes_needed =
      math::fused_vote_threshold(params.readers);

  util::Rng rng(0xf05edULL);
  const int trials = 4000;
  int detected = 0;
  std::vector<std::uint32_t> slot_of(n);
  std::vector<std::uint32_t> present_count(f);
  std::vector<std::uint32_t> expected_busy(f);
  for (int trial = 0; trial < trials; ++trial) {
    std::fill(present_count.begin(), present_count.end(), 0u);
    std::fill(expected_busy.begin(), expected_busy.end(), 0u);
    for (std::uint64_t t = 0; t < n; ++t) {
      slot_of[t] = static_cast<std::uint32_t>(rng() % f);
      expected_busy[slot_of[t]] = 1;
      if (t >= x) ++present_count[slot_of[t]];  // tags 0..x-1 are missing
    }
    std::uint64_t mismatches = 0;
    for (std::uint64_t s = 0; s < f; ++s) {
      if (expected_busy[s] == 0) continue;
      std::uint32_t votes = params.assumed_faulty;  // forged expected-busy
      if (present_count[s] > 0) {
        for (std::uint32_t r = 0; r < honest; ++r) {
          if (!rng.chance(params.slot_loss)) ++votes;
        }
      }
      if (votes < votes_needed) ++mismatches;
    }
    if (mismatches >= threshold) ++detected;
  }
  const double measured = static_cast<double>(detected) / trials;
  const double analytic = math::fused_detection_probability(
      n, x, f, params, math::EmptySlotModel::kExact);
  // Binomial noise at 4000 trials is ~0.008 sigma; the analytic value also
  // treats empty slots as independent (the paper's approximation), so allow
  // a generous-but-meaningful band. The analytic side may only UNDERSTATE
  // detection: noise mismatches on present-busy slots add alarms it ignores.
  EXPECT_NEAR(measured, analytic, 0.04);
  EXPECT_GE(measured + 0.03, analytic);
}

// ---------------------------------------------------------------------------
// End to end: the adversarial-reader guarantee the subsystem exists for.

fleet::FleetResult run_heist(std::uint32_t readers,
                             std::uint32_t dishonest_reader) {
  fleet::FleetOrchestrator orchestrator(
      {.seed = 99, .threads = 2, .fleet_name = "heist"});
  util::Rng rng(1234);
  fleet::InventorySpec spec;
  spec.name = "vault";
  spec.tags = tag::TagSet::make_random(80, rng);
  spec.plan = server::plan_groups(
      {.total_tags = 80, .total_tolerance = 2, .alpha = 0.95,
       .max_group_size = 0});
  spec.rounds = 2;
  for (std::uint64_t t = 0; t < 10; ++t) spec.stolen.push_back(t);
  spec.fusion.readers = readers;
  spec.dishonest_readers.emplace_back(0, dishonest_reader);
  orchestrator.submit(std::move(spec));
  return orchestrator.run();
}

TEST(FusionEndToEnd, SingleAdversarialReaderHidesTheftAtKEqualsOne) {
  // Baseline: the lone reader forges "everything present" and the theft of
  // 10 tags vanishes. This is the failure mode fusion exists to close.
  const fleet::FleetResult result = run_heist(1, 0);
  EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kIntact);
}

TEST(FusionEndToEnd, MajorityOfHonestReadersDetectsThroughTheAdversary) {
  const fleet::FleetResult result = run_heist(3, 1);
  EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kViolated);
  const fleet::ZoneReport& zone = result.inventories.at(0).zones.at(0);
  EXPECT_EQ(zone.status, fleet::ZoneStatus::kViolated);
  ASSERT_EQ(zone.readers.size(), 3u);
  // The forger voted busy in slots the honest quorum heard silent —
  // physically impossible for an honest radio — and is flagged suspect.
  EXPECT_TRUE(zone.readers[1].suspect);
  EXPECT_FALSE(zone.readers[0].suspect);
  EXPECT_FALSE(zone.readers[2].suspect);
  EXPECT_GT(zone.phantom_votes, 0u);
  EXPECT_EQ(result.readers_suspected, 1u);
}

fleet::FleetResult run_quorum_zone(std::uint64_t rounds,
                                   double crash_reader2_at_us) {
  fleet::FleetOrchestrator orchestrator({.seed = 7,
                                         .threads = 1,
                                         .max_zone_attempts = 1,
                                         .fleet_name = "benched"});
  util::Rng rng(42);
  fleet::InventorySpec spec;
  spec.name = "inv";
  spec.tags = tag::TagSet::make_random(60, rng);
  spec.plan = server::plan_groups(
      {.total_tags = 60, .total_tolerance = 2, .alpha = 0.95,
       .max_group_size = 0});
  spec.rounds = rounds;
  spec.fusion.readers = 3;
  spec.fusion.quorum = 3;  // demand every reader per round
  if (crash_reader2_at_us > 0.0) {
    spec.zone_faults.emplace_back(
        0, fault::parse_multi_reader_fault_plan(
               "reader=2: crash " + std::to_string(crash_reader2_at_us) +
               " never\n"));
  }
  orchestrator.submit(std::move(spec));
  return orchestrator.run();
}

TEST(FusionEndToEnd, ReaderLostMidSessionDegradesRoundsBelowQuorum) {
  // Probe a clean one-round session for its duration, then kill reader 2
  // midway through round 1 of a two-round session: round 0 commits with
  // all three readers, round 1 falls below the 3-of-3 quorum.
  const fleet::FleetResult probe = run_quorum_zone(1, 0.0);
  const double round_us =
      probe.inventories.at(0).zones.at(0).duration_us;
  ASSERT_GT(round_us, 0.0);

  const fleet::FleetResult result = run_quorum_zone(2, round_us * 1.5);
  const fleet::ZoneReport& zone = result.inventories.at(0).zones.at(0);
  EXPECT_EQ(zone.status, fleet::ZoneStatus::kDegraded);
  EXPECT_EQ(zone.rounds_completed, 1u);
  EXPECT_EQ(zone.degraded_rounds, 1u);
  ASSERT_EQ(zone.readers.size(), 3u);
  EXPECT_FALSE(zone.readers.at(2).completed);
  EXPECT_TRUE(zone.readers.at(0).completed);
  // Degradation is never silently voided and never promoted to intact.
  EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kInconclusive);
  EXPECT_EQ(result.degraded_zones, 1u);
}

TEST(FusionEndToEnd, FusedCleanZoneStaysIntact) {
  fleet::FleetOrchestrator orchestrator(
      {.seed = 11, .threads = 4, .fleet_name = "calm"});
  util::Rng rng(77);
  fleet::InventorySpec spec;
  spec.name = "inv";
  spec.tags = tag::TagSet::make_random(100, rng);
  spec.plan = server::plan_groups(
      {.total_tags = 100, .total_tolerance = 4, .alpha = 0.95,
       .max_group_size = 50});
  spec.rounds = 2;
  spec.fusion.readers = 3;
  orchestrator.submit(std::move(spec));
  const fleet::FleetResult result = orchestrator.run();
  EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kIntact);
  for (const fleet::ZoneReport& zone : result.inventories.at(0).zones) {
    EXPECT_EQ(zone.status, fleet::ZoneStatus::kIntact);
    EXPECT_EQ(zone.degraded_rounds, 0u);
    EXPECT_EQ(zone.phantom_votes, 0u);
    for (const fleet::ReaderReport& reader : zone.readers) {
      EXPECT_FALSE(reader.suspect);
      EXPECT_TRUE(reader.completed);
    }
  }
}

}  // namespace
