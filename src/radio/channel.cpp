#include "radio/channel.h"

namespace rfid::radio {

SlotOutcome resolve_slot(std::uint32_t occupancy, const ChannelModel& channel,
                         util::Rng& rng) noexcept {
  std::uint32_t surviving = occupancy;
  if (channel.reply_loss_prob > 0.0) {
    surviving = 0;
    for (std::uint32_t i = 0; i < occupancy; ++i) {
      if (!rng.chance(channel.reply_loss_prob)) ++surviving;
    }
  }
  if (surviving == 0) return SlotOutcome::kEmpty;
  if (surviving == 1) return SlotOutcome::kSingle;
  if (channel.capture_prob > 0.0 && rng.chance(channel.capture_prob)) {
    return SlotOutcome::kSingle;
  }
  return SlotOutcome::kCollision;
}

}  // namespace rfid::radio
