// Cardinality estimation from a TRP-style bitstring (extension module).
//
// The related-work line the paper builds on (Kodialam & Nandagopal, MobiCom
// 2006) estimates how many tags are present from the number of empty slots
// in one ALOHA frame: with n tags in f slots, E[empty fraction] = e^{−n/f},
// so  n̂ = −f · ln(n0 / f)  (the Zero Estimator). A monitoring server can run
// this for free on every TRP bitstring as a coarse cross-check: an estimate
// far below the enrolled size corroborates a "not intact" verdict, and the
// examples use it to triage between "a few tags missing" and "a pallet gone".
#pragma once

#include <cstdint>

#include "bitstring/bitstring.h"

namespace rfid::estimate {

struct CardinalityEstimate {
  double estimate = 0.0;    // n̂
  double std_error = 0.0;   // asymptotic standard error of n̂
  std::uint64_t empty_slots = 0;
  std::uint64_t frame_size = 0;
  bool saturated = false;   // no empty slots: estimate is a lower bound
};

/// Zero-estimator from an observed empty-slot count.
[[nodiscard]] CardinalityEstimate estimate_cardinality(std::uint64_t empty_slots,
                                                       std::uint64_t frame_size);

/// Convenience overload on a monitoring bitstring (0-bits are empty slots).
[[nodiscard]] CardinalityEstimate estimate_cardinality(const bits::Bitstring& bs);

}  // namespace rfid::estimate
