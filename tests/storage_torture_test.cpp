// Crash-point torture test for the durability layer.
//
// The contract under test (durable_server.h): kill the process at ANY storage
// operation — before it, after it, or tearing it mid-write — and the
// recovered server is bit-identical to either the pre-mutation or the
// post-mutation state of the mutation in flight. Never anything in between,
// never a state the workload was not actually in.
//
// Method: a fixed, deterministic workload (enrollments, intact and theft TRP
// rounds, intact/diverged UTRP rounds, a resync, a checkpoint rotation) is
// first recorded fault-free, capturing the dump_state fingerprint S[0..N]
// after every mutation and counting the backend's mutating operations. The
// sweep then re-runs the workload once per (crash op k, before/after effect,
// torn-write fraction), lets the injected crash kill it, drops unflushed
// bytes, recovers, and asserts the fingerprint invariant. A final sweep rots
// single durable bits at rest and asserts recovery still lands on some S[m]
// without ever throwing.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/storage_fault.h"
#include "obs/catalog.h"
#include "obs/metrics.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "storage/backend.h"
#include "storage/durable_server.h"
#include "storage/server_state.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::fault::CrashInjected;
using rfid::fault::FaultyBackend;
using rfid::fault::StorageFaultPlan;
using rfid::server::GroupConfig;
using rfid::server::GroupId;
using rfid::server::ProtocolKind;
using rfid::storage::DurableInventoryServer;
using rfid::storage::MemoryBackend;
using rfid::storage::StorageBackend;
using rfid::tag::TagSet;

constexpr std::uint64_t kSeed = 77;

GroupConfig config(std::string name, ProtocolKind kind) {
  GroupConfig cfg;
  cfg.name = std::move(name);
  cfg.policy = {.tolerated_missing = 2, .confidence = 0.95};
  cfg.protocol = kind;
  return cfg;
}

/// The scripted workload. Fully deterministic given kSeed: every run visits
/// the same mutations with the same challenges and bitstrings, so a crashed
/// run's completed-mutation count indexes into the recorded fingerprints.
/// `observe` runs after each completed mutation (rotation included — it is a
/// storage mutation with an unchanged server state).
template <typename Observe>
void run_workload(DurableInventoryServer& durable, Observe&& observe) {
  rfid::util::Rng rng(kSeed);
  TagSet shelf = TagSet::make_random(60, rng);
  TagSet cage = TagSet::make_random(40, rng);
  const rfid::protocol::TrpReader trp_reader;
  const rfid::protocol::UtrpReader utrp_reader;

  const GroupId g0 = durable.enroll(shelf, config("shelf", ProtocolKind::kTrp));
  observe();
  const GroupId g1 = durable.enroll(cage, config("cage", ProtocolKind::kUtrp));
  observe();

  {  // Intact TRP round.
    const auto c = durable.challenge_trp(g0, rng);
    (void)durable.submit_trp(g0, c, trp_reader.scan(shelf.tags(), c, rng));
    observe();
  }
  {  // Theft: 15 tags gone from the shelf scan -> round failure alert.
    TagSet looted = shelf;
    (void)looted.steal_random(15, rng);
    const auto c = durable.challenge_trp(g0, rng);
    (void)durable.submit_trp(g0, c, trp_reader.scan(looted.tags(), c, rng));
    observe();
  }
  {  // Intact UTRP round; the physical tags advance their counters.
    const auto c = durable.challenge_utrp(g1, rng);
    (void)durable.submit_utrp(g1, c, utrp_reader.scan(cage.tags(), c).bitstring,
                              /*deadline_met=*/true);
    cage.begin_round();
    observe();
  }
  {  // Rogue scan: a looted copy answers, the real tags never hear the
     // seeds -> mismatch alert, mirror flagged diverged.
    TagSet looted = cage;
    (void)looted.steal_random(10, rng);
    const auto c = durable.challenge_utrp(g1, rng);
    (void)durable.submit_utrp(g1, c,
                              utrp_reader.scan(looted.tags(), c).bitstring,
                              /*deadline_met=*/true);
    observe();
  }
  // Physical audit of the real (intact) cage heals the mirror.
  durable.resync(g1, cage);
  observe();

  durable.rotate();  // checkpoint mid-history: snapshot + journal swap
  observe();

  {  // Post-rotation rounds land in the new journal generation.
    const auto c = durable.challenge_utrp(g1, rng);
    (void)durable.submit_utrp(g1, c, utrp_reader.scan(cage.tags(), c).bitstring,
                              /*deadline_met=*/true);
    cage.begin_round();
    observe();
  }
  {
    const auto c = durable.challenge_trp(g0, rng);
    (void)durable.submit_trp(g0, c, trp_reader.scan(shelf.tags(), c, rng));
    observe();
  }
}

struct Recording {
  std::vector<std::string> fingerprints;  // S[0..N], S[0] = empty server
  std::uint64_t total_ops = 0;            // backend mutating ops, ctor included
};

Recording record_reference() {
  Recording rec;
  MemoryBackend inner;
  FaultyBackend counting(inner, StorageFaultPlan{});  // counts, injects nothing
  DurableInventoryServer durable(counting);
  rec.fingerprints.push_back(rfid::storage::dump_state(durable.server()));
  run_workload(durable, [&] {
    rec.fingerprints.push_back(rfid::storage::dump_state(durable.server()));
  });
  rec.total_ops = counting.mutating_ops();
  return rec;
}

TEST(StorageTorture, EveryCrashPointRecoversToAdjacentState) {
  const Recording rec = record_reference();
  const std::uint64_t mutations = rec.fingerprints.size() - 1;
  ASSERT_EQ(mutations, 10u);
  ASSERT_GT(rec.total_ops, mutations);  // several storage ops per mutation

  struct Variant {
    bool before;
    double torn;
  };
  // before-effect (torn moot), after-effect with the record fully durable,
  // and two torn-write severities.
  const Variant variants[] = {
      {true, 1.0}, {false, 1.0}, {false, 0.4}, {false, 0.0}};

  for (std::uint64_t k = 1; k <= rec.total_ops; ++k) {
    for (const Variant& v : variants) {
      StorageFaultPlan plan;
      plan.crash_at_op = k;
      plan.crash_before_effect = v.before;
      plan.torn_keep_fraction = v.torn;

      MemoryBackend inner;
      FaultyBackend faulty(inner, plan);
      std::uint64_t completed = 0;
      bool crashed = false;
      try {
        DurableInventoryServer durable(faulty);
        run_workload(durable, [&] { ++completed; });
      } catch (const CrashInjected&) {
        crashed = true;
      }
      ASSERT_TRUE(crashed) << "op " << k << " never reached";
      inner.crash();  // the power cut eats every unflushed byte

      const DurableInventoryServer recovered(inner);
      const std::string fp = rfid::storage::dump_state(recovered.server());
      const bool pre = fp == rec.fingerprints[completed];
      const bool post = completed < mutations &&
                        fp == rec.fingerprints[completed + 1];
      EXPECT_TRUE(pre || post)
          << "crash at op " << k << (v.before ? " (before" : " (after")
          << ", torn " << v.torn << "): recovered state is neither the pre- "
          << "nor the post-mutation state of mutation " << completed + 1;

      // The recovered alert log must still be totally ordered.
      const auto& alerts = recovered.server().alerts();
      for (std::size_t i = 1; i < alerts.size(); ++i) {
        EXPECT_LT(alerts[i - 1].sequence, alerts[i].sequence);
      }
    }
  }
}

TEST(StorageTorture, BitRotAtRestRecoversToSomeRecordedState) {
  const Recording rec = record_reference();

  // One flipped durable bit per trial, walking offsets across every file the
  // finished workload leaves behind (snapshots, both journal generations).
  for (int trial = 0; trial < 6; ++trial) {
    MemoryBackend inner;
    {
      DurableInventoryServer durable(inner);
      run_workload(durable, [] {});
    }
    for (const std::string& name : inner.list()) {
      const std::uint64_t size = inner.durable_bytes(name).size();
      if (size == 0) continue;
      inner.corrupt_durable(
          name, (size / 7) * static_cast<std::uint64_t>(trial + 1) + 3,
          static_cast<unsigned>(trial % 8));
    }

    std::string fp;
    ASSERT_NO_THROW({
      const DurableInventoryServer recovered(inner);
      fp = rfid::storage::dump_state(recovered.server());
    }) << "trial " << trial << ": recovery threw on rotted storage";
    bool known = false;
    for (const std::string& s : rec.fingerprints) known = known || fp == s;
    EXPECT_TRUE(known) << "trial " << trial
                       << ": recovered state matches no recorded state";
  }
}

TEST(StorageTorture, ObservabilityCountersMatchJournalAndRecoveryReports) {
  namespace cat = rfid::obs::catalog;

  // Reference run with a registry attached: the journal counters must agree
  // with the workload shape — 10 mutations, one of which is the rotation
  // (not a journal record), so 9 appends and 1 rotation.
  MemoryBackend inner;
  {
    rfid::obs::MetricsRegistry reg;
    rfid::storage::DurabilityConfig dcfg;
    dcfg.metrics = &reg;
    DurableInventoryServer durable(inner, dcfg);
    run_workload(durable, [] {});
    EXPECT_EQ(cat::journal_appends_total(reg).value(), 9u);
    EXPECT_EQ(cat::snapshot_rotations_total(reg).value(), 1u);
    EXPECT_GT(cat::journal_bytes_total(reg).value(), 0u);
    EXPECT_EQ(cat::journal_append_failures_total(reg).value(), 0u);
    EXPECT_EQ(cat::recoveries_total(reg, "true").value(), 1u);
  }

  // Now damage the store and reopen with a fresh registry: every recovery
  // counter must equal the corresponding RecoveryReport field, clean or not.
  for (int trial = 0; trial < 4; ++trial) {
    MemoryBackend backend;
    {
      DurableInventoryServer durable(backend);
      run_workload(durable, [] {});
    }
    if (trial > 0) {
      // Rot one durable bit per journal/snapshot file (trial 0 stays clean).
      for (const std::string& name : backend.list()) {
        const std::uint64_t size = backend.durable_bytes(name).size();
        if (size == 0) continue;
        backend.corrupt_durable(name, size / 3 + static_cast<std::uint64_t>(trial),
                                static_cast<unsigned>(trial));
      }
    }

    rfid::obs::MetricsRegistry reg;
    rfid::storage::DurabilityConfig dcfg;
    dcfg.metrics = &reg;
    double now = 0.0;
    dcfg.clock = [&now] { return now += 50.0; };
    const DurableInventoryServer recovered(backend, dcfg);
    const rfid::storage::RecoveryReport& report = recovered.recovery_report();

    EXPECT_EQ(cat::recoveries_total(reg, report.clean() ? "true" : "false")
                  .value(),
              1u)
        << "trial " << trial;
    EXPECT_EQ(cat::recoveries_total(reg, report.clean() ? "false" : "true")
                  .value(),
              0u)
        << "trial " << trial;
    EXPECT_EQ(cat::recovery_records_replayed_total(reg).value(),
              report.records_replayed)
        << "trial " << trial;
    EXPECT_EQ(cat::recovery_truncated_bytes_total(reg).value(),
              report.truncated_bytes)
        << "trial " << trial;
    EXPECT_EQ(cat::recovery_snapshots_skipped_total(reg).value(),
              report.snapshots_skipped)
        << "trial " << trial;
    EXPECT_EQ(cat::recovery_healed_total(reg).value(),
              report.rotated_after_recovery ? 1u : 0u)
        << "trial " << trial;
    EXPECT_EQ(cat::recovery_duration_us(reg).count(), 1u);
    EXPECT_DOUBLE_EQ(cat::recovery_duration_us(reg).sum(), 50.0);
  }
}

TEST(StorageTorture, RepeatedCrashRecoverCyclesConverge) {
  // Crash, recover, crash again mid-recovery's healing rotation, recover
  // again: the store must never regress to an older state than the last
  // recovery exposed.
  const Recording rec = record_reference();
  MemoryBackend inner;
  std::uint64_t completed = 0;
  {
    StorageFaultPlan plan;
    plan.crash_at_op = rec.total_ops / 2;
    plan.torn_keep_fraction = 0.5;
    FaultyBackend faulty(inner, plan);
    try {
      DurableInventoryServer durable(faulty);
      run_workload(durable, [&] { ++completed; });
      FAIL() << "crash never fired";
    } catch (const CrashInjected&) {
    }
    inner.crash();
  }

  std::string exposed;
  {
    const DurableInventoryServer recovered(inner);
    exposed = rfid::storage::dump_state(recovered.server());
    EXPECT_TRUE(exposed == rec.fingerprints[completed] ||
                exposed == rec.fingerprints[completed + 1]);
  }
  // Second crash: the healing rotation of a fresh recovery is itself torn.
  {
    StorageFaultPlan plan;
    plan.crash_at_op = 2;
    plan.torn_keep_fraction = 0.3;
    FaultyBackend faulty(inner, plan);
    try {
      const DurableInventoryServer again(faulty);
      // Recovery may finish without two mutating ops (clean store) — fine.
    } catch (const CrashInjected&) {
      inner.crash();
    }
  }
  const DurableInventoryServer final_server(inner);
  EXPECT_EQ(rfid::storage::dump_state(final_server.server()), exposed);
}

}  // namespace
