#include "protocol/provisioning.h"

#include "util/expect.h"

namespace rfid::protocol {

TrpChallengeBook::TrpChallengeBook(const TrpServer& server, std::size_t count,
                                   util::Rng& rng)
    : server_(server), used_(count, false), remaining_(count) {
  RFID_EXPECT(count >= 1, "an empty challenge book is useless");
  challenges_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    challenges_.push_back(server_.issue_challenge(rng));
  }
}

bool TrpChallengeBook::used(std::size_t index) const {
  RFID_EXPECT(index < used_.size(), "challenge index out of range");
  return used_[index];
}

Verdict TrpChallengeBook::verify_once(std::size_t index,
                                      const bits::Bitstring& reported) {
  RFID_EXPECT(index < challenges_.size(), "challenge index out of range");
  RFID_EXPECT(!used_[index],
              "challenge already consumed: refusing a possible replay");
  used_[index] = true;
  --remaining_;
  return server_.verify(challenges_[index], reported);
}

}  // namespace rfid::protocol
