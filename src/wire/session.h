// A complete message-driven monitoring session over lossy links.
//
// ServerEndpoint and ReaderEndpoint exchange the wire messages of
// messages.h across two Links on one EventQueue, executing `rounds` TRP
// monitoring rounds end to end:
//
//   reader --ChallengeRequest(round)-->  server          (retry on timeout)
//   reader <--TrpChallenge(f, r)-------  server          (idempotent per round)
//   [reader scans the tag field: TimingModel-priced air time]
//   reader --BitstringReport----------->  server          (retry on timeout)
//   reader <--VerdictAck---------------  server
//
// Both request and report are idempotent (keyed by round): the server caches
// the round's challenge and verdict and replays them for duplicates, so
// retransmissions over a dropping link cannot double-issue randomness or
// double-count rounds — the property the paper needs for "a new (f, r) each
// time" to stay well-defined under an unreliable backhaul.
//
// run_trp_session drives the whole exchange and reports per-round verdicts
// plus link statistics; it gives up on a round after `max_retries` timeouts
// (completed == false).
#pragma once

#include <cstdint>
#include <vector>

#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "radio/timing.h"
#include "sim/event_queue.h"
#include "wire/link.h"
#include "wire/messages.h"

namespace rfid::wire {

struct SessionConfig {
  LinkConfig uplink;              // reader -> server
  LinkConfig downlink;            // server -> reader
  double retry_timeout_us = 50000.0;
  std::uint32_t max_retries = 8;  // per message, per round
  radio::TimingModel timing = {};
  std::string group_name = "group";
  /// UTRP only: wall-clock budget from challenge issue to report receipt
  /// (Alg. 5's timer). 0 disables the check. Note that link retransmissions
  /// eat into this budget — an honest reader on a bad link can miss it,
  /// which is precisely the paper's STmax-calibration problem.
  double utrp_deadline_us = 0.0;
};

struct SessionOutcome {
  bool completed = false;              // all rounds finished (acked)
  std::uint64_t rounds_completed = 0;
  std::vector<protocol::Verdict> verdicts;  // one per completed round
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t retransmissions = 0;
  double finished_at_us = 0.0;
};

/// Runs `rounds` TRP rounds between `server` and a reader scanning
/// `present`. `rng` drives link loss/jitter and challenge randomness.
[[nodiscard]] SessionOutcome run_trp_session(sim::EventQueue& queue,
                                             const protocol::TrpServer& server,
                                             std::span<const tag::Tag> present,
                                             std::uint64_t rounds,
                                             const SessionConfig& config,
                                             util::Rng& rng);

/// Runs `rounds` UTRP rounds. The tags mutate (counters advance) exactly as
/// in a physical scan; the server's mirror is committed after each verified
/// round. When config.utrp_deadline_us > 0, a report arriving later than
/// that after its challenge was first issued fails verification (Alg. 5's
/// timer) — including when the delay came from honest retransmissions.
[[nodiscard]] SessionOutcome run_utrp_session(sim::EventQueue& queue,
                                              protocol::UtrpServer& server,
                                              std::span<tag::Tag> present,
                                              std::uint64_t rounds,
                                              const SessionConfig& config,
                                              util::Rng& rng);

}  // namespace rfid::wire
