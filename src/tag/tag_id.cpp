#include "tag/tag_id.h"

#include <cstdio>

namespace rfid::tag {

std::string TagId::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "urn:epc:raw:%08x.%016llx", hi_,
                static_cast<unsigned long long>(lo_));
  return buf;
}

}  // namespace rfid::tag
