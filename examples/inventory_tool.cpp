// inventory_tool — an operator-style CLI over the rfidmon public API.
//
// Subcommands (first positional-ish flag selects the mode):
//   --plan                print Eq. (2)/(3) frame sizes and scan-time
//                         estimates for --n/--m/--alpha/--budget
//   --enroll FILE         create --n random tags, enroll them as one group,
//                         write an enrollment snapshot to FILE
//   --audit FILE          load the snapshot, simulate --steal thefts, run
//                         one monitoring round, print the verdict + triage
//   --campaign FILE       load the snapshot and run --rounds nightly rounds
//                         with a theft halfway through
//
// Demonstrates snapshots (server state surviving process restarts), both
// protocols, and the alert/triage path, all from the command line. Examples:
//   inventory_tool --plan --n 2000 --m 10
//   inventory_tool --enroll /tmp/store.snap --n 800 --m 5 --utrp
//   inventory_tool --audit /tmp/store.snap --steal 6
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "rfidmon.h"
#include "util/cli.h"

namespace {

using namespace rfid;

int do_plan(std::uint64_t n, std::uint64_t m, double alpha, std::uint64_t budget) {
  const radio::TimingModel timing;
  const auto trp = math::optimize_trp_frame(n, m, alpha);
  const auto utrp = math::optimize_utrp_frame(n, m, alpha, budget);
  const auto multi = protocol::optimize_round_count(n, m, alpha);

  util::Table table({"protocol", "frame_slots", "rounds", "est_scan_ms",
                     "predicted_detection"});
  const auto occupied = [&](std::uint32_t f) {
    return static_cast<std::uint64_t>(
        f * (1.0 - std::exp(-static_cast<double>(n) / f)));
  };
  table.begin_row();
  table.add_cell(std::string("TRP (Eq. 2)"));
  table.add_cell(static_cast<long long>(trp.frame_size));
  table.add_cell(1LL);
  table.add_cell(timing.trp_scan_us(trp.frame_size - occupied(trp.frame_size),
                                    occupied(trp.frame_size)) /
                     1000.0,
                 1);
  table.add_cell(trp.predicted_detection, 4);

  table.begin_row();
  table.add_cell(std::string("UTRP (Eq. 3, c=" + std::to_string(budget) + ")"));
  table.add_cell(static_cast<long long>(utrp.frame_size));
  table.add_cell(1LL);
  table.add_cell(timing.utrp_scan_us(utrp.frame_size - occupied(utrp.frame_size),
                                     occupied(utrp.frame_size),
                                     occupied(utrp.frame_size)) /
                     1000.0,
                 1);
  table.add_cell(utrp.predicted_detection, 4);

  table.begin_row();
  table.add_cell(std::string("TRP multi-round"));
  table.add_cell(static_cast<long long>(multi.frame_size));
  table.add_cell(static_cast<long long>(multi.rounds));
  table.add_cell(static_cast<double>(multi.rounds) *
                     timing.trp_scan_us(
                         multi.frame_size - occupied(multi.frame_size),
                         occupied(multi.frame_size)) /
                     1000.0,
                 1);
  table.add_cell(multi.predicted_detection, 4);
  table.print(std::cout);
  return 0;
}

int do_enroll(const std::string& path, std::uint64_t n, std::uint64_t m,
              double alpha, std::uint64_t budget, bool utrp,
              std::uint64_t seed) {
  util::Rng rng(seed);
  server::EnrolledGroup group;
  group.config.name = "cli-group";
  group.config.policy = {.tolerated_missing = m, .confidence = alpha};
  group.config.protocol =
      utrp ? server::ProtocolKind::kUtrp : server::ProtocolKind::kTrp;
  group.config.comm_budget = budget;
  group.tags = tag::TagSet::make_random(n, rng);

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  server::save_snapshot(out, {group});
  std::printf("enrolled %llu tags (%s, m=%llu, alpha=%.3f) -> %s\n",
              static_cast<unsigned long long>(n),
              utrp ? "UTRP" : "TRP", static_cast<unsigned long long>(m), alpha,
              path.c_str());
  return 0;
}

int do_audit(const std::string& path, std::uint64_t steal, std::uint64_t seed) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  const auto groups = server::load_snapshot(in);
  if (groups.empty()) {
    std::fprintf(stderr, "snapshot holds no groups\n");
    return 1;
  }
  auto inventory = server::restore_server(groups);
  util::Rng rng(seed);

  for (std::size_t g = 0; g < groups.size(); ++g) {
    const server::GroupId id{g};
    tag::TagSet live = groups[g].tags;  // the physical tags
    (void)live.steal_random(
        std::min<std::uint64_t>(steal, live.size() > 0 ? live.size() - 1 : 0),
        rng);

    protocol::Verdict verdict;
    if (groups[g].config.protocol == server::ProtocolKind::kTrp) {
      const auto c = inventory.challenge_trp(id, rng);
      const protocol::TrpReader reader;
      verdict = inventory.submit_trp(id, c, reader.scan(live.tags(), c, rng));
    } else {
      const auto c = inventory.challenge_utrp(id, rng);
      const protocol::UtrpReader reader;
      verdict =
          inventory.submit_utrp(id, c, reader.scan(live.tags(), c).bitstring, true);
    }
    std::printf("group '%s' (%s, %llu tags, stole %llu): %s\n",
                groups[g].config.name.c_str(),
                std::string(server::to_string(groups[g].config.protocol)).c_str(),
                static_cast<unsigned long long>(groups[g].tags.size()),
                static_cast<unsigned long long>(steal),
                verdict.intact ? "INTACT" : "ALERT");
  }
  for (const auto& alert : inventory.alerts()) {
    std::printf("  alert: %llu slots mismatched; zero-estimator suggests ~%.0f "
                "of %llu present\n",
                static_cast<unsigned long long>(alert.mismatched_slots),
                alert.estimated_present,
                static_cast<unsigned long long>(alert.enrolled_size));
  }
  return 0;
}

int do_campaign(const std::string& path, std::uint64_t rounds,
                std::uint64_t steal, std::uint64_t seed) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  const auto groups = server::load_snapshot(in);
  if (groups.empty() || groups[0].config.protocol != server::ProtocolKind::kTrp) {
    std::fprintf(stderr, "campaign mode expects a TRP group snapshot\n");
    return 1;
  }
  auto inventory = server::restore_server(groups);
  const server::GroupId id{0};
  tag::TagSet live = groups[0].tags;
  util::Rng rng(seed);
  const protocol::TrpReader reader;

  for (std::uint64_t round = 1; round <= rounds; ++round) {
    if (round == rounds / 2 + 1) {
      (void)live.steal_random(std::min<std::uint64_t>(steal, live.size()), rng);
      std::printf("round %llu: (theft of %llu tags happens tonight)\n",
                  static_cast<unsigned long long>(round),
                  static_cast<unsigned long long>(steal));
    }
    const auto c = inventory.challenge_trp(id, rng);
    const auto verdict =
        inventory.submit_trp(id, c, reader.scan(live.tags(), c, rng));
    std::printf("round %llu: %s\n", static_cast<unsigned long long>(round),
                verdict.intact ? "intact" : "ALERT");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::CliArgs args(
        argc, argv,
        {"plan", "enroll", "audit", "campaign", "n", "m", "alpha", "budget",
         "utrp", "steal", "rounds", "seed"});
    const auto n = static_cast<std::uint64_t>(args.get_int_or("n", 1000));
    const auto m = static_cast<std::uint64_t>(args.get_int_or("m", 10));
    const double alpha = args.get_double_or("alpha", 0.95);
    const auto budget = static_cast<std::uint64_t>(args.get_int_or("budget", 20));
    const auto steal = static_cast<std::uint64_t>(
        args.get_int_or("steal", static_cast<std::int64_t>(m + 1)));
    const auto rounds = static_cast<std::uint64_t>(args.get_int_or("rounds", 6));
    const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 2008));

    if (args.has("plan")) return do_plan(n, m, alpha, budget);
    if (args.has("enroll")) {
      return do_enroll(args.get_or("enroll", ""), n, m, alpha, budget,
                       args.has("utrp"), seed);
    }
    if (args.has("audit")) return do_audit(args.get_or("audit", ""), steal, seed);
    if (args.has("campaign")) {
      return do_campaign(args.get_or("campaign", ""), rounds, steal, seed);
    }
    std::fprintf(stderr,
                 "usage: inventory_tool --plan|--enroll F|--audit F|--campaign F"
                 " [--n N --m M --alpha A --budget C --utrp --steal K"
                 " --rounds R --seed S]\n");
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
