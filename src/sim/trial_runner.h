// Parallel Monte-Carlo trial execution with deterministic seeding.
//
// Every figure in the paper averages 1000 independent trials per data point.
// TrialRunner fans trials out across a thread pool; each trial's RNG stream
// is derived from (master seed, trial index) — never from thread identity or
// scheduling — so results are bit-identical whether run on 1 thread or 64.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/random.h"
#include "util/stats.h"

namespace rfid::sim {

class TrialRunner {
 public:
  /// `threads` = 0 picks the hardware concurrency (at least 1).
  explicit TrialRunner(unsigned threads = 0);

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Runs `trials` invocations of fn(trial_index, rng) and counts successes.
  /// fn must be thread-safe with respect to shared state it captures.
  [[nodiscard]] util::BinomialProportion run_boolean(
      std::uint64_t trials, std::uint64_t master_seed,
      const std::function<bool(std::uint64_t, util::Rng&)>& fn) const;

  /// Runs `trials` invocations of fn(trial_index, rng) and accumulates the
  /// returned values. The aggregation order is by trial index, so the
  /// summary statistics are deterministic too.
  [[nodiscard]] util::RunningStat run_metric(
      std::uint64_t trials, std::uint64_t master_seed,
      const std::function<double(std::uint64_t, util::Rng&)>& fn) const;

 private:
  /// Computes fn for every index in [0, trials) into an output vector.
  template <typename T>
  std::vector<T> map_trials(
      std::uint64_t trials, std::uint64_t master_seed,
      const std::function<T(std::uint64_t, util::Rng&)>& fn) const;

  unsigned threads_;
};

}  // namespace rfid::sim
