// Ablation — multi-round amplification: how many slots does splitting the
// confidence budget across k frames save?
//
// For each (m, alpha) the table reports the single-frame Eq. (2) cost, the
// best round count k*, its per-round frame, the total cost, and the saving.
// Strict policies (m = 0, alpha -> 1) gain multiples; loose ones gain
// nothing (k* = 1). A simulated detection column confirms the amplified
// guarantee still clears alpha.
#include <cstdint>

#include "bench_common.h"
#include "protocol/multi_round.h"
#include "protocol/trp.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const auto opt = bench::parse_figure_options(argc, argv);
  const sim::TrialRunner runner(opt.threads);

  constexpr std::uint64_t kTags = 1000;
  bench::banner("Ablation: multi-round TRP amplification, n = " +
                std::to_string(kTags) + " (" + std::to_string(opt.trials) +
                " trials for the simulated column)");

  util::Table table({"m", "alpha", "single_f", "best_k", "per_round_f",
                     "total_slots", "saving_x", "simulated_detect"});
  for (const std::uint64_t m : {0u, 1u, 5u, 10u, 30u}) {
    for (const double alpha : {0.90, 0.95, 0.99}) {
      const auto single = protocol::plan_multi_round_trp(kTags, m, alpha, 1);
      const auto best = protocol::optimize_round_count(kTags, m, alpha, 16);

      const auto detect = runner.run_boolean(
          opt.trials,
          util::derive_seed(opt.seed, m, static_cast<std::uint64_t>(alpha * 1e4)),
          [&](std::uint64_t, util::Rng& rng) {
            tag::TagSet set = tag::TagSet::make_random(kTags, rng);
            const protocol::MultiRoundTrpServer server(
                set.ids(),
                {.tolerated_missing = m, .confidence = alpha}, best.rounds);
            (void)set.steal_random(m + 1, rng);
            const protocol::TrpReader reader;
            const auto challenges = server.issue_challenges(rng);
            std::vector<bits::Bitstring> reported;
            reported.reserve(challenges.size());
            for (const auto& c : challenges) {
              reported.push_back(reader.scan(set.tags(), c, rng));
            }
            return !server.verify(challenges, reported).intact;
          });

      table.begin_row();
      table.add_cell(static_cast<long long>(m));
      table.add_cell(alpha, 2);
      table.add_cell(static_cast<long long>(single.frame_size));
      table.add_cell(static_cast<long long>(best.rounds));
      table.add_cell(static_cast<long long>(best.frame_size));
      table.add_cell(static_cast<long long>(best.total_slots));
      table.add_cell(static_cast<double>(single.total_slots) /
                         static_cast<double>(best.total_slots),
                     2);
      table.add_cell(detect.proportion(), 4);
    }
  }
  bench::emit(table, opt);
  return 0;
}
