// Tests for the UnTrusted Reader Protocol (Sec. 5): the re-seeding walk,
// counter semantics, server mirroring, and end-to-end rounds.
#include <gtest/gtest.h>

#include <stdexcept>

#include "protocol/utrp.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::protocol::MonitoringPolicy;
using rfid::protocol::UtrpChallenge;
using rfid::protocol::UtrpReader;
using rfid::protocol::utrp_scan;
using rfid::protocol::UtrpServer;
using rfid::tag::TagSet;

MonitoringPolicy policy(std::uint64_t m, double alpha = 0.95) {
  return MonitoringPolicy{.tolerated_missing = m, .confidence = alpha};
}

UtrpChallenge make_challenge(std::uint32_t f, rfid::util::Rng& rng) {
  UtrpChallenge c;
  c.frame_size = f;
  for (std::uint32_t i = 0; i < f; ++i) c.seeds.push_back(rng());
  return c;
}

// ------------------------------------------------------------------ walk --

TEST(UtrpWalk, EveryTagRepliesExactlyOnce) {
  // Unlike TRP, the re-seed mechanism guarantees each tag transmits within
  // the frame (each re-pick lands inside the remaining sub-frame).
  rfid::util::Rng rng(1);
  TagSet set = TagSet::make_random(200, rng);
  const rfid::hash::SlotHasher hasher;
  const auto c = make_challenge(400, rng);
  const auto result = utrp_scan(set.tags(), hasher, c);
  EXPECT_EQ(result.replies, 200u);
  for (const auto& t : set.tags()) EXPECT_TRUE(t.silenced());
}

TEST(UtrpWalk, BitstringOnesAreReplySlots) {
  rfid::util::Rng rng(2);
  TagSet set = TagSet::make_random(100, rng);
  const rfid::hash::SlotHasher hasher;
  const auto c = make_challenge(300, rng);
  const auto result = utrp_scan(set.tags(), hasher, c);
  // Each 1-slot groups >= 1 replies; the counts must be consistent.
  EXPECT_LE(result.bitstring.count(), result.replies);
  EXPECT_GE(result.bitstring.count(), 1u);
  // Re-seeds: one per 1-slot except possibly a final-slot reply.
  EXPECT_GE(result.reseeds + 1, result.bitstring.count());
  EXPECT_EQ(result.seeds_consumed, result.reseeds + 1);
}

TEST(UtrpWalk, DeterministicGivenSameStartState) {
  rfid::util::Rng rng(3);
  const TagSet proto = TagSet::make_random(150, rng);
  const rfid::hash::SlotHasher hasher;
  const auto c = make_challenge(350, rng);
  TagSet a = proto;
  TagSet b = proto;
  const auto ra = utrp_scan(a.tags(), hasher, c);
  const auto rb = utrp_scan(b.tags(), hasher, c);
  EXPECT_EQ(ra.bitstring, rb.bitstring);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).counter(), b.at(i).counter());
  }
}

TEST(UtrpWalk, CountersAdvancePerReceivedSeed) {
  // A tag's counter equals 1 (initial broadcast) plus the number of re-seeds
  // it heard before going silent.
  rfid::util::Rng rng(4);
  TagSet set = TagSet::make_random(50, rng);
  const rfid::hash::SlotHasher hasher;
  const auto c = make_challenge(150, rng);
  const auto result = utrp_scan(set.tags(), hasher, c);
  for (const auto& t : set.tags()) {
    EXPECT_GE(t.counter(), 1u);
    EXPECT_LE(t.counter(), result.reseeds + 1);
  }
  // At least one tag went silent before the last re-seed (or frames would
  // never shrink), so counters are not all equal for non-trivial sets.
  bool counters_differ = false;
  for (const auto& t : set.tags()) {
    if (t.counter() != set.at(0).counter()) counters_differ = true;
  }
  EXPECT_TRUE(counters_differ);
}

TEST(UtrpWalk, RerunningChangesBitstringBecauseCountersMoved) {
  // The anti-rewind property at protocol level: scanning twice with the
  // *same* challenge gives different bitstrings, so a reader cannot probe.
  rfid::util::Rng rng(5);
  TagSet set = TagSet::make_random(120, rng);
  const rfid::hash::SlotHasher hasher;
  const auto c = make_challenge(300, rng);
  const auto first = utrp_scan(set.tags(), hasher, c);
  set.begin_round();
  const auto second = utrp_scan(set.tags(), hasher, c);
  EXPECT_NE(first.bitstring, second.bitstring);
}

TEST(UtrpWalk, SingleTagSingleSlotFrame) {
  rfid::util::Rng rng(6);
  TagSet set = TagSet::make_random(1, rng);
  const rfid::hash::SlotHasher hasher;
  const auto c = make_challenge(1, rng);
  const auto result = utrp_scan(set.tags(), hasher, c);
  EXPECT_EQ(result.bitstring.count(), 1u);
  EXPECT_TRUE(result.bitstring.test(0));
  EXPECT_EQ(result.reseeds, 0u);
}

TEST(UtrpWalk, EmptyTagSpanYieldsAllZeros) {
  rfid::util::Rng rng(7);
  const rfid::hash::SlotHasher hasher;
  const auto c = make_challenge(64, rng);
  const auto result = utrp_scan({}, hasher, c);
  EXPECT_EQ(result.bitstring.count(), 0u);
  EXPECT_EQ(result.replies, 0u);
  EXPECT_EQ(result.reseeds, 0u);
}

TEST(UtrpWalk, RejectsMalformedChallenge) {
  rfid::util::Rng rng(8);
  TagSet set = TagSet::make_random(5, rng);
  const rfid::hash::SlotHasher hasher;
  UtrpChallenge empty_seeds;
  empty_seeds.frame_size = 10;
  EXPECT_THROW((void)utrp_scan(set.tags(), hasher, empty_seeds),
               std::invalid_argument);
  UtrpChallenge zero_frame;
  zero_frame.frame_size = 0;
  zero_frame.seeds = {1};
  EXPECT_THROW((void)utrp_scan(set.tags(), hasher, zero_frame),
               std::invalid_argument);
}

TEST(UtrpWalk, LossyChannelSilencesWithoutReseed) {
  // With total loss the reader observes nothing: zero bitstring, zero
  // re-seeds — but every tag replied once (and went silent).
  rfid::util::Rng rng(9);
  TagSet set = TagSet::make_random(40, rng);
  const rfid::hash::SlotHasher hasher;
  const auto c = make_challenge(100, rng);
  const rfid::radio::ChannelModel dead{.reply_loss_prob = 1.0, .capture_prob = 0.0};
  const auto result = utrp_scan(set.tags(), hasher, c, dead, rng);
  EXPECT_EQ(result.bitstring.count(), 0u);
  EXPECT_EQ(result.reseeds, 0u);
  EXPECT_EQ(result.replies, 40u);
  for (const auto& t : set.tags()) EXPECT_TRUE(t.silenced());
}

// ---------------------------------------------------------------- server --

TEST(UtrpServer, PlanSatisfiesEq3) {
  rfid::util::Rng rng(10);
  const TagSet set = TagSet::make_random(500, rng);
  const UtrpServer server(set, policy(10), 20);
  EXPECT_GT(server.plan().predicted_detection, 0.95);
  EXPECT_EQ(server.frame_size(), server.plan().frame_size);
  EXPECT_EQ(server.comm_budget(), 20u);
}

TEST(UtrpServer, InjectedPlanMatchesComputedPlan) {
  rfid::util::Rng rng(100);
  const TagSet set = TagSet::make_random(300, rng);
  const auto plan = rfid::math::optimize_utrp_frame(300, 5, 0.95, 20);
  const UtrpServer solved(set, policy(5), 20);
  const UtrpServer injected(set, policy(5), 20, plan);
  EXPECT_EQ(solved.frame_size(), injected.frame_size());
  EXPECT_DOUBLE_EQ(solved.plan().predicted_detection,
                   injected.plan().predicted_detection);
  // And the injected server verifies an honest scan like the solved one.
  TagSet live = set;
  const UtrpReader reader;
  const auto c = injected.issue_challenge(rng);
  EXPECT_TRUE(injected.verify(c, reader.scan(live.tags(), c).bitstring).intact);
}

TEST(UtrpServer, InjectedPlanValidated) {
  rfid::util::Rng rng(101);
  const TagSet set = TagSet::make_random(10, rng);
  rfid::math::UtrpPlan empty_plan;
  EXPECT_THROW(UtrpServer(set, policy(1), 20, empty_plan),
               std::invalid_argument);
}

TEST(UtrpServer, ChallengeCarriesFSeeds) {
  rfid::util::Rng rng(11);
  const TagSet set = TagSet::make_random(200, rng);
  const UtrpServer server(set, policy(5), 20);
  const auto c = server.issue_challenge(rng);
  EXPECT_EQ(c.frame_size, server.frame_size());
  EXPECT_EQ(c.seeds.size(), c.frame_size);
}

TEST(UtrpServer, HonestRoundVerifiesAndCommits) {
  rfid::util::Rng rng(12);
  TagSet set = TagSet::make_random(300, rng);
  UtrpServer server(set, policy(5), 20);
  const UtrpReader reader;
  for (int round = 0; round < 5; ++round) {
    const auto c = server.issue_challenge(rng);
    const auto scan = reader.scan(set.tags(), c);
    const auto verdict = server.verify(c, scan.bitstring);
    EXPECT_TRUE(verdict.intact) << "round " << round;
    server.commit_round(c, verdict);
    EXPECT_FALSE(server.needs_resync());
    set.begin_round();
  }
  // After several rounds the mirror still tracks reality: counters match.
}

TEST(UtrpServer, TheftBeyondToleranceDetectedAtConfidence) {
  constexpr int kTrials = 200;
  int detected = 0;
  for (int t = 0; t < kTrials; ++t) {
    rfid::util::Rng rng(rfid::util::derive_seed(13, static_cast<std::uint64_t>(t)));
    TagSet set = TagSet::make_random(200, rng);
    UtrpServer server(set, policy(5, 0.9), 20);
    const UtrpReader reader;
    (void)set.steal_random(6, rng);
    const auto c = server.issue_challenge(rng);
    const auto verdict = server.verify(c, reader.scan(set.tags(), c).bitstring);
    if (!verdict.intact) ++detected;
  }
  // An honest reader over a non-intact set: mechanically the walk diverges
  // at the first stolen-tag slot, so detection is far above alpha.
  EXPECT_GE(static_cast<double>(detected) / kTrials, 0.9);
}

TEST(UtrpServer, DeadlineMissFailsVerification) {
  rfid::util::Rng rng(14);
  TagSet set = TagSet::make_random(100, rng);
  UtrpServer server(set, policy(5), 20);
  const UtrpReader reader;
  const auto c = server.issue_challenge(rng);
  const auto scan = reader.scan(set.tags(), c);
  const auto verdict = server.verify(c, scan.bitstring, /*deadline_met=*/false);
  EXPECT_FALSE(verdict.intact);
  EXPECT_FALSE(verdict.deadline_met);
  EXPECT_EQ(verdict.mismatched_slots, 0u);  // content was fine; timing failed
}

TEST(UtrpServer, FailedRoundMarksResyncNeeded) {
  rfid::util::Rng rng(15);
  TagSet set = TagSet::make_random(200, rng);
  UtrpServer server(set, policy(2), 20);
  const UtrpReader reader;
  (void)set.steal_random(50, rng);
  const auto c = server.issue_challenge(rng);
  const auto verdict = server.verify(c, reader.scan(set.tags(), c).bitstring);
  ASSERT_FALSE(verdict.intact);
  server.commit_round(c, verdict);
  EXPECT_TRUE(server.needs_resync());
}

TEST(UtrpServer, ResyncRestoresOperation) {
  rfid::util::Rng rng(16);
  TagSet set = TagSet::make_random(150, rng);
  UtrpServer server(set, policy(2), 20);
  const UtrpReader reader;

  // Desynchronize: scan the tags without telling the server (a rogue reader
  // incremented counters), then fail a round.
  {
    rfid::util::Rng rogue_rng(99);
    const auto rogue = make_challenge(server.frame_size(), rogue_rng);
    (void)utrp_scan(set.tags(), rfid::hash::SlotHasher{}, rogue);
    set.begin_round();
  }
  const auto c1 = server.issue_challenge(rng);
  const auto v1 = server.verify(c1, reader.scan(set.tags(), c1).bitstring);
  EXPECT_FALSE(v1.intact);  // counters diverged
  server.commit_round(c1, v1);
  EXPECT_TRUE(server.needs_resync());
  set.begin_round();

  // Physical audit re-enrolls the true counter state.
  server.resync(set);
  EXPECT_FALSE(server.needs_resync());
  const auto c2 = server.issue_challenge(rng);
  const auto v2 = server.verify(c2, reader.scan(set.tags(), c2).bitstring);
  EXPECT_TRUE(v2.intact);
}

TEST(UtrpServer, ResyncRequiresMatchingGroup) {
  rfid::util::Rng rng(17);
  const TagSet set = TagSet::make_random(10, rng);
  UtrpServer server(set, policy(1), 20);
  const TagSet other = TagSet::make_random(9, rng);
  EXPECT_THROW(server.resync(other), std::invalid_argument);
}

TEST(UtrpServer, RejectsBadEnrollment) {
  rfid::util::Rng rng(18);
  const TagSet tiny = TagSet::make_random(3, rng);
  EXPECT_THROW(UtrpServer(TagSet{}, policy(0), 20), std::invalid_argument);
  EXPECT_THROW(UtrpServer(tiny, policy(3), 20), std::invalid_argument);
}

TEST(UtrpServer, VerifyRejectsWrongLength) {
  rfid::util::Rng rng(19);
  const TagSet set = TagSet::make_random(50, rng);
  const UtrpServer server(set, policy(2), 20);
  const auto c = server.issue_challenge(rng);
  EXPECT_THROW((void)server.verify(c, rfid::bits::Bitstring(c.frame_size + 5)),
               std::invalid_argument);
}

}  // namespace
