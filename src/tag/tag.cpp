// Tag is header-only (all methods are small and hot); this translation unit
// exists to anchor the library and to static_assert basic layout properties.
#include "tag/tag.h"

namespace rfid::tag {

static_assert(sizeof(Tag) <= 32, "Tag must stay small: simulations hold millions");
static_assert(std::is_trivially_copyable_v<Tag>,
              "Tag must be trivially copyable for cheap set splitting");

}  // namespace rfid::tag
