// Tests for the missing-tag identification extension.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "obs/catalog.h"
#include "protocol/identify.h"
#include "radio/timing.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::protocol::identify_missing_tags;
using rfid::protocol::IdentifyConfig;
using rfid::protocol::IdentifyProtocolKind;
using rfid::protocol::make_identification_protocol;
using rfid::protocol::to_string;
using rfid::tag::TagId;
using rfid::tag::TagSet;

std::set<std::uint64_t> words_of(const std::vector<TagId>& ids) {
  std::set<std::uint64_t> out;
  for (const TagId& id : ids) out.insert(id.slot_word());
  return out;
}

TEST(Identify, ExactlyIdentifiesTheStolenTags) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    rfid::util::Rng rng(rfid::util::derive_seed(50, seed));
    TagSet set = TagSet::make_random(400, rng);
    const auto enrolled = set.ids();
    const TagSet stolen = set.steal_random(25, rng);
    const auto result = identify_missing_tags(enrolled, set.tags(),
                                              rfid::hash::SlotHasher{}, {}, rng);
    EXPECT_TRUE(result.unresolved.empty());
    EXPECT_EQ(result.missing.size(), 25u);
    EXPECT_EQ(result.present.size(), 375u);
    EXPECT_EQ(words_of(result.missing), words_of(stolen.ids()));
  }
}

TEST(Identify, NothingMissingMeansEveryoneProvenPresent) {
  rfid::util::Rng rng(1);
  const TagSet set = TagSet::make_random(200, rng);
  const auto result = identify_missing_tags(set.ids(), set.tags(),
                                            rfid::hash::SlotHasher{}, {}, rng);
  EXPECT_TRUE(result.missing.empty());
  EXPECT_TRUE(result.unresolved.empty());
  EXPECT_EQ(result.present.size(), 200u);
}

TEST(Identify, EverythingMissingResolvedInOneRound) {
  rfid::util::Rng rng(2);
  const TagSet set = TagSet::make_random(100, rng);
  const auto result = identify_missing_tags(set.ids(), {},
                                            rfid::hash::SlotHasher{}, {}, rng);
  EXPECT_EQ(result.missing.size(), 100u);
  EXPECT_TRUE(result.present.empty());
  EXPECT_EQ(result.rounds, 1u);  // every slot observed empty: all proven
}

TEST(Identify, NoFalseAccusationsEver) {
  // Across many randomized campaigns, a physically present tag must never
  // land in `missing` (the verdicts are proofs on an ideal channel).
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    rfid::util::Rng rng(rfid::util::derive_seed(51, seed));
    TagSet set = TagSet::make_random(150, rng);
    const auto enrolled = set.ids();
    (void)set.steal_random(static_cast<std::size_t>(rng.below(40)), rng);
    const auto result = identify_missing_tags(enrolled, set.tags(),
                                              rfid::hash::SlotHasher{}, {}, rng);
    const auto present_words = words_of(set.ids());
    for (const TagId& accused : result.missing) {
      EXPECT_FALSE(present_words.contains(accused.slot_word()))
          << "present tag falsely accused (seed " << seed << ")";
    }
  }
}

TEST(Identify, RoundCountIsLogarithmic) {
  rfid::util::Rng rng(3);
  TagSet set = TagSet::make_random(2000, rng);
  const auto enrolled = set.ids();
  (void)set.steal_random(100, rng);
  const auto result = identify_missing_tags(enrolled, set.tags(),
                                            rfid::hash::SlotHasher{}, {}, rng);
  EXPECT_TRUE(result.unresolved.empty());
  EXPECT_LT(result.rounds, 45u);  // e^{-1}-ish resolution per round
  // Frames stay ~n wide while any tag is unknown: O(n log n) total.
  EXPECT_LT(result.total_slots, 2000u * 50);
}

TEST(Identify, LargerFramesFewerRounds) {
  // Identical population and randomness; only the frame load differs.
  rfid::util::Rng make_rng(4);
  TagSet proto = TagSet::make_random(500, make_rng);
  const auto enrolled = proto.ids();
  (void)proto.steal_random(20, make_rng);

  rfid::util::Rng rng_tight(99);
  rfid::util::Rng rng_roomy(99);
  const auto tight = identify_missing_tags(
      enrolled, proto.tags(), rfid::hash::SlotHasher{}, {.frame_load = 1.0},
      rng_tight);
  const auto roomy = identify_missing_tags(
      enrolled, proto.tags(), rfid::hash::SlotHasher{}, {.frame_load = 4.0},
      rng_roomy);
  EXPECT_LE(roomy.rounds, tight.rounds);
  EXPECT_TRUE(roomy.unresolved.empty());
}

TEST(Identify, RoundCapLeavesUnresolvedNotWrong) {
  rfid::util::Rng rng(5);
  TagSet set = TagSet::make_random(300, rng);
  const auto enrolled = set.ids();
  const TagSet stolen = set.steal_random(10, rng);
  const auto result = identify_missing_tags(
      enrolled, set.tags(), rfid::hash::SlotHasher{},
      {.frame_load = 1.0, .max_rounds = 1}, rng);
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_FALSE(result.unresolved.empty());
  // Whatever WAS classified must still be correct.
  const auto stolen_words = words_of(stolen.ids());
  for (const TagId& id : result.missing) {
    EXPECT_TRUE(stolen_words.contains(id.slot_word()));
  }
  const auto present_words = words_of(set.ids());
  for (const TagId& id : result.present) {
    EXPECT_TRUE(present_words.contains(id.slot_word()));
  }
  // Classified + unresolved covers everyone exactly once.
  EXPECT_EQ(result.missing.size() + result.present.size() +
                result.unresolved.size(),
            enrolled.size());
}

TEST(Identify, LossyChannelNeverFalselyAccusesOrClears) {
  // The header's promise, for BOTH family members: reply loss may delay or
  // withhold verdicts (unresolved), but an accused tag is really absent and
  // a cleared tag is really present — the confirmation streak absorbs loss.
  for (const auto kind : {IdentifyProtocolKind::kIterative,
                          IdentifyProtocolKind::kFilterFirst}) {
    const auto protocol = make_identification_protocol(
        kind, {.frame_load = 1.0,
               .max_rounds = 64,
               .channel = {.reply_loss_prob = 0.2, .capture_prob = 0.1}});
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      rfid::util::Rng rng(rfid::util::derive_seed(60, seed));
      TagSet set = TagSet::make_random(300, rng);
      const auto enrolled = set.ids();
      const TagSet stolen = set.steal_random(5, rng);
      const auto result =
          protocol->identify(enrolled, set.tags(), rfid::hash::SlotHasher{}, rng);
      EXPECT_GT(result.confirmations_required, 1u);
      const auto stolen_words = words_of(stolen.ids());
      const auto present_words = words_of(set.ids());
      for (const TagId& accused : result.missing) {
        EXPECT_TRUE(stolen_words.contains(accused.slot_word()))
            << to_string(kind) << " falsely accused a present tag (seed "
            << seed << ")";
      }
      for (const TagId& cleared : result.present) {
        EXPECT_TRUE(present_words.contains(cleared.slot_word()))
            << to_string(kind) << " falsely cleared a stolen tag (seed "
            << seed << ")";
      }
    }
  }
}

TEST(Identify, FilterFirstStaysConclusiveUnderLoss) {
  // The iterative member mostly returns `unresolved` on a lossy link
  // (present tags keep colliding with the suspects); filter-first silences
  // proven-present tags, so the suspects' slots go quiet and the streak
  // completes inside the round cap.
  const auto protocol = make_identification_protocol(
      IdentifyProtocolKind::kFilterFirst,
      {.frame_load = 1.0,
       .max_rounds = 64,
       .channel = {.reply_loss_prob = 0.2, .capture_prob = 0.0}});
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    rfid::util::Rng rng(rfid::util::derive_seed(61, seed));
    TagSet set = TagSet::make_random(300, rng);
    const auto enrolled = set.ids();
    const TagSet stolen = set.steal_random(5, rng);
    const auto result =
        protocol->identify(enrolled, set.tags(), rfid::hash::SlotHasher{}, rng);
    EXPECT_TRUE(result.unresolved.empty()) << "seed " << seed;
    EXPECT_EQ(words_of(result.missing), words_of(stolen.ids()));
    EXPECT_EQ(result.present.size(), 295u);
  }
}

TEST(Identify, FilterFirstExactlyIdentifiesTheStolenTags) {
  const auto protocol =
      make_identification_protocol(IdentifyProtocolKind::kFilterFirst, {});
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    rfid::util::Rng rng(rfid::util::derive_seed(62, seed));
    TagSet set = TagSet::make_random(400, rng);
    const auto enrolled = set.ids();
    const TagSet stolen = set.steal_random(25, rng);
    const auto result =
        protocol->identify(enrolled, set.tags(), rfid::hash::SlotHasher{}, rng);
    EXPECT_TRUE(result.unresolved.empty());
    EXPECT_EQ(words_of(result.missing), words_of(stolen.ids()));
    EXPECT_EQ(result.present.size(), 375u);
  }
}

TEST(Identify, FilterFirstHandlesDegenerateTheftSizes) {
  const auto protocol =
      make_identification_protocol(IdentifyProtocolKind::kFilterFirst, {});
  rfid::util::Rng rng(63);
  const TagSet intact = TagSet::make_random(200, rng);
  const auto all_there =
      protocol->identify(intact.ids(), intact.tags(), rfid::hash::SlotHasher{}, rng);
  EXPECT_TRUE(all_there.missing.empty());
  EXPECT_TRUE(all_there.unresolved.empty());
  EXPECT_EQ(all_there.present.size(), 200u);

  const auto all_gone =
      protocol->identify(intact.ids(), {}, rfid::hash::SlotHasher{}, rng);
  EXPECT_EQ(all_gone.missing.size(), 200u);
  EXPECT_TRUE(all_gone.present.empty());
  EXPECT_EQ(all_gone.rounds, 1u);  // every slot empty: one frame settles it
}

TEST(Identify, FilterFirstBeatsIterativeOnAirTime) {
  // The point of the refactor: silencing proven-present tags shrinks the
  // frames, so filter-first spends a constant factor of the iterative
  // member's slots — and materially less simulated air time.
  rfid::util::Rng make_rng(64);
  TagSet set = TagSet::make_random(5000, make_rng);
  const auto enrolled = set.ids();
  (void)set.steal_random(10, make_rng);

  const rfid::radio::TimingModel timing;
  rfid::util::Rng rng_a(7);
  rfid::util::Rng rng_b(7);
  const auto iterative =
      make_identification_protocol(IdentifyProtocolKind::kIterative, {})
          ->identify(enrolled, set.tags(), rfid::hash::SlotHasher{}, rng_a);
  const auto filtered =
      make_identification_protocol(IdentifyProtocolKind::kFilterFirst, {})
          ->identify(enrolled, set.tags(), rfid::hash::SlotHasher{}, rng_b);
  EXPECT_TRUE(filtered.unresolved.empty());
  EXPECT_EQ(filtered.missing.size(), 10u);
  EXPECT_LT(filtered.total_slots, iterative.total_slots / 2);
  EXPECT_LT(filtered.elapsed_us(timing), iterative.elapsed_us(timing));
}

TEST(Identify, FilterFirstEstimatesTheftSizeFromFirstFrame) {
  const auto protocol =
      make_identification_protocol(IdentifyProtocolKind::kFilterFirst, {});
  rfid::util::Rng rng(65);
  TagSet set = TagSet::make_random(2000, rng);
  const auto enrolled = set.ids();
  (void)set.steal_random(400, rng);
  const auto result =
      protocol->identify(enrolled, set.tags(), rfid::hash::SlotHasher{}, rng);
  // Zero-estimator on the first frame: coarse, but near the true theft.
  EXPECT_GT(result.estimated_missing, 200.0);
  EXPECT_LT(result.estimated_missing, 600.0);
  EXPECT_EQ(result.missing.size(), 400u);
}

TEST(Identify, RequiredConfirmationsScalesWithLoss) {
  using rfid::protocol::required_confirmations;
  EXPECT_EQ(required_confirmations({}, 1000), 1u);
  const IdentifyConfig mild{.channel = {.reply_loss_prob = 0.05}};
  const IdentifyConfig heavy{.channel = {.reply_loss_prob = 0.5}};
  EXPECT_GT(required_confirmations(mild, 1000), 1u);
  EXPECT_GT(required_confirmations(heavy, 1000),
            required_confirmations(mild, 1000));
  const IdentifyConfig pinned{.channel = {.reply_loss_prob = 0.5},
                              .confirmations = 3};
  EXPECT_EQ(required_confirmations(pinned, 1000), 3u);
}

TEST(Identify, FamilyFactoryNamesAndValidation) {
  using rfid::protocol::IdentificationProtocol;
  EXPECT_EQ(to_string(IdentifyProtocolKind::kIterative), "iterative");
  EXPECT_EQ(to_string(IdentifyProtocolKind::kFilterFirst), "filter_first");
  for (const auto kind : {IdentifyProtocolKind::kIterative,
                          IdentifyProtocolKind::kFilterFirst}) {
    const auto protocol = make_identification_protocol(kind, {});
    EXPECT_EQ(protocol->name(), to_string(kind));
    EXPECT_THROW((void)make_identification_protocol(kind, {.frame_load = 0.0}),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)make_identification_protocol(
            kind, {.channel = {.reply_loss_prob = 1.0}}),
        std::invalid_argument);
    EXPECT_THROW(
        (void)make_identification_protocol(kind, {.accusation_error = 0.0}),
        std::invalid_argument);
  }
}

TEST(Identify, MetricsRecordOneCampaign) {
  rfid::util::Rng rng(66);
  TagSet set = TagSet::make_random(100, rng);
  const auto enrolled = set.ids();
  (void)set.steal_random(4, rng);
  const auto protocol =
      make_identification_protocol(IdentifyProtocolKind::kFilterFirst, {});
  const auto result =
      protocol->identify(enrolled, set.tags(), rfid::hash::SlotHasher{}, rng);

  rfid::obs::MetricsRegistry registry;
  rfid::protocol::record_identify_metrics(registry, protocol->name(), result);
  EXPECT_EQ(rfid::obs::catalog::identify_campaigns_total(registry,
                                                         "filter_first",
                                                         "resolved")
                .value(),
            1u);
  EXPECT_EQ(rfid::obs::catalog::identify_tags_total(registry, "missing").value(),
            4u);
  EXPECT_EQ(rfid::obs::catalog::identify_tags_total(registry, "present").value(),
            96u);
  EXPECT_EQ(
      rfid::obs::catalog::identify_slots_total(registry, "filter_first", "frame")
          .value(),
      result.frame_empty_slots + result.frame_reply_slots);
}

TEST(Identify, RejectsBadConfig) {
  rfid::util::Rng rng(7);
  const TagSet set = TagSet::make_random(5, rng);
  EXPECT_THROW((void)identify_missing_tags({}, set.tags(),
                                           rfid::hash::SlotHasher{}, {}, rng),
               std::invalid_argument);
  EXPECT_THROW((void)identify_missing_tags(set.ids(), set.tags(),
                                           rfid::hash::SlotHasher{},
                                           {.frame_load = 0.0}, rng),
               std::invalid_argument);
  EXPECT_THROW(
      (void)identify_missing_tags(set.ids(), set.tags(), rfid::hash::SlotHasher{},
                                  {.frame_load = 1.0, .max_rounds = 0}, rng),
      std::invalid_argument);
}

}  // namespace
