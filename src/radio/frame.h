// One framed-slotted-ALOHA inventory frame, simulated at slot granularity.
//
// This is the substrate both protocols run on. assign_trp_slots() gives the
// deterministic slot each tag picks for a (f, r) broadcast; simulate_frame()
// additionally pushes every reply through the channel model and reports the
// per-slot observations the reader would make.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitstring/bitstring.h"
#include "hash/slot_hash.h"
#include "radio/channel.h"
#include "radio/slot.h"
#include "tag/tag.h"

namespace rfid::radio {

/// Slot index chosen by each tag (parallel to `tags`) for broadcast (f, r),
/// per Alg. 2:  sn = h(id ⊕ r) mod f.
[[nodiscard]] std::vector<std::uint32_t> assign_trp_slots(
    std::span<const tag::Tag> tags, const hash::SlotHasher& hasher,
    std::uint64_t r, std::uint32_t frame_size);

/// What the reader observed across a whole frame.
struct FrameObservation {
  std::vector<SlotOutcome> outcomes;    // one entry per slot
  bits::Bitstring bitstring;            // 1 where the slot was occupied
  std::uint64_t empty_slots = 0;
  std::uint64_t single_slots = 0;
  std::uint64_t collision_slots = 0;
};

/// Runs one TRP frame: every tag replies (short random bits) in its chosen
/// slot; the channel decides what the reader sees. `rng` is consulted only
/// for channel randomness.
[[nodiscard]] FrameObservation simulate_frame(std::span<const tag::Tag> tags,
                                              const hash::SlotHasher& hasher,
                                              std::uint64_t r,
                                              std::uint32_t frame_size,
                                              const ChannelModel& channel,
                                              util::Rng& rng);

/// True per-slot occupancy (before channel effects) — used by tests and by
/// the collect-all baseline, which needs to know *which* tags collided.
[[nodiscard]] std::vector<std::uint32_t> occupancy_histogram(
    std::span<const std::uint32_t> slot_choices, std::uint32_t frame_size);

}  // namespace rfid::radio
