// Ablation — fault injection: monitoring robustness vs backhaul pathology.
//
// The paper assumes the server <-> reader backhaul is reliable; the wire
// layer's retransmission + idempotent-round machinery is what actually buys
// that assumption. This bench stresses it with the fault subsystem: a
// Gilbert–Elliott burst-loss chain (correlated loss, the kind i.i.d.
// drop_prob cannot model) crossed with payload corruption (caught by the
// framing checksum, indistinguishable from loss to the endpoints). For each
// (burst loss, corruption) cell it reports:
//   * completion_rate — sessions on an INTACT set that finish all rounds,
//   * detection_rate  — sessions on a ROBBED set (theft > m) whose verdicts
//                       flag the theft (loss must not mask missing tags),
//   * mean_retx       — retransmissions per session (the latency price).
#include <cstdint>
#include <string>

#include "bench_common.h"
#include "fault/fault.h"
#include "protocol/trp.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/table.h"
#include "wire/session.h"

namespace {

using namespace rfid;

constexpr std::uint64_t kTags = 200;
constexpr std::uint64_t kTolerance = 5;
constexpr std::uint64_t kStolen = 30;  // well beyond m: must be detected
constexpr std::uint64_t kRounds = 3;

// Mean burst length 1/p_exit = 4 frames; p_enter solves the stationary-loss
// equation L = p_enter / (p_enter + p_exit) for loss_bad = 1, loss_good = 0.
fault::GilbertElliottConfig burst_for_loss(double stationary) {
  constexpr double kExit = 0.25;
  fault::GilbertElliottConfig config;
  config.p_exit_bad = kExit;
  config.p_enter_bad =
      stationary <= 0.0 ? 0.0 : kExit * stationary / (1.0 - stationary);
  return config;
}

wire::SessionOutcome run_one(util::Rng& rng, std::uint64_t plan_seed,
                             double burst_loss, double corrupt_prob,
                             bool steal) {
  tag::TagSet set = tag::TagSet::make_random(kTags, rng);
  const protocol::TrpServer server(
      set.ids(),
      {.tolerated_missing = kTolerance, .confidence = 0.95});
  if (steal) (void)set.steal_random(kStolen, rng);

  fault::FaultPlan plan;
  plan.seed = plan_seed;
  plan.burst = burst_for_loss(burst_loss);
  plan.corrupt_prob = corrupt_prob;

  wire::SessionConfig config;
  config.max_retries = 25;
  config.faults = &plan;
  sim::EventQueue queue;
  return wire::run_trp_session(queue, server, set.tags(), kRounds, config, rng);
}

bool detected(const wire::SessionOutcome& outcome) {
  if (outcome.verdicts.empty()) return false;
  for (const auto& verdict : outcome.verdicts) {
    if (verdict.intact) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_figure_options(argc, argv);
  const sim::TrialRunner runner(opt.threads);

  bench::banner(
      "Ablation: session robustness vs Gilbert-Elliott burst loss x frame "
      "corruption (TRP, n = " + std::to_string(kTags) + ", m = " +
      std::to_string(kTolerance) + ", " + std::to_string(kRounds) +
      " rounds, " + std::to_string(opt.trials) + " trials/cell)");

  util::Table table({"burst_loss", "corrupt_prob", "completion_rate",
                     "detection_rate", "mean_retx"});
  std::uint64_t point = 0;
  for (const double burst_loss : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    for (const double corrupt_prob : {0.0, 0.05, 0.15}) {
      ++point;
      const std::uint64_t seed = util::derive_seed(opt.seed, point);
      const auto completion = runner.run_boolean(
          opt.trials, util::derive_seed(seed, 1),
          [&](std::uint64_t trial, util::Rng& rng) {
            return run_one(rng, util::derive_seed(seed, 1, trial), burst_loss,
                           corrupt_prob, /*steal=*/false)
                .completed;
          });
      const auto detection = runner.run_boolean(
          opt.trials, util::derive_seed(seed, 2),
          [&](std::uint64_t trial, util::Rng& rng) {
            return detected(run_one(rng, util::derive_seed(seed, 2, trial),
                                    burst_loss, corrupt_prob, /*steal=*/true));
          });
      const auto retx = runner.run_metric(
          opt.trials, util::derive_seed(seed, 3),
          [&](std::uint64_t trial, util::Rng& rng) {
            return static_cast<double>(
                run_one(rng, util::derive_seed(seed, 3, trial), burst_loss,
                        corrupt_prob, /*steal=*/false)
                    .retransmissions);
          });
      table.begin_row();
      table.add_cell(burst_loss, 2);
      table.add_cell(corrupt_prob, 2);
      table.add_cell(completion.proportion(), 4);
      table.add_cell(detection.proportion(), 4);
      table.add_cell(retx.mean(), 2);
    }
  }
  bench::emit(table, opt);

  std::cout
      << "Retransmission + idempotent round caches keep completion AND\n"
         "detection near 1.0 well past 20% correlated loss with corruption on\n"
         "top; the cost surfaces as retransmissions (latency), not as missed\n"
         "thefts. Detection only degrades once loss is so heavy that rounds\n"
         "stop completing at all — failures are then named in FailureReason\n"
         "rather than silently dropped.\n";
  return 0;
}
