#include "math/detection.h"

#include <cmath>

#include "math/binomial.h"
#include "util/expect.h"

namespace rfid::math {

std::string_view to_string(EmptySlotModel model) noexcept {
  switch (model) {
    case EmptySlotModel::kPoissonApprox: return "poisson-approx";
    case EmptySlotModel::kExact: return "exact";
  }
  return "unknown";
}

double empty_slot_probability(std::uint64_t n_present, std::uint64_t frame_size,
                              EmptySlotModel model) {
  RFID_EXPECT(frame_size >= 1, "frame size must be positive");
  const double n = static_cast<double>(n_present);
  const double f = static_cast<double>(frame_size);
  switch (model) {
    case EmptySlotModel::kPoissonApprox:
      return std::exp(-n / f);
    case EmptySlotModel::kExact:
      if (frame_size == 1) return n_present == 0 ? 1.0 : 0.0;
      return std::exp(n * std::log1p(-1.0 / f));
  }
  return 0.0;
}

double detection_probability(std::uint64_t n, std::uint64_t x, std::uint64_t f,
                             EmptySlotModel model) {
  RFID_EXPECT(x <= n, "cannot have more missing tags than tags");
  RFID_EXPECT(f >= 1, "frame size must be positive");
  if (x == 0) return 0.0;  // an intact set can never be flagged "not intact"

  const double p = empty_slot_probability(n - x, f, model);
  const double fd = static_cast<double>(f);
  const double xd = static_cast<double>(x);

  // miss = Σ_i Pr(N0 = i) · (1 − i/f)^x, summed over the significant window
  // of N0 ~ Binomial(f, p).
  double miss = 0.0;
  for_each_binomial_outcome(f, p, [&](std::uint64_t i, double pmf) {
    if (i >= f) return;  // (1 − f/f)^x = 0 for x >= 1
    const double frac = static_cast<double>(i) / fd;
    miss += pmf * std::exp(xd * std::log1p(-frac));
  });
  if (miss < 0.0) miss = 0.0;
  if (miss > 1.0) miss = 1.0;
  return 1.0 - miss;
}

double miss_probability(std::uint64_t n, std::uint64_t x, std::uint64_t f,
                        EmptySlotModel model) {
  return 1.0 - detection_probability(n, x, f, model);
}

}  // namespace rfid::math
