// The service frame: the unit of exchange on a client connection.
//
// Grammar (all integers little-endian, mirroring wire/codec.h):
//
//   frame    := type:u8  length:u32  payload:length  checksum:u32
//   checksum := fnv1a32(type || length || payload)
//
// The checksum covers the header too, so a flipped length byte cannot
// resynchronize the stream onto garbage that happens to checksum clean.
// TCP delivers a byte stream, not frames, so FrameReader is incremental: it
// accepts bytes in whatever pieces the kernel hands over (a one-byte-at-a-
// time trickle included) and emits complete frames as they materialize.
//
// Error discipline — the satellite contract tests/service_frame_test.cpp
// enforces: malformed input NEVER crashes or hangs the reader. A declared
// length beyond max_payload is rejected *before* any allocation (a 4 GiB
// length prefix cannot balloon memory), a checksum mismatch poisons the
// reader, and a poisoned reader swallows everything else — the connection
// is already dead, the server just has not flushed the typed error yet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace rfid::service {

/// Wire protocol version spoken by this build (Hello negotiates it).
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Frame types. Client-to-server requests sit below 0x40, server-to-client
/// responses and stream frames above — a side that receives a frame from
/// the wrong half treats it as kUnknownType.
enum class FrameType : std::uint8_t {
  // client -> server
  kHello = 0x01,
  kEnroll = 0x02,
  kStartRun = 0x03,
  kStartWatch = 0x04,
  kSubscribe = 0x05,
  kPing = 0x06,
  kGoodbye = 0x07,
  // server -> client
  kHelloOk = 0x41,
  kEnrollOk = 0x42,
  kRunAdmitted = 0x43,
  kBackpressure = 0x44,
  kRunVerdict = 0x45,
  kRunAlert = 0x46,
  kSubscribeOk = 0x47,
  kTenantAlert = 0x48,
  kWatchDone = 0x49,
  kPong = 0x4a,
  kError = 0x4b,
  kShutdown = 0x4c,
};

[[nodiscard]] std::string_view to_string(FrameType type) noexcept;

/// Typed protocol errors, carried in a kError frame. Codes below 0x10 are
/// framing-level (the connection closes after the error flushes); the rest
/// are request-level (the connection survives).
enum class ErrorCode : std::uint16_t {
  kNone = 0,
  kOversizedFrame = 1,
  kBadChecksum = 2,
  kUnknownType = 3,
  kMalformedPayload = 4,
  kBadVersion = 5,
  // request-level
  kHelloRequired = 0x10,
  kUnknownInventory = 0x11,
  kBadRequest = 0x12,
  kShuttingDown = 0x13,
  kOverloaded = 0x14,
  kInternal = 0x15,  // a run failed server-side; the connection survives
};

[[nodiscard]] std::string_view to_string(ErrorCode code) noexcept;
[[nodiscard]] constexpr bool is_fatal(ErrorCode code) noexcept {
  return code != ErrorCode::kNone &&
         static_cast<std::uint16_t>(code) < 0x10;
}

struct Frame {
  std::uint8_t type = 0;  // raw: dispatch validates against FrameType
  std::vector<std::byte> payload;
};

/// Serializes one frame (header + payload + checksum).
[[nodiscard]] std::vector<std::byte> encode_frame(
    FrameType type, std::span<const std::byte> payload);

/// Incremental frame parser over a TCP byte stream.
class FrameReader {
 public:
  explicit FrameReader(std::uint32_t max_payload) : max_payload_(max_payload) {}

  /// Consumes `data`, appending every completed frame to `out`. Returns
  /// kNone, or the first fatal framing error — after which the reader is
  /// poisoned and all further input is discarded.
  [[nodiscard]] ErrorCode feed(std::span<const std::byte> data,
                               std::vector<Frame>& out);

  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }
  /// Bytes buffered awaiting a complete frame (a truncated tail).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  std::uint32_t max_payload_;
  std::vector<std::byte> buffer_;
  std::size_t consumed_ = 0;  // parsed prefix, compacted lazily
  bool poisoned_ = false;
};

}  // namespace rfid::service
