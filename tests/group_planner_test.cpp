// Tests for the zone/group planner.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "math/frame_optimizer.h"
#include "server/group_planner.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::server::GroupPlan;
using rfid::server::plan_groups;
using rfid::server::PlannerInput;
using rfid::server::split_by_plan;

TEST(GroupPlanner, SingleZoneWhenUnconstrained) {
  const GroupPlan plan = plan_groups(
      {.total_tags = 1000, .total_tolerance = 10, .alpha = 0.95});
  ASSERT_EQ(plan.zones.size(), 1u);
  EXPECT_EQ(plan.zones[0].tags, 1000u);
  EXPECT_EQ(plan.zones[0].tolerance, 10u);
  const auto single = rfid::math::optimize_trp_frame(1000, 10, 0.95);
  EXPECT_EQ(plan.total_slots, single.frame_size);
}

TEST(GroupPlanner, SizesAndTolerancesSumExactly) {
  const GroupPlan plan = plan_groups({.total_tags = 1003,
                                      .total_tolerance = 17,
                                      .alpha = 0.95,
                                      .max_group_size = 250});
  std::uint64_t tags = 0;
  std::uint64_t tolerance = 0;
  for (const auto& zone : plan.zones) {
    tags += zone.tags;
    tolerance += zone.tolerance;
    EXPECT_LE(zone.tags, 250u);
    EXPECT_GE(zone.tags, 1u);
  }
  EXPECT_EQ(tags, 1003u);
  EXPECT_EQ(tolerance, 17u);
  EXPECT_EQ(plan.zones.size(), 5u);  // ceil(1003 / 250)
}

TEST(GroupPlanner, ZoneSizesNearlyEqual) {
  const GroupPlan plan = plan_groups({.total_tags = 1000,
                                      .total_tolerance = 20,
                                      .alpha = 0.95,
                                      .max_group_size = 300});
  std::uint64_t min_size = ~0ull;
  std::uint64_t max_size = 0;
  for (const auto& zone : plan.zones) {
    min_size = std::min(min_size, zone.tags);
    max_size = std::max(max_size, zone.tags);
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(GroupPlanner, EveryZoneMeetsAlpha) {
  const GroupPlan plan = plan_groups({.total_tags = 2000,
                                      .total_tolerance = 30,
                                      .alpha = 0.95,
                                      .max_group_size = 400});
  EXPECT_GT(plan.worst_zone_detection, 0.95);
  for (const auto& zone : plan.zones) {
    EXPECT_GT(zone.detection, 0.95);
    EXPECT_NEAR(zone.detection,
                rfid::math::detection_probability(zone.tags, zone.tolerance + 1,
                                                  zone.frame_size),
                1e-12);
  }
}

TEST(GroupPlanner, ShardingCostsSlots) {
  // The documented shape: more zones => more total slots, monotonically.
  const auto one = plan_groups({.total_tags = 1200, .total_tolerance = 12,
                                .alpha = 0.95});
  const auto three = plan_groups({.total_tags = 1200, .total_tolerance = 12,
                                  .alpha = 0.95, .max_group_size = 400});
  const auto twelve = plan_groups({.total_tags = 1200, .total_tolerance = 12,
                                   .alpha = 0.95, .max_group_size = 100});
  EXPECT_LT(one.total_slots, three.total_slots);
  EXPECT_LT(three.total_slots, twelve.total_slots);
}

TEST(GroupPlanner, ZeroToleranceZonesAllowed) {
  // M smaller than the zone count: some zones run at m = 0.
  const GroupPlan plan = plan_groups({.total_tags = 400,
                                      .total_tolerance = 2,
                                      .alpha = 0.9,
                                      .max_group_size = 100});
  ASSERT_EQ(plan.zones.size(), 4u);
  std::uint64_t zero_zones = 0;
  for (const auto& zone : plan.zones) {
    if (zone.tolerance == 0) ++zero_zones;
  }
  EXPECT_EQ(zero_zones, 2u);
  EXPECT_GT(plan.worst_zone_detection, 0.9);
}

TEST(GroupPlanner, RejectsImpossibleInputs) {
  EXPECT_THROW((void)plan_groups({.total_tags = 0, .total_tolerance = 0}),
               std::invalid_argument);
  EXPECT_THROW((void)plan_groups({.total_tags = 10, .total_tolerance = 10}),
               std::invalid_argument);
  EXPECT_THROW((void)plan_groups({.total_tags = 100,
                                  .total_tolerance = 99,
                                  .alpha = 0.95,
                                  .max_group_size = 50}),
               std::invalid_argument);
  // Boundary case: M + zones == N is feasible (every zone may lose all but
  // one... plus the one: m_i + 1 == n_i exactly).
  EXPECT_NO_THROW((void)plan_groups({.total_tags = 100,
                                     .total_tolerance = 98,
                                     .alpha = 0.95,
                                     .max_group_size = 50}));
  EXPECT_THROW((void)plan_groups({.total_tags = 10,
                                  .total_tolerance = 1,
                                  .alpha = 1.0}),
               std::invalid_argument);
}

TEST(GroupPlanner, PigeonholeGuaranteeHolds) {
  // Any theft pattern exceeding M in total overloads some zone: check the
  // combinatorial core directly for a concrete plan.
  const GroupPlan plan = plan_groups({.total_tags = 600,
                                      .total_tolerance = 9,
                                      .alpha = 0.95,
                                      .max_group_size = 200});
  std::uint64_t total_tolerance = 0;
  for (const auto& zone : plan.zones) total_tolerance += zone.tolerance;
  // Steal M+1 = 10 tags in ANY split across 3 zones: since Σ m_i = 9, some
  // zone must get >= m_i + 1. (Exhaustive check over all compositions.)
  const std::uint64_t theft = total_tolerance + 1;
  for (std::uint64_t a = 0; a <= theft; ++a) {
    for (std::uint64_t b = 0; a + b <= theft; ++b) {
      const std::uint64_t c = theft - a - b;
      const bool overloaded = a > plan.zones[0].tolerance ||
                              b > plan.zones[1].tolerance ||
                              c > plan.zones[2].tolerance;
      EXPECT_TRUE(overloaded) << a << "," << b << "," << c;
    }
  }
}

// Randomized property sweep: for arbitrary feasible (N, M, α, capacity),
// the planner's three invariants must hold — tolerances sum to M exactly
// (the pigeonhole guarantee's precondition), every zone can actually lose
// m_i + 1 tags (so "zone overloaded" is a reachable event), and the worst
// zone still detects its m_i + 1 loss with probability above α.
TEST(GroupPlannerProperty, InvariantsHoldForRandomFeasibleInputs) {
  rfid::util::Rng rng(0xF1EE7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t total = 50 + rng.below(1951);  // N in [50, 2000]
    // Keep M + zone_count <= N feasible for any capacity we pick below.
    const std::uint64_t tolerance = 1 + rng.below(total / 4);
    const double alpha = 0.8 + 0.001 * static_cast<double>(rng.below(196));
    // capacity 0 (single zone) with probability ~1/4, else a real shard.
    std::uint64_t capacity = 0;
    if (rng.below(4) != 0) {
      const std::uint64_t min_cap = total / 20 + 2;
      capacity = min_cap + rng.below(total - min_cap + 1);
    }
    const std::uint64_t zones =
        capacity == 0 ? 1 : (total + capacity - 1) / capacity;
    if (tolerance + zones > total) continue;  // infeasible draw; skip

    const GroupPlan plan = plan_groups({.total_tags = total,
                                        .total_tolerance = tolerance,
                                        .alpha = alpha,
                                        .max_group_size = capacity});
    SCOPED_TRACE("N=" + std::to_string(total) + " M=" +
                 std::to_string(tolerance) + " alpha=" +
                 std::to_string(alpha) + " cap=" + std::to_string(capacity));

    std::uint64_t tag_sum = 0;
    std::uint64_t tolerance_sum = 0;
    for (const auto& zone : plan.zones) {
      tag_sum += zone.tags;
      tolerance_sum += zone.tolerance;
      // Every zone must be able to lose m_i + 1 tags, else the guarantee
      // "some zone exceeds its tolerance" could name an impossible event.
      EXPECT_GE(zone.tags, zone.tolerance + 1);
      if (capacity != 0) {
        EXPECT_LE(zone.tags, capacity);
      }
      EXPECT_GT(zone.detection, alpha);
    }
    EXPECT_EQ(tag_sum, total);
    EXPECT_EQ(tolerance_sum, tolerance);  // Σ m_i == M, exactly
    EXPECT_GT(plan.worst_zone_detection, alpha);
  }
}

TEST(SplitByPlan, SlicesThePopulationInPlanOrder) {
  rfid::util::Rng rng(11);
  const auto tags = rfid::tag::TagSet::make_random(1003, rng);
  const GroupPlan plan = plan_groups({.total_tags = 1003,
                                      .total_tolerance = 17,
                                      .alpha = 0.95,
                                      .max_group_size = 250});
  const auto sets = split_by_plan(tags, plan);
  ASSERT_EQ(sets.size(), plan.zones.size());
  std::size_t cursor = 0;
  for (std::size_t z = 0; z < sets.size(); ++z) {
    ASSERT_EQ(sets[z].size(), plan.zones[z].tags);
    for (std::size_t i = 0; i < sets[z].size(); ++i) {
      EXPECT_EQ(sets[z].tags()[i].id(), tags.tags()[cursor + i].id());
    }
    cursor += sets[z].size();
  }
  EXPECT_EQ(cursor, tags.size());
}

TEST(SplitByPlan, RejectsMismatchedPopulation) {
  rfid::util::Rng rng(12);
  const auto tags = rfid::tag::TagSet::make_random(99, rng);
  const GroupPlan plan = plan_groups({.total_tags = 100,
                                      .total_tolerance = 3,
                                      .alpha = 0.95,
                                      .max_group_size = 40});
  EXPECT_THROW((void)split_by_plan(tags, plan), std::invalid_argument);
}

TEST(SplitColumnarByPlan, SlicesAgreeWithRowSplit) {
  rfid::util::Rng rng(13);
  const auto tags = rfid::tag::TagSet::make_random(1003, rng);
  const GroupPlan plan = plan_groups({.total_tags = 1003,
                                      .total_tolerance = 17,
                                      .alpha = 0.95,
                                      .max_group_size = 250});
  const auto row_sets = split_by_plan(tags, plan);
  const auto col_sets = rfid::server::split_columnar_by_plan(
      rfid::tag::ColumnarTagSet::from_tag_set(tags), plan);
  ASSERT_EQ(col_sets.size(), row_sets.size());
  for (std::size_t z = 0; z < col_sets.size(); ++z) {
    ASSERT_EQ(col_sets[z].size(), row_sets[z].size());
    for (std::size_t i = 0; i < col_sets[z].size(); ++i) {
      EXPECT_EQ(col_sets[z].id(i), row_sets[z].tags()[i].id());
      EXPECT_EQ(col_sets[z].counter(i), row_sets[z].tags()[i].counter());
      EXPECT_EQ(col_sets[z].slot_words()[i],
                row_sets[z].tags()[i].id().slot_word());
    }
  }
}

TEST(SplitColumnarByPlan, RejectsMismatchedPopulation) {
  rfid::util::Rng rng(14);
  const auto tags = rfid::tag::TagSet::make_random(99, rng);
  const GroupPlan plan = plan_groups({.total_tags = 100,
                                      .total_tolerance = 3,
                                      .alpha = 0.95,
                                      .max_group_size = 40});
  EXPECT_THROW((void)rfid::server::split_columnar_by_plan(
                   rfid::tag::ColumnarTagSet::from_tag_set(tags), plan),
               std::invalid_argument);
}

}  // namespace
