#include "fleet/scheduler.h"

#include <limits>
#include <utility>

#include "util/expect.h"

namespace rfid::fleet {

namespace {

/// Which worker the current thread is, if it is one. One scheduler per
/// fleet run means a plain thread-local index is enough; -1 = external.
thread_local std::ptrdiff_t t_worker_index = -1;
thread_local const FleetScheduler* t_worker_owner = nullptr;

}  // namespace

FleetScheduler::FleetScheduler(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

FleetScheduler::~FleetScheduler() { stop(/*drain=*/true); }

void FleetScheduler::stop(bool drain) {
  if (drain) {
    wait_idle();
  } else {
    // Abandon everything still queued. in-flight tasks (taken but not
    // finished) run to completion; a requeue they race in after the sweep
    // is caught by the stopped_ gate in submit().
    stopped_.store(true, std::memory_order_release);
    std::size_t cleared = 0;
    for (auto& worker : workers_) {
      const std::lock_guard<std::mutex> lock(worker->mu);
      cleared += worker->queue.size();
      while (!worker->queue.empty()) worker->queue.pop();
    }
    if (cleared > 0) {
      abandoned_.fetch_add(cleared, std::memory_order_relaxed);
      pending_.fetch_sub(cleared, std::memory_order_relaxed);
      if (outstanding_.fetch_sub(cleared, std::memory_order_acq_rel) ==
          cleared) {
        const std::lock_guard<std::mutex> lock(wake_mu_);
        idle_cv_.notify_all();
      }
    }
    wait_idle();  // in-flight stragglers only; bounded by task length
  }
  {
    const std::lock_guard<std::mutex> lock(wake_mu_);
    if (joined_) return;
    joined_ = true;
    shutdown_ = true;
    stopped_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void FleetScheduler::submit(double deadline_us, Task fn) {
  RFID_EXPECT(fn != nullptr, "null fleet task");
  if (stopped_.load(std::memory_order_acquire)) {
    abandoned_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t seq =
      next_sequence_.fetch_add(1, std::memory_order_relaxed);
  // A requeue from inside a task stays on the submitting worker; external
  // submissions round-robin by sequence.
  std::size_t target;
  if (t_worker_owner == this && t_worker_index >= 0) {
    target = static_cast<std::size_t>(t_worker_index);
  } else {
    target = static_cast<std::size_t>(seq % workers_.size());
  }
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->queue.push(Entry{deadline_us, seq, std::move(fn)});
  }
  {
    // The increment must happen under wake_mu_: a worker that read
    // pending_==0 in its wait predicate is either still holding the lock
    // (we block until it sleeps) or already in the wait set (the notify
    // reaches it). An unlocked increment could slip into that gap and the
    // notify would wake nobody — with no later submit, the task strands
    // and wait_idle() deadlocks.
    const std::lock_guard<std::mutex> wake_lock(wake_mu_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_all();
}

bool FleetScheduler::try_take(std::size_t self, Entry& out) {
  // Own queue first.
  {
    Worker& mine = *workers_[self];
    const std::lock_guard<std::mutex> lock(mine.mu);
    if (!mine.queue.empty()) {
      out = mine.queue.top();
      mine.queue.pop();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal: peek every other queue and take the earliest deadline on offer.
  // Two passes (scan, then re-lock the victim) keep lock holds tiny; the
  // victim's top may have changed in between, which is fine — we take
  // whatever is best there now.
  std::size_t victim = workers_.size();
  double best = std::numeric_limits<double>::infinity();
  std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t j = 0; j < workers_.size(); ++j) {
    if (j == self) continue;
    const std::lock_guard<std::mutex> lock(workers_[j]->mu);
    if (workers_[j]->queue.empty()) continue;
    const Entry& top = workers_[j]->queue.top();
    if (top.deadline_us < best ||
        (top.deadline_us == best && top.sequence < best_seq)) {
      best = top.deadline_us;
      best_seq = top.sequence;
      victim = j;
    }
  }
  if (victim == workers_.size()) return false;
  const std::lock_guard<std::mutex> lock(workers_[victim]->mu);
  if (workers_[victim]->queue.empty()) return false;
  out = workers_[victim]->queue.top();
  workers_[victim]->queue.pop();
  pending_.fetch_sub(1, std::memory_order_relaxed);
  stolen_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FleetScheduler::worker_loop(std::size_t self) {
  t_worker_index = static_cast<std::ptrdiff_t>(self);
  t_worker_owner = this;
  while (true) {
    Entry entry;
    if (try_take(self, entry)) {
      entry.fn();
      executed_.fetch_add(1, std::memory_order_relaxed);
      if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task done: wake wait_idle under the lock so the notify
        // cannot race past a waiter between its predicate check and sleep.
        const std::lock_guard<std::mutex> lock(wake_mu_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] {
      return shutdown_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (shutdown_ && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

void FleetScheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  idle_cv_.wait(lock, [this] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

bool FleetScheduler::wait_idle_for(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(wake_mu_);
  return idle_cv_.wait_for(lock, timeout, [this] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace rfid::fleet
