// Tests for the missing-tag identification extension.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "protocol/identify.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::protocol::identify_missing_tags;
using rfid::protocol::IdentifyConfig;
using rfid::tag::TagId;
using rfid::tag::TagSet;

std::set<std::uint64_t> words_of(const std::vector<TagId>& ids) {
  std::set<std::uint64_t> out;
  for (const TagId& id : ids) out.insert(id.slot_word());
  return out;
}

TEST(Identify, ExactlyIdentifiesTheStolenTags) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    rfid::util::Rng rng(rfid::util::derive_seed(50, seed));
    TagSet set = TagSet::make_random(400, rng);
    const auto enrolled = set.ids();
    const TagSet stolen = set.steal_random(25, rng);
    const auto result = identify_missing_tags(enrolled, set.tags(),
                                              rfid::hash::SlotHasher{}, {}, rng);
    EXPECT_TRUE(result.unresolved.empty());
    EXPECT_EQ(result.missing.size(), 25u);
    EXPECT_EQ(result.present.size(), 375u);
    EXPECT_EQ(words_of(result.missing), words_of(stolen.ids()));
  }
}

TEST(Identify, NothingMissingMeansEveryoneProvenPresent) {
  rfid::util::Rng rng(1);
  const TagSet set = TagSet::make_random(200, rng);
  const auto result = identify_missing_tags(set.ids(), set.tags(),
                                            rfid::hash::SlotHasher{}, {}, rng);
  EXPECT_TRUE(result.missing.empty());
  EXPECT_TRUE(result.unresolved.empty());
  EXPECT_EQ(result.present.size(), 200u);
}

TEST(Identify, EverythingMissingResolvedInOneRound) {
  rfid::util::Rng rng(2);
  const TagSet set = TagSet::make_random(100, rng);
  const auto result = identify_missing_tags(set.ids(), {},
                                            rfid::hash::SlotHasher{}, {}, rng);
  EXPECT_EQ(result.missing.size(), 100u);
  EXPECT_TRUE(result.present.empty());
  EXPECT_EQ(result.rounds, 1u);  // every slot observed empty: all proven
}

TEST(Identify, NoFalseAccusationsEver) {
  // Across many randomized campaigns, a physically present tag must never
  // land in `missing` (the verdicts are proofs on an ideal channel).
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    rfid::util::Rng rng(rfid::util::derive_seed(51, seed));
    TagSet set = TagSet::make_random(150, rng);
    const auto enrolled = set.ids();
    (void)set.steal_random(static_cast<std::size_t>(rng.below(40)), rng);
    const auto result = identify_missing_tags(enrolled, set.tags(),
                                              rfid::hash::SlotHasher{}, {}, rng);
    const auto present_words = words_of(set.ids());
    for (const TagId& accused : result.missing) {
      EXPECT_FALSE(present_words.contains(accused.slot_word()))
          << "present tag falsely accused (seed " << seed << ")";
    }
  }
}

TEST(Identify, RoundCountIsLogarithmic) {
  rfid::util::Rng rng(3);
  TagSet set = TagSet::make_random(2000, rng);
  const auto enrolled = set.ids();
  (void)set.steal_random(100, rng);
  const auto result = identify_missing_tags(enrolled, set.tags(),
                                            rfid::hash::SlotHasher{}, {}, rng);
  EXPECT_TRUE(result.unresolved.empty());
  EXPECT_LT(result.rounds, 45u);  // e^{-1}-ish resolution per round
  // Frames stay ~n wide while any tag is unknown: O(n log n) total.
  EXPECT_LT(result.total_slots, 2000u * 50);
}

TEST(Identify, LargerFramesFewerRounds) {
  // Identical population and randomness; only the frame load differs.
  rfid::util::Rng make_rng(4);
  TagSet proto = TagSet::make_random(500, make_rng);
  const auto enrolled = proto.ids();
  (void)proto.steal_random(20, make_rng);

  rfid::util::Rng rng_tight(99);
  rfid::util::Rng rng_roomy(99);
  const auto tight = identify_missing_tags(
      enrolled, proto.tags(), rfid::hash::SlotHasher{}, {.frame_load = 1.0},
      rng_tight);
  const auto roomy = identify_missing_tags(
      enrolled, proto.tags(), rfid::hash::SlotHasher{}, {.frame_load = 4.0},
      rng_roomy);
  EXPECT_LE(roomy.rounds, tight.rounds);
  EXPECT_TRUE(roomy.unresolved.empty());
}

TEST(Identify, RoundCapLeavesUnresolvedNotWrong) {
  rfid::util::Rng rng(5);
  TagSet set = TagSet::make_random(300, rng);
  const auto enrolled = set.ids();
  const TagSet stolen = set.steal_random(10, rng);
  const auto result = identify_missing_tags(
      enrolled, set.tags(), rfid::hash::SlotHasher{},
      {.frame_load = 1.0, .max_rounds = 1}, rng);
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_FALSE(result.unresolved.empty());
  // Whatever WAS classified must still be correct.
  const auto stolen_words = words_of(stolen.ids());
  for (const TagId& id : result.missing) {
    EXPECT_TRUE(stolen_words.contains(id.slot_word()));
  }
  const auto present_words = words_of(set.ids());
  for (const TagId& id : result.present) {
    EXPECT_TRUE(present_words.contains(id.slot_word()));
  }
  // Classified + unresolved covers everyone exactly once.
  EXPECT_EQ(result.missing.size() + result.present.size() +
                result.unresolved.size(),
            enrolled.size());
}

TEST(Identify, LossyChannelCausesFalseAccusations) {
  // The documented caveat: a lost reply looks like absence. Expect at least
  // one present tag accused under heavy loss.
  rfid::util::Rng rng(6);
  TagSet set = TagSet::make_random(300, rng);
  const auto enrolled = set.ids();
  (void)set.steal_random(5, rng);
  const auto result = identify_missing_tags(
      enrolled, set.tags(), rfid::hash::SlotHasher{},
      {.frame_load = 1.0,
       .max_rounds = 64,
       .channel = {.reply_loss_prob = 0.2, .capture_prob = 0.0}},
      rng);
  EXPECT_GT(result.missing.size(), 5u);
}

TEST(Identify, RejectsBadConfig) {
  rfid::util::Rng rng(7);
  const TagSet set = TagSet::make_random(5, rng);
  EXPECT_THROW((void)identify_missing_tags({}, set.tags(),
                                           rfid::hash::SlotHasher{}, {}, rng),
               std::invalid_argument);
  EXPECT_THROW((void)identify_missing_tags(set.ids(), set.tags(),
                                           rfid::hash::SlotHasher{},
                                           {.frame_load = 0.0}, rng),
               std::invalid_argument);
  EXPECT_THROW(
      (void)identify_missing_tags(set.ids(), set.tags(), rfid::hash::SlotHasher{},
                                  {.frame_load = 1.0, .max_rounds = 0}, rng),
      std::invalid_argument);
}

}  // namespace
