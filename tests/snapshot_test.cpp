// Tests for enrollment snapshot persistence.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "protocol/utrp.h"
#include "server/snapshot.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::server::EnrolledGroup;
using rfid::server::GroupConfig;
using rfid::server::load_snapshot;
using rfid::server::ProtocolKind;
using rfid::server::restore_server;
using rfid::server::save_snapshot;
using rfid::tag::TagSet;

std::vector<EnrolledGroup> sample_groups(rfid::util::Rng& rng) {
  std::vector<EnrolledGroup> groups;
  {
    EnrolledGroup g;
    g.config = GroupConfig{.name = "front shelf A",
                           .policy = {.tolerated_missing = 5, .confidence = 0.95},
                           .protocol = ProtocolKind::kTrp};
    g.tags = TagSet::make_random(40, rng);
    groups.push_back(std::move(g));
  }
  {
    EnrolledGroup g;
    g.config = GroupConfig{.name = "cage (night shift)",
                           .policy = {.tolerated_missing = 2, .confidence = 0.99},
                           .protocol = ProtocolKind::kUtrp,
                           .comm_budget = 35,
                           .slack_slots = 10};
    g.tags = TagSet::make_random(25, rng);
    // Give the tags non-trivial counters, as after some UTRP rounds.
    for (auto& t : g.tags.tags()) {
      for (std::uint64_t i = 0; i < 1 + (t.id().lo() % 5); ++i) {
        (void)t.utrp_receive_seed(rfid::hash::SlotHasher{}, 1, 8);
      }
      t.begin_round();
    }
    groups.push_back(std::move(g));
  }
  return groups;
}

TEST(Snapshot, RoundTripPreservesEverything) {
  rfid::util::Rng rng(1);
  const auto groups = sample_groups(rng);
  std::stringstream stream;
  save_snapshot(stream, groups);
  const auto loaded = load_snapshot(stream);

  ASSERT_EQ(loaded.size(), groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    EXPECT_EQ(loaded[g].config.name, groups[g].config.name);
    EXPECT_EQ(loaded[g].config.protocol, groups[g].config.protocol);
    EXPECT_EQ(loaded[g].config.policy.tolerated_missing,
              groups[g].config.policy.tolerated_missing);
    EXPECT_DOUBLE_EQ(loaded[g].config.policy.confidence,
                     groups[g].config.policy.confidence);
    EXPECT_EQ(loaded[g].config.comm_budget, groups[g].config.comm_budget);
    EXPECT_EQ(loaded[g].config.slack_slots, groups[g].config.slack_slots);
    ASSERT_EQ(loaded[g].tags.size(), groups[g].tags.size());
    for (std::size_t i = 0; i < groups[g].tags.size(); ++i) {
      EXPECT_EQ(loaded[g].tags.at(i).id(), groups[g].tags.at(i).id());
      EXPECT_EQ(loaded[g].tags.at(i).counter(), groups[g].tags.at(i).counter());
    }
  }
}

TEST(Snapshot, EmptyGroupListRoundTrips) {
  std::stringstream stream;
  save_snapshot(stream, {});
  EXPECT_TRUE(load_snapshot(stream).empty());
}

TEST(Snapshot, ChecksumCatchesCorruption) {
  rfid::util::Rng rng(2);
  std::stringstream stream;
  save_snapshot(stream, sample_groups(rng));
  std::string text = stream.str();
  // Flip one hex digit inside a TAG line.
  const auto pos = text.find("TAG ");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 4] = text[pos + 4] == '0' ? '1' : '0';
  std::istringstream corrupted(text);
  EXPECT_THROW((void)load_snapshot(corrupted), std::invalid_argument);
}

TEST(Snapshot, TruncationDetected) {
  rfid::util::Rng rng(3);
  std::stringstream stream;
  save_snapshot(stream, sample_groups(rng));
  std::string text = stream.str();
  text.resize(text.size() / 2);
  std::istringstream truncated(text);
  EXPECT_THROW((void)load_snapshot(truncated), std::invalid_argument);
}

TEST(Snapshot, RejectsWrongMagic) {
  std::istringstream bogus("SOMETHING ELSE\n");
  EXPECT_THROW((void)load_snapshot(bogus), std::invalid_argument);
  std::istringstream empty("");
  EXPECT_THROW((void)load_snapshot(empty), std::invalid_argument);
}

TEST(Snapshot, RejectsMultilineGroupName) {
  EnrolledGroup g;
  g.config.name = "evil\nname";
  rfid::util::Rng rng(4);
  g.tags = TagSet::make_random(1, rng);
  std::stringstream stream;
  EXPECT_THROW(save_snapshot(stream, {g}), std::invalid_argument);
}

TEST(Snapshot, RestoredUtrpServerVerifiesAgainstLiveTags) {
  // The operational point of persistence: a UTRP server rebuilt from a
  // snapshot (counters included!) must verify the real tags' next round.
  rfid::util::Rng rng(5);
  TagSet live = TagSet::make_random(120, rng);

  // Run some rounds against an initial server so the counters move.
  rfid::protocol::UtrpServer original(
      live, {.tolerated_missing = 3, .confidence = 0.95}, 20);
  const rfid::protocol::UtrpReader reader;
  for (int round = 0; round < 3; ++round) {
    const auto c = original.issue_challenge(rng);
    const auto scan = reader.scan(live.tags(), c);
    const auto verdict = original.verify(c, scan.bitstring);
    ASSERT_TRUE(verdict.intact);
    original.commit_round(c, verdict);
    live.begin_round();
  }

  // Snapshot the CURRENT state (a physical audit) and restore elsewhere.
  EnrolledGroup g;
  g.config = GroupConfig{.name = "restored",
                         .policy = {.tolerated_missing = 3, .confidence = 0.95},
                         .protocol = ProtocolKind::kUtrp,
                         .comm_budget = 20};
  g.tags = live;  // snapshot includes counters
  std::stringstream stream;
  save_snapshot(stream, {g});
  auto server = restore_server(load_snapshot(stream));

  const auto id = rfid::server::GroupId{0};
  const auto c = server.challenge_utrp(id, rng);
  const auto scan = reader.scan(live.tags(), c);
  EXPECT_TRUE(server.submit_utrp(id, c, scan.bitstring, true).intact);
}

TEST(Snapshot, RestoreServerPreservesGroupOrderAndSizes) {
  rfid::util::Rng rng(6);
  const auto groups = sample_groups(rng);
  const auto server = restore_server(groups);
  EXPECT_EQ(server.group_count(), 2u);
  EXPECT_EQ(server.group_size(rfid::server::GroupId{0}), 40u);
  EXPECT_EQ(server.group_size(rfid::server::GroupId{1}), 25u);
  EXPECT_EQ(server.config(rfid::server::GroupId{1}).comm_budget, 35u);
}

}  // namespace
