// Slot-level vocabulary of the framed slotted ALOHA link.
#pragma once

#include <cstdint>
#include <string_view>

namespace rfid::radio {

/// What the reader observes in one time slot.
enum class SlotOutcome : std::uint8_t {
  kEmpty,      // no tag replied (or every reply was lost in the channel)
  kSingle,     // exactly one reply decoded
  kCollision,  // multiple replies overlapped and none decoded
};

[[nodiscard]] constexpr std::string_view to_string(SlotOutcome outcome) noexcept {
  switch (outcome) {
    case SlotOutcome::kEmpty: return "empty";
    case SlotOutcome::kSingle: return "single";
    case SlotOutcome::kCollision: return "collision";
  }
  return "unknown";
}

/// For the monitoring protocols only slot *occupancy* matters: TRP/UTRP
/// record a 1 for both kSingle and kCollision (Sec. 4.1 — any reply, even a
/// collision of random bits, marks the slot as chosen).
[[nodiscard]] constexpr bool occupied(SlotOutcome outcome) noexcept {
  return outcome != SlotOutcome::kEmpty;
}

}  // namespace rfid::radio
