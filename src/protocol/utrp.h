// UTRP — the UnTrusted Reader Protocol (Sec. 5 of the paper).
//
// TRP's bitstring can be forged by a dishonest reader that split the tag set
// with a collaborator: each scans its half and ORs the results (Alg. 4).
// UTRP adds two mechanisms that force collaborating readers to exchange a
// message after (potentially) every slot:
//
//  * Re-seeding (Alg. 6): the server issues (f, r_1 … r_f) up front; after
//    every slot that contains a reply the reader must re-broadcast the next
//    random number with the shrunken frame f' = f − sn, and all tags that
//    have not yet replied pick a new slot. No reader can predict where the
//    next reply lands, so split readers must check with each other at every
//    empty slot.
//  * Tag counters (Alg. 7): every (f, r) reception increments a monotone
//    on-tag counter ct that feeds the slot hash h(id ⊕ r ⊕ ct) mod f, so a
//    reader cannot rewind and replay the frame to learn reply positions.
//
// The walk over one frame is implemented once (utrp_scan) and used by the
// honest reader on real tags and by the server on its mirrored database —
// the server tracks each tag's counter, which only advances when queried.
//
// Counter synchronization: after a verified-intact round the real walk was
// identical to the expected walk, so commit_round() advances the server's
// mirror by replaying it. After an alert, mirror and reality may have
// diverged; re-synchronization (e.g. re-enrollment) is out of the paper's
// scope and is surfaced by needs_resync().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitstring/bitstring.h"
#include "hash/slot_hash.h"
#include "math/frame_optimizer.h"
#include "obs/metrics.h"
#include "protocol/messages.h"
#include "protocol/trp.h"
#include "radio/channel.h"
#include "tag/columnar.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace rfid::protocol {

/// Outcome of one UTRP frame walk.
struct UtrpScanResult {
  bits::Bitstring bitstring;
  std::uint64_t reseeds = 0;          // re-seed broadcasts sent (Alg. 6 line 7)
  std::uint64_t seeds_consumed = 0;   // initial broadcast + re-seeds
  std::uint64_t replies = 0;          // tags that transmitted (and went silent)
  std::uint64_t slots_hashed = 0;     // (counter++, hash) receptions executed
};

/// Executes Algs. 6 + 7 jointly over `tags`, mutating their counters and
/// silenced flags exactly as a real scan would. The ideal-channel overload is
/// fully deterministic; the channel overload consults `rng` for loss/capture
/// (an unobserved reply silences the tag but triggers no re-seed — the
/// divergence a lossy channel inflicts on UTRP is measured in the benches).
[[nodiscard]] UtrpScanResult utrp_scan(std::span<tag::Tag> tags,
                                       const hash::SlotHasher& hasher,
                                       const UtrpChallenge& challenge);
[[nodiscard]] UtrpScanResult utrp_scan(std::span<tag::Tag> tags,
                                       const hash::SlotHasher& hasher,
                                       const UtrpChallenge& challenge,
                                       const radio::ChannelModel& channel,
                                       util::Rng& rng);

/// The columnar twin of the ideal-channel utrp_scan: identical algorithm,
/// identical results (bitstring, reseeds, seeds, replies, and the tags'
/// counters/silenced flags), but the per-reseed reception runs as one bulk
/// kernel pass (tag::bulk_utrp_receive_seed) over contiguous columns instead
/// of per-tag calls. Only the ideal channel is offered — this is the
/// server-side mirror walk; physical reader scans keep the scalar path.
[[nodiscard]] UtrpScanResult utrp_scan_columnar(tag::ColumnarTagSet& tags,
                                                const hash::SlotHasher& hasher,
                                                const UtrpChallenge& challenge);

class UtrpServer {
 public:
  /// Enrolls the group: snapshots IDs *and* counters, and solves Eq. (3)
  /// once for the group's (n, m, α) against an adversary with communication
  /// budget `comm_budget`. `slack_slots` reproduces the paper's 5–10 extra
  /// slots over the Eq. (3) optimum.
  UtrpServer(const tag::TagSet& enrolled, MonitoringPolicy policy,
             std::uint64_t comm_budget, std::uint32_t slack_slots = 8,
             hash::SlotHasher hasher = hash::SlotHasher{});

  /// Enrolls with a pre-solved Eq. (3) plan. The plan only depends on
  /// (n, m, alpha, c, slack, model), so Monte-Carlo harnesses that rebuild
  /// servers for thousands of same-shaped populations should solve once and
  /// inject — the optimizer costs tens of milliseconds per solve.
  UtrpServer(const tag::TagSet& enrolled, MonitoringPolicy policy,
             std::uint64_t comm_budget, const math::UtrpPlan& plan,
             hash::SlotHasher hasher = hash::SlotHasher{});

  [[nodiscard]] std::uint64_t group_size() const noexcept { return mirror_.size(); }
  [[nodiscard]] const MonitoringPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] std::uint64_t comm_budget() const noexcept { return comm_budget_; }
  [[nodiscard]] std::uint32_t frame_size() const noexcept { return plan_.frame_size; }
  [[nodiscard]] const math::UtrpPlan& plan() const noexcept { return plan_; }

  /// Fresh challenge: frame size from Eq. (3) plus f random seeds (Alg. 5).
  [[nodiscard]] UtrpChallenge issue_challenge(util::Rng& rng) const;

  /// The bitstring an honest reader scanning the intact set would return,
  /// derived from the mirrored database (counters included). Does not
  /// advance the mirror.
  [[nodiscard]] bits::Bitstring expected_bitstring(const UtrpChallenge& challenge) const;

  /// Compares a returned bitstring against the expectation. `deadline_met`
  /// feeds the timer check of Alg. 5 (a late answer fails verification
  /// regardless of content).
  [[nodiscard]] Verdict verify(const UtrpChallenge& challenge,
                               const bits::Bitstring& reported,
                               bool deadline_met = true) const;

  /// Advances the mirror counters by replaying the expected walk. Call after
  /// a round whose verdict was intact (the real tags then made exactly the
  /// same transitions). Calling it after a failed round marks the server as
  /// needing re-synchronization.
  void commit_round(const UtrpChallenge& challenge, const Verdict& verdict);

  /// True once a failed round has left mirror and reality possibly diverged.
  [[nodiscard]] bool needs_resync() const noexcept { return needs_resync_; }

  /// Recovery hook: reinstates a diverged-mirror flag recorded before a
  /// snapshot (the failed round that set it is not replayed, so the flag
  /// must be restored explicitly). Not for normal operation.
  void mark_needs_resync() noexcept { needs_resync_ = true; }

  /// Re-enrolls from a trusted physical audit of the tags (counters copied).
  void resync(const tag::TagSet& audited);

  /// Bulk execution mode (default on): expected_bitstring and commit_round
  /// run the columnar mirror walk (utrp_scan_columnar) instead of the
  /// per-tag scalar walk. Bit-identical either way — proven by the
  /// differential battery in tests/columnar_diff_test.cpp.
  void set_bulk_mode(bool on) noexcept { bulk_ = on; }
  [[nodiscard]] bool bulk_mode() const noexcept { return bulk_; }

  /// The mirrored database (IDs + counters as the server believes them).
  /// Read-only: exposed so recovery flows can audit counter drift.
  [[nodiscard]] std::span<const tag::Tag> mirror() const noexcept {
    return mirror_;
  }

  /// Attaches an observability registry: issue_challenge/verify/commit_round
  /// start recording challenges, round outcomes (intact | mismatch |
  /// deadline_missed), slot totals, frame sizes, and mirror-side re-seed
  /// replays under protocol="utrp". Pass nullptr to detach. The registry
  /// must outlive this server.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  /// Cached series handles; null when no registry is attached.
  struct Instruments {
    obs::Counter* challenges = nullptr;
    obs::Counter* rounds_intact = nullptr;
    obs::Counter* rounds_mismatch = nullptr;
    obs::Counter* rounds_deadline_missed = nullptr;
    obs::Counter* slots = nullptr;
    obs::Counter* mismatched_slots = nullptr;
    obs::Counter* mirror_reseeds = nullptr;
    obs::Counter* bulk_slots = nullptr;  // receptions run by the bulk walk
    obs::Histogram* frame_size = nullptr;
  };

  std::vector<tag::Tag> mirror_;  // IDs + counters as the server believes them
  MonitoringPolicy policy_;
  std::uint64_t comm_budget_;
  hash::SlotHasher hasher_;
  math::UtrpPlan plan_;
  bool needs_resync_ = false;
  bool bulk_ = true;
  Instruments instruments_;
};

class UtrpReader {
 public:
  explicit UtrpReader(hash::SlotHasher hasher = hash::SlotHasher{})
      : hasher_(hasher) {}

  /// Honest scan: runs the walk over the physically present tags.
  [[nodiscard]] UtrpScanResult scan(std::span<tag::Tag> present,
                                    const UtrpChallenge& challenge) const {
    return utrp_scan(present, hasher_, challenge);
  }

 private:
  hash::SlotHasher hasher_;
};

}  // namespace rfid::protocol
