// Attacks against UTRP (Sec. 5.4): a dishonest reader pair with a bounded
// communication budget c.
//
// Two models are provided:
//
//  * run_utrp_split_attack — the *mechanically faithful* attack: R1 and R2
//    execute the real re-seeding walk over their halves, exchanging a
//    message at each of R1's first c empty slots so re-seeds stay in
//    lockstep; once the budget is spent R1 finishes alone. A stolen tag that
//    replies after the coordinated prefix escapes notice only if its slot is
//    shared with a remaining tag (then the re-seed points coincide and the
//    walks stay synchronized); otherwise the forged bitstring diverges. The
//    resulting detection probability therefore tracks the paper's analysis,
//    with small second-order differences from the re-seed dynamics.
//
//  * run_utrp_static_model_attack — the *analysis-faithful* trial matching
//    Theorems 3–5 (and, evidently, the paper's Fig. 7 simulation): tag slot
//    choices are modeled as one static frame; the adversary's answer is
//    correct for the first c' slots (c' = slots until R1 has seen c empties)
//    and shows only s1 afterwards. Detection occurs iff a stolen tag falls
//    on an s1-empty slot after c'. This reproduces Fig. 7's ≈α detection
//    probabilities; the gap between the two models is quantified in
//    bench/ablation_attack_model and EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <span>

#include "bitstring/bitstring.h"
#include "hash/slot_hash.h"
#include "protocol/messages.h"
#include "tag/tag.h"

namespace rfid::attack {

struct UtrpAttackResult {
  bits::Bitstring forged;
  std::uint64_t comms_used = 0;       // reader-to-reader messages consumed
  std::uint64_t coordinated_slots = 0;  // realized c': slots covered jointly
};

/// Mechanically-faithful budgeted split attack. Mutates both tag halves
/// (their counters advance as in a real scan). `comm_budget` is the paper's
/// c; a message is spent at every slot R1 finds empty of its own tags.
[[nodiscard]] UtrpAttackResult run_utrp_split_attack(
    std::span<tag::Tag> s1, std::span<tag::Tag> s2,
    const hash::SlotHasher& hasher, const protocol::UtrpChallenge& challenge,
    std::uint64_t comm_budget);

struct StaticModelTrial {
  bool detected = false;            // server notices the forgery
  std::uint64_t realized_cprime = 0;  // slots until R1 saw c empties (+1)
  std::uint64_t exposed_stolen = 0;   // stolen tags replying after c' (x of Thm. 4)
};

/// Analysis-faithful trial of Theorems 3–5 on real tag IDs: one static
/// frame (f, r); coordination covers slots [0, c'); detection iff a stolen
/// tag's slot >= c' is empty of remaining tags.
[[nodiscard]] StaticModelTrial run_utrp_static_model_attack(
    std::span<const tag::Tag> s1, std::span<const tag::Tag> s2,
    const hash::SlotHasher& hasher, std::uint32_t frame_size, std::uint64_t r,
    std::uint64_t comm_budget);

}  // namespace rfid::attack
