#include "wire/link.h"

#include <utility>

#include "obs/catalog.h"
#include "util/expect.h"

namespace rfid::wire {

void Link::attach_metrics(obs::MetricsRegistry& registry,
                          std::string_view direction) {
  frames_counter_ = &obs::catalog::frames_sent_total(registry, direction);
  bytes_counter_ = &obs::catalog::bytes_sent_total(registry, direction);
  dropped_counter_ = &obs::catalog::frames_dropped_total(registry, direction);
}

double Link::delivery_delay() noexcept {
  double delay = config_.latency_us;
  if (config_.jitter_us > 0.0) delay += rng_.uniform() * config_.jitter_us;
  return delay;
}

bool Link::send(std::vector<std::byte> frame, const Handler& deliver) {
  RFID_EXPECT(deliver != nullptr, "null delivery handler");
  ++sent_;
  if (frames_counter_ != nullptr) {
    frames_counter_->inc();
    bytes_counter_->inc(frame.size());
  }
  fault::FrameFate fate;
  if (injector_ != nullptr) fate = injector_->on_frame();
  if (fate.drop || (config_.drop_prob > 0.0 && rng_.chance(config_.drop_prob))) {
    ++dropped_;
    if (dropped_counter_ != nullptr) dropped_counter_->inc();
    return false;
  }
  if (fate.corrupt && !frame.empty()) injector_->corrupt(frame);
  if (fate.duplicate) {
    // The duplicate takes its own independently-jittered path, so it can
    // arrive before or after the original — receivers must stay idempotent.
    ++sent_;
    if (frames_counter_ != nullptr) {
      frames_counter_->inc();
      bytes_counter_->inc(frame.size());
    }
    queue_.schedule_after(delivery_delay(),
                          [deliver, payload = frame]() mutable {
                            deliver(std::move(payload));
                          });
  }
  queue_.schedule_after(delivery_delay() + fate.extra_delay_us,
                        [deliver, payload = std::move(frame)]() mutable {
                          deliver(std::move(payload));
                        });
  return true;
}

}  // namespace rfid::wire
