// Fleet orchestrator tests: deadline scheduling order, work stealing,
// verdict aggregation (pigeonhole over Sigma m_i = M), retry/requeue of
// retryable failures, escalation of permanent ones, admission backpressure,
// and crash recovery through the fleet journal.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fault/storage_fault.h"
#include "fleet/fleet.h"
#include "fleet/scheduler.h"
#include "obs/catalog.h"
#include "obs/expose.h"
#include "obs/metrics.h"
#include "server/group_planner.h"
#include "storage/backend.h"
#include "storage/fleet_journal.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using namespace rfid;

// A latch the scheduler tests use to park a worker inside a task.
class Gate {
 public:
  void open() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

// ---------------------------------------------------------- scheduler ----

TEST(FleetScheduler, RunsEarliestDeadlineFirst) {
  fleet::FleetScheduler pool(1);
  Gate gate;
  std::mutex mu;
  std::vector<int> order;
  // Park the single worker so the three real tasks queue up, then release:
  // they must drain in deadline order regardless of submission order.
  pool.submit(0.0, [&gate] { gate.wait(); });
  pool.submit(30.0, [&] { const std::lock_guard<std::mutex> l(mu); order.push_back(30); });
  pool.submit(10.0, [&] { const std::lock_guard<std::mutex> l(mu); order.push_back(10); });
  pool.submit(20.0, [&] { const std::lock_guard<std::mutex> l(mu); order.push_back(20); });
  gate.open();
  pool.wait_idle();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 10);
  EXPECT_EQ(order[1], 20);
  EXPECT_EQ(order[2], 30);
}

TEST(FleetScheduler, EqualDeadlinesAreFifo) {
  fleet::FleetScheduler pool(1);
  Gate gate;
  std::mutex mu;
  std::vector<int> order;
  pool.submit(0.0, [&gate] { gate.wait(); });
  for (int i = 0; i < 5; ++i) {
    pool.submit(7.0, [&, i] { const std::lock_guard<std::mutex> l(mu); order.push_back(i); });
  }
  gate.open();
  pool.wait_idle();
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(FleetScheduler, IdleWorkerStealsFromBlockedWorkersQueue) {
  fleet::FleetScheduler pool(2);
  Gate gate;
  std::atomic<int> done{0};
  // Sequence 0 round-robins to worker 0: park it there. Every further task
  // alternates queues, so half the backlog lands behind the parked worker —
  // the free worker must steal or wait_idle would hang until the gate opens.
  pool.submit(0.0, [&gate] { gate.wait(); });
  constexpr int kTasks = 16;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit(static_cast<double>(i), [&done] {
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // The free worker can finish every task (stealing included) while worker 0
  // stays parked.
  for (int spin = 0; done.load(std::memory_order_relaxed) < kTasks; ++spin) {
    ASSERT_LT(spin, 10000) << "tasks behind a blocked worker never drained";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(pool.stolen(), 1u);
  gate.open();
  pool.wait_idle();
  EXPECT_EQ(pool.executed(), static_cast<std::uint64_t>(kTasks) + 1u);
}

TEST(FleetScheduler, TasksMaySubmitTasks) {
  fleet::FleetScheduler pool(4);
  std::atomic<int> executed{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit(1.0, [&pool, &executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
      pool.submit(0.5, [&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  pool.wait_idle();  // must cover the requeues, not just the first wave
  EXPECT_EQ(executed.load(), 16);
}

TEST(FleetScheduler, SingleSubmitToAnIdlePoolAlwaysWakesAWorker) {
  // Lost-wakeup regression: a task submitted while every worker sleeps has
  // no later submit to mask a dropped notify, so a submit that publishes
  // pending_ outside wake_mu_ can strand the task and hang wait_idle().
  // Tight submit/drain cycles against a single worker give the race many
  // chances to land in the predicate-check-to-sleep window.
  fleet::FleetScheduler pool(1);
  std::atomic<int> executed{0};
  for (int i = 0; i < 2000; ++i) {
    pool.submit(0.0, [&executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
    pool.wait_idle();
  }
  EXPECT_EQ(executed.load(), 2000);
}

// ---------------------------------------------------------- test rig ----

fleet::InventorySpec make_trp_spec(const std::string& name, std::uint64_t tags,
                                   std::uint64_t tolerance,
                                   std::uint64_t capacity, util::Rng& rng) {
  fleet::InventorySpec spec;
  spec.name = name;
  spec.protocol = fleet::Protocol::kTrp;
  spec.tags = tag::TagSet::make_random(tags, rng);
  spec.plan = server::plan_groups({.total_tags = tags,
                                   .total_tolerance = tolerance,
                                   .alpha = 0.95,
                                   .max_group_size = capacity});
  spec.rounds = 2;
  return spec;
}

// ---------------------------------------------------------- aggregation ----

TEST(FleetOrchestrator, IntactFleetAggregatesIntact) {
  util::Rng rng(101);
  fleet::FleetOrchestrator orchestrator({.seed = 7, .threads = 2});
  EXPECT_EQ(orchestrator.submit(make_trp_spec("aisle-a", 120, 4, 40, rng)),
            fleet::Admission::kAccepted);
  EXPECT_EQ(orchestrator.submit(make_trp_spec("aisle-b", 90, 3, 30, rng)),
            fleet::Admission::kAccepted);
  const fleet::FleetResult result = orchestrator.run();

  EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kIntact);
  ASSERT_EQ(result.inventories.size(), 2u);
  EXPECT_EQ(result.zones, 6u);
  EXPECT_EQ(result.attempts, 6u);
  EXPECT_EQ(result.requeues, 0u);
  EXPECT_EQ(result.escalations, 0u);
  for (const fleet::InventoryReport& inventory : result.inventories) {
    EXPECT_EQ(inventory.verdict, fleet::GlobalVerdict::kIntact);
    // The planner's guarantee carried through: Sigma m_i == M.
    std::uint64_t allocated = 0;
    for (const fleet::ZoneReport& zone : inventory.zones) {
      EXPECT_EQ(zone.status, fleet::ZoneStatus::kIntact);
      EXPECT_EQ(zone.attempts, 1u);
      EXPECT_GT(zone.duration_us, 0.0);
      allocated += 0;  // tolerance lives in the plan, checked below
    }
    EXPECT_GT(inventory.tolerance, 0u);
  }
  const std::string text = fleet::summary(result);
  EXPECT_NE(text.find("fleet verdict: intact"), std::string::npos);
  EXPECT_NE(text.find("aisle-a"), std::string::npos);
}

TEST(FleetOrchestrator, TheftBeyondToleranceAggregatesViolated) {
  util::Rng rng(102);
  fleet::FleetOrchestrator orchestrator({.seed = 9, .threads = 2});
  fleet::InventorySpec looted = make_trp_spec("looted", 120, 3, 40, rng);
  // Steal far past zone 0's tolerance: indices 0..9 all land in zone 0
  // (split_by_plan slices in order), so its round mismatches essentially
  // surely and the pigeonhole argument flags the inventory.
  for (std::uint64_t i = 0; i < 10; ++i) looted.stolen.push_back(i);
  orchestrator.submit(std::move(looted));
  orchestrator.submit(make_trp_spec("clean", 80, 2, 40, rng));
  const fleet::FleetResult result = orchestrator.run();

  EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kViolated);
  EXPECT_EQ(result.inventories[0].verdict, fleet::GlobalVerdict::kViolated);
  EXPECT_EQ(result.inventories[1].verdict, fleet::GlobalVerdict::kIntact);
  EXPECT_EQ(result.inventories[0].zones[0].status,
            fleet::ZoneStatus::kViolated);
  EXPECT_GT(result.inventories[0].zones[0].mismatched_rounds, 0u);
  // Drill-down is opt-in: a violated zone without it reports no campaign.
  EXPECT_FALSE(result.inventories[0].zones[0].identification.ran);
  EXPECT_EQ(result.zones_identified, 0u);
}

// ----------------------------------------------- identification drill ----

TEST(FleetOrchestrator, DrillDownNamesExactlyTheStolenTags) {
  util::Rng rng(110);
  obs::MetricsRegistry metrics;
  fleet::FleetOrchestrator orchestrator(
      {.seed = 9, .threads = 2, .metrics = &metrics});
  fleet::InventorySpec looted = make_trp_spec("looted", 120, 3, 40, rng);
  for (std::uint64_t i = 0; i < 10; ++i) looted.stolen.push_back(i);
  // Remember the stolen IDs before the spec is consumed: indices 0..9 all
  // land in zone 0 (split_by_plan slices in order).
  std::vector<tag::TagId> stolen_ids;
  for (std::uint64_t i = 0; i < 10; ++i) {
    stolen_ids.push_back(looted.tags.at(i).id());
  }
  looted.identify.enabled = true;
  orchestrator.submit(std::move(looted));
  const fleet::FleetResult result = orchestrator.run();

  ASSERT_EQ(result.verdict, fleet::GlobalVerdict::kViolated);
  const fleet::ZoneIdentification& id =
      result.inventories[0].zones[0].identification;
  ASSERT_TRUE(id.ran);
  EXPECT_EQ(id.protocol, "filter_first");
  ASSERT_EQ(id.missing.size(), stolen_ids.size());
  // Both lists are in enrolled order, so they compare element-wise.
  for (std::size_t i = 0; i < stolen_ids.size(); ++i) {
    EXPECT_EQ(id.missing[i], stolen_ids[i]) << "tag " << i;
  }
  EXPECT_EQ(id.present, 30u);  // zone 0 holds 40 tags, 10 stolen
  EXPECT_EQ(id.unresolved, 0u);
  EXPECT_GT(id.rounds, 0u);
  EXPECT_GT(id.slots, 0u);
  EXPECT_GT(id.duration_us, 0.0);
  EXPECT_EQ(result.zones_identified, 1u);
  EXPECT_EQ(result.tags_named, 10u);
  // Intact zones are never drilled.
  for (std::size_t z = 1; z < result.inventories[0].zones.size(); ++z) {
    EXPECT_FALSE(result.inventories[0].zones[z].identification.ran);
  }

  // The campaign lands in the identify_* metric family.
  namespace cat = obs::catalog;
  EXPECT_EQ(
      cat::identify_campaigns_total(metrics, "filter_first", "resolved")
          .value(),
      1u);
  EXPECT_EQ(cat::identify_tags_total(metrics, "missing").value(), 10u);
  EXPECT_EQ(cat::identify_tags_total(metrics, "present").value(), 30u);

  // And the summary names the stolen tags (capped at 8, so "+2 more").
  const std::string text = fleet::summary(result);
  EXPECT_NE(text.find("identified [filter_first]"), std::string::npos);
  EXPECT_NE(text.find(stolen_ids[0].to_string()), std::string::npos);
  EXPECT_NE(text.find("+2 more"), std::string::npos);
}

TEST(FleetOrchestrator, DrillDownSupportsTheIterativeFamilyMember) {
  util::Rng rng(111);
  fleet::FleetOrchestrator orchestrator({.seed = 13, .threads = 1});
  fleet::InventorySpec looted = make_trp_spec("aisle", 80, 2, 40, rng);
  for (std::uint64_t i = 0; i < 6; ++i) looted.stolen.push_back(i);
  const std::vector<tag::TagId> stolen_ids = [&] {
    std::vector<tag::TagId> ids;
    for (std::uint64_t i = 0; i < 6; ++i) ids.push_back(looted.tags.at(i).id());
    return ids;
  }();
  looted.identify.enabled = true;
  looted.identify.protocol = protocol::IdentifyProtocolKind::kIterative;
  orchestrator.submit(std::move(looted));
  const fleet::FleetResult result = orchestrator.run();

  const fleet::ZoneIdentification& id =
      result.inventories[0].zones[0].identification;
  ASSERT_TRUE(id.ran);
  EXPECT_EQ(id.protocol, "iterative");
  ASSERT_EQ(id.missing.size(), stolen_ids.size());
  for (std::size_t i = 0; i < stolen_ids.size(); ++i) {
    EXPECT_EQ(id.missing[i], stolen_ids[i]) << "tag " << i;
  }
  EXPECT_EQ(id.filter_bits, 0u);  // iterative never broadcasts ACK filters
}

// ------------------------------------------------------ retry/escalate ----

TEST(FleetOrchestrator, RetryableFailureRequeuesAndRecovers) {
  util::Rng rng(103);
  fleet::InventorySpec spec = make_trp_spec("flaky", 90, 3, 30, rng);
  // Zone 1's reader dies mid-session on attempt 0 and never restarts; the
  // retry runs fault-free (faults_on_retries defaults to false) and
  // completes — the transient-outage recovery story.
  spec.zone_faults.emplace_back(1, fault::parse_fault_plan("crash 10000 never\n"));
  fleet::FleetOrchestrator orchestrator(
      {.seed = 11, .threads = 2, .max_zone_attempts = 3});
  orchestrator.submit(std::move(spec));
  const fleet::FleetResult result = orchestrator.run();

  EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kIntact);
  const fleet::ZoneReport& zone = result.inventories[0].zones[1];
  EXPECT_EQ(zone.status, fleet::ZoneStatus::kIntact);
  EXPECT_EQ(zone.attempts, 2u);
  EXPECT_EQ(zone.last_failure, wire::FailureReason::kNone);
  EXPECT_EQ(result.requeues, 1u);
  EXPECT_EQ(result.attempts, 4u);  // 3 zones + 1 retry
  EXPECT_EQ(result.escalations, 0u);
}

TEST(FleetOrchestrator, PermanentFailureEscalatesAsAlert) {
  util::Rng rng(104);
  fleet::InventorySpec spec = make_trp_spec("dark", 30, 1, 0, rng);  // 1 zone
  spec.session.uplink.drop_prob = 1.0;  // dead backhaul, every attempt
  spec.session.max_retries = 2;
  fleet::FleetOrchestrator orchestrator(
      {.seed = 13, .threads = 1, .max_zone_attempts = 2});
  orchestrator.submit(std::move(spec));
  const fleet::FleetResult result = orchestrator.run();

  EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kInconclusive);
  const fleet::ZoneReport& zone = result.inventories[0].zones[0];
  EXPECT_EQ(zone.status, fleet::ZoneStatus::kFailed);
  EXPECT_EQ(zone.attempts, 2u);
  EXPECT_EQ(zone.last_failure, wire::FailureReason::kTimeoutExhausted);
  EXPECT_EQ(result.escalations, 1u);
  ASSERT_EQ(result.alerts.size(), 1u);
  EXPECT_EQ(result.alerts[0].kind, fleet::AlertKind::kZoneEscalated);
  EXPECT_EQ(result.alerts[0].inventory, "dark");
  EXPECT_NE(fleet::summary(result).find("zone_escalated"), std::string::npos);
}

TEST(FleetOrchestrator, UtrpRetryResyncsTheMirror) {
  util::Rng rng(105);
  fleet::InventorySpec spec;
  spec.name = "utrp-cage";
  spec.protocol = fleet::Protocol::kUtrp;
  spec.tags = tag::TagSet::make_random(60, rng);
  spec.plan = server::plan_groups({.total_tags = 60,
                                   .total_tolerance = 2,
                                   .alpha = 0.95,
                                   .max_group_size = 30});
  spec.comm_budget = 10;
  spec.rounds = 1;
  spec.session.utrp_deadline_us = 10e6;
  spec.zone_faults.emplace_back(0, fault::parse_fault_plan("crash 10000 never\n"));
  fleet::FleetOrchestrator orchestrator(
      {.seed = 17, .threads = 2, .max_zone_attempts = 3});
  orchestrator.submit(std::move(spec));
  const fleet::FleetResult result = orchestrator.run();

  EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kIntact);
  const fleet::ZoneReport& zone = result.inventories[0].zones[0];
  EXPECT_EQ(zone.status, fleet::ZoneStatus::kIntact);
  EXPECT_GE(zone.attempts, 2u);
  EXPECT_TRUE(zone.resynced);
  EXPECT_GE(result.resyncs, 1u);
}

// ----------------------------------------------------------- admission ----

TEST(FleetOrchestrator, SaturatedAdmissionDefersToALaterWave) {
  util::Rng rng(106);
  fleet::FleetOrchestrator orchestrator(
      {.seed = 19, .threads = 2, .admission_capacity = 3});
  EXPECT_EQ(orchestrator.submit(make_trp_spec("first", 90, 3, 30, rng)),
            fleet::Admission::kAccepted);  // 3 zones: fills wave 0
  EXPECT_EQ(orchestrator.submit(make_trp_spec("second", 60, 2, 30, rng)),
            fleet::Admission::kDeferred);  // 2 zones: wave 1
  const fleet::FleetResult result = orchestrator.run();

  EXPECT_EQ(result.waves, 2u);
  EXPECT_EQ(result.deferred_inventories, 1u);
  ASSERT_EQ(result.inventories.size(), 2u);  // deferred still monitored
  EXPECT_EQ(result.inventories[0].wave, 0u);
  EXPECT_EQ(result.inventories[1].wave, 1u);
  EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kIntact);
  EXPECT_TRUE(result.rejected.empty());
}

TEST(FleetOrchestrator, SaturatedAdmissionRejectsWhenDeferralDisabled) {
  util::Rng rng(107);
  fleet::FleetOrchestrator orchestrator({.seed = 23,
                                         .threads = 1,
                                         .admission_capacity = 3,
                                         .defer_when_saturated = false});
  EXPECT_EQ(orchestrator.submit(make_trp_spec("kept", 90, 3, 30, rng)),
            fleet::Admission::kAccepted);
  EXPECT_EQ(orchestrator.submit(make_trp_spec("shed", 60, 2, 30, rng)),
            fleet::Admission::kRejected);
  const fleet::FleetResult result = orchestrator.run();

  ASSERT_EQ(result.inventories.size(), 1u);  // rejected is NOT monitored
  ASSERT_EQ(result.rejected.size(), 1u);
  EXPECT_EQ(result.rejected[0], "shed");
  ASSERT_EQ(result.alerts.size(), 1u);
  EXPECT_EQ(result.alerts[0].kind, fleet::AlertKind::kInventoryRejected);
}

TEST(FleetOrchestrator, OversizedInventoryGetsItsOwnWave) {
  util::Rng rng(108);
  fleet::FleetOrchestrator orchestrator(
      {.seed = 29, .threads = 2, .admission_capacity = 2});
  // 4 zones > capacity 2, but an empty wave admits it whole.
  EXPECT_EQ(orchestrator.submit(make_trp_spec("huge", 120, 4, 30, rng)),
            fleet::Admission::kAccepted);
  const fleet::FleetResult result = orchestrator.run();
  EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kIntact);
  EXPECT_EQ(result.zones, 4u);
}

// ------------------------------------------------------- observability ----

TEST(FleetOrchestrator, RecordsMetricsSpansAndSessionLog) {
  util::Rng rng(109);
  obs::MetricsRegistry metrics;
  double clock = 0.0;
  obs::Tracer tracer([&clock] { return clock += 1.0; });
  obs::SessionLog log(64);
  fleet::InventorySpec spec = make_trp_spec("observed", 60, 2, 30, rng);
  spec.zone_faults.emplace_back(0, fault::parse_fault_plan("crash 10000 never\n"));
  fleet::FleetOrchestrator orchestrator({.seed = 31,
                                         .threads = 2,
                                         .fleet_name = "east-wing",
                                         .metrics = &metrics,
                                         .tracer = &tracer,
                                         .session_log = &log});
  orchestrator.submit(std::move(spec));
  const fleet::FleetResult result = orchestrator.run();
  ASSERT_EQ(result.verdict, fleet::GlobalVerdict::kIntact);

  namespace cat = obs::catalog;
  EXPECT_EQ(cat::fleet_runs_total(metrics, "intact").value(), 1u);
  EXPECT_EQ(cat::fleet_inventories_total(metrics, "intact").value(), 1u);
  EXPECT_EQ(cat::fleet_zones_total(metrics, "intact").value(), 2u);
  EXPECT_EQ(cat::fleet_admissions_total(metrics, "accepted").value(), 1u);
  EXPECT_EQ(cat::fleet_zone_attempts_total(metrics, "trp").value(),
            result.attempts);
  EXPECT_EQ(cat::fleet_requeues_total(metrics).value(), result.requeues);

  // Span nesting: fleet -> inventory -> zone -> session.
  const std::string trace = tracer.render();
  EXPECT_NE(trace.find("fleet"), std::string::npos);
  EXPECT_NE(trace.find("inventory"), std::string::npos);
  EXPECT_NE(trace.find("zone"), std::string::npos);
  EXPECT_NE(trace.find("session"), std::string::npos);

  // One SessionLog entry per executed attempt, labeled with the fleet.
  const auto recent = log.recent();
  ASSERT_EQ(recent.size(), result.attempts);
  for (const obs::SessionSummary& s : recent) {
    EXPECT_EQ(s.fleet, "east-wing");
    EXPECT_EQ(s.protocol, "trp");
  }
  // The JSON exposition renders the fleet label for orchestrated sessions.
  const std::string json = obs::render_json(metrics.snapshot(), &log);
  EXPECT_NE(json.find("\"fleet\":\"east-wing\""), std::string::npos);
  EXPECT_NE(json.find("\"attempt\":0"), std::string::npos);
}

// ------------------------------------------------------------- journal ----

TEST(FleetJournal, ScanSurvivesTornTail) {
  storage::MemoryBackend backend;
  storage::FleetJournal journal(backend, "fleet.journal");
  journal.begin({.seed = 5, .fleet = "f"}, {});
  storage::FleetZoneRecord zone;
  zone.inventory = "inv";
  zone.zone = 3;
  zone.status = 0;
  zone.attempts = 1;
  journal.append(zone);
  std::string bytes = backend.read("fleet.journal");
  const auto clean = storage::scan_fleet_journal(bytes);
  ASSERT_EQ(clean.records.size(), 2u);
  EXPECT_TRUE(clean.header_valid);
  EXPECT_EQ(clean.dropped_bytes, 0u);

  // Tear mid-record: the scan keeps the prefix and drops the tail.
  const auto torn = storage::scan_fleet_journal(
      std::string_view(bytes).substr(0, bytes.size() - 5));
  ASSERT_EQ(torn.records.size(), 1u);
  EXPECT_GT(torn.dropped_bytes, 0u);
}

TEST(FleetJournal, RecoveryMatchesSeedAndFleetOnly) {
  storage::MemoryBackend backend;
  storage::FleetJournal journal(backend, "fleet.journal");
  journal.begin({.seed = 5, .fleet = "f"}, {});
  storage::FleetZoneRecord zone;
  zone.inventory = "inv";
  zone.zone = 3;
  journal.append(zone);

  const auto scan = storage::scan_fleet_journal(backend.read("fleet.journal"));
  EXPECT_EQ(storage::recover_interrupted_run(scan, 5, "f").size(), 1u);
  EXPECT_TRUE(storage::recover_interrupted_run(scan, 6, "f").empty());
  EXPECT_TRUE(storage::recover_interrupted_run(scan, 5, "g").empty());

  // A finished run (end record present) has nothing to recover.
  journal.append(storage::FleetRunEndRecord{.verdict = 0});
  const auto done = storage::scan_fleet_journal(backend.read("fleet.journal"));
  EXPECT_TRUE(storage::recover_interrupted_run(done, 5, "f").empty());
}

// Rig for the begin() crash-atomicity sweep: an interrupted run's journal
// (start record, one terminal zone, no end record) under (seed 9, "f").
storage::FleetZoneRecord carried_zone() {
  storage::FleetZoneRecord zone;
  zone.inventory = "inv";
  zone.zone = 1;
  zone.status = 0;
  zone.attempts = 2;
  zone.duration_us = 7.0;
  return zone;
}

void build_interrupted_journal(storage::MemoryBackend& backend) {
  storage::FleetJournal journal(backend, "fleet.journal");
  journal.begin({.seed = 9, .fleet = "f"}, {});
  journal.append(carried_zone());
}

TEST(FleetJournal, BeginIsCrashAtomicAtEveryCrashPoint) {
  // Contract: begin() replaces the journal atomically, so a crash anywhere
  // inside it leaves either the complete old journal or the complete new
  // one — the carried (recovered) zone record is readable in both, and a
  // second crash never loses it.
  std::uint64_t total_ops = 0;
  {
    storage::MemoryBackend inner;
    build_interrupted_journal(inner);
    fault::FaultyBackend faulty(inner, {});
    storage::FleetJournal journal(faulty, "fleet.journal");
    journal.begin({.seed = 9, .fleet = "f"}, {carried_zone()});
    total_ops = faulty.mutating_ops();
  }
  ASSERT_GE(total_ops, 2u);

  for (std::uint64_t k = 1; k <= total_ops; ++k) {
    for (const bool before : {true, false}) {
      storage::MemoryBackend inner;
      build_interrupted_journal(inner);
      fault::FaultyBackend faulty(
          inner, {.crash_at_op = k, .crash_before_effect = before});
      storage::FleetJournal journal(faulty, "fleet.journal");
      try {
        journal.begin({.seed = 9, .fleet = "f"}, {carried_zone()});
        FAIL() << "crash point " << k << " never fired";
      } catch (const fault::CrashInjected&) {
      }
      inner.crash();  // drop unflushed bytes, as a power cut would

      const auto scan =
          storage::scan_fleet_journal(inner.read("fleet.journal"));
      EXPECT_TRUE(scan.header_valid)
          << "crash at op " << k << " (before=" << before
          << ") left an unreadable journal";
      EXPECT_EQ(scan.dropped_bytes, 0u);
      const auto zones = storage::recover_interrupted_run(scan, 9, "f");
      ASSERT_EQ(zones.count({"inv", 1}), 1u)
          << "crash at op " << k << " (before=" << before
          << ") lost the carried zone record";
      EXPECT_DOUBLE_EQ(zones.at({"inv", 1}).duration_us, 7.0);
    }
  }
}

TEST(FleetJournal, FailedBeginLeavesTheOldJournalReadable) {
  // An IoError inside begin() (disk full while staging the replacement)
  // must not damage the current journal: the old bytes stay bound to the
  // journal name and later appends still land on a well-formed file.
  storage::MemoryBackend inner;
  build_interrupted_journal(inner);
  const std::string old_bytes = inner.read("fleet.journal");

  fault::FaultyBackend faulty(
      inner, {.partial_append_at = 1, .partial_append_keep_fraction = 0.5});
  storage::FleetJournal journal(faulty, "fleet.journal");
  journal.begin({.seed = 9, .fleet = "f"}, {carried_zone()});
  EXPECT_EQ(journal.append_failures(), 1u);
  EXPECT_EQ(inner.read("fleet.journal"), old_bytes);

  storage::FleetZoneRecord late = carried_zone();
  late.zone = 2;
  journal.append(late);
  const auto scan = storage::scan_fleet_journal(inner.read("fleet.journal"));
  EXPECT_TRUE(scan.header_valid);
  EXPECT_EQ(scan.dropped_bytes, 0u);
  EXPECT_EQ(storage::recover_interrupted_run(scan, 9, "f").size(), 2u);
}

TEST(FleetOrchestrator, ReusesZonesJournaledByAnInterruptedRun) {
  storage::MemoryBackend backend;
  // Simulate a crashed orchestrator: a journal holding a start record and
  // one terminal zone, but no end record. The sentinel duration proves the
  // restarted run reused the record instead of re-executing the zone.
  {
    storage::FleetJournal journal(backend, "fleet.journal");
    storage::FleetZoneRecord done;
    done.inventory = "ware";
    done.zone = 0;
    done.status = static_cast<std::uint8_t>(fleet::ZoneStatus::kIntact);
    done.attempts = 1;
    done.rounds_completed = 2;
    done.intact_rounds = 2;
    done.duration_us = 12345.0;
    journal.begin({.seed = 37, .fleet = "fleet"}, {done});
  }

  util::Rng rng(110);
  fleet::FleetOrchestrator orchestrator({.seed = 37,
                                         .threads = 2,
                                         .journal_backend = &backend,
                                         .journal_name = "fleet.journal"});
  orchestrator.submit(make_trp_spec("ware", 90, 3, 30, rng));
  const fleet::FleetResult result = orchestrator.run();

  const fleet::ZoneReport& recovered = result.inventories[0].zones[0];
  EXPECT_TRUE(recovered.recovered);
  EXPECT_EQ(recovered.status, fleet::ZoneStatus::kIntact);
  EXPECT_DOUBLE_EQ(recovered.duration_us, 12345.0);
  EXPECT_EQ(result.zones_recovered, 1u);
  // Only the two fresh zones were executed.
  EXPECT_EQ(result.attempts, 2u);
  EXPECT_FALSE(result.inventories[0].zones[1].recovered);
  EXPECT_EQ(result.inventories[0].zones[1].attempts, 1u);
}

TEST(FleetOrchestrator, CompletedRunLeavesAFinishedJournal) {
  storage::MemoryBackend backend;
  util::Rng rng(111);
  fleet::FleetOrchestrator orchestrator(
      {.seed = 41, .threads = 2, .journal_backend = &backend});
  orchestrator.submit(make_trp_spec("ware", 60, 2, 30, rng));
  const fleet::FleetResult result = orchestrator.run();
  ASSERT_EQ(result.verdict, fleet::GlobalVerdict::kIntact);

  const auto scan = storage::scan_fleet_journal(backend.read("fleet.journal"));
  EXPECT_TRUE(scan.header_valid);
  EXPECT_EQ(scan.dropped_bytes, 0u);
  // start + one record per zone + end.
  ASSERT_EQ(scan.records.size(), 2u + result.zones);
  EXPECT_TRUE(std::holds_alternative<storage::FleetRunEndRecord>(
      scan.records.back()));
  // A restart after completion recovers nothing (the run is finished).
  EXPECT_TRUE(storage::recover_interrupted_run(scan, 41, "fleet").empty());
}

TEST(FleetOrchestrator, FleetWithNothingMonitoredIsInconclusive) {
  // "Intact" asserts the pigeonhole guarantee held, which requires zones to
  // have actually run — a run that monitored nothing must not report it.
  fleet::FleetOrchestrator orchestrator({.seed = 7, .threads = 2});
  const fleet::FleetResult result = orchestrator.run();
  EXPECT_TRUE(result.inventories.empty());
  EXPECT_EQ(result.zones, 0u);
  EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kInconclusive);
}

// --------------------------------------------------------- guard rails ----

TEST(FleetOrchestrator, RejectsDuplicateInventoryNames) {
  util::Rng rng(112);
  fleet::FleetOrchestrator orchestrator({.seed = 43});
  orchestrator.submit(make_trp_spec("dup", 30, 1, 0, rng));
  EXPECT_THROW(orchestrator.submit(make_trp_spec("dup", 30, 1, 0, rng)),
               std::invalid_argument);
}

// ------------------------------------------------- supervised shutdown ----

TEST(FleetScheduler, WaitIdleForTimesOutWhileWorkIsStuck) {
  fleet::FleetScheduler pool(1);
  Gate gate;
  pool.submit(0.0, [&gate] { gate.wait(); });
  EXPECT_FALSE(pool.wait_idle_for(std::chrono::milliseconds(10)));
  gate.open();
  pool.wait_idle();
  EXPECT_TRUE(pool.wait_idle_for(std::chrono::milliseconds(0)));
}

TEST(FleetScheduler, StopWithoutDrainAbandonsQueuedTasks) {
  fleet::FleetScheduler pool(1);
  Gate gate;
  std::atomic<bool> started{false};
  std::atomic<int> done{0};
  pool.submit(0.0, [&gate, &started, &done] {
    started.store(true, std::memory_order_release);
    gate.wait();
    done.fetch_add(1, std::memory_order_relaxed);
  });
  // Make sure the worker has TAKEN the gated task before queueing behind
  // it — otherwise the sweep below could abandon the gated task too.
  while (!started.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 5; ++i) {
    pool.submit(1.0, [&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  // stop(false) sweeps the queue immediately (the worker is parked), then
  // waits for the in-flight task — release it once the sweep is visible.
  std::thread opener([&pool, &gate] {
    while (pool.abandoned() < 5) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    gate.open();
  });
  pool.stop(false);
  opener.join();
  EXPECT_EQ(done.load(), 1);  // only the in-flight task ran
  EXPECT_EQ(pool.abandoned(), 5u);
  // The pool is dead: later submissions are discarded, not lost silently.
  pool.submit(0.0, [&done] { done.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(pool.abandoned(), 6u);
  EXPECT_EQ(done.load(), 1);
}

TEST(FleetOrchestrator, AbortSwitchAbandonsRunWithoutEndRecord) {
  storage::MemoryBackend backend;
  const std::atomic<bool> abort{true};  // killed before any zone starts
  {
    util::Rng rng(114);
    fleet::FleetConfig config{.seed = 53, .threads = 2};
    config.journal_backend = &backend;
    config.abort = &abort;
    fleet::FleetOrchestrator orchestrator(std::move(config));
    orchestrator.submit(make_trp_spec("ware", 90, 3, 30, rng));
    const fleet::FleetResult result = orchestrator.run();

    EXPECT_TRUE(result.aborted);
    EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kInconclusive);
    for (const fleet::ZoneReport& zone : result.inventories[0].zones) {
      EXPECT_EQ(zone.status, fleet::ZoneStatus::kFailed);
      EXPECT_EQ(zone.last_failure, wire::FailureReason::kCrashed);
    }
  }
  // No end record was journaled, so a restart treats the run as
  // interrupted and completes it.
  const auto scan = storage::scan_fleet_journal(backend.read("fleet.journal"));
  EXPECT_FALSE(std::holds_alternative<storage::FleetRunEndRecord>(
      scan.records.back()));

  util::Rng rng(114);
  fleet::FleetConfig config{.seed = 53, .threads = 2};
  config.journal_backend = &backend;
  fleet::FleetOrchestrator orchestrator(std::move(config));
  orchestrator.submit(make_trp_spec("ware", 90, 3, 30, rng));
  const fleet::FleetResult result = orchestrator.run();
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kIntact);
}

TEST(FleetOrchestrator, RecoveredRunWithChangedPlanIsQuarantined) {
  // Interrupt a journaled run mid-flight with an injected storage crash...
  storage::MemoryBackend inner;
  {
    fault::StorageFaultPlan plan;
    plan.crash_at_op = 5;  // past journal begin, inside the zone records
    fault::FaultyBackend backend(inner, plan);
    util::Rng rng(115);
    fleet::FleetConfig config{.seed = 59, .threads = 1};
    config.journal_backend = &backend;
    fleet::FleetOrchestrator orchestrator(std::move(config));
    orchestrator.submit(make_trp_spec("ware", 90, 3, 30, rng));
    EXPECT_THROW((void)orchestrator.run(), fault::CrashInjected);
  }
  inner.crash();  // the process died; unflushed bytes are gone

  // ...then restart with a CHANGED plan (different tolerance): the
  // journaled zones carry tolerances from the old plan, so folding them in
  // would silently break the pigeonhole argument. They must be quarantined
  // and every zone re-executed.
  {
    util::Rng rng(115);
    fleet::FleetConfig config{.seed = 59, .threads = 2};
    config.journal_backend = &inner;
    fleet::FleetOrchestrator orchestrator(std::move(config));
    orchestrator.submit(make_trp_spec("ware", 90, 2, 30, rng));
    const fleet::FleetResult result = orchestrator.run();

    EXPECT_EQ(result.zones_recovered, 0u);
    EXPECT_EQ(result.attempts, 3u);  // everything ran fresh
    bool quarantined = false;
    for (const fleet::FleetAlert& alert : result.alerts) {
      if (alert.kind == fleet::AlertKind::kRecoveredRunQuarantined) {
        quarantined = true;
      }
    }
    EXPECT_TRUE(quarantined);
    EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kIntact);
  }
}

TEST(FleetOrchestrator, RecoveredRunWithSamePlanIsResumed) {
  // Positive control for the quarantine: same crash, same plan on restart —
  // the journaled zone is reused, no quarantine alert.
  storage::MemoryBackend inner;
  {
    fault::StorageFaultPlan plan;
    plan.crash_at_op = 5;
    fault::FaultyBackend backend(inner, plan);
    util::Rng rng(116);
    fleet::FleetConfig config{.seed = 61, .threads = 1};
    config.journal_backend = &backend;
    fleet::FleetOrchestrator orchestrator(std::move(config));
    orchestrator.submit(make_trp_spec("ware", 90, 3, 30, rng));
    EXPECT_THROW((void)orchestrator.run(), fault::CrashInjected);
  }
  inner.crash();

  util::Rng rng(116);
  fleet::FleetConfig config{.seed = 61, .threads = 2};
  config.journal_backend = &inner;
  fleet::FleetOrchestrator orchestrator(std::move(config));
  orchestrator.submit(make_trp_spec("ware", 90, 3, 30, rng));
  const fleet::FleetResult result = orchestrator.run();

  EXPECT_GE(result.zones_recovered, 1u);
  EXPECT_TRUE(result.alerts.empty());
  EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kIntact);
}

TEST(FleetOrchestrator, SixtyFourZonesAcrossFourInventories) {
  // The acceptance scenario: >= 64 zones over >= 4 inventories, mixed
  // verdicts, completed in one run.
  util::Rng rng(113);
  fleet::FleetOrchestrator orchestrator({.seed = 47, .threads = 4});
  // 4 inventories x 16 zones of 20 tags each.
  for (int i = 0; i < 4; ++i) {
    fleet::InventorySpec spec = make_trp_spec("inv" + std::to_string(i), 320,
                                              8, 20, rng);
    spec.rounds = 1;
    if (i == 2) {
      for (std::uint64_t t = 0; t < 6; ++t) spec.stolen.push_back(t);
    }
    orchestrator.submit(std::move(spec));
  }
  const fleet::FleetResult result = orchestrator.run();
  EXPECT_EQ(result.zones, 64u);
  EXPECT_EQ(result.inventories.size(), 4u);
  EXPECT_EQ(result.verdict, fleet::GlobalVerdict::kViolated);
  EXPECT_EQ(result.inventories[2].verdict, fleet::GlobalVerdict::kViolated);
  for (const int i : {0, 1, 3}) {
    EXPECT_EQ(result.inventories[static_cast<std::size_t>(i)].verdict,
              fleet::GlobalVerdict::kIntact);
  }
}

}  // namespace
