// Durable fleet-run journal: which zones a fleet orchestrator finished.
//
// A fleet run executes dozens of zone sessions; a crashed orchestrator that
// restarts from scratch re-pays every completed zone's simulated air time.
// Because every zone's result is a pure function of (fleet seed, inventory,
// zone) — the orchestrator's determinism contract — a journaled terminal
// zone record can simply be *reused* on restart: the orchestrator skips the
// zone and folds the recorded outcome into the aggregate verdict.
//
// Framing is the WAL's (journal.h): a magic header, then
// [u32 len][u64 fnv1a64(payload)][payload] per record, truncate-at-first-
// tear on scan. Record stream shape:
//
//   FleetRunStartRecord(seed, fleet)        one per run, written at start
//   FleetZoneRecord ...                     one per zone reaching a terminal
//                                           state (any order — workers race)
//   FleetRunEndRecord(verdict)              written after aggregation
//
// Recovery looks at the records after the LAST start record: if no end
// record follows, the run was interrupted and its zone records are
// reusable — but only when seed and fleet name match the restarted run
// (recover_interrupted_run enforces this).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "storage/backend.h"

namespace rfid::storage {

/// Format 2 added the fused-reader fields to FleetZoneRecord. The decoder
/// rejects any payload with trailing bytes, so the version lives in the
/// magic: a journal written by an older build fails the header check and
/// every zone simply re-executes (the safe direction).
inline constexpr std::string_view kFleetJournalMagic = "RFIDMON-FLEET 2\n";

struct FleetRunStartRecord {
  std::uint64_t seed = 0;
  std::string fleet;
  /// Fingerprint of the submitted plan (inventory names, zone counts,
  /// per-zone tolerances and sizes). 0 = unknown (hand-built journals,
  /// pre-fingerprint records): recovery then skips the config check.
  std::uint64_t config_hash = 0;
};

/// A zone that reached a terminal state (verified, violated, or failed for
/// good after capped retries). Everything aggregation needs; link-level
/// counters that only feed operator curiosity (burst drops, duplicates) are
/// deliberately not journaled.
struct FleetZoneRecord {
  std::string inventory;            // inventory name (stable across restarts)
  std::uint64_t zone = 0;           // zone index within the inventory
  std::uint8_t status = 0;          // fleet::ZoneStatus raw value
  std::uint32_t attempts = 0;
  std::uint8_t last_failure = 0;    // wire::FailureReason raw value
  bool resynced = false;            // UTRP mirror re-audited before a retry
  std::uint64_t rounds_completed = 0;
  std::uint64_t intact_rounds = 0;
  std::uint64_t mismatched_rounds = 0;
  std::uint64_t deadline_missed_rounds = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t retransmissions = 0;
  double duration_us = 0.0;         // simulated time of the final attempt
  // Fused zones (k > 1); defaults describe a single-reader zone.
  std::uint32_t readers = 1;            // reader count k
  std::uint64_t degraded_rounds = 0;    // rounds committed below quorum
  std::uint32_t suspected_readers = 0;  // flagged by the trust tracker
};

struct FleetRunEndRecord {
  std::uint8_t verdict = 0;  // fleet::GlobalVerdict raw value
};

using FleetJournalRecord =
    std::variant<FleetRunStartRecord, FleetZoneRecord, FleetRunEndRecord>;

/// Frames one record (length prefix + checksum + payload).
[[nodiscard]] std::string encode_fleet_record(const FleetJournalRecord& record);

struct FleetJournalScan {
  std::vector<FleetJournalRecord> records;
  bool header_valid = false;
  std::uint64_t valid_bytes = 0;
  std::uint64_t dropped_bytes = 0;
};

/// Truncate-at-first-tear scan; never throws on damaged input.
[[nodiscard]] FleetJournalScan scan_fleet_journal(std::string_view bytes);

/// Zone records of an interrupted run (a start record with no end record),
/// keyed by (inventory name, zone); later records win. Empty when the
/// journal is clean, finished, or belongs to a different (seed, fleet).
[[nodiscard]] std::map<std::pair<std::string, std::uint64_t>, FleetZoneRecord>
recover_interrupted_run(const FleetJournalScan& scan, std::uint64_t seed,
                        std::string_view fleet);

/// Config-checked recovery: an interrupted run whose recorded config_hash
/// no longer matches the restarted plan must NOT be folded in — its zone
/// records describe zones that may no longer exist (different zone count)
/// or carry different tolerances, so reusing them would silently break the
/// pigeonhole argument. Such a run is surfaced as stale instead: the caller
/// records a quarantined-run alert and re-executes every zone.
struct FleetRecovery {
  std::map<std::pair<std::string, std::uint64_t>, FleetZoneRecord> zones;
  /// An interrupted run for this (seed, fleet) exists but its config_hash
  /// conflicts with `config_hash`; zones is empty in that case.
  bool stale = false;
  std::uint64_t stale_records = 0;  // zone records quarantined, not folded
};
[[nodiscard]] FleetRecovery recover_interrupted_run_checked(
    const FleetJournalScan& scan, std::uint64_t seed, std::string_view fleet,
    std::uint64_t config_hash);

/// Thread-safe appender: workers race to journal terminal zones, so every
/// append serializes under a mutex and flushes before returning (a record
/// is reusable iff it is durable). Append failures are swallowed and
/// counted — a sick journal disk must not take the fleet run down with it.
class FleetJournal {
 public:
  FleetJournal(StorageBackend& backend, std::string name)
      : backend_(backend), name_(std::move(name)) {}

  /// Scans whatever the backend holds under this name (missing file = empty
  /// scan). Call before begin() to harvest an interrupted run.
  [[nodiscard]] FleetJournalScan load() const;

  /// Starts a fresh journal: writes the header, the start record, and the
  /// `carried` zone records (results recovered from the interrupted run) to
  /// a temporary name, then atomically renames it over the old journal.
  /// Either the old journal or the complete new one is readable at every
  /// point, so a second crash still sees the carried records.
  void begin(const FleetRunStartRecord& start,
             const std::vector<FleetZoneRecord>& carried);

  void append(const FleetJournalRecord& record);

  /// Appends the journal failed to make durable (IoError swallowed).
  [[nodiscard]] std::uint64_t append_failures() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return append_failures_;
  }

 private:
  void append_locked(const FleetJournalRecord& record);

  StorageBackend& backend_;
  std::string name_;
  mutable std::mutex mu_;
  std::uint64_t append_failures_ = 0;
};

}  // namespace rfid::storage
