#include "wire/codec.h"

#include <cstring>

#include "hash/fnv.h"
#include "util/expect.h"

namespace rfid::wire {

void Encoder::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::put_f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void Encoder::put_bytes(std::span<const std::byte> data) {
  RFID_EXPECT(data.size() <= 0xffffffffu, "byte string too long for wire");
  put_u32(static_cast<std::uint32_t>(data.size()));
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void Encoder::put_string(const std::string& s) {
  put_bytes(std::span(reinterpret_cast<const std::byte*>(s.data()), s.size()));
}

void Decoder::need(std::size_t n) const {
  RFID_EXPECT(offset_ + n <= data_.size(), "truncated message");
}

std::uint8_t Decoder::get_u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[offset_++]);
}

std::uint32_t Decoder::get_u32() {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(get_u8()) << (8 * i);
  return v;
}

std::uint64_t Decoder::get_u64() {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(get_u8()) << (8 * i);
  return v;
}

double Decoder::get_f64() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<std::byte> Decoder::get_bytes() {
  const std::uint32_t length = get_u32();
  need(length);
  std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
                             data_.begin() + static_cast<std::ptrdiff_t>(offset_ + length));
  offset_ += length;
  return out;
}

std::string Decoder::get_string() {
  const auto raw = get_bytes();
  return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
}

void Decoder::expect_exhausted() const {
  RFID_EXPECT(remaining() == 0, "trailing bytes after message payload");
}

std::vector<std::byte> frame_payload(std::span<const std::byte> payload) {
  Encoder enc;
  enc.put_u32(static_cast<std::uint32_t>(payload.size()));
  for (const std::byte b : payload) enc.put_u8(static_cast<std::uint8_t>(b));
  enc.put_u32(hash::fnv1a32(payload));
  return std::move(enc).take();
}

std::vector<std::byte> unframe_payload(std::span<const std::byte> frame) {
  Decoder dec(frame);
  const std::uint32_t length = dec.get_u32();
  RFID_EXPECT(dec.remaining() == length + 4u, "frame length mismatch");
  std::vector<std::byte> payload;
  payload.reserve(length);
  for (std::uint32_t i = 0; i < length; ++i) {
    payload.push_back(static_cast<std::byte>(dec.get_u8()));
  }
  const std::uint32_t declared = dec.get_u32();
  RFID_EXPECT(declared == hash::fnv1a32(payload), "frame checksum mismatch");
  dec.expect_exhausted();
  return payload;
}

}  // namespace rfid::wire
