// Byte-level encoding for server <-> reader messages.
//
// The paper assumes a channel between the monitoring server and the RFID
// reader (challenges flow one way, bitstrings the other). This codec pins an
// interoperable wire format: little-endian fixed-width integers, length-
// prefixed byte strings, and a trailing FNV-1a-32 checksum over every frame.
// Deliberately boring — the point is that two independent implementations
// could talk to each other, and that corruption is detected before parsing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rfid::wire {

/// Append-only byte sink with primitive writers.
class Encoder {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(static_cast<std::byte>(v)); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f64(double v);
  /// Length-prefixed (u32) byte string.
  void put_bytes(std::span<const std::byte> data);
  void put_string(const std::string& s);

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::byte> take() && { return std::move(bytes_); }

 private:
  std::vector<std::byte> bytes_;
};

/// Forward-only reader over a byte span. All getters throw
/// std::invalid_argument on truncation — never read past the end.
class Decoder {
 public:
  explicit Decoder(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] double get_f64();
  [[nodiscard]] std::vector<std::byte> get_bytes();
  [[nodiscard]] std::string get_string();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - offset_;
  }
  /// Asserts the whole payload was consumed (catches trailing garbage).
  void expect_exhausted() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::byte> data_;
  std::size_t offset_ = 0;
};

/// Wraps a payload in a frame: [u32 length][payload][u32 fnv1a32(payload)].
[[nodiscard]] std::vector<std::byte> frame_payload(std::span<const std::byte> payload);

/// Unwraps and verifies a frame; throws std::invalid_argument on length or
/// checksum mismatch.
[[nodiscard]] std::vector<std::byte> unframe_payload(std::span<const std::byte> frame);

}  // namespace rfid::wire
