// Figure 6 — "Comparing TRP versus UTRP" (4 panels: m = 5/10/20/30, c = 20).
//
// y-axis: frame size. TRP's f solves Eq. (2); UTRP's f solves Eq. (3)
// against a two-reader adversary with communication budget c, plus the
// paper's 5–10 slot safety margin (we use 8). Expected shape: UTRP sits only
// slightly above TRP, both shrinking as m grows.
#include <cstdint>

#include "bench_common.h"
#include "math/frame_optimizer.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const auto opt = bench::parse_figure_options(argc, argv);

  bench::banner("Figure 6: TRP vs UTRP frame sizes (c = " +
                std::to_string(opt.budget) +
                ", alpha = " + util::format_double(opt.alpha, 2) + ")");

  for (const std::uint64_t m : bench::tolerance_panels()) {
    util::Table table({"n", "trp_f", "utrp_f", "utrp_overhead_slots",
                       "expected_cprime", "eq3_detection"});
    std::vector<double> xs;
    util::ChartSeries trp_series{"TRP", {}, '*'};
    util::ChartSeries utrp_series{"UTRP", {}, 'o'};
    for (const std::uint64_t n : bench::tag_count_sweep(opt)) {
      if (m + 1 > n) continue;
      const auto trp = math::optimize_trp_frame(n, m, opt.alpha, opt.model);
      const auto utrp =
          math::optimize_utrp_frame(n, m, opt.alpha, opt.budget, 8, opt.model);
      table.begin_row();
      table.add_cell(static_cast<long long>(n));
      table.add_cell(static_cast<long long>(trp.frame_size));
      table.add_cell(static_cast<long long>(utrp.frame_size));
      table.add_cell(static_cast<long long>(utrp.frame_size) -
                     static_cast<long long>(trp.frame_size));
      table.add_cell(utrp.expected_cprime, 1);
      table.add_cell(utrp.predicted_detection, 4);
      xs.push_back(static_cast<double>(n));
      trp_series.ys.push_back(trp.frame_size);
      utrp_series.ys.push_back(utrp.frame_size);
    }
    std::cout << "--- Tolerate m=" << m << ", c=" << opt.budget << " ---\n";
    bench::emit(table, opt);
    bench::maybe_plot(opt, xs, {trp_series, utrp_series},
                      "frame size vs n (m=" + std::to_string(m) + ")");
  }
  return 0;
}
