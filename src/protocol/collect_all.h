// The paper's baseline: "collect all" — dynamic framed slotted ALOHA ID
// collection (Sec. 1, Sec. 6).
//
// The reader repeatedly announces a frame; each unidentified tag picks a
// slot and transmits its full ID. Singleton slots are collected and those
// tags silenced; collided tags retry in the next round. Following the
// evaluation setup, the frame size of each round equals the number of tags
// still unidentified (the optimum shown by Lee et al. [7]), with the first
// round at f = n. To honor the tolerance m, collection stops as soon as
// n − m IDs have been gathered; the reported cost is the sum of all frame
// sizes (Fig. 4's y-axis).
#pragma once

#include <cstdint>
#include <span>

#include "hash/slot_hash.h"
#include "radio/channel.h"
#include "radio/timing.h"
#include "tag/tag.h"
#include "util/random.h"

namespace rfid::protocol {

struct CollectAllConfig {
  /// Stop once this many IDs are collected (the paper uses n − m).
  std::uint64_t stop_after_collected = 0;
  /// Initial frame size; 0 means "number of present tags" (paper: f = n).
  std::uint32_t initial_frame = 0;
  radio::ChannelModel channel = {};
};

struct CollectAllResult {
  std::uint64_t total_slots = 0;      // Σ frame sizes over all rounds
  std::uint64_t rounds = 0;
  std::uint64_t collected = 0;        // IDs successfully read
  std::uint64_t empty_slots = 0;
  std::uint64_t singleton_slots = 0;
  std::uint64_t collision_slots = 0;

  /// Wall-clock cost under a timing model (IDs occupy long slots).
  [[nodiscard]] double elapsed_us(const radio::TimingModel& timing) const noexcept {
    return timing.collect_all_us(empty_slots, singleton_slots, collision_slots,
                                 rounds);
  }
};

/// Runs collect-all over the present tags. Each round uses a fresh random
/// number from `rng`; slot choice is the same h(id ⊕ r) mod f as TRP, so
/// baseline and protocol share the hashing substrate.
[[nodiscard]] CollectAllResult run_collect_all(std::span<const tag::Tag> present,
                                               const hash::SlotHasher& hasher,
                                               const CollectAllConfig& config,
                                               util::Rng& rng);

}  // namespace rfid::protocol
