// Query-tree (binary tree walking) ID collection — a second baseline.
//
// The related-work section cites tree-based anti-collision ([2], [3]): the
// reader broadcasts a growing ID prefix; tags whose ID matches reply. An
// empty response prunes the subtree, a lone reply yields an ID, a collision
// splits the prefix into prefix·0 and prefix·1. The protocol is
// deterministic (no RNG on tags) and memoryless, and its query count is
// n·(2 + log2(n/…)) -ish — worse than dynamic framed ALOHA for uniform IDs,
// which bench/bench_baselines quantifies against Fig. 4's collect-all.
//
// Prefixes match the most-significant bits of the tag's 64-bit slot word
// (the same word every other protocol hashes), walked depth-first exactly as
// a reader would; collection can stop early once `stop_after_collected` IDs
// are in hand.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "radio/channel.h"
#include "tag/tag.h"
#include "util/random.h"

namespace rfid::protocol {

struct TreeWalkResult {
  std::uint64_t total_queries = 0;  // every broadcast costs one slot
  std::uint64_t collected = 0;
  std::uint64_t empty_queries = 0;
  std::uint64_t singleton_queries = 0;
  std::uint64_t collision_queries = 0;
  /// Tags abandoned because distinct tags share a full 64-bit slot word:
  /// the walk cannot separate them at any depth, so the reader gives up on
  /// that leaf instead of looping forever.
  std::uint64_t unresolvable = 0;
  std::uint32_t max_depth = 0;  // longest prefix broadcast
};

/// Runs the query-tree protocol over the present tags. Stops once
/// `stop_after_collected` IDs are collected (<= present.size()).
[[nodiscard]] TreeWalkResult run_tree_walk(std::span<const tag::Tag> present,
                                           std::uint64_t stop_after_collected);

/// Outcome of splitting one collision slot with a directed prefix walk
/// (see `split_collision_slot`). The per-candidate vectors run parallel to
/// the `candidate_words` span passed in.
struct SlotSplitOutcome {
  /// Candidate proven present: an occupied prefix the candidate was the
  /// sole possible replier under (replies cannot be fabricated, so this is
  /// sound even on a lossy channel).
  std::vector<std::uint8_t> proven_present;
  /// Candidate covered by at least one prefix observed empty — one unit of
  /// absence evidence (a present tag can look absent only if its reply was
  /// lost, probability <= reply_loss_prob).
  std::vector<std::uint8_t> observed_absent;
  std::uint64_t queries = 0;
  std::uint64_t empty_queries = 0;
  /// Candidates abandoned at depth 64 because they share a slot word with
  /// another candidate under an occupied leaf — forever inseparable.
  std::uint64_t unresolvable = 0;
  std::uint32_t max_depth = 0;
};

/// Splits one ambiguous framed-slot with a *directed* query-tree walk: the
/// server knows exactly which enrolled tags could have replied in the slot
/// (`candidate_words`), so the reader only broadcasts prefixes that cover at
/// least one candidate — impossible subtrees cost nothing. `present_words`
/// are the slot words of the tags actually still answering (a subset of the
/// candidates); `channel` models per-reply loss and capture on each prefix
/// query. The root query is skipped: the framed slot itself already observed
/// the root as occupied.
[[nodiscard]] SlotSplitOutcome split_collision_slot(
    std::span<const std::uint64_t> candidate_words,
    std::span<const std::uint64_t> present_words,
    const radio::ChannelModel& channel, util::Rng& rng);

}  // namespace rfid::protocol
