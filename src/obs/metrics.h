// Dependency-free metrics: counters, gauges, histograms, labeled families.
//
// Design (mirrors the Prometheus client-library data model):
//
//  * An *instrument* (Counter, Gauge, Histogram) is a single time series.
//    Updates are lock-free — one relaxed atomic RMW per increment/observe —
//    so instruments can sit on the per-round hot paths of the protocol and
//    wire layers without perturbing what they measure.
//  * A *family* groups series of one name under a fixed set of label names
//    (e.g. rfidmon_rounds_total{protocol,outcome}). Resolving a labeled
//    series (`with(...)`) takes a mutex; callers on hot paths resolve once
//    and cache the returned reference, which stays valid for the registry's
//    lifetime (map nodes never move).
//  * A MetricsRegistry owns the families, rejects name collisions across
//    types, and produces a deterministic Snapshot for exposition
//    (expose.h): families sorted by name, series sorted by label values —
//    two identical workloads render byte-identical output.
//
// Histograms come in two flavors built on one implementation: explicit
// fixed buckets (Histogram::exponential_bounds or any sorted vector) and
// HDR-style log2-linear buckets (Histogram::hdr_bounds), whose quantile
// estimates carry a bounded relative error of 1/sub_buckets_per_octave
// (asserted by tests/obs_test.cpp on randomized inputs).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rfid::obs {

/// Monotone event count. Relaxed atomics: totals are exact (asserted by the
/// multi-threaded hammer tests) but carry no ordering guarantees.
class Counter {
 public:
  void inc(std::uint64_t by = 1) noexcept {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value that can go up or down. Stored as the bit pattern of a double in
/// a 64-bit atomic (the zero pattern is 0.0, so default-init is correct);
/// add() is a CAS loop, set() a plain store.
class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  void add(double d) noexcept {
    std::uint64_t old = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        old, std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + d),
        std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{0};
};

/// Bucketed distribution of non-negative observations. The bucket layout is
/// immutable after construction, so observe() is wait-free: one binary
/// search plus three relaxed RMWs.
class Histogram {
 public:
  /// `upper_bounds` are the finite inclusive bucket ceilings, strictly
  /// increasing and non-empty; an overflow (+Inf) bucket is implicit.
  explicit Histogram(std::vector<double> upper_bounds);

  /// `count` bounds at start, start*factor, start*factor^2, ...
  [[nodiscard]] static std::vector<double> exponential_bounds(
      double start, double factor, std::size_t count);

  /// HDR-style log2-linear bounds covering [min_value, max_value]: every
  /// octave [s, 2s) is split into `sub_buckets_per_octave` equal-width
  /// buckets, so any bucket's width is at most lower_edge /
  /// sub_buckets_per_octave and quantile estimates carry relative error
  /// <= 1 / sub_buckets_per_octave for values >= min_value.
  [[nodiscard]] static std::vector<double> hdr_bounds(
      double min_value, double max_value, unsigned sub_buckets_per_octave);

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket (non-cumulative) count; index bounds_.size() is overflow.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t index) const;

  /// Estimates the q-quantile (q in [0, 1]) by locating the bucket holding
  /// the target rank and interpolating linearly inside it. Returns 0 when
  /// empty and +Inf when the rank falls in the overflow bucket. Assumes
  /// non-negative observations (the first bucket's lower edge is 0).
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // bit pattern of a double
};

namespace detail {

/// Shared label plumbing: validates cardinality and owns the series map.
/// `Series` must be constructible from `ExtraArgs...` (empty for
/// Counter/Gauge, the bucket bounds for Histogram). Map nodes are stable,
/// so returned references live as long as the family.
template <typename Series>
class FamilyBase {
 public:
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& help() const noexcept { return help_; }
  [[nodiscard]] const std::vector<std::string>& label_names() const noexcept {
    return label_names_;
  }

 protected:
  FamilyBase(std::string name, std::string help,
             std::vector<std::string> label_names)
      : name_(std::move(name)),
        help_(std::move(help)),
        label_names_(std::move(label_names)) {}

  template <typename... CtorArgs>
  Series& series(std::initializer_list<std::string_view> label_values,
                 const CtorArgs&... args);

  /// Sorted copy of (label_values, series pointer) under the lock.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [labels, series] : series_) fn(labels, series);
  }

 private:
  std::string name_;
  std::string help_;
  std::vector<std::string> label_names_;
  mutable std::mutex mu_;
  std::map<std::vector<std::string>, Series> series_;
};

}  // namespace detail

class CounterFamily : public detail::FamilyBase<Counter> {
 public:
  /// Resolves (creating on first use) the series for these label values —
  /// one value per label name, in declaration order. Takes a mutex: resolve
  /// once and cache the reference on hot paths.
  Counter& with(std::initializer_list<std::string_view> label_values) {
    return series(label_values);
  }

 private:
  friend class MetricsRegistry;
  using FamilyBase::FamilyBase;
};

class GaugeFamily : public detail::FamilyBase<Gauge> {
 public:
  Gauge& with(std::initializer_list<std::string_view> label_values) {
    return series(label_values);
  }

 private:
  friend class MetricsRegistry;
  using FamilyBase::FamilyBase;
};

class HistogramFamily : public detail::FamilyBase<Histogram> {
 public:
  Histogram& with(std::initializer_list<std::string_view> label_values) {
    return series(label_values, bounds_);
  }
  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept {
    return bounds_;
  }

 private:
  friend class MetricsRegistry;
  HistogramFamily(std::string name, std::string help,
                  std::vector<std::string> label_names,
                  std::vector<double> bounds)
      : FamilyBase(std::move(name), std::move(help), std::move(label_names)),
        bounds_(std::move(bounds)) {}

  std::vector<double> bounds_;
};

/// Point-in-time copy of a registry, ordered deterministically (families by
/// name, series by label values). What the exposition formats consume.
struct Snapshot {
  struct Series {
    std::vector<std::string> label_values;
    double value = 0.0;                       // counters/gauges
    std::vector<std::uint64_t> bucket_counts; // histograms (incl. overflow)
    std::uint64_t count = 0;                  // histograms
    double sum = 0.0;                         // histograms
  };
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Family {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::vector<std::string> label_names;
    std::vector<double> upper_bounds;  // histograms only
    std::vector<Series> series;
  };
  std::vector<Family> families;  // sorted by name
};

/// Owns every family. Registration is idempotent: re-registering a name
/// returns the existing family if the type, label names, and (histogram)
/// bounds match, and throws std::invalid_argument otherwise. Metric and
/// label names must match [a-zA-Z_:][a-zA-Z0-9_:]* (label names without the
/// colon). Thread-safe; snapshot() sees a consistent family list but
/// individual values are read with relaxed loads.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  CounterFamily& counter_family(std::string_view name, std::string_view help,
                                std::initializer_list<std::string_view> labels);
  GaugeFamily& gauge_family(std::string_view name, std::string_view help,
                            std::initializer_list<std::string_view> labels);
  HistogramFamily& histogram_family(
      std::string_view name, std::string_view help,
      std::initializer_list<std::string_view> labels,
      std::vector<double> upper_bounds);

  /// Label-less conveniences: a family with no label names, one series.
  Counter& counter(std::string_view name, std::string_view help) {
    return counter_family(name, help, {}).with({});
  }
  Gauge& gauge(std::string_view name, std::string_view help) {
    return gauge_family(name, help, {}).with({});
  }
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> upper_bounds) {
    return histogram_family(name, help, {}, std::move(upper_bounds)).with({});
  }

  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<CounterFamily>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<GaugeFamily>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramFamily>, std::less<>> histograms_;
};

// ---------------------------------------------------------------- inline --

namespace detail {

template <typename Series>
template <typename... CtorArgs>
Series& FamilyBase<Series>::series(
    std::initializer_list<std::string_view> label_values,
    const CtorArgs&... args) {
  if (label_values.size() != label_names_.size()) {
    throw std::invalid_argument(
        "metric family '" + name_ + "' takes " +
        std::to_string(label_names_.size()) + " label value(s), got " +
        std::to_string(label_values.size()));
  }
  std::vector<std::string> key;
  key.reserve(label_values.size());
  for (const std::string_view v : label_values) key.emplace_back(v);
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(key);
  if (it != series_.end()) return it->second;
  return series_
      .emplace(std::piecewise_construct,
               std::forward_as_tuple(std::move(key)),
               std::forward_as_tuple(args...))
      .first->second;
}

}  // namespace detail

}  // namespace rfid::obs
