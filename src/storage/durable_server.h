// DurableInventoryServer: crash-consistent wrapper around InventoryServer.
//
// Discipline (classic WAL + checkpoint, the same checkpoint/recover shape
// Jacobsen et al. apply to unreliable reader sessions):
//
//  * Every mutation (enroll, TRP/UTRP round submission, resync) is appended
//    to the current generation's journal and flushed BEFORE it is applied to
//    the in-memory server. A mutation is durable iff its record is fully on
//    storage; replay regenerates its effects deterministically.
//  * rotate() checkpoints: the full state (snapshot + AUX history, see
//    server_state.h) is written to a temp file, flushed, and atomically
//    renamed to snapshot.<g+1>; a fresh journal.<g+1> is started and
//    generations older than keep_generations are removed. A crash at any
//    point inside rotate() recovers to the exact pre-rotation state.
//  * Recovery (the constructor) loads the newest snapshot generation that
//    parses and checksums clean, then replays the journal chain from that
//    generation forward, truncating a torn or rotted journal tail instead of
//    failing. If anything abnormal was seen (skipped snapshot, dropped
//    bytes), it immediately re-checkpoints so the on-storage state is clean
//    again.
//
// Atomicity invariant (enforced by tests/storage_torture_test.cpp): kill the
// process at ANY storage operation — torn mid-append, before a flush, between
// the rotation steps — and the recovered server is bit-identical (per
// server_state.h's dump_state fingerprint) to either the pre-mutation or the
// post-mutation state, never anything in between.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/backend.h"
#include "storage/journal.h"
#include "storage/server_state.h"

namespace rfid::storage {

struct DurabilityConfig {
  /// File-name prefix: files are "<prefix>.snapshot.<g>", "<prefix>.journal.<g>".
  std::string prefix = "rfidmon";
  /// Auto-checkpoint after this many journal records (0 = manual rotate() only).
  std::uint64_t rotate_after_records = 0;
  /// Generations retained after a rotation (>= 1). Two generations let
  /// recovery fall back across a rotted snapshot without losing history.
  std::uint32_t keep_generations = 2;
  /// Optional observability (not owned; must outlive the server). Records
  /// journal appends/bytes/failures, rotations, and the recovery series;
  /// also attaches the wrapped InventoryServer to the registry — but only
  /// AFTER recovery completes, so journal replay does not re-count
  /// historical rounds as live traffic.
  obs::MetricsRegistry* metrics = nullptr;
  /// Clock (microseconds) used to time recovery. Empty = the process steady
  /// clock; inject a manual clock for deterministic tests.
  obs::Clock clock = {};
};

/// What recovery found and did — surfaced so operators (and tests) can tell
/// a clean restart from one that healed damage.
struct RecoveryReport {
  bool snapshot_loaded = false;        // false: rebuilt from journals alone
  std::uint64_t base_generation = 0;   // snapshot generation loaded
  std::uint32_t snapshots_skipped = 0; // rotted/torn snapshots passed over
  std::uint64_t journals_replayed = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t records_skipped = 0;   // records that failed to apply
  std::uint64_t truncated_bytes = 0;   // torn/rotted journal bytes dropped
  bool rotated_after_recovery = false; // re-checkpointed to heal damage

  [[nodiscard]] bool clean() const noexcept {
    return snapshots_skipped == 0 && truncated_bytes == 0 &&
           records_skipped == 0;
  }
};

class DurableInventoryServer {
 public:
  /// Opens the store: recovers whatever state the backend holds (an empty
  /// backend yields an empty server) and readies the current journal.
  explicit DurableInventoryServer(StorageBackend& backend,
                                  DurabilityConfig config = {},
                                  hash::SlotHasher hasher = hash::SlotHasher{});

  // Mutations — journaled, then applied. Signatures mirror InventoryServer.
  server::GroupId enroll(const tag::TagSet& tags, server::GroupConfig config);
  protocol::Verdict submit_trp(server::GroupId id,
                               const protocol::TrpChallenge& challenge,
                               const bits::Bitstring& reported);
  protocol::Verdict submit_utrp(server::GroupId id,
                                const protocol::UtrpChallenge& challenge,
                                const bits::Bitstring& reported,
                                bool deadline_met);
  void resync(server::GroupId id, const tag::TagSet& audited);

  // Reads — challenges mutate nothing (randomness comes from the caller's
  // rng; the journal records the challenge actually submitted), so they and
  // every query forward to the wrapped server.
  [[nodiscard]] protocol::TrpChallenge challenge_trp(server::GroupId id,
                                                     util::Rng& rng) const {
    return server_.challenge_trp(id, rng);
  }
  [[nodiscard]] protocol::UtrpChallenge challenge_utrp(server::GroupId id,
                                                       util::Rng& rng) const {
    return server_.challenge_utrp(id, rng);
  }
  [[nodiscard]] const server::InventoryServer& server() const noexcept {
    return server_;
  }

  /// Checkpoint now: snapshot + fresh journal + old-generation cleanup.
  void rotate();

  [[nodiscard]] const RecoveryReport& recovery_report() const noexcept {
    return recovery_;
  }
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }
  /// Records appended to the current journal since the last rotation.
  [[nodiscard]] std::uint64_t journal_records() const noexcept {
    return journal_records_;
  }

  [[nodiscard]] std::string snapshot_name(std::uint64_t generation) const;
  [[nodiscard]] std::string journal_name(std::uint64_t generation) const;

 private:
  void recover();
  void journal_append(const JournalRecord& record);
  void replay(const JournalRecord& record);
  void remove_stale_generations();
  void record_recovery_metrics(double duration_us);

  /// Cached series handles; null when DurabilityConfig carried no registry.
  struct Instruments {
    obs::Counter* journal_appends = nullptr;
    obs::Counter* journal_bytes = nullptr;
    obs::Counter* journal_append_failures = nullptr;
    obs::Counter* rotations = nullptr;
  };

  StorageBackend& backend_;
  DurabilityConfig config_;
  hash::SlotHasher hasher_;
  server::InventoryServer server_;
  RecoveryReport recovery_;
  std::uint64_t generation_ = 0;
  std::uint64_t journal_records_ = 0;
  Instruments instruments_;
};

}  // namespace rfid::storage
