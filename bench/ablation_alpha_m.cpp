// Ablation — the tolerance/confidence trade-off of Sec. 3.
//
// "A higher tolerance (m) and lower confidence level (alpha) will result in
// faster performance with less accuracy." This bench maps that surface:
// Eq. (2) frame size across a grid of m and alpha for a fixed population.
#include <cstdint>

#include "bench_common.h"
#include "math/frame_optimizer.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const auto opt = bench::parse_figure_options(argc, argv);

  constexpr std::uint64_t kTags = 1000;
  bench::banner("Ablation: Eq. (2) frame size across (m, alpha), n = " +
                std::to_string(kTags));

  const std::vector<double> alphas{0.80, 0.90, 0.95, 0.99, 0.999};
  std::vector<std::string> headers{"m"};
  for (const double a : alphas) headers.push_back("alpha=" + util::format_double(a, 3));
  util::Table table(headers);

  for (const std::uint64_t m : {0u, 1u, 2u, 5u, 10u, 20u, 30u, 50u, 100u}) {
    table.begin_row();
    table.add_cell(static_cast<long long>(m));
    for (const double a : alphas) {
      const auto plan = math::optimize_trp_frame(kTags, m, a);
      table.add_cell(static_cast<long long>(plan.frame_size));
    }
  }
  bench::emit(table, opt);

  // The same surface for UTRP at the paper's c = 20.
  bench::banner("Same grid for UTRP (Eq. 3 + slack, c = " +
                std::to_string(opt.budget) + ")");
  util::Table utable(headers);
  for (const std::uint64_t m : {0u, 1u, 2u, 5u, 10u, 20u, 30u, 50u, 100u}) {
    utable.begin_row();
    utable.add_cell(static_cast<long long>(m));
    for (const double a : alphas) {
      const auto plan = math::optimize_utrp_frame(kTags, m, a, opt.budget);
      utable.add_cell(static_cast<long long>(plan.frame_size));
    }
  }
  bench::emit(utable, opt);
  return 0;
}
