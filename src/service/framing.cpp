#include "service/framing.h"

#include <cstring>

#include "hash/fnv.h"

namespace rfid::service {

namespace {

constexpr std::size_t kHeaderBytes = 5;    // type:u8 + length:u32
constexpr std::size_t kChecksumBytes = 4;  // fnv1a32

std::uint32_t read_u32le(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;  // little-endian hosts only, like wire/codec.cpp
}

}  // namespace

std::string_view to_string(FrameType type) noexcept {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kEnroll: return "enroll";
    case FrameType::kStartRun: return "start_run";
    case FrameType::kStartWatch: return "start_watch";
    case FrameType::kSubscribe: return "subscribe";
    case FrameType::kPing: return "ping";
    case FrameType::kGoodbye: return "goodbye";
    case FrameType::kHelloOk: return "hello_ok";
    case FrameType::kEnrollOk: return "enroll_ok";
    case FrameType::kRunAdmitted: return "run_admitted";
    case FrameType::kBackpressure: return "backpressure";
    case FrameType::kRunVerdict: return "run_verdict";
    case FrameType::kRunAlert: return "run_alert";
    case FrameType::kSubscribeOk: return "subscribe_ok";
    case FrameType::kTenantAlert: return "tenant_alert";
    case FrameType::kWatchDone: return "watch_done";
    case FrameType::kPong: return "pong";
    case FrameType::kError: return "error";
    case FrameType::kShutdown: return "shutdown";
  }
  return "unknown";
}

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kOversizedFrame: return "oversized_frame";
    case ErrorCode::kBadChecksum: return "bad_checksum";
    case ErrorCode::kUnknownType: return "unknown_type";
    case ErrorCode::kMalformedPayload: return "malformed_payload";
    case ErrorCode::kBadVersion: return "bad_version";
    case ErrorCode::kHelloRequired: return "hello_required";
    case ErrorCode::kUnknownInventory: return "unknown_inventory";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::vector<std::byte> encode_frame(FrameType type,
                                    std::span<const std::byte> payload) {
  std::vector<std::byte> frame;
  frame.reserve(kHeaderBytes + payload.size() + kChecksumBytes);
  frame.push_back(static_cast<std::byte>(type));
  const auto len = static_cast<std::uint32_t>(payload.size());
  frame.resize(kHeaderBytes);
  std::memcpy(frame.data() + 1, &len, sizeof(len));
  frame.insert(frame.end(), payload.begin(), payload.end());
  const std::uint32_t checksum = hash::fnv1a32(
      std::span<const std::byte>(frame.data(), kHeaderBytes + payload.size()));
  const std::size_t tail = frame.size();
  frame.resize(tail + kChecksumBytes);
  std::memcpy(frame.data() + tail, &checksum, sizeof(checksum));
  return frame;
}

ErrorCode FrameReader::feed(std::span<const std::byte> data,
                            std::vector<Frame>& out) {
  if (poisoned_) return ErrorCode::kNone;  // connection already condemned
  buffer_.insert(buffer_.end(), data.begin(), data.end());

  for (;;) {
    const std::size_t available = buffer_.size() - consumed_;
    if (available < kHeaderBytes) break;
    const std::byte* head = buffer_.data() + consumed_;
    const std::uint32_t length = read_u32le(head + 1);
    // Reject a hostile length prefix before reserving a single byte for it.
    if (length > max_payload_) {
      poisoned_ = true;
      return ErrorCode::kOversizedFrame;
    }
    const std::size_t total = kHeaderBytes + length + kChecksumBytes;
    if (available < total) break;  // truncated tail: wait for more bytes
    const std::uint32_t declared = read_u32le(head + kHeaderBytes + length);
    const std::uint32_t actual = hash::fnv1a32(
        std::span<const std::byte>(head, kHeaderBytes + length));
    if (declared != actual) {
      poisoned_ = true;
      return ErrorCode::kBadChecksum;
    }
    Frame frame;
    frame.type = static_cast<std::uint8_t>(*head);
    frame.payload.assign(head + kHeaderBytes, head + kHeaderBytes + length);
    out.push_back(std::move(frame));
    consumed_ += total;
  }

  // Compact once the parsed prefix dominates, keeping feed() amortized O(n).
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return ErrorCode::kNone;
}

}  // namespace rfid::service
