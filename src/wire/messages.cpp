#include "wire/messages.h"

#include "util/expect.h"

namespace rfid::wire {

namespace {

[[nodiscard]] std::vector<std::byte> finish(Encoder&& enc) {
  return frame_payload(std::move(enc).take());
}

[[nodiscard]] Decoder open(std::vector<std::byte>& storage,
                           std::span<const std::byte> frame,
                           MessageType expected) {
  storage = unframe_payload(frame);
  Decoder dec(storage);
  const auto type = static_cast<MessageType>(dec.get_u8());
  RFID_EXPECT(type == expected, "unexpected message type");
  return dec;
}

}  // namespace

MessageType peek_type(std::span<const std::byte> frame) {
  const auto payload = unframe_payload(frame);
  RFID_EXPECT(!payload.empty(), "empty message payload");
  return static_cast<MessageType>(payload.front());
}

std::vector<std::byte> encode(const ChallengeRequest& msg) {
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(MessageType::kChallengeRequest));
  enc.put_string(msg.group_name);
  enc.put_u64(msg.round);
  return finish(std::move(enc));
}

std::vector<std::byte> encode(const TrpChallengeMsg& msg) {
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(MessageType::kTrpChallenge));
  enc.put_u64(msg.round);
  enc.put_u32(msg.challenge.frame_size);
  enc.put_u64(msg.challenge.r);
  return finish(std::move(enc));
}

std::vector<std::byte> encode(const UtrpChallengeMsg& msg) {
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(MessageType::kUtrpChallenge));
  enc.put_u64(msg.round);
  enc.put_u32(msg.challenge.frame_size);
  enc.put_u32(static_cast<std::uint32_t>(msg.challenge.seeds.size()));
  for (const std::uint64_t seed : msg.challenge.seeds) enc.put_u64(seed);
  return finish(std::move(enc));
}

std::vector<std::byte> encode(const BitstringReport& msg) {
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(MessageType::kBitstringReport));
  enc.put_string(msg.group_name);
  enc.put_u64(msg.round);
  enc.put_u64(msg.bitstring.size());
  enc.put_string(msg.bitstring.to_hex());
  enc.put_f64(msg.scan_time_us);
  return finish(std::move(enc));
}

std::vector<std::byte> encode(const VerdictAck& msg) {
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(MessageType::kVerdictAck));
  enc.put_u64(msg.round);
  enc.put_u8(msg.intact ? 1 : 0);
  return finish(std::move(enc));
}

ChallengeRequest decode_challenge_request(std::span<const std::byte> frame) {
  std::vector<std::byte> storage;
  Decoder dec = open(storage, frame, MessageType::kChallengeRequest);
  ChallengeRequest msg;
  msg.group_name = dec.get_string();
  msg.round = dec.get_u64();
  dec.expect_exhausted();
  return msg;
}

TrpChallengeMsg decode_trp_challenge(std::span<const std::byte> frame) {
  std::vector<std::byte> storage;
  Decoder dec = open(storage, frame, MessageType::kTrpChallenge);
  TrpChallengeMsg msg;
  msg.round = dec.get_u64();
  msg.challenge.frame_size = dec.get_u32();
  msg.challenge.r = dec.get_u64();
  dec.expect_exhausted();
  RFID_EXPECT(msg.challenge.frame_size >= 1, "challenge has no slots");
  return msg;
}

UtrpChallengeMsg decode_utrp_challenge(std::span<const std::byte> frame) {
  std::vector<std::byte> storage;
  Decoder dec = open(storage, frame, MessageType::kUtrpChallenge);
  UtrpChallengeMsg msg;
  msg.round = dec.get_u64();
  msg.challenge.frame_size = dec.get_u32();
  const std::uint32_t count = dec.get_u32();
  msg.challenge.seeds.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    msg.challenge.seeds.push_back(dec.get_u64());
  }
  dec.expect_exhausted();
  RFID_EXPECT(msg.challenge.frame_size >= 1, "challenge has no slots");
  RFID_EXPECT(!msg.challenge.seeds.empty(), "challenge has no seeds");
  return msg;
}

BitstringReport decode_bitstring_report(std::span<const std::byte> frame) {
  std::vector<std::byte> storage;
  Decoder dec = open(storage, frame, MessageType::kBitstringReport);
  BitstringReport msg;
  msg.group_name = dec.get_string();
  msg.round = dec.get_u64();
  const std::uint64_t bits = dec.get_u64();
  msg.bitstring = bits::Bitstring::from_hex(bits, dec.get_string());
  msg.scan_time_us = dec.get_f64();
  dec.expect_exhausted();
  return msg;
}

VerdictAck decode_verdict_ack(std::span<const std::byte> frame) {
  std::vector<std::byte> storage;
  Decoder dec = open(storage, frame, MessageType::kVerdictAck);
  VerdictAck msg;
  msg.round = dec.get_u64();
  msg.intact = dec.get_u8() != 0;
  dec.expect_exhausted();
  return msg;
}

}  // namespace rfid::wire
