// Terminal-native plotting for the figure benches.
//
// The paper's figures are line/bar plots; the benches reproduce the numbers
// as tables, and — behind --plot — as ASCII charts so the curve shapes
// (linear growth, crossovers, the α-line hugging of Figs. 5/7) are visible
// without leaving the terminal. One glyph per series, shared axes, a legend,
// and an optional horizontal reference line (the α threshold).
#pragma once

#include <string>
#include <vector>

namespace rfid::util {

struct ChartSeries {
  std::string name;
  std::vector<double> ys;  // one value per x position
  char glyph = '*';
};

struct ChartOptions {
  std::size_t width = 72;   // plot area columns (x positions are resampled)
  std::size_t height = 16;  // plot area rows
  std::string title;
  /// If set (not NaN), draws a horizontal reference line at this y.
  double reference_y = kNoReference;
  static constexpr double kNoReference = -1e308;
};

/// Renders the series over shared x values as a multi-line string.
/// All series must have ys.size() == xs.size() >= 2; y range auto-scales to
/// the data (and the reference line, when present).
[[nodiscard]] std::string render_ascii_chart(const std::vector<double>& xs,
                                             const std::vector<ChartSeries>& series,
                                             const ChartOptions& options = {});

}  // namespace rfid::util
