#include "hash/murmur.h"

#include <cstring>

namespace rfid::hash {

namespace {

[[nodiscard]] constexpr std::uint32_t rotl32(std::uint32_t x, int r) noexcept {
  return (x << r) | (x >> (32 - r));
}

}  // namespace

std::uint32_t murmur3_x86_32(std::span<const std::byte> data,
                             std::uint32_t seed) noexcept {
  constexpr std::uint32_t c1 = 0xcc9e2d51U;
  constexpr std::uint32_t c2 = 0x1b873593U;

  std::uint32_t h = seed;
  const std::size_t nblocks = data.size() / 4;

  for (std::size_t i = 0; i < nblocks; ++i) {
    std::uint32_t k;
    std::memcpy(&k, data.data() + i * 4, 4);  // little-endian assumed (x86/ARM)
    k *= c1;
    k = rotl32(k, 15);
    k *= c2;
    h ^= k;
    h = rotl32(h, 13);
    h = h * 5 + 0xe6546b64U;
  }

  std::uint32_t k1 = 0;
  const std::size_t tail = nblocks * 4;
  switch (data.size() & 3U) {
    case 3: k1 ^= static_cast<std::uint32_t>(data[tail + 2]) << 16; [[fallthrough]];
    case 2: k1 ^= static_cast<std::uint32_t>(data[tail + 1]) << 8; [[fallthrough]];
    case 1:
      k1 ^= static_cast<std::uint32_t>(data[tail]);
      k1 *= c1;
      k1 = rotl32(k1, 15);
      k1 *= c2;
      h ^= k1;
      break;
    default: break;
  }

  h ^= static_cast<std::uint32_t>(data.size());
  return murmur3_fmix32(h);
}

}  // namespace rfid::hash
