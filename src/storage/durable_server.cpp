#include "storage/durable_server.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "obs/catalog.h"
#include "util/expect.h"

namespace rfid::storage {

namespace {

/// Parses "<stem><digits>" -> digits, rejecting anything else.
[[nodiscard]] std::optional<std::uint64_t> parse_generation(
    const std::string& name, const std::string& stem) {
  if (name.size() <= stem.size() || name.rfind(stem, 0) != 0) return std::nullopt;
  const std::string digits = name.substr(stem.size());
  if (digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  try {
    return std::stoull(digits);
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

}  // namespace

DurableInventoryServer::DurableInventoryServer(StorageBackend& backend,
                                               DurabilityConfig config,
                                               hash::SlotHasher hasher)
    : backend_(backend),
      config_(std::move(config)),
      hasher_(hasher),
      server_(hasher) {
  RFID_EXPECT(config_.keep_generations >= 1, "must keep at least one generation");
  RFID_EXPECT(!config_.prefix.empty(), "prefix must be non-empty");
  if (config_.metrics != nullptr) {
    namespace cat = obs::catalog;
    obs::MetricsRegistry& reg = *config_.metrics;
    instruments_.journal_appends = &cat::journal_appends_total(reg);
    instruments_.journal_bytes = &cat::journal_bytes_total(reg);
    instruments_.journal_append_failures =
        &cat::journal_append_failures_total(reg);
    instruments_.rotations = &cat::snapshot_rotations_total(reg);
    if (!config_.clock) config_.clock = obs::Clock(obs::steady_now_us);
  }
  const double recovery_start_us =
      config_.clock ? config_.clock() : 0.0;
  recover();
  if (config_.metrics != nullptr) {
    record_recovery_metrics(config_.clock() - recovery_start_us);
    // Attach the wrapped server only now: replaying the journal above must
    // not re-count historical rounds as live verdict/alert traffic.
    server_.attach_metrics(config_.metrics);
  }
}

void DurableInventoryServer::record_recovery_metrics(double duration_us) {
  namespace cat = obs::catalog;
  obs::MetricsRegistry& reg = *config_.metrics;
  cat::recoveries_total(reg, recovery_.clean() ? "true" : "false").inc();
  cat::recovery_duration_us(reg).observe(duration_us);
  cat::recovery_records_replayed_total(reg).inc(recovery_.records_replayed);
  cat::recovery_truncated_bytes_total(reg).inc(recovery_.truncated_bytes);
  cat::recovery_snapshots_skipped_total(reg).inc(recovery_.snapshots_skipped);
  if (recovery_.rotated_after_recovery) cat::recovery_healed_total(reg).inc();
}

std::string DurableInventoryServer::snapshot_name(std::uint64_t generation) const {
  return config_.prefix + ".snapshot." + std::to_string(generation);
}

std::string DurableInventoryServer::journal_name(std::uint64_t generation) const {
  return config_.prefix + ".journal." + std::to_string(generation);
}

void DurableInventoryServer::recover() {
  // A stale temp file is a checkpoint that never committed; discard it.
  const std::string tmp = config_.prefix + ".snapshot.tmp";
  if (backend_.exists(tmp)) backend_.remove(tmp);

  std::set<std::uint64_t> snapshot_gens;
  std::set<std::uint64_t> journal_gens;
  for (const std::string& name : backend_.list()) {
    if (const auto g = parse_generation(name, config_.prefix + ".snapshot.")) {
      snapshot_gens.insert(*g);
    } else if (const auto j = parse_generation(name, config_.prefix + ".journal.")) {
      journal_gens.insert(*j);
    }
  }
  std::uint64_t newest = 0;
  if (!snapshot_gens.empty()) newest = std::max(newest, *snapshot_gens.rbegin());
  if (!journal_gens.empty()) newest = std::max(newest, *journal_gens.rbegin());

  // Newest snapshot that parses and checksums clean wins; rotted or torn
  // ones are skipped (the journal chain below re-derives their contents).
  PersistedState base;
  for (auto it = snapshot_gens.rbegin(); it != snapshot_gens.rend(); ++it) {
    try {
      std::istringstream is(backend_.read(snapshot_name(*it)));
      base = read_state(is);
      recovery_.snapshot_loaded = true;
      recovery_.base_generation = *it;
      break;
    } catch (const std::exception&) {
      ++recovery_.snapshots_skipped;
    }
  }
  server_ = recovery_.snapshot_loaded ? build_server(base, hasher_)
                                      : server::InventoryServer(hasher_);

  bool chain_broken = recovery_.snapshots_skipped > 0;
  bool chain_usable = true;
  std::uint64_t start = 0;
  if (recovery_.snapshot_loaded) {
    start = recovery_.base_generation;
  } else if (!snapshot_gens.empty() && !journal_gens.contains(0)) {
    // Every snapshot is damaged and the from-empty chain (journal.0 onward)
    // is gone: journals whose base snapshot is unreadable cannot be
    // replayed. Recover what we have — an empty server — and re-checkpoint.
    chain_usable = false;
  }
  // Replay the journal chain: journal.g's final state is snapshot.(g+1)'s
  // contents, so a run of consecutive journals substitutes for any snapshot
  // we failed to read above.
  if (chain_usable) {
    for (std::uint64_t g = start; g <= newest; ++g) {
      if (!backend_.exists(journal_name(g))) {
        if (g < newest) chain_broken = true;  // lost a middle link
        break;
      }
      const JournalScan scan = scan_journal(backend_.read(journal_name(g)));
      if (!scan.header_valid) {
        recovery_.truncated_bytes += scan.dropped_bytes;
        chain_broken = true;
        break;
      }
      journal_records_ = 0;
      bool record_failed = false;
      for (const JournalRecord& record : scan.records) {
        try {
          replay(record);
          ++recovery_.records_replayed;
          ++journal_records_;
        } catch (const std::exception&) {
          // A record that journaled but no longer applies (should not
          // happen: appends are pre-validated). Everything after it may
          // depend on its effects, so the chain stops here.
          ++recovery_.records_skipped;
          record_failed = true;
          break;
        }
      }
      ++recovery_.journals_replayed;
      if (record_failed || scan.dropped_bytes > 0) {
        recovery_.truncated_bytes += scan.dropped_bytes;
        chain_broken = true;
        break;
      }
    }
  }

  generation_ = newest;
  if (!backend_.exists(journal_name(generation_))) {
    backend_.append(journal_name(generation_), std::string(kJournalMagic));
    backend_.flush(journal_name(generation_));
    journal_records_ = 0;
  }
  if (chain_broken) {
    // Heal: re-checkpoint the recovered state so the next recovery reads one
    // clean snapshot instead of re-walking the damage.
    rotate();
    recovery_.rotated_after_recovery = true;
  }
}

void DurableInventoryServer::replay(const JournalRecord& record) {
  if (const auto* enroll = std::get_if<EnrollRecord>(&record)) {
    (void)server_.enroll(enroll->tags, enroll->config);
  } else if (const auto* trp = std::get_if<TrpRoundRecord>(&record)) {
    (void)server_.submit_trp(server::GroupId{trp->group}, trp->challenge,
                             trp->reported);
  } else if (const auto* utrp = std::get_if<UtrpRoundRecord>(&record)) {
    (void)server_.submit_utrp(server::GroupId{utrp->group}, utrp->challenge,
                              utrp->reported, utrp->deadline_met);
  } else {
    const auto& resync = std::get<ResyncRecord>(record);
    server_.resync(server::GroupId{resync.group}, resync.audited);
  }
}

void DurableInventoryServer::journal_append(const JournalRecord& record) {
  // Auto-checkpoint BEFORE appending, never after: at this point the previous
  // mutation is fully applied, so the snapshot is complete. Rotating after
  // the append would checkpoint a server that has not yet applied `record`
  // while abandoning the journal that carries it — losing the mutation.
  if (config_.rotate_after_records > 0 &&
      journal_records_ >= config_.rotate_after_records) {
    rotate();
  }
  const std::string name = journal_name(generation_);
  const std::string encoded = encode_record(record);
  try {
    backend_.append(name, encoded);
    backend_.flush(name);
  } catch (const IoError&) {
    if (instruments_.journal_append_failures != nullptr) {
      instruments_.journal_append_failures->inc();
    }
    // The failed append may have landed a torn prefix, and a torn frame
    // swallows every record behind it (scan_journal truncates there). Abandon
    // this journal by checkpointing onto a fresh generation, then surface the
    // failure — the mutation did not happen. Only IoError is healed here: an
    // injected crash (fault/storage_fault.h) is the end of the process and
    // must propagate without further storage traffic.
    rotate();
    throw;
  }
  ++journal_records_;
  if (instruments_.journal_appends != nullptr) {
    instruments_.journal_appends->inc();
    instruments_.journal_bytes->inc(encoded.size());
  }
}

server::GroupId DurableInventoryServer::enroll(const tag::TagSet& tags,
                                               server::GroupConfig config) {
  // Pre-validate everything replay relies on: a record must never be
  // journaled unless applying it is guaranteed to succeed.
  RFID_EXPECT(!tags.empty(), "cannot enroll an empty group");
  RFID_EXPECT(config.name.find('\n') == std::string::npos,
              "group names must be single-line");
  for (std::size_t i = 0; i < server_.group_count(); ++i) {
    RFID_EXPECT(server_.config(server::GroupId{i}).name != config.name,
                "duplicate group name (snapshots key groups by name)");
  }
  journal_append(EnrollRecord{config, tags});
  return server_.enroll(tags, std::move(config));
}

protocol::Verdict DurableInventoryServer::submit_trp(
    server::GroupId id, const protocol::TrpChallenge& challenge,
    const bits::Bitstring& reported) {
  RFID_EXPECT(server_.config(id).protocol == server::ProtocolKind::kTrp,
              "group is not a TRP group");
  RFID_EXPECT(reported.size() == challenge.frame_size,
              "reported bitstring must span the challenge frame");
  journal_append(TrpRoundRecord{id.index, challenge, reported});
  return server_.submit_trp(id, challenge, reported);
}

protocol::Verdict DurableInventoryServer::submit_utrp(
    server::GroupId id, const protocol::UtrpChallenge& challenge,
    const bits::Bitstring& reported, bool deadline_met) {
  RFID_EXPECT(server_.config(id).protocol == server::ProtocolKind::kUtrp,
              "group is not a UTRP group");
  RFID_EXPECT(reported.size() == challenge.frame_size,
              "reported bitstring must span the challenge frame");
  RFID_EXPECT(challenge.seeds.size() == challenge.frame_size,
              "UTRP challenge must carry one seed per slot");
  journal_append(UtrpRoundRecord{id.index, challenge, reported, deadline_met});
  return server_.submit_utrp(id, challenge, reported, deadline_met);
}

void DurableInventoryServer::resync(server::GroupId id,
                                    const tag::TagSet& audited) {
  RFID_EXPECT(server_.config(id).protocol == server::ProtocolKind::kUtrp,
              "only UTRP groups carry a mirror to resync");
  RFID_EXPECT(audited.size() == server_.group_size(id),
              "audit must cover the enrolled group");
  journal_append(ResyncRecord{id.index, audited});
  server_.resync(id, audited);
}

void DurableInventoryServer::rotate() {
  const std::string tmp = config_.prefix + ".snapshot.tmp";
  if (backend_.exists(tmp)) backend_.remove(tmp);
  const std::uint64_t next = generation_ + 1;
  // temp -> flush -> rename: the new snapshot appears atomically and only
  // with its full contents durable. The old generation stays readable until
  // the new one is committed, so a crash anywhere in here loses nothing.
  backend_.append(tmp, dump_state(server_));
  backend_.flush(tmp);
  backend_.rename(tmp, snapshot_name(next));
  backend_.append(journal_name(next), std::string(kJournalMagic));
  backend_.flush(journal_name(next));
  generation_ = next;
  journal_records_ = 0;
  if (instruments_.rotations != nullptr) instruments_.rotations->inc();
  remove_stale_generations();
}

void DurableInventoryServer::remove_stale_generations() {
  if (generation_ < config_.keep_generations) return;
  const std::uint64_t cutoff = generation_ - config_.keep_generations;
  for (const std::string& name : backend_.list()) {
    const auto snap = parse_generation(name, config_.prefix + ".snapshot.");
    const auto jrnl = parse_generation(name, config_.prefix + ".journal.");
    const std::optional<std::uint64_t> gen = snap ? snap : jrnl;
    if (gen.has_value() && *gen <= cutoff) backend_.remove(name);
  }
}

}  // namespace rfid::storage
