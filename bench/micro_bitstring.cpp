// Microbenchmarks for the Bitstring operations the server performs per
// verification: construction, population count, compare/diff.
#include <benchmark/benchmark.h>

#include "bitstring/bitstring.h"
#include "util/random.h"

namespace {

using rfid::bits::Bitstring;

Bitstring random_bitstring(std::size_t size, std::uint64_t seed, double density) {
  rfid::util::Rng rng(seed);
  Bitstring bs(size);
  for (std::size_t i = 0; i < size; ++i) {
    if (rng.chance(density)) bs.set(i);
  }
  return bs;
}

void BM_BitstringSet(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Bitstring bs(size);
  rfid::util::Rng rng(1);
  for (auto _ : state) {
    bs.set(static_cast<std::size_t>(rng.below(size)));
    benchmark::DoNotOptimize(bs);
  }
}

void BM_BitstringCount(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const Bitstring bs = random_bitstring(size, 2, 0.6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bs.count());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size / 8));
}

void BM_BitstringHamming(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const Bitstring a = random_bitstring(size, 3, 0.6);
  const Bitstring b = random_bitstring(size, 4, 0.6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.hamming_distance(b));
  }
}

void BM_BitstringFirstDifference(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const Bitstring a = random_bitstring(size, 5, 0.6);
  Bitstring b = a;
  b.set(size - 1, !b.test(size - 1));  // difference at the very end: worst case
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.first_difference(b));
  }
}

void BM_BitstringOr(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const Bitstring a = random_bitstring(size, 6, 0.5);
  Bitstring b = random_bitstring(size, 7, 0.5);
  for (auto _ : state) {
    b |= a;
    benchmark::DoNotOptimize(b);
  }
}

void BM_BitstringHexRoundTrip(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const Bitstring a = random_bitstring(size, 8, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bitstring::from_hex(size, a.to_hex()));
  }
}

}  // namespace

BENCHMARK(BM_BitstringSet)->Arg(2048);
BENCHMARK(BM_BitstringCount)->Arg(512)->Arg(4096)->Arg(65536);
BENCHMARK(BM_BitstringHamming)->Arg(4096);
BENCHMARK(BM_BitstringFirstDifference)->Arg(4096);
BENCHMARK(BM_BitstringOr)->Arg(4096);
BENCHMARK(BM_BitstringHexRoundTrip)->Arg(2048);
