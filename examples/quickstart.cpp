// Quickstart: monitor a set of RFID tags for missing tags in ~40 lines.
//
//   1. Create a population of tags (in production: the IDs you enrolled).
//   2. Stand up a TrpServer with a tolerance m and confidence alpha.
//   3. Each round: issue a challenge, let the reader scan, verify.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "rfidmon.h"

int main() {
  using namespace rfid;
  util::Rng rng(42);

  // A pallet of 1000 tagged items. Tolerate up to 10 unreadable tags, but
  // demand >= 95% probability of catching 11+ missing.
  tag::TagSet pallet = tag::TagSet::make_random(1000, rng);
  const protocol::TrpServer server(
      pallet.ids(), {.tolerated_missing = 10, .confidence = 0.95});
  const protocol::TrpReader reader;

  std::printf("enrolled %llu tags; challenge frame = %u slots "
              "(predicted detection %.4f)\n",
              static_cast<unsigned long long>(server.group_size()),
              server.frame_size(), server.predicted_detection());

  // Round 1: everything is where it should be.
  {
    const auto challenge = server.issue_challenge(rng);
    const auto bitstring = reader.scan(pallet.tags(), challenge, rng);
    const auto verdict = server.verify(challenge, bitstring);
    std::printf("round 1 (intact):    %s\n",
                verdict.intact ? "OK — set intact" : "ALERT");
  }

  // Round 2: a thief removes 11 items overnight.
  (void)pallet.steal_random(11, rng);
  {
    const auto challenge = server.issue_challenge(rng);
    const auto bitstring = reader.scan(pallet.tags(), challenge, rng);
    const auto verdict = server.verify(challenge, bitstring);
    std::printf("round 2 (11 stolen): %s (%llu slots mismatched, first at %llu)\n",
                verdict.intact ? "OK" : "ALERT — tags missing",
                static_cast<unsigned long long>(verdict.mismatched_slots),
                static_cast<unsigned long long>(verdict.first_mismatch_slot));
    // Bonus: a rough headcount from the same bitstring, no extra air time.
    const auto estimate = estimate::estimate_cardinality(bitstring);
    std::printf("zero-estimator headcount: ~%.0f of 1000 enrolled\n",
                estimate.estimate);
  }
  return 0;
}
