// Property-based sweeps over the protocol invariants, parameterized across
// the (n, m, alpha, hash) space. These are the "does the math stay glued to
// the mechanics" tests: every point asserts relationships that must hold for
// ANY parameter choice, not specific values.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "attack/utrp_attack.h"
#include "math/detection.h"
#include "math/frame_optimizer.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::hash::HashKind;
using rfid::hash::SlotHasher;
using rfid::protocol::MonitoringPolicy;
using rfid::protocol::TrpReader;
using rfid::protocol::TrpServer;
using rfid::protocol::UtrpReader;
using rfid::protocol::UtrpServer;
using rfid::tag::TagSet;

// --------------------------------------------------------------- TRP laws --

struct TrpCase {
  std::uint64_t n;
  std::uint64_t m;
  double alpha;
  HashKind hash;
};

class TrpProperties : public ::testing::TestWithParam<TrpCase> {};

TEST_P(TrpProperties, IntactNeverAlarmsAndTheftObeysSubset) {
  const auto [n, m, alpha, kind] = GetParam();
  rfid::util::Rng rng(rfid::util::derive_seed(101, n * 37 + m, kind == HashKind::kFnv1a64 ? 0 : 1));
  const SlotHasher hasher(kind);
  TagSet set = TagSet::make_random(n, rng);
  const TrpServer server(set.ids(),
                         MonitoringPolicy{.tolerated_missing = m, .confidence = alpha},
                         hasher);
  const TrpReader reader(hasher);

  // Law 1: an intact set never alarms (zero false positives on an ideal
  // channel, any hash, any parameters).
  for (int round = 0; round < 3; ++round) {
    const auto c = server.issue_challenge(rng);
    EXPECT_TRUE(server.verify(c, reader.scan(set.tags(), c, rng)).intact);
  }

  // Law 2: after any theft, reported ⊆ expected (1s can only disappear).
  (void)set.steal_random(m + 1, rng);
  const auto c = server.issue_challenge(rng);
  const auto expected = server.expected_bitstring(c);
  const auto reported = reader.scan(set.tags(), c, rng);
  EXPECT_EQ((reported & expected), reported);

  // Law 3: the planned frame satisfies the Eq. 2 constraint.
  EXPECT_GT(server.predicted_detection(), alpha);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TrpProperties,
    ::testing::Values(TrpCase{50, 0, 0.9, HashKind::kMurmurFmix64},
                      TrpCase{100, 5, 0.95, HashKind::kMurmurFmix64},
                      TrpCase{100, 5, 0.95, HashKind::kFnv1a64},
                      TrpCase{100, 5, 0.95, HashKind::kSipHash24},
                      TrpCase{400, 10, 0.99, HashKind::kMurmurFmix64},
                      TrpCase{800, 30, 0.9, HashKind::kSipHash24},
                      TrpCase{1500, 20, 0.95, HashKind::kMurmurFmix64},
                      TrpCase{31, 2, 0.8, HashKind::kFnv1a64}));

// -------------------------------------------------------------- UTRP laws --

struct UtrpCase {
  std::uint64_t n;
  std::uint64_t m;
  std::uint64_t budget;
};

class UtrpProperties : public ::testing::TestWithParam<UtrpCase> {};

TEST_P(UtrpProperties, WalkConservationLaws) {
  const auto [n, m, budget] = GetParam();
  rfid::util::Rng rng(rfid::util::derive_seed(202, n, budget));
  TagSet set = TagSet::make_random(n, rng);
  UtrpServer server(set,
                    MonitoringPolicy{.tolerated_missing = m, .confidence = 0.95},
                    budget);
  const UtrpReader reader;
  const auto c = server.issue_challenge(rng);
  const auto scan = reader.scan(set.tags(), c);

  // Law 1: every tag replies exactly once per round.
  EXPECT_EQ(scan.replies, n);
  for (const auto& t : set.tags()) EXPECT_TRUE(t.silenced());

  // Law 2: seed consumption = re-seeds + 1, bounded by the frame size.
  EXPECT_EQ(scan.seeds_consumed, scan.reseeds + 1);
  EXPECT_LE(scan.seeds_consumed, c.seeds.size());

  // Law 3: occupied slots <= replies; every re-seed had an occupied slot.
  EXPECT_LE(scan.bitstring.count(), scan.replies);
  EXPECT_LE(scan.reseeds, scan.bitstring.count());

  // Law 4: the honest scan verifies (mirror matches reality).
  EXPECT_TRUE(server.verify(c, scan.bitstring).intact);

  // Law 5: counters are bounded by the number of broadcasts and at least 1.
  for (const auto& t : set.tags()) {
    EXPECT_GE(t.counter(), 1u);
    EXPECT_LE(t.counter(), scan.seeds_consumed);
  }
}

TEST_P(UtrpProperties, MechanicalAttackNeverBeatsStaticModel) {
  // The mechanical re-seed walk gives the adversary strictly less room than
  // the paper's static analysis: if the mechanical forgery passes, the
  // static model must also have passed (undetected) on the same layout —
  // checked statistically: mechanical detection rate >= static rate - noise.
  const auto [n, m, budget] = GetParam();
  constexpr int kTrials = 60;
  int mech_detected = 0;
  int static_detected = 0;
  const auto plan = rfid::math::optimize_utrp_frame(n, m, 0.95, budget);
  for (int t = 0; t < kTrials; ++t) {
    rfid::util::Rng rng(rfid::util::derive_seed(203, n * 31 + m, static_cast<std::uint64_t>(t)));
    TagSet set = TagSet::make_random(n, rng);
    UtrpServer server(set,
                      MonitoringPolicy{.tolerated_missing = m, .confidence = 0.95},
                      budget);
    TagSet stolen = set.steal_random(m + 1, rng);
    const auto c = server.issue_challenge(rng);

    const auto mech = rfid::attack::run_utrp_split_attack(
        set.tags(), stolen.tags(), SlotHasher{}, c, budget);
    if (!server.verify(c, mech.forged).intact) ++mech_detected;

    set.begin_round();
    const auto stat = rfid::attack::run_utrp_static_model_attack(
        set.tags(), stolen.tags(), SlotHasher{}, plan.frame_size, rng(), budget);
    if (stat.detected) ++static_detected;
  }
  EXPECT_GE(mech_detected + 8, static_detected);
  // And the design constraint: static-model detection must clear alpha-ish.
  EXPECT_GT(static_detected, kTrials * 8 / 10);
}

INSTANTIATE_TEST_SUITE_P(Grid, UtrpProperties,
                         ::testing::Values(UtrpCase{100, 5, 10},
                                           UtrpCase{200, 5, 20},
                                           UtrpCase{400, 10, 20},
                                           UtrpCase{400, 30, 20},
                                           UtrpCase{800, 20, 40}));

// ----------------------------------------------- math vs mechanics glue ---

struct GlueCase {
  std::uint64_t n;
  std::uint64_t x;
};

class MathMechanicsGlue : public ::testing::TestWithParam<GlueCase> {};

TEST_P(MathMechanicsGlue, TheoremOneTracksProtocolSimulation) {
  // The full pipeline check behind Fig. 5: simulate the *actual protocol*
  // (IDs, hashing, bitstrings) and compare the detection frequency with
  // Theorem 1 evaluated at the same parameters.
  const auto [n, x] = GetParam();
  const std::uint64_t f = rfid::math::optimize_trp_frame(n, x - 1, 0.95).frame_size;
  constexpr int kTrials = 800;
  int detected = 0;
  for (int t = 0; t < kTrials; ++t) {
    rfid::util::Rng rng(rfid::util::derive_seed(404, n * 97 + x, static_cast<std::uint64_t>(t)));
    TagSet set = TagSet::make_random(n, rng);
    const SlotHasher hasher;
    const std::uint64_t r = rng();
    rfid::bits::Bitstring expected(f);
    for (const auto& tag : set.tags()) {
      expected.set(tag.trp_slot(hasher, r, static_cast<std::uint32_t>(f)));
    }
    (void)set.steal_random(x, rng);
    rfid::bits::Bitstring observed(f);
    for (const auto& tag : set.tags()) {
      observed.set(tag.trp_slot(hasher, r, static_cast<std::uint32_t>(f)));
    }
    if (observed != expected) ++detected;
  }
  const double simulated = static_cast<double>(detected) / kTrials;
  const double predicted = rfid::math::detection_probability(n, x, f);
  EXPECT_NEAR(simulated, predicted, 0.035)
      << "n=" << n << " x=" << x << " f=" << f;
}

INSTANTIATE_TEST_SUITE_P(Grid, MathMechanicsGlue,
                         ::testing::Values(GlueCase{100, 6}, GlueCase{200, 11},
                                           GlueCase{500, 6}, GlueCase{500, 21},
                                           GlueCase{1000, 31},
                                           GlueCase{1500, 11}));

}  // namespace
