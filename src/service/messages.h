// Payload schemas for every service frame type.
//
// Encoding reuses wire/codec.h primitives (little-endian fixed-width ints,
// u32-length-prefixed strings), so the service speaks the same byte dialect
// as the reader link. Every decode_* throws std::invalid_argument on a
// truncated or trailing-garbage payload — the dispatcher maps that to the
// typed kMalformedPayload error instead of crashing the connection handler.
//
// Vector fields are count-prefixed (u32) and the counts are validated
// against the remaining payload before any reservation, so a forged count
// cannot allocate unboundedly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/framing.h"
#include "tag/tag_id.h"

namespace rfid::service {

// ------------------------------------------------------------- session ----

struct HelloRequest {
  std::uint32_t version = kProtocolVersion;
  std::string tenant;
};

struct HelloOk {
  std::uint32_t version = kProtocolVersion;
  std::uint64_t session_id = 0;
  std::uint32_t max_frame_bytes = 0;
  /// Admission limits, advertised so a well-behaved client can pace itself.
  std::uint64_t token_capacity = 0;
  std::uint64_t max_inflight_per_tenant = 0;
};

// ---------------------------------------------------------- enrollment ----

struct EnrollRequest {
  std::string inventory;
  std::uint8_t protocol = 0;  // fleet::Protocol
  std::uint64_t tolerance = 1;
  double alpha = 0.95;
  std::uint64_t zone_capacity = 0;  // 0 = single zone
  std::uint64_t rounds = 1;
  std::vector<tag::TagId> tags;
};

struct EnrollOk {
  std::string inventory;
  std::uint64_t tags = 0;
  std::uint64_t zones = 0;
  std::uint64_t total_slots = 0;  // planned Eq. (2) frame budget
};

// ---------------------------------------------------------------- runs ----

struct StartRunRequest {
  std::string inventory;
  std::uint64_t seed = 1;
  bool identify = false;  // PR 9 drill-down: name the stolen tags
  /// Enrolled-order indices of tags physically absent for this run (the
  /// simulated theft; a real deployment would simply scan).
  std::vector<std::uint64_t> stolen;
};

/// One continuous-monitoring watch: a MonitorDaemon driven for `epochs`
/// epochs over a population of the enrolled inventory's shape, publishing
/// its durable alert history to the tenant's alert feed.
struct StartWatchRequest {
  std::string inventory;
  std::uint64_t seed = 1;
  std::uint64_t epochs = 3;
  bool identify = false;
  /// Scripted theft: `steal` tags vanish starting at population index
  /// `steal_from` at epoch `steal_epoch` (0 = no theft).
  std::uint64_t steal_epoch = 1;
  std::uint64_t steal = 0;
  std::uint64_t steal_from = 0;
};

struct RunAdmitted {
  std::uint64_t run_id = 0;
  std::uint8_t admission = 0;  // fleet::Admission (accepted | deferred)
  std::uint64_t queue_depth = 0;  // deferred: position in the wave queue
};

/// Explicit backpressure (maps fleet::Admission::kRejected): the request
/// was NOT queued; retry after the hint instead of hammering.
struct Backpressure {
  std::uint64_t retry_after_ms = 0;
  std::string reason;
};

struct RunVerdictMsg {
  std::uint64_t run_id = 0;
  std::string inventory;
  std::uint8_t verdict = 0;  // fleet::GlobalVerdict
  std::uint64_t zones = 0;
  std::uint64_t zones_violated = 0;
  std::uint64_t attempts = 0;
  std::uint64_t tags_named = 0;
  bool aborted = false;
  /// Stolen tags named by the identification drill-down, enrolled order.
  std::vector<tag::TagId> missing;
};

struct RunAlertMsg {
  std::uint64_t run_id = 0;
  std::string kind;  // fleet::AlertKind rendering
  std::string inventory;
  std::uint64_t zone = 0;
  std::string detail;
};

struct WatchDone {
  std::uint64_t run_id = 0;
  std::uint64_t epochs_completed = 0;
  std::uint64_t alerts = 0;
  bool gave_up = false;
};

// -------------------------------------------------------------- alerts ----

struct SubscribeOk {
  std::uint64_t backlog = 0;  // retained feed entries about to replay
};

/// One entry of a tenant's alert feed: daemon alerts from watches plus
/// per-run violation/escalation alerts, in per-tenant sequence order.
struct TenantAlert {
  std::uint64_t sequence = 0;
  std::string kind;
  std::uint64_t run_id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t zone = 0;
  std::string detail;
  std::vector<tag::TagId> missing;  // named stolen tags, when identified
};

// ------------------------------------------------------------- control ----

struct PingMsg {
  std::uint64_t nonce = 0;
};

struct ErrorMsg {
  ErrorCode code = ErrorCode::kNone;
  std::string message;
};

struct ShutdownMsg {
  std::uint64_t drain_ms = 0;  // how long the server will wait for drains
};

// -------------------------------------------------------- encode/decode ----

[[nodiscard]] std::vector<std::byte> encode(const HelloRequest& m);
[[nodiscard]] std::vector<std::byte> encode(const HelloOk& m);
[[nodiscard]] std::vector<std::byte> encode(const EnrollRequest& m);
[[nodiscard]] std::vector<std::byte> encode(const EnrollOk& m);
[[nodiscard]] std::vector<std::byte> encode(const StartRunRequest& m);
[[nodiscard]] std::vector<std::byte> encode(const StartWatchRequest& m);
[[nodiscard]] std::vector<std::byte> encode(const RunAdmitted& m);
[[nodiscard]] std::vector<std::byte> encode(const Backpressure& m);
[[nodiscard]] std::vector<std::byte> encode(const RunVerdictMsg& m);
[[nodiscard]] std::vector<std::byte> encode(const RunAlertMsg& m);
[[nodiscard]] std::vector<std::byte> encode(const WatchDone& m);
[[nodiscard]] std::vector<std::byte> encode(const SubscribeOk& m);
[[nodiscard]] std::vector<std::byte> encode(const TenantAlert& m);
[[nodiscard]] std::vector<std::byte> encode(const PingMsg& m);
[[nodiscard]] std::vector<std::byte> encode(const ErrorMsg& m);
[[nodiscard]] std::vector<std::byte> encode(const ShutdownMsg& m);

[[nodiscard]] HelloRequest decode_hello(std::span<const std::byte> payload);
[[nodiscard]] HelloOk decode_hello_ok(std::span<const std::byte> payload);
[[nodiscard]] EnrollRequest decode_enroll(std::span<const std::byte> payload);
[[nodiscard]] EnrollOk decode_enroll_ok(std::span<const std::byte> payload);
[[nodiscard]] StartRunRequest decode_start_run(
    std::span<const std::byte> payload);
[[nodiscard]] StartWatchRequest decode_start_watch(
    std::span<const std::byte> payload);
[[nodiscard]] RunAdmitted decode_run_admitted(
    std::span<const std::byte> payload);
[[nodiscard]] Backpressure decode_backpressure(
    std::span<const std::byte> payload);
[[nodiscard]] RunVerdictMsg decode_run_verdict(
    std::span<const std::byte> payload);
[[nodiscard]] RunAlertMsg decode_run_alert(std::span<const std::byte> payload);
[[nodiscard]] WatchDone decode_watch_done(std::span<const std::byte> payload);
[[nodiscard]] SubscribeOk decode_subscribe_ok(
    std::span<const std::byte> payload);
[[nodiscard]] TenantAlert decode_tenant_alert(
    std::span<const std::byte> payload);
[[nodiscard]] PingMsg decode_ping(std::span<const std::byte> payload);
[[nodiscard]] ErrorMsg decode_error(std::span<const std::byte> payload);
[[nodiscard]] ShutdownMsg decode_shutdown(std::span<const std::byte> payload);

}  // namespace rfid::service
