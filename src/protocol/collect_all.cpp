#include "protocol/collect_all.h"

#include <vector>

#include "radio/frame.h"
#include "util/expect.h"

namespace rfid::protocol {

CollectAllResult run_collect_all(std::span<const tag::Tag> present,
                                 const hash::SlotHasher& hasher,
                                 const CollectAllConfig& config,
                                 util::Rng& rng) {
  RFID_EXPECT(config.stop_after_collected <= present.size(),
              "cannot collect more tags than are present");

  CollectAllResult result;
  // Indices of tags not yet identified; shrinks as singletons are read.
  std::vector<std::size_t> unidentified(present.size());
  for (std::size_t i = 0; i < present.size(); ++i) unidentified[i] = i;

  while (result.collected < config.stop_after_collected) {
    RFID_ENSURE(!unidentified.empty(),
                "ran out of tags before reaching the collection target");
    std::uint32_t f;
    if (result.rounds == 0 && config.initial_frame != 0) {
      f = config.initial_frame;
    } else {
      // Lee et al. [7]: the optimal frame size equals the number of
      // unidentified tags.
      f = static_cast<std::uint32_t>(unidentified.size());
    }
    if (f == 0) f = 1;
    ++result.rounds;
    result.total_slots += f;

    const std::uint64_t r = rng();
    // Per-slot occupancy and, for singleton candidates, which tag replied.
    std::vector<std::uint32_t> occupancy(f, 0);
    std::vector<std::size_t> lone_tag(f, 0);
    for (const std::size_t i : unidentified) {
      const std::uint32_t slot = present[i].trp_slot(hasher, r, f);
      ++occupancy[slot];
      lone_tag[slot] = i;
    }

    std::vector<std::size_t> still_unidentified;
    still_unidentified.reserve(unidentified.size());
    std::vector<bool> read_this_round(f, false);
    for (std::uint32_t slot = 0; slot < f; ++slot) {
      const radio::SlotOutcome outcome =
          radio::resolve_slot(occupancy[slot], config.channel, rng);
      switch (outcome) {
        case radio::SlotOutcome::kEmpty:
          ++result.empty_slots;
          break;
        case radio::SlotOutcome::kSingle:
          // A decoded ID. With capture effects the decoded tag is one of the
          // colliders; occupancy==1 is the common case where it is lone_tag.
          ++result.singleton_slots;
          if (occupancy[slot] == 1) {
            read_this_round[slot] = true;
            ++result.collected;
          } else {
            // Captured slot: one collider is read; the rest must retry. We
            // credit lone_tag (the last writer) as the captured one.
            read_this_round[slot] = true;
            ++result.collected;
          }
          break;
        case radio::SlotOutcome::kCollision:
          ++result.collision_slots;
          break;
      }
    }

    // Rebuild the unidentified list: drop tags whose slot decoded them.
    for (const std::size_t i : unidentified) {
      const std::uint32_t slot = present[i].trp_slot(hasher, r, f);
      const bool read =
          read_this_round[slot] &&
          (occupancy[slot] == 1 || lone_tag[slot] == i);  // captured tag only
      if (!read) still_unidentified.push_back(i);
    }
    unidentified = std::move(still_unidentified);

    if (result.collected >= config.stop_after_collected) break;
  }
  return result;
}

}  // namespace rfid::protocol
