// Wall-clock cost model for the air interface.
//
// The paper's evaluation counts *slots* and assumes equal slot duration
// (Sec. 6), while noting that collect-all is really worse because an ID
// reply (96-bit EPC + CRC) occupies the medium far longer than TRP's
// few random bits. TimingModel makes that remark quantitative: durations
// are derived from the EPC C1G2 link budget at a 40 kbps FM0 backscatter
// rate plus fixed preamble/turnaround overhead. Used by the time-weighted
// ablation bench and by the adversary communication-budget derivation
// (c = (t − STmin)/tcomm, Sec. 5.4).
#pragma once

#include <cstdint>

namespace rfid::radio {

/// Durations in microseconds. Defaults follow common C1G2-derived figures
/// used in the RFID estimation literature: an empty slot is just the
/// detection window; a short-reply slot carries ~16 random bits; an ID slot
/// carries a 96-bit EPC plus CRC16 and framing.
struct TimingModel {
  double empty_slot_us = 184.0;     // detection window only
  double short_reply_slot_us = 400.0;   // TRP/UTRP random-bits reply
  double id_reply_slot_us = 2400.0;     // collect-all: EPC96 + CRC + framing
  double reseed_broadcast_us = 800.0;   // UTRP (f, r) re-broadcast to tags
  double query_broadcast_us = 800.0;    // initial (f, r) frame announcement
  /// One bit of a reader→tag broadcast filter (ACK bitmaps in the
  /// filter-first identification protocol) at the 40 kbps forward link.
  double filter_bit_us = 25.0;

  /// Honest scan time of one TRP frame with the given composition.
  [[nodiscard]] double trp_scan_us(std::uint64_t empty_slots,
                                   std::uint64_t occupied_slots) const noexcept {
    return query_broadcast_us +
           static_cast<double>(empty_slots) * empty_slot_us +
           static_cast<double>(occupied_slots) * short_reply_slot_us;
  }

  /// Honest scan time of one UTRP frame: every occupied slot additionally
  /// triggers a re-seed broadcast (Alg. 6 line 7).
  [[nodiscard]] double utrp_scan_us(std::uint64_t empty_slots,
                                    std::uint64_t occupied_slots,
                                    std::uint64_t reseeds) const noexcept {
    return trp_scan_us(empty_slots, occupied_slots) +
           static_cast<double>(reseeds) * reseed_broadcast_us;
  }

  /// Collect-all time: singleton slots carry a full ID; collisions occupy an
  /// ID-length window too (the reader cannot abort mid-slot); each round
  /// costs one frame announcement.
  [[nodiscard]] double collect_all_us(std::uint64_t empty_slots,
                                      std::uint64_t id_slots,
                                      std::uint64_t collision_slots,
                                      std::uint64_t rounds) const noexcept {
    return static_cast<double>(rounds) * query_broadcast_us +
           static_cast<double>(empty_slots) * empty_slot_us +
           static_cast<double>(id_slots + collision_slots) * id_reply_slot_us;
  }

  /// Identification-campaign time: framed slots are short replies, each tree
  /// prefix query costs its own broadcast plus a reply window, and ACK
  /// filters are charged per broadcast bit.
  [[nodiscard]] double identify_us(std::uint64_t frame_empty_slots,
                                   std::uint64_t frame_reply_slots,
                                   std::uint64_t tree_empty_queries,
                                   std::uint64_t tree_reply_queries,
                                   std::uint64_t filter_bits,
                                   std::uint64_t rounds) const noexcept {
    return static_cast<double>(rounds + tree_empty_queries +
                               tree_reply_queries) *
               query_broadcast_us +
           static_cast<double>(frame_empty_slots + tree_empty_queries) *
               empty_slot_us +
           static_cast<double>(frame_reply_slots + tree_reply_queries) *
               short_reply_slot_us +
           static_cast<double>(filter_bits) * filter_bit_us;
  }
};

/// Sec. 5.4: with a verification deadline t, an honest minimum scan time
/// STmin, and tcomm per reader-to-reader exchange, a dishonest pair can
/// afford c = (t − STmin)/tcomm communications. Returns 0 when t <= STmin.
[[nodiscard]] std::uint64_t communication_budget(double deadline_us,
                                                 double honest_min_scan_us,
                                                 double comm_roundtrip_us) noexcept;

}  // namespace rfid::radio
