// Full-fidelity persisted server state: the snapshot format plus an AUX
// section for the history the enrollment snapshot alone cannot carry.
//
// save_snapshot/load_snapshot (server/snapshot.h) persist the *database* —
// group configs, tag IDs, UTRP counters. A recovered server must also agree
// on its *history*: per-group round counts, diverged-mirror flags, and the
// alert log with its sequence numbers (the incident timeline is evidence;
// losing it on restart defeats the point of keeping it). Rather than fork
// the snapshot format, a rotated snapshot file appends an AUX section after
// the snapshot's END line:
//
//   RFIDMON-SNAPSHOT 1
//   ...                                      (unchanged; load_snapshot stops
//   END <fnv1a64>                             at END, so operator tooling
//   AUX 1                                     still reads these files)
//   STATE <group-index> <rounds> <needs_resync>
//   ALERT <seq> <kind> <group> <round> <mismatched> <deadline_missed>
//         <estimated_present> <enrolled_size> <group-name…>
//   ENDAUX <fnv1a64-of-aux-lines>
//
// The AUX section is checksummed independently, and a file without one
// parses as zero history (a plain enrollment snapshot remains loadable).
//
// dump_state() doubles as the bit-identity fingerprint of the crash-point
// torture test: two servers are "the same state" iff their dumps are equal
// byte for byte.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "hash/slot_hash.h"
#include "server/inventory_server.h"
#include "server/snapshot.h"

namespace rfid::storage {

/// Everything a server must carry across a crash.
struct PersistedState {
  std::vector<server::EnrolledGroup> groups;
  std::vector<server::InventoryServer::GroupState> group_states;  // per group
  std::vector<server::Alert> alerts;  // full log, ascending sequence
};

/// Reads the live server's state (database + history).
[[nodiscard]] PersistedState capture_state(const server::InventoryServer& server);

/// Serializes as snapshot + AUX text; throws on stream failure.
void write_state(std::ostream& os, const PersistedState& state);

/// Parses snapshot + AUX; throws std::invalid_argument on malformed input or
/// checksum failure in either section. A stream ending right after the
/// snapshot's END line yields empty history.
[[nodiscard]] PersistedState read_state(std::istream& is);

/// Rebuilds a live server: re-enrolls every group, then reinstates history.
[[nodiscard]] server::InventoryServer build_server(
    const PersistedState& state, hash::SlotHasher hasher = hash::SlotHasher{});

/// Canonical byte-for-byte fingerprint of a running server — write_state()
/// into a string. Equal dumps <=> identical recovered-visible state.
[[nodiscard]] std::string dump_state(const server::InventoryServer& server);

}  // namespace rfid::storage
