// Ablation — imperfect channels: the false-alarm cost of reply loss.
//
// The paper motivates the tolerance m with scratched or blocked tags
// (Sec. 1) but evaluates only ideal channels. This bench measures the
// operational flip side for TRP: with an *intact* set, what fraction of
// rounds falsely alarm as the per-reply loss probability grows? It also
// shows the capture effect is harmless to TRP (captures still mark the slot)
// while loss is what actually hurts.
#include <cstdint>

#include "bench_common.h"
#include "protocol/trp.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const auto opt = bench::parse_figure_options(argc, argv);
  const sim::TrialRunner runner(opt.threads);

  constexpr std::uint64_t kTags = 500;
  constexpr std::uint64_t kTolerance = 10;
  bench::banner("Ablation: TRP false-alarm rate on an INTACT set vs channel "
                "loss (n = " + std::to_string(kTags) + ", m = " +
                std::to_string(kTolerance) + ", " +
                std::to_string(opt.trials) + " trials/point)");

  const protocol::MonitoringPolicy policy{.tolerated_missing = kTolerance,
                                          .confidence = opt.alpha};

  util::Table table({"reply_loss_prob", "false_alarm_rate", "capture=0.5_rate"});
  for (const double loss : {0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.10}) {
    double rates[2];
    for (int with_capture = 0; with_capture < 2; ++with_capture) {
      const radio::ChannelModel channel{
          .reply_loss_prob = loss,
          .capture_prob = with_capture == 1 ? 0.5 : 0.0};
      const auto result = runner.run_boolean(
          opt.trials,
          util::derive_seed(opt.seed, static_cast<std::uint64_t>(loss * 10000),
                            static_cast<std::uint64_t>(with_capture)),
          [&](std::uint64_t, util::Rng& rng) {
            const tag::TagSet set = tag::TagSet::make_random(kTags, rng);
            const protocol::TrpServer server(set.ids(), policy);
            const protocol::TrpReader reader(hash::SlotHasher{}, channel);
            const auto c = server.issue_challenge(rng);
            return !server.verify(c, reader.scan(set.tags(), c, rng)).intact;
          });
      rates[with_capture] = result.proportion();
    }
    table.begin_row();
    table.add_cell(loss, 3);
    table.add_cell(rates[0], 4);
    table.add_cell(rates[1], 4);
  }
  bench::emit(table, opt);

  std::cout << "A slot flips 1->0 only when EVERY reply in it is lost, so the\n"
               "false-alarm rate is roughly 1-(1-loss)^S with S the singleton\n"
               "slot count (~n*e^{-n/f}); even 0.1% per-reply loss alarms over\n"
               "a tenth of rounds at n=500 — deployments must pair the\n"
               "tolerance m with link-level retries or repeated frames.\n";
  return 0;
}
