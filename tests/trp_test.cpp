// Tests for the Trusted Reader Protocol (Sec. 4): server, reader, and the
// end-to-end detection behaviour of Alg. 1–3.
#include <gtest/gtest.h>

#include <stdexcept>

#include "protocol/trp.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::protocol::MonitoringPolicy;
using rfid::protocol::TrpChallenge;
using rfid::protocol::TrpReader;
using rfid::protocol::TrpServer;
using rfid::tag::TagSet;

MonitoringPolicy policy(std::uint64_t m, double alpha = 0.95) {
  return MonitoringPolicy{.tolerated_missing = m, .confidence = alpha};
}

TEST(TrpServer, FrameSizeMatchesOptimizer) {
  rfid::util::Rng rng(1);
  const TagSet set = TagSet::make_random(500, rng);
  const TrpServer server(set.ids(), policy(5));
  const auto plan = rfid::math::optimize_trp_frame(500, 5, 0.95);
  EXPECT_EQ(server.frame_size(), plan.frame_size);
  EXPECT_GT(server.predicted_detection(), 0.95);
  EXPECT_EQ(server.group_size(), 500u);
}

TEST(TrpServer, ChallengeUsesPlannedFrame) {
  rfid::util::Rng rng(2);
  const TagSet set = TagSet::make_random(200, rng);
  const TrpServer server(set.ids(), policy(5));
  const TrpChallenge c = server.issue_challenge(rng);
  EXPECT_EQ(c.frame_size, server.frame_size());
}

TEST(TrpServer, FreshChallengesHaveFreshRandomness) {
  rfid::util::Rng rng(3);
  const TagSet set = TagSet::make_random(100, rng);
  const TrpServer server(set.ids(), policy(5));
  const auto c1 = server.issue_challenge(rng);
  const auto c2 = server.issue_challenge(rng);
  EXPECT_NE(c1.r, c2.r);
}

TEST(TrpServer, RejectsEmptyGroupAndBadTolerance) {
  rfid::util::Rng rng(4);
  const TagSet set = TagSet::make_random(5, rng);
  EXPECT_THROW(TrpServer(std::vector<rfid::tag::TagId>{}, policy(0)),
               std::invalid_argument);
  EXPECT_THROW(TrpServer(set.ids(), policy(5)), std::invalid_argument);
}

TEST(TrpServer, ExpectedBitstringMarksEveryTagSlot) {
  rfid::util::Rng rng(5);
  const TagSet set = TagSet::make_random(64, rng);
  const rfid::hash::SlotHasher hasher;
  const TrpServer server(set.ids(), policy(2), hasher);
  const TrpChallenge c = server.issue_challenge(rng);
  const auto bs = server.expected_bitstring(c);
  ASSERT_EQ(bs.size(), c.frame_size);
  for (const auto& t : set.tags()) {
    EXPECT_TRUE(bs.test(t.trp_slot(hasher, c.r, c.frame_size)));
  }
  // No spurious 1s: the count never exceeds the number of tags.
  EXPECT_LE(bs.count(), set.size());
}

TEST(TrpEndToEnd, IntactSetAlwaysVerifies) {
  rfid::util::Rng rng(6);
  const TagSet set = TagSet::make_random(400, rng);
  const TrpServer server(set.ids(), policy(10));
  const TrpReader reader;
  for (int round = 0; round < 20; ++round) {
    const TrpChallenge c = server.issue_challenge(rng);
    const auto bs = reader.scan(set.tags(), c, rng);
    const auto verdict = server.verify(c, bs);
    EXPECT_TRUE(verdict.intact) << "round " << round;
    EXPECT_EQ(verdict.mismatched_slots, 0u);
  }
}

TEST(TrpEndToEnd, MassTheftIsAlwaysDetected) {
  // Removing half the set leaves so many exposed slots that every challenge
  // detects it.
  rfid::util::Rng rng(7);
  TagSet set = TagSet::make_random(400, rng);
  const TrpServer server(set.ids(), policy(10));
  const TrpReader reader;
  (void)set.steal_random(200, rng);
  for (int round = 0; round < 10; ++round) {
    const TrpChallenge c = server.issue_challenge(rng);
    const auto bs = reader.scan(set.tags(), c, rng);
    const auto verdict = server.verify(c, bs);
    EXPECT_FALSE(verdict.intact);
    EXPECT_GT(verdict.mismatched_slots, 0u);
    EXPECT_LT(verdict.first_mismatch_slot, c.frame_size);
  }
}

TEST(TrpEndToEnd, MissingBeyondToleranceDetectedAtConfidence) {
  // The paper's headline guarantee: stealing m+1 tags is detected with
  // probability > alpha. 300 trials at alpha = 0.9; the failure probability
  // of this test given a correct implementation is < 1e-3 (binomial tail).
  constexpr std::uint64_t kTags = 300;
  constexpr std::uint64_t kTolerance = 5;
  constexpr double kAlpha = 0.9;
  constexpr int kTrials = 300;
  int detected = 0;
  for (int t = 0; t < kTrials; ++t) {
    rfid::util::Rng rng(rfid::util::derive_seed(8, static_cast<std::uint64_t>(t)));
    TagSet set = TagSet::make_random(kTags, rng);
    const TrpServer server(set.ids(), policy(kTolerance, kAlpha));
    const TrpReader reader;
    (void)set.steal_random(kTolerance + 1, rng);
    const TrpChallenge c = server.issue_challenge(rng);
    const auto verdict = server.verify(c, reader.scan(set.tags(), c, rng));
    if (!verdict.intact) ++detected;
  }
  // Expect >= alpha - 4*sigma fraction detected; sigma ~ sqrt(0.9*0.1/300).
  EXPECT_GE(static_cast<double>(detected) / kTrials, kAlpha - 0.07);
}

TEST(TrpEndToEnd, MissingTagsOnlyEverFlipOnesToZeros) {
  // A missing tag can only vacate slots; the reported bitstring must be a
  // subset of the expected one (no new 1s appear on an ideal channel).
  rfid::util::Rng rng(9);
  TagSet set = TagSet::make_random(250, rng);
  const TrpServer server(set.ids(), policy(3));
  const TrpReader reader;
  (void)set.steal_random(20, rng);
  const TrpChallenge c = server.issue_challenge(rng);
  const auto expected = server.expected_bitstring(c);
  const auto reported = reader.scan(set.tags(), c, rng);
  EXPECT_EQ((reported & expected), reported);  // reported ⊆ expected
}

TEST(TrpEndToEnd, WithinToleranceTheftCanPassUndetected) {
  // With m large and only 1 tag missing, misses must happen well over half
  // the time (the protocol is sized for m+1, not 1).
  constexpr int kTrials = 100;
  int missed = 0;
  for (int t = 0; t < kTrials; ++t) {
    rfid::util::Rng rng(rfid::util::derive_seed(10, static_cast<std::uint64_t>(t)));
    TagSet set = TagSet::make_random(300, rng);
    const TrpServer server(set.ids(), policy(30));
    const TrpReader reader;
    (void)set.steal_random(1, rng);
    const TrpChallenge c = server.issue_challenge(rng);
    if (server.verify(c, reader.scan(set.tags(), c, rng)).intact) ++missed;
  }
  EXPECT_GT(missed, kTrials / 2);
}

TEST(TrpServer, VerifyRejectsWrongLengthBitstring) {
  rfid::util::Rng rng(11);
  const TagSet set = TagSet::make_random(50, rng);
  const TrpServer server(set.ids(), policy(2));
  const TrpChallenge c = server.issue_challenge(rng);
  EXPECT_THROW((void)server.verify(c, rfid::bits::Bitstring(c.frame_size + 1)),
               std::invalid_argument);
}

TEST(TrpReader, HasherMismatchBreaksVerification) {
  // All parties must share the hash configuration; a reader with a different
  // hash kind produces garbage.
  rfid::util::Rng rng(12);
  const TagSet set = TagSet::make_random(300, rng);
  const TrpServer server(set.ids(), policy(5),
                         rfid::hash::SlotHasher(rfid::hash::HashKind::kMurmurFmix64));
  const TrpReader reader(rfid::hash::SlotHasher(rfid::hash::HashKind::kFnv1a64));
  const TrpChallenge c = server.issue_challenge(rng);
  const auto verdict = server.verify(c, reader.scan(set.tags(), c, rng));
  EXPECT_FALSE(verdict.intact);
}

TEST(TrpReader, ScanObservedStatisticsAreConsistent) {
  rfid::util::Rng rng(13);
  const TagSet set = TagSet::make_random(200, rng);
  const TrpServer server(set.ids(), policy(5));
  const TrpReader reader;
  const TrpChallenge c = server.issue_challenge(rng);
  const auto obs = reader.scan_observed(set.tags(), c, rng);
  EXPECT_EQ(obs.empty_slots + obs.single_slots + obs.collision_slots,
            c.frame_size);
  EXPECT_EQ(obs.bitstring.count(), obs.single_slots + obs.collision_slots);
}

TEST(TrpEndToEnd, LossyChannelCausesFalseAlarms) {
  // Reply loss looks like missing tags: expect not-intact verdicts even for
  // an intact set — the deployment reason for tolerance m (Sec. 1).
  rfid::util::Rng rng(14);
  const TagSet set = TagSet::make_random(400, rng);
  const TrpServer server(set.ids(), policy(5));
  const TrpReader lossy_reader(rfid::hash::SlotHasher{},
                               {.reply_loss_prob = 0.2, .capture_prob = 0.0});
  int alarms = 0;
  for (int round = 0; round < 20; ++round) {
    const TrpChallenge c = server.issue_challenge(rng);
    if (!server.verify(c, lossy_reader.scan(set.tags(), c, rng)).intact) {
      ++alarms;
    }
  }
  EXPECT_GT(alarms, 15);
}

}  // namespace
