// StorageBackend: the narrow waist between the durability layer and the
// place bytes actually live.
//
// The write-ahead journal and snapshot rotation (journal.h, durable_server.h)
// are written against five primitives — append, flush, atomic rename, remove,
// whole-file read — because those are exactly the primitives whose crash
// semantics differ between "what the process wrote" and "what survives a
// power cut". Two implementations:
//
//  * MemoryBackend — models the durable/buffered split explicitly: append()
//    lands in a per-file buffer, flush() makes it durable, crash() discards
//    every unflushed byte. This is what the crash-point torture test runs
//    against (see fault/storage_fault.h for the injector layered on top).
//  * FileBackend — real files via <filesystem> for tools and examples.
//    flush() pushes to the OS; it does NOT fsync (std::ostream cannot), so
//    its crash story covers process death, not power loss — see
//    docs/persistence.md.
//
// All mutating operations throw storage::IoError on failure; read() throws
// if the file does not exist (check exists() first).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rfid::storage {

/// A backend operation failed (disk full, missing file, OS error). Distinct
/// from std::invalid_argument so callers can tell "you misused the API"
/// from "the storage below you is unhealthy".
struct IoError : std::runtime_error {
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  [[nodiscard]] virtual bool exists(const std::string& name) const = 0;
  /// All file names in the store, in unspecified order.
  [[nodiscard]] virtual std::vector<std::string> list() const = 0;
  /// Whole-file read, as the live process sees it (buffered bytes included).
  [[nodiscard]] virtual std::string read(const std::string& name) const = 0;
  /// Appends to the file, creating it if missing. Buffered until flush().
  virtual void append(const std::string& name, std::string_view bytes) = 0;
  /// Makes every byte appended so far durable.
  virtual void flush(const std::string& name) = 0;
  /// Atomic replace: after rename() either the old or the new binding is
  /// visible, never a mix. Overwrites `to` if it exists.
  virtual void rename(const std::string& from, const std::string& to) = 0;
  virtual void remove(const std::string& name) = 0;
};

/// In-memory backend with an explicit durable/buffered split per file.
class MemoryBackend : public StorageBackend {
 public:
  [[nodiscard]] bool exists(const std::string& name) const override;
  [[nodiscard]] std::vector<std::string> list() const override;
  [[nodiscard]] std::string read(const std::string& name) const override;
  void append(const std::string& name, std::string_view bytes) override;
  void flush(const std::string& name) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& name) override;

  /// Simulated power cut: every unflushed byte vanishes. Files created but
  /// never flushed remain as empty durable files (creation is metadata; the
  /// torture test treats either outcome as "torn", so the simpler model —
  /// keep the name — is fine).
  void crash();

  /// Bit-rot injection hook: flips bit `bit` (0–7) of the durable byte at
  /// `offset` (modulo the durable size; no-op on empty files).
  void corrupt_durable(const std::string& name, std::uint64_t offset,
                       unsigned bit = 0);

  /// Durable prefix only — what a post-crash recovery would read.
  [[nodiscard]] std::string durable_bytes(const std::string& name) const;

 private:
  struct File {
    std::string durable;
    std::string buffered;
  };
  [[nodiscard]] const File& file(const std::string& name) const;

  std::map<std::string, File> files_;
};

/// Directory-backed store for real deployments (examples/durability_drill,
/// run_all.sh smoke step). Names map to files directly under `dir`.
class FileBackend : public StorageBackend {
 public:
  /// Creates `dir` if missing.
  explicit FileBackend(std::string dir);

  [[nodiscard]] bool exists(const std::string& name) const override;
  [[nodiscard]] std::vector<std::string> list() const override;
  [[nodiscard]] std::string read(const std::string& name) const override;
  void append(const std::string& name, std::string_view bytes) override;
  void flush(const std::string& name) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& name) override;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  [[nodiscard]] std::string path_of(const std::string& name) const;

  std::string dir_;
};

}  // namespace rfid::storage
