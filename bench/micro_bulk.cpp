// Scalar-vs-bulk microbenchmarks for the columnar kernels: slots/sec for
// the TRP slot choice, frame-fill throughput for the expected-bitstring
// path, the expected-cache fast path, and a fleet-scale end-to-end run with
// bulk mode on vs. off. items_per_second reads as tag-slots/sec (or zones
// for the fleet case); the acceptance bar is >= 5x bulk over scalar at
// n = 10^6 on the frame path. Numbers are recorded in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bitstring/bitstring.h"
#include "fleet/fleet.h"
#include "hash/slot_hash.h"
#include "protocol/trp.h"
#include "server/group_planner.h"
#include "server/inventory_server.h"
#include "tag/columnar.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using namespace rfid;

/// Frame sized like a realistic Eq. (2) plan at this n (about n slots).
std::uint32_t frame_for(std::uint64_t n) {
  return static_cast<std::uint32_t>(n < 64 ? 64 : n);
}

void BM_ScalarTrpSlots(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  util::Rng rng(1);
  const tag::TagSet set = tag::TagSet::make_random(n, rng);
  const hash::SlotHasher hasher;
  const std::uint32_t f = frame_for(n);
  std::vector<std::uint32_t> out(n);
  std::uint64_t r = 0;
  for (auto _ : state) {
    ++r;
    for (std::size_t i = 0; i < set.size(); ++i) {
      out[i] = set.at(i).trp_slot(hasher, r, f);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_BulkTrpSlots(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  util::Rng rng(1);
  const tag::TagSet set = tag::TagSet::make_random(n, rng);
  const tag::ColumnarTagSet columnar = tag::ColumnarTagSet::from_tag_set(set);
  const hash::SlotHasher hasher;
  const std::uint32_t f = frame_for(n);
  std::vector<std::uint32_t> out(n);
  std::uint64_t r = 0;
  for (auto _ : state) {
    ++r;
    tag::bulk_trp_slots(hasher, columnar.slot_words(), r, f, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_ScalarExpectedBitstring(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  util::Rng rng(2);
  const tag::TagSet set = tag::TagSet::make_random(n, rng);
  protocol::TrpServer server(set.ids(),
                             {.tolerated_missing = n / 100 + 1,
                              .confidence = 0.95});
  server.set_bulk_mode(false);
  std::uint64_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        server.expected_bitstring({server.frame_size(), ++r}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_BulkExpectedBitstring(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  util::Rng rng(2);
  const tag::TagSet set = tag::TagSet::make_random(n, rng);
  protocol::TrpServer server(set.ids(),
                             {.tolerated_missing = n / 100 + 1,
                              .confidence = 0.95});
  std::uint64_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        server.expected_bitstring({server.frame_size(), ++r}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

/// The repeated-challenge path the InventoryServer cache serves: after the
/// first submission, every verify is O(f/64) word compares — no hashing.
void BM_CachedRepeatVerify(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  util::Rng rng(3);
  const tag::TagSet set = tag::TagSet::make_random(n, rng);
  server::InventoryServer inv;
  server::GroupConfig cfg;
  cfg.name = "bench";
  cfg.policy = {.tolerated_missing = n / 100 + 1, .confidence = 0.95};
  const auto id = inv.enroll(set, cfg);
  const auto challenge = inv.challenge_trp(id, rng);
  const protocol::TrpServer oracle(set.ids(), cfg.policy);
  const bits::Bitstring honest = oracle.expected_bitstring(challenge);
  (void)inv.submit_trp(id, challenge, honest);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(inv.submit_trp(id, challenge, honest));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

/// One fleet inventory at 10^6 tags per zone, bulk vs. scalar: the end-to-
/// end cost of a full multi-zone monitoring run at the ROADMAP scale.
void BM_FleetMillionTagZones(benchmark::State& state) {
  const bool bulk = state.range(0) != 0;
  constexpr std::uint64_t kTags = 2000000;  // 2 zones x 10^6
  constexpr std::uint64_t kZoneCapacity = 1000000;
  util::Rng rng(4);
  const tag::TagSet population = tag::TagSet::make_random(kTags, rng);
  const server::GroupPlan plan =
      server::plan_groups({.total_tags = kTags,
                           .total_tolerance = kTags / 100,
                           .alpha = 0.95,
                           .max_group_size = kZoneCapacity});
  std::uint64_t zones = 0;
  for (auto _ : state) {
    fleet::FleetConfig config;
    config.seed = 99;
    config.threads = 2;
    fleet::FleetOrchestrator orchestrator(std::move(config));
    fleet::InventorySpec spec;
    spec.name = "warehouse";
    spec.tags = population;
    spec.plan = plan;
    spec.rounds = 1;
    spec.bulk_mode = bulk;
    (void)orchestrator.submit(std::move(spec));
    const fleet::FleetResult result = orchestrator.run();
    benchmark::DoNotOptimize(result.verdict);
    zones += result.zones;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(zones));
  state.SetLabel(bulk ? "bulk" : "scalar");
}

}  // namespace

BENCHMARK(BM_ScalarTrpSlots)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Arg(10000000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BulkTrpSlots)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Arg(10000000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScalarExpectedBitstring)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BulkExpectedBitstring)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachedRepeatVerify)->Arg(1000000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FleetMillionTagZones)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
