#include "protocol/tree_walk.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/expect.h"

namespace rfid::protocol {

TreeWalkResult run_tree_walk(std::span<const tag::Tag> present,
                             std::uint64_t stop_after_collected) {
  RFID_EXPECT(stop_after_collected <= present.size(),
              "cannot collect more tags than are present");

  // Sort the 64-bit slot words once; every prefix then corresponds to a
  // contiguous range, so "how many tags match prefix p of length L" is two
  // binary searches.
  std::vector<std::uint64_t> words;
  words.reserve(present.size());
  for (const tag::Tag& t : present) words.push_back(t.id().slot_word());
  std::sort(words.begin(), words.end());

  TreeWalkResult result;
  if (stop_after_collected == 0) return result;

  // Depth-first reader walk, 0-subtree before 1-subtree, exactly the
  // broadcast order of a real tree-walking reader. Stack entries are
  // (prefix, length); length 0 is the initial "everyone" query.
  struct Node {
    std::uint64_t prefix;
    std::uint32_t length;
  };
  std::vector<Node> stack{{0, 0}};

  while (!stack.empty() && result.collected < stop_after_collected) {
    const Node node = stack.back();
    stack.pop_back();

    // Range of sorted words starting with `prefix` (top `length` bits).
    std::uint64_t lo_word = 0;
    std::uint64_t hi_word = ~std::uint64_t{0};
    if (node.length > 0) {
      lo_word = node.prefix << (64 - node.length);
      const std::uint64_t span_mask =
          node.length == 64 ? 0 : (~std::uint64_t{0} >> node.length);
      hi_word = lo_word | span_mask;
    }
    const auto lo = std::lower_bound(words.begin(), words.end(), lo_word);
    const auto hi = std::upper_bound(words.begin(), words.end(), hi_word);
    const auto matching = static_cast<std::uint64_t>(hi - lo);

    ++result.total_queries;
    result.max_depth = std::max(result.max_depth, node.length);
    if (matching == 0) {
      ++result.empty_queries;
    } else if (matching == 1) {
      ++result.singleton_queries;
      ++result.collected;
    } else {
      ++result.collision_queries;
      if (node.length == 64) {
        // Distinct tags share a full 64-bit slot word; no deeper prefix can
        // separate them, so the reader abandons the leaf instead of looping.
        result.unresolvable += matching;
        continue;
      }
      // Push 1-child first so the 0-child is broadcast next (DFS order).
      stack.push_back({(node.prefix << 1) | 1, node.length + 1});
      stack.push_back({node.prefix << 1, node.length + 1});
    }
  }
  return result;
}

SlotSplitOutcome split_collision_slot(
    std::span<const std::uint64_t> candidate_words,
    std::span<const std::uint64_t> present_words,
    const radio::ChannelModel& channel, util::Rng& rng) {
  SlotSplitOutcome out;
  out.proven_present.assign(candidate_words.size(), 0);
  out.observed_absent.assign(candidate_words.size(), 0);
  if (candidate_words.empty()) return out;

  // Sort candidate words carrying their original index, and the replier
  // words alone; every prefix is then a contiguous range in each.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> cands;
  cands.reserve(candidate_words.size());
  for (std::uint32_t i = 0; i < candidate_words.size(); ++i) {
    cands.emplace_back(candidate_words[i], i);
  }
  std::sort(cands.begin(), cands.end());
  std::vector<std::uint64_t> repliers(present_words.begin(),
                                      present_words.end());
  std::sort(repliers.begin(), repliers.end());

  struct Node {
    std::uint64_t prefix;
    std::uint32_t length;
  };
  // The framed slot already observed the root occupied, so the walk starts
  // at the root's children (1-child pushed first: DFS broadcasts 0 first).
  std::vector<Node> stack{{1, 1}, {0, 1}};

  while (!stack.empty()) {
    const Node node = stack.back();
    stack.pop_back();

    const std::uint64_t lo_word = node.prefix << (64 - node.length);
    const std::uint64_t span_mask =
        node.length == 64 ? 0 : (~std::uint64_t{0} >> node.length);
    const std::uint64_t hi_word = lo_word | span_mask;

    const auto cand_lo = std::lower_bound(
        cands.begin(), cands.end(),
        std::pair<std::uint64_t, std::uint32_t>{lo_word, 0});
    const auto cand_hi = std::upper_bound(
        cands.begin(), cands.end(),
        std::pair<std::uint64_t, std::uint32_t>{hi_word, ~std::uint32_t{0}});
    const auto possible = static_cast<std::uint64_t>(cand_hi - cand_lo);
    // The server knows no enrolled tag can answer here: skip the broadcast.
    if (possible == 0) continue;

    const auto rep_lo =
        std::lower_bound(repliers.begin(), repliers.end(), lo_word);
    const auto rep_hi =
        std::upper_bound(repliers.begin(), repliers.end(), hi_word);
    const auto replying = static_cast<std::uint32_t>(rep_hi - rep_lo);

    ++out.queries;
    out.max_depth = std::max(out.max_depth, node.length);
    const bool occupied =
        radio::occupied(radio::resolve_slot(replying, channel, rng));
    if (!occupied) {
      ++out.empty_queries;
      for (auto it = cand_lo; it != cand_hi; ++it) {
        out.observed_absent[it->second] = 1;
      }
      continue;
    }
    if (possible == 1) {
      // Occupied and only one enrolled tag could have replied: proven.
      out.proven_present[cand_lo->second] = 1;
      continue;
    }
    if (node.length == 64) {
      out.unresolvable += possible;
      continue;
    }
    stack.push_back({(node.prefix << 1) | 1, node.length + 1});
    stack.push_back({node.prefix << 1, node.length + 1});
  }
  return out;
}

}  // namespace rfid::protocol
