// Numeric tests for the binomial utilities behind Theorem 1 / Eq. 3.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "math/binomial.h"

namespace {

using rfid::math::binomial_pmf;
using rfid::math::for_each_binomial_outcome;
using rfid::math::log_binomial_coefficient;
using rfid::math::log_binomial_pmf;
using rfid::math::significant_range;

TEST(LogBinomialCoefficient, SmallExactValues) {
  EXPECT_NEAR(std::exp(log_binomial_coefficient(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(10, 5)), 252.0, 1e-7);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(0, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(7, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(7, 7)), 1.0, 1e-12);
}

TEST(LogBinomialCoefficient, SymmetricInK) {
  for (std::uint64_t k = 0; k <= 40; ++k) {
    EXPECT_NEAR(log_binomial_coefficient(40, k),
                log_binomial_coefficient(40, 40 - k), 1e-9);
  }
}

TEST(LogBinomialCoefficient, PascalRecurrenceHoldsInLogSpace) {
  // C(n,k) = C(n-1,k-1) + C(n-1,k), checked via exp for moderate n.
  for (std::uint64_t n = 2; n <= 30; ++n) {
    for (std::uint64_t k = 1; k < n; ++k) {
      const double lhs = std::exp(log_binomial_coefficient(n, k));
      const double rhs = std::exp(log_binomial_coefficient(n - 1, k - 1)) +
                         std::exp(log_binomial_coefficient(n - 1, k));
      EXPECT_NEAR(lhs, rhs, rhs * 1e-10);
    }
  }
}

TEST(LogBinomialCoefficient, RejectsKAboveN) {
  EXPECT_THROW((void)log_binomial_coefficient(3, 4), std::invalid_argument);
}

TEST(BinomialPmf, MatchesHandComputedValues) {
  // B(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16.
  EXPECT_NEAR(binomial_pmf(4, 0, 0.5), 1.0 / 16, 1e-12);
  EXPECT_NEAR(binomial_pmf(4, 1, 0.5), 4.0 / 16, 1e-12);
  EXPECT_NEAR(binomial_pmf(4, 2, 0.5), 6.0 / 16, 1e-12);
  EXPECT_NEAR(binomial_pmf(4, 4, 0.5), 1.0 / 16, 1e-12);
}

TEST(BinomialPmf, DegenerateProbabilities) {
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 9, 1.0), 0.0);
}

TEST(BinomialPmf, SumsToOneOverFullSupport) {
  for (const double p : {0.01, 0.3, 0.5, 0.9}) {
    double total = 0.0;
    for (std::uint64_t k = 0; k <= 50; ++k) total += binomial_pmf(50, k, p);
    EXPECT_NEAR(total, 1.0, 1e-10) << "p=" << p;
  }
}

TEST(BinomialPmf, RejectsInvalidInputs) {
  EXPECT_THROW((void)binomial_pmf(5, 6, 0.5), std::invalid_argument);
  EXPECT_THROW((void)binomial_pmf(5, 2, -0.1), std::invalid_argument);
  EXPECT_THROW((void)binomial_pmf(5, 2, 1.1), std::invalid_argument);
}

TEST(SignificantRange, CoversTheMean) {
  const auto range = significant_range(10000, 0.37);
  EXPECT_LE(range.lo, 3700u);
  EXPECT_GE(range.hi, 3700u);
  EXPECT_LE(range.hi, 10000u);
}

TEST(SignificantRange, DegenerateEndpoints) {
  const auto zero = significant_range(100, 0.0);
  EXPECT_EQ(zero.lo, 0u);
  EXPECT_EQ(zero.hi, 0u);
  const auto one = significant_range(100, 1.0);
  EXPECT_EQ(one.lo, 100u);
  EXPECT_EQ(one.hi, 100u);
}

TEST(SignificantRange, CapturesAlmostAllMass) {
  for (const double p : {0.05, 0.5, 0.93}) {
    const std::uint64_t n = 5000;
    const auto range = significant_range(n, p, 1e-12);
    double inside = 0.0;
    for (std::uint64_t k = range.lo; k <= range.hi; ++k) {
      inside += binomial_pmf(n, k, p);
    }
    EXPECT_GT(inside, 1.0 - 1e-9) << "p=" << p;
  }
}

TEST(SignificantRange, RejectsBadEpsilon) {
  EXPECT_THROW((void)significant_range(10, 0.5, 0.0), std::invalid_argument);
  EXPECT_THROW((void)significant_range(10, 0.5, 1.0), std::invalid_argument);
}

TEST(ForEachBinomialOutcome, MatchesDirectPmf) {
  const std::uint64_t n = 2000;
  const double p = 0.41;
  double total = 0.0;
  std::uint64_t calls = 0;
  for_each_binomial_outcome(n, p, [&](std::uint64_t k, double pmf) {
    EXPECT_NEAR(pmf, binomial_pmf(n, k, p), binomial_pmf(n, k, p) * 1e-6 + 1e-14);
    total += pmf;
    ++calls;
  });
  EXPECT_NEAR(total, 1.0, 1e-9);
  // The whole point of truncation: far fewer than n+1 evaluations.
  EXPECT_LT(calls, 600u);
  EXPECT_GT(calls, 10u);
}

TEST(ForEachBinomialOutcome, DegenerateProbabilities) {
  int calls = 0;
  for_each_binomial_outcome(50, 0.0, [&](std::uint64_t k, double pmf) {
    EXPECT_EQ(k, 0u);
    EXPECT_DOUBLE_EQ(pmf, 1.0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  calls = 0;
  for_each_binomial_outcome(50, 1.0, [&](std::uint64_t k, double pmf) {
    EXPECT_EQ(k, 50u);
    EXPECT_DOUBLE_EQ(pmf, 1.0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ForEachBinomialOutcome, IncreasingKOrder) {
  std::uint64_t last = 0;
  bool first = true;
  for_each_binomial_outcome(300, 0.6, [&](std::uint64_t k, double) {
    if (!first) {
      EXPECT_EQ(k, last + 1);
    }
    last = k;
    first = false;
  });
}

TEST(ForEachBinomialOutcome, TinyN) {
  double total = 0.0;
  for_each_binomial_outcome(1, 0.5, [&](std::uint64_t, double pmf) { total += pmf; });
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
