// Unit and property tests for the hash substrate. The protocols' analysis
// (Theorem 1) assumes uniform slot choice, so beyond reference vectors these
// tests chi-square every hash family's slot distribution.
#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "hash/fnv.h"
#include "hash/murmur.h"
#include "hash/siphash.h"
#include "hash/slot_hash.h"
#include "util/random.h"

namespace {

using rfid::hash::HashKind;
using rfid::hash::SipKey;
using rfid::hash::SlotHasher;

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

// ------------------------------------------------------------------- fnv --

TEST(Fnv, EmptyInputIsOffsetBasis) {
  EXPECT_EQ(rfid::hash::fnv1a64({}), rfid::hash::kFnv64OffsetBasis);
  EXPECT_EQ(rfid::hash::fnv1a32({}), rfid::hash::kFnv32OffsetBasis);
}

TEST(Fnv, KnownVectors) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(rfid::hash::fnv1a64(bytes_of("a")), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(rfid::hash::fnv1a64(bytes_of("foobar")), 0x85944171f73967e8ULL);
  EXPECT_EQ(rfid::hash::fnv1a32(bytes_of("a")), 0xe40c292cU);
  EXPECT_EQ(rfid::hash::fnv1a32(bytes_of("foobar")), 0xbf9cf968U);
}

TEST(Fnv, U64FastPathMatchesByteHash) {
  for (const std::uint64_t v : {0ULL, 1ULL, 0xdeadbeefULL, ~0ULL}) {
    std::vector<std::byte> raw(8);
    std::memcpy(raw.data(), &v, 8);
    EXPECT_EQ(rfid::hash::fnv1a64_u64(v), rfid::hash::fnv1a64(raw));
  }
}

// ---------------------------------------------------------------- murmur --

TEST(Murmur, Fmix64IsBijectiveOnSamples) {
  // A bijection cannot collide; sample heavily.
  std::set<std::uint64_t> outputs;
  rfid::util::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    outputs.insert(rfid::hash::murmur3_fmix64(rng()));
  }
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Murmur, Fmix64FixedPointZero) {
  EXPECT_EQ(rfid::hash::murmur3_fmix64(0), 0u);
}

TEST(Murmur, X86_32KnownVectors) {
  // Reference values cross-checked against the canonical smhasher output.
  EXPECT_EQ(rfid::hash::murmur3_x86_32({}, 0), 0u);
  EXPECT_EQ(rfid::hash::murmur3_x86_32({}, 1), 0x514e28b7U);
  EXPECT_EQ(rfid::hash::murmur3_x86_32(bytes_of("hello"), 0), 0x248bfa47U);
  EXPECT_EQ(rfid::hash::murmur3_x86_32(bytes_of("hello, world"), 0), 0x149bbb7fU);
}

TEST(Murmur, X86_32TailLengthsAllWork) {
  // 1-, 2-, 3-byte tails exercise every switch arm.
  const auto h1 = rfid::hash::murmur3_x86_32(bytes_of("a"), 7);
  const auto h2 = rfid::hash::murmur3_x86_32(bytes_of("ab"), 7);
  const auto h3 = rfid::hash::murmur3_x86_32(bytes_of("abc"), 7);
  const auto h4 = rfid::hash::murmur3_x86_32(bytes_of("abcd"), 7);
  EXPECT_NE(h1, h2);
  EXPECT_NE(h2, h3);
  EXPECT_NE(h3, h4);
}

// --------------------------------------------------------------- siphash --

TEST(SipHash, ReferenceVectorFromSpec) {
  // Appendix A of the SipHash paper: key 00..0f, message 00..0e -> value
  // 0xa129ca6149be45e5 for the 15-byte message.
  SipKey key{0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};
  std::vector<std::byte> msg(15);
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<std::byte>(i);
  EXPECT_EQ(rfid::hash::siphash24(msg, key), 0xa129ca6149be45e5ULL);
}

TEST(SipHash, EmptyMessageMatchesSpec) {
  SipKey key{0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};
  EXPECT_EQ(rfid::hash::siphash24({}, key), 0x726fdb47dd0e0e31ULL);
}

TEST(SipHash, EightByteMessageMatchesSpec) {
  // Same vector table, 8-byte message 00..07 -> 0x93f5f5799a932462.
  SipKey key{0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};
  std::vector<std::byte> msg(8);
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<std::byte>(i);
  EXPECT_EQ(rfid::hash::siphash24(msg, key), 0x93f5f5799a932462ULL);
}

TEST(SipHash, U64FastPathMatchesByteHash) {
  SipKey key{0x1234, 0x5678};
  for (const std::uint64_t v : {0ULL, 42ULL, 0xfeedfacecafebeefULL}) {
    std::vector<std::byte> raw(8);
    std::memcpy(raw.data(), &v, 8);
    EXPECT_EQ(rfid::hash::siphash24_u64(v, key), rfid::hash::siphash24(raw, key));
  }
}

TEST(SipHash, KeyChangesOutput) {
  const std::uint64_t a = rfid::hash::siphash24_u64(99, {1, 2});
  const std::uint64_t b = rfid::hash::siphash24_u64(99, {1, 3});
  EXPECT_NE(a, b);
}

// ------------------------------------------------------------- slot hash --

TEST(SlotHasher, SlotAlwaysWithinFrame) {
  rfid::util::Rng rng(5);
  for (const HashKind kind :
       {HashKind::kFnv1a64, HashKind::kMurmurFmix64, HashKind::kSipHash24}) {
    const SlotHasher hasher(kind);
    for (const std::uint32_t f : {1u, 2u, 7u, 100u, 65536u}) {
      for (int i = 0; i < 200; ++i) {
        EXPECT_LT(hasher.slot(rng(), rng(), f), f);
      }
    }
  }
}

TEST(SlotHasher, DeterministicPerInputs) {
  const SlotHasher hasher;
  EXPECT_EQ(hasher.slot(11, 22, 1000, 3), hasher.slot(11, 22, 1000, 3));
  EXPECT_EQ(hasher.mix(11, 22, 3), hasher.mix(11, 22, 3));
}

TEST(SlotHasher, CounterChangesSlotChoice) {
  // The UTRP anti-rewind property: a different counter re-randomizes the
  // slot. Statistically, across many tags ~1/f stay put; assert most move.
  const SlotHasher hasher;
  rfid::util::Rng rng(6);
  int moved = 0;
  constexpr int kTags = 1000;
  for (int i = 0; i < kTags; ++i) {
    const std::uint64_t id = rng();
    if (hasher.slot(id, 7, 512, 1) != hasher.slot(id, 7, 512, 2)) ++moved;
  }
  EXPECT_GT(moved, kTags * 9 / 10);
}

TEST(SlotHasher, RandomNumberChangesSlotChoice) {
  const SlotHasher hasher;
  rfid::util::Rng rng(8);
  int moved = 0;
  constexpr int kTags = 1000;
  for (int i = 0; i < kTags; ++i) {
    const std::uint64_t id = rng();
    if (hasher.slot(id, 1, 512) != hasher.slot(id, 2, 512)) ++moved;
  }
  EXPECT_GT(moved, kTags * 9 / 10);
}

TEST(SlotHasher, ToStringCoversAllKinds) {
  EXPECT_EQ(rfid::hash::to_string(HashKind::kFnv1a64), "fnv1a64");
  EXPECT_EQ(rfid::hash::to_string(HashKind::kMurmurFmix64), "murmur-fmix64");
  EXPECT_EQ(rfid::hash::to_string(HashKind::kSipHash24), "siphash-2-4");
}

// Parameterized uniformity sweep: every hash family must distribute random
// tag IDs across slots uniformly enough for Theorem 1 to hold.
class SlotUniformity : public ::testing::TestWithParam<HashKind> {};

TEST_P(SlotUniformity, ChiSquareOverSlots) {
  const SlotHasher hasher(GetParam());
  rfid::util::Rng rng(99);
  constexpr std::uint32_t kFrame = 128;
  constexpr int kDraws = 128 * 500;
  std::vector<int> counts(kFrame, 0);
  const std::uint64_t r = rng();
  for (int i = 0; i < kDraws; ++i) {
    ++counts[hasher.slot(rng(), r, kFrame)];
  }
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kFrame;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 127 dof; 99.9% quantile ~ 181.4.
  EXPECT_LT(chi2, 181.4) << "slot distribution skewed for "
                         << rfid::hash::to_string(GetParam());
}

TEST_P(SlotUniformity, LowBitAvalancheOnCounter) {
  // Flipping just the counter (ct -> ct+1) must flip about half the output
  // bits of the mix; weak mixing here would correlate UTRP re-seeds.
  const SlotHasher hasher(GetParam());
  rfid::util::Rng rng(123);
  double total_flips = 0.0;
  constexpr int kSamples = 2000;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t id = rng();
    const std::uint64_t d = hasher.mix(id, 5, 1) ^ hasher.mix(id, 5, 2);
    total_flips += std::popcount(d);
  }
  const double mean_flips = total_flips / kSamples;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

INSTANTIATE_TEST_SUITE_P(AllHashKinds, SlotUniformity,
                         ::testing::Values(HashKind::kFnv1a64,
                                           HashKind::kMurmurFmix64,
                                           HashKind::kSipHash24),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case HashKind::kFnv1a64: return "Fnv";
                             case HashKind::kMurmurFmix64: return "Murmur";
                             default: return "SipHash";
                           }
                         });

}  // namespace
