#include "protocol/utrp.h"

#include <algorithm>
#include <limits>

#include "obs/catalog.h"
#include "util/expect.h"

namespace rfid::protocol {

namespace {

/// Shared walk core. `channel`/`rng` may be null for the ideal channel.
UtrpScanResult walk(std::span<tag::Tag> tags, const hash::SlotHasher& hasher,
                    const UtrpChallenge& challenge,
                    const radio::ChannelModel* channel, util::Rng* rng) {
  const std::uint32_t f = challenge.frame_size;
  RFID_EXPECT(f >= 1, "challenge has no slots");
  RFID_EXPECT(challenge.seeds.size() >= 1, "challenge has no seeds");

  UtrpScanResult result;
  result.bitstring = bits::Bitstring(f);

  // Initial broadcast (Alg. 5 line 2): every tag increments its counter and
  // picks a slot within the full frame.
  std::vector<std::size_t> active;
  std::vector<std::uint32_t> pick(tags.size(), 0);
  active.reserve(tags.size());
  for (std::size_t i = 0; i < tags.size(); ++i) {
    tags[i].begin_round();
    pick[i] = tags[i].utrp_receive_seed(hasher, challenge.seeds[0], f);
    active.push_back(i);
  }
  result.seeds_consumed = 1;

  result.slots_hashed = tags.size();

  std::uint32_t subframe_start = 0;  // global slot where the current sub-frame begins

  while (!active.empty()) {
    // Between re-seeds every slot before the earliest pick is empty, so jump
    // straight to the next reply event: the minimum pick in the sub-frame.
    std::uint32_t min_pick = std::numeric_limits<std::uint32_t>::max();
    for (const std::size_t i : active) min_pick = std::min(min_pick, pick[i]);

    const std::uint32_t global = subframe_start + min_pick;
    RFID_ENSURE(global < f, "tag picked a slot beyond the frame");

    // All tags that chose this slot transmit and keep silent afterwards
    // (Alg. 7 line 5) — whether or not the reader decodes anything.
    std::uint32_t occupancy = 0;
    std::erase_if(active, [&](std::size_t i) {
      if (pick[i] != min_pick) return false;
      tags[i].silence();
      ++occupancy;
      return true;
    });
    result.replies += occupancy;

    const radio::SlotOutcome outcome =
        channel == nullptr
            ? (occupancy >= 2 ? radio::SlotOutcome::kCollision
                              : radio::SlotOutcome::kSingle)
            : radio::resolve_slot(occupancy, *channel, *rng);
    if (!radio::occupied(outcome)) continue;  // replies lost: reader saw nothing

    result.bitstring.set(global);

    // Re-seed (Alg. 6 lines 6–7): the remainder of the frame becomes a new
    // sub-frame of f' = f − (global+1) slots under the next server seed.
    if (global + 1 >= f) break;  // reply in the last slot: frame over
    ++result.reseeds;
    RFID_ENSURE(result.seeds_consumed < challenge.seeds.size(),
                "server issued too few seeds for this frame");
    const std::uint64_t seed = challenge.seeds[result.seeds_consumed++];
    const std::uint32_t sub_frame = f - (global + 1);
    subframe_start = global + 1;
    for (const std::size_t i : active) {
      pick[i] = tags[i].utrp_receive_seed(hasher, seed, sub_frame);
    }
    result.slots_hashed += active.size();
  }
  return result;
}

}  // namespace

UtrpScanResult utrp_scan_columnar(tag::ColumnarTagSet& tags,
                                  const hash::SlotHasher& hasher,
                                  const UtrpChallenge& challenge) {
  const std::uint32_t f = challenge.frame_size;
  RFID_EXPECT(f >= 1, "challenge has no slots");
  RFID_EXPECT(challenge.seeds.size() >= 1, "challenge has no seeds");

  UtrpScanResult result;
  result.bitstring = bits::Bitstring(f);

  const std::size_t n = tags.size();
  std::vector<std::uint32_t> pick(n, 0);

  // Initial broadcast: clear silenced flags, then one bulk pass increments
  // every counter and picks a slot in the full frame.
  tags.begin_round();
  tag::bulk_utrp_receive_seed(hasher, tags, challenge.seeds[0], f, pick);
  result.seeds_consumed = 1;
  result.slots_hashed = n;
  std::size_t active_count = n;

  const std::span<const std::uint64_t> silenced = tags.silenced_words();
  std::uint32_t subframe_start = 0;

  while (active_count > 0) {
    // Next reply event: the minimum pick among unsilenced tags. The bitmap
    // word-skips fully-silenced blocks of 64.
    std::uint32_t min_pick = std::numeric_limits<std::uint32_t>::max();
    for (std::size_t base = 0; base < n; base += 64) {
      std::uint64_t live = ~silenced[base / 64];
      const std::size_t limit = (n - base < 64) ? n - base : 64;
      if (limit < 64) live &= (std::uint64_t{1} << limit) - 1;
      while (live != 0) {
        const std::size_t i =
            base + static_cast<std::size_t>(std::countr_zero(live));
        live &= live - 1;
        min_pick = std::min(min_pick, pick[i]);
      }
    }

    const std::uint32_t global = subframe_start + min_pick;
    RFID_ENSURE(global < f, "tag picked a slot beyond the frame");

    // Every tag that chose this slot transmits and keeps silent afterwards.
    std::uint32_t occupancy = 0;
    for (std::size_t base = 0; base < n; base += 64) {
      std::uint64_t live = ~silenced[base / 64];
      const std::size_t limit = (n - base < 64) ? n - base : 64;
      if (limit < 64) live &= (std::uint64_t{1} << limit) - 1;
      while (live != 0) {
        const std::size_t i =
            base + static_cast<std::size_t>(std::countr_zero(live));
        live &= live - 1;
        if (pick[i] == min_pick) {
          tags.silence(i);
          ++occupancy;
        }
      }
    }
    result.replies += occupancy;
    active_count -= occupancy;

    // Ideal channel: any occupancy is observed (kSingle / kCollision).
    result.bitstring.set(global);

    if (global + 1 >= f) break;  // reply in the last slot: frame over
    ++result.reseeds;
    RFID_ENSURE(result.seeds_consumed < challenge.seeds.size(),
                "server issued too few seeds for this frame");
    const std::uint64_t seed = challenge.seeds[result.seeds_consumed++];
    const std::uint32_t sub_frame = f - (global + 1);
    subframe_start = global + 1;
    tag::bulk_utrp_receive_seed(hasher, tags, seed, sub_frame, pick);
    result.slots_hashed += active_count;
  }
  return result;
}

UtrpScanResult utrp_scan(std::span<tag::Tag> tags, const hash::SlotHasher& hasher,
                         const UtrpChallenge& challenge) {
  return walk(tags, hasher, challenge, nullptr, nullptr);
}

UtrpScanResult utrp_scan(std::span<tag::Tag> tags, const hash::SlotHasher& hasher,
                         const UtrpChallenge& challenge,
                         const radio::ChannelModel& channel, util::Rng& rng) {
  if (channel.ideal()) return walk(tags, hasher, challenge, nullptr, nullptr);
  return walk(tags, hasher, challenge, &channel, &rng);
}

UtrpServer::UtrpServer(const tag::TagSet& enrolled, MonitoringPolicy policy,
                       std::uint64_t comm_budget, std::uint32_t slack_slots,
                       hash::SlotHasher hasher)
    : mirror_(enrolled.tags().begin(), enrolled.tags().end()),
      policy_(policy),
      comm_budget_(comm_budget),
      hasher_(hasher) {
  RFID_EXPECT(!mirror_.empty(), "cannot monitor an empty group");
  RFID_EXPECT(policy_.tolerated_missing + 1 <= mirror_.size(),
              "tolerance m must satisfy m + 1 <= n");
  plan_ = math::optimize_utrp_frame(mirror_.size(), policy_.tolerated_missing,
                                    policy_.confidence, comm_budget_,
                                    slack_slots, policy_.model);
}

UtrpServer::UtrpServer(const tag::TagSet& enrolled, MonitoringPolicy policy,
                       std::uint64_t comm_budget, const math::UtrpPlan& plan,
                       hash::SlotHasher hasher)
    : mirror_(enrolled.tags().begin(), enrolled.tags().end()),
      policy_(policy),
      comm_budget_(comm_budget),
      hasher_(hasher),
      plan_(plan) {
  RFID_EXPECT(!mirror_.empty(), "cannot monitor an empty group");
  RFID_EXPECT(policy_.tolerated_missing + 1 <= mirror_.size(),
              "tolerance m must satisfy m + 1 <= n");
  RFID_EXPECT(plan_.frame_size >= 1, "injected plan has no slots");
}

void UtrpServer::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    instruments_ = Instruments{};
    return;
  }
  namespace cat = obs::catalog;
  instruments_.challenges = &cat::challenges_total(*registry, "utrp");
  instruments_.rounds_intact = &cat::rounds_total(*registry, "utrp", "intact");
  instruments_.rounds_mismatch =
      &cat::rounds_total(*registry, "utrp", "mismatch");
  instruments_.rounds_deadline_missed =
      &cat::rounds_total(*registry, "utrp", "deadline_missed");
  instruments_.slots = &cat::slots_total(*registry, "utrp");
  instruments_.mismatched_slots =
      &cat::mismatched_slots_total(*registry, "utrp");
  instruments_.mirror_reseeds = &cat::reseeds_total(*registry, "mirror");
  instruments_.bulk_slots = &cat::bulk_slots_total(*registry, "utrp_seed");
  instruments_.frame_size = &cat::frame_size(*registry, "utrp");
}

UtrpChallenge UtrpServer::issue_challenge(util::Rng& rng) const {
  if (instruments_.challenges != nullptr) {
    instruments_.challenges->inc();
    instruments_.frame_size->observe(static_cast<double>(plan_.frame_size));
  }
  UtrpChallenge challenge;
  challenge.frame_size = plan_.frame_size;
  challenge.seeds.reserve(challenge.frame_size);
  for (std::uint32_t i = 0; i < challenge.frame_size; ++i) {
    challenge.seeds.push_back(rng());
  }
  return challenge;
}

bits::Bitstring UtrpServer::expected_bitstring(const UtrpChallenge& challenge) const {
  if (bulk_) {
    tag::ColumnarTagSet columnar = tag::ColumnarTagSet::from_tags(mirror_);
    UtrpScanResult scan = utrp_scan_columnar(columnar, hasher_, challenge);
    if (instruments_.bulk_slots != nullptr) {
      instruments_.bulk_slots->inc(scan.slots_hashed);
    }
    return std::move(scan.bitstring);
  }
  std::vector<tag::Tag> copy = mirror_;
  return utrp_scan(copy, hasher_, challenge).bitstring;
}

Verdict UtrpServer::verify(const UtrpChallenge& challenge,
                           const bits::Bitstring& reported,
                           bool deadline_met) const {
  const bits::Bitstring expected = expected_bitstring(challenge);
  RFID_EXPECT(reported.size() == expected.size(),
              "reported bitstring has wrong length");
  Verdict verdict;
  verdict.deadline_met = deadline_met;
  verdict.mismatched_slots = expected.hamming_distance(reported);
  verdict.intact = deadline_met && verdict.mismatched_slots == 0;
  if (verdict.mismatched_slots != 0) {
    verdict.first_mismatch_slot = *expected.first_difference(reported);
  }
  if (instruments_.slots != nullptr) {
    instruments_.slots->inc(challenge.frame_size);
    instruments_.mismatched_slots->inc(verdict.mismatched_slots);
    if (!deadline_met) {
      instruments_.rounds_deadline_missed->inc();
    } else if (verdict.intact) {
      instruments_.rounds_intact->inc();
    } else {
      instruments_.rounds_mismatch->inc();
    }
  }
  return verdict;
}

void UtrpServer::commit_round(const UtrpChallenge& challenge,
                              const Verdict& verdict) {
  if (!verdict.intact) {
    // The real walk may have diverged from the expected one at the first
    // mismatch; counters beyond that point are unknowable remotely.
    needs_resync_ = true;
    return;
  }
  if (bulk_) {
    tag::ColumnarTagSet columnar = tag::ColumnarTagSet::from_tags(mirror_);
    const UtrpScanResult replay = utrp_scan_columnar(columnar, hasher_, challenge);
    // Write the advanced counters (and transient silenced flags) back so the
    // row-oriented mirror stays byte-equal to what the scalar in-place walk
    // would have produced — mirror(), snapshots, and dump_state never see a
    // difference between the two modes.
    for (std::size_t i = 0; i < mirror_.size(); ++i) {
      tag::Tag t(columnar.id(i), columnar.counter(i));
      if (columnar.silenced(i)) t.silence();
      mirror_[i] = t;
    }
    if (instruments_.mirror_reseeds != nullptr) {
      instruments_.mirror_reseeds->inc(replay.reseeds);
    }
    if (instruments_.bulk_slots != nullptr) {
      instruments_.bulk_slots->inc(replay.slots_hashed);
    }
    return;
  }
  const UtrpScanResult replay = utrp_scan(mirror_, hasher_, challenge);
  if (instruments_.mirror_reseeds != nullptr) {
    instruments_.mirror_reseeds->inc(replay.reseeds);
  }
}

void UtrpServer::resync(const tag::TagSet& audited) {
  RFID_EXPECT(audited.size() == mirror_.size(),
              "audit must cover the enrolled group");
  mirror_.assign(audited.tags().begin(), audited.tags().end());
  needs_resync_ = false;
}

}  // namespace rfid::protocol
