// Missing-tag IDENTIFICATION (extension): not just "something is missing"
// but "these exact tags are missing" — still without transmitting any ID
// over the air.
//
// This paper founded the missing-tag detection line; the natural follow-up
// problem (addressed by later work in the same line) is identification. The
// same bitstring machinery solves it:
//
//   Per round, with challenge (f, r), the server knows every tag's slot.
//   * A slot the server expects occupied but observes EMPTY proves that
//     every tag mapping to it is absent (present tags always reply).
//   * A slot with exactly ONE expected mapper observed OCCUPIED proves that
//     tag present (nobody else could have replied there).
//   * Slots with several expected mappers observed occupied are ambiguous;
//     those tags stay "unknown" and are re-examined next round under fresh
//     randomness.
//
//   Rounds repeat until no tag is unknown (or a round cap is hit). Frames
//   are sized to the tags that still reply — proven-present tags cannot be
//   silenced without addressing them by ID, so f ≈ (enrolled − proven
//   missing). At load ≈ 1 each round proves a constant expected fraction of
//   the unknowns (sole-mapper / empty-slot probabilities are both ≈ e^{-1}),
//   so the round count is O(log n) and total slots O(n log n).
//
// The verdicts are *proofs* under the ideal-channel model: no false
// accusations and no false clearances (tests assert exactness). Reply loss
// turns "missing" verdicts into suspicions — callers on lossy links should
// re-run or demand the same verdict twice.
#pragma once

#include <cstdint>
#include <vector>

#include "hash/slot_hash.h"
#include "radio/channel.h"
#include "tag/tag.h"
#include "tag/tag_id.h"
#include "util/random.h"

namespace rfid::protocol {

struct IdentifyConfig {
  /// Per-round frame size as a multiple of the tags still replying (enrolled
  /// minus proven-missing). Load factor 1 is near-optimal; larger trades
  /// slots for rounds.
  double frame_load = 1.0;
  /// Give up after this many rounds (0 slots left unknown on exit is the
  /// common case well before this cap).
  std::uint32_t max_rounds = 64;
  radio::ChannelModel channel = {};
};

struct IdentifyResult {
  std::vector<tag::TagId> missing;    // proven absent
  std::vector<tag::TagId> present;    // proven present
  std::vector<tag::TagId> unresolved; // round cap hit before classification
  std::uint64_t rounds = 0;
  std::uint64_t total_slots = 0;
};

/// Runs the identification campaign: `enrolled` is the server's ID list,
/// `present_tags` the physically present population the reader can reach.
/// `rng` drives challenge randomness (and channel noise, if any).
[[nodiscard]] IdentifyResult identify_missing_tags(
    const std::vector<tag::TagId>& enrolled,
    std::span<const tag::Tag> present_tags, const hash::SlotHasher& hasher,
    const IdentifyConfig& config, util::Rng& rng);

}  // namespace rfid::protocol
