// ColumnarTagSet: the struct-of-arrays twin of tag::TagSet, plus the bulk
// kernels that make million-tag populations practical.
//
// The object model (tag::Tag) is the right shape for the paper's per-tag
// state machine, but its hot loops — computing h(id ⊕ r) mod f over a whole
// population, advancing UTRP counters on a re-seed, scattering slot picks
// into a frame bitstring — pay a 32-byte stride, a per-call hash-kind
// switch, and a non-inlined Bitstring::set per tag. At the ROADMAP's
// million-tag target that overhead dominates the actual hashing.
//
// ColumnarTagSet stores the same state as contiguous columns:
//   * ids        — the full 96-bit TagIds (identity; round-trip fidelity),
//   * slot_words — TagId::slot_word() precomputed once (the only per-tag
//                  input the slot hash consumes),
//   * counters   — the UTRP monotone query counters,
//   * silenced   — a packed 64-tags-per-word bitmap ("replied this round").
//
// The bulk kernels below hoist the hash-kind dispatch out of the loop
// (one switch per call, not per tag), stream the 8-byte slot_word column,
// and accumulate frame bitstrings with branchless 64-bit word ORs. They are
// exact drop-ins: every kernel computes bit-identical results to the scalar
// Tag::trp_slot / Tag::utrp_receive_seed / Bitstring::set paths — pinned by
// tests/columnar_test.cpp (element-wise equivalence) and
// tests/columnar_diff_test.cpp (whole-session equivalence).
//
// Conversion is lossless both ways: TagSet -> ColumnarTagSet -> TagSet
// preserves ids, counters, and silenced flags for any population.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "bitstring/bitstring.h"
#include "hash/slot_hash.h"
#include "tag/tag.h"
#include "tag/tag_id.h"
#include "tag/tag_set.h"

namespace rfid::tag {

class ColumnarTagSet {
 public:
  ColumnarTagSet() = default;

  /// Columnarizes `tags` (state copied: ids, counters, silenced flags).
  [[nodiscard]] static ColumnarTagSet from_tags(std::span<const Tag> tags);
  [[nodiscard]] static ColumnarTagSet from_tag_set(const TagSet& set) {
    return from_tags(set.tags());
  }
  /// Fresh tags at counter 0, not silenced (a TRP enrollment: counters are
  /// not protocol state there).
  [[nodiscard]] static ColumnarTagSet from_ids(std::span<const TagId> ids);

  /// Materializes the row-oriented twin (ids, counters, silenced preserved).
  [[nodiscard]] TagSet to_tag_set() const;

  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }

  [[nodiscard]] std::span<const TagId> ids() const noexcept { return ids_; }
  [[nodiscard]] std::span<const std::uint64_t> slot_words() const noexcept {
    return slot_words_;
  }
  [[nodiscard]] std::span<const std::uint64_t> counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] std::span<std::uint64_t> counters() noexcept {
    return counters_;
  }
  /// The packed silenced bitmap, tag i at word i/64, bit i%64. Words beyond
  /// the last tag are kept zero (an invariant bulk kernels rely on).
  [[nodiscard]] std::span<const std::uint64_t> silenced_words() const noexcept {
    return silenced_;
  }

  [[nodiscard]] TagId id(std::size_t i) const { return ids_[i]; }
  [[nodiscard]] std::uint64_t counter(std::size_t i) const {
    return counters_[i];
  }
  [[nodiscard]] bool silenced(std::size_t i) const {
    return (silenced_[i / 64] >> (i % 64)) & 1U;
  }

  void silence(std::size_t i) { silenced_[i / 64] |= std::uint64_t{1} << (i % 64); }

  /// New inventory round: clears every silenced flag, counters persist —
  /// the columnar mirror of TagSet::begin_round().
  void begin_round() noexcept {
    for (auto& w : silenced_) w = 0;
  }

  /// Number of tags currently silenced (popcount over the bitmap).
  [[nodiscard]] std::size_t silenced_count() const noexcept;

  /// Contiguous sub-population [first, first + count) — how the group
  /// planner hands per-zone columnar slices to the fleet (split_by_plan's
  /// slicing, without re-deriving slot words per zone).
  [[nodiscard]] ColumnarTagSet slice(std::size_t first, std::size_t count) const;

 private:
  std::vector<TagId> ids_;
  std::vector<std::uint64_t> slot_words_;  // ids_[i].slot_word(), cached
  std::vector<std::uint64_t> counters_;
  std::vector<std::uint64_t> silenced_;    // packed, 64 tags per word
};

// ------------------------------------------------------------ kernels ----
//
// All kernels are deterministic, allocation-free on their hot path, and
// bit-identical to the scalar reference (same hash, same multiply-shift
// range reduction). frame_size must be >= 1.

/// TRP slot choice for a whole population:  out[i] = h(slot_words[i] ⊕ r)
/// mod frame_size — the bulk twin of Tag::trp_slot. `out.size()` must equal
/// `slot_words.size()`.
void bulk_trp_slots(const hash::SlotHasher& hasher,
                    std::span<const std::uint64_t> slot_words, std::uint64_t r,
                    std::uint32_t frame_size, std::span<std::uint32_t> out);

/// UTRP (f, r) reception for every tag NOT currently silenced: increments
/// its counter, then picks  h(slot_word ⊕ r ⊕ ct) mod frame_size — counter
/// increment and slot pick fused into one pass (the bulk twin of
/// Tag::utrp_receive_seed). Silenced tags are untouched and their `out`
/// entries are left unmodified. `out.size()` must equal `tags.size()`.
void bulk_utrp_receive_seed(const hash::SlotHasher& hasher, ColumnarTagSet& tags,
                            std::uint64_t r, std::uint32_t frame_size,
                            std::span<std::uint32_t> out);

/// Scatters slot picks into `frame` (1 = slot occupied) using direct 64-bit
/// word ORs — no per-bit bounds-checked call. Every slot must be
/// < frame.size(); `frame` is OR-accumulated, not cleared.
void bulk_fill_frame(std::span<const std::uint32_t> slots,
                     bits::Bitstring& frame);

/// Fused hash + scatter: the bitstring an intact population produces for a
/// TRP challenge (f, r), without materializing the slot array. This is the
/// server-side expected-bitstring hot path at bulk scale.
[[nodiscard]] bits::Bitstring bulk_trp_frame(
    const hash::SlotHasher& hasher, std::span<const std::uint64_t> slot_words,
    std::uint64_t r, std::uint32_t frame_size);

}  // namespace rfid::tag
