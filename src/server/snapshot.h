// Enrollment persistence: save/restore the server's knowledge of its groups.
//
// The protocols only work because the server's database — tag IDs and, for
// UTRP, per-tag counters — survives across monitoring rounds and server
// restarts. Snapshot is a versioned, checksummed, line-oriented text format:
//
//   RFIDMON-SNAPSHOT 1
//   GROUP <TRP|UTRP> <m> <alpha> <comm_budget> <slack_slots> <tags> <name…>
//   TAG <hi-hex> <lo-hex> <counter>
//   ...
//   END <fnv1a64-of-preceding-lines>
//
// Text (not binary) so operators can diff snapshots and audit counter
// drift; the trailing FNV-1a checksum rejects truncation and bit rot.
// Hash configuration (SlotHasher kind/key) is deployment config, not state,
// and is deliberately not serialized.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "server/inventory_server.h"
#include "tag/tag_set.h"

namespace rfid::server {

struct EnrolledGroup {
  GroupConfig config;
  tag::TagSet tags;  // IDs + counters as known at snapshot time
};

/// Writes all groups; throws std::invalid_argument on stream failure (the
/// stream is flushed and its state checked after the final write, so a
/// buffered failure cannot slip past).
void save_snapshot(std::ostream& os, const std::vector<EnrolledGroup>& groups);

/// Parses a snapshot; throws std::invalid_argument on malformed input,
/// version mismatch, or checksum failure. Error messages carry the 1-based
/// line number of the offending line ("line 42: bad TAG hex") for operator
/// triage. The stream is left positioned just past the END line, so callers
/// may append and parse trailing sections (see storage/server_state.h).
[[nodiscard]] std::vector<EnrolledGroup> load_snapshot(std::istream& is);

/// Captures a *running* server's enrollment state: group configs plus the
/// tags as persistence must record them (enrolled IDs for TRP, the live
/// counter mirror for UTRP). save_snapshot(os, enrolled_groups(server)) is
/// the canonical "snapshot the server now" call.
[[nodiscard]] std::vector<EnrolledGroup> enrolled_groups(
    const InventoryServer& server);

/// Convenience: rebuilds a live InventoryServer by re-enrolling every group
/// from the snapshot (UTRP counters are restored via the snapshot tags).
[[nodiscard]] InventoryServer restore_server(
    const std::vector<EnrolledGroup>& groups,
    hash::SlotHasher hasher = hash::SlotHasher{});

/// Recovery: re-commits a diverged UTRP mirror from a snapshot taken at a
/// fresh physical audit. Validates that the snapshot group matches the live
/// one (name, protocol, size) before handing its tags to
/// InventoryServer::resync — feeding the wrong group's counters into a
/// mirror would be a second divergence, not a recovery.
void resync_from_snapshot(InventoryServer& server, GroupId id,
                          const EnrolledGroup& audited);

}  // namespace rfid::server
