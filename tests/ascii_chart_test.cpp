// Tests for the ASCII chart renderer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/ascii_chart.h"

namespace {

using rfid::util::ChartOptions;
using rfid::util::ChartSeries;
using rfid::util::render_ascii_chart;

TEST(AsciiChart, ContainsGlyphsTitleAndLegend) {
  const std::vector<double> xs{0, 1, 2, 3};
  const ChartSeries s{"rising", {1.0, 2.0, 3.0, 4.0}, '*'};
  ChartOptions options;
  options.title = "my chart";
  const std::string out = render_ascii_chart(xs, {s}, options);
  EXPECT_NE(out.find("my chart"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("rising"), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
}

TEST(AsciiChart, RisingSeriesRisesOnTheGrid) {
  // The first point of a rising series must be drawn on a LOWER row (later
  // line) than the last point.
  const std::vector<double> xs{0, 1};
  const ChartSeries s{"up", {0.0, 10.0}, '#'};
  const std::string out = render_ascii_chart(xs, {s});
  const auto first_hash = out.find('#');
  const auto last_hash = out.rfind('#');
  ASSERT_NE(first_hash, std::string::npos);
  // Earlier in the string = higher on screen = larger y.
  const auto line_of = [&](std::size_t pos) {
    return std::count(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(pos), '\n');
  };
  EXPECT_LT(line_of(first_hash), line_of(last_hash));
  // And the high point must be near the top row: its line index is small.
  EXPECT_LE(line_of(first_hash), 1);
}

TEST(AsciiChart, ReferenceLineAppears) {
  const std::vector<double> xs{0, 1, 2};
  const ChartSeries s{"flat", {0.95, 0.96, 0.94}, '*'};
  ChartOptions options;
  options.reference_y = 0.95;
  const std::string out = render_ascii_chart(xs, {s}, options);
  // A long dashed row exists.
  EXPECT_NE(out.find("--------"), std::string::npos);
  EXPECT_NE(out.find("0.95 reference"), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesKeepTheirGlyphs) {
  const std::vector<double> xs{0, 1, 2};
  const ChartSeries a{"A", {1, 2, 3}, 'a'};
  const ChartSeries b{"B", {3, 2, 1}, 'b'};
  const std::string out = render_ascii_chart(xs, {a, b});
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(AsciiChart, FlatSeriesDoesNotDivideByZero) {
  const std::vector<double> xs{0, 1, 2};
  const ChartSeries s{"flat", {5.0, 5.0, 5.0}, '*'};
  EXPECT_NO_THROW((void)render_ascii_chart(xs, {s}));
}

TEST(AsciiChart, AxisLabelsShowRange) {
  const std::vector<double> xs{100, 2000};
  const ChartSeries s{"s", {1.0, 2.0}, '*'};
  const std::string out = render_ascii_chart(xs, {s});
  EXPECT_NE(out.find("100"), std::string::npos);
  EXPECT_NE(out.find("2000"), std::string::npos);
}

TEST(AsciiChart, RejectsBadInput) {
  EXPECT_THROW((void)render_ascii_chart({1.0}, {{"s", {1.0}, '*'}}),
               std::invalid_argument);
  EXPECT_THROW((void)render_ascii_chart({1.0, 2.0}, {}), std::invalid_argument);
  EXPECT_THROW((void)render_ascii_chart({1.0, 2.0}, {{"s", {1.0}, '*'}}),
               std::invalid_argument);
  ChartOptions tiny;
  tiny.width = 2;
  EXPECT_THROW(
      (void)render_ascii_chart({1.0, 2.0}, {{"s", {1.0, 2.0}, '*'}}, tiny),
      std::invalid_argument);
}

TEST(AsciiChart, ManyPointsResampleIntoWidth) {
  std::vector<double> xs;
  ChartSeries s{"dense", {}, '*'};
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(i);
    s.ys.push_back(std::sin(i * 0.01));
  }
  ChartOptions options;
  options.width = 40;
  const std::string out = render_ascii_chart(xs, {s}, options);
  // Every line must stay within the configured width plus label/border.
  std::size_t line_start = 0;
  for (std::size_t i = 0; i <= out.size(); ++i) {
    if (i == out.size() || out[i] == '\n') {
      EXPECT_LE(i - line_start, 40u + 20u);
      line_start = i + 1;
    }
  }
}

}  // namespace
