// Tests for the extra ID-collection baselines: query-tree walking and the
// EPC C1G2 Q algorithm.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "protocol/collect_all.h"
#include "protocol/q_protocol.h"
#include "protocol/tree_walk.h"
#include "tag/tag_set.h"
#include "util/random.h"
#include "util/stats.h"

namespace {

using rfid::protocol::QProtocolConfig;
using rfid::protocol::run_collect_all;
using rfid::protocol::run_q_protocol;
using rfid::protocol::run_tree_walk;
using rfid::tag::TagSet;

// ------------------------------------------------------------- tree walk --

TEST(TreeWalk, CollectsEveryone) {
  rfid::util::Rng rng(1);
  const TagSet set = TagSet::make_random(500, rng);
  const auto result = run_tree_walk(set.tags(), 500);
  EXPECT_EQ(result.collected, 500u);
  EXPECT_EQ(result.singleton_queries, 500u);
  EXPECT_EQ(result.total_queries, result.empty_queries +
                                      result.singleton_queries +
                                      result.collision_queries);
}

TEST(TreeWalk, QueryCountNearTheory) {
  // For n uniform IDs, the query tree protocol needs about 2.885n + O(1)
  // queries in total (classic QT analysis).
  rfid::util::Rng rng(2);
  rfid::util::RunningStat queries;
  for (int t = 0; t < 10; ++t) {
    const TagSet set = TagSet::make_random(1000, rng);
    queries.add(static_cast<double>(run_tree_walk(set.tags(), 1000).total_queries));
  }
  EXPECT_NEAR(queries.mean(), 2.885 * 1000, 250.0);
}

TEST(TreeWalk, BinaryTreeStructureInvariant) {
  // Internal (collision) nodes of a binary tree with L leaves that each
  // produce two children: collisions = singletons + empties − 1.
  rfid::util::Rng rng(3);
  const TagSet set = TagSet::make_random(300, rng);
  const auto r = run_tree_walk(set.tags(), 300);
  EXPECT_EQ(r.collision_queries + 1, r.singleton_queries + r.empty_queries);
}

TEST(TreeWalk, EarlyStopSavesQueries) {
  rfid::util::Rng rng(4);
  const TagSet set = TagSet::make_random(400, rng);
  const auto full = run_tree_walk(set.tags(), 400);
  const auto partial = run_tree_walk(set.tags(), 200);
  EXPECT_LT(partial.total_queries, full.total_queries);
  EXPECT_EQ(partial.collected, 200u);
}

TEST(TreeWalk, DepthIsLogarithmicForUniformIds) {
  rfid::util::Rng rng(5);
  const TagSet set = TagSet::make_random(1024, rng);
  const auto r = run_tree_walk(set.tags(), 1024);
  EXPECT_GE(r.max_depth, 10u);   // must at least distinguish 2^10 tags
  EXPECT_LE(r.max_depth, 40u);   // uniform 64-bit words: ~log2(n)+O(loglog)
}

TEST(TreeWalk, EdgeCases) {
  rfid::util::Rng rng(6);
  const TagSet one = TagSet::make_random(1, rng);
  const auto r1 = run_tree_walk(one.tags(), 1);
  EXPECT_EQ(r1.total_queries, 1u);
  EXPECT_EQ(r1.collected, 1u);
  EXPECT_EQ(r1.max_depth, 0u);

  const auto r0 = run_tree_walk(one.tags(), 0);
  EXPECT_EQ(r0.total_queries, 0u);

  const TagSet five = TagSet::make_random(5, rng);
  EXPECT_THROW((void)run_tree_walk(five.tags(), 6), std::invalid_argument);
}

TEST(TreeWalk, ZeroTargetCostsNothing) {
  // stop_after_collected = 0 must not broadcast a single query, whatever
  // the population size.
  rfid::util::Rng rng(61);
  const TagSet set = TagSet::make_random(64, rng);
  const auto r = run_tree_walk(set.tags(), 0);
  EXPECT_EQ(r.total_queries, 0u);
  EXPECT_EQ(r.collected, 0u);
  EXPECT_EQ(r.empty_queries, 0u);
  EXPECT_EQ(r.singleton_queries, 0u);
  EXPECT_EQ(r.collision_queries, 0u);
  EXPECT_EQ(r.unresolvable, 0u);
  EXPECT_EQ(r.max_depth, 0u);
}

// Two distinct TagIds engineered to share one 64-bit slot word:
// slot_word() = lo ^ (hi * K), so (0, w) and (1, w ^ K) collide forever.
constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

TEST(TreeWalk, DuplicateSlotWordsAreUnresolvableNotFatal) {
  const std::uint64_t w = 0x0123456789abcdefULL;
  const rfid::tag::TagId a(0, w);
  const rfid::tag::TagId b(1, w ^ kGolden);
  ASSERT_EQ(a.slot_word(), b.slot_word());
  ASSERT_NE(a, b);

  const std::vector<rfid::tag::Tag> twins{rfid::tag::Tag(a),
                                          rfid::tag::Tag(b)};
  const auto r = run_tree_walk(twins, 2);
  // The walk must terminate (no infinite descent, no throw), give up on the
  // inseparable pair, and report it.
  EXPECT_EQ(r.collected, 0u);
  EXPECT_EQ(r.unresolvable, 2u);
  EXPECT_EQ(r.max_depth, 64u);

  // A distinguishable third tag is still collected alongside the twins.
  const std::vector<rfid::tag::Tag> mixed{
      rfid::tag::Tag(a), rfid::tag::Tag(b),
      rfid::tag::Tag(rfid::tag::TagId(7, ~w))};
  const auto m = run_tree_walk(mixed, 3);
  EXPECT_EQ(m.collected, 1u);
  EXPECT_EQ(m.unresolvable, 2u);
}

TEST(TreeWalkSplit, SeparatesCollidingTagsWithDirectedQueries) {
  // Two candidates differing in the top bit, both answering: one directed
  // query per root child proves each present — impossible prefixes are
  // never broadcast.
  rfid::util::Rng rng(62);
  const std::vector<std::uint64_t> words{0x1000000000000000ULL,
                                         0x9000000000000000ULL};
  const auto out = rfid::protocol::split_collision_slot(words, words, {}, rng);
  EXPECT_EQ(out.queries, 2u);
  EXPECT_EQ(out.empty_queries, 0u);
  EXPECT_EQ(out.unresolvable, 0u);
  EXPECT_EQ(out.proven_present, (std::vector<std::uint8_t>{1, 1}));
  EXPECT_EQ(out.observed_absent, (std::vector<std::uint8_t>{0, 0}));
}

TEST(TreeWalkSplit, EmptySubtreeIsAbsenceEvidence) {
  rfid::util::Rng rng(63);
  const std::vector<std::uint64_t> candidates{0x1000000000000000ULL,
                                              0x9000000000000000ULL};
  const std::vector<std::uint64_t> answering{0x9000000000000000ULL};
  const auto out =
      rfid::protocol::split_collision_slot(candidates, answering, {}, rng);
  EXPECT_EQ(out.observed_absent, (std::vector<std::uint8_t>{1, 0}));
  EXPECT_EQ(out.proven_present, (std::vector<std::uint8_t>{0, 1}));
  EXPECT_EQ(out.empty_queries, 1u);
}

TEST(TreeWalkSplit, DuplicateWordsReportedUnresolvable) {
  // Both candidates share one word and both answer: the walk descends the
  // single live path (sibling prefixes cost nothing) and gives up at the
  // 64-bit leaf instead of looping.
  rfid::util::Rng rng(64);
  const std::uint64_t w = 0xfeedfacecafebeefULL;
  const std::vector<std::uint64_t> words{w, w};
  const auto out = rfid::protocol::split_collision_slot(words, words, {}, rng);
  EXPECT_EQ(out.unresolvable, 2u);
  EXPECT_EQ(out.proven_present, (std::vector<std::uint8_t>{0, 0}));
  EXPECT_EQ(out.observed_absent, (std::vector<std::uint8_t>{0, 0}));
  EXPECT_EQ(out.max_depth, 64u);
  // One live node per depth 1..64; every empty sibling is pruned unqueried.
  EXPECT_EQ(out.queries, 64u);
}

TEST(TreeWalkSplit, LostRepliesNeverFabricatePresence) {
  // Under heavy reply loss the split may mark answering tags absent (that
  // is only *evidence*, the caller demands a confirmation streak), but it
  // must never prove a silent tag present.
  rfid::util::Rng rng(65);
  const std::vector<std::uint64_t> candidates{0x1000000000000000ULL,
                                              0x9000000000000000ULL,
                                              0xd000000000000000ULL};
  const std::vector<std::uint64_t> answering{0x9000000000000000ULL};
  for (int trial = 0; trial < 200; ++trial) {
    const auto out = rfid::protocol::split_collision_slot(
        candidates, answering, {.reply_loss_prob = 0.4}, rng);
    EXPECT_EQ(out.proven_present[0], 0u);
    EXPECT_EQ(out.proven_present[2], 0u);
    // And a tag the walk proved present was really answering.
    if (out.proven_present[1]) {
      EXPECT_EQ(out.observed_absent[1], 0u);
    }
  }
}

TEST(TreeWalk, WorseThanDynamicAlohaForUniformIds) {
  // The reason the paper's collect-all baseline is framed-ALOHA: QT costs
  // ~2.885n vs ~e*n, and every QT query carries a prefix too.
  rfid::util::Rng rng(7);
  const TagSet set = TagSet::make_random(800, rng);
  const rfid::hash::SlotHasher hasher;
  rfid::util::RunningStat aloha;
  for (int t = 0; t < 10; ++t) {
    aloha.add(static_cast<double>(
        run_collect_all(set.tags(), hasher, {.stop_after_collected = 800}, rng)
            .total_slots));
  }
  const auto tree = run_tree_walk(set.tags(), 800);
  EXPECT_GT(static_cast<double>(tree.total_queries), aloha.mean());
}

// ------------------------------------------------------------ Q protocol --

TEST(QProtocol, CollectsEveryone) {
  rfid::util::Rng rng(8);
  const TagSet set = TagSet::make_random(300, rng);
  const auto result =
      run_q_protocol(set.tags(), {.stop_after_collected = 300}, rng);
  EXPECT_EQ(result.collected, 300u);
  EXPECT_EQ(result.singleton_slots, 300u);
  EXPECT_GT(result.total_slots, 300u);
}

TEST(QProtocol, SlotAccountingConsistent) {
  rfid::util::Rng rng(9);
  const TagSet set = TagSet::make_random(200, rng);
  const auto r = run_q_protocol(set.tags(), {.stop_after_collected = 200}, rng);
  // Every slot is empty, singleton, collision, or an adjust broadcast.
  EXPECT_EQ(r.total_slots,
            r.empty_slots + r.singleton_slots + r.collision_slots +
                r.query_adjusts);
}

TEST(QProtocol, AdaptsQTowardPopulation) {
  // Starting from the spec default Q=4 (16 slots) with 2000 tags, the
  // algorithm must climb; final Q ends in a sane range.
  rfid::util::Rng rng(10);
  const TagSet set = TagSet::make_random(2000, rng);
  const auto r = run_q_protocol(set.tags(), {.stop_after_collected = 2000}, rng);
  EXPECT_EQ(r.collected, 2000u);
  EXPECT_GT(r.query_adjusts, 1u);
}

TEST(QProtocol, CostWithinSmallFactorOfOptimalAloha) {
  // Q's adaptive overhead over Lee-style perfect sizing is known to be
  // modest (tens of percent, not multiples).
  rfid::util::Rng rng(11);
  const TagSet set = TagSet::make_random(1000, rng);
  const rfid::hash::SlotHasher hasher;
  rfid::util::RunningStat q_cost;
  rfid::util::RunningStat aloha_cost;
  for (int t = 0; t < 10; ++t) {
    q_cost.add(static_cast<double>(
        run_q_protocol(set.tags(), {.stop_after_collected = 1000}, rng)
            .total_slots));
    aloha_cost.add(static_cast<double>(
        run_collect_all(set.tags(), hasher, {.stop_after_collected = 1000}, rng)
            .total_slots));
  }
  EXPECT_LT(q_cost.mean(), aloha_cost.mean() * 2.0);
  EXPECT_GT(q_cost.mean(), aloha_cost.mean() * 0.5);
}

TEST(QProtocol, EarlyStopHonored) {
  rfid::util::Rng rng(12);
  const TagSet set = TagSet::make_random(500, rng);
  const auto r = run_q_protocol(set.tags(), {.stop_after_collected = 100}, rng);
  EXPECT_EQ(r.collected, 100u);
}

TEST(QProtocol, ZeroTargetDoesNothing) {
  rfid::util::Rng rng(13);
  const TagSet set = TagSet::make_random(10, rng);
  const auto r = run_q_protocol(set.tags(), {.stop_after_collected = 0}, rng);
  EXPECT_EQ(r.total_slots, 0u);
}

TEST(QProtocol, RejectsBadConfig) {
  rfid::util::Rng rng(14);
  const TagSet set = TagSet::make_random(10, rng);
  EXPECT_THROW(
      (void)run_q_protocol(set.tags(), {.stop_after_collected = 11}, rng),
      std::invalid_argument);
  EXPECT_THROW((void)run_q_protocol(
                   set.tags(),
                   {.initial_q = 4.0, .step_c = 0.0, .stop_after_collected = 5},
                   rng),
               std::invalid_argument);
  EXPECT_THROW((void)run_q_protocol(
                   set.tags(),
                   {.initial_q = 16.0, .step_c = 0.3, .stop_after_collected = 5},
                   rng),
               std::invalid_argument);
}

TEST(QProtocol, SingleTagFastPath) {
  rfid::util::Rng rng(15);
  const TagSet set = TagSet::make_random(1, rng);
  const auto r = run_q_protocol(
      set.tags(), {.initial_q = 0.0, .step_c = 0.3, .stop_after_collected = 1},
      rng);
  EXPECT_EQ(r.collected, 1u);
  EXPECT_LE(r.total_slots, 3u);
}

}  // namespace
