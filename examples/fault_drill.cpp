// Fault drill: scripted disasters against a monitoring deployment, and the
// recovery machinery that survives them.
//
// Act 1 runs TRP rounds through a hostile backhaul scripted as a FaultPlan
// (burst loss, corrupted frames, duplicates, reordering, and a mid-round
// reader crash) and shows the session finishing with correct verdicts
// anyway — backoff retransmission, checksum rejection, idempotent round
// caches, and the crash/restart path all working together.
//
// Act 2 stages the failure the paper leaves out of scope (Sec. 5): a reader
// crash mid-UTRP-round forces a re-scan, the tags' monotone counters run
// ahead of the server's mirror, verification fails, and needs_resync trips.
// The operator's snapshot-based resync then heals the mirror, the alert log
// records the recovery, and monitoring verifies clean again.
#include <cstdio>
#include <sstream>

#include "rfidmon.h"

namespace {

void print_outcome(const char* label, const rfid::wire::SessionOutcome& o) {
  std::printf("%s: %llu rounds, %s", label,
              static_cast<unsigned long long>(o.rounds_completed),
              o.completed ? "completed"
                          : std::string(rfid::wire::to_string(o.failure)).c_str());
  std::printf(
      " | sent %llu, burst-dropped %llu, corrupt-rejected %llu, dup %llu, "
      "crashes %llu, retx %llu\n",
      static_cast<unsigned long long>(o.frames_sent),
      static_cast<unsigned long long>(o.burst_frames_dropped),
      static_cast<unsigned long long>(o.corrupt_frames_dropped),
      static_cast<unsigned long long>(o.frames_duplicated),
      static_cast<unsigned long long>(o.reader_crashes),
      static_cast<unsigned long long>(o.retransmissions));
  for (std::size_t i = 0; i < o.verdicts.size(); ++i) {
    std::printf("  round %zu: %s\n", i + 1,
                o.verdicts[i].intact ? "intact" : "ALERT");
  }
}

}  // namespace

int main() {
  using namespace rfid;
  util::Rng rng(1899);

  std::printf("=== Act 1: TRP through a scripted disaster ===\n");
  const fault::FaultPlan storm = fault::parse_fault_plan(
      "# every pathology at once, from one seed\n"
      "seed 7\n"
      "burst 0.05 0.2      # ~20% loss in bursts of ~5 frames\n"
      "corrupt 0.05        # one flipped bit per hit; checksum catches it\n"
      "duplicate 0.2\n"
      "reorder 0.2 5000\n"
      "crash 60000 100000  # reader power-cycles mid-round\n");
  std::printf("scripted stationary burst loss: %.0f%%\n\n",
              100.0 * storm.burst.stationary_loss());

  tag::TagSet shelf = tag::TagSet::make_random(200, rng);
  const protocol::TrpServer trp_server(
      shelf.ids(), {.tolerated_missing = 5, .confidence = 0.95});
  wire::SessionConfig config;
  config.group_name = "shelf";
  config.max_retries = 40;
  config.faults = &storm;
  {
    sim::EventQueue queue;
    const auto outcome =
        wire::run_trp_session(queue, trp_server, shelf.tags(), 4, config, rng);
    print_outcome("TRP under fire", outcome);
  }

  std::printf("\n=== Act 2: UTRP crash -> divergence -> snapshot resync ===\n");
  server::InventoryServer inventory;
  tag::TagSet vault = tag::TagSet::make_random(150, rng);
  server::GroupConfig vault_config;
  vault_config.name = "vault";
  vault_config.policy = {.tolerated_missing = 3, .confidence = 0.95};
  vault_config.protocol = server::ProtocolKind::kUtrp;
  const server::GroupId vault_id = inventory.enroll(vault, vault_config);

  // The reader crashes mid-round and restarts: the server replays the cached
  // challenge, the reader re-scans, and the tags' counters advance past the
  // mirror. We drive this through the session layer against a standalone
  // UtrpServer (the protocol engine the InventoryServer wraps).
  protocol::UtrpServer utrp_server(
      vault, vault_config.policy, vault_config.comm_budget,
      vault_config.slack_slots);
  const fault::FaultPlan crash = fault::parse_fault_plan("crash 5000 20000\n");
  wire::SessionConfig vault_session;
  vault_session.group_name = "vault";
  vault_session.faults = &crash;
  {
    sim::EventQueue queue;
    const auto outcome = wire::run_utrp_session(queue, utrp_server,
                                                vault.tags(), 1, vault_session,
                                                rng);
    print_outcome("UTRP with crash", outcome);
    std::printf("server needs resync: %s\n",
                utrp_server.needs_resync() ? "YES (counters diverged)" : "no");
  }

  // Recovery: physical audit -> snapshot -> resync. The InventoryServer
  // mirrors the same flow at the fleet level; here the audit file round-trips
  // through the snapshot format for realism.
  std::stringstream audit_file;
  server::save_snapshot(audit_file, {{vault_config, vault}});
  const auto audited = server::load_snapshot(audit_file);
  utrp_server.resync(audited.front().tags);
  server::resync_from_snapshot(inventory, vault_id, audited.front());
  std::printf("\nafter resync: needs_resync = %s, fleet alert log:\n",
              utrp_server.needs_resync() ? "YES" : "no");
  for (const auto& alert : inventory.alerts()) {
    std::printf("  [%s] group '%s' at round %llu\n",
                std::string(server::to_string(alert.kind)).c_str(),
                alert.group_name.c_str(),
                static_cast<unsigned long long>(alert.round));
  }

  {
    sim::EventQueue queue;
    const auto outcome = wire::run_utrp_session(queue, utrp_server,
                                                vault.tags(), 3, {}, rng);
    print_outcome("UTRP after resync", outcome);
    std::printf("server needs resync: %s\n",
                utrp_server.needs_resync() ? "YES" : "no");
  }
  return 0;
}
