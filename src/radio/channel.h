// Imperfect-channel effects between tags and reader.
//
// The paper evaluates on an ideal channel; real deployments see reply loss
// (fades, blocked tags — the very reason the paper argues for a tolerance m)
// and the capture effect (one of several colliding replies decodes anyway).
// ChannelModel lets tests and ablation benches inject both.
#pragma once

#include <cstdint>

#include "radio/slot.h"
#include "util/random.h"

namespace rfid::radio {

struct ChannelModel {
  /// Probability that an individual tag's reply is lost (i.i.d. per reply).
  double reply_loss_prob = 0.0;
  /// Probability that a slot with >= 2 surviving replies decodes as one
  /// reply (capture effect) instead of a collision.
  double capture_prob = 0.0;

  [[nodiscard]] constexpr bool ideal() const noexcept {
    return reply_loss_prob == 0.0 && capture_prob == 0.0;
  }
};

/// Resolves what the reader observes in a slot that `occupancy` tags chose.
/// Draws from `rng` only when the channel is imperfect, so ideal-channel
/// simulations stay deterministic given the tag population.
[[nodiscard]] SlotOutcome resolve_slot(std::uint32_t occupancy,
                                       const ChannelModel& channel,
                                       util::Rng& rng) noexcept;

}  // namespace rfid::radio
