// Tests for the multi-group InventoryServer front-end.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "protocol/utrp.h"
#include "server/inventory_server.h"
#include "server/snapshot.h"
#include "storage/server_state.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::protocol::MonitoringPolicy;
using rfid::server::GroupConfig;
using rfid::server::GroupId;
using rfid::server::InventoryServer;
using rfid::server::ProtocolKind;
using rfid::tag::TagSet;

GroupConfig trp_config(std::string name, std::uint64_t m, double alpha = 0.95) {
  GroupConfig cfg;
  cfg.name = std::move(name);
  cfg.policy = MonitoringPolicy{.tolerated_missing = m, .confidence = alpha};
  cfg.protocol = ProtocolKind::kTrp;
  return cfg;
}

GroupConfig utrp_config(std::string name, std::uint64_t m, double alpha = 0.95) {
  GroupConfig cfg = trp_config(std::move(name), m, alpha);
  cfg.protocol = ProtocolKind::kUtrp;
  return cfg;
}

TEST(InventoryServer, EnrollsHeterogeneousGroups) {
  rfid::util::Rng rng(1);
  InventoryServer server;
  const TagSet razors = TagSet::make_random(50, rng);
  const TagSet pallets = TagSet::make_random(800, rng);
  const GroupId g1 = server.enroll(razors, trp_config("razors", 0, 0.99));
  const GroupId g2 = server.enroll(pallets, utrp_config("pallets", 30));
  EXPECT_EQ(server.group_count(), 2u);
  EXPECT_EQ(server.group_size(g1), 50u);
  EXPECT_EQ(server.group_size(g2), 800u);
  EXPECT_EQ(server.config(g1).name, "razors");
  EXPECT_EQ(server.config(g2).name, "pallets");
  EXPECT_GT(server.frame_size(g1), 0u);
  EXPECT_GT(server.frame_size(g2), 0u);
}

TEST(InventoryServer, ToStringNames) {
  EXPECT_EQ(rfid::server::to_string(ProtocolKind::kTrp), "TRP");
  EXPECT_EQ(rfid::server::to_string(ProtocolKind::kUtrp), "UTRP");
}

TEST(InventoryServer, TrpRoundLifecycle) {
  rfid::util::Rng rng(2);
  InventoryServer server;
  const TagSet set = TagSet::make_random(300, rng);
  const GroupId id = server.enroll(set, trp_config("shelf", 5));

  const auto challenge = server.challenge_trp(id, rng);
  const rfid::protocol::TrpReader reader;
  const auto verdict =
      server.submit_trp(id, challenge, reader.scan(set.tags(), challenge, rng));
  EXPECT_TRUE(verdict.intact);
  EXPECT_EQ(server.rounds_completed(id), 1u);
  EXPECT_TRUE(server.alerts().empty());
}

TEST(InventoryServer, TrpTheftRaisesAlertWithTriage) {
  rfid::util::Rng rng(3);
  InventoryServer server;
  TagSet set = TagSet::make_random(600, rng);
  const GroupId id = server.enroll(set, trp_config("shelf", 5));
  (void)set.steal_random(200, rng);

  const auto challenge = server.challenge_trp(id, rng);
  const rfid::protocol::TrpReader reader;
  const auto verdict =
      server.submit_trp(id, challenge, reader.scan(set.tags(), challenge, rng));
  EXPECT_FALSE(verdict.intact);
  ASSERT_EQ(server.alerts().size(), 1u);
  const auto& alert = server.alerts().front();
  EXPECT_EQ(alert.group_name, "shelf");
  EXPECT_EQ(alert.enrolled_size, 600u);
  EXPECT_GT(alert.mismatched_slots, 0u);
  // Triage: the estimate should be much closer to 400 than to 600.
  EXPECT_LT(alert.estimated_present, 520.0);
  EXPECT_GT(alert.estimated_present, 280.0);
}

TEST(InventoryServer, UtrpRoundLifecycleWithCommit) {
  rfid::util::Rng rng(4);
  InventoryServer server;
  TagSet set = TagSet::make_random(250, rng);
  const GroupId id = server.enroll(set, utrp_config("cage", 5));
  const rfid::protocol::UtrpReader reader;

  for (int round = 0; round < 3; ++round) {
    const auto challenge = server.challenge_utrp(id, rng);
    const auto scan = reader.scan(set.tags(), challenge);
    const auto verdict = server.submit_utrp(id, challenge, scan.bitstring, true);
    EXPECT_TRUE(verdict.intact) << "round " << round;
    EXPECT_FALSE(server.needs_resync(id));
    set.begin_round();
  }
  EXPECT_EQ(server.rounds_completed(id), 3u);
}

TEST(InventoryServer, UtrpDeadlineMissRaisesAlert) {
  rfid::util::Rng rng(5);
  InventoryServer server;
  TagSet set = TagSet::make_random(150, rng);
  const GroupId id = server.enroll(set, utrp_config("cage", 5));
  const rfid::protocol::UtrpReader reader;
  const auto challenge = server.challenge_utrp(id, rng);
  const auto scan = reader.scan(set.tags(), challenge);
  const auto verdict = server.submit_utrp(id, challenge, scan.bitstring,
                                          /*deadline_met=*/false);
  EXPECT_FALSE(verdict.intact);
  ASSERT_EQ(server.alerts().size(), 1u);
  EXPECT_TRUE(server.alerts().front().deadline_missed);
}

TEST(InventoryServer, ProtocolMismatchRejected) {
  rfid::util::Rng rng(6);
  InventoryServer server;
  const TagSet set = TagSet::make_random(40, rng);
  const GroupId trp_id = server.enroll(set, trp_config("a", 2));
  const GroupId utrp_id = server.enroll(set, utrp_config("b", 2));
  EXPECT_THROW((void)server.challenge_utrp(trp_id, rng), std::invalid_argument);
  EXPECT_THROW((void)server.challenge_trp(utrp_id, rng), std::invalid_argument);
}

TEST(InventoryServer, UnknownGroupRejected) {
  InventoryServer server;
  EXPECT_THROW((void)server.group_size(GroupId{0}), std::invalid_argument);
}

TEST(InventoryServer, EmptyEnrollmentRejected) {
  InventoryServer server;
  EXPECT_THROW((void)server.enroll(TagSet{}, trp_config("x", 0)),
               std::invalid_argument);
}

TEST(InventoryServer, GroupsAreIndependent) {
  // A theft in one group must not affect another group's verdicts.
  rfid::util::Rng rng(7);
  InventoryServer server;
  TagSet a = TagSet::make_random(200, rng);
  TagSet b = TagSet::make_random(200, rng);
  const GroupId ga = server.enroll(a, trp_config("a", 2));
  const GroupId gb = server.enroll(b, trp_config("b", 2));
  (void)a.steal_random(100, rng);

  const rfid::protocol::TrpReader reader;
  const auto ca = server.challenge_trp(ga, rng);
  EXPECT_FALSE(server.submit_trp(ga, ca, reader.scan(a.tags(), ca, rng)).intact);
  const auto cb = server.challenge_trp(gb, rng);
  EXPECT_TRUE(server.submit_trp(gb, cb, reader.scan(b.tags(), cb, rng)).intact);
  EXPECT_EQ(server.alerts().size(), 1u);
  EXPECT_EQ(server.alerts().front().group_name, "a");
}

TEST(InventoryServer, DifferentPoliciesGiveDifferentFrames) {
  // The flexibility claim: same set size, different (m, alpha) => different
  // challenge sizes.
  rfid::util::Rng rng(8);
  InventoryServer server;
  const TagSet set = TagSet::make_random(500, rng);
  const GroupId strict = server.enroll(set, trp_config("strict", 0, 0.99));
  const GroupId loose = server.enroll(set, trp_config("loose", 30, 0.9));
  EXPECT_GT(server.frame_size(strict), server.frame_size(loose));
}

TEST(InventoryServer, ResyncHealsDivergedMirrorAndLogsRecovery) {
  // Full incident timeline: a rogue scan diverges the counters, the next
  // round alerts and trips needs_resync, a resync from a fresh audit heals
  // the mirror, and subsequent rounds verify clean. The alert log records
  // both the failure and the recovery, in order.
  rfid::util::Rng rng(9);
  InventoryServer server;
  TagSet set = TagSet::make_random(200, rng);
  const GroupId id = server.enroll(set, utrp_config("vault", 2));
  const rfid::protocol::UtrpReader reader;

  // Rogue reader advances real counters behind the server's back.
  {
    rfid::util::Rng rogue_rng(99);
    rfid::protocol::UtrpChallenge rogue;
    rogue.frame_size = server.frame_size(id);
    for (std::uint32_t i = 0; i < rogue.frame_size; ++i) {
      rogue.seeds.push_back(rogue_rng());
    }
    (void)rfid::protocol::utrp_scan(set.tags(), rfid::hash::SlotHasher{}, rogue);
    set.begin_round();
  }

  const auto c1 = server.challenge_utrp(id, rng);
  const auto v1 =
      server.submit_utrp(id, c1, reader.scan(set.tags(), c1).bitstring, true);
  EXPECT_FALSE(v1.intact);
  ASSERT_TRUE(server.needs_resync(id));
  ASSERT_EQ(server.alerts().size(), 1u);
  EXPECT_EQ(server.alerts()[0].kind, rfid::server::AlertKind::kRoundFailure);
  set.begin_round();

  // Recovery path: a fresh physical audit, resynced through the snapshot
  // helper (as an operator restoring from an audit file would).
  const rfid::server::EnrolledGroup audit{server.config(id), set};
  rfid::server::resync_from_snapshot(server, id, audit);
  EXPECT_FALSE(server.needs_resync(id));
  ASSERT_EQ(server.alerts().size(), 2u);
  EXPECT_EQ(server.alerts()[1].kind, rfid::server::AlertKind::kResync);
  EXPECT_EQ(server.alerts()[1].group_name, "vault");

  for (int round = 0; round < 2; ++round) {
    const auto c = server.challenge_utrp(id, rng);
    const auto v =
        server.submit_utrp(id, c, reader.scan(set.tags(), c).bitstring, true);
    EXPECT_TRUE(v.intact) << "post-resync round " << round;
    set.begin_round();
  }
  EXPECT_FALSE(server.needs_resync(id));
  EXPECT_EQ(server.alerts().size(), 2u);  // no new alerts after recovery
}

TEST(InventoryServer, ResyncRejectsWrongTargets) {
  rfid::util::Rng rng(10);
  InventoryServer server;
  TagSet trp_set = TagSet::make_random(50, rng);
  TagSet utrp_set = TagSet::make_random(50, rng);
  const GroupId trp_id = server.enroll(trp_set, trp_config("shelf", 2));
  const GroupId utrp_id = server.enroll(utrp_set, utrp_config("cage", 2));

  // TRP groups have no mirror.
  EXPECT_THROW(server.resync(trp_id, trp_set), std::invalid_argument);
  EXPECT_THROW((void)server.utrp_mirror(trp_id), std::invalid_argument);

  // Snapshot-group validation: name and size must match the live group.
  rfid::server::EnrolledGroup wrong_name{utrp_config("wrong", 2), utrp_set};
  EXPECT_THROW(rfid::server::resync_from_snapshot(server, utrp_id, wrong_name),
               std::invalid_argument);
  rfid::server::EnrolledGroup wrong_size{utrp_config("cage", 2),
                                         TagSet::make_random(10, rng)};
  EXPECT_THROW(rfid::server::resync_from_snapshot(server, utrp_id, wrong_size),
               std::invalid_argument);
}

TEST(InventoryServer, AlertSequencesAreMonotonicAcrossGroups) {
  // Alerts carry a server-wide monotone sequence number so the incident
  // timeline stays totally ordered even interleaved across groups — and
  // stays stable through persistence (the storage tests round-trip it).
  rfid::util::Rng rng(12);
  InventoryServer server;
  TagSet shelf = TagSet::make_random(200, rng);
  TagSet cage = TagSet::make_random(100, rng);
  const GroupId g0 = server.enroll(shelf, trp_config("shelf", 1));
  const GroupId g1 = server.enroll(cage, utrp_config("cage", 1));
  const rfid::protocol::TrpReader trp_reader;
  const rfid::protocol::UtrpReader utrp_reader;

  // Interleave failures: TRP theft, UTRP deadline miss, resync, TRP theft.
  TagSet looted = shelf;
  (void)looted.steal_random(60, rng);
  const auto c1 = server.challenge_trp(g0, rng);
  (void)server.submit_trp(g0, c1, trp_reader.scan(looted.tags(), c1, rng));
  const auto c2 = server.challenge_utrp(g1, rng);
  (void)server.submit_utrp(g1, c2, utrp_reader.scan(cage.tags(), c2).bitstring,
                           /*deadline_met=*/false);
  cage.begin_round();
  server.resync(g1, cage);
  const auto c3 = server.challenge_trp(g0, rng);
  (void)server.submit_trp(g0, c3, trp_reader.scan(looted.tags(), c3, rng));

  const auto& alerts = server.alerts();
  ASSERT_GE(alerts.size(), 4u);
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    EXPECT_EQ(alerts[i].sequence, i) << "alert " << i;
    if (i > 0) {
      EXPECT_LT(alerts[i - 1].sequence, alerts[i].sequence);
    }
  }
}

TEST(InventoryServer, UtrpMirrorTracksCommittedCounters) {
  rfid::util::Rng rng(11);
  InventoryServer server;
  TagSet set = TagSet::make_random(100, rng);
  const GroupId id = server.enroll(set, utrp_config("cage", 3));
  const rfid::protocol::UtrpReader reader;

  const auto c = server.challenge_utrp(id, rng);
  (void)server.submit_utrp(id, c, reader.scan(set.tags(), c).bitstring, true);
  set.begin_round();

  // After an intact committed round the mirror's counters equal the real
  // tags' counters, id by id.
  const TagSet mirror = server.utrp_mirror(id);
  ASSERT_EQ(mirror.size(), set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(mirror.at(i).id(), set.at(i).id());
    EXPECT_EQ(mirror.at(i).counter(), set.at(i).counter());
  }
}

// -------------------------------------------------- group lifecycle ----

TEST(InventoryServer, ReEnrollReplacesMembershipInPlace) {
  rfid::util::Rng rng(20);
  InventoryServer server;
  TagSet original = TagSet::make_random(100, rng);
  const GroupId id = server.enroll(original, trp_config("aisle", 2));

  // Complete one round, then re-enroll with a fresh (smaller) audit.
  const rfid::protocol::TrpReader reader;
  const auto c1 = server.challenge_trp(id, rng);
  EXPECT_TRUE(
      server.submit_trp(id, c1, reader.scan(original.tags(), c1, rng)).intact);
  EXPECT_EQ(server.rounds_completed(id), 1u);

  TagSet replaced = TagSet::make_random(60, rng);
  server.re_enroll(id, replaced, trp_config("aisle-v2", 1));
  EXPECT_EQ(server.group_count(), 1u);  // same identity, no new group
  EXPECT_EQ(server.group_size(id), 60u);
  EXPECT_EQ(server.config(id).name, "aisle-v2");
  EXPECT_EQ(server.rounds_completed(id), 0u);  // the new engine starts fresh

  // The replaced membership is what rounds verify against now.
  const auto c2 = server.challenge_trp(id, rng);
  EXPECT_TRUE(
      server.submit_trp(id, c2, reader.scan(replaced.tags(), c2, rng)).intact);
}

TEST(InventoryServer, DecommissionTombstonesWithoutShiftingIds) {
  rfid::util::Rng rng(21);
  InventoryServer server;
  const TagSet a = TagSet::make_random(50, rng);
  const TagSet b = TagSet::make_random(50, rng);
  const GroupId ga = server.enroll(a, trp_config("a", 1));
  const GroupId gb = server.enroll(b, trp_config("b", 1));

  server.decommission(ga);
  EXPECT_FALSE(server.active(ga));
  EXPECT_TRUE(server.active(gb));
  EXPECT_EQ(server.group_count(), 2u);  // the index space never shrinks
  EXPECT_THROW((void)server.challenge_trp(ga, rng), std::invalid_argument);
  EXPECT_THROW(server.decommission(ga), std::invalid_argument);  // once only

  // The live group is untouched by its neighbor's tombstone.
  const rfid::protocol::TrpReader reader;
  const auto cb = server.challenge_trp(gb, rng);
  EXPECT_TRUE(server.submit_trp(gb, cb, reader.scan(b.tags(), cb, rng)).intact);

  // Re-enrollment reactivates the tombstone in place.
  const TagSet fresh = TagSet::make_random(40, rng);
  server.re_enroll(ga, fresh, trp_config("a-v2", 1));
  EXPECT_TRUE(server.active(ga));
  const auto ca = server.challenge_trp(ga, rng);
  EXPECT_TRUE(
      server.submit_trp(ga, ca, reader.scan(fresh.tags(), ca, rng)).intact);
}

TEST(InventoryServer, ExpectedCacheServesRepeatsAndDropsOnReEnroll) {
  rfid::util::Rng rng(31);
  InventoryServer server;
  const TagSet a = TagSet::make_random(80, rng);
  const GroupId g = server.enroll(a, trp_config("cached", 2));
  EXPECT_EQ(server.expected_cache_entries(), 0u);

  const rfid::protocol::TrpReader reader;
  const auto c = server.challenge_trp(g, rng);
  EXPECT_TRUE(server.submit_trp(g, c, reader.scan(a.tags(), c, rng)).intact);
  EXPECT_EQ(server.expected_cache_entries(), 1u);
  // Replaying the same challenge hits the cache; a fresh one adds an entry.
  EXPECT_TRUE(server.submit_trp(g, c, reader.scan(a.tags(), c, rng)).intact);
  EXPECT_EQ(server.expected_cache_entries(), 1u);
  const auto c2 = server.challenge_trp(g, rng);
  EXPECT_TRUE(server.submit_trp(g, c2, reader.scan(a.tags(), c2, rng)).intact);
  EXPECT_EQ(server.expected_cache_entries(), 2u);

  // Re-enroll with DIFFERENT membership, then replay the pinned challenge:
  // a stale cached expectation (computed from the old membership) would
  // alarm against the new group's honest scan.
  const TagSet fresh = TagSet::make_random(80, rng);
  server.re_enroll(g, fresh, trp_config("cached-v2", 2));
  EXPECT_EQ(server.expected_cache_entries(), 0u);
  EXPECT_TRUE(server.submit_trp(g, c, reader.scan(fresh.tags(), c, rng)).intact);
}

TEST(InventoryServer, ExpectedCacheInvalidatesPerGroupOnDecommission) {
  rfid::util::Rng rng(32);
  InventoryServer server;
  const TagSet a = TagSet::make_random(50, rng);
  const TagSet b = TagSet::make_random(50, rng);
  const GroupId ga = server.enroll(a, trp_config("going", 1));
  const GroupId gb = server.enroll(b, trp_config("staying", 1));

  const rfid::protocol::TrpReader reader;
  const auto ca = server.challenge_trp(ga, rng);
  const auto cb = server.challenge_trp(gb, rng);
  (void)server.submit_trp(ga, ca, reader.scan(a.tags(), ca, rng));
  (void)server.submit_trp(gb, cb, reader.scan(b.tags(), cb, rng));
  EXPECT_EQ(server.expected_cache_entries(), 2u);

  // Tombstoning drops ONLY the decommissioned group's entries; its
  // neighbor's cached expectation keeps serving repeats.
  server.decommission(ga);
  EXPECT_EQ(server.expected_cache_entries(), 1u);
  EXPECT_TRUE(server.submit_trp(gb, cb, reader.scan(b.tags(), cb, rng)).intact);
}

TEST(InventoryServer, ExpectedCacheEmptyAfterResyncAndSnapshotLoad) {
  rfid::util::Rng rng(33);
  InventoryServer server;
  const TagSet trp_tags = TagSet::make_random(60, rng);
  TagSet utrp_tags = TagSet::make_random(60, rng);
  const GroupId gt = server.enroll(trp_tags, trp_config("shelf", 1));
  const GroupId gu = server.enroll(utrp_tags, utrp_config("cage", 1));

  const rfid::protocol::TrpReader reader;
  const auto c = server.challenge_trp(gt, rng);
  (void)server.submit_trp(gt, c, reader.scan(trp_tags.tags(), c, rng));
  EXPECT_EQ(server.expected_cache_entries(), 1u);

  // Resync rebuilds the UTRP mirror; the TRP group's cache entry is
  // untouched (the invalidation is keyed by group).
  server.resync(gu, utrp_tags);
  EXPECT_EQ(server.expected_cache_entries(), 1u);

  // A server rebuilt from persistence starts with a cold cache and still
  // verifies the pinned challenge correctly from scratch.
  const std::string dump = rfid::storage::dump_state(server);
  std::istringstream is(dump);
  InventoryServer rebuilt =
      rfid::storage::build_server(rfid::storage::read_state(is));
  EXPECT_EQ(rebuilt.expected_cache_entries(), 0u);
  rfid::util::Rng rng2(34);
  EXPECT_TRUE(
      rebuilt.submit_trp(gt, c, reader.scan(trp_tags.tags(), c, rng2)).intact);
  EXPECT_EQ(rebuilt.expected_cache_entries(), 1u);
}

TEST(InventoryServer, BulkModeConfigReachesEngines) {
  rfid::util::Rng rng(35);
  InventoryServer server;
  const TagSet tags = TagSet::make_random(64, rng);
  GroupConfig scalar_cfg = trp_config("scalar-group", 1);
  scalar_cfg.bulk_mode = false;
  const GroupId g = server.enroll(tags, scalar_cfg);
  EXPECT_FALSE(server.config(g).bulk_mode);

  // Scalar and bulk groups must behave identically; run an honest round to
  // show the scalar engine is live and correct.
  const rfid::protocol::TrpReader reader;
  const auto c = server.challenge_trp(g, rng);
  EXPECT_TRUE(server.submit_trp(g, c, reader.scan(tags.tags(), c, rng)).intact);

  // The knob is an execution detail, not protocol state: the persistence
  // fingerprint of a scalar group matches a bulk group's bit for bit.
  InventoryServer twin;
  (void)twin.enroll(tags, trp_config("scalar-group", 1));
  InventoryServer twin_scalar;
  GroupConfig cfg2 = trp_config("scalar-group", 1);
  cfg2.bulk_mode = false;
  (void)twin_scalar.enroll(tags, cfg2);
  EXPECT_EQ(rfid::storage::dump_state(twin),
            rfid::storage::dump_state(twin_scalar));
}

TEST(InventoryServer, ActiveFlagSurvivesPersistenceRoundTrip) {
  rfid::util::Rng rng(22);
  InventoryServer server;
  const TagSet a = TagSet::make_random(40, rng);
  const TagSet b = TagSet::make_random(40, rng);
  const GroupId ga = server.enroll(a, trp_config("kept", 1));
  const GroupId gb = server.enroll(b, trp_config("retired", 1));
  server.decommission(gb);

  const std::string dump = rfid::storage::dump_state(server);
  std::istringstream is(dump);
  const InventoryServer rebuilt =
      rfid::storage::build_server(rfid::storage::read_state(is));
  EXPECT_TRUE(rebuilt.active(ga));
  EXPECT_FALSE(rebuilt.active(gb));
  EXPECT_EQ(rfid::storage::dump_state(rebuilt), dump);
}

}  // namespace
