// Result presentation: aligned console tables and CSV output.
//
// Every bench binary in this repository regenerates one of the paper's
// figures as a table of series; Table gives them a uniform look and an
// optional machine-readable CSV dump (--csv flag handled by bench mains).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rfid::util {

/// A simple column-oriented table. Cells are stored as strings; numeric
/// helpers format with a fixed precision. Rows are built left to right.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Must be followed by exactly one add_cell per column.
  void begin_row();
  void add_cell(std::string value);
  void add_cell(long long value);
  void add_cell(unsigned long long value);
  void add_cell(double value, int precision = 4);

  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::string& cell(std::size_t row, std::size_t col) const;

  /// Writes an aligned, human-readable rendering with a header separator.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Formats `value` with `precision` digits after the decimal point.
[[nodiscard]] std::string format_double(double value, int precision = 4);

}  // namespace rfid::util
