#include "server/snapshot.h"

#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "hash/fnv.h"
#include "util/expect.h"

namespace rfid::server {

namespace {

constexpr std::string_view kMagic = "RFIDMON-SNAPSHOT 1";

[[nodiscard]] std::uint64_t checksum_of(const std::string& body) {
  return hash::fnv1a64(
      std::span(reinterpret_cast<const std::byte*>(body.data()), body.size()));
}

[[nodiscard]] std::string format_group_line(const EnrolledGroup& group) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "GROUP %s %" PRIu64 " %.17g %" PRIu64 " %u %zu ",
                group.config.protocol == ProtocolKind::kTrp ? "TRP" : "UTRP",
                group.config.policy.tolerated_missing,
                group.config.policy.confidence, group.config.comm_budget,
                group.config.slack_slots, group.tags.size());
  return std::string(buf) + group.config.name + "\n";
}

[[nodiscard]] std::string format_tag_line(const tag::Tag& t) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "TAG %08x %016" PRIx64 " %" PRIu64 "\n",
                t.id().hi(), t.id().lo(), t.counter());
  return buf;
}

}  // namespace

void save_snapshot(std::ostream& os, const std::vector<EnrolledGroup>& groups) {
  std::string body;
  body += kMagic;
  body += '\n';
  for (const EnrolledGroup& group : groups) {
    RFID_EXPECT(group.config.name.find('\n') == std::string::npos,
                "group names must be single-line");
    body += format_group_line(group);
    for (const tag::Tag& t : group.tags.tags()) body += format_tag_line(t);
  }
  os << body << "END " << std::hex << checksum_of(body) << std::dec << '\n';
  // Flush before checking: a failure the streambuf buffered during the
  // writes above (e.g. a full disk) only surfaces in the stream state once
  // the buffer drains. Checking os.good() without the flush would report
  // success for a snapshot that never reached its destination.
  os.flush();
  RFID_EXPECT(os.good(), "snapshot stream write failed");
}

std::vector<EnrolledGroup> load_snapshot(std::istream& is) {
  std::string body;
  std::string line;
  // Every failure names the 1-based line it was detected on, so an operator
  // staring at a hand-edited or damaged snapshot knows where to look.
  std::uint64_t lineno = 0;
  const auto at = [&lineno](std::string_view what) {
    return "line " + std::to_string(lineno) + ": " + std::string(what);
  };

  ++lineno;
  RFID_EXPECT(static_cast<bool>(std::getline(is, line)), "empty snapshot");
  RFID_EXPECT(line == kMagic,
              at("unsupported snapshot version or not a snapshot"));
  body += line;
  body += '\n';

  std::vector<EnrolledGroup> groups;
  std::vector<std::string> seen_names;
  std::vector<tag::Tag> pending_tags;
  bool saw_end = false;
  std::size_t expected_tags = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.rfind("END ", 0) == 0) {
      std::uint64_t declared = 0;
      try {
        std::size_t consumed = 0;
        declared = std::stoull(line.substr(4), &consumed, 16);
        RFID_EXPECT(consumed == line.size() - 4, "bad END checksum hex");
      } catch (const std::invalid_argument&) {
        RFID_EXPECT(false, at("bad END checksum hex"));
      } catch (const std::out_of_range&) {
        RFID_EXPECT(false, at("bad END checksum hex"));
      }
      RFID_EXPECT(declared == checksum_of(body),
                  at("snapshot checksum mismatch"));
      saw_end = true;
      break;
    }
    body += line;
    body += '\n';

    if (line.rfind("GROUP ", 0) == 0) {
      // Close out the previous group.
      if (!groups.empty()) {
        RFID_EXPECT(pending_tags.size() == expected_tags,
                    at("group tag count mismatch"));
        groups.back().tags = tag::TagSet(std::move(pending_tags));
        pending_tags = {};
      }
      std::istringstream fields(line.substr(6));
      std::string proto;
      EnrolledGroup group;
      std::size_t tag_count = 0;
      fields >> proto >> group.config.policy.tolerated_missing >>
          group.config.policy.confidence >> group.config.comm_budget >>
          group.config.slack_slots >> tag_count;
      RFID_EXPECT(!fields.fail(), at("malformed GROUP line"));
      RFID_EXPECT(proto == "TRP" || proto == "UTRP",
                  at("unknown protocol tag"));
      group.config.protocol =
          proto == "TRP" ? ProtocolKind::kTrp : ProtocolKind::kUtrp;
      std::getline(fields, group.config.name);
      if (!group.config.name.empty() && group.config.name.front() == ' ') {
        group.config.name.erase(0, 1);
      }
      for (const std::string& name : seen_names) {
        RFID_EXPECT(name != group.config.name,
                    at("duplicate GROUP name: " + group.config.name));
      }
      seen_names.push_back(group.config.name);
      expected_tags = tag_count;
      pending_tags.reserve(tag_count);
      groups.push_back(std::move(group));
    } else if (line.rfind("TAG ", 0) == 0) {
      RFID_EXPECT(!groups.empty(), at("TAG line before any GROUP"));
      unsigned hi = 0;
      std::uint64_t lo = 0;
      std::uint64_t counter = 0;
      RFID_EXPECT(std::sscanf(line.c_str(), "TAG %x %" SCNx64 " %" SCNu64, &hi,
                              &lo, &counter) == 3,
                  at("bad TAG hex"));
      pending_tags.emplace_back(tag::TagId(hi, lo), counter);
    } else {
      RFID_EXPECT(false, at("unrecognized snapshot line: " + line));
    }
  }
  RFID_EXPECT(saw_end, at("snapshot truncated (no END line)"));
  if (!groups.empty()) {
    RFID_EXPECT(pending_tags.size() == expected_tags,
                at("group tag count mismatch"));
    groups.back().tags = tag::TagSet(std::move(pending_tags));
  }
  return groups;
}

std::vector<EnrolledGroup> enrolled_groups(const InventoryServer& server) {
  std::vector<EnrolledGroup> groups;
  groups.reserve(server.group_count());
  for (std::size_t i = 0; i < server.group_count(); ++i) {
    const GroupId id{i};
    groups.push_back(EnrolledGroup{server.config(id), server.group_tags(id)});
  }
  return groups;
}

InventoryServer restore_server(const std::vector<EnrolledGroup>& groups,
                               hash::SlotHasher hasher) {
  InventoryServer server(hasher);
  for (const EnrolledGroup& group : groups) {
    (void)server.enroll(group.tags, group.config);
  }
  return server;
}

void resync_from_snapshot(InventoryServer& server, GroupId id,
                          const EnrolledGroup& audited) {
  RFID_EXPECT(audited.config.protocol == ProtocolKind::kUtrp,
              "resync applies to UTRP groups only");
  RFID_EXPECT(audited.config.name == server.config(id).name,
              "snapshot group name does not match the live group");
  RFID_EXPECT(audited.tags.size() == server.group_size(id),
              "snapshot tag count does not match the enrolled size");
  server.resync(id, audited.tags);
}

}  // namespace rfid::server
