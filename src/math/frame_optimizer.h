// Frame-size optimizers: Eq. (2) for TRP and Eq. (3) for UTRP.
//
// TRP (Sec. 4.3): the scanning time is proportional to the frame size, so
// the server picks f = min { f : g(n, m+1, f) > α } — by Lemma 1 / Theorem 2
// the x = m+1 case is the adversary's best (hardest-to-detect) choice.
//
// UTRP (Sec. 5.4): a dishonest reader pair that can afford c inter-reader
// communications produces a bitstring whose first c' (expected) slots are
// correct; only tags replying after slot c' help detection. With
//   c'       = c · e^{(n−m−1)/f}                       (Theorem 3)
//   x ~ B(m+1,    1 − c'/f)   missing tags that still show   (Theorem 4)
//   y ~ B(n−m−1,  1 − c'/f)   present tags that still show   (Theorem 5)
// the frame must satisfy
//   Σ_i Σ_j P(x=i) P(y=j) · g(i+j, i, f−c')  >  α.     (Eq. 3)
// The paper adds 5–10 slots of slack because the expected-value derivation
// of c' is slightly optimistic; `slack_slots` reproduces that.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "math/detection.h"

namespace rfid::math {

/// Result of the TRP optimization (Eq. 2).
struct TrpPlan {
  std::uint32_t frame_size = 0;      // minimal f with g(n, m+1, f) > alpha
  double predicted_detection = 0.0;  // g at that f
};

/// Result of the UTRP optimization (Eq. 3).
struct UtrpPlan {
  std::uint32_t frame_size = 0;      // minimal satisfying f, plus slack
  std::uint32_t optimal_frame = 0;   // minimal satisfying f, before slack
  double predicted_detection = 0.0;  // Eq. 3 left-hand side at frame_size
  double expected_cprime = 0.0;      // Theorem 3's c' at frame_size
};

/// Upper bound for the frame-size search; beyond this the parameters are
/// unsatisfiable in practice (e.g. alpha so close to 1 that no frame works
/// within memory budgets) and the optimizers throw std::invalid_argument.
inline constexpr std::uint32_t kMaxFrameSize = 1u << 24;

/// Eq. (2): minimal f such that g(n, m+1, f) > alpha.
/// Requires 1 <= m+1 <= n and alpha in (0, 1).
[[nodiscard]] TrpPlan optimize_trp_frame(
    std::uint64_t n, std::uint64_t m, double alpha,
    EmptySlotModel model = EmptySlotModel::kPoissonApprox);

/// Evaluates the left-hand side of Eq. (3) for a candidate frame size.
/// Returns 0 when c' >= f (the adversary can coordinate the whole frame).
[[nodiscard]] double utrp_detection_probability(
    std::uint64_t n, std::uint64_t m, std::uint64_t c, std::uint64_t f,
    EmptySlotModel model = EmptySlotModel::kPoissonApprox);

/// Eq. (3): minimal f satisfying the accuracy constraint against a
/// two-reader adversary with communication budget c, plus `slack_slots`.
[[nodiscard]] UtrpPlan optimize_utrp_frame(
    std::uint64_t n, std::uint64_t m, double alpha, std::uint64_t c,
    std::uint32_t slack_slots = 8,
    EmptySlotModel model = EmptySlotModel::kPoissonApprox);

/// Finds the minimal f in [1, kMaxFrameSize] with pred(f) true, assuming
/// pred is (effectively) monotone nondecreasing in f: exponential search for
/// a bracket, binary search inside it, then a downward walk to absorb any
/// residual non-monotonic wobble near the boundary. Shared by every frame
/// optimizer (Eq. 2, Eq. 3, and the fused generalization).
template <typename Pred>
std::uint32_t minimal_satisfying_frame(Pred&& pred, std::uint32_t start_hint) {
  std::uint32_t hi = start_hint == 0 ? 1 : start_hint;
  while (!pred(hi)) {
    if (hi >= kMaxFrameSize) {
      throw std::invalid_argument(
          "frame optimization: no frame size up to 2^24 satisfies the "
          "accuracy constraint; relax alpha or m");
    }
    hi = hi > kMaxFrameSize / 2 ? kMaxFrameSize : hi * 2;
  }
  // Establish pred(lo) == false. If the hint already satisfied pred, keep
  // halving so the binary search has a genuine bracket.
  std::uint32_t lo = hi / 2;
  while (lo >= 1 && pred(lo)) {
    hi = lo;
    lo /= 2;
  }
  while (lo + 1 < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (pred(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  while (hi > 1 && pred(hi - 1)) --hi;
  return hi;
}

}  // namespace rfid::math
