#include "bitstring/bitstring.h"

#include <bit>

#include "util/expect.h"

namespace rfid::bits {

Bitstring::Bitstring(std::size_t size) : size_(size), words_(word_count(size), 0) {}

bool Bitstring::test(std::size_t pos) const {
  RFID_EXPECT(pos < size_, "bit index out of range");
  return (words_[pos / kWordBits] >> (pos % kWordBits)) & 1U;
}

void Bitstring::set(std::size_t pos, bool value) {
  RFID_EXPECT(pos < size_, "bit index out of range");
  const std::uint64_t mask = std::uint64_t{1} << (pos % kWordBits);
  if (value) {
    words_[pos / kWordBits] |= mask;
  } else {
    words_[pos / kWordBits] &= ~mask;
  }
}

void Bitstring::clear() noexcept {
  for (auto& w : words_) w = 0;
}

std::size_t Bitstring::count() const noexcept {
  std::size_t total = 0;
  for (const auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::optional<std::size_t> Bitstring::first_difference(const Bitstring& other) const {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t diff = words_[i] ^ other.words_[i];
    if (diff != 0) {
      return i * kWordBits + static_cast<std::size_t>(std::countr_zero(diff));
    }
  }
  return std::nullopt;
}

std::size_t Bitstring::hamming_distance(const Bitstring& other) const {
  check_same_size(other);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return total;
}

Bitstring& Bitstring::operator|=(const Bitstring& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

Bitstring& Bitstring::operator&=(const Bitstring& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

Bitstring& Bitstring::operator^=(const Bitstring& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

std::string Bitstring::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(words_.size() * 16);
  for (const auto w : words_) {
    for (int nibble = 15; nibble >= 0; --nibble) {
      out.push_back(kDigits[(w >> (4 * nibble)) & 0xfU]);
    }
  }
  return out;
}

Bitstring Bitstring::from_hex(std::size_t size, const std::string& hex) {
  Bitstring bs(size);
  RFID_EXPECT(hex.size() == bs.words_.size() * 16,
              "hex length does not match bitstring size");
  for (std::size_t i = 0; i < bs.words_.size(); ++i) {
    std::uint64_t w = 0;
    for (std::size_t j = 0; j < 16; ++j) {
      const char ch = hex[i * 16 + j];
      std::uint64_t digit = 0;
      if (ch >= '0' && ch <= '9') digit = static_cast<std::uint64_t>(ch - '0');
      else if (ch >= 'a' && ch <= 'f') digit = static_cast<std::uint64_t>(ch - 'a' + 10);
      else if (ch >= 'A' && ch <= 'F') digit = static_cast<std::uint64_t>(ch - 'A' + 10);
      else RFID_EXPECT(false, "invalid hex digit");
      w = (w << 4) | digit;
    }
    bs.words_[i] = w;
  }
  // Reject payload bits beyond the declared size rather than silently
  // dropping them — a mismatch means a corrupted or mis-sized message.
  Bitstring copy = bs;
  copy.mask_tail();
  RFID_EXPECT(copy.words_ == bs.words_, "hex encodes bits beyond declared size");
  return bs;
}

std::string Bitstring::to_binary_string() const {
  std::string out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(test(i) ? '1' : '0');
  return out;
}

void Bitstring::check_same_size(const Bitstring& other) const {
  RFID_EXPECT(size_ == other.size_, "bitstring sizes differ");
}

void Bitstring::mask_tail() noexcept {
  const std::size_t tail_bits = size_ % kWordBits;
  if (tail_bits != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail_bits) - 1;
  }
}

}  // namespace rfid::bits
