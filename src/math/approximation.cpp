#include "math/approximation.h"

#include <cmath>

#include "math/frame_optimizer.h"
#include "util/expect.h"

namespace rfid::math {

double detection_probability_mean_field(std::uint64_t n, std::uint64_t x,
                                        std::uint64_t f) {
  RFID_EXPECT(x <= n, "cannot have more missing tags than tags");
  RFID_EXPECT(f >= 1, "frame size must be positive");
  if (x == 0) return 0.0;
  const double p_empty =
      std::exp(-static_cast<double>(n) / static_cast<double>(f));
  // 1 − (1 − p)^x via expm1/log1p for stability when p is tiny.
  return -std::expm1(static_cast<double>(x) * std::log1p(-p_empty));
}

std::uint32_t approximate_trp_frame(std::uint64_t n, std::uint64_t m,
                                    double alpha) {
  RFID_EXPECT(n >= 1, "need at least one tag");
  RFID_EXPECT(m + 1 <= n, "tolerance m must satisfy m + 1 <= n");
  RFID_EXPECT(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");

  // Invert 1 − (1 − e^{−n/f})^{m+1} > alpha for f:
  //   e^{−n/f} > 1 − (1 − alpha)^{1/(m+1)}
  //   f > −n / ln(1 − (1 − alpha)^{1/(m+1)})
  const double x = static_cast<double>(m + 1);
  const double per_tag_miss = std::exp(std::log1p(-alpha) / x);  // (1−α)^{1/x}
  const double required_empty = 1.0 - per_tag_miss;
  RFID_EXPECT(required_empty > 0.0 && required_empty < 1.0,
              "alpha too extreme for the closed form");
  const double f = -static_cast<double>(n) / std::log(required_empty);
  RFID_EXPECT(f < static_cast<double>(kMaxFrameSize),
              "closed-form frame exceeds the supported maximum");
  return static_cast<std::uint32_t>(std::ceil(f));
}

}  // namespace rfid::math
