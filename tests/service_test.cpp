// MonitorService end-to-end over loopback: hermetic two-endpoint tests with
// ephemeral ports and full start/stop lifecycle. Every test spins a private
// service, talks to it through ServiceClient, and asserts on the typed
// conversation — no fixed ports, no leftover state, no sleeps for
// correctness (only bounded receive timeouts).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/service.h"
#include "storage/backend.h"
#include "storage/daemon_journal.h"
#include "tag/tag_id.h"

namespace {

using namespace rfid;
using service::EnrollRequest;
using service::MonitorService;
using service::ServiceClient;
using service::ServiceConfig;
using service::StartRunRequest;
using service::StartWatchRequest;

std::vector<tag::TagId> make_ids(std::uint64_t count) {
  std::vector<tag::TagId> ids;
  ids.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ids.emplace_back(static_cast<std::uint32_t>(i), 0x1000 + i);
  }
  return ids;
}

EnrollRequest small_inventory(const std::string& name,
                              std::uint64_t tags = 60) {
  EnrollRequest req;
  req.inventory = name;
  req.tolerance = 2;
  req.alpha = 0.95;
  req.zone_capacity = 30;
  req.rounds = 2;
  req.tags = make_ids(tags);
  return req;
}

TEST(ServiceLifecycle, StartExposesPortsAndStopIsIdempotent) {
  MonitorService svc{ServiceConfig{}};
  EXPECT_FALSE(svc.running());
  svc.start();
  EXPECT_TRUE(svc.running());
  EXPECT_NE(svc.port(), 0);
  EXPECT_NE(svc.http_port(), 0);
  EXPECT_NE(svc.port(), svc.http_port());
  const service::ServiceStats stats = svc.stop();
  EXPECT_FALSE(svc.running());
  EXPECT_TRUE(stats.drained_cleanly);
  const service::ServiceStats again = svc.stop();  // idempotent
  EXPECT_EQ(again.connections, stats.connections);
}

TEST(ServiceSession, HelloEnrollRunIntact) {
  MonitorService svc{ServiceConfig{}};
  svc.start();
  ServiceClient client(svc.port());

  const service::HelloOk hello = client.hello("acme");
  EXPECT_EQ(hello.version, service::kProtocolVersion);
  EXPECT_NE(hello.session_id, 0u);

  const service::EnrollOk enrolled = client.enroll(small_inventory("aisle1"));
  EXPECT_EQ(enrolled.tags, 60u);
  EXPECT_GE(enrolled.zones, 2u);
  EXPECT_GT(enrolled.total_slots, 0u);

  StartRunRequest run;
  run.inventory = "aisle1";
  run.seed = 7;
  const service::StartOutcome outcome = client.start_run(run);
  ASSERT_TRUE(outcome.admitted.has_value());
  EXPECT_EQ(outcome.admitted->admission,
            static_cast<std::uint8_t>(fleet::Admission::kAccepted));

  const service::RunOutcome result =
      client.await_verdict(outcome.admitted->run_id);
  EXPECT_EQ(result.verdict.verdict,
            static_cast<std::uint8_t>(fleet::GlobalVerdict::kIntact));
  EXPECT_EQ(result.verdict.zones_violated, 0u);
  EXPECT_FALSE(result.verdict.aborted);
  EXPECT_TRUE(result.verdict.missing.empty());

  EXPECT_EQ(client.ping(42), 42u);
  client.goodbye();
  const service::ServiceStats stats = svc.stop();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.runs_completed, 1u);
  EXPECT_TRUE(stats.drained_cleanly);
}

TEST(ServiceSession, SecondHelloIsRejectedAndSessionSurvives) {
  MonitorService svc{ServiceConfig{}};
  svc.start();
  ServiceClient client(svc.port());
  const service::HelloOk first = client.hello("acme");

  // A second Hello must not mint a new session — it would leave the first
  // sessions entry dangling behind a reused connection. The service answers
  // bad_request and the original session keeps working.
  client.send_frame(
      service::FrameType::kHello,
      encode(service::HelloRequest{service::kProtocolVersion, "acme"}));
  const service::Frame frame = client.read_frame();
  ASSERT_EQ(static_cast<service::FrameType>(frame.type),
            service::FrameType::kError);
  EXPECT_EQ(service::decode_error(frame.payload).code,
            service::ErrorCode::kBadRequest);

  client.enroll(small_inventory("aisle1"));
  StartRunRequest run;
  run.inventory = "aisle1";
  const service::StartOutcome outcome = client.start_run(run);
  ASSERT_TRUE(outcome.admitted.has_value());
  const service::RunOutcome result =
      client.await_verdict(outcome.admitted->run_id);
  EXPECT_EQ(result.verdict.verdict,
            static_cast<std::uint8_t>(fleet::GlobalVerdict::kIntact));
  EXPECT_EQ(client.ping(9), 9u);
  EXPECT_NE(first.session_id, 0u);
  svc.stop();
}

TEST(ServiceSession, TheftVerdictNamesStolenTags) {
  MonitorService svc{ServiceConfig{}};
  svc.start();
  ServiceClient client(svc.port());
  client.hello("acme");
  const EnrollRequest inventory = small_inventory("cage", 60);
  client.enroll(inventory);

  StartRunRequest run;
  run.inventory = "cage";
  run.seed = 11;
  run.identify = true;
  run.stolen = {3, 7, 33, 41};
  const service::StartOutcome outcome = client.start_run(run);
  ASSERT_TRUE(outcome.admitted.has_value());
  const service::RunOutcome result =
      client.await_verdict(outcome.admitted->run_id);

  EXPECT_EQ(result.verdict.verdict,
            static_cast<std::uint8_t>(fleet::GlobalVerdict::kViolated));
  EXPECT_GT(result.verdict.zones_violated, 0u);
  EXPECT_GT(result.verdict.tags_named, 0u);
  // The drill-down names the actual stolen tags, by identity.
  for (const std::uint64_t idx : run.stolen) {
    const tag::TagId expected = inventory.tags[idx];
    const bool named =
        std::any_of(result.verdict.missing.begin(),
                    result.verdict.missing.end(),
                    [&](const tag::TagId& id) { return id == expected; });
    EXPECT_TRUE(named) << "stolen tag at index " << idx << " not named";
  }
  // Soundness the other way: nothing present is accused.
  for (const tag::TagId& named : result.verdict.missing) {
    const bool stolen = std::any_of(
        run.stolen.begin(), run.stolen.end(),
        [&](std::uint64_t idx) { return inventory.tags[idx] == named; });
    EXPECT_TRUE(stolen) << "present tag accused: " << named.to_string();
  }
  svc.stop();
}

TEST(ServiceSession, RequestLevelErrorsKeepConnectionAlive) {
  MonitorService svc{ServiceConfig{}};
  svc.start();
  ServiceClient client(svc.port());

  // Request before hello: typed error, connection survives.
  client.send_frame(service::FrameType::kStartRun,
                    encode(StartRunRequest{"x", 1, false, {}}));
  service::Frame frame = client.read_frame();
  ASSERT_EQ(static_cast<service::FrameType>(frame.type),
            service::FrameType::kError);
  EXPECT_EQ(service::decode_error(frame.payload).code,
            service::ErrorCode::kHelloRequired);

  client.hello("acme");

  // Unknown inventory.
  client.send_frame(service::FrameType::kStartRun,
                    encode(StartRunRequest{"ghost", 1, false, {}}));
  frame = client.read_frame();
  ASSERT_EQ(static_cast<service::FrameType>(frame.type),
            service::FrameType::kError);
  EXPECT_EQ(service::decode_error(frame.payload).code,
            service::ErrorCode::kUnknownInventory);

  // Unplannable enrollment (tolerance >= tags) maps the planner's
  // invalid_argument to a bad_request, not a dropped connection.
  EnrollRequest bad;
  bad.inventory = "bad";
  bad.tolerance = 100;
  bad.tags = make_ids(10);
  client.send_frame(service::FrameType::kEnroll, encode(bad));
  frame = client.read_frame();
  ASSERT_EQ(static_cast<service::FrameType>(frame.type),
            service::FrameType::kError);
  EXPECT_EQ(service::decode_error(frame.payload).code,
            service::ErrorCode::kBadRequest);

  // Stolen index out of range.
  client.enroll(small_inventory("aisle1"));
  StartRunRequest run;
  run.inventory = "aisle1";
  run.stolen = {999};
  client.send_frame(service::FrameType::kStartRun, encode(run));
  frame = client.read_frame();
  ASSERT_EQ(static_cast<service::FrameType>(frame.type),
            service::FrameType::kError);
  EXPECT_EQ(service::decode_error(frame.payload).code,
            service::ErrorCode::kBadRequest);

  // The connection still works after all four errors.
  EXPECT_EQ(client.ping(5), 5u);
  svc.stop();
}

TEST(ServiceAdmission, TokenBucketSendsRetryAfter) {
  std::atomic<std::uint64_t> clock{0};
  ServiceConfig config;
  config.tokens_per_sec = 0.5;
  config.token_capacity = 1.0;
  config.clock_us = [&clock] { return clock.load(); };
  MonitorService svc{config};
  svc.start();
  ServiceClient client(svc.port());
  client.hello("tenant");
  client.enroll(small_inventory("inv"));

  StartRunRequest run;
  run.inventory = "inv";
  const service::StartOutcome first = client.start_run(run);
  ASSERT_TRUE(first.admitted.has_value());

  // Bucket empty, refill 0.5 tokens/s: the service must push back with an
  // explicit retry hint near the 2 s deficit, not queue the request.
  const service::StartOutcome second = client.start_run(run);
  ASSERT_TRUE(second.backpressure.has_value());
  EXPECT_GE(second.backpressure->retry_after_ms, 1900u);
  EXPECT_LE(second.backpressure->retry_after_ms, 2100u);

  clock.store(2'500'000);  // 2.5 s later the bucket holds >1 token again
  const service::StartOutcome third = client.start_run(run);
  ASSERT_TRUE(third.admitted.has_value());

  client.await_verdict(first.admitted->run_id);
  client.await_verdict(third.admitted->run_id);
  const service::ServiceStats stats = svc.stop();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
}

TEST(ServiceAdmission, SaturationDefersThenRejects) {
  ServiceConfig config;
  config.workers = 1;
  config.max_inflight = 1;
  config.max_inflight_per_tenant = 4;
  config.max_deferred = 1;
  MonitorService svc{config};
  svc.start();
  ServiceClient client(svc.port());
  client.hello("tenant");
  // A watch of many epochs over many zones: reliably in flight long enough
  // for the two follow-up requests to hit a busy service.
  EnrollRequest inv = small_inventory("inv", 300);
  inv.zone_capacity = 30;
  client.enroll(inv);

  StartWatchRequest watch;
  watch.inventory = "inv";
  watch.epochs = 8;
  const service::StartOutcome first = client.start_watch(watch);
  ASSERT_TRUE(first.admitted.has_value());
  EXPECT_EQ(first.admitted->admission,
            static_cast<std::uint8_t>(fleet::Admission::kAccepted));

  StartRunRequest run;
  run.inventory = "inv";
  const service::StartOutcome second = client.start_run(run);
  ASSERT_TRUE(second.admitted.has_value());
  EXPECT_EQ(second.admitted->admission,
            static_cast<std::uint8_t>(fleet::Admission::kDeferred));
  EXPECT_EQ(second.admitted->queue_depth, 1u);

  // Wave queue full: explicit backpressure, nothing silently queued.
  const service::StartOutcome third = client.start_run(run);
  ASSERT_TRUE(third.backpressure.has_value());
  EXPECT_GT(third.backpressure->retry_after_ms, 0u);

  // The deferred run still completes once capacity frees up.
  const service::RunOutcome deferred =
      client.await_verdict(second.admitted->run_id);
  EXPECT_EQ(deferred.verdict.verdict,
            static_cast<std::uint8_t>(fleet::GlobalVerdict::kIntact));
  client.await_watch_done(first.admitted->run_id);

  const service::ServiceStats stats = svc.stop();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.deferred, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.runs_completed, 2u);
}

TEST(ServiceAlerts, WatchPublishesFeedAndSubscriberReplaysBacklog) {
  MonitorService svc{ServiceConfig{}};
  svc.start();
  ServiceClient producer(svc.port());
  producer.hello("warehouse");
  EnrollRequest inv = small_inventory("floor", 120);
  inv.zone_capacity = 40;
  inv.tolerance = 4;
  producer.enroll(inv);

  StartWatchRequest watch;
  watch.inventory = "floor";
  watch.epochs = 3;
  watch.identify = true;
  watch.steal_epoch = 1;
  watch.steal = 5;
  watch.steal_from = 10;
  const service::StartOutcome outcome = producer.start_watch(watch);
  ASSERT_TRUE(outcome.admitted.has_value());
  const service::WatchDone done =
      producer.await_watch_done(outcome.admitted->run_id);
  EXPECT_EQ(done.epochs_completed, 3u);
  EXPECT_FALSE(done.gave_up);
  EXPECT_GT(done.alerts, 0u);

  // A second connection of the same tenant sees the full backlog, named
  // stolen tags included; a different tenant sees nothing.
  ServiceClient subscriber(svc.port());
  subscriber.hello("warehouse");
  const std::vector<service::TenantAlert> backlog = subscriber.subscribe();
  ASSERT_EQ(backlog.size(), done.alerts);
  bool named = false;
  for (std::size_t i = 0; i < backlog.size(); ++i) {
    EXPECT_EQ(backlog[i].sequence, i);  // gapless, ordered
    EXPECT_FALSE(backlog[i].kind.empty());
    named = named || !backlog[i].missing.empty();
  }
  EXPECT_TRUE(named) << "no feed alert carried identified stolen tags";

  ServiceClient stranger(svc.port());
  stranger.hello("other-tenant");
  EXPECT_TRUE(stranger.subscribe().empty());
  svc.stop();
}

TEST(ServiceDurability, JournalDirPersistsWatchJournalsAcrossRestart) {
  const std::filesystem::path root =
      std::filesystem::path(::testing::TempDir()) / "rfidmon_service_journals";
  std::filesystem::remove_all(root);

  ServiceConfig config;
  config.journal_dir = root.string();
  MonitorService svc{config};
  svc.start();
  ServiceClient client(svc.port());
  client.hello("warehouse");
  EnrollRequest inv = small_inventory("floor", 120);
  inv.zone_capacity = 40;
  inv.tolerance = 4;
  client.enroll(inv);

  StartWatchRequest watch;
  watch.inventory = "floor";
  watch.epochs = 3;
  watch.steal_epoch = 1;
  watch.steal = 5;
  watch.steal_from = 10;
  const service::StartOutcome outcome = client.start_watch(watch);
  ASSERT_TRUE(outcome.admitted.has_value());
  const std::uint64_t run_id = outcome.admitted->run_id;
  const service::WatchDone done = client.await_watch_done(run_id);
  EXPECT_EQ(done.epochs_completed, 3u);
  svc.stop();

  // The watch's journals outlive the service: open them cold, exactly as a
  // restarted daemon would after a kill. One checkpoint per committed epoch
  // means any crash point leaves a resumable prefix (daemon_torture_test
  // pins the per-crash-point bit-identity; here we pin that the service
  // actually put the files where a restart can find them).
  storage::FileBackend backend(
      (root / ("watch-" + std::to_string(run_id))).string());
  ASSERT_TRUE(backend.exists("daemon.journal"));
  EXPECT_TRUE(backend.exists("fleet.journal"));
  const storage::DaemonJournalScan scan =
      storage::scan_daemon_journal(backend.read("daemon.journal"));
  EXPECT_TRUE(scan.header_valid);
  EXPECT_EQ(scan.dropped_bytes, 0u);
  // Start record plus one checkpoint per epoch, at minimum.
  EXPECT_GE(scan.records.size(), 1u + done.epochs_completed);
  std::filesystem::remove_all(root);
}

TEST(ServiceShutdown, DrainTimeoutAbortsInFlightRun) {
  ServiceConfig config;
  config.workers = 1;
  config.drain_timeout = std::chrono::milliseconds(1);
  MonitorService svc{config};
  svc.start();
  ServiceClient client(svc.port());
  client.hello("tenant");
  EnrollRequest inv = small_inventory("big", 30000);
  inv.zone_capacity = 50;
  inv.tolerance = 100;
  inv.rounds = 6;
  client.enroll(inv);

  StartRunRequest run;
  run.inventory = "big";
  const service::StartOutcome outcome = client.start_run(run);
  ASSERT_TRUE(outcome.admitted.has_value());

  // 600 zones x 6 rounds cannot finish inside a 1 ms budget even on a fast
  // machine: the abort switch must fire and the run must report itself
  // aborted instead of wedging stop().
  const service::ServiceStats stats = svc.stop();
  EXPECT_FALSE(stats.drained_cleanly);
  EXPECT_GE(stats.runs_aborted, 1u);
}

TEST(ServiceShutdown, DrainTimeoutAbortsInFlightWatch) {
  ServiceConfig config;
  config.workers = 1;
  config.drain_timeout = std::chrono::milliseconds(1);
  config.max_watch_epochs = 100000;
  MonitorService svc{config};
  svc.start();
  ServiceClient client(svc.port());
  client.hello("tenant");
  EnrollRequest inv = small_inventory("floor", 2000);
  inv.zone_capacity = 40;
  inv.tolerance = 20;
  client.enroll(inv);

  StartWatchRequest watch;
  watch.inventory = "floor";
  watch.epochs = 100000;
  const service::StartOutcome outcome = client.start_watch(watch);
  ASSERT_TRUE(outcome.admitted.has_value());

  // 100000 epochs cannot drain inside a 1 ms budget: the service abort
  // switch must reach the in-flight MonitorDaemon (DaemonConfig::abort),
  // which gives up instead of grinding through every remaining epoch — so
  // stop() returns promptly instead of exceeding its drain contract by
  // minutes.
  const service::ServiceStats stats = svc.stop();
  EXPECT_FALSE(stats.drained_cleanly);
}

TEST(ServiceHttp, ScrapeEndpointsRenderRegistry) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  MonitorService svc{config};
  svc.start();
  ServiceClient client(svc.port());
  client.hello("acme");
  client.enroll(small_inventory("inv"));
  StartRunRequest run;
  run.inventory = "inv";
  const service::StartOutcome outcome = client.start_run(run);
  ASSERT_TRUE(outcome.admitted.has_value());
  client.await_verdict(outcome.admitted->run_id);

  int status = 0;
  const std::string prom = service::http_get(svc.http_port(), "/metrics",
                                             &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(prom.find("rfidmon_service_connections_total"), std::string::npos);
  EXPECT_NE(prom.find("rfidmon_service_admissions_total"), std::string::npos);
  EXPECT_NE(prom.find("rfidmon_service_run_latency_us"), std::string::npos);
  // The run's own fleet metrics landed in the same registry.
  EXPECT_NE(prom.find("rfidmon_fleet_zones_total"), std::string::npos);

  const std::string json =
      service::http_get(svc.http_port(), "/metrics.json", &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("rfidmon_service_frames_total"), std::string::npos);

  EXPECT_EQ(service::http_get(svc.http_port(), "/healthz", &status), "ok\n");
  EXPECT_EQ(status, 200);
  (void)service::http_get(svc.http_port(), "/nope", &status);
  EXPECT_EQ(status, 404);

  svc.stop();
}

}  // namespace
