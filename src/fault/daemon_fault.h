// Daemon fault injection: scripted crashes and hangs for the supervised
// monitoring loop (daemon/daemon.h).
//
// The storage injector (storage_fault.h) kills a workload at the k-th disk
// operation; this one kills the *daemon's epoch loop* at semantic points —
// epoch start, after the fleet run, either side of the checkpoint write —
// so resume tests can prove alert history is preserved across every
// interesting boundary without counting storage ops.
//
// Hangs are cooperative, because a std::thread cannot be killed from
// outside: maybe_hang() blocks the monitor thread on a condition variable
// until the supervisor notices the missed heartbeat and calls kill(), at
// which point the hung thread throws CrashInjected and unwinds. The same
// kill() doubles as the watchdog's lever for genuinely wedged epochs.
//
// Every scripted event fires at most once (a restarted epoch must not
// re-crash on the same script entry, or no sweep would ever terminate).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "fault/storage_fault.h"

namespace rfid::fault {

/// Where in the epoch loop a scripted crash is delivered.
enum class DaemonCrashPoint : std::uint8_t {
  kEpochStart = 0,       // epoch admitted, nothing executed yet
  kAfterFleetRun = 1,    // fleet result in hand, nothing durable yet
  kBeforeCheckpoint = 2, // checkpoint encoded, append not yet attempted
  kAfterCheckpoint = 3,  // checkpoint durable, epoch not yet acknowledged
};

[[nodiscard]] std::string_view to_string(DaemonCrashPoint point) noexcept;

struct DaemonCrash {
  std::uint64_t epoch = 0;
  DaemonCrashPoint point = DaemonCrashPoint::kEpochStart;
};

/// Everything defaults to off; a default plan injects nothing.
struct DaemonFaultPlan {
  std::vector<DaemonCrash> crashes;
  /// Epochs whose monitor body hangs (blocks until kill()).
  std::vector<std::uint64_t> hang_epochs;
};

/// Thread-safe: the monitor thread calls at()/maybe_hang(), the supervisor
/// calls kill()/reset_kill() concurrently.
class DaemonFaultInjector {
 public:
  explicit DaemonFaultInjector(DaemonFaultPlan plan);

  /// Throws CrashInjected iff the plan scripts (epoch, point) and that
  /// entry has not fired yet.
  void at(std::uint64_t epoch, DaemonCrashPoint point);

  /// Blocks until kill() iff the plan scripts a hang for this epoch (once);
  /// the woken thread then throws CrashInjected. Returns immediately when
  /// the epoch is not scripted.
  void maybe_hang(std::uint64_t epoch);

  /// Wakes any hung thread and makes future maybe_hang() calls return by
  /// throwing immediately. Idempotent.
  void kill();

  /// Re-arms hangs after a restart (a killed injector would otherwise turn
  /// every later scripted hang into an instant crash).
  void reset_kill();

  [[nodiscard]] std::uint64_t crashes_delivered() const;
  [[nodiscard]] std::uint64_t hangs_delivered() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  DaemonFaultPlan plan_;
  std::vector<bool> crash_fired_;
  std::vector<bool> hang_fired_;
  bool killed_ = false;
  std::uint64_t crashes_delivered_ = 0;
  std::uint64_t hangs_delivered_ = 0;
};

}  // namespace rfid::fault
