// Theorem 1 of the paper: the probability that TRP detects a non-intact set.
//
//   g(n, x, f) = 1 − Σ_{i=0}^{f} C(f,i) p^i (1−p)^{f−i} · (1 − i/f)^x
//
// where n is the set size, x the number of missing tags, f the frame size,
// and p the probability that a slot is empty of the n−x present tags. The
// paper uses the Poisson approximation p = e^{−(n−x)/f}; the exact balls-in-
// bins value is p = (1 − 1/f)^{n−x}. Both are offered; the approximation is
// the default so optimized frame sizes match the paper's.
//
// Interpretation: N0 ~ Binomial(f, p) counts empty slots among the present
// tags; each of the x missing tags lands in an empty slot (and is thereby
// detected as a 1→0 flip in the bitstring) with probability N0/f.
#pragma once

#include <cstdint>
#include <string_view>

namespace rfid::math {

enum class EmptySlotModel : std::uint8_t {
  kPoissonApprox,  // p = e^{−(n−x)/f}   (paper's choice)
  kExact,          // p = (1 − 1/f)^{n−x}
};

[[nodiscard]] std::string_view to_string(EmptySlotModel model) noexcept;

/// The per-slot empty probability for n_present tags in f slots.
[[nodiscard]] double empty_slot_probability(std::uint64_t n_present,
                                            std::uint64_t frame_size,
                                            EmptySlotModel model);

/// g(n, x, f): probability that at least one of x missing tags is noticed.
/// Requires x <= n and f >= 1. Returns 0 when x == 0 (nothing to detect).
[[nodiscard]] double detection_probability(
    std::uint64_t n, std::uint64_t x, std::uint64_t f,
    EmptySlotModel model = EmptySlotModel::kPoissonApprox);

/// 1 − g(n, x, f).
[[nodiscard]] double miss_probability(
    std::uint64_t n, std::uint64_t x, std::uint64_t f,
    EmptySlotModel model = EmptySlotModel::kPoissonApprox);

}  // namespace rfid::math
