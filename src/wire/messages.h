// The server <-> reader message set, with byte-level encode/decode.
//
// Five messages cover one monitoring round of either protocol:
//   ChallengeRequest   reader -> server   "give me work for group X"
//   TrpChallengeMsg    server -> reader   (f, r)                  [Alg. 1]
//   UtrpChallengeMsg   server -> reader   (f, r_1..r_f)           [Alg. 5]
//   BitstringReport    reader -> server   bs (+ measured scan time)
//   VerdictAck         server -> reader   round accepted (intact or not)
// Every message is tagged with a type byte and framed/checksummed by the
// codec; decode_* functions reject wrong types, truncation, and garbage.
// Requests and reports are idempotent (keyed by round number) so the session
// layer can retransmit over lossy links without double-counting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bitstring/bitstring.h"
#include "protocol/messages.h"
#include "wire/codec.h"

namespace rfid::wire {

enum class MessageType : std::uint8_t {
  kChallengeRequest = 1,
  kTrpChallenge = 2,
  kUtrpChallenge = 3,
  kBitstringReport = 4,
  kVerdictAck = 5,
};

struct ChallengeRequest {
  std::string group_name;
  std::uint64_t round = 0;
};

/// Challenges carry the round they answer so a delayed duplicate from an
/// earlier round cannot be mistaken for the current one (links may reorder).
struct TrpChallengeMsg {
  std::uint64_t round = 0;
  protocol::TrpChallenge challenge;
};

struct UtrpChallengeMsg {
  std::uint64_t round = 0;
  protocol::UtrpChallenge challenge;
};

struct BitstringReport {
  std::string group_name;
  std::uint64_t round = 0;
  bits::Bitstring bitstring;
  double scan_time_us = 0.0;  // the reader's claimed scan duration
};

struct VerdictAck {
  std::uint64_t round = 0;
  bool intact = false;
};

/// Peeks the type byte of a (framed) message without full decode.
[[nodiscard]] MessageType peek_type(std::span<const std::byte> frame);

[[nodiscard]] std::vector<std::byte> encode(const ChallengeRequest& msg);
[[nodiscard]] std::vector<std::byte> encode(const TrpChallengeMsg& msg);
[[nodiscard]] std::vector<std::byte> encode(const UtrpChallengeMsg& msg);
[[nodiscard]] std::vector<std::byte> encode(const BitstringReport& msg);
[[nodiscard]] std::vector<std::byte> encode(const VerdictAck& msg);

[[nodiscard]] ChallengeRequest decode_challenge_request(std::span<const std::byte> frame);
[[nodiscard]] TrpChallengeMsg decode_trp_challenge(std::span<const std::byte> frame);
[[nodiscard]] UtrpChallengeMsg decode_utrp_challenge(std::span<const std::byte> frame);
[[nodiscard]] BitstringReport decode_bitstring_report(std::span<const std::byte> frame);
[[nodiscard]] VerdictAck decode_verdict_ack(std::span<const std::byte> frame);

}  // namespace rfid::wire
