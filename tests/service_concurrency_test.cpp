// Concurrency hammer: many tenants connecting, enrolling, running, and
// disconnecting mid-run while scrapes hit the HTTP port — the binary the
// ASan and TSan CI jobs run directly. Nothing here asserts on timing; the
// invariants are "every admitted run resolves", "abrupt disconnects never
// wedge or crash the service", and "stop() drains cleanly under load".
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/service.h"
#include "tag/tag_id.h"

namespace {

using namespace rfid;
using service::MonitorService;
using service::ServiceClient;
using service::ServiceConfig;

service::EnrollRequest tiny_inventory(const std::string& name) {
  service::EnrollRequest req;
  req.inventory = name;
  req.tolerance = 1;
  req.zone_capacity = 0;  // single zone: the cheapest possible run
  req.rounds = 1;
  req.tags.reserve(20);
  for (std::uint32_t i = 0; i < 20; ++i) req.tags.emplace_back(i, i);
  return req;
}

TEST(ServiceConcurrency, ManyTenantsHammerAndDisconnectMidRun) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.workers = 4;
  config.max_inflight = 6;
  config.max_inflight_per_tenant = 1;
  config.max_deferred = 256;
  config.token_capacity = 1e9;  // admission bounds are the subject, not rate
  config.metrics = &registry;
  MonitorService svc{config};
  svc.start();

  constexpr int kThreads = 8;
  constexpr int kSessionsPerThread = 6;
  std::atomic<std::uint64_t> verdicts{0};
  std::atomic<std::uint64_t> pushbacks{0};
  std::atomic<std::uint64_t> abandoned{0};
  std::atomic<std::uint64_t> failures{0};

  std::vector<std::thread> tenants;
  tenants.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    tenants.emplace_back([&, t] {
      for (int s = 0; s < kSessionsPerThread; ++s) {
        const std::string tenant =
            "tenant-" + std::to_string(t) + "-" + std::to_string(s);
        try {
          ServiceClient client(svc.port(), std::chrono::milliseconds(30000));
          client.hello(tenant);
          client.enroll(tiny_inventory("inv"));
          service::StartRunRequest run;
          run.inventory = "inv";
          run.seed = static_cast<std::uint64_t>(t * 100 + s + 1);
          const service::StartOutcome outcome = client.start_run(run);
          if (!outcome.admitted.has_value()) {
            pushbacks.fetch_add(1);
            continue;
          }
          // A third of the sessions vanish without reading their verdict —
          // the server must reap them without stranding the run.
          if (s % 3 == 2) {
            abandoned.fetch_add(1);
            continue;  // destructor closes the socket abruptly
          }
          const service::RunOutcome result =
              client.await_verdict(outcome.admitted->run_id);
          if (result.verdict.verdict ==
              static_cast<std::uint8_t>(fleet::GlobalVerdict::kIntact)) {
            verdicts.fetch_add(1);
          }
          client.goodbye();
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // Scrapes race the whole hammer.
  std::atomic<bool> stop_scraping{false};
  std::thread scraper([&] {
    while (!stop_scraping.load()) {
      try {
        (void)service::http_get(svc.http_port(), "/metrics",
                                nullptr, std::chrono::milliseconds(5000));
      } catch (const std::exception&) {
      }
    }
  });

  for (std::thread& t : tenants) t.join();
  stop_scraping.store(true);
  scraper.join();

  const service::ServiceStats stats = svc.stop();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(verdicts.load(), 0u);
  // Every admitted or deferred run resolved before stop() returned.
  EXPECT_EQ(stats.admitted + stats.deferred, stats.runs_completed);
  EXPECT_TRUE(stats.drained_cleanly);
  EXPECT_GE(stats.connections,
            static_cast<std::uint64_t>(kThreads * kSessionsPerThread));
}

TEST(ServiceConcurrency, ChurningSubscribersSurviveStop) {
  ServiceConfig config;
  config.workers = 2;
  MonitorService svc{config};
  svc.start();

  std::atomic<bool> halt{false};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> churners;
  for (int t = 0; t < 4; ++t) {
    churners.emplace_back([&, t] {
      int i = 0;
      while (!halt.load()) {
        try {
          ServiceClient client(svc.port(), std::chrono::milliseconds(10000));
          client.hello("tenant-" + std::to_string(t));
          (void)client.subscribe();
          if (++i % 2 == 0) client.goodbye();  // odd ones just vanish
        } catch (const std::exception&) {
          // Connection refused after stop() begins is expected; anything
          // else would surface in the final clean-session check below.
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  halt.store(true);
  for (std::thread& t : churners) t.join();
  const service::ServiceStats stats = svc.stop();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(stats.connections, 0u);
  EXPECT_TRUE(stats.drained_cleanly);
}

}  // namespace
