#include "tag/tag_set.h"

#include <unordered_set>

#include "util/expect.h"

namespace rfid::tag {

TagSet TagSet::make_random(std::size_t count, util::Rng& rng) {
  std::vector<Tag> tags;
  tags.reserve(count);
  std::unordered_set<std::uint64_t> seen_words;
  seen_words.reserve(count * 2);
  while (tags.size() < count) {
    const TagId id(static_cast<std::uint32_t>(rng() >> 32), rng());
    // Uniqueness is enforced on the folded slot word (what the protocols
    // hash): two tags with equal words would be protocol-indistinguishable.
    if (seen_words.insert(id.slot_word()).second) {
      tags.emplace_back(id);
    }
  }
  return TagSet(std::move(tags));
}

const Tag& TagSet::at(std::size_t i) const {
  RFID_EXPECT(i < tags_.size(), "tag index out of range");
  return tags_[i];
}

Tag& TagSet::at(std::size_t i) {
  RFID_EXPECT(i < tags_.size(), "tag index out of range");
  return tags_[i];
}

std::vector<TagId> TagSet::ids() const {
  std::vector<TagId> out;
  out.reserve(tags_.size());
  for (const Tag& t : tags_) out.push_back(t.id());
  return out;
}

TagSet TagSet::steal_random(std::size_t count, util::Rng& rng) {
  RFID_EXPECT(count <= tags_.size(), "cannot steal more tags than exist");
  // Partial Fisher–Yates: move a random remaining tag to the back, `count`
  // times; the suffix becomes the stolen set.
  std::vector<Tag> stolen;
  stolen.reserve(count);
  std::size_t remaining = tags_.size();
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t pick = static_cast<std::size_t>(rng.below(remaining));
    std::swap(tags_[pick], tags_[remaining - 1]);
    stolen.push_back(tags_[remaining - 1]);
    --remaining;
  }
  tags_.resize(remaining);
  return TagSet(std::move(stolen));
}

void TagSet::begin_round() noexcept {
  for (Tag& t : tags_) t.begin_round();
}

}  // namespace rfid::tag
