#include "attack/split_attack.h"

#include "protocol/trp.h"

namespace rfid::attack {

SplitAttackResult run_trp_split_attack(std::span<const tag::Tag> s1,
                                       std::span<const tag::Tag> s2,
                                       const hash::SlotHasher& hasher,
                                       const protocol::TrpChallenge& challenge,
                                       util::Rng& rng) {
  const protocol::TrpReader reader(hasher);  // ideal channel
  SplitAttackResult result;
  const bits::Bitstring bs1 = reader.scan(s1, challenge, rng);
  const bits::Bitstring bs2 = reader.scan(s2, challenge, rng);
  result.forged = bs1 | bs2;
  result.transmissions = 1;  // R2 forwards bs_s2 once (Alg. 4 line 2)
  return result;
}

bits::Bitstring replay_recorded_bitstring(const bits::Bitstring& recorded) {
  return recorded;
}

}  // namespace rfid::attack
