#include "service/client.h"

#include <cstring>
#include <iterator>
#include <stdexcept>
#include <utility>

namespace rfid::service {

namespace {

constexpr std::uint32_t kClientMaxPayload = 8u << 20;

[[noreturn]] void unexpected(const Frame& frame) {
  if (static_cast<FrameType>(frame.type) == FrameType::kError) {
    const ErrorMsg err = decode_error(frame.payload);
    throw std::runtime_error("service error: " +
                             std::string(to_string(err.code)) + ": " +
                             err.message);
  }
  throw std::runtime_error(
      "unexpected frame: " +
      std::string(to_string(static_cast<FrameType>(frame.type))));
}

}  // namespace

ServiceClient::ServiceClient(std::uint16_t port,
                             std::chrono::milliseconds timeout)
    : sock_(connect_loopback(port, timeout)),
      timeout_(timeout),
      reader_(kClientMaxPayload) {
  sock_.set_receive_timeout(timeout_);
}

void ServiceClient::send_frame(FrameType type,
                               std::span<const std::byte> payload) {
  send_raw(encode_frame(type, payload));
}

void ServiceClient::send_raw(std::span<const std::byte> bytes) {
  if (!sock_.send_all(bytes)) {
    throw std::runtime_error("service connection closed while sending");
  }
}

Frame ServiceClient::read_frame() {
  if (!pending_.empty()) {
    Frame frame = std::move(pending_.front());
    pending_.erase(pending_.begin());
    return frame;
  }
  std::vector<Frame> frames;
  std::byte buf[4096];
  for (;;) {
    if (!frames.empty()) break;
    if (!sock_.recv_all(std::span<std::byte>(buf, 1))) {
      throw std::runtime_error("service connection closed or timed out");
    }
    // Drain whatever else is already readable without blocking again.
    sock_.set_nonblocking(true);
    long extra = 0;
    try {
      extra = sock_.read_some(std::span<std::byte>(buf + 1, sizeof(buf) - 1));
    } catch (...) {
      extra = 0;
    }
    sock_.set_nonblocking(false);
    const std::size_t got = 1 + (extra > 0 ? static_cast<std::size_t>(extra) : 0);
    const ErrorCode err =
        reader_.feed(std::span<const std::byte>(buf, got), frames);
    if (err != ErrorCode::kNone) {
      throw std::runtime_error("framing error from server: " +
                               std::string(to_string(err)));
    }
  }
  Frame first = std::move(frames.front());
  for (std::size_t i = 1; i < frames.size(); ++i) {
    pending_.push_back(std::move(frames[i]));
  }
  return first;
}

bool ServiceClient::is_stream_frame(FrameType type) {
  return type == FrameType::kRunAlert || type == FrameType::kTenantAlert ||
         type == FrameType::kRunVerdict || type == FrameType::kWatchDone ||
         type == FrameType::kShutdown;
}

void ServiceClient::restore(std::vector<Frame>& aside) {
  pending_.insert(pending_.begin(), std::make_move_iterator(aside.begin()),
                  std::make_move_iterator(aside.end()));
}

Frame ServiceClient::next_of(FrameType wanted) {
  // Stream frames may interleave ahead of a response; set them aside for the
  // await_* helpers and restore them on return. Re-queueing them directly
  // would make read_frame() hand the same frame straight back without ever
  // touching the socket — an infinite loop. Anything else is a protocol
  // surprise.
  std::vector<Frame> aside;
  for (;;) {
    Frame frame = read_frame();
    const auto type = static_cast<FrameType>(frame.type);
    if (type == wanted) {
      restore(aside);
      return frame;
    }
    if (is_stream_frame(type)) {
      aside.push_back(std::move(frame));
      continue;
    }
    unexpected(frame);
  }
}

HelloOk ServiceClient::hello(const std::string& tenant) {
  send_frame(FrameType::kHello,
             encode(HelloRequest{kProtocolVersion, tenant}));
  const HelloOk ok = decode_hello_ok(next_of(FrameType::kHelloOk).payload);
  session_id_ = ok.session_id;
  return ok;
}

EnrollOk ServiceClient::enroll(const EnrollRequest& request) {
  send_frame(FrameType::kEnroll, encode(request));
  return decode_enroll_ok(next_of(FrameType::kEnrollOk).payload);
}

StartOutcome ServiceClient::await_start_outcome() {
  std::vector<Frame> aside;
  for (;;) {
    Frame frame = read_frame();
    const auto type = static_cast<FrameType>(frame.type);
    if (type == FrameType::kRunAdmitted) {
      restore(aside);
      return StartOutcome{decode_run_admitted(frame.payload), std::nullopt};
    }
    if (type == FrameType::kBackpressure) {
      restore(aside);
      return StartOutcome{std::nullopt, decode_backpressure(frame.payload)};
    }
    if (is_stream_frame(type)) {
      aside.push_back(std::move(frame));
      continue;
    }
    unexpected(frame);
  }
}

StartOutcome ServiceClient::start_run(const StartRunRequest& request) {
  send_frame(FrameType::kStartRun, encode(request));
  return await_start_outcome();
}

StartOutcome ServiceClient::start_watch(const StartWatchRequest& request) {
  send_frame(FrameType::kStartWatch, encode(request));
  return await_start_outcome();
}

RunOutcome ServiceClient::await_verdict(std::uint64_t run_id) {
  RunOutcome outcome;
  // Frames that belong to OTHER runs are set aside (not re-queued, which
  // would make this loop chase its own tail) and restored on return.
  std::vector<Frame> aside;
  for (;;) {
    Frame frame = read_frame();
    const auto type = static_cast<FrameType>(frame.type);
    if (type == FrameType::kRunVerdict) {
      RunVerdictMsg verdict = decode_run_verdict(frame.payload);
      if (verdict.run_id != run_id) {
        aside.push_back(std::move(frame));
        continue;
      }
      outcome.verdict = std::move(verdict);
      restore(aside);
      return outcome;
    }
    if (type == FrameType::kRunAlert) {
      RunAlertMsg alert = decode_run_alert(frame.payload);
      if (alert.run_id == run_id) {
        outcome.alerts.push_back(std::move(alert));
      } else {
        aside.push_back(std::move(frame));
      }
      continue;
    }
    if (type == FrameType::kWatchDone) {
      aside.push_back(std::move(frame));
      continue;
    }
    if (type == FrameType::kTenantAlert || type == FrameType::kShutdown) {
      continue;  // feed traffic; the verdict is still coming
    }
    unexpected(frame);
  }
}

WatchDone ServiceClient::await_watch_done(std::uint64_t run_id) {
  std::vector<Frame> aside;
  for (;;) {
    Frame frame = read_frame();
    const auto type = static_cast<FrameType>(frame.type);
    if (type == FrameType::kWatchDone) {
      const WatchDone done = decode_watch_done(frame.payload);
      if (done.run_id == run_id) {
        restore(aside);
        return done;
      }
      aside.push_back(std::move(frame));
      continue;
    }
    if (type == FrameType::kRunVerdict) {
      aside.push_back(std::move(frame));
      continue;
    }
    if (type == FrameType::kTenantAlert || type == FrameType::kRunAlert ||
        type == FrameType::kShutdown) {
      continue;
    }
    unexpected(frame);
  }
}

std::vector<TenantAlert> ServiceClient::subscribe() {
  send_frame(FrameType::kSubscribe, {});
  const SubscribeOk ok =
      decode_subscribe_ok(next_of(FrameType::kSubscribeOk).payload);
  std::vector<TenantAlert> backlog;
  backlog.reserve(ok.backlog);
  while (backlog.size() < ok.backlog) {
    backlog.push_back(
        decode_tenant_alert(next_of(FrameType::kTenantAlert).payload));
  }
  return backlog;
}

std::uint64_t ServiceClient::ping(std::uint64_t nonce) {
  send_frame(FrameType::kPing, encode(PingMsg{nonce}));
  return decode_ping(next_of(FrameType::kPong).payload).nonce;
}

void ServiceClient::goodbye() {
  send_frame(FrameType::kGoodbye, {});
}

std::string http_get(std::uint16_t port, const std::string& path,
                     int* status_out, std::chrono::milliseconds timeout) {
  Socket sock = connect_loopback(port, timeout);
  sock.set_receive_timeout(timeout);
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  if (!sock.send_all({reinterpret_cast<const std::byte*>(request.data()),
                      request.size()})) {
    throw std::runtime_error("http connection closed while sending");
  }
  // HTTP/1.0, Connection: close — read until EOF.
  std::string response;
  std::byte buf[8192];
  sock.set_nonblocking(false);
  for (;;) {
    if (!sock.recv_all(std::span<std::byte>(buf, 1))) break;
    response.push_back(static_cast<char>(buf[0]));
    sock.set_nonblocking(true);
    long extra = 0;
    try {
      extra = sock.read_some(std::span<std::byte>(buf, sizeof(buf)));
    } catch (...) {
      extra = 0;
    }
    sock.set_nonblocking(false);
    if (extra > 0) {
      response.append(reinterpret_cast<const char*>(buf),
                      static_cast<std::size_t>(extra));
    } else if (extra == 0) {
      break;
    }
  }
  const std::size_t line_end = response.find("\r\n");
  if (status_out != nullptr) {
    *status_out = 0;
    const std::size_t sp = response.find(' ');
    if (sp != std::string::npos && line_end != std::string::npos &&
        sp + 4 <= line_end) {
      *status_out = std::stoi(response.substr(sp + 1, 3));
    }
  }
  const std::size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) {
    throw std::runtime_error("malformed http response");
  }
  return response.substr(body_at + 4);
}

}  // namespace rfid::service
