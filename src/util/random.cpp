#include "util/random.h"

#include "util/expect.h"

namespace rfid::util {

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's nearly-divisionless method: multiply a 64-bit draw by the bound
  // and keep the high word; reject draws in the biased low region.
  // bound == 0 is a caller bug: loud in debug builds, degrade to 0 (without
  // consuming a draw) in release builds rather than UB.
  RFID_DEBUG_EXPECT(bound != 0, "below(0) requested — empty range [0, 0)");
  if (bound == 0) return 0;
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace rfid::util
