// Tests for the adaptive multi-frame cardinality estimator.
#include <gtest/gtest.h>

#include <stdexcept>

#include "estimate/adaptive.h"
#include "tag/tag_set.h"
#include "util/random.h"
#include "util/stats.h"

namespace {

using rfid::estimate::AdaptiveConfig;
using rfid::estimate::estimate_adaptive;
using rfid::tag::TagSet;

TEST(Adaptive, ConvergesToTruePopulation) {
  const rfid::hash::SlotHasher hasher;
  for (const std::size_t n : {50u, 500u, 5000u}) {
    rfid::util::Rng rng(rfid::util::derive_seed(70, n));
    const TagSet set = TagSet::make_random(n, rng);
    const auto result = estimate_adaptive(set.tags(), hasher, {}, rng);
    EXPECT_TRUE(result.converged) << "n=" << n;
    // Target 5% relative error; allow 4 standard errors of slack.
    EXPECT_NEAR(result.estimate, static_cast<double>(n),
                std::max(4.0 * result.std_error,
                         0.04 * static_cast<double>(n)))
        << "n=" << n;
    EXPECT_LE(result.std_error, 0.05 * result.estimate + 1e-9);
  }
}

TEST(Adaptive, EmptyPopulationIsCheap) {
  const rfid::hash::SlotHasher hasher;
  rfid::util::Rng rng(1);
  const auto result = estimate_adaptive({}, hasher, {}, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.estimate, 1.0);
  EXPECT_EQ(result.probes, 1u);  // first probe already informative
}

TEST(Adaptive, ProbePhaseGrowsGeometrically) {
  // A big population forces several saturated probes before the frame
  // catches up; their total cost stays small relative to the refine frames.
  const rfid::hash::SlotHasher hasher;
  rfid::util::Rng rng(2);
  const TagSet set = TagSet::make_random(20000, rng);
  const auto result = estimate_adaptive(set.tags(), hasher, {}, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.probes, 3u);
  EXPECT_NEAR(result.estimate, 20000.0, 2000.0);
}

TEST(Adaptive, TighterTargetCostsMoreSlots) {
  const rfid::hash::SlotHasher hasher;
  rfid::util::Rng rng_a(3);
  rfid::util::Rng rng_b(3);
  const TagSet set = TagSet::make_random(1000, rng_a);
  (void)TagSet::make_random(1000, rng_b);  // align streams

  AdaptiveConfig loose;
  loose.target_relative_error = 0.10;
  AdaptiveConfig tight;
  tight.target_relative_error = 0.02;
  const auto cheap = estimate_adaptive(set.tags(), hasher, loose, rng_a);
  const auto precise = estimate_adaptive(set.tags(), hasher, tight, rng_b);
  EXPECT_TRUE(cheap.converged);
  EXPECT_TRUE(precise.converged);
  EXPECT_LT(cheap.total_slots, precise.total_slots);
  EXPECT_LT(precise.std_error, cheap.std_error);
}

TEST(Adaptive, MaxProbesBoundsWork) {
  const rfid::hash::SlotHasher hasher;
  rfid::util::Rng rng(4);
  const TagSet set = TagSet::make_random(100000, rng);
  AdaptiveConfig strangled;
  strangled.max_probes = 2;  // cannot even exit the saturation phase
  const auto result = estimate_adaptive(set.tags(), hasher, strangled, rng);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.probes + result.refine_rounds, 2u);
}

TEST(Adaptive, RejectsBadConfig) {
  const rfid::hash::SlotHasher hasher;
  rfid::util::Rng rng(5);
  const TagSet set = TagSet::make_random(5, rng);
  AdaptiveConfig bad;
  bad.growth_factor = 1.0;
  EXPECT_THROW((void)estimate_adaptive(set.tags(), hasher, bad, rng),
               std::invalid_argument);
  bad = {};
  bad.initial_frame = 0;
  EXPECT_THROW((void)estimate_adaptive(set.tags(), hasher, bad, rng),
               std::invalid_argument);
  bad = {};
  bad.target_relative_error = 0.0;
  EXPECT_THROW((void)estimate_adaptive(set.tags(), hasher, bad, rng),
               std::invalid_argument);
}

TEST(Adaptive, SlotBudgetIsLinearInPopulation) {
  // Total slots ~ c * n for modest targets (each refine frame is ~n wide and
  // only a handful are needed at 5%).
  const rfid::hash::SlotHasher hasher;
  rfid::util::Rng rng(6);
  const TagSet set = TagSet::make_random(2000, rng);
  const auto result = estimate_adaptive(set.tags(), hasher, {}, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.total_slots, 2000u * 12);
}

}  // namespace
