// Tests for the adversaries: the Alg. 4 OR-combine attack that breaks TRP,
// and the budgeted attacks against UTRP (mechanical and analysis-faithful).
#include <gtest/gtest.h>

#include "attack/split_attack.h"
#include "attack/utrp_attack.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::attack::run_trp_split_attack;
using rfid::attack::run_utrp_split_attack;
using rfid::attack::run_utrp_static_model_attack;
using rfid::protocol::MonitoringPolicy;
using rfid::protocol::TrpReader;
using rfid::protocol::TrpServer;
using rfid::protocol::UtrpReader;
using rfid::protocol::UtrpServer;
using rfid::tag::TagSet;

MonitoringPolicy policy(std::uint64_t m, double alpha = 0.95) {
  return MonitoringPolicy{.tolerated_missing = m, .confidence = alpha};
}

// ------------------------------------------------- Alg. 4 breaks TRP -----

TEST(TrpSplitAttack, ForgedBitstringVerifiesAsIntact) {
  // The motivating vulnerability (Sec. 5.1): stealing m+1 tags and handing
  // them to a collaborator defeats TRP with a single transmission, every
  // single time.
  for (int t = 0; t < 20; ++t) {
    rfid::util::Rng rng(rfid::util::derive_seed(1, static_cast<std::uint64_t>(t)));
    TagSet set = TagSet::make_random(300, rng);
    const TrpServer server(set.ids(), policy(5));
    const TagSet stolen = set.steal_random(6, rng);
    const auto c = server.issue_challenge(rng);
    const auto attack = run_trp_split_attack(set.tags(), stolen.tags(),
                                             rfid::hash::SlotHasher{}, c, rng);
    EXPECT_TRUE(server.verify(c, attack.forged).intact);
    EXPECT_EQ(attack.transmissions, 1u);
  }
}

TEST(TrpSplitAttack, ForgeryEqualsHonestBitstring) {
  rfid::util::Rng rng(2);
  TagSet set = TagSet::make_random(150, rng);
  const rfid::hash::SlotHasher hasher;
  const TrpServer server(set.ids(), policy(3), hasher);
  const auto c = server.issue_challenge(rng);
  const auto honest = server.expected_bitstring(c);
  const TagSet stolen = set.steal_random(4, rng);
  const auto attack =
      run_trp_split_attack(set.tags(), stolen.tags(), hasher, c, rng);
  EXPECT_EQ(attack.forged, honest);
}

TEST(TrpReplayAttack, FreshChallengeDefeatsReplay) {
  // Sec. 5.1: replaying a bitstring recorded under an old (f, r) fails once
  // the server issues fresh randomness.
  rfid::util::Rng rng(3);
  const TagSet set = TagSet::make_random(250, rng);
  const TrpServer server(set.ids(), policy(5));
  const TrpReader reader;
  const auto c_old = server.issue_challenge(rng);
  const auto recorded = reader.scan(set.tags(), c_old, rng);
  EXPECT_TRUE(server.verify(c_old, recorded).intact);

  const auto c_new = server.issue_challenge(rng);
  const auto replayed = rfid::attack::replay_recorded_bitstring(recorded);
  EXPECT_FALSE(server.verify(c_new, replayed).intact);
}

// --------------------------------------- mechanical attack vs UTRP -------

TEST(UtrpSplitAttack, UnlimitedBudgetForgesPerfectly) {
  // With budget >= f the pair behaves as one reader: the forgery matches the
  // honest bitstring exactly.
  rfid::util::Rng rng(4);
  TagSet set = TagSet::make_random(200, rng);
  UtrpServer server(set, policy(5), 20);
  const auto c = server.issue_challenge(rng);
  const auto expected = server.expected_bitstring(c);
  TagSet stolen = set.steal_random(6, rng);
  const auto attack =
      run_utrp_split_attack(set.tags(), stolen.tags(), rfid::hash::SlotHasher{},
                            c, /*comm_budget=*/c.frame_size);
  EXPECT_EQ(attack.forged, expected);
  EXPECT_EQ(attack.coordinated_slots, c.frame_size);
}

TEST(UtrpSplitAttack, ZeroBudgetDetectedAboveAlpha) {
  // With no communication at all, a stolen tag escapes notice only by
  // landing (throughout the walk) on slots the remaining tags also occupy,
  // so detection sits at the g(n, m+1, f) level — above alpha since the
  // UTRP frame is oversized relative to TRP's.
  int detected = 0;
  constexpr int kTrials = 50;
  for (int t = 0; t < kTrials; ++t) {
    rfid::util::Rng trial_rng(rfid::util::derive_seed(5, static_cast<std::uint64_t>(t)));
    TagSet set = TagSet::make_random(200, trial_rng);
    UtrpServer server(set, policy(5), 20);
    TagSet stolen = set.steal_random(6, trial_rng);
    const auto c = server.issue_challenge(trial_rng);
    const auto attack = run_utrp_split_attack(
        set.tags(), stolen.tags(), rfid::hash::SlotHasher{}, c, 0);
    if (!server.verify(c, attack.forged).intact) ++detected;
  }
  EXPECT_GE(detected, kTrials * 88 / 100);
}

TEST(UtrpSplitAttack, BudgetedAttackDetectedAboveAlpha) {
  // The protocol's design point: even with c = 20 messages the mechanical
  // attack is detected with probability > alpha (it is in fact detected more
  // often than the analytical bound suggests — see ablation_attack_model).
  constexpr int kTrials = 150;
  int detected = 0;
  for (int t = 0; t < kTrials; ++t) {
    rfid::util::Rng rng(rfid::util::derive_seed(6, static_cast<std::uint64_t>(t)));
    TagSet set = TagSet::make_random(300, rng);
    UtrpServer server(set, policy(5, 0.9), 20);
    TagSet stolen = set.steal_random(6, rng);
    const auto c = server.issue_challenge(rng);
    const auto attack = run_utrp_split_attack(
        set.tags(), stolen.tags(), rfid::hash::SlotHasher{}, c, 20);
    if (!server.verify(c, attack.forged).intact) ++detected;
  }
  EXPECT_GE(static_cast<double>(detected) / kTrials, 0.9);
}

TEST(UtrpSplitAttack, CoordinatedPrefixMatchesExpected) {
  // Up to the slot where the budget runs out, the forgery is byte-identical
  // to the honest bitstring (that is what the communication buys).
  rfid::util::Rng rng(7);
  TagSet set = TagSet::make_random(250, rng);
  UtrpServer server(set, policy(5), 20);
  const auto c = server.issue_challenge(rng);
  const auto expected = server.expected_bitstring(c);
  TagSet stolen = set.steal_random(6, rng);
  const auto attack = run_utrp_split_attack(
      set.tags(), stolen.tags(), rfid::hash::SlotHasher{}, c, 20);
  const auto first_diff = expected.first_difference(attack.forged);
  if (first_diff.has_value()) {
    EXPECT_GE(*first_diff, attack.coordinated_slots);
  }
  EXPECT_LE(attack.comms_used, 20u);
}

TEST(UtrpSplitAttack, BudgetConsumedOnEmptySlots) {
  rfid::util::Rng rng(8);
  TagSet set = TagSet::make_random(100, rng);
  UtrpServer server(set, policy(3), 20);
  const auto c = server.issue_challenge(rng);
  TagSet stolen = set.steal_random(4, rng);
  const auto attack = run_utrp_split_attack(
      set.tags(), stolen.tags(), rfid::hash::SlotHasher{}, c, 5);
  EXPECT_LE(attack.comms_used, 5u);
  EXPECT_LT(attack.coordinated_slots, c.frame_size);
}

// ------------------------------------------------ attack boundaries ------

TEST(AttackBoundaries, BlanketJammingNeverFools) {
  // An adversary without the stolen tags cannot learn their slots (tags
  // never transmit IDs), so the best ID-free forgery is setting extra bits.
  // But any expected-0 slot set to 1 is itself a mismatch: all-ones fails
  // whenever the expected bitstring has at least one empty slot — which
  // Eq. (2) frames guarantee by construction (they NEED empty slots).
  rfid::util::Rng rng(20);
  const TagSet set = TagSet::make_random(300, rng);
  const TrpServer server(set.ids(), policy(5));
  for (int round = 0; round < 10; ++round) {
    const auto c = server.issue_challenge(rng);
    rfid::bits::Bitstring all_ones(c.frame_size);
    for (std::size_t i = 0; i < all_ones.size(); ++i) all_ones.set(i);
    EXPECT_FALSE(server.verify(c, all_ones).intact);
  }
}

TEST(AttackBoundaries, RandomBitstringGuessingIsHopeless) {
  rfid::util::Rng rng(21);
  const TagSet set = TagSet::make_random(200, rng);
  const TrpServer server(set.ids(), policy(5));
  for (int round = 0; round < 20; ++round) {
    const auto c = server.issue_challenge(rng);
    rfid::bits::Bitstring guess(c.frame_size);
    for (std::size_t i = 0; i < guess.size(); ++i) {
      guess.set(i, rng.chance(0.6));
    }
    EXPECT_FALSE(server.verify(c, guess).intact);
  }
}

TEST(AttackBoundaries, CloneAndReplaceIsOutOfScopeByConstruction) {
  // The paper's documented limitation (Sec. 3, adversary model): replacing
  // stolen tags with clones carrying identical IDs is undetectable, because
  // the protocol observes only ID-derived slot choices. This test pins the
  // boundary so nobody mistakes it for a regression.
  rfid::util::Rng rng(22);
  TagSet set = TagSet::make_random(250, rng);
  const TrpServer server(set.ids(), policy(5));
  const TrpReader reader;

  const TagSet stolen = set.steal_random(6, rng);
  // The adversary manufactures clones with the stolen IDs and reinserts.
  std::vector<rfid::tag::Tag> with_clones(set.tags().begin(), set.tags().end());
  for (const auto& original : stolen.tags()) {
    with_clones.emplace_back(original.id());  // clone: same ID, fresh state
  }
  TagSet replaced{std::move(with_clones)};
  for (int round = 0; round < 5; ++round) {
    const auto c = server.issue_challenge(rng);
    EXPECT_TRUE(server.verify(c, reader.scan(replaced.tags(), c, rng)).intact);
  }
}

TEST(AttackBoundaries, UtrpCountersDoNotStopClones) {
  // Clones defeat UTRP too IF the cloner also copies the counter value —
  // counters defeat rewind/replay, not cloning. Documented boundary.
  rfid::util::Rng rng(23);
  TagSet set = TagSet::make_random(150, rng);
  UtrpServer server(set, policy(3), 20);
  const UtrpReader reader;
  TagSet stolen = set.steal_random(4, rng);
  std::vector<rfid::tag::Tag> with_clones(set.tags().begin(), set.tags().end());
  for (const auto& original : stolen.tags()) {
    with_clones.emplace_back(original.id(), original.counter());
  }
  TagSet replaced{std::move(with_clones)};
  const auto c = server.issue_challenge(rng);
  const auto scan = reader.scan(replaced.tags(), c);
  EXPECT_TRUE(server.verify(c, scan.bitstring).intact);
}

// --------------------------------------- analysis-faithful model ---------

TEST(UtrpStaticModel, UnlimitedBudgetNeverDetected) {
  rfid::util::Rng rng(9);
  TagSet set = TagSet::make_random(200, rng);
  TagSet stolen = set.steal_random(6, rng);
  const auto trial = run_utrp_static_model_attack(
      set.tags(), stolen.tags(), rfid::hash::SlotHasher{}, 400, 12345,
      /*comm_budget=*/400);
  EXPECT_FALSE(trial.detected);
  EXPECT_EQ(trial.realized_cprime, 400u);
  EXPECT_EQ(trial.exposed_stolen, 0u);
}

TEST(UtrpStaticModel, ZeroBudgetReducesToTrpDetection) {
  // c = 0: coordination covers nothing; detection is the plain TRP event.
  constexpr int kTrials = 400;
  int detected = 0;
  const auto plan = rfid::math::optimize_trp_frame(300, 5, 0.95);
  for (int t = 0; t < kTrials; ++t) {
    rfid::util::Rng rng(rfid::util::derive_seed(10, static_cast<std::uint64_t>(t)));
    TagSet set = TagSet::make_random(300, rng);
    TagSet stolen = set.steal_random(6, rng);
    const auto trial = run_utrp_static_model_attack(
        set.tags(), stolen.tags(), rfid::hash::SlotHasher{}, plan.frame_size,
        rng(), 0);
    EXPECT_EQ(trial.realized_cprime, 0u);
    if (trial.detected) ++detected;
  }
  EXPECT_NEAR(static_cast<double>(detected) / kTrials,
              plan.predicted_detection, 0.05);
}

TEST(UtrpStaticModel, DetectionRateMatchesEq3Prediction) {
  // The cornerstone of Fig. 7: simulate the analysis-faithful attack at the
  // Eq. 3 frame size and compare with the predicted probability.
  const std::uint64_t n = 500;
  const std::uint64_t m = 10;
  const std::uint64_t budget = 20;
  const auto plan = rfid::math::optimize_utrp_frame(n, m, 0.95, budget);
  constexpr int kTrials = 600;
  int detected = 0;
  for (int t = 0; t < kTrials; ++t) {
    rfid::util::Rng rng(rfid::util::derive_seed(11, static_cast<std::uint64_t>(t)));
    TagSet set = TagSet::make_random(n, rng);
    TagSet stolen = set.steal_random(m + 1, rng);
    const auto trial = run_utrp_static_model_attack(
        set.tags(), stolen.tags(), rfid::hash::SlotHasher{}, plan.frame_size,
        rng(), budget);
    if (trial.detected) ++detected;
  }
  const double rate = static_cast<double>(detected) / kTrials;
  EXPECT_GT(rate, 0.92);  // must sit at/above alpha within Monte-Carlo noise
  EXPECT_NEAR(rate, plan.predicted_detection, 0.04);
}

TEST(UtrpStaticModel, LargerBudgetsExposeFewerStolenTags) {
  rfid::util::Rng rng(12);
  TagSet set = TagSet::make_random(400, rng);
  TagSet stolen = set.steal_random(21, rng);
  const std::uint64_t r = rng();
  const auto none = run_utrp_static_model_attack(
      set.tags(), stolen.tags(), rfid::hash::SlotHasher{}, 500, r, 0);
  const auto some = run_utrp_static_model_attack(
      set.tags(), stolen.tags(), rfid::hash::SlotHasher{}, 500, r, 50);
  EXPECT_EQ(none.exposed_stolen, 21u);
  EXPECT_LE(some.exposed_stolen, none.exposed_stolen);
  EXPECT_GT(some.realized_cprime, 0u);
}

TEST(UtrpStaticModel, RejectsZeroFrame) {
  rfid::util::Rng rng(13);
  TagSet set = TagSet::make_random(10, rng);
  TagSet stolen = set.steal_random(2, rng);
  EXPECT_THROW((void)run_utrp_static_model_attack(set.tags(), stolen.tags(),
                                                  rfid::hash::SlotHasher{}, 0,
                                                  1, 5),
               std::invalid_argument);
}

}  // namespace
