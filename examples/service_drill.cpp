// service_drill — the multi-tenant monitoring service, front to back.
//
// Act 1 — enrollment: a tenant connects over the framed loopback protocol,
//         authenticates, and enrolls a 150-tag inventory; the service plans
//         the zones (Theorem 1 sizing) and reports the slot budget.
// Act 2 — intact run: a monitoring run with nothing stolen streams back an
//         `intact` verdict.
// Act 3 — theft: 5 tags vanish; the run (with the identification
//         drill-down enabled) comes back `violated` and NAMES exactly the
//         stolen tags in the verdict frame.
// Act 4 — the alert feed: a second connection of the same tenant
//         subscribes and replays the violation alert — named tags
//         included — while a different tenant's feed stays empty.
// Act 5 — operations: the Prometheus scrape endpoint serves the service's
//         own counters, and a graceful stop() drains cleanly.
//
// Self-checking: every claim above is asserted; exits 1 on any violation.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/service.h"
#include "tag/tag_id.h"

namespace {

using namespace rfid;

void check(bool ok, const char* what) {
  if (ok) return;
  std::printf("DRILL FAILED: %s\n", what);
  std::exit(1);
}

}  // namespace

int main() {
  obs::MetricsRegistry registry;
  service::ServiceConfig config;
  config.workers = 2;
  config.metrics = &registry;
  service::MonitorService svc{config};
  svc.start();
  std::printf("service up: framed port %u, scrape port %u\n\n", svc.port(),
              svc.http_port());

  // ---- Act 1: connect, authenticate, enroll -----------------------------
  service::ServiceClient client(svc.port());
  const service::HelloOk session = client.hello("acme-logistics");
  check(session.session_id != 0, "hello grants a session");

  service::EnrollRequest inv;
  inv.inventory = "electronics";
  inv.tolerance = 4;
  inv.zone_capacity = 50;
  inv.rounds = 2;
  for (std::uint32_t i = 0; i < 150; ++i) inv.tags.emplace_back(i, 0xe000 + i);
  const service::EnrollOk enrolled = client.enroll(inv);
  std::printf("enrolled %s: %llu tags across %llu zones, %llu planned slots\n",
              enrolled.inventory.c_str(),
              static_cast<unsigned long long>(enrolled.tags),
              static_cast<unsigned long long>(enrolled.zones),
              static_cast<unsigned long long>(enrolled.total_slots));
  check(enrolled.tags == 150 && enrolled.zones == 3, "3 zones of 50 planned");

  // ---- Act 2: intact run ------------------------------------------------
  service::StartRunRequest run;
  run.inventory = "electronics";
  run.seed = 2008;
  service::StartOutcome outcome = client.start_run(run);
  check(outcome.admitted.has_value(), "intact run admitted");
  service::RunOutcome intact = client.await_verdict(outcome.admitted->run_id);
  check(intact.verdict.verdict ==
            static_cast<std::uint8_t>(fleet::GlobalVerdict::kIntact),
        "nothing stolen -> intact");
  std::printf("run %llu: intact (%llu zones, %llu attempts)\n",
              static_cast<unsigned long long>(intact.verdict.run_id),
              static_cast<unsigned long long>(intact.verdict.zones),
              static_cast<unsigned long long>(intact.verdict.attempts));

  // ---- Act 3: theft, drilled down to names ------------------------------
  const std::vector<std::uint64_t> stolen = {5, 17, 88, 120, 141};
  run.seed = 2009;
  run.identify = true;
  run.stolen = stolen;
  outcome = client.start_run(run);
  check(outcome.admitted.has_value(), "theft run admitted");
  service::RunOutcome theft = client.await_verdict(outcome.admitted->run_id);
  check(theft.verdict.verdict ==
            static_cast<std::uint8_t>(fleet::GlobalVerdict::kViolated),
        "theft -> violated");
  check(theft.verdict.tags_named == stolen.size(),
        "drill-down names every stolen tag");
  std::printf("\nrun %llu: VIOLATED, %llu zone(s) hit, named stolen tags:\n",
              static_cast<unsigned long long>(theft.verdict.run_id),
              static_cast<unsigned long long>(theft.verdict.zones_violated));
  for (const tag::TagId& id : theft.verdict.missing) {
    std::printf("  missing tag %s\n", id.to_string().c_str());
  }
  for (const std::uint64_t idx : stolen) {
    bool named = false;
    for (const tag::TagId& id : theft.verdict.missing) {
      named = named || id == inv.tags[idx];
    }
    check(named, "every stolen tag is named");
  }
  check(theft.verdict.missing.size() == stolen.size(),
        "no innocent tag is accused");

  // ---- Act 4: the alert feed --------------------------------------------
  service::ServiceClient auditor(svc.port());
  auditor.hello("acme-logistics");
  const std::vector<service::TenantAlert> backlog = auditor.subscribe();
  check(!backlog.empty(), "feed replays the violation");
  bool feed_names_tags = false;
  for (const service::TenantAlert& alert : backlog) {
    feed_names_tags = feed_names_tags || !alert.missing.empty();
  }
  check(feed_names_tags, "replayed alert carries the named tags");
  std::printf("\nalert feed replayed %zu alert(s); first: [%s] %s\n",
              backlog.size(), backlog.front().kind.c_str(),
              backlog.front().detail.c_str());

  service::ServiceClient bystander(svc.port());
  bystander.hello("other-tenant");
  check(bystander.subscribe().empty(), "tenant isolation: empty feed");

  // ---- Act 5: scrape, then drain ----------------------------------------
  int status = 0;
  const std::string metrics = service::http_get(
      svc.http_port(), "/metrics", &status);
  check(status == 200, "scrape endpoint answers");
  check(metrics.find("rfidmon_service_runs_total") != std::string::npos,
        "scrape exposes service counters");
  check(metrics.find("rfidmon_fleet_zones_total") != std::string::npos,
        "scrape exposes the hosted runs' fleet counters");
  std::printf("\nscrape ok: %zu bytes of Prometheus text\n", metrics.size());

  client.goodbye();
  const service::ServiceStats stats = svc.stop();
  check(stats.drained_cleanly, "graceful stop drains cleanly");
  check(stats.runs_completed == 2, "both runs resolved");
  std::printf("drained cleanly: %llu connections served, %llu frames in, "
              "%llu frames out\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.frames_in),
              static_cast<unsigned long long>(stats.frames_out));
  std::printf("\nservice drill: all checks passed\n");
  return 0;
}
