// Slot selection: the paper's  sn = h(ID ⊕ r [⊕ ct]) mod f.
//
// The paper leaves the hash h abstract; SlotHasher makes it a pluggable
// choice among the three from-scratch implementations in this library so the
// uniformity assumption behind Theorem 1 can be tested and ablated
// (bench/ablation_hash). All parties — tags, readers, and the verifying
// server — must construct SlotHasher with identical parameters, mirroring
// the paper's assumption that h is public and deterministic.
#pragma once

#include <cstdint>
#include <string_view>

#include "hash/fnv.h"
#include "hash/murmur.h"
#include "hash/siphash.h"

namespace rfid::hash {

enum class HashKind : std::uint8_t {
  kFnv1a64,         // cheapest; weakest mixing
  kMurmurFmix64,    // default: bijective 64-bit finalizer
  kSipHash24,       // keyed PRF; strongest
};

[[nodiscard]] std::string_view to_string(HashKind kind) noexcept;

class SlotHasher {
 public:
  /// `key` is only used by SipHash; other kinds ignore it.
  explicit constexpr SlotHasher(HashKind kind = HashKind::kMurmurFmix64,
                                SipKey key = {0x0706050403020100ULL,
                                              0x0f0e0d0c0b0a0908ULL}) noexcept
      : kind_(kind), key_(key) {}

  [[nodiscard]] constexpr HashKind kind() const noexcept { return kind_; }
  /// The SipHash key (meaningful only when kind() == kSipHash24). Exposed so
  /// bulk kernels (tag/columnar.h) can hoist the per-kind dispatch out of
  /// their hot loops and call the underlying hash directly.
  [[nodiscard]] constexpr SipKey sip_key() const noexcept { return key_; }

  /// Raw 64-bit hash of the mixed word `id ^ r ^ ct`.
  [[nodiscard]] std::uint64_t mix(std::uint64_t id_word, std::uint64_t r,
                                  std::uint64_t ct = 0) const noexcept {
    const std::uint64_t input = id_word ^ r ^ ct;
    switch (kind_) {
      case HashKind::kFnv1a64: return fnv1a64_u64(input);
      case HashKind::kMurmurFmix64: return murmur3_fmix64(input);
      case HashKind::kSipHash24: return siphash24_u64(input, key_);
    }
    return murmur3_fmix64(input);  // unreachable; keeps -Wreturn-type happy
  }

  /// Slot number in [0, frame_size). frame_size must be nonzero; a zero
  /// frame would mean "no slots", which no protocol in this library issues.
  [[nodiscard]] std::uint32_t slot(std::uint64_t id_word, std::uint64_t r,
                                   std::uint32_t frame_size,
                                   std::uint64_t ct = 0) const noexcept {
    // Multiply-shift range reduction avoids the modulo bias a plain
    // `mix % f` would exhibit for frame sizes near 2^64 (and is faster).
    const std::uint64_t h = mix(id_word, r, ct);
    return static_cast<std::uint32_t>(
        (static_cast<__uint128_t>(h) * frame_size) >> 64);
  }

 private:
  HashKind kind_;
  SipKey key_;
};

}  // namespace rfid::hash
