// Binomial distribution utilities used by the paper's analysis.
//
// Theorem 1 sums a Binomial(f, p) pmf over all f+1 outcomes; for the frame
// sizes this library optimizes (up to tens of thousands of slots) the pmf
// mass is concentrated in an O(√f) window around the mean, so every consumer
// here iterates only the significant range. Probabilities are computed with
// an incremental recurrence seeded from a log-space evaluation at the mode,
// which is stable for all n, p encountered.
#pragma once

#include <cstdint>
#include <utility>

namespace rfid::math {

/// log C(n, k) via lgamma; requires k <= n.
[[nodiscard]] double log_binomial_coefficient(std::uint64_t n, std::uint64_t k);

/// log pmf of Binomial(n, p) at k; -inf when the outcome is impossible.
/// Requires k <= n and p in [0, 1].
[[nodiscard]] double log_binomial_pmf(std::uint64_t n, std::uint64_t k, double p);

/// pmf of Binomial(n, p) at k.
[[nodiscard]] double binomial_pmf(std::uint64_t n, std::uint64_t k, double p);

/// Closed interval [lo, hi] of outcomes outside which the Binomial(n, p)
/// pmf contributes less than ~`tail_epsilon` total mass on each side
/// (computed as mean ± z·sigma with z chosen from the epsilon).
struct OutcomeRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};
[[nodiscard]] OutcomeRange significant_range(std::uint64_t n, double p,
                                             double tail_epsilon = 1e-12);

/// Calls fn(k, pmf) for every k in the significant range of Binomial(n, p),
/// in increasing k. pmf values are computed with the multiplicative
/// recurrence pmf(k+1) = pmf(k)·(n−k)/(k+1)·p/(1−p), seeded at the mode.
template <typename Fn>
void for_each_binomial_outcome(std::uint64_t n, double p, Fn&& fn,
                               double tail_epsilon = 1e-12) {
  if (p <= 0.0) {
    fn(std::uint64_t{0}, 1.0);
    return;
  }
  if (p >= 1.0) {
    fn(n, 1.0);
    return;
  }
  const OutcomeRange range = significant_range(n, p, tail_epsilon);
  const double ratio = p / (1.0 - p);
  double pmf = binomial_pmf(n, range.lo, p);
  for (std::uint64_t k = range.lo;; ++k) {
    fn(k, pmf);
    if (k == range.hi) break;
    // pmf(k+1) from pmf(k); guarded against underflow to keep the loop sane.
    pmf *= (static_cast<double>(n - k) / static_cast<double>(k + 1)) * ratio;
    if (pmf < 1e-300) pmf = 1e-300;
  }
}

}  // namespace rfid::math
