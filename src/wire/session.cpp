#include "wire/session.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/catalog.h"
#include "util/expect.h"

namespace rfid::wire {

std::string_view to_string(FailureReason reason) noexcept {
  switch (reason) {
    case FailureReason::kNone: return "none";
    case FailureReason::kTimeoutExhausted: return "timeout-exhausted";
    case FailureReason::kDeadlineMissed: return "deadline-missed";
    case FailureReason::kCrashed: return "crashed";
    case FailureReason::kCorruptGiveup: return "corrupt-giveup";
  }
  return "unknown";
}

namespace {

// The session state machine is protocol-agnostic; an Adapter supplies the
// five protocol-specific operations (issue/encode/accept/scan/verify). Both
// adapters keep scans one-per-round — retransmitted reports reuse the stored
// bitstring, which matters for UTRP where a re-scan would advance counters.
// (A crash/restart deliberately re-scans: the reader lost its volatile scan
// state, exactly like real hardware. For TRP the re-scan is idempotent; for
// UTRP it advances counters past the mirror — the divergence the server's
// resync flow exists to heal.)

struct TrpAdapter {
  const protocol::TrpServer& server;
  std::span<const tag::Tag> present;
  const SessionConfig& config;

  using Challenge = protocol::TrpChallenge;
  static constexpr std::string_view kProtocol{"trp"};

  [[nodiscard]] Challenge issue(std::uint64_t round, util::Rng& rng) const {
    if (config.trp_challenges != nullptr) {
      RFID_EXPECT(round < config.trp_challenges->size(),
                  "fixed challenge schedule does not cover this round");
      return (*config.trp_challenges)[round];
    }
    return server.issue_challenge(rng);
  }
  [[nodiscard]] std::vector<std::byte> encode_challenge(std::uint64_t round,
                                                        const Challenge& c) const {
    return encode(TrpChallengeMsg{round, c});
  }
  [[nodiscard]] static bool is_challenge(MessageType type) {
    return type == MessageType::kTrpChallenge;
  }
  [[nodiscard]] static std::pair<std::uint64_t, Challenge> decode_challenge_frame(
      std::span<const std::byte> frame) {
    const TrpChallengeMsg msg = decode_trp_challenge(frame);
    return {msg.round, msg.challenge};
  }
  /// Returns (bitstring, scan duration). `rng` drives channel randomness.
  [[nodiscard]] std::pair<bits::Bitstring, double> scan(const Challenge& c,
                                                        util::Rng& rng) const {
    if (config.trp_forge) {
      // Adversarial reader: no scan happens; the forged string still prices
      // air time so the timeline stays physically plausible.
      bits::Bitstring forged = config.trp_forge(c);
      const std::uint64_t replies = forged.count();
      const double us =
          config.timing.trp_scan_us(c.frame_size - replies, replies);
      return {std::move(forged), us};
    }
    const protocol::TrpReader reader{hash::SlotHasher{}, config.channel};
    const auto observed = reader.scan_observed(present, c, rng);
    const std::uint64_t replies =
        observed.single_slots + observed.collision_slots;
    if (config.metrics != nullptr) {
      obs::catalog::scan_slots_total(*config.metrics, kProtocol, "empty")
          .inc(observed.empty_slots);
      obs::catalog::scan_slots_total(*config.metrics, kProtocol, "reply")
          .inc(replies);
    }
    const double us = config.timing.trp_scan_us(observed.empty_slots, replies);
    return {observed.bitstring, us};
  }
  [[nodiscard]] protocol::Verdict verify(const Challenge& c,
                                         const bits::Bitstring& bs,
                                         double /*elapsed_us*/) const {
    return server.verify(c, bs);
  }
};

struct UtrpAdapter {
  protocol::UtrpServer& server;
  std::span<tag::Tag> present;
  const SessionConfig& config;

  using Challenge = protocol::UtrpChallenge;
  static constexpr std::string_view kProtocol{"utrp"};

  [[nodiscard]] Challenge issue(std::uint64_t /*round*/, util::Rng& rng) const {
    return server.issue_challenge(rng);
  }
  [[nodiscard]] std::vector<std::byte> encode_challenge(std::uint64_t round,
                                                        const Challenge& c) const {
    return encode(UtrpChallengeMsg{round, c});
  }
  [[nodiscard]] static bool is_challenge(MessageType type) {
    return type == MessageType::kUtrpChallenge;
  }
  [[nodiscard]] static std::pair<std::uint64_t, Challenge> decode_challenge_frame(
      std::span<const std::byte> frame) {
    UtrpChallengeMsg msg = decode_utrp_challenge(frame);
    return {msg.round, std::move(msg.challenge)};
  }
  [[nodiscard]] std::pair<bits::Bitstring, double> scan(const Challenge& c,
                                                        util::Rng& /*rng*/) const {
    for (tag::Tag& t : present) t.begin_round();
    const auto result = protocol::utrp_scan(present, hash::SlotHasher{}, c);
    const std::uint64_t occupied = result.bitstring.count();
    if (config.metrics != nullptr) {
      obs::catalog::scan_slots_total(*config.metrics, kProtocol, "empty")
          .inc(c.frame_size - occupied);
      obs::catalog::scan_slots_total(*config.metrics, kProtocol, "reply")
          .inc(occupied);
      obs::catalog::reseeds_total(*config.metrics, "reader").inc(result.reseeds);
    }
    const double us = config.timing.utrp_scan_us(
        c.frame_size - occupied, occupied, result.reseeds);
    return {result.bitstring, us};
  }
  [[nodiscard]] protocol::Verdict verify(const Challenge& c,
                                         const bits::Bitstring& bs,
                                         double elapsed_us) const {
    const bool on_time = config.utrp_deadline_us <= 0.0 ||
                         elapsed_us <= config.utrp_deadline_us;
    const protocol::Verdict verdict = server.verify(c, bs, on_time);
    server.commit_round(c, verdict);
    return verdict;
  }
};

/// All mutable state of one session, shared by the event-queue callbacks.
/// Held by shared_ptr so late-firing timeout events cannot dangle (they
/// compare generations and become no-ops).
template <typename Adapter>
struct SessionState {
  sim::EventQueue& queue;
  Adapter adapter;
  const SessionConfig& config;
  util::Rng& rng;
  /// Executes the scripted FaultPlan, if any. Constructed before the links
  /// so they can hold a stable pointer into it.
  std::optional<fault::FaultInjector> injector;
  Link uplink;    // reader -> server
  Link downlink;  // server -> reader

  using Challenge = typename Adapter::Challenge;

  // --- server endpoint ----------------------------------------------------
  std::map<std::uint64_t, Challenge> issued;
  std::map<std::uint64_t, double> issued_at_us;      // first-issue timestamp
  std::map<std::uint64_t, protocol::Verdict> decided;

  // --- reader endpoint ----------------------------------------------------
  std::uint64_t total_rounds;
  std::uint64_t round = 0;
  enum class Phase { kRequesting, kScanning, kReporting, kDone, kFailed, kCrashed };
  Phase phase = Phase::kRequesting;
  BitstringReport pending_report;
  std::uint32_t retries = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t generation = 0;
  /// When the reader first requested the current round (its local view of
  /// the UTRP deadline clock; the server's true clock starts at first
  /// issue, slightly later, so this is conservative).
  double round_started_at_us = 0.0;
  /// corrupt_frames_dropped at round start, to attribute corrupt-giveup.
  std::uint64_t round_corrupt_base = 0;
  /// Backoff jitter draws come from a dedicated stream so enabling them
  /// never perturbs challenge/channel randomness.
  util::Rng backoff_rng{0x6b63616266666f62ULL};

  SessionOutcome outcome;

  // --- observability (all optional; see SessionConfig) --------------------
  obs::Counter* retrans_counter = nullptr;
  std::uint64_t session_span = obs::Tracer::kNoSpan;
  std::uint64_t round_span = obs::Tracer::kNoSpan;
  std::uint64_t scan_span = obs::Tracer::kNoSpan;

  SessionState(sim::EventQueue& q, Adapter a, std::uint64_t rounds,
               const SessionConfig& cfg, util::Rng& r)
      : queue(q),
        adapter(std::move(a)),
        config(cfg),
        rng(r),
        injector(cfg.faults != nullptr
                     ? std::optional<fault::FaultInjector>(
                           std::in_place, *cfg.faults)
                     : std::nullopt),
        uplink(q, cfg.uplink, r, injector ? &*injector : nullptr),
        downlink(q, cfg.downlink, r, injector ? &*injector : nullptr),
        total_rounds(rounds) {
    if (cfg.metrics != nullptr) {
      uplink.attach_metrics(*cfg.metrics, "uplink");
      downlink.attach_metrics(*cfg.metrics, "downlink");
      retrans_counter = &obs::catalog::retransmissions_total(*cfg.metrics);
    }
    if (cfg.tracer != nullptr) {
      session_span = cfg.tracer->begin_span("session");
      cfg.tracer->annotate(session_span, "protocol", Adapter::kProtocol);
      cfg.tracer->annotate(session_span, "group", cfg.group_name);
    }
  }

  void begin_round_clock() {
    round_started_at_us = queue.now();
    round_corrupt_base = outcome.corrupt_frames_dropped;
    if (config.tracer != nullptr) {
      config.tracer->end_span(round_span);  // no-op on the first round
      round_span = config.tracer->begin_span("round", session_span);
      config.tracer->annotate(round_span, "round", std::to_string(round));
    }
  }
};

template <typename Adapter>
using StatePtr = std::shared_ptr<SessionState<Adapter>>;

template <typename Adapter>
void reader_send_request(const StatePtr<Adapter>& state);
template <typename Adapter>
void reader_send_report(const StatePtr<Adapter>& state);

/// Capped exponential backoff with jitter. For UTRP the schedule is
/// deadline-aware: while the round's Alg. 5 budget has not expired, a retry
/// is never postponed past (half of) what remains — sleeping through the
/// deadline converts recoverable loss into a guaranteed verification
/// failure. Once the budget is blown the clamp disappears and the normal
/// schedule resumes (the round still completes, for accounting).
template <typename Adapter>
double backoff_delay(SessionState<Adapter>& state) {
  const SessionConfig& config = state.config;
  const double cap = config.backoff_cap_us > 0.0
                         ? config.backoff_cap_us
                         : 16.0 * config.retry_timeout_us;
  double delay = config.retry_timeout_us;
  for (std::uint32_t i = 0; i < state.retries && delay < cap; ++i) {
    delay *= config.backoff_multiplier;
  }
  delay = std::min(delay, cap);
  if (config.backoff_jitter > 0.0) {
    delay += delay * config.backoff_jitter * state.backoff_rng.uniform();
  }
  if (config.utrp_deadline_us > 0.0) {
    const double remaining = state.round_started_at_us +
                             config.utrp_deadline_us - state.queue.now();
    if (remaining > 0.0) {
      delay = std::min(delay,
                       std::max(remaining * 0.5, config.retry_timeout_us * 0.25));
    }
  }
  return delay;
}

template <typename Adapter>
void arm_timeout(const StatePtr<Adapter>& state) {
  using Phase = typename SessionState<Adapter>::Phase;
  const std::uint64_t armed_generation = state->generation;
  state->queue.schedule_after(
      backoff_delay(*state), [state, armed_generation] {
        if (state->generation != armed_generation) return;  // progressed
        if (state->retries >= state->config.max_retries) {
          state->phase = Phase::kFailed;
          ++state->generation;
          // Name the give-up: if the checksum was rejecting frames during
          // this round, the link was corrupting, not just losing.
          const FailureReason reason =
              state->outcome.corrupt_frames_dropped > state->round_corrupt_base
                  ? FailureReason::kCorruptGiveup
                  : FailureReason::kTimeoutExhausted;
          state->outcome.failure = reason;
          state->outcome.round_failures.push_back({state->round, reason});
          return;
        }
        ++state->retries;
        ++state->retransmissions;
        if (state->retrans_counter != nullptr) state->retrans_counter->inc();
        if (state->phase == Phase::kRequesting) {
          reader_send_request(state);
        } else if (state->phase == Phase::kReporting) {
          reader_send_report(state);
        }
      });
}

template <typename Adapter>
void server_on_frame(const StatePtr<Adapter>& state, std::vector<std::byte> frame);

/// Downlink delivery: the reader's half of the state machine. A frame that
/// fails the checksum (or any decode check) is counted as corrupt and
/// dropped — an exception must never propagate into the event queue.
template <typename Adapter>
void server_send(const StatePtr<Adapter>& state, std::vector<std::byte> frame) {
  using Phase = typename SessionState<Adapter>::Phase;
  (void)state->downlink.send(
      std::move(frame), [state](std::vector<std::byte> f) {
        if (state->phase == Phase::kCrashed) return;  // reader is down
        try {
          const MessageType type = peek_type(f);
          if (Adapter::is_challenge(type)) {
            auto [round, challenge] = Adapter::decode_challenge_frame(f);
            if (state->phase != Phase::kRequesting || round != state->round) {
              return;  // stale duplicate
            }
            state->phase = Phase::kScanning;
            ++state->generation;
            state->retries = 0;

            if (state->config.tracer != nullptr) {
              state->scan_span =
                  state->config.tracer->begin_span("scan", state->round_span);
            }
            auto [bitstring, scan_us] =
                state->adapter.scan(challenge, state->rng);
            state->pending_report = BitstringReport{
                state->config.group_name, state->round, std::move(bitstring),
                scan_us};
            const std::uint64_t scan_generation = state->generation;
            state->queue.schedule_after(scan_us, [state, scan_generation] {
              if (state->generation != scan_generation ||
                  state->phase != Phase::kScanning) {
                return;  // crashed (or otherwise moved on) mid-scan
              }
              if (state->config.tracer != nullptr) {
                state->config.tracer->end_span(state->scan_span);
              }
              state->phase = Phase::kReporting;
              ++state->generation;
              state->retries = 0;
              reader_send_report(state);
            });
          } else if (type == MessageType::kVerdictAck) {
            const VerdictAck ack = decode_verdict_ack(f);
            if (state->phase != Phase::kReporting || ack.round != state->round) {
              return;  // stale duplicate
            }
            ++state->outcome.rounds_completed;
            ++state->round;
            ++state->generation;
            state->retries = 0;
            if (state->round >= state->total_rounds) {
              state->phase = Phase::kDone;
              state->outcome.completed = true;
              state->outcome.finished_at_us = state->queue.now();
            } else {
              state->phase = Phase::kRequesting;
              state->begin_round_clock();
              reader_send_request(state);
            }
          }
        } catch (const std::invalid_argument&) {
          ++state->outcome.corrupt_frames_dropped;
        }
      });
}

/// Uplink delivery: the server's half of the state machine. Same corruption
/// guard as the reader side.
template <typename Adapter>
void server_on_frame(const StatePtr<Adapter>& state, std::vector<std::byte> frame) {
  try {
    const MessageType type = peek_type(frame);
    if (type == MessageType::kChallengeRequest) {
      const ChallengeRequest request = decode_challenge_request(frame);
      // Idempotent issue: one challenge per round, replayed for duplicates;
      // the deadline clock starts at FIRST issue.
      auto [it, inserted] = state->issued.try_emplace(request.round);
      if (inserted) {
        it->second = state->adapter.issue(request.round, state->rng);
        state->issued_at_us[request.round] = state->queue.now();
      }
      server_send(state, state->adapter.encode_challenge(request.round, it->second));
    } else if (type == MessageType::kBitstringReport) {
      const BitstringReport report = decode_bitstring_report(frame);
      const auto issued_it = state->issued.find(report.round);
      if (issued_it == state->issued.end()) return;  // report for unknown round
      auto [it, inserted] = state->decided.try_emplace(report.round);
      if (inserted) {
        double elapsed =
            state->queue.now() - state->issued_at_us[report.round];
        // A skewed server clock mis-measures the Alg. 5 interval — the
        // calibration hazard the fault plan makes testable.
        if (state->injector) elapsed = state->injector->skewed_elapsed(elapsed);
        it->second =
            state->adapter.verify(issued_it->second, report.bitstring, elapsed);
        state->outcome.verdicts.push_back(it->second);
        state->outcome.reported.push_back(report.bitstring);
        if (!it->second.deadline_met) {
          state->outcome.round_failures.push_back(
              {report.round, FailureReason::kDeadlineMissed});
        }
      }
      server_send(state, encode(VerdictAck{report.round, it->second.intact}));
    }
  } catch (const std::invalid_argument&) {
    ++state->outcome.corrupt_frames_dropped;
  }
}

template <typename Adapter>
void reader_send(const StatePtr<Adapter>& state, std::vector<std::byte> frame) {
  (void)state->uplink.send(std::move(frame), [state](std::vector<std::byte> f) {
    server_on_frame(state, std::move(f));
  });
  arm_timeout(state);
}

template <typename Adapter>
void reader_send_request(const StatePtr<Adapter>& state) {
  reader_send(state,
              encode(ChallengeRequest{state->config.group_name, state->round}));
}

template <typename Adapter>
void reader_send_report(const StatePtr<Adapter>& state) {
  reader_send(state, encode(state->pending_report));
}

/// Schedules the FaultPlan's scripted reader outages. A crash abandons all
/// volatile reader state (mid-scan progress, pending retries); the restart
/// cold-boots into the current round, whose challenge the server replays
/// from its idempotent cache.
template <typename Adapter>
void schedule_crashes(const StatePtr<Adapter>& state) {
  using Phase = typename SessionState<Adapter>::Phase;
  for (const fault::CrashWindow& window : state->injector->plan().reader_crashes) {
    RFID_EXPECT(window.start_us >= state->queue.now(),
                "crash window starts in the simulated past");
    state->queue.schedule_at(window.start_us, [state] {
      if (state->phase == Phase::kDone || state->phase == Phase::kFailed) return;
      state->phase = Phase::kCrashed;
      ++state->generation;  // cancels pending timeouts and the scan event
      ++state->outcome.reader_crashes;
    });
    if (std::isfinite(window.end_us) && window.end_us > window.start_us) {
      state->queue.schedule_at(window.end_us, [state] {
        if (state->phase != Phase::kCrashed) return;
        state->phase = Phase::kRequesting;
        ++state->generation;
        state->retries = 0;
        reader_send_request(state);
      });
    }
  }
}

template <typename Adapter>
SessionOutcome run_session(sim::EventQueue& queue, Adapter adapter,
                           std::uint64_t rounds, const SessionConfig& config,
                           util::Rng& rng) {
  using Phase = typename SessionState<Adapter>::Phase;
  RFID_EXPECT(rounds >= 1, "need at least one round");
  auto state = std::make_shared<SessionState<Adapter>>(
      queue, std::move(adapter), rounds, config, rng);
  if (state->injector) schedule_crashes(state);
  const double started_at_us = queue.now();
  state->begin_round_clock();
  reader_send_request(state);
  (void)queue.run();

  state->outcome.frames_sent =
      state->uplink.frames_sent() + state->downlink.frames_sent();
  state->outcome.frames_dropped =
      state->uplink.frames_dropped() + state->downlink.frames_dropped();
  state->outcome.retransmissions = state->retransmissions;
  if (state->injector) {
    state->outcome.burst_frames_dropped = state->injector->burst_dropped();
    state->outcome.frames_duplicated = state->injector->duplicated();
    state->outcome.frames_reordered = state->injector->reordered();
  }
  if (!state->outcome.completed) {
    state->outcome.finished_at_us = queue.now();
    if (state->phase == Phase::kCrashed) {
      state->outcome.failure = FailureReason::kCrashed;
      state->outcome.round_failures.push_back(
          {state->round, FailureReason::kCrashed});
    }
  }

  // Observability epilogue: close any spans a failure path left open
  // (end_span is idempotent), then record the session-level series.
  if (config.tracer != nullptr) {
    config.tracer->end_span(state->scan_span);
    config.tracer->end_span(state->round_span);
    config.tracer->end_span(state->session_span);
  }
  const std::string_view outcome_label = state->outcome.completed
                                             ? std::string_view("completed")
                                             : to_string(state->outcome.failure);
  if (config.metrics != nullptr) {
    namespace cat = obs::catalog;
    obs::MetricsRegistry& reg = *config.metrics;
    cat::sessions_total(reg, Adapter::kProtocol, outcome_label).inc();
    cat::session_duration_us(reg, Adapter::kProtocol)
        .observe(state->outcome.finished_at_us - started_at_us);
    for (const RoundFailure& failure : state->outcome.round_failures) {
      cat::round_failures_total(reg, to_string(failure.reason)).inc();
    }
    cat::corrupt_frames_rejected_total(reg).inc(
        state->outcome.corrupt_frames_dropped);
    if (state->injector) {
      cat::faults_injected_total(reg, "burst_drop")
          .inc(state->outcome.burst_frames_dropped);
      cat::faults_injected_total(reg, "corrupt")
          .inc(state->injector->corrupted());
      cat::faults_injected_total(reg, "duplicate")
          .inc(state->outcome.frames_duplicated);
      cat::faults_injected_total(reg, "reorder")
          .inc(state->outcome.frames_reordered);
      cat::faults_injected_total(reg, "reader_crash")
          .inc(state->outcome.reader_crashes);
    }
  }
  if (config.session_log != nullptr) {
    obs::SessionSummary summary;
    summary.protocol = std::string(Adapter::kProtocol);
    summary.group = config.group_name;
    summary.completed = state->outcome.completed;
    summary.outcome = std::string(outcome_label);
    summary.rounds_completed = state->outcome.rounds_completed;
    summary.round_failures = state->outcome.round_failures.size();
    summary.frames_sent = state->outcome.frames_sent;
    summary.retransmissions = state->outcome.retransmissions;
    summary.duration_us = state->outcome.finished_at_us - started_at_us;
    config.session_log->record(std::move(summary));
  }
  return state->outcome;
}

}  // namespace

SessionOutcome run_trp_session(sim::EventQueue& queue,
                               const protocol::TrpServer& server,
                               std::span<const tag::Tag> present,
                               std::uint64_t rounds,
                               const SessionConfig& config, util::Rng& rng) {
  return run_session(queue, TrpAdapter{server, present, config}, rounds, config,
                     rng);
}

SessionOutcome run_utrp_session(sim::EventQueue& queue,
                                protocol::UtrpServer& server,
                                std::span<tag::Tag> present,
                                std::uint64_t rounds,
                                const SessionConfig& config, util::Rng& rng) {
  return run_session(queue, UtrpAdapter{server, present, config}, rounds,
                     config, rng);
}

}  // namespace rfid::wire
