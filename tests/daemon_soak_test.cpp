// Bounded soak: a long daemon run through a scripted fault storm — crashes
// at every crash point, hangs, churn, theft, and zone outages — must end
// with the exact alert history of an undisturbed run. This is the CI job's
// sanitizer workload: ~seconds of wall clock, dozens of epochs, >= 5 forced
// restarts.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "daemon/daemon.h"
#include "fault/daemon_fault.h"
#include "fault/fault.h"
#include "storage/backend.h"

namespace {

using namespace rfid;

constexpr std::uint64_t kEpochs = 24;

daemon::WarehouseConfig soak_warehouse() {
  daemon::WarehouseConfig warehouse;
  warehouse.initial_tags = 24;
  warehouse.tolerance = 2;
  warehouse.zone_capacity = 8;
  warehouse.rounds = 1;
  // Continuous churn: growth, retirement, and two thefts.
  warehouse.churn.push_back(daemon::ChurnEvent{.epoch = 3, .enroll = 16});
  warehouse.churn.push_back(daemon::ChurnEvent{
      .epoch = 7, .enroll = 0, .decommission = 0, .steal = 5, .steal_from = 0});
  warehouse.churn.push_back(daemon::ChurnEvent{.epoch = 11, .decommission = 16});
  warehouse.churn.push_back(daemon::ChurnEvent{
      .epoch = 15, .enroll = 8, .decommission = 4, .steal = 0, .steal_from = 0});
  warehouse.churn.push_back(daemon::ChurnEvent{
      .epoch = 19, .enroll = 0, .decommission = 0, .steal = 6, .steal_from = 8});
  // A reader outage long enough to escalate and quarantine zone 1.
  fault::FaultPlan dead;
  dead.reader_crashes.push_back(fault::CrashWindow{0.0, 0.0});
  for (std::uint64_t epoch = 4; epoch < 10; ++epoch) {
    warehouse.zone_faults.push_back({.epoch = epoch, .zone = 1, .plan = dead});
  }
  return warehouse;
}

daemon::DaemonConfig soak_config(storage::MemoryBackend& backend) {
  daemon::DaemonConfig config;
  config.seed = 23;
  config.epochs = kEpochs;
  config.threads = 2;
  config.backend = &backend;
  config.faults_on_retries = true;
  config.debounce_epochs = 2;
  config.quarantine_after_epochs = 3;
  config.quarantine_cooldown_epochs = 2;
  config.hang_timeout_ms = 100;
  config.backoff_initial_ms = 0;
  config.backoff_cap_ms = 1;
  config.max_restarts = 32;
  return config;
}

TEST(DaemonSoak, FaultStormLosesNoAlerts) {
  std::string baseline_history;
  std::vector<daemon::EpochVerdict> baseline_verdicts;
  {
    storage::MemoryBackend backend;
    daemon::MonitorDaemon d(soak_config(backend), soak_warehouse());
    const daemon::DaemonResult result = d.run();
    baseline_history = daemon::render_alert_history(result.alerts);
    baseline_verdicts = result.epoch_verdicts;
    ASSERT_EQ(result.epochs_completed, kEpochs);
    ASSERT_GE(result.alerts.size(), 6u);
  }

  // The storm: 8 crashes spread over every crash point plus 2 hangs.
  fault::DaemonFaultPlan plan;
  plan.crashes.push_back({1, fault::DaemonCrashPoint::kEpochStart});
  plan.crashes.push_back({4, fault::DaemonCrashPoint::kBeforeCheckpoint});
  plan.crashes.push_back({6, fault::DaemonCrashPoint::kAfterFleetRun});
  plan.crashes.push_back({8, fault::DaemonCrashPoint::kAfterCheckpoint});
  plan.crashes.push_back({11, fault::DaemonCrashPoint::kBeforeCheckpoint});
  plan.crashes.push_back({15, fault::DaemonCrashPoint::kEpochStart});
  plan.crashes.push_back({19, fault::DaemonCrashPoint::kBeforeCheckpoint});
  plan.crashes.push_back({22, fault::DaemonCrashPoint::kAfterCheckpoint});
  plan.hang_epochs.push_back(9);
  plan.hang_epochs.push_back(17);
  fault::DaemonFaultInjector faults(plan);

  storage::MemoryBackend backend;
  daemon::DaemonConfig config = soak_config(backend);
  config.faults = &faults;
  config.crash_hook = [&backend] { backend.crash(); };
  daemon::MonitorDaemon d(config, soak_warehouse());
  const daemon::DaemonResult result = d.run();

  EXPECT_EQ(result.epochs_completed, kEpochs);
  EXPECT_FALSE(result.gave_up);
  EXPECT_EQ(result.crash_restarts, 8u);
  EXPECT_EQ(result.hang_restarts, 2u);
  EXPECT_GE(result.restarts, 5u);  // the ISSUE acceptance floor
  EXPECT_GT(result.replayed_alerts, 0u);

  // Zero lost, zero duplicated: bit-identical history, gapless sequences.
  EXPECT_EQ(result.epoch_verdicts, baseline_verdicts);
  EXPECT_EQ(daemon::render_alert_history(result.alerts), baseline_history);
  for (std::size_t i = 0; i < result.alerts.size(); ++i) {
    EXPECT_EQ(result.alerts[i].sequence, i) << "alert " << i;
  }
}

}  // namespace
