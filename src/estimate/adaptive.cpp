#include "estimate/adaptive.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "radio/frame.h"
#include "util/expect.h"

namespace rfid::estimate {

namespace {

/// One real frame: returns the empty-slot count for `frame_size`.
std::uint64_t scan_empty_slots(std::span<const tag::Tag> tags,
                               const hash::SlotHasher& hasher,
                               std::uint32_t frame_size, util::Rng& rng) {
  const auto choices = radio::assign_trp_slots(tags, hasher, rng(), frame_size);
  const auto histogram = radio::occupancy_histogram(choices, frame_size);
  std::uint64_t empty = 0;
  for (const auto occupancy : histogram) {
    if (occupancy == 0) ++empty;
  }
  return empty;
}

}  // namespace

AdaptiveEstimate estimate_adaptive(std::span<const tag::Tag> tags,
                                   const hash::SlotHasher& hasher,
                                   const AdaptiveConfig& config,
                                   util::Rng& rng) {
  RFID_EXPECT(config.initial_frame >= 1, "initial frame must be positive");
  RFID_EXPECT(config.growth_factor > 1.0, "growth factor must exceed 1");
  RFID_EXPECT(config.target_relative_error > 0.0, "target error must be positive");
  RFID_EXPECT(config.max_probes >= 1, "need at least one probe");

  AdaptiveEstimate result;

  // Phase 1: grow geometrically until the frame stops saturating.
  std::uint32_t frame = config.initial_frame;
  std::uint64_t empty = 0;
  while (result.probes + result.refine_rounds < config.max_probes) {
    ++result.probes;
    result.total_slots += frame;
    empty = scan_empty_slots(tags, hasher, frame, rng);
    if (empty > 0) break;
    const double grown = static_cast<double>(frame) * config.growth_factor;
    RFID_EXPECT(grown < 1e9, "population beyond supported probe range");
    frame = static_cast<std::uint32_t>(grown);
  }
  if (empty == 0) return result;  // max_probes exhausted while saturated

  // Phase 2: refine at load ~1 with inverse-variance averaging of
  // zero-estimator readings.
  double weight_sum = 0.0;
  double weighted_estimate = 0.0;
  auto fold_in = [&](std::uint64_t n0, std::uint32_t f) {
    const CardinalityEstimate reading = estimate_cardinality(n0, f);
    const double variance =
        std::max(reading.std_error * reading.std_error, 1e-6);
    weight_sum += 1.0 / variance;
    weighted_estimate += reading.estimate / variance;
    result.estimate = weighted_estimate / weight_sum;
    result.std_error = std::sqrt(1.0 / weight_sum);
  };
  fold_in(empty, frame);

  while (result.probes + result.refine_rounds < config.max_probes) {
    if (result.estimate < 1.0 ||
        result.std_error <= config.target_relative_error * result.estimate) {
      result.converged = true;
      break;
    }
    const auto refine_frame = static_cast<std::uint32_t>(std::max(
        static_cast<double>(config.initial_frame), std::round(result.estimate)));
    ++result.refine_rounds;
    result.total_slots += refine_frame;
    const std::uint64_t n0 = scan_empty_slots(tags, hasher, refine_frame, rng);
    if (n0 == 0) continue;  // unlucky saturation at load ~1; just re-probe
    fold_in(n0, refine_frame);
  }
  if (result.estimate < 1.0 ||
      result.std_error <= config.target_relative_error * result.estimate) {
    result.converged = true;
  }
  return result;
}

}  // namespace rfid::estimate
