// Unit tests for the Bitstring protocol artifact.
#include <gtest/gtest.h>

#include <stdexcept>

#include "bitstring/bitstring.h"
#include "util/random.h"

namespace {

using rfid::bits::Bitstring;

TEST(Bitstring, DefaultIsEmpty) {
  const Bitstring bs;
  EXPECT_TRUE(bs.empty());
  EXPECT_EQ(bs.size(), 0u);
  EXPECT_EQ(bs.count(), 0u);
}

TEST(Bitstring, StartsAllZero) {
  const Bitstring bs(200);
  EXPECT_EQ(bs.size(), 200u);
  EXPECT_EQ(bs.count(), 0u);
  for (std::size_t i = 0; i < 200; ++i) EXPECT_FALSE(bs.test(i));
}

TEST(Bitstring, SetAndTestAcrossWordBoundaries) {
  Bitstring bs(130);
  for (const std::size_t pos : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    bs.set(pos);
    EXPECT_TRUE(bs.test(pos));
  }
  EXPECT_EQ(bs.count(), 8u);
  bs.reset(64);
  EXPECT_FALSE(bs.test(64));
  EXPECT_EQ(bs.count(), 7u);
}

TEST(Bitstring, SetIsIdempotent) {
  Bitstring bs(10);
  bs.set(3);
  bs.set(3);
  EXPECT_EQ(bs.count(), 1u);
}

TEST(Bitstring, ClearKeepsSize) {
  Bitstring bs(77);
  bs.set(5);
  bs.set(76);
  bs.clear();
  EXPECT_EQ(bs.size(), 77u);
  EXPECT_EQ(bs.count(), 0u);
}

TEST(Bitstring, OutOfRangeAccessThrows) {
  Bitstring bs(64);
  EXPECT_THROW((void)bs.test(64), std::invalid_argument);
  EXPECT_THROW(bs.set(100), std::invalid_argument);
}

TEST(Bitstring, EqualityAndFirstDifference) {
  Bitstring a(100);
  Bitstring b(100);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.first_difference(b).has_value());

  b.set(71);
  EXPECT_NE(a, b);
  ASSERT_TRUE(a.first_difference(b).has_value());
  EXPECT_EQ(*a.first_difference(b), 71u);

  a.set(3);
  EXPECT_EQ(*a.first_difference(b), 3u);  // earliest difference wins
}

TEST(Bitstring, HammingDistance) {
  Bitstring a(128);
  Bitstring b(128);
  a.set(0);
  a.set(64);
  b.set(64);
  b.set(127);
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(Bitstring, SizeMismatchThrows) {
  Bitstring a(10);
  Bitstring b(11);
  EXPECT_THROW((void)a.hamming_distance(b), std::invalid_argument);
  EXPECT_THROW((void)(a |= b), std::invalid_argument);
  EXPECT_THROW((void)a.first_difference(b), std::invalid_argument);
}

TEST(Bitstring, OrIsUnion) {
  Bitstring a(70);
  Bitstring b(70);
  a.set(1);
  a.set(69);
  b.set(2);
  b.set(69);
  const Bitstring u = a | b;
  EXPECT_TRUE(u.test(1));
  EXPECT_TRUE(u.test(2));
  EXPECT_TRUE(u.test(69));
  EXPECT_EQ(u.count(), 3u);
}

TEST(Bitstring, AndIsIntersection) {
  Bitstring a(70);
  Bitstring b(70);
  a.set(1);
  a.set(69);
  b.set(2);
  b.set(69);
  const Bitstring i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(69));
}

TEST(Bitstring, XorIsSymmetricDifference) {
  Bitstring a(70);
  Bitstring b(70);
  a.set(1);
  a.set(69);
  b.set(2);
  b.set(69);
  const Bitstring x = a ^ b;
  EXPECT_EQ(x.count(), 2u);
  EXPECT_TRUE(x.test(1));
  EXPECT_TRUE(x.test(2));
}

TEST(Bitstring, AlgebraIdentities) {
  rfid::util::Rng rng(31);
  Bitstring a(500);
  Bitstring b(500);
  for (int i = 0; i < 120; ++i) {
    a.set(static_cast<std::size_t>(rng.below(500)));
    b.set(static_cast<std::size_t>(rng.below(500)));
  }
  EXPECT_EQ((a | b).count() + (a & b).count(), a.count() + b.count());
  EXPECT_EQ((a ^ b).count(), a.hamming_distance(b));
  EXPECT_EQ((a ^ a).count(), 0u);
  EXPECT_EQ(a | a, a);
  EXPECT_EQ(a & a, a);
}

TEST(Bitstring, HexRoundTrip) {
  rfid::util::Rng rng(37);
  for (const std::size_t size : {1u, 63u, 64u, 65u, 129u, 1000u}) {
    Bitstring bs(size);
    for (std::size_t i = 0; i < size; i += 3) bs.set(i);
    const Bitstring back = Bitstring::from_hex(size, bs.to_hex());
    EXPECT_EQ(back, bs) << "size " << size;
  }
}

TEST(Bitstring, FromHexRejectsWrongLength) {
  EXPECT_THROW((void)Bitstring::from_hex(64, "abc"), std::invalid_argument);
}

TEST(Bitstring, FromHexRejectsInvalidDigits) {
  const std::string bad(16, 'g');
  EXPECT_THROW((void)Bitstring::from_hex(64, bad), std::invalid_argument);
}

TEST(Bitstring, FromHexRejectsBitsBeyondSize) {
  // 63-bit string whose hex sets bit 63.
  Bitstring full(64);
  full.set(63);
  const std::string hex = full.to_hex();
  EXPECT_THROW((void)Bitstring::from_hex(63, hex), std::invalid_argument);
}

TEST(Bitstring, BinaryStringRendering) {
  Bitstring bs(5);
  bs.set(0);
  bs.set(3);
  EXPECT_EQ(bs.to_binary_string(), "10010");
}

TEST(Bitstring, CountMatchesBruteForce) {
  rfid::util::Rng rng(41);
  Bitstring bs(777);
  std::size_t expected = 0;
  for (int i = 0; i < 300; ++i) {
    const auto pos = static_cast<std::size_t>(rng.below(777));
    if (!bs.test(pos)) ++expected;
    bs.set(pos);
  }
  EXPECT_EQ(bs.count(), expected);
}

}  // namespace
