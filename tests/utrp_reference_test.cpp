// Differential test: the optimized UTRP walk (utrp_scan jumps between reply
// events) against a deliberately naive oracle that processes every slot of
// Algs. 6–7 one by one, exactly as the pseudo-code reads. Any divergence in
// bitstrings, counters, reply counts, or seed consumption is a bug in one of
// them — and the oracle is simple enough to trust.
#include <gtest/gtest.h>

#include <limits>
#include <tuple>
#include <vector>

#include "hash/slot_hash.h"
#include "protocol/messages.h"
#include "protocol/utrp.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::hash::SlotHasher;
using rfid::protocol::UtrpChallenge;
using rfid::protocol::UtrpScanResult;
using rfid::tag::Tag;
using rfid::tag::TagSet;

/// Literal transcription of Alg. 6 (reader) + Alg. 7 (tag): iterate global
/// slots one at a time; at each slot ask every active tag whether its pick
/// matches; on a reply, silence responders and rebroadcast (f', r_next) to
/// all remaining tags. O(f · n), no shortcuts.
UtrpScanResult oracle_walk(std::span<Tag> tags, const SlotHasher& hasher,
                           const UtrpChallenge& challenge) {
  const std::uint32_t f = challenge.frame_size;
  UtrpScanResult result;
  result.bitstring = rfid::bits::Bitstring(f);

  std::vector<std::uint32_t> pick(tags.size());
  std::vector<bool> active(tags.size(), true);
  for (std::size_t i = 0; i < tags.size(); ++i) {
    tags[i].begin_round();
    pick[i] = tags[i].utrp_receive_seed(hasher, challenge.seeds[0], f);
  }
  result.seeds_consumed = 1;

  std::uint32_t subframe_start = 0;
  for (std::uint32_t global = 0; global < f; ++global) {
    const std::uint32_t local = global - subframe_start;
    bool any_reply = false;
    for (std::size_t i = 0; i < tags.size(); ++i) {
      if (active[i] && pick[i] == local) {
        active[i] = false;
        tags[i].silence();
        ++result.replies;
        any_reply = true;
      }
    }
    if (!any_reply) continue;
    result.bitstring.set(global);
    if (global + 1 >= f) break;
    // Alg. 6 line 7: broadcast (f', next r) to everything still listening.
    const std::uint64_t seed = challenge.seeds[result.seeds_consumed++];
    ++result.reseeds;
    const std::uint32_t sub_frame = f - (global + 1);
    subframe_start = global + 1;
    for (std::size_t i = 0; i < tags.size(); ++i) {
      if (active[i]) pick[i] = tags[i].utrp_receive_seed(hasher, seed, sub_frame);
    }
  }
  return result;
}

UtrpChallenge make_challenge(std::uint32_t f, rfid::util::Rng& rng) {
  UtrpChallenge c;
  c.frame_size = f;
  c.seeds.reserve(f);
  for (std::uint32_t i = 0; i < f; ++i) c.seeds.push_back(rng());
  return c;
}

class UtrpDifferential
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint32_t>> {};

TEST_P(UtrpDifferential, OptimizedWalkMatchesNaiveOracle) {
  const auto [n_tags, frame] = GetParam();
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    rfid::util::Rng rng(rfid::util::derive_seed(777, n_tags * 131 + frame, seed));
    const TagSet proto = TagSet::make_random(n_tags, rng);
    const SlotHasher hasher;
    const auto challenge = make_challenge(frame, rng);

    TagSet fast_tags = proto;
    TagSet slow_tags = proto;
    const auto fast = rfid::protocol::utrp_scan(fast_tags.tags(), hasher, challenge);
    const auto slow = oracle_walk(slow_tags.tags(), hasher, challenge);

    ASSERT_EQ(fast.bitstring, slow.bitstring)
        << "n=" << n_tags << " f=" << frame << " seed=" << seed;
    EXPECT_EQ(fast.replies, slow.replies);
    EXPECT_EQ(fast.reseeds, slow.reseeds);
    EXPECT_EQ(fast.seeds_consumed, slow.seeds_consumed);
    for (std::size_t i = 0; i < n_tags; ++i) {
      EXPECT_EQ(fast_tags.at(i).counter(), slow_tags.at(i).counter())
          << "tag " << i;
      EXPECT_EQ(fast_tags.at(i).silenced(), slow_tags.at(i).silenced());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UtrpDifferential,
    ::testing::Values(std::make_tuple(std::size_t{1}, 1u),
                      std::make_tuple(std::size_t{1}, 16u),
                      std::make_tuple(std::size_t{5}, 5u),
                      std::make_tuple(std::size_t{10}, 40u),
                      std::make_tuple(std::size_t{50}, 60u),
                      std::make_tuple(std::size_t{100}, 120u),
                      std::make_tuple(std::size_t{100}, 500u),
                      std::make_tuple(std::size_t{300}, 350u),
                      std::make_tuple(std::size_t{64}, 64u)));

TEST(UtrpDifferential, TightFrameManyTags) {
  // More tags than slots: collisions everywhere, every slot occupied, the
  // re-seed machinery under maximum stress.
  rfid::util::Rng rng(999);
  const TagSet proto = TagSet::make_random(200, rng);
  const SlotHasher hasher;
  const auto challenge = make_challenge(50, rng);
  TagSet fast_tags = proto;
  TagSet slow_tags = proto;
  const auto fast = rfid::protocol::utrp_scan(fast_tags.tags(), hasher, challenge);
  const auto slow = oracle_walk(slow_tags.tags(), hasher, challenge);
  EXPECT_EQ(fast.bitstring, slow.bitstring);
  EXPECT_EQ(fast.replies, slow.replies);
  EXPECT_EQ(fast.replies, 200u);  // everyone fits: picks stay inside subframes
}

}  // namespace
