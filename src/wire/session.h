// A complete message-driven monitoring session over lossy links.
//
// ServerEndpoint and ReaderEndpoint exchange the wire messages of
// messages.h across two Links on one EventQueue, executing `rounds` TRP
// monitoring rounds end to end:
//
//   reader --ChallengeRequest(round)-->  server          (retry on timeout)
//   reader <--TrpChallenge(f, r)-------  server          (idempotent per round)
//   [reader scans the tag field: TimingModel-priced air time]
//   reader --BitstringReport----------->  server          (retry on timeout)
//   reader <--VerdictAck---------------  server
//
// Both request and report are idempotent (keyed by round): the server caches
// the round's challenge and verdict and replays them for duplicates, so
// retransmissions over a dropping link cannot double-issue randomness or
// double-count rounds — the property the paper needs for "a new (f, r) each
// time" to stay well-defined under an unreliable backhaul.
//
// Retries follow capped exponential backoff with jitter; for UTRP the
// schedule is deadline-aware (while the Alg. 5 budget has not expired, a
// retry is never postponed past it). A SessionConfig may carry a
// fault::FaultPlan, which layers burst loss, corruption, duplication,
// reordering, scripted reader crashes, and deadline-clock skew on top of the
// links; the endpoints survive all of it: corrupt frames are rejected by the
// framing checksum and counted (never thrown out of the event queue), and a
// crashed reader cold-restarts into the current round via the server's
// idempotent challenge cache.
//
// run_trp_session drives the whole exchange and reports per-round verdicts
// plus link statistics; when a round cannot complete, SessionOutcome names
// the specific FailureReason instead of a bare `completed == false`.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/session_log.h"
#include "obs/trace.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "radio/channel.h"
#include "radio/timing.h"
#include "sim/event_queue.h"
#include "wire/link.h"
#include "wire/messages.h"

namespace rfid::wire {

struct SessionConfig {
  LinkConfig uplink;              // reader -> server
  LinkConfig downlink;            // server -> reader
  /// Base retry timeout: the first retransmission fires this long after a
  /// send; subsequent ones back off exponentially.
  double retry_timeout_us = 50000.0;
  double backoff_multiplier = 2.0;  // per-retry growth factor (1.0 = fixed)
  double backoff_cap_us = 0.0;      // ceiling; 0 = 16x the base timeout
  /// Uniform jitter added to each backoff delay, as a fraction of it
  /// (de-synchronizes retry storms; drawn from a dedicated RNG stream).
  double backoff_jitter = 0.1;
  std::uint32_t max_retries = 8;  // per message, per round
  radio::TimingModel timing = {};
  std::string group_name = "group";
  /// UTRP only: wall-clock budget from challenge issue to report receipt
  /// (Alg. 5's timer). 0 disables the check. Note that link retransmissions
  /// eat into this budget — an honest reader on a bad link can miss it,
  /// which is precisely the paper's STmax-calibration problem.
  double utrp_deadline_us = 0.0;
  /// Radio channel this reader's antenna observes during TRP scans (reply
  /// loss, capture). Defaults to the ideal channel, which reproduces the
  /// paper's noiseless reader bit for bit.
  radio::ChannelModel channel = {};
  /// TRP only: when set, round r is issued (*trp_challenges)[r] instead of
  /// fresh randomness (must cover every round; not owned). This is how the
  /// fusion layer aims k independent reader sessions at one challenge
  /// stream so their bitstrings are comparable slot by slot.
  const std::vector<protocol::TrpChallenge>* trp_challenges = nullptr;
  /// TRP only: adversarial reader hook. When set, the reader skips the tag
  /// field entirely and reports forge(challenge) — e.g. the expected
  /// bitstring of the full enrolled set, hiding a theft (src/attack).
  std::function<bits::Bitstring(const protocol::TrpChallenge&)> trp_forge;
  /// Optional scripted faults (not owned; must outlive the session run).
  /// Crash windows are in absolute queue time and must not lie in the past.
  const fault::FaultPlan* faults = nullptr;
  /// Optional observability hooks (none owned; each must outlive the run).
  /// `metrics` turns on link/scan/retry counters plus the session epilogue
  /// series; `tracer` records a session → round → scan span tree (construct
  /// it with the queue's clock for deterministic timestamps); `session_log`
  /// receives one SessionSummary per run.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  obs::SessionLog* session_log = nullptr;
};

/// Why a round did not produce a clean, on-time verdict.
enum class FailureReason : std::uint8_t {
  kNone = 0,            // session completed every round
  kTimeoutExhausted,    // max_retries timeouts with nothing heard back
  kDeadlineMissed,      // UTRP: report verified after the Alg. 5 timer
  kCrashed,             // reader crashed and never restarted
  kCorruptGiveup,       // retries exhausted while corrupt frames were being
                        // rejected by the checksum
};

[[nodiscard]] std::string_view to_string(FailureReason reason) noexcept;

struct RoundFailure {
  std::uint64_t round = 0;
  FailureReason reason = FailureReason::kNone;
};

struct SessionOutcome {
  bool completed = false;              // all rounds finished (acked)
  /// Why the session stopped early; kNone when completed. The failing round
  /// is `rounds_completed` (rounds are acked in order).
  FailureReason failure = FailureReason::kNone;
  /// Every round that failed, terminal or not — deadline-missed rounds
  /// complete (the server acks them) but appear here with kDeadlineMissed.
  std::vector<RoundFailure> round_failures;
  std::uint64_t rounds_completed = 0;
  std::vector<protocol::Verdict> verdicts;  // one per completed round
  /// The bitstring the server verified each round, index-aligned with
  /// `verdicts` — the per-reader evidence the fusion layer votes over.
  std::vector<bits::Bitstring> reported;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t retransmissions = 0;
  double finished_at_us = 0.0;
  // Fault accounting (all zero without a FaultPlan).
  std::uint64_t corrupt_frames_dropped = 0;  // rejected by the checksum
  std::uint64_t burst_frames_dropped = 0;    // Gilbert–Elliott losses
  std::uint64_t frames_duplicated = 0;
  std::uint64_t frames_reordered = 0;
  std::uint64_t reader_crashes = 0;
};

/// Runs `rounds` TRP rounds between `server` and a reader scanning
/// `present`. `rng` drives link loss/jitter and challenge randomness.
[[nodiscard]] SessionOutcome run_trp_session(sim::EventQueue& queue,
                                             const protocol::TrpServer& server,
                                             std::span<const tag::Tag> present,
                                             std::uint64_t rounds,
                                             const SessionConfig& config,
                                             util::Rng& rng);

/// Runs `rounds` UTRP rounds. The tags mutate (counters advance) exactly as
/// in a physical scan; the server's mirror is committed after each verified
/// round. When config.utrp_deadline_us > 0, a report arriving later than
/// that after its challenge was first issued fails verification (Alg. 5's
/// timer) — including when the delay came from honest retransmissions.
[[nodiscard]] SessionOutcome run_utrp_session(sim::EventQueue& queue,
                                              protocol::UtrpServer& server,
                                              std::span<tag::Tag> present,
                                              std::uint64_t rounds,
                                              const SessionConfig& config,
                                              util::Rng& rng);

}  // namespace rfid::wire
