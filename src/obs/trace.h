// Hierarchical span tracing with a deterministic clock seam.
//
// A Tracer records spans (session → round → scan in the wire layer) against
// whatever Clock it was constructed with. Under test and simulation the
// clock is the discrete-event queue's now() (or a hand-advanced counter),
// which makes every recorded trace bit-for-bit reproducible from a seed —
// the property the golden exposition tests rely on. In live deployments
// pass steady_now_us.
//
// Span ids are sequential and start at 1; id 0 (kNoSpan) means "no span"
// and every operation on it is a no-op, so call sites can trace
// unconditionally and leave the tracer out at runtime. The span store is
// bounded: past `max_spans`, begin_span drops the span (counted) instead of
// growing without bound. A Tracer is deliberately NOT thread-safe — it
// records one logical session; use one Tracer per concurrent session.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rfid::obs {

/// Time source, in microseconds. Any monotone callable works; determinism
/// is the caller's choice of clock, not the tracer's concern.
using Clock = std::function<double()>;

/// Wall-clock microseconds from a monotonic source (live deployments).
[[nodiscard]] double steady_now_us();

struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root
  std::string name;
  double start_us = 0.0;
  double end_us = 0.0;
  bool ended = false;
  std::vector<std::pair<std::string, std::string>> attributes;

  [[nodiscard]] double duration_us() const noexcept {
    return ended ? end_us - start_us : 0.0;
  }
};

class Tracer {
 public:
  static constexpr std::uint64_t kNoSpan = 0;

  explicit Tracer(Clock clock, std::size_t max_spans = 65536);

  /// Opens a span; returns its id, or kNoSpan if the store is full (the
  /// drop is counted). `parent` may be kNoSpan for a root span.
  [[nodiscard]] std::uint64_t begin_span(std::string_view name,
                                         std::uint64_t parent = kNoSpan);
  /// Attaches a key/value annotation. No-op on kNoSpan or unknown ids.
  void annotate(std::uint64_t span, std::string_view key,
                std::string_view value);
  /// Closes the span at the current clock reading. Idempotent: a span ends
  /// at its first end_span; later calls are no-ops.
  void end_span(std::uint64_t span);

  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] std::uint64_t dropped_spans() const noexcept {
    return dropped_;
  }

  /// Indented tree rendering (children under parents, in id order), one
  /// span per line with interval, duration, and annotations. Deterministic
  /// for a deterministic clock.
  [[nodiscard]] std::string render() const;

  /// Forgets every recorded span (ids keep climbing, so late end_span calls
  /// from a previous session cannot touch a new session's spans).
  void clear();

 private:
  [[nodiscard]] Span* find(std::uint64_t id);

  Clock clock_;
  std::size_t max_spans_;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::vector<Span> spans_;
};

}  // namespace rfid::obs
