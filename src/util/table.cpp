#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/expect.h"

namespace rfid::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RFID_EXPECT(!headers_.empty(), "table needs at least one column");
}

void Table::begin_row() {
  if (!cells_.empty()) {
    RFID_EXPECT(cells_.back().size() == headers_.size(),
                "previous row is incomplete");
  }
  cells_.emplace_back();
  cells_.back().reserve(headers_.size());
}

void Table::add_cell(std::string value) {
  RFID_EXPECT(!cells_.empty(), "begin_row() before add_cell()");
  RFID_EXPECT(cells_.back().size() < headers_.size(), "row already full");
  cells_.back().push_back(std::move(value));
}

void Table::add_cell(long long value) { add_cell(std::to_string(value)); }
void Table::add_cell(unsigned long long value) { add_cell(std::to_string(value)); }
void Table::add_cell(double value, int precision) {
  add_cell(format_double(value, precision));
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  RFID_EXPECT(row < cells_.size(), "row out of range");
  RFID_EXPECT(col < cells_[row].size(), "column out of range");
  return cells_[row][col];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : cells_) emit_row(row);
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : cells_) emit_row(row);
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace rfid::util
