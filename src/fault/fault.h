// Deterministic fault injection for the wire layer.
//
// The paper assumes an ideal backhaul between server and reader; the wire
// layer already survives i.i.d. frame drops. Real deployments additionally
// see correlated burst loss, corrupted frames, duplicated and reordered
// deliveries, readers crashing mid-round, and clock skew on the UTRP
// deadline timer (Sec. 5.4). A FaultPlan scripts all of these; a
// FaultInjector executes the script frame by frame so `wire::Link` and the
// session endpoints can be driven through every adverse condition the
// protocol must survive — reproducibly, from a seed.
//
// The injector draws from its own private RNG stream (FaultPlan::seed), so
// attaching faults never perturbs the challenge/channel randomness of an
// existing simulation: a faultless run is bit-identical with or without the
// subsystem linked in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "util/random.h"

namespace rfid::fault {

/// Two-state Gilbert–Elliott loss chain: a "good" and a "bad" state with
/// per-frame transition probabilities and per-state loss probabilities.
/// Models the correlated burst loss of real backhauls, which i.i.d.
/// `drop_prob` cannot reproduce (retransmission schemes that survive i.i.d.
/// loss can starve under bursts of the same average rate).
struct GilbertElliottConfig {
  double p_enter_bad = 0.0;  // per-frame transition good -> bad
  double p_exit_bad = 0.3;   // per-frame transition bad -> good
  double loss_good = 0.0;    // drop probability while in the good state
  double loss_bad = 1.0;     // drop probability while in the bad state

  [[nodiscard]] bool enabled() const noexcept {
    return p_enter_bad > 0.0 || loss_good > 0.0;
  }
  /// Long-run average drop probability of the chain (stationary mix of the
  /// two states). Use to dial "20% burst loss" without hand-solving.
  [[nodiscard]] double stationary_loss() const noexcept;
};

/// The chain itself. Each offered frame samples a drop in the current state,
/// then steps the state — so consecutive frames see correlated fates.
class GilbertElliott {
 public:
  explicit GilbertElliott(GilbertElliottConfig config) noexcept
      : config_(config) {}

  /// Decides the fate of one frame and advances the chain.
  [[nodiscard]] bool drop(util::Rng& rng) noexcept;
  [[nodiscard]] bool in_bad_state() const noexcept { return bad_; }

 private:
  GilbertElliottConfig config_;
  bool bad_ = false;
};

/// A scripted reader outage in absolute simulation time. The reader loses
/// all volatile state (in-flight scan, pending report) at `start_us` and
/// cold-restarts at `end_us`, resuming the current round via the server's
/// idempotent per-round challenge cache. `end_us <= start_us` (or +inf)
/// means the reader never comes back.
struct CrashWindow {
  double start_us = 0.0;
  double end_us = 0.0;
};

/// The full fault script. Everything defaults to off; a default FaultPlan
/// injects nothing.
struct FaultPlan {
  std::uint64_t seed = 0x6661756c74ULL;  // injector's private RNG stream
  GilbertElliottConfig burst;            // correlated burst loss
  double corrupt_prob = 0.0;       // per frame: flip one random payload bit
  double duplicate_prob = 0.0;     // per frame: deliver a second copy
  double reorder_prob = 0.0;       // per frame: delay past later sends
  double reorder_delay_us = 5000.0;  // extra delay applied to reordered frames
  double clock_skew = 1.0;         // multiplies the server-observed elapsed
                                   // time in the UTRP deadline check
  double clock_offset_us = 0.0;    // additive skew on the same measurement
  std::vector<CrashWindow> reader_crashes;

  [[nodiscard]] bool skews_clock() const noexcept {
    return clock_skew != 1.0 || clock_offset_us != 0.0;
  }
};

/// Per-frame decision handed to the link.
struct FrameFate {
  bool drop = false;
  bool corrupt = false;
  bool duplicate = false;
  double extra_delay_us = 0.0;
};

/// Executes a FaultPlan. One injector serves both directions of a session's
/// backhaul (the burst chain models the shared physical path).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan)
      : plan_(plan), rng_(plan.seed), chain_(plan.burst) {}

  /// Rolls the dice for one offered frame and advances the burst chain.
  [[nodiscard]] FrameFate on_frame();

  /// Flips one uniformly-random bit of `frame` (the framing checksum must
  /// catch it downstream). Requires a non-empty frame.
  void corrupt(std::vector<std::byte>& frame);

  /// Applies the scripted clock skew to a server-side elapsed-time
  /// measurement (the Alg. 5 deadline input).
  [[nodiscard]] double skewed_elapsed(double elapsed_us) const noexcept {
    return plan_.clock_skew * elapsed_us + plan_.clock_offset_us;
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  // Injection counters, for outcomes and tests.
  [[nodiscard]] std::uint64_t burst_dropped() const noexcept { return burst_dropped_; }
  [[nodiscard]] std::uint64_t corrupted() const noexcept { return corrupted_; }
  [[nodiscard]] std::uint64_t duplicated() const noexcept { return duplicated_; }
  [[nodiscard]] std::uint64_t reordered() const noexcept { return reordered_; }

 private:
  FaultPlan plan_;
  util::Rng rng_;
  GilbertElliott chain_;
  std::uint64_t burst_dropped_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
};

/// Parses the line-oriented FaultPlan script format (see
/// docs/fault_injection.md): one directive per line, `#` comments.
///
///   seed <n>
///   burst <p_enter> <p_exit> [loss_bad [loss_good]]
///   corrupt <prob>
///   duplicate <prob>
///   reorder <prob> [delay_us]
///   skew <factor> [offset_us]
///   crash <start_us> <end_us|never>
///
/// Throws std::invalid_argument on unknown directives, malformed numbers,
/// or out-of-range probabilities.
[[nodiscard]] FaultPlan parse_fault_plan(std::string_view text);

/// A zone fault script addressed to k overlapping readers. `shared` is the
/// base plan every reader runs; `overrides` holds fully-merged replacement
/// plans for individual readers (script lines layered over the shared
/// plan). By default each reader's injector draws from its own stream —
/// the seed is re-derived from (shared-or-override seed, reader index) for
/// reader > 0 — so k radios on one backhaul fade independently; setting
/// `correlated` keeps the scripted seed verbatim, giving every reader the
/// same Gilbert–Elliott sample path (a shared physical obstruction).
struct MultiReaderFaultPlan {
  FaultPlan shared;
  std::vector<std::pair<std::uint32_t, FaultPlan>> overrides;
  bool correlated = false;

  MultiReaderFaultPlan() = default;
  /// Implicit: a plain FaultPlan is "the same script for every reader",
  /// which keeps existing single-reader call sites working unchanged.
  MultiReaderFaultPlan(FaultPlan plan) : shared(plan) {}  // NOLINT

  /// The plan reader `reader` actually executes (override or shared, with
  /// the per-reader seed derivation applied unless `correlated`).
  [[nodiscard]] FaultPlan for_reader(std::uint32_t reader) const;
};

/// Parses the multi-reader script format: every single-reader directive
/// plus
///
///   correlated                  # share one burst-loss sample path
///   reader=<n>: <directive...>  # apply only to reader n (0-based)
///
/// `reader=` lines layer over the shared lines regardless of order of
/// appearance; repeated `reader=<n>:` lines accumulate into that reader's
/// override. Throws std::invalid_argument on a malformed prefix (missing
/// colon, non-numeric index) or any single-reader parse error.
[[nodiscard]] MultiReaderFaultPlan parse_multi_reader_fault_plan(
    std::string_view text);

}  // namespace rfid::fault
