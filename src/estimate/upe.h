// Frame-statistics cardinality estimators beyond the zero estimator
// (extension; cf. Kodialam & Nandagopal, MobiCom 2006).
//
// One observed ALOHA frame yields three counts — empty, singleton, collision
// slots — and each is an invertible function of the load ρ = n/f:
//   E[empty]/f     = e^{-ρ}                 (Zero Estimator, cardinality.h)
//   E[single]/f    = ρ e^{-ρ}               (Singleton Estimator; ambiguous —
//                                            the curve peaks at ρ = 1)
//   E[collision]/f = 1 − (1+ρ) e^{-ρ}       (Collision Estimator)
// The collision form stays informative when the frame saturates (every slot
// occupied) where the zero estimator can only report a lower bound, so a
// monitoring server can keep triaging alerts even with frames sized for
// much smaller populations.
#pragma once

#include <cstdint>

#include "estimate/cardinality.h"

namespace rfid::estimate {

/// Collision estimator: inverts 1 − (1+ρ)e^{-ρ} = collision_slots/f by
/// bisection (the function is strictly increasing in ρ).
/// Returns saturated=true when every slot collided (estimate is a bound).
[[nodiscard]] CardinalityEstimate estimate_from_collisions(
    std::uint64_t collision_slots, std::uint64_t frame_size);

/// Singleton estimator: inverts ρe^{-ρ} = singleton_slots/f on the branch
/// selected by `assume_underloaded` (ρ < 1 vs ρ > 1); the caller breaks the
/// ambiguity, typically with the zero estimator's answer.
/// Precondition: singleton_slots/f <= 1/e + tolerance (the curve's maximum).
[[nodiscard]] CardinalityEstimate estimate_from_singletons(
    std::uint64_t singleton_slots, std::uint64_t frame_size,
    bool assume_underloaded);

/// Combined estimator over a fully classified frame: uses the zero estimator
/// when empties exist, otherwise falls back to collisions — the practical
/// triage call for InventoryServer-style consumers.
[[nodiscard]] CardinalityEstimate estimate_from_frame(
    std::uint64_t empty_slots, std::uint64_t singleton_slots,
    std::uint64_t collision_slots);

}  // namespace rfid::estimate
