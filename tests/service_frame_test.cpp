// Frame-codec robustness: the satellite contract that malformed input —
// truncated frames, hostile length prefixes, flipped checksum bits, and
// one-byte-at-a-time trickles — produces a typed protocol error and a
// closed connection, never a crash, a hang, or unbounded memory. The first
// half drives FrameReader directly (including a seeded random-garbage
// fuzz); the second half replays the same attacks against a live service
// over loopback.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "service/client.h"
#include "service/framing.h"
#include "service/messages.h"
#include "service/service.h"
#include "service/socket.h"

namespace {

using namespace rfid::service;

std::vector<std::byte> hello_frame(const std::string& tenant = "t") {
  return encode_frame(FrameType::kHello,
                      encode(HelloRequest{kProtocolVersion, tenant}));
}

TEST(FrameReader, RoundTripsSingleAndBatchedFrames) {
  FrameReader reader(1 << 16);
  std::vector<Frame> out;
  std::vector<std::byte> wire = hello_frame();
  const std::vector<std::byte> second =
      encode_frame(FrameType::kPing, encode(PingMsg{9}));
  wire.insert(wire.end(), second.begin(), second.end());

  ASSERT_EQ(reader.feed(wire, out), ErrorCode::kNone);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(static_cast<FrameType>(out[0].type), FrameType::kHello);
  EXPECT_EQ(decode_hello(out[0].payload).tenant, "t");
  EXPECT_EQ(decode_ping(out[1].payload).nonce, 9u);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReader, EmptyPayloadFrame) {
  FrameReader reader(1 << 16);
  std::vector<Frame> out;
  ASSERT_EQ(reader.feed(encode_frame(FrameType::kGoodbye, {}), out),
            ErrorCode::kNone);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].payload.empty());
}

TEST(FrameReader, OneByteTrickleStillParses) {
  FrameReader reader(1 << 16);
  std::vector<Frame> out;
  const std::vector<std::byte> wire = hello_frame("trickle");
  for (const std::byte b : wire) {
    ASSERT_EQ(reader.feed({&b, 1}, out), ErrorCode::kNone);
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(decode_hello(out[0].payload).tenant, "trickle");
}

TEST(FrameReader, TruncatedFrameWaitsWithoutEmitting) {
  FrameReader reader(1 << 16);
  std::vector<Frame> out;
  const std::vector<std::byte> wire = hello_frame();
  const std::span<const std::byte> head(wire.data(), wire.size() - 3);
  ASSERT_EQ(reader.feed(head, out), ErrorCode::kNone);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(reader.buffered(), wire.size() - 3);
  // The missing tail completes it.
  ASSERT_EQ(reader.feed({wire.data() + wire.size() - 3, 3}, out),
            ErrorCode::kNone);
  EXPECT_EQ(out.size(), 1u);
}

TEST(FrameReader, OversizedLengthRejectedBeforeAllocation) {
  FrameReader reader(1024);
  std::vector<Frame> out;
  // type + a 4 GiB length prefix: must die on the 5-byte header alone.
  std::byte header[5];
  header[0] = static_cast<std::byte>(FrameType::kHello);
  const std::uint32_t huge = 0xfffffff0u;
  std::memcpy(header + 1, &huge, sizeof(huge));
  EXPECT_EQ(reader.feed(header, out), ErrorCode::kOversizedFrame);
  EXPECT_TRUE(reader.poisoned());
  EXPECT_TRUE(out.empty());
  // A poisoned reader swallows everything else quietly.
  EXPECT_EQ(reader.feed(hello_frame(), out), ErrorCode::kNone);
  EXPECT_TRUE(out.empty());
}

TEST(FrameReader, FlippedBitFailsChecksum) {
  const std::vector<std::byte> clean = hello_frame();
  // Flip one bit in every position; header length bytes may instead
  // surface as oversized/truncated — never a parsed frame.
  for (std::size_t i = 0; i < clean.size(); ++i) {
    FrameReader reader(1 << 10);
    std::vector<Frame> out;
    std::vector<std::byte> bent = clean;
    bent[i] ^= std::byte{0x40};
    const ErrorCode err = reader.feed(bent, out);
    if (err == ErrorCode::kNone && !out.empty()) {
      // Only the type byte sits outside the length/checksum coverage — and
      // flipping it still fails the checksum, so nothing may parse.
      FAIL() << "corrupted frame parsed at byte " << i;
    }
  }
}

TEST(FrameReader, RandomGarbageNeverCrashes) {
  std::mt19937_64 rng(2008);
  for (int round = 0; round < 200; ++round) {
    FrameReader reader(4096);
    std::vector<Frame> out;
    std::size_t budget = 1 + static_cast<std::size_t>(rng() % 2048);
    while (budget > 0) {
      std::byte chunk[64];
      const std::size_t len =
          std::min(budget, 1 + static_cast<std::size_t>(rng() % 63));
      for (std::size_t i = 0; i < len; ++i) {
        chunk[i] = static_cast<std::byte>(rng() & 0xff);
      }
      (void)reader.feed({chunk, len}, out);
      if (reader.poisoned()) break;
      budget -= len;
    }
    // Bounded buffering even when nothing ever completes.
    EXPECT_LE(reader.buffered(), 4096u + 9u);
  }
}

TEST(Messages, ForgedCountPrefixesThrowBeforeAllocating) {
  // An EnrollRequest whose tag count claims 2^32-1 entries against a
  // near-empty payload must throw invalid_argument, not reserve gigabytes.
  EnrollRequest req;
  req.inventory = "x";
  req.tags = {rfid::tag::TagId(1, 2)};
  std::vector<std::byte> payload = encode(req);
  const std::uint32_t forged = 0xffffffffu;
  // The count field sits 12 + 8 bytes of trailing id data from the end.
  std::memcpy(payload.data() + payload.size() - 16, &forged, sizeof(forged));
  EXPECT_THROW((void)decode_enroll(payload), std::invalid_argument);

  StartRunRequest run;
  run.inventory = "x";
  run.stolen = {1};
  payload = encode(run);
  std::memcpy(payload.data() + payload.size() - 12, &forged, sizeof(forged));
  EXPECT_THROW((void)decode_start_run(payload), std::invalid_argument);
}

TEST(Messages, TrailingGarbageRejected) {
  std::vector<std::byte> payload = encode(PingMsg{1});
  payload.push_back(std::byte{0});
  EXPECT_THROW((void)decode_ping(payload), std::invalid_argument);
  EXPECT_THROW((void)decode_hello({}), std::invalid_argument);  // truncated
}

// ---- the same attacks against a live service over loopback ----

class LiveServiceFrameTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServiceConfig config;
    config.max_frame_bytes = 4096;
    service_ = std::make_unique<MonitorService>(config);
    service_->start();
  }
  void TearDown() override { service_->stop(); }

  /// Reads frames until the peer closes; returns the last kError seen.
  ErrorCode drain_to_close(ServiceClient& client) {
    ErrorCode last = ErrorCode::kNone;
    try {
      for (;;) {
        const Frame frame = client.read_frame();
        if (static_cast<FrameType>(frame.type) == FrameType::kError) {
          last = decode_error(frame.payload).code;
        }
      }
    } catch (const std::runtime_error&) {
      // connection closed (or receive timeout) — both end the drain
    }
    return last;
  }

  std::unique_ptr<MonitorService> service_;
};

TEST_F(LiveServiceFrameTest, OversizedFrameGetsTypedErrorThenClose) {
  ServiceClient client(service_->port(), std::chrono::milliseconds(2000));
  std::byte header[5];
  header[0] = static_cast<std::byte>(FrameType::kHello);
  const std::uint32_t huge = 0x7fffffffu;
  std::memcpy(header + 1, &huge, sizeof(huge));
  client.send_raw(header);
  EXPECT_EQ(drain_to_close(client), ErrorCode::kOversizedFrame);
}

TEST_F(LiveServiceFrameTest, BadChecksumGetsTypedErrorThenClose) {
  ServiceClient client(service_->port(), std::chrono::milliseconds(2000));
  std::vector<std::byte> bent = hello_frame();
  bent.back() ^= std::byte{0xff};
  client.send_raw(bent);
  EXPECT_EQ(drain_to_close(client), ErrorCode::kBadChecksum);
}

TEST_F(LiveServiceFrameTest, UnknownTypeAfterHelloClosesConnection) {
  ServiceClient client(service_->port(), std::chrono::milliseconds(2000));
  client.hello("t");
  client.send_frame(static_cast<FrameType>(0x33), {});
  EXPECT_EQ(drain_to_close(client), ErrorCode::kUnknownType);
}

TEST_F(LiveServiceFrameTest, MalformedPayloadGetsTypedErrorThenClose) {
  // Well-framed but undecodable: a 3-byte Hello body. Framing-level per
  // the grammar contract — typed error, then the connection closes.
  ServiceClient client(service_->port(), std::chrono::milliseconds(2000));
  const std::byte junk[3] = {std::byte{1}, std::byte{2}, std::byte{3}};
  client.send_frame(FrameType::kHello, junk);
  EXPECT_EQ(drain_to_close(client), ErrorCode::kMalformedPayload);
}

TEST_F(LiveServiceFrameTest, SlowTrickleHandshakeSucceeds) {
  // One byte per send: the server-side incremental parser must assemble
  // the frame across ~20 reads without ever blocking its IO loop.
  ServiceClient client(service_->port(), std::chrono::milliseconds(5000));
  const std::vector<std::byte> wire = hello_frame("slow");
  for (const std::byte b : wire) client.send_raw({&b, 1});
  const Frame frame = client.read_frame();
  ASSERT_EQ(static_cast<FrameType>(frame.type), FrameType::kHelloOk);
  EXPECT_NE(decode_hello_ok(frame.payload).session_id, 0u);
}

TEST_F(LiveServiceFrameTest, GarbageFloodNeverWedgesTheService) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 8; ++i) {
    ServiceClient client(service_->port(), std::chrono::milliseconds(1000));
    std::vector<std::byte> junk(512);
    for (std::byte& b : junk) b = static_cast<std::byte>(rng() & 0xff);
    client.send_raw(junk);
    (void)drain_to_close(client);
  }
  // The service survived eight hostile peers: a fresh clean session works.
  ServiceClient clean(service_->port(), std::chrono::milliseconds(2000));
  EXPECT_NE(clean.hello("survivor").session_id, 0u);
}

}  // namespace
