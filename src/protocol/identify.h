// Missing-tag IDENTIFICATION (extension): not just "something is missing"
// but "these exact tags are missing" — still without transmitting any ID
// over the air.
//
// This header is the original entry point, kept as a thin wrapper over the
// pluggable protocol family in protocol/identification.h (which see for the
// algorithm catalogue). `identify_missing_tags` runs the ITERATIVE family
// member — the paper-faithful baseline:
//
//   Per round, with challenge (f, r), the server knows every tag's slot.
//   * A slot the server expects occupied but observes EMPTY is absence
//     evidence against every tag mapping to it.
//   * A slot with exactly ONE expected mapper observed OCCUPIED proves that
//     tag present (nobody else could have replied there).
//   * Slots with several expected mappers observed occupied are ambiguous;
//     those tags stay "unknown" and are re-examined next round under fresh
//     randomness.
//
//   Rounds repeat until no tag is unknown (or a round cap is hit). Frames
//   are sized to the tags that still reply — proven-present tags cannot be
//   silenced without addressing them by ID, so f ≈ (enrolled − proven
//   missing). At load ≈ 1 each round proves a constant expected fraction of
//   the unknowns (sole-mapper / empty-slot probabilities are both ≈ e^{-1}),
//   so the round count is O(log n) and total slots O(n log n).
//
// The verdicts are *proofs* under the channel model, lossy or not: replies
// can be lost but never fabricated, so "present" verdicts are always sound,
// and "missing" verdicts require a consecutive-round absence streak sized
// so the campaign-wide false-accusation probability stays below
// IdentifyConfig::accusation_error (see required_confirmations). No false
// accusations, no false clearances; tags the campaign cannot decide in time
// are reported `unresolved`, never guessed. On heavily lossy links the
// iterative member mostly returns unresolved (present tags keep colliding
// with the suspects); the filter-first member silences proven-present tags
// and stays conclusive — prefer it there.
#pragma once

#include <vector>

#include "protocol/identification.h"

namespace rfid::protocol {

/// Runs one iterative identification campaign: `enrolled` is the server's
/// ID list, `present_tags` the physically present population the reader can
/// reach. `rng` drives challenge randomness (and channel noise, if any).
[[nodiscard]] IdentifyResult identify_missing_tags(
    const std::vector<tag::TagId>& enrolled,
    std::span<const tag::Tag> present_tags, const hash::SlotHasher& hasher,
    const IdentifyConfig& config, util::Rng& rng);

}  // namespace rfid::protocol
