// Tests for the fault-injection subsystem and the session layer's recovery
// machinery: Gilbert–Elliott burst loss, payload corruption against the
// framing checksum, duplication/reordering idempotency, scripted reader
// crashes resuming via the idempotent challenge cache, clock skew on the
// UTRP deadline, exponential backoff, and FailureReason attribution.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "fault/fault.h"
#include "obs/catalog.h"
#include "obs/metrics.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "tag/tag_set.h"
#include "util/random.h"
#include "wire/codec.h"
#include "wire/session.h"

namespace {

using namespace rfid;

// -------------------------------------------------------- Gilbert–Elliott --

TEST(GilbertElliott, StationaryLossMatchesLongRunRate) {
  // pi_bad = 0.05 / (0.05 + 0.2) = 0.2; loss_bad = 1 -> 20% average loss.
  const fault::GilbertElliottConfig config{
      .p_enter_bad = 0.05, .p_exit_bad = 0.2, .loss_good = 0.0, .loss_bad = 1.0};
  EXPECT_NEAR(config.stationary_loss(), 0.2, 1e-12);

  fault::GilbertElliott chain(config);
  util::Rng rng(21);
  int drops = 0;
  constexpr int kFrames = 200000;
  for (int i = 0; i < kFrames; ++i) {
    if (chain.drop(rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / kFrames, 0.2, 0.01);
}

TEST(GilbertElliott, LossIsBurstyNotIid) {
  // Mean sojourn in the bad state is 1/p_exit = 5 frames, so drops arrive in
  // runs ~5 long — i.i.d. loss at the same 20% rate has mean run 1/(1-p)
  // ≈ 1.25. The mean observed run length separates the two cleanly.
  fault::GilbertElliott chain({.p_enter_bad = 0.05,
                               .p_exit_bad = 0.2,
                               .loss_good = 0.0,
                               .loss_bad = 1.0});
  util::Rng rng(22);
  int runs = 0;
  int dropped = 0;
  bool in_run = false;
  for (int i = 0; i < 100000; ++i) {
    if (chain.drop(rng)) {
      ++dropped;
      if (!in_run) ++runs;
      in_run = true;
    } else {
      in_run = false;
    }
  }
  ASSERT_GT(runs, 0);
  const double mean_run = static_cast<double>(dropped) / runs;
  EXPECT_GT(mean_run, 3.0);
  EXPECT_LT(mean_run, 7.0);
}

TEST(GilbertElliott, DisabledConfigNeverDrops) {
  const fault::GilbertElliottConfig config{};  // all defaults: off
  EXPECT_FALSE(config.enabled());
  EXPECT_DOUBLE_EQ(config.stationary_loss(), 0.0);
}

// ------------------------------------------------------- FaultPlan parser --

TEST(FaultPlanParser, ParsesEveryDirective) {
  const auto plan = fault::parse_fault_plan(
      "# adverse backhaul scenario\n"
      "seed 42\n"
      "burst 0.05 0.2 1.0 0.01\n"
      "corrupt 0.05   # one flipped bit per hit\n"
      "duplicate 0.1\n"
      "reorder 0.2 8000\n"
      "skew 1.5 250\n"
      "crash 100000 200000\n"
      "crash 900000 never\n");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.burst.p_enter_bad, 0.05);
  EXPECT_DOUBLE_EQ(plan.burst.p_exit_bad, 0.2);
  EXPECT_DOUBLE_EQ(plan.burst.loss_bad, 1.0);
  EXPECT_DOUBLE_EQ(plan.burst.loss_good, 0.01);
  EXPECT_DOUBLE_EQ(plan.corrupt_prob, 0.05);
  EXPECT_DOUBLE_EQ(plan.duplicate_prob, 0.1);
  EXPECT_DOUBLE_EQ(plan.reorder_prob, 0.2);
  EXPECT_DOUBLE_EQ(plan.reorder_delay_us, 8000.0);
  EXPECT_DOUBLE_EQ(plan.clock_skew, 1.5);
  EXPECT_DOUBLE_EQ(plan.clock_offset_us, 250.0);
  EXPECT_TRUE(plan.skews_clock());
  ASSERT_EQ(plan.reader_crashes.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.reader_crashes[0].start_us, 100000.0);
  EXPECT_DOUBLE_EQ(plan.reader_crashes[0].end_us, 200000.0);
  EXPECT_TRUE(std::isinf(plan.reader_crashes[1].end_us));
}

TEST(FaultPlanParser, EmptyTextIsANoopPlan) {
  const auto plan = fault::parse_fault_plan("\n# only a comment\n\n");
  EXPECT_FALSE(plan.burst.enabled());
  EXPECT_DOUBLE_EQ(plan.corrupt_prob, 0.0);
  EXPECT_FALSE(plan.skews_clock());
  EXPECT_TRUE(plan.reader_crashes.empty());
}

TEST(FaultPlanParser, RejectsMalformedInput) {
  EXPECT_THROW((void)fault::parse_fault_plan("warp 0.5\n"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_fault_plan("corrupt 1.5\n"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_fault_plan("corrupt -0.1\n"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_fault_plan("corrupt\n"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_fault_plan("burst 0.1\n"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_fault_plan("crash 1000\n"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_fault_plan("crash 1000 sometimes\n"),
               std::invalid_argument);
  EXPECT_THROW((void)fault::parse_fault_plan("skew 0\n"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_fault_plan("seed 1 extra\n"), std::invalid_argument);
}

// ------------------------------------------------- multi-reader fault plans --

TEST(MultiReaderFaultPlanParser, ReaderLinesLayerOverSharedLines) {
  const auto plan = fault::parse_multi_reader_fault_plan(
      "seed 7\n"
      "burst 0.05 0.2 1.0 0.01   # every reader's backhaul fades\n"
      "reader=1: corrupt 0.2\n"
      "reader=1: duplicate 0.1   # repeated lines accumulate\n"
      "reader=2: crash 5000 never\n");
  EXPECT_FALSE(plan.correlated);

  // Reader 0 runs the shared plan with the scripted seed verbatim, so a
  // k = 1 zone is bit-identical to the legacy single-reader path.
  const fault::FaultPlan r0 = plan.for_reader(0);
  EXPECT_EQ(r0.seed, 7u);
  EXPECT_TRUE(r0.burst.enabled());
  EXPECT_DOUBLE_EQ(r0.corrupt_prob, 0.0);

  // Reader 1's overrides layer over the shared lines (burst retained).
  const fault::FaultPlan r1 = plan.for_reader(1);
  EXPECT_TRUE(r1.burst.enabled());
  EXPECT_DOUBLE_EQ(r1.corrupt_prob, 0.2);
  EXPECT_DOUBLE_EQ(r1.duplicate_prob, 0.1);
  EXPECT_TRUE(r1.reader_crashes.empty());

  const fault::FaultPlan r2 = plan.for_reader(2);
  ASSERT_EQ(r2.reader_crashes.size(), 1u);
  EXPECT_TRUE(std::isinf(r2.reader_crashes[0].end_us));

  // Readers above 0 fork their own fault stream: k radios on one backhaul
  // fade independently by default.
  EXPECT_NE(r1.seed, r0.seed);
  EXPECT_NE(plan.for_reader(3).seed, r0.seed);
  EXPECT_NE(plan.for_reader(3).seed, r1.seed);
}

TEST(MultiReaderFaultPlanParser, CorrelatedPinsEveryReaderToOneStream) {
  const auto plan = fault::parse_multi_reader_fault_plan(
      "correlated\n"
      "seed 9\n"
      "burst 0.05 0.2 1.0 0.0\n");
  EXPECT_TRUE(plan.correlated);
  EXPECT_EQ(plan.for_reader(0).seed, 9u);
  EXPECT_EQ(plan.for_reader(1).seed, 9u);  // same burst realization
  EXPECT_EQ(plan.for_reader(5).seed, 9u);
}

TEST(MultiReaderFaultPlanParser, PlainPlanConvertsToSameScriptForAllReaders) {
  const fault::MultiReaderFaultPlan plan =
      fault::parse_fault_plan("corrupt 0.1\n");  // implicit conversion
  EXPECT_DOUBLE_EQ(plan.for_reader(0).corrupt_prob, 0.1);
  EXPECT_DOUBLE_EQ(plan.for_reader(2).corrupt_prob, 0.1);
}

// Regression: a malformed reader prefix must be a parse error, not a
// silently-shared directive named "reader=..." (the failure mode before the
// prefix was validated).
TEST(MultiReaderFaultPlanParser, RejectsMalformedReaderPrefixes) {
  EXPECT_THROW((void)fault::parse_multi_reader_fault_plan("reader=: corrupt 0.1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)fault::parse_multi_reader_fault_plan("reader=x: corrupt 0.1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)fault::parse_multi_reader_fault_plan("reader=1corrupt 0.1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)fault::parse_multi_reader_fault_plan("reader=1\n"),
               std::invalid_argument);
  // Single-reader parse errors inside a reader line still propagate.
  EXPECT_THROW((void)fault::parse_multi_reader_fault_plan("reader=0: warp 1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)fault::parse_multi_reader_fault_plan("reader=0: corrupt 1.5\n"),
               std::invalid_argument);
  // `correlated` takes no arguments.
  EXPECT_THROW((void)fault::parse_multi_reader_fault_plan("correlated 1\n"),
               std::invalid_argument);
}

// --------------------------------------------------------- frame corruption --

TEST(FaultInjector, CorruptFlipsExactlyOneBit) {
  fault::FaultPlan plan;
  fault::FaultInjector injector(plan);
  wire::Encoder enc;
  enc.put_u64(0xdeadbeefcafef00dULL);
  auto frame = wire::frame_payload(enc.bytes());
  const auto original = frame;
  injector.corrupt(frame);
  int flipped = 0;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    auto diff = std::to_integer<unsigned>(frame[i] ^ original[i]);
    while (diff != 0) {
      flipped += static_cast<int>(diff & 1u);
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped, 1);
}

TEST(FaultInjector, CorruptedFrameRejectedByChecksum) {
  fault::FaultPlan plan;
  fault::FaultInjector injector(plan);
  wire::Encoder enc;
  enc.put_string("monitor me");
  // Every single-bit flip anywhere in the frame must be caught.
  for (int trial = 0; trial < 64; ++trial) {
    auto frame = wire::frame_payload(enc.bytes());
    injector.corrupt(frame);
    EXPECT_THROW((void)wire::unframe_payload(frame), std::invalid_argument);
  }
}

// ------------------------------------------------ sessions under burst loss --

TEST(FaultSession, TrpCompletesUnder20PercentBurstLoss) {
  sim::EventQueue queue;
  util::Rng rng(31);
  const tag::TagSet set = tag::TagSet::make_random(200, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 5, .confidence = 0.95});
  fault::FaultPlan plan;
  plan.burst = {.p_enter_bad = 0.05, .p_exit_bad = 0.2, .loss_good = 0.0,
                .loss_bad = 1.0};  // 20% stationary loss in bursts of ~5
  wire::SessionConfig config;
  config.max_retries = 30;
  config.faults = &plan;
  // 12 rounds ≈ 50+ offered frames: enough for the chain to visit the bad
  // state (deterministic under the fixed seeds).
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), 12, config, rng);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.failure, wire::FailureReason::kNone);
  ASSERT_EQ(outcome.verdicts.size(), 12u);
  for (const auto& verdict : outcome.verdicts) EXPECT_TRUE(verdict.intact);
  EXPECT_GT(outcome.burst_frames_dropped, 0u);
  EXPECT_GT(outcome.retransmissions, 0u);
}

TEST(FaultSession, TheftStillDetectedUnderBurstLoss) {
  // Loss must not mask theft: the verdicts under a hostile channel are the
  // same verdicts an ideal channel would produce, just later.
  sim::EventQueue queue;
  util::Rng rng(32);
  tag::TagSet set = tag::TagSet::make_random(250, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 5, .confidence = 0.95});
  (void)set.steal_random(50, rng);
  fault::FaultPlan plan;
  plan.burst = {.p_enter_bad = 0.05, .p_exit_bad = 0.2, .loss_good = 0.0,
                .loss_bad = 1.0};
  wire::SessionConfig config;
  config.max_retries = 30;
  config.faults = &plan;
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), 3, config, rng);
  EXPECT_TRUE(outcome.completed);
  ASSERT_EQ(outcome.verdicts.size(), 3u);
  for (const auto& verdict : outcome.verdicts) EXPECT_FALSE(verdict.intact);
}

TEST(FaultSession, UtrpCompletesUnderBurstLossAndCommitsCounters) {
  sim::EventQueue queue;
  util::Rng rng(33);
  tag::TagSet set = tag::TagSet::make_random(150, rng);
  protocol::UtrpServer server(set,
                              {.tolerated_missing = 3, .confidence = 0.95}, 20);
  fault::FaultPlan plan;
  plan.burst = {.p_enter_bad = 0.05, .p_exit_bad = 0.2, .loss_good = 0.0,
                .loss_bad = 1.0};
  wire::SessionConfig config;
  config.max_retries = 30;
  config.faults = &plan;
  const auto outcome =
      wire::run_utrp_session(queue, server, set.tags(), 3, config, rng);
  EXPECT_TRUE(outcome.completed);
  for (const auto& verdict : outcome.verdicts) EXPECT_TRUE(verdict.intact);
  EXPECT_FALSE(server.needs_resync());
}

// -------------------------------------------- corruption, dup, reordering --

TEST(FaultSession, SurvivesPayloadCorruption) {
  sim::EventQueue queue;
  util::Rng rng(34);
  const tag::TagSet set = tag::TagSet::make_random(150, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 5, .confidence = 0.95});
  fault::FaultPlan plan;
  plan.corrupt_prob = 0.05;
  wire::SessionConfig config;
  config.max_retries = 30;
  config.faults = &plan;
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), 10, config, rng);
  EXPECT_TRUE(outcome.completed);
  ASSERT_EQ(outcome.verdicts.size(), 10u);
  for (const auto& verdict : outcome.verdicts) EXPECT_TRUE(verdict.intact);
}

TEST(FaultSession, DuplicatesAndReorderingCannotDoubleCountRounds) {
  // Heavy duplication and reordering: idempotent round caches must yield
  // exactly one verdict per round regardless of how many copies arrive or in
  // what order.
  sim::EventQueue queue;
  util::Rng rng(35);
  const tag::TagSet set = tag::TagSet::make_random(150, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 5, .confidence = 0.95});
  fault::FaultPlan plan;
  plan.duplicate_prob = 0.4;
  plan.reorder_prob = 0.3;
  plan.reorder_delay_us = 10000.0;
  wire::SessionConfig config;
  config.max_retries = 30;
  config.faults = &plan;
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), 6, config, rng);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.rounds_completed, 6u);
  ASSERT_EQ(outcome.verdicts.size(), 6u);
  for (const auto& verdict : outcome.verdicts) EXPECT_TRUE(verdict.intact);
  EXPECT_GT(outcome.frames_duplicated, 0u);
  EXPECT_GT(outcome.frames_reordered, 0u);
}

// ------------------------------------------------------- crash and restart --

TEST(FaultSession, ReaderCrashRestartResumesViaChallengeCache) {
  // The acceptance scenario: 20% burst loss, 5% corruption, duplicates,
  // reordering, and one scripted crash/restart — the TRP session still
  // finishes every round with correct verdicts. The plan goes through the
  // text format to exercise it end to end.
  sim::EventQueue queue;
  util::Rng rng(36);
  const tag::TagSet set = tag::TagSet::make_random(200, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 5, .confidence = 0.95});
  const fault::FaultPlan plan = fault::parse_fault_plan(
      "seed 99\n"
      "burst 0.05 0.2\n"        // 20% stationary burst loss
      "corrupt 0.05\n"
      "duplicate 0.2\n"
      "reorder 0.2 5000\n"
      "crash 50000 90000\n");   // mid-round-1 outage, 40 ms
  wire::SessionConfig config;
  config.max_retries = 40;
  config.faults = &plan;
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), 4, config, rng);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.failure, wire::FailureReason::kNone);
  EXPECT_EQ(outcome.rounds_completed, 4u);
  ASSERT_EQ(outcome.verdicts.size(), 4u);
  for (const auto& verdict : outcome.verdicts) EXPECT_TRUE(verdict.intact);
  EXPECT_EQ(outcome.reader_crashes, 1u);
  EXPECT_GT(outcome.burst_frames_dropped, 0u);
}

TEST(FaultSession, ObservabilityCountersMatchOutcomeUnderFaults) {
  // The acceptance scenario again, with a MetricsRegistry attached: every
  // fault the injector delivered and every retransmission the endpoints
  // performed must be visible in the counters, agreeing exactly with the
  // outcome's own accounting.
  sim::EventQueue queue;
  util::Rng rng(36);
  const tag::TagSet set = tag::TagSet::make_random(200, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 5, .confidence = 0.95});
  const fault::FaultPlan plan = fault::parse_fault_plan(
      "seed 99\n"
      "burst 0.05 0.2\n"
      "corrupt 0.05\n"
      "duplicate 0.2\n"
      "reorder 0.2 5000\n"
      "crash 50000 90000\n");
  obs::MetricsRegistry reg;
  wire::SessionConfig config;
  config.max_retries = 40;
  config.faults = &plan;
  config.metrics = &reg;
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), 4, config, rng);
  ASSERT_TRUE(outcome.completed);

  namespace cat = obs::catalog;
  EXPECT_EQ(cat::faults_injected_total(reg, "burst_drop").value(),
            outcome.burst_frames_dropped);
  EXPECT_EQ(cat::faults_injected_total(reg, "duplicate").value(),
            outcome.frames_duplicated);
  EXPECT_EQ(cat::faults_injected_total(reg, "reorder").value(),
            outcome.frames_reordered);
  EXPECT_EQ(cat::faults_injected_total(reg, "reader_crash").value(),
            outcome.reader_crashes);
  EXPECT_EQ(cat::corrupt_frames_rejected_total(reg).value(),
            outcome.corrupt_frames_dropped);
  EXPECT_EQ(cat::retransmissions_total(reg).value(), outcome.retransmissions);
  EXPECT_EQ(cat::sessions_total(reg, "trp", "completed").value(), 1u);
  EXPECT_EQ(cat::frames_sent_total(reg, "uplink").value() +
                cat::frames_sent_total(reg, "downlink").value(),
            outcome.frames_sent);
  // The scenario is deterministic, so the faults really fired.
  EXPECT_GT(outcome.burst_frames_dropped, 0u);
  EXPECT_EQ(outcome.reader_crashes, 1u);
}

TEST(FaultSession, CrashWithoutRestartReportsCrashed) {
  sim::EventQueue queue;
  util::Rng rng(37);
  const tag::TagSet set = tag::TagSet::make_random(100, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 3, .confidence = 0.95});
  const fault::FaultPlan plan = fault::parse_fault_plan("crash 10000 never\n");
  wire::SessionConfig config;
  config.faults = &plan;
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), 3, config, rng);
  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.failure, wire::FailureReason::kCrashed);
  EXPECT_EQ(outcome.reader_crashes, 1u);
  ASSERT_FALSE(outcome.round_failures.empty());
  EXPECT_EQ(outcome.round_failures.back().reason, wire::FailureReason::kCrashed);
  EXPECT_EQ(wire::to_string(outcome.failure), "crashed");
}

// --------------------------------------------------- failure attribution --

TEST(FaultSession, DeadLinkReportsTimeoutExhausted) {
  sim::EventQueue queue;
  util::Rng rng(38);
  const tag::TagSet set = tag::TagSet::make_random(50, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 2, .confidence = 0.95});
  wire::SessionConfig config;
  config.uplink = {.latency_us = 1000.0, .jitter_us = 0.0, .drop_prob = 1.0};
  config.max_retries = 3;
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), 1, config, rng);
  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.failure, wire::FailureReason::kTimeoutExhausted);
  ASSERT_EQ(outcome.round_failures.size(), 1u);
  EXPECT_EQ(outcome.round_failures[0].round, 0u);
  EXPECT_EQ(outcome.round_failures[0].reason,
            wire::FailureReason::kTimeoutExhausted);
}

TEST(FaultSession, TotalCorruptionReportsCorruptGiveup) {
  // Every frame corrupted: the endpoints never crash — the checksum rejects
  // each copy and the session eventually gives up, naming corruption (not a
  // bare timeout) as the cause.
  sim::EventQueue queue;
  util::Rng rng(39);
  const tag::TagSet set = tag::TagSet::make_random(50, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 2, .confidence = 0.95});
  fault::FaultPlan plan;
  plan.corrupt_prob = 1.0;
  wire::SessionConfig config;
  config.max_retries = 4;
  config.faults = &plan;
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), 1, config, rng);
  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.failure, wire::FailureReason::kCorruptGiveup);
  EXPECT_GT(outcome.corrupt_frames_dropped, 0u);
  EXPECT_EQ(outcome.rounds_completed, 0u);
}

TEST(FaultSession, ClockSkewTripsUtrpDeadline) {
  // A server clock running 30x fast measures ~51 ms of honest round trip as
  // ~1.5 s and fails the Alg. 5 timer; the identical run without skew
  // passes. The round still completes — the failure is recorded per round.
  tag::TagSet set_control;
  {
    sim::EventQueue queue;
    util::Rng rng(40);
    tag::TagSet set = tag::TagSet::make_random(100, rng);
    protocol::UtrpServer server(
        set, {.tolerated_missing = 3, .confidence = 0.95}, 20);
    wire::SessionConfig config;
    config.utrp_deadline_us = 1e6;
    const auto outcome =
        wire::run_utrp_session(queue, server, set.tags(), 1, config, rng);
    EXPECT_TRUE(outcome.completed);
    ASSERT_EQ(outcome.verdicts.size(), 1u);
    EXPECT_TRUE(outcome.verdicts[0].deadline_met);
    EXPECT_TRUE(outcome.round_failures.empty());
  }
  {
    sim::EventQueue queue;
    util::Rng rng(40);
    tag::TagSet set = tag::TagSet::make_random(100, rng);
    protocol::UtrpServer server(
        set, {.tolerated_missing = 3, .confidence = 0.95}, 20);
    const fault::FaultPlan plan = fault::parse_fault_plan("skew 30\n");
    wire::SessionConfig config;
    config.utrp_deadline_us = 1e6;
    config.faults = &plan;
    const auto outcome =
        wire::run_utrp_session(queue, server, set.tags(), 1, config, rng);
    EXPECT_TRUE(outcome.completed);  // the round finishes, just not on time
    ASSERT_EQ(outcome.verdicts.size(), 1u);
    EXPECT_FALSE(outcome.verdicts[0].deadline_met);
    EXPECT_FALSE(outcome.verdicts[0].intact);
    ASSERT_EQ(outcome.round_failures.size(), 1u);
    EXPECT_EQ(outcome.round_failures[0].reason,
              wire::FailureReason::kDeadlineMissed);
  }
}

// ------------------------------------------------------------- backoff --

TEST(Backoff, ExponentialScheduleIsDeterministic) {
  // Dead link, base 1000 us, x2 growth, no jitter, 3 retries:
  // timeouts at 1000, +2000, +4000, +8000 -> gives up at t = 15000.
  sim::EventQueue queue;
  util::Rng rng(41);
  const tag::TagSet set = tag::TagSet::make_random(20, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 1, .confidence = 0.9});
  wire::SessionConfig config;
  config.uplink = {.latency_us = 100.0, .jitter_us = 0.0, .drop_prob = 1.0};
  config.retry_timeout_us = 1000.0;
  config.backoff_multiplier = 2.0;
  config.backoff_jitter = 0.0;
  config.max_retries = 3;
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), 1, config, rng);
  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.retransmissions, 3u);
  EXPECT_DOUBLE_EQ(outcome.finished_at_us, 15000.0);
}

TEST(Backoff, CapBoundsTheSchedule) {
  // Same run with a 1500 us cap: 1000, +1500, +1500, +1500 -> t = 5500.
  sim::EventQueue queue;
  util::Rng rng(42);
  const tag::TagSet set = tag::TagSet::make_random(20, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 1, .confidence = 0.9});
  wire::SessionConfig config;
  config.uplink = {.latency_us = 100.0, .jitter_us = 0.0, .drop_prob = 1.0};
  config.retry_timeout_us = 1000.0;
  config.backoff_multiplier = 2.0;
  config.backoff_cap_us = 1500.0;
  config.backoff_jitter = 0.0;
  config.max_retries = 3;
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), 1, config, rng);
  EXPECT_FALSE(outcome.completed);
  EXPECT_DOUBLE_EQ(outcome.finished_at_us, 5500.0);
}

TEST(Backoff, JitterStaysWithinConfiguredFraction) {
  // With 10% jitter each delay lands in [d, 1.1 d): the give-up time is
  // bounded by the no-jitter schedule and its 1.1x stretch.
  sim::EventQueue queue;
  util::Rng rng(43);
  const tag::TagSet set = tag::TagSet::make_random(20, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 1, .confidence = 0.9});
  wire::SessionConfig config;
  config.uplink = {.latency_us = 100.0, .jitter_us = 0.0, .drop_prob = 1.0};
  config.retry_timeout_us = 1000.0;
  config.backoff_multiplier = 2.0;
  config.backoff_jitter = 0.1;
  config.max_retries = 3;
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), 1, config, rng);
  EXPECT_FALSE(outcome.completed);
  EXPECT_GE(outcome.finished_at_us, 15000.0);
  EXPECT_LT(outcome.finished_at_us, 16500.0);
}

// ------------------------------------- UTRP divergence heals via resync --

TEST(FaultSession, UtrpCrashRestartDivergesThenResyncHeals) {
  // A crash after the scan consumed the challenge but before the report got
  // through forces the restarted reader to re-scan the same round: the tags'
  // counters advance twice where the mirror expects once. The verdict flags
  // the mismatch, needs_resync() trips, and a resync from a physical audit
  // restores clean monitoring — the full self-healing loop.
  sim::EventQueue queue;
  util::Rng rng(44);
  tag::TagSet set = tag::TagSet::make_random(150, rng);
  protocol::UtrpServer server(set,
                              {.tolerated_missing = 3, .confidence = 0.95}, 20);
  const fault::FaultPlan plan = fault::parse_fault_plan("crash 5000 20000\n");
  wire::SessionConfig config;
  config.faults = &plan;
  const auto outcome =
      wire::run_utrp_session(queue, server, set.tags(), 1, config, rng);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.reader_crashes, 1u);
  ASSERT_EQ(outcome.verdicts.size(), 1u);
  EXPECT_FALSE(outcome.verdicts[0].intact);  // divergence, not theft
  ASSERT_TRUE(server.needs_resync());

  // Physical audit: re-enroll the tags exactly as they now are.
  server.resync(set);
  EXPECT_FALSE(server.needs_resync());

  // Monitoring is clean again.
  const auto after =
      wire::run_utrp_session(queue, server, set.tags(), 3, {}, rng);
  EXPECT_TRUE(after.completed);
  ASSERT_EQ(after.verdicts.size(), 3u);
  for (const auto& verdict : after.verdicts) EXPECT_TRUE(verdict.intact);
  EXPECT_FALSE(server.needs_resync());
}

TEST(FaultSession, FaultlessPlanMatchesNoPlanBitForBit) {
  // Attaching an all-off FaultPlan must not perturb any random stream: the
  // outcome is identical to running without the fault subsystem at all.
  const auto run = [](const fault::FaultPlan* plan) {
    sim::EventQueue queue;
    util::Rng rng(45);
    const tag::TagSet set = tag::TagSet::make_random(120, rng);
    const protocol::TrpServer server(
        set.ids(), {.tolerated_missing = 3, .confidence = 0.95});
    wire::SessionConfig config;
    config.uplink = {.latency_us = 1000.0, .jitter_us = 300.0, .drop_prob = 0.2};
    config.downlink = {.latency_us = 1000.0, .jitter_us = 300.0, .drop_prob = 0.2};
    config.max_retries = 30;
    config.faults = plan;
    return wire::run_trp_session(queue, server, set.tags(), 4, config, rng);
  };
  const fault::FaultPlan noop;
  const auto with = run(&noop);
  const auto without = run(nullptr);
  EXPECT_EQ(with.frames_sent, without.frames_sent);
  EXPECT_EQ(with.frames_dropped, without.frames_dropped);
  EXPECT_EQ(with.retransmissions, without.retransmissions);
  EXPECT_DOUBLE_EQ(with.finished_at_us, without.finished_at_us);
}

}  // namespace
