// The tag-side state machine (Algs. 2 and 7 of the paper).
//
// A passive tag in this system has exactly three pieces of protocol state:
//   * its immutable ID,
//   * a monotone query counter ct (UTRP only) that increments every time the
//     tag receives a new (f, r) broadcast — the anti-rewind mechanism, and
//   * a "silenced" flag set once the tag has replied within the current
//     inventory round (UTRP tags keep silent after replying; TRP tags reply
//     in their single chosen slot anyway).
// Slot choice is  h(ID ⊕ r [⊕ ct]) mod f , evaluated by the shared
// SlotHasher so tag, reader, and server always agree.
#pragma once

#include <cstdint>

#include "hash/slot_hash.h"
#include "tag/tag_id.h"

namespace rfid::tag {

class Tag {
 public:
  constexpr Tag() noexcept = default;
  explicit constexpr Tag(TagId id) noexcept : id_(id) {}
  /// Restores a tag observed at a known counter value (snapshot loading,
  /// re-enrollment after a physical audit).
  constexpr Tag(TagId id, std::uint64_t counter) noexcept
      : id_(id), counter_(counter) {}

  [[nodiscard]] constexpr TagId id() const noexcept { return id_; }
  [[nodiscard]] constexpr std::uint64_t counter() const noexcept { return counter_; }
  [[nodiscard]] constexpr bool silenced() const noexcept { return silenced_; }

  /// TRP query (Alg. 2 line 2): deterministic slot pick, no state change.
  [[nodiscard]] std::uint32_t trp_slot(const hash::SlotHasher& hasher,
                                       std::uint64_t r,
                                       std::uint32_t frame_size) const noexcept {
    return hasher.slot(id_.slot_word(), r, frame_size);
  }

  /// UTRP (f, r) reception (Alg. 7 lines 1–2 / 6–8): increments the counter
  /// *first*, then picks a slot with the new counter value mixed in.
  /// Returns the chosen slot within [0, frame_size).
  [[nodiscard]] std::uint32_t utrp_receive_seed(const hash::SlotHasher& hasher,
                                                std::uint64_t r,
                                                std::uint32_t frame_size) noexcept {
    ++counter_;
    return hasher.slot(id_.slot_word(), r, frame_size, counter_);
  }

  /// Marks the tag as having replied (Alg. 7 line 5: "keep silent").
  void silence() noexcept { silenced_ = true; }

  /// New inventory round: the silenced flag clears, the counter persists
  /// (it is monotone across the tag's lifetime, which is what defeats
  /// replays across rounds).
  void begin_round() noexcept { silenced_ = false; }

 private:
  TagId id_{};
  std::uint64_t counter_ = 0;
  bool silenced_ = false;
};

}  // namespace rfid::tag
