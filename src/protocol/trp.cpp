#include "protocol/trp.h"

#include "util/expect.h"

namespace rfid::protocol {

TrpServer::TrpServer(std::vector<tag::TagId> ids, MonitoringPolicy policy,
                     hash::SlotHasher hasher)
    : ids_(std::move(ids)), policy_(policy), hasher_(hasher) {
  RFID_EXPECT(!ids_.empty(), "cannot monitor an empty group");
  RFID_EXPECT(policy_.tolerated_missing + 1 <= ids_.size(),
              "tolerance m must satisfy m + 1 <= n");
  plan_ = math::optimize_trp_frame(ids_.size(), policy_.tolerated_missing,
                                   policy_.confidence, policy_.model);
}

TrpChallenge TrpServer::issue_challenge(util::Rng& rng) const {
  return TrpChallenge{plan_.frame_size, rng()};
}

bits::Bitstring TrpServer::expected_bitstring(const TrpChallenge& challenge) const {
  RFID_EXPECT(challenge.frame_size >= 1, "challenge has no slots");
  bits::Bitstring bs(challenge.frame_size);
  for (const tag::TagId& id : ids_) {
    bs.set(hasher_.slot(id.slot_word(), challenge.r, challenge.frame_size));
  }
  return bs;
}

Verdict TrpServer::verify(const TrpChallenge& challenge,
                          const bits::Bitstring& reported) const {
  const bits::Bitstring expected = expected_bitstring(challenge);
  RFID_EXPECT(reported.size() == expected.size(),
              "reported bitstring has wrong length");
  Verdict verdict;
  verdict.mismatched_slots = expected.hamming_distance(reported);
  verdict.intact = verdict.mismatched_slots == 0;
  if (!verdict.intact) {
    verdict.first_mismatch_slot = *expected.first_difference(reported);
  }
  return verdict;
}

bits::Bitstring TrpReader::scan(std::span<const tag::Tag> present,
                                const TrpChallenge& challenge,
                                util::Rng& rng) const {
  return scan_observed(present, challenge, rng).bitstring;
}

radio::FrameObservation TrpReader::scan_observed(std::span<const tag::Tag> present,
                                                 const TrpChallenge& challenge,
                                                 util::Rng& rng) const {
  RFID_EXPECT(challenge.frame_size >= 1, "challenge has no slots");
  return radio::simulate_frame(present, hasher_, challenge.r,
                               challenge.frame_size, channel_, rng);
}

}  // namespace rfid::protocol
