// Tests for the collision/singleton cardinality estimators.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "estimate/upe.h"
#include "radio/frame.h"
#include "tag/tag_set.h"
#include "util/random.h"
#include "util/stats.h"

namespace {

using rfid::estimate::estimate_from_collisions;
using rfid::estimate::estimate_from_frame;
using rfid::estimate::estimate_from_singletons;
using rfid::tag::TagSet;

TEST(CollisionEstimator, InvertsTheModelExactly) {
  // Feed the estimator the model's own expected counts: it must return the
  // load it came from.
  const std::uint64_t f = 2000;
  for (const double rho : {0.3, 1.0, 2.5, 6.0}) {
    const double expected_coll = f * (1.0 - (1.0 + rho) * std::exp(-rho));
    const auto est = estimate_from_collisions(
        static_cast<std::uint64_t>(std::llround(expected_coll)), f);
    EXPECT_NEAR(est.estimate, rho * f, f * 0.01) << "rho=" << rho;
    EXPECT_FALSE(est.saturated);
  }
}

TEST(CollisionEstimator, ZeroCollisionsMeansSparse) {
  const auto est = estimate_from_collisions(0, 100);
  EXPECT_DOUBLE_EQ(est.estimate, 0.0);
}

TEST(CollisionEstimator, AllCollisionsSaturates) {
  const auto est = estimate_from_collisions(256, 256);
  EXPECT_TRUE(est.saturated);
  EXPECT_GT(est.estimate, 256.0 * 10);
}

TEST(CollisionEstimator, RejectsBadInput) {
  EXPECT_THROW((void)estimate_from_collisions(5, 0), std::invalid_argument);
  EXPECT_THROW((void)estimate_from_collisions(11, 10), std::invalid_argument);
}

TEST(CollisionEstimator, UnbiasedOverSimulatedFrames) {
  constexpr std::uint64_t kTags = 1500;
  constexpr std::uint32_t kFrame = 1000;  // overloaded: rho = 1.5
  const rfid::hash::SlotHasher hasher;
  rfid::util::RunningStat estimates;
  for (int t = 0; t < 60; ++t) {
    rfid::util::Rng rng(rfid::util::derive_seed(60, static_cast<std::uint64_t>(t)));
    const TagSet set = TagSet::make_random(kTags, rng);
    const auto obs =
        rfid::radio::simulate_frame(set.tags(), hasher, rng(), kFrame, {}, rng);
    estimates.add(estimate_from_collisions(obs.collision_slots, kFrame).estimate);
  }
  EXPECT_NEAR(estimates.mean(), static_cast<double>(kTags), 60.0);
}

TEST(SingletonEstimator, BothBranchesInvertTheModel) {
  const std::uint64_t f = 5000;
  // Underloaded branch: rho = 0.4.
  {
    const double singles = f * 0.4 * std::exp(-0.4);
    const auto est = estimate_from_singletons(
        static_cast<std::uint64_t>(std::llround(singles)), f, true);
    EXPECT_NEAR(est.estimate, 0.4 * f, f * 0.02);
  }
  // Overloaded branch: rho = 2.2 gives the same singleton fraction as some
  // rho < 1; the caller's branch choice disambiguates.
  {
    const double singles = f * 2.2 * std::exp(-2.2);
    const auto est = estimate_from_singletons(
        static_cast<std::uint64_t>(std::llround(singles)), f, false);
    EXPECT_NEAR(est.estimate, 2.2 * f, f * 0.03);
  }
}

TEST(SingletonEstimator, RejectsImpossibleFraction) {
  // More than f/e singleton slots is inconsistent with the model.
  EXPECT_THROW((void)estimate_from_singletons(500, 1000, true),
               std::invalid_argument);
}

TEST(SingletonEstimator, PeakFractionIsAccepted) {
  // Exactly at the maximum the estimate is rho ~ 1 on either branch.
  const std::uint64_t f = 10000;
  const auto singles = static_cast<std::uint64_t>(std::llround(f * std::exp(-1.0)));
  const auto lo = estimate_from_singletons(singles, f, true);
  const auto hi = estimate_from_singletons(singles, f, false);
  EXPECT_NEAR(lo.estimate, static_cast<double>(f), f * 0.05);
  EXPECT_NEAR(hi.estimate, static_cast<double>(f), f * 0.05);
}

TEST(FrameEstimator, UsesZeroEstimatorWhenPossible) {
  // 30 empty, 50 single, 20 collision: zero estimator applies.
  const auto est = estimate_from_frame(30, 50, 20);
  const auto ze = rfid::estimate::estimate_cardinality(30, 100);
  EXPECT_DOUBLE_EQ(est.estimate, ze.estimate);
}

TEST(FrameEstimator, FallsBackToCollisionsWhenSaturated) {
  // No empty slots: the zero estimator only gives a bound; collisions still
  // carry signal.
  const auto est = estimate_from_frame(0, 40, 60);
  EXPECT_FALSE(est.saturated);
  EXPECT_GT(est.estimate, 100.0);
}

TEST(FrameEstimator, SaturatedFrameStillBounded) {
  const auto est = estimate_from_frame(0, 0, 100);
  EXPECT_TRUE(est.saturated);
}

TEST(FrameEstimator, TracksTheftAcrossLoadRegimes) {
  // End-to-end triage check in the overloaded regime where cardinality.h's
  // zero estimator would saturate.
  rfid::util::Rng rng(61);
  TagSet set = TagSet::make_random(4000, rng);
  const rfid::hash::SlotHasher hasher;
  constexpr std::uint32_t kFrame = 600;  // rho ~ 6.7: almost no empty slots
  const std::uint64_t r = rng();
  const auto before =
      rfid::radio::simulate_frame(set.tags(), hasher, r, kFrame, {}, rng);
  (void)set.steal_random(2000, rng);
  const auto after =
      rfid::radio::simulate_frame(set.tags(), hasher, r, kFrame, {}, rng);
  const double est_before =
      estimate_from_frame(before.empty_slots, before.single_slots,
                          before.collision_slots)
          .estimate;
  const double est_after =
      estimate_from_frame(after.empty_slots, after.single_slots,
                          after.collision_slots)
          .estimate;
  EXPECT_GT(est_before, est_after + 1000.0);
}

}  // namespace
