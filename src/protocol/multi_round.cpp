#include "protocol/multi_round.h"

#include <cmath>

#include "obs/catalog.h"
#include "util/expect.h"

namespace rfid::protocol {

namespace {

[[nodiscard]] double per_round_alpha(double alpha, std::uint32_t rounds) {
  // 1 − (1 − α)^{1/k}, computed via expm1/log1p for accuracy near α → 1.
  return -std::expm1(std::log1p(-alpha) / rounds);
}

}  // namespace

MultiRoundPlan plan_multi_round_trp(std::uint64_t n, std::uint64_t m,
                                    double alpha, std::uint32_t rounds,
                                    math::EmptySlotModel model) {
  RFID_EXPECT(rounds >= 1, "need at least one round");
  RFID_EXPECT(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");

  MultiRoundPlan plan;
  plan.rounds = rounds;
  plan.per_round_alpha = per_round_alpha(alpha, rounds);
  const auto single = math::optimize_trp_frame(n, m, plan.per_round_alpha, model);
  plan.frame_size = single.frame_size;
  plan.per_round_detection = single.predicted_detection;
  // Overall miss = per-round miss^k.
  plan.predicted_detection =
      -std::expm1(static_cast<double>(rounds) *
                  std::log1p(-plan.per_round_detection));
  plan.total_slots =
      static_cast<std::uint64_t>(rounds) * static_cast<std::uint64_t>(plan.frame_size);
  RFID_ENSURE(plan.predicted_detection > alpha,
              "amplified detection must satisfy the overall target");
  return plan;
}

MultiRoundPlan optimize_round_count(std::uint64_t n, std::uint64_t m,
                                    double alpha, std::uint32_t max_rounds,
                                    math::EmptySlotModel model) {
  RFID_EXPECT(max_rounds >= 1, "need at least one candidate round count");
  MultiRoundPlan best = plan_multi_round_trp(n, m, alpha, 1, model);
  for (std::uint32_t k = 2; k <= max_rounds; ++k) {
    const MultiRoundPlan candidate = plan_multi_round_trp(n, m, alpha, k, model);
    if (candidate.total_slots < best.total_slots) best = candidate;
  }
  return best;
}

MultiRoundTrpServer::MultiRoundTrpServer(std::vector<tag::TagId> ids,
                                         MonitoringPolicy policy,
                                         std::uint32_t rounds,
                                         hash::SlotHasher hasher)
    : single_(std::move(ids),
              MonitoringPolicy{
                  .tolerated_missing = policy.tolerated_missing,
                  .confidence = per_round_alpha(policy.confidence, rounds),
                  .model = policy.model},
              hasher),
      plan_(plan_multi_round_trp(single_.group_size(), policy.tolerated_missing,
                                 policy.confidence, rounds, policy.model)) {}

std::vector<TrpChallenge> MultiRoundTrpServer::issue_challenges(
    util::Rng& rng) const {
  std::vector<TrpChallenge> challenges;
  challenges.reserve(plan_.rounds);
  for (std::uint32_t k = 0; k < plan_.rounds; ++k) {
    challenges.push_back(single_.issue_challenge(rng));
  }
  return challenges;
}

Verdict MultiRoundTrpServer::verify(
    const std::vector<TrpChallenge>& challenges,
    const std::vector<bits::Bitstring>& reported) const {
  RFID_EXPECT(challenges.size() == plan_.rounds, "expected one challenge per round");
  RFID_EXPECT(reported.size() == plan_.rounds, "expected one bitstring per round");
  Verdict verdict;
  verdict.intact = true;
  for (std::uint32_t k = 0; k < plan_.rounds; ++k) {
    const Verdict round = single_.verify(challenges[k], reported[k]);
    if (!round.intact) {
      if (campaigns_mismatch_ != nullptr) campaigns_mismatch_->inc();
      return round;  // first failing round describes the alert
    }
  }
  if (campaigns_intact_ != nullptr) campaigns_intact_->inc();
  return verdict;
}

void MultiRoundTrpServer::set_metrics(obs::MetricsRegistry* registry) {
  single_.set_metrics(registry);
  if (registry == nullptr) {
    campaigns_intact_ = nullptr;
    campaigns_mismatch_ = nullptr;
    return;
  }
  campaigns_intact_ =
      &obs::catalog::multi_round_campaigns_total(*registry, "intact");
  campaigns_mismatch_ =
      &obs::catalog::multi_round_campaigns_total(*registry, "mismatch");
}

}  // namespace rfid::protocol
