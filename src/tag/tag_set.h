// TagSet: the paper's T* — a static population of n uniquely-identified tags.
//
// The factory guarantees unique IDs (random 96-bit EPCs with collision
// re-draw). steal_random() models the adversary physically removing tags:
// it partitions the set into (remaining, stolen) without changing tag state,
// matching the paper's assumption that stolen tags are out of reader range
// but otherwise intact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tag/tag.h"
#include "util/random.h"

namespace rfid::tag {

class TagSet {
 public:
  TagSet() = default;
  explicit TagSet(std::vector<Tag> tags) : tags_(std::move(tags)) {}

  /// Creates `count` tags with unique random 96-bit IDs drawn from `rng`.
  [[nodiscard]] static TagSet make_random(std::size_t count, util::Rng& rng);

  [[nodiscard]] std::size_t size() const noexcept { return tags_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tags_.empty(); }

  [[nodiscard]] std::span<Tag> tags() noexcept { return tags_; }
  [[nodiscard]] std::span<const Tag> tags() const noexcept { return tags_; }

  [[nodiscard]] const Tag& at(std::size_t i) const;
  [[nodiscard]] Tag& at(std::size_t i);

  /// All IDs, in set order (what the server records at enrollment time).
  [[nodiscard]] std::vector<TagId> ids() const;

  /// Removes `count` uniformly-random tags and returns them as a new set
  /// (the adversary's loot). Requires count <= size().
  [[nodiscard]] TagSet steal_random(std::size_t count, util::Rng& rng);

  /// Clears every tag's silenced flag (start of a new inventory round).
  void begin_round() noexcept;

 private:
  std::vector<Tag> tags_;
};

}  // namespace rfid::tag
