// Wire-level messages exchanged between server and reader.
//
// TRP uses a single (f, r) pair per round (Alg. 1); UTRP issues the frame
// size together with f random numbers up front (Alg. 5) — the reader must
// consume them strictly in order, one per re-seed, and has no discretion
// over any randomness.
#pragma once

#include <cstdint>
#include <vector>

namespace rfid::protocol {

/// TRP challenge (Sec. 4.2): one frame size and one random number. A fresh
/// challenge is issued per round so previously collected bitstrings replay
/// as garbage.
struct TrpChallenge {
  std::uint32_t frame_size = 0;
  std::uint64_t r = 0;
};

/// UTRP challenge (Alg. 5 line 1): (f, r_1, ..., r_f). seeds[0] opens the
/// frame; seeds[k] is used by the k-th re-seed.
struct UtrpChallenge {
  std::uint32_t frame_size = 0;
  std::vector<std::uint64_t> seeds;
};

/// Server-side verdict on a returned bitstring.
struct Verdict {
  bool intact = false;            // true: bitstring matched, set considered intact
  std::uint64_t mismatched_slots = 0;   // Hamming distance to the expected bitstring
  std::uint64_t first_mismatch_slot = 0;  // valid only when !intact
  bool deadline_met = true;       // UTRP: reader answered before the timer
};

}  // namespace rfid::protocol
