// The deadline arm of UTRP (Sec. 5.4), made executable.
//
// UTRP's security argument has two prongs: the bitstring must be *right*
// (Eq. 3 sizes the frame so a budget-c adversary fails the content check
// with probability > α) and it must arrive *on time* (the server's timer
// t = STmax bounds how many reader-to-reader exchanges the pair can afford:
// c = (t − STmin)/tcomm). This module closes the loop: it runs the
// mechanically-faithful split attack at an arbitrary budget and charges wall
//-clock for the walk AND for every consult, so the adversary's real dilemma
// is measurable — spend more messages and blow the deadline, or fewer and
// flunk the content check. bench/ablation_deadline sweeps that trade-off.
#pragma once

#include <cstdint>
#include <span>

#include "attack/utrp_attack.h"
#include "radio/timing.h"

namespace rfid::attack {

struct TimedAttackOutcome {
  bits::Bitstring forged;
  std::uint64_t comms_used = 0;
  double air_time_us = 0.0;    // R1's walk: query + slots + re-seeds
  double comm_time_us = 0.0;   // comms_used · tcomm
  double elapsed_us = 0.0;     // total
};

/// Runs the budgeted split attack and prices its wall-clock cost. `s1`/`s2`
/// mutate as in a real scan. Re-seed broadcasts are charged like an honest
/// reader's (the pair must re-seed the physical tags either way).
[[nodiscard]] TimedAttackOutcome run_timed_utrp_attack(
    std::span<tag::Tag> s1, std::span<tag::Tag> s2,
    const hash::SlotHasher& hasher, const protocol::UtrpChallenge& challenge,
    std::uint64_t comm_budget, const radio::TimingModel& timing,
    double comm_roundtrip_us);

/// Wall-clock of an honest UTRP scan with the given frame composition —
/// what the server measures when calibrating STmin/STmax.
[[nodiscard]] double honest_utrp_scan_us(const bits::Bitstring& bitstring,
                                         std::uint64_t reseeds,
                                         const radio::TimingModel& timing);

}  // namespace rfid::attack
