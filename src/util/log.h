// Leveled logging to stderr.
//
// The simulator is single-binary and offline, so a global sink with an
// atomic level threshold is sufficient; messages are formatted into a local
// buffer and written with one << to keep multi-threaded trial runners from
// interleaving partial lines.
#pragma once

#include <atomic>
#include <sstream>
#include <string_view>

namespace rfid::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted. Thread-safe.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void emit(LogLevel level, std::string_view message);
}

/// Usage: RFID_LOG(Info) << "optimized f=" << f;
/// The stream body is only evaluated when the level is enabled.
#define RFID_LOG(level_name)                                                   \
  for (bool rfid_log_once =                                                    \
           ::rfid::util::log_level() <= ::rfid::util::LogLevel::k##level_name; \
       rfid_log_once; rfid_log_once = false)                                   \
  ::rfid::util::detail::LineLogger(::rfid::util::LogLevel::k##level_name).stream()

namespace detail {

class LineLogger {
 public:
  explicit LineLogger(LogLevel level) : level_(level) {}
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;
  ~LineLogger() { emit(level_, buffer_.str()); }

  [[nodiscard]] std::ostream& stream() { return buffer_; }

 private:
  LogLevel level_;
  std::ostringstream buffer_;
};

}  // namespace detail

}  // namespace rfid::util
