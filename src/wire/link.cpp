#include "wire/link.h"

#include <utility>

#include "util/expect.h"

namespace rfid::wire {

double Link::delivery_delay() noexcept {
  double delay = config_.latency_us;
  if (config_.jitter_us > 0.0) delay += rng_.uniform() * config_.jitter_us;
  return delay;
}

bool Link::send(std::vector<std::byte> frame, const Handler& deliver) {
  RFID_EXPECT(deliver != nullptr, "null delivery handler");
  ++sent_;
  fault::FrameFate fate;
  if (injector_ != nullptr) fate = injector_->on_frame();
  if (fate.drop || (config_.drop_prob > 0.0 && rng_.chance(config_.drop_prob))) {
    ++dropped_;
    return false;
  }
  if (fate.corrupt && !frame.empty()) injector_->corrupt(frame);
  if (fate.duplicate) {
    // The duplicate takes its own independently-jittered path, so it can
    // arrive before or after the original — receivers must stay idempotent.
    ++sent_;
    queue_.schedule_after(delivery_delay(),
                          [deliver, payload = frame]() mutable {
                            deliver(std::move(payload));
                          });
  }
  queue_.schedule_after(delivery_delay() + fate.extra_delay_us,
                        [deliver, payload = std::move(frame)]() mutable {
                          deliver(std::move(payload));
                        });
  return true;
}

}  // namespace rfid::wire
