// Fleet throughput microbenchmark: complete wire sessions per second as a
// function of worker-thread count. Each iteration builds the same seeded
// 64-zone fleet (4 inventories of 16 TRP zones) and runs it to a verdict;
// items processed = zones, so google-benchmark's items_per_second column
// reads directly as sessions/sec. Because zone sessions are independent and
// observability is recorded post-run, throughput should scale near-linearly
// until the machine runs out of cores — the PR's acceptance bar is >2x at
// 4 threads over 1.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fleet/fleet.h"
#include "server/group_planner.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using namespace rfid;

constexpr int kInventories = 4;
constexpr std::uint64_t kTagsPerInventory = 320;
constexpr std::uint64_t kZoneCapacity = 20;  // => 16 zones per inventory

void BM_FleetSessionsPerSecond(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));

  // The population and plan are part of the scenario, not the measured
  // work: build them once and copy into each run's specs.
  util::Rng rng(808);
  std::vector<tag::TagSet> populations;
  for (int i = 0; i < kInventories; ++i) {
    populations.push_back(tag::TagSet::make_random(kTagsPerInventory, rng));
  }
  const server::GroupPlan plan =
      server::plan_groups({.total_tags = kTagsPerInventory,
                           .total_tolerance = 8,
                           .alpha = 0.95,
                           .max_group_size = kZoneCapacity});
  const std::uint64_t zones =
      static_cast<std::uint64_t>(plan.zones.size()) * kInventories;

  for (auto _ : state) {
    fleet::FleetOrchestrator orchestrator(
        {.seed = 4242, .threads = threads, .fleet_name = "bench"});
    for (int i = 0; i < kInventories; ++i) {
      fleet::InventorySpec spec;
      spec.name = "inv" + std::to_string(i);
      spec.tags = populations[static_cast<std::size_t>(i)];
      spec.plan = plan;
      spec.rounds = 1;
      orchestrator.submit(std::move(spec));
    }
    benchmark::DoNotOptimize(orchestrator.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(zones));
  state.counters["threads"] = threads;
}

void ThreadArgs(benchmark::internal::Benchmark* bench) {
  // Sweep 1..hardware_concurrency in powers of two, but always include at
  // least 1/2/4 so the scaling shape is visible even when the benchmark is
  // built on a small box and run on a big one.
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned top = hw > 4 ? hw : 4;
  for (unsigned t = 1; t <= top; t *= 2) {
    bench->Arg(static_cast<std::int64_t>(t));
  }
}

BENCHMARK(BM_FleetSessionsPerSecond)->Apply(ThreadArgs)->UseRealTime();

}  // namespace
