// InventoryServer: the secure back-end of Sec. 3, generalized to many groups.
//
// A retailer monitors heterogeneous groups of items — a shelf of razor
// blades with m = 0, a warehouse pallet area with m = 30 — each with its own
// protocol choice (TRP where readers are trusted, UTRP where they are not),
// tolerance, and confidence. The paper highlights this flexibility as an
// advantage over yoking-proof schemes whose on-tag timers hard-wire one
// group size (Sec. 2); InventoryServer is where that claim becomes API.
//
// The server also keeps an alert log: a warning is recorded whenever a
// round's bitstring mismatches or (UTRP) misses its deadline, together with
// a cardinality estimate from the returned bitstring to help triage how much
// stock is gone.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "estimate/cardinality.h"
#include "obs/metrics.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "util/random.h"

namespace rfid::server {

enum class ProtocolKind : std::uint8_t { kTrp, kUtrp };

[[nodiscard]] std::string_view to_string(ProtocolKind kind) noexcept;

struct GroupConfig {
  std::string name;
  protocol::MonitoringPolicy policy;
  ProtocolKind protocol = ProtocolKind::kTrp;
  std::uint64_t comm_budget = 20;  // UTRP: adversary communication budget c
  std::uint32_t slack_slots = 8;   // UTRP: extra slots over the Eq. (3) optimum
  /// Execution knob, not protocol state (never persisted): run the group's
  /// engine through the columnar bulk kernels. Off = scalar per-tag loops,
  /// bit-identical output (tests/columnar_diff_test.cpp).
  bool bulk_mode = true;
};

/// Opaque handle to an enrolled group.
struct GroupId {
  std::size_t index = 0;
  friend bool operator==(GroupId, GroupId) = default;
};

/// What an Alert records: a monitoring round that failed verification, or a
/// recovery action taken in response (so the log reads as a full incident
/// timeline: failure, then the resync that healed it).
enum class AlertKind : std::uint8_t { kRoundFailure, kResync };

[[nodiscard]] std::string_view to_string(AlertKind kind) noexcept;

struct Alert {
  /// Monotone per-server sequence number, assigned at record time. Keeps the
  /// incident timeline totally ordered even after the log round-trips
  /// through persistence (restore + journal replay must regenerate the same
  /// ordering — asserted by the storage torture tests).
  std::uint64_t sequence = 0;
  AlertKind kind = AlertKind::kRoundFailure;
  GroupId group;
  std::string group_name;
  std::uint64_t round = 0;
  std::uint64_t mismatched_slots = 0;
  bool deadline_missed = false;
  /// Zero-estimator triage: roughly how many tags the bitstring suggests
  /// were present (vs. the enrolled size). For kResync alerts, the audited
  /// group size.
  double estimated_present = 0.0;
  std::uint64_t enrolled_size = 0;
};

class InventoryServer {
 public:
  explicit InventoryServer(hash::SlotHasher hasher = hash::SlotHasher{})
      : hasher_(hasher) {}

  /// Enrolls a group from a physical audit of its tags. For UTRP groups the
  /// snapshot includes tag counters.
  GroupId enroll(const tag::TagSet& tags, GroupConfig config);

  /// Replaces a group's protocol engine in place from a fresh physical
  /// audit: same GroupId, same alert history (sequences keep counting), new
  /// membership and config. Rounds and the resync flag reset — the new
  /// engine has verified nothing yet. Re-enrolling a decommissioned group
  /// reactivates it. This is how a long-running daemon applies tag churn
  /// (enrollments, migrations) without rebuilding the whole server.
  void re_enroll(GroupId id, const tag::TagSet& tags, GroupConfig config);

  /// Tombstones a group: challenging or submitting against it becomes API
  /// misuse, but the GroupId stays valid — history keeps referencing it,
  /// and persistence round-trips the flag — so group indices (and with
  /// them every other GroupId) never shift.
  void decommission(GroupId id);
  [[nodiscard]] bool active(GroupId id) const;

  [[nodiscard]] std::size_t group_count() const noexcept { return groups_.size(); }
  [[nodiscard]] const GroupConfig& config(GroupId id) const;
  [[nodiscard]] std::uint64_t group_size(GroupId id) const;
  /// The frame size this group's challenges use (Eq. 2 or Eq. 3 + slack).
  [[nodiscard]] std::uint32_t frame_size(GroupId id) const;
  [[nodiscard]] std::uint64_t rounds_completed(GroupId id) const;

  /// Round driver, TRP groups.
  [[nodiscard]] protocol::TrpChallenge challenge_trp(GroupId id, util::Rng& rng) const;
  protocol::Verdict submit_trp(GroupId id, const protocol::TrpChallenge& challenge,
                               const bits::Bitstring& reported);

  /// Round driver, UTRP groups. `deadline_met` is the Alg. 5 timer check.
  [[nodiscard]] protocol::UtrpChallenge challenge_utrp(GroupId id, util::Rng& rng) const;
  protocol::Verdict submit_utrp(GroupId id, const protocol::UtrpChallenge& challenge,
                                const bits::Bitstring& reported, bool deadline_met);

  /// All alerts raised so far, oldest first.
  [[nodiscard]] const std::vector<Alert>& alerts() const noexcept { return alerts_; }
  /// True when the UTRP group's mirror may have diverged (post-alert).
  [[nodiscard]] bool needs_resync(GroupId id) const;

  /// Recovery flow for a diverged UTRP mirror: re-commits the mirror from a
  /// trusted physical audit (IDs + counters — e.g. a snapshot refreshed at
  /// the shelf), clears needs_resync, and records a kResync alert so the
  /// incident log shows the recovery alongside the failure that caused it.
  /// The audit must cover exactly the enrolled group.
  void resync(GroupId id, const tag::TagSet& audited);

  /// Copy of a UTRP group's mirrored database (IDs + counters as the server
  /// believes them) — what an operator diffs against a physical audit.
  [[nodiscard]] tag::TagSet utrp_mirror(GroupId id) const;

  /// The group's tags as persistence must record them: enrolled IDs for TRP
  /// (counters are not protocol state there), the live counter mirror for
  /// UTRP. This is what save_snapshot needs to capture a *running* server,
  /// not just a fresh enrollment.
  [[nodiscard]] tag::TagSet group_tags(GroupId id) const;

  /// Per-group state the snapshot's AUX section persists alongside the tag
  /// database (see storage/server_state.h).
  struct GroupState {
    std::uint64_t rounds = 0;
    bool needs_resync = false;
    bool active = true;  // false = decommissioned tombstone
  };
  [[nodiscard]] GroupState group_state(GroupId id) const;

  /// Recovery hook for the storage layer: reinstates history that predates
  /// the newest snapshot (round counts, diverged-mirror flags, the alert
  /// log with its sequence numbers). Only valid on a freshly restored
  /// server that has completed no rounds; not for normal operation.
  void restore_history(std::vector<Alert> alerts,
                       const std::vector<GroupState>& states);

  /// Attaches an observability registry to this server and every enrolled
  /// protocol engine (present and future): verdicts, alerts, resyncs, and
  /// enrollments are counted, and engines record their per-round series.
  /// Pass nullptr to detach. The registry must outlive this server.
  void attach_metrics(obs::MetricsRegistry* registry);

  /// Live entries in the expected-bitstring cache (introspection for the
  /// invalidation tests; not part of the monitoring API).
  [[nodiscard]] std::size_t expected_cache_entries() const noexcept {
    return expected_cache_.size();
  }

 private:
  struct Group {
    GroupConfig config;
    std::variant<protocol::TrpServer, protocol::UtrpServer> engine;
    std::uint64_t rounds = 0;
    bool active = true;
  };

  /// One memoized TRP expectation. Deterministic slot choice (Sec. 4.1)
  /// makes the expected bitstring a pure function of (group membership, r,
  /// f), so repeated challenges — retries after wire failures, periodic
  /// re-verification under a pinned challenge — reduce to O(f/64) word
  /// compares. Bounded FIFO; membership changes invalidate by group.
  struct CachedExpectation {
    std::size_t group = 0;
    std::uint64_t r = 0;
    std::uint32_t frame_size = 0;
    bits::Bitstring expected;
  };
  static constexpr std::size_t kExpectedCacheCapacity = 64;

  [[nodiscard]] const Group& group(GroupId id) const;
  [[nodiscard]] Group& group(GroupId id);
  void record_alert(GroupId id, const protocol::Verdict& verdict,
                    const bits::Bitstring& reported);
  [[nodiscard]] const bits::Bitstring* find_expected(
      GroupId id, const protocol::TrpChallenge& challenge) const;
  void store_expected(GroupId id, const protocol::TrpChallenge& challenge,
                      bits::Bitstring expected);
  /// Drops every cached expectation for `id` (membership or engine changed).
  void invalidate_expected(GroupId id);

  hash::SlotHasher hasher_;
  std::vector<Group> groups_;
  std::vector<Alert> alerts_;
  std::uint64_t next_alert_sequence_ = 0;
  std::vector<CachedExpectation> expected_cache_;
  std::size_t expected_cache_next_ = 0;  // overwrite cursor once full
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace rfid::server
