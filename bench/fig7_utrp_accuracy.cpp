// Figure 7 — "Accuracy of UTRP with alpha = 0.95" (4 panels, c = 20).
//
// For each (n, m): size the frame with Eq. (3) (+ the paper's slack), then
// run --trials independent rounds of the best two-reader strategy from
// Sec. 5.4 in its analysis-faithful form (run_utrp_static_model_attack):
// the returned bitstring is correct over the coordinated prefix [0, c') and
// shows only the remaining tags afterwards; the server detects iff a stolen
// tag exposes an empty slot after c'. The paper's bars hover just above the
// 0.95 line. The mechanically-faithful re-seeding attack gives detection a
// shade higher — quantified by bench/ablation_attack_model.
#include <cstdint>

#include "attack/utrp_attack.h"
#include "bench_common.h"
#include "math/frame_optimizer.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const auto opt = bench::parse_figure_options(argc, argv);
  const sim::TrialRunner runner(opt.threads);

  bench::banner("Figure 7: UTRP detection probability under the best "
                "two-reader attack (c = " +
                std::to_string(opt.budget) +
                ", alpha = " + util::format_double(opt.alpha, 2) + ", " +
                std::to_string(opt.trials) + " trials/point)");

  for (const std::uint64_t m : bench::tolerance_panels()) {
    util::Table table({"n", "frame_f", "detect_prob", "wilson_lo", "wilson_hi",
                       "above_alpha"});
    std::vector<double> xs;
    util::ChartSeries detect_series{"detection probability", {}, '*'};
    for (const std::uint64_t n : bench::tag_count_sweep(opt)) {
      if (m + 1 > n) continue;
      const auto plan =
          math::optimize_utrp_frame(n, m, opt.alpha, opt.budget, 8, opt.model);
      const hash::SlotHasher hasher;
      const auto result = runner.run_boolean(
          opt.trials, util::derive_seed(opt.seed, n, m),
          [&](std::uint64_t, util::Rng& rng) {
            tag::TagSet set = tag::TagSet::make_random(n, rng);
            const tag::TagSet stolen = set.steal_random(m + 1, rng);
            const auto trial = attack::run_utrp_static_model_attack(
                set.tags(), stolen.tags(), hasher, plan.frame_size, rng(),
                opt.budget);
            return trial.detected;
          });
      const auto ci = result.wilson();
      table.begin_row();
      table.add_cell(static_cast<long long>(n));
      table.add_cell(static_cast<long long>(plan.frame_size));
      table.add_cell(result.proportion(), 4);
      table.add_cell(ci.lo, 4);
      table.add_cell(ci.hi, 4);
      table.add_cell(std::string(result.proportion() > opt.alpha ? "yes" : "no"));
      xs.push_back(static_cast<double>(n));
      detect_series.ys.push_back(result.proportion());
    }
    std::cout << "--- Tolerate m=" << m << ", c=" << opt.budget << " ---\n";
    bench::emit(table, opt);
    bench::maybe_plot(opt, xs, {detect_series},
                      "detection vs n (m=" + std::to_string(m) + ")", opt.alpha);
  }
  return 0;
}
