// Shared scaffolding for the figure-reproduction binaries.
//
// Every figure bench accepts the same sweep options so EXPERIMENTS.md runs
// are reproducible and parameterizable:
//   --trials N     Monte-Carlo trials per data point (paper: 1000)
//   --seed S       master seed (per-trial streams derive deterministically)
//   --threads T    worker threads (0 = hardware concurrency)
//   --csv          emit machine-readable CSV instead of aligned tables
//   --nmin/--nmax/--nstep   tag-count sweep (paper: 100..2000 step 100)
//   --alpha A      confidence level (paper: 0.95)
//   --budget C     UTRP adversary communication budget (paper: 20)
//   --model M      empty-slot model for frame sizing: "poisson" (paper's
//                  approximation, default) or "exact" ((1-1/f)^n; slightly
//                  larger frames that keep simulated detection above alpha)
//   --plot         additionally render the panel as an ASCII chart
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "math/detection.h"
#include "util/ascii_chart.h"
#include "util/cli.h"
#include "util/expect.h"
#include "util/table.h"

namespace rfid::bench {

struct FigureOptions {
  std::uint64_t trials = 1000;
  std::uint64_t seed = 20080617;  // ICDCS 2008 opening day
  unsigned threads = 0;
  bool csv = false;
  std::uint64_t n_min = 100;
  std::uint64_t n_max = 2000;
  std::uint64_t n_step = 100;
  double alpha = 0.95;
  std::uint64_t budget = 20;
  math::EmptySlotModel model = math::EmptySlotModel::kPoissonApprox;
  bool plot = false;
};

/// Parses the common options plus any bench-specific `extra` option names.
inline FigureOptions parse_figure_options(int argc, const char* const* argv,
                                          util::CliArgs** extra_out = nullptr,
                                          std::vector<std::string> extra = {}) {
  std::vector<std::string> allowed{"trials", "seed",  "threads", "csv",
                                   "nmin",   "nmax",  "nstep",   "alpha",
                                   "budget", "model", "plot"};
  for (auto& e : extra) allowed.push_back(std::move(e));
  static util::CliArgs* args = nullptr;  // leak-free enough for a main()
  args = new util::CliArgs(argc, argv, allowed);
  if (extra_out != nullptr) *extra_out = args;

  FigureOptions opt;
  opt.trials = static_cast<std::uint64_t>(args->get_int_or("trials", 1000));
  opt.seed = static_cast<std::uint64_t>(args->get_int_or("seed", 20080617));
  opt.threads = static_cast<unsigned>(args->get_int_or("threads", 0));
  opt.csv = args->get_bool("csv");
  opt.n_min = static_cast<std::uint64_t>(args->get_int_or("nmin", 100));
  opt.n_max = static_cast<std::uint64_t>(args->get_int_or("nmax", 2000));
  opt.n_step = static_cast<std::uint64_t>(args->get_int_or("nstep", 100));
  opt.alpha = args->get_double_or("alpha", 0.95);
  opt.budget = static_cast<std::uint64_t>(args->get_int_or("budget", 20));
  const std::string model = args->get_or("model", "poisson");
  RFID_EXPECT(model == "poisson" || model == "exact",
              "--model must be poisson or exact");
  opt.model = model == "exact" ? math::EmptySlotModel::kExact
                               : math::EmptySlotModel::kPoissonApprox;
  opt.plot = args->get_bool("plot");
  return opt;
}

inline std::vector<std::uint64_t> tag_count_sweep(const FigureOptions& opt) {
  std::vector<std::uint64_t> ns;
  for (std::uint64_t n = opt.n_min; n <= opt.n_max; n += opt.n_step) {
    ns.push_back(n);
  }
  return ns;
}

/// The paper's tolerance panels (Figs. 4–7 each show m = 5, 10, 20, 30).
inline const std::vector<std::uint64_t>& tolerance_panels() {
  static const std::vector<std::uint64_t> kPanels{5, 10, 20, 30};
  return kPanels;
}

inline void emit(const util::Table& table, const FigureOptions& opt) {
  if (opt.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << '\n';
}

inline void banner(const std::string& title) {
  std::cout << "=== " << title << " ===\n\n";
}

/// Renders a panel as an ASCII chart when --plot was requested.
inline void maybe_plot(const FigureOptions& opt, const std::vector<double>& xs,
                       const std::vector<util::ChartSeries>& series,
                       std::string title,
                       double reference_y = util::ChartOptions::kNoReference) {
  if (!opt.plot || xs.size() < 2) return;
  util::ChartOptions chart;
  chart.title = std::move(title);
  chart.reference_y = reference_y;
  std::cout << util::render_ascii_chart(xs, series, chart) << '\n';
}

}  // namespace rfid::bench
