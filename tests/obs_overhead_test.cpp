// Perf smoke test: attaching a MetricsRegistry must not slow the TRP hot
// path by more than 5%. The instrumented round adds a handful of relaxed
// atomic increments to a frame-sized verification loop, so the real budget
// is far below the asserted ceiling — this test exists to catch an
// accidental reintroduction of per-round family lookups (mutex + map) into
// the hot path. bench/micro_obs.cpp measures the same thing with
// statistical rigor; here we take min-of-trials to shrug off scheduler
// noise and keep CI green.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "protocol/trp.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using namespace rfid;

/// Wall time for `rounds` full TRP rounds (challenge + expected + verify).
/// [[maybe_unused]]: sanitized/unoptimized builds compile the test body out.
[[nodiscard]] [[maybe_unused]] double run_rounds_us(
    const protocol::TrpServer& server,
                                   std::uint64_t rounds, util::Rng& rng,
                                   std::uint64_t& sink) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < rounds; ++i) {
    const auto challenge = server.issue_challenge(rng);
    const auto expected = server.expected_bitstring(challenge);
    const auto verdict = server.verify(challenge, expected);
    sink += verdict.intact ? challenge.frame_size : 0;
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count();
}

TEST(ObsOverhead, InstrumentedTrpRoundWithinFivePercent) {
#if defined(RFIDMON_SANITIZED_BUILD)
  GTEST_SKIP() << "timing is meaningless under sanitizers";
#elif defined(RFIDMON_UNOPTIMIZED_BUILD)
  GTEST_SKIP() << "timing is meaningless without optimization";
#else
  util::Rng rng(404);
  // 4000 tags: with the columnar bulk kernels a 500-tag round is ~1.5us,
  // putting the handful of constant per-round atomics at the 5% line by
  // themselves. At this size the frame work dominates again, so the ratio
  // only trips on the real failure mode (per-round registry lookups).
  const tag::TagSet set = tag::TagSet::make_random(4000, rng);
  protocol::TrpServer server(set.ids(),
                             {.tolerated_missing = 40, .confidence = 0.95});
  obs::MetricsRegistry registry;
  constexpr std::uint64_t kRounds = 400;
  constexpr int kTrials = 7;
  std::uint64_t sink = 0;

  // Warm-up: fault in code and allocator state before either timer runs.
  (void)run_rounds_us(server, kRounds / 4, rng, sink);

  double plain_us = std::numeric_limits<double>::infinity();
  double instrumented_us = std::numeric_limits<double>::infinity();
  for (int trial = 0; trial < kTrials; ++trial) {
    server.set_metrics(nullptr);
    plain_us = std::min(plain_us, run_rounds_us(server, kRounds, rng, sink));
    server.set_metrics(&registry);
    instrumented_us =
        std::min(instrumented_us, run_rounds_us(server, kRounds, rng, sink));
  }
  ASSERT_GT(sink, 0u);  // defeat dead-code elimination
  ASSERT_GT(plain_us, 0.0);

  const double overhead = instrumented_us / plain_us - 1.0;
  RecordProperty("plain_us", static_cast<int>(plain_us));
  RecordProperty("instrumented_us", static_cast<int>(instrumented_us));
  EXPECT_LT(overhead, 0.05)
      << "instrumented=" << instrumented_us << "us plain=" << plain_us
      << "us — did a family lookup sneak into the hot path?";
#endif
}

}  // namespace
