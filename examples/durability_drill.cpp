// Durability drill: persist -> "crash" -> recover -> verify, on real files.
//
// The storage layer's crash story is proven exhaustively against an
// in-memory backend (tests/storage_torture_test.cpp); this example exercises
// the same machinery end-to-end on disk, the way a deployment would run it:
//
//   1. open a durable server on a directory, enroll a TRP and a UTRP group,
//      drive monitoring rounds (one of them a theft, one a rogue scan that
//      forces a resync), checkpoint mid-way;
//   2. drop the server WITHOUT any shutdown handshake — the journal is the
//      only goodbye it gets;
//   3. reopen the directory in a fresh server and verify the recovered state
//      is bit-identical (dump_state fingerprint) and the next monitoring
//      round still verifies the live tags.
//
// Exits non-zero on any mismatch, so scripts/run_all.sh uses it as the
// persist->crash->recover smoke test. Usage:
//   durability_drill [state-dir]     (default: ./rfidmon-drill-state)
#include <cstdio>
#include <filesystem>
#include <string>

#include "rfidmon.h"

using namespace rfid;

namespace {

server::GroupConfig make_config(std::string name, server::ProtocolKind kind) {
  server::GroupConfig config;
  config.name = std::move(name);
  config.policy = {.tolerated_missing = 3, .confidence = 0.95};
  config.protocol = kind;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "rfidmon-drill-state";
  std::filesystem::remove_all(dir);  // a drill starts from nothing

  util::Rng rng(2008);
  tag::TagSet shelf = tag::TagSet::make_random(150, rng);
  tag::TagSet cage = tag::TagSet::make_random(90, rng);
  const protocol::TrpReader trp_reader;
  const protocol::UtrpReader utrp_reader;

  std::string fingerprint;
  std::size_t alerts_before = 0;
  {
    storage::FileBackend backend(dir);
    storage::DurableInventoryServer durable(backend);
    const auto g0 =
        durable.enroll(shelf, make_config("shelf", server::ProtocolKind::kTrp));
    const auto g1 =
        durable.enroll(cage, make_config("cage", server::ProtocolKind::kUtrp));

    // An intact TRP round, then a theft the server must flag.
    auto c = durable.challenge_trp(g0, rng);
    (void)durable.submit_trp(g0, c, trp_reader.scan(shelf.tags(), c, rng));
    tag::TagSet looted = shelf;
    (void)looted.steal_random(40, rng);
    c = durable.challenge_trp(g0, rng);
    (void)durable.submit_trp(g0, c, trp_reader.scan(looted.tags(), c, rng));

    durable.rotate();  // checkpoint mid-history

    // UTRP: an intact round, a rogue scan (mirror diverges), and the healing
    // resync — all of it journaled after the checkpoint.
    auto u = durable.challenge_utrp(g1, rng);
    (void)durable.submit_utrp(g1, u, utrp_reader.scan(cage.tags(), u).bitstring,
                              /*deadline_met=*/true);
    cage.begin_round();
    tag::TagSet rogue = cage;
    (void)rogue.steal_random(20, rng);
    u = durable.challenge_utrp(g1, rng);
    (void)durable.submit_utrp(g1, u, utrp_reader.scan(rogue.tags(), u).bitstring,
                              /*deadline_met=*/true);
    durable.resync(g1, cage);

    fingerprint = storage::dump_state(durable.server());
    alerts_before = durable.server().alerts().size();
    std::printf("persisted: %zu groups, %zu alerts, generation %llu\n",
                durable.server().group_count(), alerts_before,
                static_cast<unsigned long long>(durable.generation()));
  }  // <- the "crash": no shutdown, no final snapshot, scope just ends

  storage::FileBackend backend(dir);
  storage::DurableInventoryServer recovered(backend);
  const auto& report = recovered.recovery_report();
  std::printf(
      "recovered: base generation %llu, %llu records replayed, clean=%d\n",
      static_cast<unsigned long long>(report.base_generation),
      static_cast<unsigned long long>(report.records_replayed),
      report.clean() ? 1 : 0);

  if (storage::dump_state(recovered.server()) != fingerprint) {
    std::fprintf(stderr, "FAIL: recovered state differs from persisted state\n");
    return 1;
  }
  if (recovered.server().alerts().size() != alerts_before) {
    std::fprintf(stderr, "FAIL: alert timeline lost in recovery\n");
    return 1;
  }
  // The recovered mirror must still verify the real, live tags.
  const server::GroupId g1{1};
  const auto u = recovered.challenge_utrp(g1, rng);
  const auto verdict = recovered.submit_utrp(
      g1, u, utrp_reader.scan(cage.tags(), u).bitstring, /*deadline_met=*/true);
  if (!verdict.intact) {
    std::fprintf(stderr, "FAIL: recovered mirror rejects the live tags\n");
    return 1;
  }
  std::printf("OK: recovered state is bit-identical and still monitoring\n");
  std::filesystem::remove_all(dir);
  return 0;
}
