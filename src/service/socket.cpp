#include "service/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

namespace rfid::service {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::set_nonblocking(bool on) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, next) < 0) throw_errno("fcntl(F_SETFL)");
}

void Socket::set_receive_timeout(std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0) {
    throw_errno("setsockopt(SO_RCVTIMEO)");
  }
}

long Socket::read_some(std::span<std::byte> out) {
  for (;;) {
    const ssize_t n = ::recv(fd_, out.data(), out.size(), 0);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    // Treat a reset peer like an orderly close: the connection is simply
    // gone, which the caller already handles.
    if (errno == ECONNRESET) return 0;
    throw_errno("recv");
  }
}

long Socket::write_some(std::span<const std::byte> data) {
  for (;;) {
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw_errno("send");
  }
}

bool Socket::send_all(std::span<const std::byte> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Blocking socket with a send buffer full of a slow peer: wait for
      // writability rather than spinning.
      pollfd pfd{fd_, POLLOUT, 0};
      (void)::poll(&pfd, 1, 1000);
      continue;
    }
    return false;
  }
  return true;
}

bool Socket::recv_all(std::span<std::byte> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::recv(fd_, out.data() + got, out.size() - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // close, timeout, or error
  }
  return true;
}

Listener::Listener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  socket_ = Socket(fd);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind");
  }
  if (::listen(fd, 1024) < 0) throw_errno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  socket_.set_nonblocking(true);
}

std::optional<Socket> Listener::accept() {
  for (;;) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket conn(fd);
      conn.set_nonblocking(true);
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return conn;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
    if (errno == ECONNABORTED) continue;  // peer gave up while queued
    throw_errno("accept");
  }
}

Socket connect_loopback(std::uint16_t port, std::chrono::milliseconds timeout) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);
  sock.set_nonblocking(true);
  sockaddr_in addr = loopback_addr(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) throw_errno("connect");
    pollfd pfd{fd, POLLOUT, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (ready <= 0) {
      errno = ETIMEDOUT;
      throw_errno("connect (timeout)");
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0) {
      throw_errno("getsockopt(SO_ERROR)");
    }
    if (soerr != 0) {
      errno = soerr;
      throw_errno("connect");
    }
  }
  sock.set_nonblocking(false);
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) < 0) throw_errno("pipe");
  read_end_ = Socket(fds[0]);
  write_end_ = Socket(fds[1]);
  read_end_.set_nonblocking(true);
  write_end_.set_nonblocking(true);
}

void WakePipe::wake() noexcept {
  const char byte = 'w';
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  (void)!::write(write_end_.fd(), &byte, 1);
}

void WakePipe::drain() noexcept {
  char buf[256];
  while (::read(read_end_.fd(), buf, sizeof(buf)) > 0) {
  }
}

std::uint64_t raise_fd_limit() noexcept {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur < lim.rlim_max) {
    rlimit raised = lim;
    raised.rlim_cur = lim.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return static_cast<std::uint64_t>(lim.rlim_cur);
}

}  // namespace rfid::service
