// identify_drill — from "something is missing" to naming what was stolen.
//
// Act 1 — detection alone: 12 of 150 tags are stolen; the fleet flags the
//         zone `violated` (tolerance m exceeded) but the verdict is
//         anonymous — TRP proves *that* tags are gone, not *which*.
// Act 2 — the drill-down: the same run with `identify.enabled` appends one
//         filter-first identification campaign per violated zone. The
//         campaign names exactly the stolen tags (no tag ever transmits
//         its ID; absence needs consecutive-round confirmation, so no
//         false accusations) and the fleet summary prints them.
// Act 3 — the daemon: under continuous monitoring, the epoch's theft alert
//         carries the named tags through the crash-atomic checkpoint —
//         the alert history a resumed daemon replays includes the names.
//
// Self-checking: every claim above is asserted; exits 1 on any violation
// of them (and the scenario *is* a theft, so the monitoring verdicts must
// come back violated, never intact).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "daemon/daemon.h"
#include "rfidmon.h"
#include "storage/backend.h"

namespace {

using namespace rfid;

void check(bool ok, const char* what) {
  if (ok) return;
  std::printf("DRILL FAILED: %s\n", what);
  std::exit(1);
}

fleet::FleetResult run_fleet(bool drill_down,
                             std::vector<tag::TagId>* stolen_out) {
  fleet::FleetOrchestrator orchestrator(
      {.seed = 2008, .threads = 2, .fleet_name = "drill"});
  util::Rng rng(2008);
  fleet::InventorySpec spec;
  spec.name = "electronics";
  spec.tags = tag::TagSet::make_random(150, rng);
  spec.plan = server::plan_groups({.total_tags = 150,
                                   .total_tolerance = 4,
                                   .alpha = 0.95,
                                   .max_group_size = 50});
  spec.rounds = 2;
  for (std::uint64_t t = 0; t < 12; ++t) {
    spec.stolen.push_back(t);
    if (stolen_out != nullptr) {
      stolen_out->push_back(spec.tags.tags()[t].id());
    }
  }
  spec.identify.enabled = drill_down;  // kFilterFirst by default
  orchestrator.submit(std::move(spec));
  return orchestrator.run();
}

}  // namespace

int main() {
  using namespace rfid;

  std::printf("=== Act 1: detection proves THAT, not WHICH ===\n");
  std::printf("12 of 150 tags stolen from zone 0 (tolerance M = 4).\n");
  const fleet::FleetResult anonymous = run_fleet(false, nullptr);
  check(anonymous.verdict == fleet::GlobalVerdict::kViolated,
        "detection must flag the theft");
  check(anonymous.zones_identified == 0,
        "no drill-down was requested, none may run");
  std::printf("verdict: VIOLATED — but every stolen tag is anonymous.\n\n");

  std::printf("=== Act 2: the identification drill-down ===\n");
  std::vector<tag::TagId> stolen;
  const fleet::FleetResult named = run_fleet(true, &stolen);
  check(named.verdict == fleet::GlobalVerdict::kViolated,
        "the drill-down must not change the verdict");
  check(named.zones_identified >= 1, "a violated zone must be drilled");
  check(named.tags_named == stolen.size(),
        "every stolen tag must be named, none invented");
  std::vector<tag::TagId> accused;
  for (const fleet::ZoneReport& zone : named.inventories.at(0).zones) {
    const fleet::ZoneIdentification& id = zone.identification;
    if (!id.ran) continue;
    check(id.unresolved == 0, "this clean channel must resolve every tag");
    std::printf("zone %llu [%s]: %zu missing named in %llu rounds, "
                "%llu slots (%llu tree), est. missing %.1f\n",
                static_cast<unsigned long long>(zone.zone),
                id.protocol.c_str(), id.missing.size(),
                static_cast<unsigned long long>(id.rounds),
                static_cast<unsigned long long>(id.slots),
                static_cast<unsigned long long>(id.tree_queries),
                id.estimated_missing);
    accused.insert(accused.end(), id.missing.begin(), id.missing.end());
  }
  check(accused == stolen,
        "the named set must equal the stolen set, in enrolled order");
  for (const tag::TagId& id : accused) {
    std::printf("  missing %s\n", id.to_string().c_str());
  }
  std::printf("\n");

  std::printf("=== Act 3: named tags survive the daemon's checkpoint ===\n");
  storage::MemoryBackend backend;
  daemon::WarehouseConfig warehouse;
  warehouse.initial_tags = 90;
  warehouse.tolerance = 3;
  warehouse.zone_capacity = 30;
  warehouse.rounds = 2;
  warehouse.identify.enabled = true;
  warehouse.churn.push_back(daemon::ChurnEvent{
      .epoch = 1, .enroll = 0, .decommission = 0, .steal = 7,
      .steal_from = 0});
  daemon::DaemonConfig config;
  config.seed = 11;
  config.epochs = 3;
  config.backend = &backend;
  daemon::MonitorDaemon daemon(config, warehouse);
  const daemon::DaemonResult result = daemon.run();
  bool alerted = false;
  for (const daemon::DaemonAlert& alert : result.alerts) {
    if (alert.kind != daemon::DaemonAlertKind::kZoneViolated) continue;
    check(!alert.missing_tags.empty(),
          "the theft alert must carry the named tags");
    alerted = true;
  }
  check(alerted, "the daemon must raise a zone-violated alert");
  std::printf("%s", daemon::render_alert_history(result.alerts).c_str());
  std::printf("\nThe names ride INSIDE the epoch checkpoint (journal format "
              "3),\nso a daemon killed at any point resumes with this exact "
              "history\n(tests/daemon_test.cpp pins the bit-identity).\n");
  return 0;
}
