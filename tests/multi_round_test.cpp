// Tests for multi-round TRP amplification.
#include <gtest/gtest.h>

#include <stdexcept>

#include "protocol/multi_round.h"
#include "protocol/trp.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::protocol::MonitoringPolicy;
using rfid::protocol::MultiRoundTrpServer;
using rfid::protocol::optimize_round_count;
using rfid::protocol::plan_multi_round_trp;
using rfid::protocol::TrpReader;
using rfid::tag::TagSet;

TEST(MultiRoundPlan, OneRoundEqualsEq2) {
  const auto multi = plan_multi_round_trp(1000, 10, 0.95, 1);
  const auto single = rfid::math::optimize_trp_frame(1000, 10, 0.95);
  EXPECT_EQ(multi.frame_size, single.frame_size);
  EXPECT_DOUBLE_EQ(multi.per_round_alpha, 0.95);
  EXPECT_EQ(multi.total_slots, single.frame_size);
}

TEST(MultiRoundPlan, AmplifiedDetectionClearsTarget) {
  for (const std::uint32_t k : {2u, 3u, 5u, 10u}) {
    const auto plan = plan_multi_round_trp(500, 5, 0.95, k);
    EXPECT_GT(plan.predicted_detection, 0.95) << "k=" << k;
    EXPECT_LT(plan.per_round_alpha, 0.95);
    EXPECT_EQ(plan.total_slots,
              static_cast<std::uint64_t>(k) * plan.frame_size);
  }
}

TEST(MultiRoundPlan, PerRoundAlphaFormula) {
  const auto plan = plan_multi_round_trp(500, 5, 0.99, 2);
  // 1 - (1-0.99)^(1/2) = 1 - 0.1 = 0.9.
  EXPECT_NEAR(plan.per_round_alpha, 0.9, 1e-12);
}

TEST(MultiRoundPlan, StrictPoliciesGainMassively) {
  // The headline: m = 0 at alpha = 0.99 is ~5x cheaper split into rounds.
  const auto single = plan_multi_round_trp(1000, 0, 0.99, 1);
  const auto best = optimize_round_count(1000, 0, 0.99, 16);
  EXPECT_GT(best.rounds, 1u);
  EXPECT_LT(best.total_slots, single.total_slots / 3);
}

TEST(MultiRoundPlan, LoosePoliciesPreferOneRound) {
  // With m = 30 at alpha = 0.9 a single frame is already cheap; splitting
  // must not be forced (ties break toward fewer rounds).
  const auto best = optimize_round_count(1000, 30, 0.90, 8);
  const auto single = plan_multi_round_trp(1000, 30, 0.90, 1);
  EXPECT_LE(best.total_slots, single.total_slots);
  if (best.total_slots == single.total_slots) {
    EXPECT_EQ(best.rounds, 1u);
  }
}

TEST(MultiRoundPlan, RejectsBadInputs) {
  EXPECT_THROW((void)plan_multi_round_trp(100, 5, 0.95, 0), std::invalid_argument);
  EXPECT_THROW((void)plan_multi_round_trp(100, 5, 1.0, 2), std::invalid_argument);
  EXPECT_THROW((void)optimize_round_count(100, 5, 0.95, 0), std::invalid_argument);
}

TEST(MultiRoundServer, IntactSetPassesAllRounds) {
  rfid::util::Rng rng(1);
  const TagSet set = TagSet::make_random(300, rng);
  const MultiRoundTrpServer server(
      set.ids(), MonitoringPolicy{.tolerated_missing = 5, .confidence = 0.99}, 3);
  const TrpReader reader;
  const auto challenges = server.issue_challenges(rng);
  ASSERT_EQ(challenges.size(), 3u);
  std::vector<rfid::bits::Bitstring> reported;
  for (const auto& c : challenges) {
    EXPECT_EQ(c.frame_size, server.plan().frame_size);
    reported.push_back(reader.scan(set.tags(), c, rng));
  }
  EXPECT_TRUE(server.verify(challenges, reported).intact);
}

TEST(MultiRoundServer, ChallengesUseDistinctRandomness) {
  rfid::util::Rng rng(2);
  const TagSet set = TagSet::make_random(100, rng);
  const MultiRoundTrpServer server(
      set.ids(), MonitoringPolicy{.tolerated_missing = 2, .confidence = 0.95}, 4);
  const auto challenges = server.issue_challenges(rng);
  for (std::size_t i = 0; i < challenges.size(); ++i) {
    for (std::size_t j = i + 1; j < challenges.size(); ++j) {
      EXPECT_NE(challenges[i].r, challenges[j].r);
    }
  }
}

TEST(MultiRoundServer, VerifyRejectsWrongRoundCount) {
  rfid::util::Rng rng(3);
  const TagSet set = TagSet::make_random(50, rng);
  const MultiRoundTrpServer server(
      set.ids(), MonitoringPolicy{.tolerated_missing = 2, .confidence = 0.95}, 2);
  const auto challenges = server.issue_challenges(rng);
  EXPECT_THROW((void)server.verify(challenges, {}), std::invalid_argument);
}

TEST(MultiRoundServer, AmplificationHoldsEmpirically) {
  // The empirical heart: per-round frames sized at alpha_k = 0.684 (k=3,
  // alpha=0.9685...) must still catch m+1 thieves at >= the overall alpha.
  constexpr std::uint64_t kTags = 400;
  constexpr std::uint64_t kTolerance = 5;
  constexpr double kAlpha = 0.95;
  constexpr std::uint32_t kRounds = 3;
  const rfid::sim::TrialRunner runner;
  const auto outcome = runner.run_boolean(
      600, 42, [&](std::uint64_t, rfid::util::Rng& rng) {
        TagSet set = TagSet::make_random(kTags, rng);
        const MultiRoundTrpServer server(
            set.ids(),
            MonitoringPolicy{.tolerated_missing = kTolerance, .confidence = kAlpha},
            kRounds);
        (void)set.steal_random(kTolerance + 1, rng);
        const TrpReader reader;
        const auto challenges = server.issue_challenges(rng);
        std::vector<rfid::bits::Bitstring> reported;
        for (const auto& c : challenges) {
          reported.push_back(reader.scan(set.tags(), c, rng));
        }
        return !server.verify(challenges, reported).intact;
      });
  EXPECT_GT(outcome.proportion(), kAlpha - 0.025);  // 600-trial noise margin
}

TEST(MultiRoundServer, CheaperThanSingleRoundForStrictPolicy) {
  rfid::util::Rng rng(4);
  const TagSet set = TagSet::make_random(500, rng);
  const auto best = optimize_round_count(500, 0, 0.99);
  const MultiRoundTrpServer server(
      set.ids(), MonitoringPolicy{.tolerated_missing = 0, .confidence = 0.99},
      best.rounds);
  const auto single = rfid::math::optimize_trp_frame(500, 0, 0.99);
  EXPECT_LT(server.plan().total_slots, single.frame_size);
}

}  // namespace
