#include "sim/event_queue.h"

#include "util/expect.h"

namespace rfid::sim {

void EventQueue::schedule_at(SimTime when, Handler handler) {
  RFID_EXPECT(when >= now_, "cannot schedule into the past");
  RFID_EXPECT(handler != nullptr, "null event handler");
  queue_.push(Event{when, next_sequence_++, std::move(handler)});
}

std::uint64_t EventQueue::run(SimTime until) {
  std::uint64_t ran = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (until >= 0.0 && top.when > until) break;
    // priority_queue::top is const; the handler must be moved out before
    // pop. The const_cast is safe: the element is removed immediately and
    // mutating `handler` does not affect the heap ordering key.
    Handler handler = std::move(const_cast<Event&>(top).handler);
    now_ = top.when;
    queue_.pop();
    handler();
    ++ran;
    ++processed_;
  }
  if (until >= 0.0 && now_ < until && queue_.empty()) now_ = until;
  return ran;
}

void EventQueue::clear() noexcept {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace rfid::sim
