#include "protocol/tree_walk.h"

#include <algorithm>
#include <vector>

#include "util/expect.h"

namespace rfid::protocol {

TreeWalkResult run_tree_walk(std::span<const tag::Tag> present,
                             std::uint64_t stop_after_collected) {
  RFID_EXPECT(stop_after_collected <= present.size(),
              "cannot collect more tags than are present");

  // Sort the 64-bit slot words once; every prefix then corresponds to a
  // contiguous range, so "how many tags match prefix p of length L" is two
  // binary searches.
  std::vector<std::uint64_t> words;
  words.reserve(present.size());
  for (const tag::Tag& t : present) words.push_back(t.id().slot_word());
  std::sort(words.begin(), words.end());

  TreeWalkResult result;
  if (stop_after_collected == 0) return result;

  // Depth-first reader walk, 0-subtree before 1-subtree, exactly the
  // broadcast order of a real tree-walking reader. Stack entries are
  // (prefix, length); length 0 is the initial "everyone" query.
  struct Node {
    std::uint64_t prefix;
    std::uint32_t length;
  };
  std::vector<Node> stack{{0, 0}};

  while (!stack.empty() && result.collected < stop_after_collected) {
    const Node node = stack.back();
    stack.pop_back();

    // Range of sorted words starting with `prefix` (top `length` bits).
    std::uint64_t lo_word = 0;
    std::uint64_t hi_word = ~std::uint64_t{0};
    if (node.length > 0) {
      lo_word = node.prefix << (64 - node.length);
      const std::uint64_t span_mask =
          node.length == 64 ? 0 : (~std::uint64_t{0} >> node.length);
      hi_word = lo_word | span_mask;
    }
    const auto lo = std::lower_bound(words.begin(), words.end(), lo_word);
    const auto hi = std::upper_bound(words.begin(), words.end(), hi_word);
    const auto matching = static_cast<std::uint64_t>(hi - lo);

    ++result.total_queries;
    result.max_depth = std::max(result.max_depth, node.length);
    if (matching == 0) {
      ++result.empty_queries;
    } else if (matching == 1) {
      ++result.singleton_queries;
      ++result.collected;
    } else {
      ++result.collision_queries;
      RFID_ENSURE(node.length < 64, "distinct tags share a full 64-bit word");
      // Push 1-child first so the 0-child is broadcast next (DFS order).
      stack.push_back({(node.prefix << 1) | 1, node.length + 1});
      stack.push_back({node.prefix << 1, node.length + 1});
    }
  }
  return result;
}

}  // namespace rfid::protocol
