// Blocking loopback client for MonitorService — the other endpoint of every
// hermetic two-endpoint test, the bench driver, and the example. One frame
// in flight at a time: send_frame() writes a whole frame, read_frame()
// blocks (bounded by the receive timeout) until one complete frame arrives.
// Stream frames (RunAlert, TenantAlert) interleave with responses, so the
// typed helpers skip-and-collect: start_run() returns everything up to the
// verdict, subscribe() drains the advertised backlog.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "service/framing.h"
#include "service/messages.h"
#include "service/socket.h"

namespace rfid::service {

/// Admission outcome of start_run/start_watch: exactly one of `admitted` /
/// `backpressure` is set.
struct StartOutcome {
  std::optional<RunAdmitted> admitted;
  std::optional<Backpressure> backpressure;
};

/// A completed run as observed from the client side.
struct RunOutcome {
  RunVerdictMsg verdict;
  std::vector<RunAlertMsg> alerts;
};

class ServiceClient {
 public:
  explicit ServiceClient(
      std::uint16_t port,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  /// Raw frame IO (the fuzz/robustness tests drive these directly).
  void send_frame(FrameType type, std::span<const std::byte> payload);
  void send_raw(std::span<const std::byte> bytes);
  /// Blocks for the next frame. Throws std::runtime_error on timeout or
  /// peer close.
  [[nodiscard]] Frame read_frame();

  // ---- typed conversation helpers (each throws std::runtime_error on an
  // unexpected reply; a kError reply surfaces as "service error: ...") ----

  HelloOk hello(const std::string& tenant);
  EnrollOk enroll(const EnrollRequest& request);
  /// Sends the request and returns the admission outcome; stream frames
  /// arriving first are buffered for later read_frame()/await_* calls.
  StartOutcome start_run(const StartRunRequest& request);
  StartOutcome start_watch(const StartWatchRequest& request);
  /// Blocks until the verdict for `run_id` arrives, collecting that run's
  /// alert frames on the way.
  RunOutcome await_verdict(std::uint64_t run_id);
  WatchDone await_watch_done(std::uint64_t run_id);
  /// Subscribes and drains the advertised backlog.
  std::vector<TenantAlert> subscribe();
  std::uint64_t ping(std::uint64_t nonce);
  void goodbye();

  [[nodiscard]] std::uint64_t session_id() const noexcept {
    return session_id_;
  }

 private:
  [[nodiscard]] static bool is_stream_frame(FrameType type);
  /// Puts frames a typed helper skipped back at the head of `pending_`.
  void restore(std::vector<Frame>& aside);
  [[nodiscard]] Frame next_of(FrameType wanted);
  [[nodiscard]] StartOutcome await_start_outcome();

  Socket sock_;
  std::chrono::milliseconds timeout_;
  std::vector<std::byte> rx_;
  FrameReader reader_;
  std::vector<Frame> pending_;  // stream frames skipped by a typed helper
  std::uint64_t session_id_ = 0;
};

/// Minimal blocking HTTP GET against the service scrape port. Returns the
/// response body; `status_out` (optional) receives the status line's code.
[[nodiscard]] std::string http_get(
    std::uint16_t port, const std::string& path, int* status_out = nullptr,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

}  // namespace rfid::service
