// A point-to-point message link over the discrete-event queue.
//
// Models the server <-> reader backhaul: fixed propagation latency plus
// optional uniform jitter and i.i.d. frame drop. Delivery order can therefore
// differ from send order when jitter is nonzero — receivers must not assume
// FIFO (the session layer matches on round numbers instead). Frames are
// delivered as raw bytes; integrity is the codec's job.
//
// An optional fault::FaultInjector layers scripted impairments on top:
// correlated burst loss (Gilbert–Elliott), payload corruption (caught by the
// framing checksum at the receiver), duplication, and reordering delays.
// Without an injector the link behaves — and draws randomness — exactly as
// before, so faultless runs stay bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "util/random.h"

namespace rfid::wire {

struct LinkConfig {
  double latency_us = 1000.0;
  double jitter_us = 0.0;      // uniform extra delay in [0, jitter_us)
  double drop_prob = 0.0;      // i.i.d. per frame
};

class Link {
 public:
  using Handler = std::function<void(std::vector<std::byte>)>;

  Link(sim::EventQueue& queue, LinkConfig config, util::Rng& rng,
       fault::FaultInjector* injector = nullptr)
      : queue_(queue), config_(config), rng_(rng), injector_(injector) {}

  /// Hands the frame to the link; it arrives at the receiver handler after
  /// the configured delay, or never (drop). Returns false if dropped — the
  /// sender does NOT learn this in-protocol; the return value exists for
  /// tests and statistics. An injected duplicate is delivered as a second,
  /// independently-delayed copy and counted in frames_sent().
  bool send(std::vector<std::byte> frame, const Handler& deliver);

  [[nodiscard]] std::uint64_t frames_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept { return dropped_; }

  /// Starts recording frames/bytes/drops under the given direction label
  /// ("uplink" / "downlink"). Resolves the series once here; send() then
  /// only touches cached atomics. The registry must outlive this link.
  void attach_metrics(obs::MetricsRegistry& registry, std::string_view direction);

 private:
  [[nodiscard]] double delivery_delay() noexcept;

  sim::EventQueue& queue_;
  LinkConfig config_;
  util::Rng& rng_;
  fault::FaultInjector* injector_;  // not owned; may be null
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  obs::Counter* frames_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
};

}  // namespace rfid::wire
