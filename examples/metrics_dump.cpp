// metrics_dump: run a small seeded monitoring workload with the full
// observability stack attached, then print what an operator would scrape —
// the Prometheus text exposition, the JSON dump (with the session ring), and
// the span tree of the last session.
//
// Usage:
//   metrics_dump              # Prometheus text to stdout
//   metrics_dump --json       # JSON instead
//   metrics_dump --trace      # span tree instead
#include <cstring>
#include <iostream>
#include <string_view>

#include "obs/expose.h"
#include "obs/metrics.h"
#include "obs/session_log.h"
#include "obs/trace.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "sim/event_queue.h"
#include "storage/backend.h"
#include "storage/durable_server.h"
#include "tag/tag_set.h"
#include "util/random.h"
#include "wire/session.h"

namespace {

using namespace rfid;

void run_workload(sim::EventQueue& queue, obs::MetricsRegistry& registry,
                  obs::Tracer& tracer, obs::SessionLog& session_log) {
  {  // TRP group over a mildly lossy backhaul.
    util::Rng rng(11);
    const tag::TagSet set = tag::TagSet::make_random(200, rng);
    protocol::TrpServer server(set.ids(),
                               {.tolerated_missing = 5, .confidence = 0.95});
    server.set_metrics(&registry);
    wire::SessionConfig config;
    config.uplink = {.latency_us = 2000.0, .jitter_us = 500.0, .drop_prob = 0.05};
    config.downlink = {.latency_us = 2000.0, .jitter_us = 500.0, .drop_prob = 0.05};
    config.group_name = "shelf-razors";
    config.metrics = &registry;
    config.tracer = &tracer;
    config.session_log = &session_log;
    (void)wire::run_trp_session(queue, server, set.tags(), 5, config, rng);
  }

  {  // UTRP group, untrusted reader, deadline armed.
    util::Rng rng(12);
    tag::TagSet set = tag::TagSet::make_random(100, rng);
    protocol::UtrpServer server(set, {.tolerated_missing = 2, .confidence = 0.9},
                                20);
    server.set_metrics(&registry);
    wire::SessionConfig config;
    config.group_name = "pallet-area";
    config.utrp_deadline_us = 10e6;
    config.metrics = &registry;
    config.tracer = &tracer;
    config.session_log = &session_log;
    (void)wire::run_utrp_session(queue, server, set.tags(), 3, config, rng);
  }

  {  // Durable server: enroll, one round, checkpoint, reopen.
    storage::MemoryBackend backend;
    util::Rng rng(13);
    const tag::TagSet set = tag::TagSet::make_random(80, rng);
    storage::DurabilityConfig dcfg;
    dcfg.metrics = &registry;
    // Manual clock: recovery durations land in fixed buckets, keeping the
    // dump byte-identical across runs (same seam the golden test uses).
    double now = 0.0;
    dcfg.clock = [&now] { return now += 25.0; };
    {
      storage::DurableInventoryServer durable(backend, dcfg);
      server::GroupConfig cfg;
      cfg.name = "backroom";
      cfg.policy = {.tolerated_missing = 2, .confidence = 0.9};
      const auto id = durable.enroll(set, cfg);
      const protocol::TrpServer oracle(set.ids(), cfg.policy);
      const auto challenge = durable.challenge_trp(id, rng);
      (void)durable.submit_trp(id, challenge,
                               oracle.expected_bitstring(challenge));
      durable.rotate();
    }
    const storage::DurableInventoryServer reopened(backend, dcfg);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string_view mode = "prometheus";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) mode = "json";
    else if (std::strcmp(argv[i], "--trace") == 0) mode = "trace";
    else {
      std::cerr << "usage: metrics_dump [--json | --trace]\n";
      return 2;
    }
  }

  rfid::obs::MetricsRegistry registry;
  rfid::obs::SessionLog session_log(16);
  rfid::sim::EventQueue queue;
  // Span timestamps on the simulated clock: the rendered tree reads in
  // microseconds of protocol time, not wall time.
  rfid::obs::Tracer tracer([&queue] { return queue.now(); });
  run_workload(queue, registry, tracer, session_log);

  if (mode == "json") {
    std::cout << rfid::obs::render_json(registry.snapshot(), &session_log);
  } else if (mode == "trace") {
    std::cout << tracer.render();
  } else {
    std::cout << rfid::obs::render_prometheus(registry.snapshot());
  }
  return 0;
}
