#include "protocol/trp.h"

#include "obs/catalog.h"
#include "util/expect.h"

namespace rfid::protocol {

TrpServer::TrpServer(std::vector<tag::TagId> ids, MonitoringPolicy policy,
                     hash::SlotHasher hasher)
    : TrpServer(tag::ColumnarTagSet::from_ids(ids), policy, hasher) {}

TrpServer::TrpServer(tag::ColumnarTagSet enrolled, MonitoringPolicy policy,
                     hash::SlotHasher hasher)
    : tags_(std::move(enrolled)), policy_(policy), hasher_(hasher) {
  RFID_EXPECT(!tags_.empty(), "cannot monitor an empty group");
  RFID_EXPECT(policy_.tolerated_missing + 1 <= tags_.size(),
              "tolerance m must satisfy m + 1 <= n");
  plan_ = math::optimize_trp_frame(tags_.size(), policy_.tolerated_missing,
                                   policy_.confidence, policy_.model);
}

void TrpServer::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    instruments_ = Instruments{};
    return;
  }
  namespace cat = obs::catalog;
  instruments_.challenges = &cat::challenges_total(*registry, "trp");
  instruments_.rounds_intact = &cat::rounds_total(*registry, "trp", "intact");
  instruments_.rounds_mismatch =
      &cat::rounds_total(*registry, "trp", "mismatch");
  instruments_.slots = &cat::slots_total(*registry, "trp");
  instruments_.mismatched_slots = &cat::mismatched_slots_total(*registry, "trp");
  instruments_.bulk_slots = &cat::bulk_slots_total(*registry, "trp_frame");
  instruments_.frame_size = &cat::frame_size(*registry, "trp");
}

TrpChallenge TrpServer::issue_challenge(util::Rng& rng) const {
  if (instruments_.challenges != nullptr) {
    instruments_.challenges->inc();
    instruments_.frame_size->observe(static_cast<double>(plan_.frame_size));
  }
  return TrpChallenge{plan_.frame_size, rng()};
}

bits::Bitstring TrpServer::expected_bitstring(const TrpChallenge& challenge) const {
  RFID_EXPECT(challenge.frame_size >= 1, "challenge has no slots");
  if (bulk_) {
    if (instruments_.bulk_slots != nullptr) {
      instruments_.bulk_slots->inc(tags_.size());
    }
    return tag::bulk_trp_frame(hasher_, tags_.slot_words(), challenge.r,
                               challenge.frame_size);
  }
  bits::Bitstring bs(challenge.frame_size);
  for (const tag::TagId& id : tags_.ids()) {
    bs.set(hasher_.slot(id.slot_word(), challenge.r, challenge.frame_size));
  }
  return bs;
}

Verdict TrpServer::verify(const TrpChallenge& challenge,
                          const bits::Bitstring& reported) const {
  return verify_against(challenge, expected_bitstring(challenge), reported);
}

Verdict TrpServer::verify_with_expected(const TrpChallenge& challenge,
                                        const bits::Bitstring& expected,
                                        const bits::Bitstring& reported) const {
  RFID_EXPECT(expected.size() == challenge.frame_size,
              "cached expectation does not match the challenge frame");
  return verify_against(challenge, expected, reported);
}

Verdict TrpServer::verify_against(const TrpChallenge& challenge,
                                  const bits::Bitstring& expected,
                                  const bits::Bitstring& reported) const {
  RFID_EXPECT(reported.size() == expected.size(),
              "reported bitstring has wrong length");
  Verdict verdict;
  verdict.mismatched_slots = expected.hamming_distance(reported);
  verdict.intact = verdict.mismatched_slots == 0;
  if (!verdict.intact) {
    verdict.first_mismatch_slot = *expected.first_difference(reported);
  }
  if (instruments_.slots != nullptr) {
    instruments_.slots->inc(challenge.frame_size);
    instruments_.mismatched_slots->inc(verdict.mismatched_slots);
    (verdict.intact ? instruments_.rounds_intact : instruments_.rounds_mismatch)
        ->inc();
  }
  return verdict;
}

bits::Bitstring TrpReader::scan(std::span<const tag::Tag> present,
                                const TrpChallenge& challenge,
                                util::Rng& rng) const {
  return scan_observed(present, challenge, rng).bitstring;
}

radio::FrameObservation TrpReader::scan_observed(std::span<const tag::Tag> present,
                                                 const TrpChallenge& challenge,
                                                 util::Rng& rng) const {
  RFID_EXPECT(challenge.frame_size >= 1, "challenge has no slots");
  return radio::simulate_frame(present, hasher_, challenge.r,
                               challenge.frame_size, channel_, rng);
}

}  // namespace rfid::protocol
