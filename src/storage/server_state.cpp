#include "storage/server_state.h"

#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <span>
#include <sstream>

#include "hash/fnv.h"
#include "util/expect.h"

namespace rfid::storage {

namespace {

constexpr std::string_view kAuxMagic = "AUX 1";

[[nodiscard]] std::uint64_t checksum_of(const std::string& body) {
  return hash::fnv1a64(
      std::span(reinterpret_cast<const std::byte*>(body.data()), body.size()));
}

[[nodiscard]] std::string format_state_line(
    std::size_t index, const server::InventoryServer::GroupState& gs) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "STATE %zu %" PRIu64 " %d %d\n", index,
                gs.rounds, gs.needs_resync ? 1 : 0, gs.active ? 1 : 0);
  return buf;
}

[[nodiscard]] std::string format_alert_line(const server::Alert& alert) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "ALERT %" PRIu64 " %s %zu %" PRIu64 " %" PRIu64
                " %d %.17g %" PRIu64 " ",
                alert.sequence, std::string(to_string(alert.kind)).c_str(),
                alert.group.index, alert.round, alert.mismatched_slots,
                alert.deadline_missed ? 1 : 0, alert.estimated_present,
                alert.enrolled_size);
  return std::string(buf) + alert.group_name + "\n";
}

[[nodiscard]] server::AlertKind parse_alert_kind(const std::string& name,
                                                 const std::string& context) {
  if (name == to_string(server::AlertKind::kRoundFailure)) {
    return server::AlertKind::kRoundFailure;
  }
  RFID_EXPECT(name == to_string(server::AlertKind::kResync),
              context + "unknown ALERT kind: " + name);
  return server::AlertKind::kResync;
}

}  // namespace

PersistedState capture_state(const server::InventoryServer& server) {
  PersistedState state;
  state.groups = server::enrolled_groups(server);
  state.group_states.reserve(server.group_count());
  for (std::size_t i = 0; i < server.group_count(); ++i) {
    state.group_states.push_back(server.group_state(server::GroupId{i}));
  }
  state.alerts = server.alerts();
  return state;
}

void write_state(std::ostream& os, const PersistedState& state) {
  RFID_EXPECT(state.group_states.size() == state.groups.size(),
              "one GroupState per group");
  server::save_snapshot(os, state.groups);

  std::string aux;
  aux += kAuxMagic;
  aux += '\n';
  for (std::size_t i = 0; i < state.group_states.size(); ++i) {
    aux += format_state_line(i, state.group_states[i]);
  }
  for (const server::Alert& alert : state.alerts) {
    RFID_EXPECT(alert.group_name.find('\n') == std::string::npos,
                "alert group names must be single-line");
    aux += format_alert_line(alert);
  }
  os << aux << "ENDAUX " << std::hex << checksum_of(aux) << std::dec << '\n';
  os.flush();
  RFID_EXPECT(os.good(), "state stream write failed");
}

PersistedState read_state(std::istream& is) {
  PersistedState state;
  state.groups = server::load_snapshot(is);
  state.group_states.assign(state.groups.size(), {});

  std::string line;
  if (!std::getline(is, line)) return state;  // plain snapshot: zero history
  std::uint64_t lineno = 1;
  const auto at = [&lineno](std::string_view what) {
    return "aux line " + std::to_string(lineno) + ": " + std::string(what);
  };
  RFID_EXPECT(line == kAuxMagic, at("expected AUX section after END"));

  std::string aux;
  aux += line;
  aux += '\n';
  bool saw_end = false;
  std::size_t states_seen = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.rfind("ENDAUX ", 0) == 0) {
      std::uint64_t declared = 0;
      try {
        declared = std::stoull(line.substr(7), nullptr, 16);
      } catch (const std::invalid_argument&) {
        RFID_EXPECT(false, at("bad ENDAUX checksum hex"));
      } catch (const std::out_of_range&) {
        RFID_EXPECT(false, at("bad ENDAUX checksum hex"));
      }
      RFID_EXPECT(declared == checksum_of(aux), at("AUX checksum mismatch"));
      saw_end = true;
      break;
    }
    aux += line;
    aux += '\n';

    if (line.rfind("STATE ", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::size_t index = 0;
      server::InventoryServer::GroupState gs;
      int needs_resync = 0;
      fields >> index >> gs.rounds >> needs_resync;
      RFID_EXPECT(!fields.fail(), at("malformed STATE line"));
      // Optional 4th field (active flag); snapshots from before group
      // decommissioning carry three fields and mean "active".
      int active = 1;
      if (!(fields >> active)) active = 1;
      RFID_EXPECT(index < state.group_states.size(),
                  at("STATE index out of range"));
      RFID_EXPECT(index == states_seen, at("STATE lines out of order"));
      gs.needs_resync = needs_resync != 0;
      gs.active = active != 0;
      state.group_states[index] = gs;
      ++states_seen;
    } else if (line.rfind("ALERT ", 0) == 0) {
      std::istringstream fields(line.substr(6));
      server::Alert alert;
      std::string kind;
      int deadline_missed = 0;
      fields >> alert.sequence >> kind >> alert.group.index >> alert.round >>
          alert.mismatched_slots >> deadline_missed >>
          alert.estimated_present >> alert.enrolled_size;
      RFID_EXPECT(!fields.fail(), at("malformed ALERT line"));
      alert.kind = parse_alert_kind(kind, at(""));
      alert.deadline_missed = deadline_missed != 0;
      RFID_EXPECT(alert.group.index < state.groups.size(),
                  at("ALERT group index out of range"));
      std::getline(fields, alert.group_name);
      if (!alert.group_name.empty() && alert.group_name.front() == ' ') {
        alert.group_name.erase(0, 1);
      }
      RFID_EXPECT(state.alerts.empty() ||
                      state.alerts.back().sequence < alert.sequence,
                  at("ALERT sequences out of order"));
      state.alerts.push_back(std::move(alert));
    } else {
      RFID_EXPECT(false, at("unrecognized AUX line: " + line));
    }
  }
  RFID_EXPECT(saw_end, at("AUX section truncated (no ENDAUX line)"));
  RFID_EXPECT(states_seen == state.group_states.size(),
              at("one STATE line per group required"));
  return state;
}

server::InventoryServer build_server(const PersistedState& state,
                                     hash::SlotHasher hasher) {
  server::InventoryServer server = server::restore_server(state.groups, hasher);
  server.restore_history(state.alerts, state.group_states);
  return server;
}

std::string dump_state(const server::InventoryServer& server) {
  std::ostringstream os;
  write_state(os, capture_state(server));
  return std::move(os).str();
}

}  // namespace rfid::storage
