// Identification cost across the protocol family: detection (TRP) proves
// *that* tags are missing in O(f) slots; this bench measures what it costs
// to learn WHICH tags are missing as the population n and theft size m
// scale — for every member of the pluggable identification family
// (protocol/identification.h) against the collect-every-ID baseline.
//
// Sweep: n in {10^4, 10^5, 10^6} x m in {1, 10, 100, 1000}, each point
// seed-averaged over --reps independent campaigns (default 5; per-trial RNG
// streams derive from the master seed, so the table is bit-identical across
// thread counts). cost_ratio = collect_all_ms / identify_ms: above 1 the
// family member beats broadcasting every ID.
//
// Two findings the table pins down:
//   * kIterative loses (cost_ratio < 1 everywhere): proven-present tags
//     cannot be silenced, so every round re-frames the whole population —
//     O(n log n) short slots against collect-all's ~e*n ID slots. Its value
//     is privacy (no tag ever transmits its ID), not speed.
//   * kFilterFirst wins wherever the missing set is a minority (m <= 0.1*n
//     at n >= 10^5): the ACK filter mutes proven tags, the zero-estimator
//     sizes each frame to the survivors, and tree-splitting kills the
//     re-framing tail — frames shrink geometrically instead of staying
//     population-sized. The bench prints an explicit verdict line for that
//     regime.
#include <atomic>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "protocol/collect_all.h"
#include "protocol/identification.h"
#include "radio/timing.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rfid;
  util::CliArgs* extra = nullptr;
  const auto opt = bench::parse_figure_options(argc, argv, &extra, {"reps"});
  const auto reps =
      static_cast<std::uint64_t>(extra->get_int_or("reps", 5));
  const sim::TrialRunner runner(opt.threads);
  const hash::SlotHasher hasher;
  const radio::TimingModel timing;

  bench::banner("Identification family vs collect-all (" +
                std::to_string(reps) + " campaigns/point)");

  const std::vector<std::uint64_t> populations{10'000, 100'000, 1'000'000};
  const std::vector<std::uint64_t> thefts{1, 10, 100, 1000};
  const std::vector<protocol::IdentifyProtocolKind> family{
      protocol::IdentifyProtocolKind::kIterative,
      protocol::IdentifyProtocolKind::kFilterFirst};

  util::Table table({"n", "stolen", "protocol", "rounds", "slots",
                     "identify_ms", "collect_all_ms", "cost_ratio"});
  bool filter_first_wins_minority_regime = true;
  for (const std::uint64_t n : populations) {
    for (const std::uint64_t m : thefts) {
      if (m >= n) continue;
      // The baseline pays an ID-length slot per present tag (plus the
      // collision/empty overhead of its framed-ALOHA inventory).
      const auto collect_stats = runner.run_metric(
          reps, util::derive_seed(opt.seed, n, m),
          [&](std::uint64_t, util::Rng& rng) {
            tag::TagSet set = tag::TagSet::make_random(n, rng);
            (void)set.steal_random(m, rng);
            return protocol::run_collect_all(
                       set.tags(), hasher,
                       {.stop_after_collected = set.size()}, rng)
                .elapsed_us(timing);
          });
      const double collect_ms = collect_stats.mean() / 1000.0;

      for (const protocol::IdentifyProtocolKind kind : family) {
        const auto identifier =
            protocol::make_identification_protocol(kind, {});
        std::atomic<std::uint64_t> rounds{0};
        std::atomic<std::uint64_t> slots{0};
        const auto identify_stats = runner.run_metric(
            reps, util::derive_seed(opt.seed, n, m),
            [&](std::uint64_t, util::Rng& rng) {
              tag::TagSet set = tag::TagSet::make_random(n, rng);
              const std::vector<tag::TagId> enrolled = set.ids();
              (void)set.steal_random(m, rng);
              const protocol::IdentifyResult result =
                  identifier->identify(enrolled, set.tags(), hasher, rng);
              rounds.fetch_add(result.rounds, std::memory_order_relaxed);
              slots.fetch_add(result.total_slots, std::memory_order_relaxed);
              return result.elapsed_us(timing);
            });
        const double identify_ms = identify_stats.mean() / 1000.0;
        const double ratio = collect_ms / identify_ms;
        if (kind == protocol::IdentifyProtocolKind::kFilterFirst &&
            n >= 100'000 && 10 * m <= n && ratio <= 1.0) {
          filter_first_wins_minority_regime = false;
        }

        table.begin_row();
        table.add_cell(static_cast<long long>(n));
        table.add_cell(static_cast<long long>(m));
        table.add_cell(std::string(protocol::to_string(kind)));
        table.add_cell(static_cast<double>(rounds.load()) /
                           static_cast<double>(reps),
                       1);
        table.add_cell(static_cast<double>(slots.load()) /
                           static_cast<double>(reps),
                       1);
        table.add_cell(identify_ms, 1);
        table.add_cell(collect_ms, 1);
        table.add_cell(ratio, 2);
      }
    }
  }
  bench::emit(table, opt);
  std::cout << "filter_first beats collect-all at every (n >= 1e5, m <= 0.1n)"
            << " point: "
            << (filter_first_wins_minority_regime ? "yes" : "NO") << '\n';
  return filter_first_wins_minority_regime ? 0 : 1;
}
