#include "sim/trial_runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "util/expect.h"

namespace rfid::sim {

TrialRunner::TrialRunner(unsigned threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
}

template <typename T>
std::vector<T> TrialRunner::map_trials(
    std::uint64_t trials, std::uint64_t master_seed,
    const std::function<T(std::uint64_t, util::Rng&)>& fn) const {
  RFID_EXPECT(fn != nullptr, "null trial function");
  std::vector<T> results(trials);
  if (trials == 0) return results;

  const unsigned workers =
      static_cast<unsigned>(std::min<std::uint64_t>(threads_, trials));
  std::atomic<std::uint64_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    while (true) {
      const std::uint64_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= trials || failed.load(std::memory_order_relaxed)) return;
      try {
        util::Rng rng(util::derive_seed(master_seed, index));
        results[index] = fn(index, rng);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (workers == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

util::BinomialProportion TrialRunner::run_boolean(
    std::uint64_t trials, std::uint64_t master_seed,
    const std::function<bool(std::uint64_t, util::Rng&)>& fn) const {
  const auto results = map_trials<char>(
      trials, master_seed,
      [&fn](std::uint64_t i, util::Rng& rng) -> char { return fn(i, rng) ? 1 : 0; });
  util::BinomialProportion summary;
  for (const char r : results) summary.add(r != 0);
  return summary;
}

util::RunningStat TrialRunner::run_metric(
    std::uint64_t trials, std::uint64_t master_seed,
    const std::function<double(std::uint64_t, util::Rng&)>& fn) const {
  const auto results = map_trials<double>(trials, master_seed, fn);
  util::RunningStat summary;
  for (const double r : results) summary.add(r);
  return summary;
}

}  // namespace rfid::sim
