// Microbenchmarks for whole protocol rounds: what one monitoring pass costs
// in simulation (the unit of work behind every figure trial).
#include <benchmark/benchmark.h>

#include "protocol/collect_all.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using namespace rfid;

void BM_TrpRound(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  util::Rng rng(1);
  const tag::TagSet set = tag::TagSet::make_random(n, rng);
  const protocol::TrpServer server(
      set.ids(), {.tolerated_missing = 10, .confidence = 0.95});
  const protocol::TrpReader reader;
  for (auto _ : state) {
    const auto c = server.issue_challenge(rng);
    const auto bs = reader.scan(set.tags(), c, rng);
    benchmark::DoNotOptimize(server.verify(c, bs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_UtrpRound(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  util::Rng rng(2);
  tag::TagSet set = tag::TagSet::make_random(n, rng);
  protocol::UtrpServer server(set, {.tolerated_missing = 10, .confidence = 0.95},
                              20);
  const protocol::UtrpReader reader;
  for (auto _ : state) {
    const auto c = server.issue_challenge(rng);
    const auto scan = reader.scan(set.tags(), c);
    const auto verdict = server.verify(c, scan.bitstring);
    benchmark::DoNotOptimize(verdict);
    server.commit_round(c, verdict);
    set.begin_round();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_CollectAllRound(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  util::Rng rng(3);
  const tag::TagSet set = tag::TagSet::make_random(n, rng);
  const hash::SlotHasher hasher;
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol::run_collect_all(
        set.tags(), hasher, {.stop_after_collected = n - 10}, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_TagSetCreation(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  util::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tag::TagSet::make_random(n, rng));
  }
}

}  // namespace

BENCHMARK(BM_TrpRound)->Arg(100)->Arg(1000)->Arg(5000);
BENCHMARK(BM_UtrpRound)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CollectAllRound)->Arg(100)->Arg(1000)->Arg(5000);
BENCHMARK(BM_TagSetCreation)->Arg(1000)->Arg(10000);
