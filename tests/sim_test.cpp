// Tests for the simulation substrate: event queue and parallel trial runner.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/event_queue.h"
#include "sim/trial_runner.h"

namespace {

using rfid::sim::EventQueue;
using rfid::sim::TrialRunner;

// ----------------------------------------------------------- event queue --

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5.0, [&] { order.push_back(1); });
  q.schedule_at(5.0, [&] { order.push_back(2); });
  q.schedule_at(5.0, [&] { order.push_back(3); });
  (void)q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] {
    ++fired;
    q.schedule_after(1.0, [&] {
      ++fired;
      q.schedule_after(1.0, [&] { ++fired; });
    });
  });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(10.0, [&] { ++fired; });
  EXPECT_EQ(q.run(5.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
  EXPECT_EQ(q.run(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  (void)q.run(7.5);
  EXPECT_DOUBLE_EQ(q.now(), 7.5);
}

TEST(EventQueue, SchedulingIntoThePastThrows) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  (void)q.run();
  EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, NullHandlerRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule_at(1.0, nullptr), std::invalid_argument);
}

TEST(EventQueue, ClearDropsPendingEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.clear();
  EXPECT_EQ(q.run(), 0u);
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, ProcessedCountsAcrossRuns) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  (void)q.run();
  q.schedule_at(2.0, [] {});
  (void)q.run();
  EXPECT_EQ(q.processed(), 2u);
}

// ----------------------------------------------------------- trial runner --

TEST(TrialRunner, BooleanCountsAreExact) {
  const TrialRunner runner(4);
  const auto result = runner.run_boolean(
      1000, 7, [](std::uint64_t index, rfid::util::Rng&) { return index % 4 == 0; });
  EXPECT_EQ(result.trials(), 1000u);
  EXPECT_EQ(result.successes(), 250u);
}

TEST(TrialRunner, DeterministicAcrossThreadCounts) {
  // The heart of reproducibility: 1 thread and 8 threads must agree bit-for-
  // bit because streams derive from the trial index.
  auto trial = [](std::uint64_t, rfid::util::Rng& rng) {
    return rng.uniform() < 0.37;
  };
  const auto serial = TrialRunner(1).run_boolean(5000, 42, trial);
  const auto parallel = TrialRunner(8).run_boolean(5000, 42, trial);
  EXPECT_EQ(serial.successes(), parallel.successes());
}

TEST(TrialRunner, MetricAggregationDeterministic) {
  auto trial = [](std::uint64_t, rfid::util::Rng& rng) { return rng.uniform(); };
  const auto serial = TrialRunner(1).run_metric(2000, 99, trial);
  const auto parallel = TrialRunner(6).run_metric(2000, 99, trial);
  EXPECT_DOUBLE_EQ(serial.mean(), parallel.mean());
  EXPECT_DOUBLE_EQ(serial.variance(), parallel.variance());
  EXPECT_EQ(serial.count(), 2000u);
}

TEST(TrialRunner, MasterSeedChangesResults) {
  auto trial = [](std::uint64_t, rfid::util::Rng& rng) {
    return rng.uniform() < 0.5;
  };
  const auto a = TrialRunner(2).run_boolean(2000, 1, trial);
  const auto b = TrialRunner(2).run_boolean(2000, 2, trial);
  EXPECT_NE(a.successes(), b.successes());
}

TEST(TrialRunner, ZeroTrials) {
  const auto result = TrialRunner(2).run_boolean(
      0, 7, [](std::uint64_t, rfid::util::Rng&) { return true; });
  EXPECT_EQ(result.trials(), 0u);
}

TEST(TrialRunner, PropagatesExceptions) {
  const TrialRunner runner(4);
  EXPECT_THROW(
      (void)runner.run_boolean(100, 7,
                               [](std::uint64_t index, rfid::util::Rng&) -> bool {
                                 if (index == 50) throw std::runtime_error("boom");
                                 return true;
                               }),
      std::runtime_error);
}

TEST(TrialRunner, DefaultThreadCountIsPositive) {
  const TrialRunner runner;
  EXPECT_GE(runner.threads(), 1u);
}

TEST(TrialRunner, UniformProportionConverges) {
  const auto result = TrialRunner(0).run_boolean(
      20000, 5,
      [](std::uint64_t, rfid::util::Rng& rng) { return rng.uniform() < 0.25; });
  EXPECT_NEAR(result.proportion(), 0.25, 0.02);
}

}  // namespace
