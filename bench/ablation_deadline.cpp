// Ablation — the adversary's dilemma under the verification deadline
// (Sec. 5.4 end to end).
//
// The server calibrates STmax from honest scans, sets t = STmax plus the
// slack that admits exactly c = 20 two-millisecond consults, and sizes the
// frame by Eq. (3) for that c. The attacker then sweeps its ACTUAL budget:
// small budgets flunk the content check, big ones blow the deadline; the
// "escapes" column (passed both) is the protocol's real-world failure rate
// and should stay below 1 − α everywhere.
#include <cstdint>

#include "attack/timed_attack.h"
#include "bench_common.h"
#include "math/frame_optimizer.h"
#include "protocol/utrp.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const auto opt = bench::parse_figure_options(argc, argv);
  const sim::TrialRunner runner(opt.threads);
  const radio::TimingModel timing;
  constexpr double kCommUs = 2000.0;

  constexpr std::uint64_t kTags = 500;
  constexpr std::uint64_t kTolerance = 5;
  bench::banner("Ablation: attack budget vs deadline (n = " +
                std::to_string(kTags) + ", m = " + std::to_string(kTolerance) +
                ", designed for c = " + std::to_string(opt.budget) + ", " +
                std::to_string(opt.trials) + " trials/row)");

  // Solve Eq. (3) once: the plan only depends on the scenario shape, and
  // per-trial servers below inject it instead of re-running the optimizer.
  const auto plan = math::optimize_utrp_frame(kTags, kTolerance, opt.alpha,
                                              opt.budget);

  // Calibrate the honest envelope once (same population statistics).
  double deadline_us = 0.0;
  {
    util::Rng rng(opt.seed);
    tag::TagSet set = tag::TagSet::make_random(kTags, rng);
    protocol::UtrpServer server(
        set, {.tolerated_missing = kTolerance, .confidence = opt.alpha},
        opt.budget, plan);
    const protocol::UtrpReader reader;
    double st_max = 0.0;
    for (int i = 0; i < 20; ++i) {
      const auto c = server.issue_challenge(rng);
      const auto scan = reader.scan(set.tags(), c);
      st_max = std::max(st_max, attack::honest_utrp_scan_us(
                                    scan.bitstring, scan.reseeds, timing));
      set.begin_round();
    }
    deadline_us = st_max + static_cast<double>(opt.budget) * kCommUs;
    std::cout << "honest STmax ~ " << util::format_double(st_max / 1000.0, 1)
              << " ms; deadline t = "
              << util::format_double(deadline_us / 1000.0, 1) << " ms\n\n";
  }

  util::Table table({"attack_budget", "content_caught", "deadline_missed",
                     "escapes", "escape_rate"});
  for (const std::uint64_t budget : {0u, 5u, 10u, 20u, 40u, 80u, 160u, 500u}) {
    std::uint64_t content_caught = 0;
    std::uint64_t deadline_missed = 0;
    std::uint64_t escapes = 0;
    // Aggregate counts sequentially (cheap trials; determinism preserved).
    for (std::uint64_t t = 0; t < opt.trials; ++t) {
      util::Rng rng(util::derive_seed(opt.seed, budget, t));
      tag::TagSet set = tag::TagSet::make_random(kTags, rng);
      protocol::UtrpServer server(
          set, {.tolerated_missing = kTolerance, .confidence = opt.alpha},
          opt.budget, plan);
      tag::TagSet stolen = set.steal_random(kTolerance + 1, rng);
      const auto challenge = server.issue_challenge(rng);
      const auto outcome = attack::run_timed_utrp_attack(
          set.tags(), stolen.tags(), hash::SlotHasher{}, challenge, budget,
          timing, kCommUs);
      const bool on_time = outcome.elapsed_us <= deadline_us;
      const auto verdict = server.verify(challenge, outcome.forged, on_time);
      if (verdict.intact) {
        ++escapes;
      } else if (!on_time) {
        ++deadline_missed;
      } else {
        ++content_caught;
      }
    }
    table.begin_row();
    table.add_cell(static_cast<long long>(budget));
    table.add_cell(static_cast<long long>(content_caught));
    table.add_cell(static_cast<long long>(deadline_missed));
    table.add_cell(static_cast<long long>(escapes));
    table.add_cell(static_cast<double>(escapes) /
                       static_cast<double>(opt.trials),
                   4);
  }
  bench::emit(table, opt);
  return 0;
}
