// Microbenchmarks for the slot-hash hot path: one hash per tag per slot
// assignment, hundreds of millions of evaluations per figure sweep.
#include <benchmark/benchmark.h>

#include "hash/slot_hash.h"
#include "util/random.h"

namespace {

using rfid::hash::HashKind;
using rfid::hash::SlotHasher;

void BM_SlotHash(benchmark::State& state, HashKind kind) {
  const SlotHasher hasher(kind);
  rfid::util::Rng rng(1);
  std::uint64_t id = rng();
  const std::uint64_t r = rng();
  std::uint64_t ct = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.slot(id, r, 2048, ct));
    ++id;  // avoid trivially cached inputs
    ++ct;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_SlotAssignmentFrame(benchmark::State& state) {
  // A full n-tag slot assignment, the inner loop of every TRP frame.
  const auto n = static_cast<std::size_t>(state.range(0));
  const SlotHasher hasher;
  rfid::util::Rng rng(2);
  std::vector<std::uint64_t> ids(n);
  for (auto& id : ids) id = rng();
  const std::uint64_t r = rng();
  const auto f = static_cast<std::uint32_t>(n + n / 16);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const std::uint64_t id : ids) acc += hasher.slot(id, r, f);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

}  // namespace

BENCHMARK_CAPTURE(BM_SlotHash, fnv1a64, HashKind::kFnv1a64);
BENCHMARK_CAPTURE(BM_SlotHash, murmur_fmix64, HashKind::kMurmurFmix64);
BENCHMARK_CAPTURE(BM_SlotHash, siphash24, HashKind::kSipHash24);
BENCHMARK(BM_SlotAssignmentFrame)->Arg(100)->Arg(1000)->Arg(10000);
