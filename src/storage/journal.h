// Write-ahead journal: the append-only record stream that makes every
// InventoryServer mutation durable before it is applied.
//
// Why a journal at all: the paper's protocols only work because the server's
// database — tag IDs and, for UTRP, the per-tag counter mirror (Sec. 3,
// Alg. 5) — survives across rounds. A crash that loses a committed counter
// advance is indistinguishable from the mirror divergence that `resync`
// exists to heal, except nobody stole anything. The journal records the
// *inputs* of each mutation (challenge, reported bitstring, deadline flag,
// audit set); replaying them through the ordinary server entry points is
// deterministic, so recovery regenerates verdicts, counter advances, and the
// alert timeline bit-for-bit.
//
// On-wire record framing (little-endian):
//
//   "RFIDMON-JOURNAL 1\n"                              file header
//   [u32 payload_len][u64 fnv1a64(payload)][payload]   repeated
//
// A record is valid iff its full framing is present AND the checksum
// matches. scan_journal() stops at the first invalid record and reports the
// clean prefix — a torn tail (crash mid-append) or a rotted byte truncates
// the suffix instead of failing recovery. Atomicity therefore holds per
// record: a mutation is either fully journaled (replayed) or not journaled
// at all (lost with the crash) — never half-applied.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "bitstring/bitstring.h"
#include "protocol/messages.h"
#include "server/inventory_server.h"
#include "tag/tag_set.h"

namespace rfid::storage {

inline constexpr std::string_view kJournalMagic = "RFIDMON-JOURNAL 1\n";

/// A group enrolled after the last snapshot.
struct EnrollRecord {
  server::GroupConfig config;
  tag::TagSet tags;
};

/// One completed TRP round: enough to re-run submit_trp verbatim.
struct TrpRoundRecord {
  std::uint64_t group = 0;
  protocol::TrpChallenge challenge;
  bits::Bitstring reported;
};

/// One completed UTRP round: challenge seeds, reported bitstring, and the
/// Alg. 5 timer outcome — replay re-advances the counter mirror through
/// commit_round exactly as the live round did.
struct UtrpRoundRecord {
  std::uint64_t group = 0;
  protocol::UtrpChallenge challenge;
  bits::Bitstring reported;
  bool deadline_met = true;
};

/// A mirror re-commit from a trusted physical audit.
struct ResyncRecord {
  std::uint64_t group = 0;
  tag::TagSet audited;
};

using JournalRecord =
    std::variant<EnrollRecord, TrpRoundRecord, UtrpRoundRecord, ResyncRecord>;

/// Frames one record (length prefix + checksum + payload).
[[nodiscard]] std::string encode_record(const JournalRecord& record);

struct JournalScan {
  std::vector<JournalRecord> records;
  bool header_valid = false;
  std::uint64_t valid_bytes = 0;    // clean prefix length, header included
  std::uint64_t dropped_bytes = 0;  // torn/rotted suffix discarded
};

/// Walks the journal byte stream, collecting every valid record and
/// truncating at the first torn or corrupt one. Never throws on damaged
/// input — damage is data, reported in the scan result.
[[nodiscard]] JournalScan scan_journal(std::string_view bytes);

}  // namespace rfid::storage
