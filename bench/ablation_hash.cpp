// Ablation — does the choice of slot hash h matter?
//
// Theorem 1 assumes uniform slot selection but the paper leaves h abstract.
// This bench re-runs the Fig. 5 experiment (TRP detection with m+1 stolen
// tags) under each of the three hash families. If the uniformity assumption
// holds for all of them, the detection probabilities should be statistically
// indistinguishable — i.e. the protocol's guarantees do not hinge on
// cryptographic hashing, only on decent mixing.
#include <cstdint>

#include "bench_common.h"
#include "hash/slot_hash.h"
#include "protocol/trp.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rfid;
  auto opt = bench::parse_figure_options(argc, argv);
  opt.n_step = std::max<std::uint64_t>(opt.n_step, 400);  // coarser sweep
  const sim::TrialRunner runner(opt.threads);

  bench::banner("Ablation: slot-hash family vs TRP detection accuracy (m = 10, "
                "steal 11, " + std::to_string(opt.trials) + " trials/point)");

  constexpr std::uint64_t kTolerance = 10;
  util::Table table({"n", "fnv1a64", "murmur-fmix64", "siphash-2-4"});
  for (const std::uint64_t n : bench::tag_count_sweep(opt)) {
    if (kTolerance + 1 > n) continue;
    table.begin_row();
    table.add_cell(static_cast<long long>(n));
    for (const hash::HashKind kind :
         {hash::HashKind::kFnv1a64, hash::HashKind::kMurmurFmix64,
          hash::HashKind::kSipHash24}) {
      const hash::SlotHasher hasher(kind);
      const protocol::MonitoringPolicy policy{.tolerated_missing = kTolerance,
                                              .confidence = opt.alpha};
      const auto result = runner.run_boolean(
          opt.trials,
          util::derive_seed(opt.seed, n, static_cast<std::uint64_t>(kind)),
          [&](std::uint64_t, util::Rng& rng) {
            tag::TagSet set = tag::TagSet::make_random(n, rng);
            const protocol::TrpServer server(set.ids(), policy, hasher);
            (void)set.steal_random(kTolerance + 1, rng);
            const auto c = server.issue_challenge(rng);
            const protocol::TrpReader reader(hasher);
            return !server.verify(c, reader.scan(set.tags(), c, rng)).intact;
          });
      table.add_cell(result.proportion(), 4);
    }
  }
  bench::emit(table, opt);
  return 0;
}
