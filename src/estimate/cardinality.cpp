#include "estimate/cardinality.h"

#include <cmath>

#include "util/expect.h"

namespace rfid::estimate {

CardinalityEstimate estimate_cardinality(std::uint64_t empty_slots,
                                         std::uint64_t frame_size) {
  RFID_EXPECT(frame_size >= 1, "frame size must be positive");
  RFID_EXPECT(empty_slots <= frame_size, "more empty slots than slots");

  CardinalityEstimate est;
  est.empty_slots = empty_slots;
  est.frame_size = frame_size;

  const double f = static_cast<double>(frame_size);
  if (empty_slots == 0) {
    // Saturated frame: report the estimate a single empty slot would give,
    // flagged as a lower bound.
    est.saturated = true;
    est.estimate = f * std::log(f);
    est.std_error = est.estimate;  // effectively unknown
    return est;
  }

  const double n0 = static_cast<double>(empty_slots);
  const double load = -std::log(n0 / f);  // n̂ / f
  est.estimate = f * load;
  // Delta method on n0 ~ Binomial(f, e^{-n/f}):
  //   Var(n̂) ≈ f (e^{n/f} − 1)  ⇒  σ = sqrt(f (e^load − 1)).
  est.std_error = std::sqrt(f * (std::exp(load) - 1.0));
  return est;
}

CardinalityEstimate estimate_cardinality(const bits::Bitstring& bs) {
  RFID_EXPECT(!bs.empty(), "empty bitstring");
  return estimate_cardinality(bs.size() - bs.count(), bs.size());
}

}  // namespace rfid::estimate
