// SipHash-2-4 (Aumasson & Bernstein), reimplemented from the specification.
//
// A keyed PRF. In the untrusted-reader setting the server can key the slot
// hash so that a dishonest reader cannot precompute slot assignments for tags
// whose IDs it managed to learn; the paper leaves h abstract, and this is the
// cryptographically strongest of the three options offered.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace rfid::hash {

/// 128-bit SipHash key.
struct SipKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;
};

/// SipHash-2-4 over an arbitrary byte sequence.
[[nodiscard]] std::uint64_t siphash24(std::span<const std::byte> data,
                                      SipKey key) noexcept;

/// SipHash-2-4 over the 8 little-endian bytes of one 64-bit word — the fast
/// path used by slot selection.
[[nodiscard]] std::uint64_t siphash24_u64(std::uint64_t value, SipKey key) noexcept;

}  // namespace rfid::hash
