// Microbenchmarks for the observability layer: what one counter increment,
// histogram observation, family lookup, and snapshot/render cost — and the
// headline number, the overhead instrumentation adds to a full TRP round
// (the tests/obs_overhead_test.cpp smoke test asserts the same ratio stays
// under 5%; this bench is where the real measurement lives, recorded in
// EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "obs/catalog.h"
#include "obs/expose.h"
#include "obs/metrics.h"
#include "protocol/trp.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using namespace rfid;

void BM_CounterInc(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Counter& counter = reg.counter("bench_total", "Bench.");
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterInc);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram(
      "bench_us", "Bench.", obs::Histogram::hdr_bounds(1.0, 1e6, 16));
  double v = 1.0;
  for (auto _ : state) {
    h.observe(v);
    v = v < 9e5 ? v * 1.1 : 1.0;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramObserve);

void BM_FamilyLookup(benchmark::State& state) {
  // The slow path the hot layers deliberately avoid: mutex + map resolution
  // per call. Compare against BM_CounterInc to see why set_metrics caches.
  obs::MetricsRegistry reg;
  for (auto _ : state) {
    obs::catalog::rounds_total(reg, "trp", "intact").inc();
  }
}
BENCHMARK(BM_FamilyLookup);

void BM_SnapshotAndRenderPrometheus(benchmark::State& state) {
  obs::MetricsRegistry reg;
  // A registry shaped like a real run: the full catalog, a few series each.
  for (const char* proto : {"trp", "utrp"}) {
    obs::catalog::challenges_total(reg, proto).inc();
    obs::catalog::rounds_total(reg, proto, "intact").inc();
    obs::catalog::frame_size(reg, proto).observe(512.0);
    obs::catalog::sessions_total(reg, proto, "completed").inc();
    obs::catalog::session_duration_us(reg, proto).observe(5e5);
  }
  for (const char* dir : {"uplink", "downlink"}) {
    obs::catalog::frames_sent_total(reg, dir).inc(100);
    obs::catalog::bytes_sent_total(reg, dir).inc(10000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::render_prometheus(reg.snapshot()));
  }
}
BENCHMARK(BM_SnapshotAndRenderPrometheus);

/// One full TRP verification round; arg 0 toggles instrumentation. Compare
/// the two timings to get the instrumentation overhead on the hot path.
void BM_TrpRoundInstrumentation(benchmark::State& state) {
  util::Rng rng(3);
  const tag::TagSet set = tag::TagSet::make_random(500, rng);
  protocol::TrpServer server(set.ids(),
                             {.tolerated_missing = 10, .confidence = 0.95});
  obs::MetricsRegistry reg;
  if (state.range(0) != 0) server.set_metrics(&reg);
  for (auto _ : state) {
    const auto c = server.issue_challenge(rng);
    const auto expected = server.expected_bitstring(c);
    benchmark::DoNotOptimize(server.verify(c, expected));
  }
  state.SetLabel(state.range(0) != 0 ? "instrumented" : "plain");
}
BENCHMARK(BM_TrpRoundInstrumentation)->Arg(0)->Arg(1);

}  // namespace
