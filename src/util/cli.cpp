#include "util/cli.h"

#include <algorithm>
#include <stdexcept>

#include "util/expect.h"

namespace rfid::util {

CliArgs::CliArgs(int argc, const char* const* argv,
                 std::vector<std::string> allowed) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    RFID_EXPECT(arg.rfind("--", 0) == 0, "options must start with --: " + arg);
    arg.erase(0, 2);
    std::string key;
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      key = arg;
      // "--key value" form: consume the next token if it is not an option.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
    }
    check_allowed(key, allowed);
    values_[key] = value;
  }
}

void CliArgs::check_allowed(const std::string& key,
                            const std::vector<std::string>& allowed) const {
  if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
    std::string msg = "unknown option --" + key + "; allowed:";
    for (const auto& a : allowed) msg += " --" + a;
    throw std::invalid_argument(msg);
  }
}

bool CliArgs::has(const std::string& key) const { return values_.contains(key); }

std::optional<std::string> CliArgs::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& key, std::string fallback) const {
  const auto v = get(key);
  return v ? *v : std::move(fallback);
}

std::int64_t CliArgs::get_int_or(const std::string& key, std::int64_t fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  return std::stoll(*v);
}

double CliArgs::get_double_or(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  return std::stod(*v);
}

}  // namespace rfid::util
