#include "storage/journal.h"

#include <bit>
#include <cstring>
#include <span>

#include "hash/fnv.h"
#include "util/expect.h"

namespace rfid::storage {

namespace {

// Payload type discriminator (first payload byte).
enum class RecordKind : std::uint8_t {
  kEnroll = 1,
  kTrpRound = 2,
  kUtrpRound = 3,
  kResync = 4,
};

// Little-endian scalar encoding, independent of host byte order.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(std::string_view v) {
    u32(static_cast<std::uint32_t>(v.size()));
    out_.append(v);
  }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

// Throws std::invalid_argument past the end — scan_journal() converts that
// into a truncation point, so a rotted length field cannot crash recovery.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  [[nodiscard]] std::uint32_t u32() {
    const std::string_view b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[static_cast<std::size_t>(i)])) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    const std::string_view b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[static_cast<std::size_t>(i)])) << (8 * i);
    return v;
  }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] std::string_view bytes() { return take(u32()); }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  [[nodiscard]] std::string_view take(std::size_t n) {
    RFID_EXPECT(data_.size() - pos_ >= n, "journal payload truncated");
    const std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

void put_tags(ByteWriter& w, const tag::TagSet& tags) {
  w.u64(tags.size());
  for (const tag::Tag& t : tags.tags()) {
    w.u32(t.id().hi());
    w.u64(t.id().lo());
    w.u64(t.counter());
  }
}

[[nodiscard]] tag::TagSet get_tags(ByteReader& r) {
  const std::uint64_t count = r.u64();
  RFID_EXPECT(count <= (1ULL << 32), "implausible journal tag count");
  std::vector<tag::Tag> tags;
  tags.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t hi = r.u32();
    const std::uint64_t lo = r.u64();
    const std::uint64_t counter = r.u64();
    tags.emplace_back(tag::TagId(hi, lo), counter);
  }
  return tag::TagSet(std::move(tags));
}

void put_bitstring(ByteWriter& w, const bits::Bitstring& b) {
  w.u64(b.size());
  w.bytes(b.to_hex());
}

[[nodiscard]] bits::Bitstring get_bitstring(ByteReader& r) {
  const std::uint64_t size = r.u64();
  RFID_EXPECT(size <= (1ULL << 32), "implausible bitstring size");
  return bits::Bitstring::from_hex(size, std::string(r.bytes()));
}

[[nodiscard]] std::string encode_payload(const JournalRecord& record) {
  ByteWriter w;
  if (const auto* enroll = std::get_if<EnrollRecord>(&record)) {
    w.u8(static_cast<std::uint8_t>(RecordKind::kEnroll));
    w.u8(static_cast<std::uint8_t>(enroll->config.protocol));
    w.u64(enroll->config.policy.tolerated_missing);
    w.f64(enroll->config.policy.confidence);
    w.u8(static_cast<std::uint8_t>(enroll->config.policy.model));
    w.u64(enroll->config.comm_budget);
    w.u32(enroll->config.slack_slots);
    w.bytes(enroll->config.name);
    put_tags(w, enroll->tags);
  } else if (const auto* trp = std::get_if<TrpRoundRecord>(&record)) {
    w.u8(static_cast<std::uint8_t>(RecordKind::kTrpRound));
    w.u64(trp->group);
    w.u32(trp->challenge.frame_size);
    w.u64(trp->challenge.r);
    put_bitstring(w, trp->reported);
  } else if (const auto* utrp = std::get_if<UtrpRoundRecord>(&record)) {
    w.u8(static_cast<std::uint8_t>(RecordKind::kUtrpRound));
    w.u64(utrp->group);
    w.u32(utrp->challenge.frame_size);
    w.u32(static_cast<std::uint32_t>(utrp->challenge.seeds.size()));
    for (const std::uint64_t seed : utrp->challenge.seeds) w.u64(seed);
    w.u8(utrp->deadline_met ? 1 : 0);
    put_bitstring(w, utrp->reported);
  } else {
    const auto& resync = std::get<ResyncRecord>(record);
    w.u8(static_cast<std::uint8_t>(RecordKind::kResync));
    w.u64(resync.group);
    put_tags(w, resync.audited);
  }
  return w.take();
}

[[nodiscard]] JournalRecord decode_payload(std::string_view payload) {
  ByteReader r(payload);
  JournalRecord record;
  switch (static_cast<RecordKind>(r.u8())) {
    case RecordKind::kEnroll: {
      EnrollRecord enroll;
      const auto protocol = r.u8();
      RFID_EXPECT(protocol <= 1, "bad protocol kind in enroll record");
      enroll.config.protocol = static_cast<server::ProtocolKind>(protocol);
      enroll.config.policy.tolerated_missing = r.u64();
      enroll.config.policy.confidence = r.f64();
      const auto model = r.u8();
      RFID_EXPECT(model <= 1, "bad slot model in enroll record");
      enroll.config.policy.model = static_cast<math::EmptySlotModel>(model);
      enroll.config.comm_budget = r.u64();
      enroll.config.slack_slots = r.u32();
      enroll.config.name = std::string(r.bytes());
      enroll.tags = get_tags(r);
      record = std::move(enroll);
      break;
    }
    case RecordKind::kTrpRound: {
      TrpRoundRecord trp;
      trp.group = r.u64();
      trp.challenge.frame_size = r.u32();
      trp.challenge.r = r.u64();
      trp.reported = get_bitstring(r);
      record = std::move(trp);
      break;
    }
    case RecordKind::kUtrpRound: {
      UtrpRoundRecord utrp;
      utrp.group = r.u64();
      utrp.challenge.frame_size = r.u32();
      const std::uint32_t seeds = r.u32();
      utrp.challenge.seeds.reserve(seeds);
      for (std::uint32_t i = 0; i < seeds; ++i) utrp.challenge.seeds.push_back(r.u64());
      utrp.deadline_met = r.u8() != 0;
      utrp.reported = get_bitstring(r);
      record = std::move(utrp);
      break;
    }
    case RecordKind::kResync: {
      ResyncRecord resync;
      resync.group = r.u64();
      resync.audited = get_tags(r);
      record = std::move(resync);
      break;
    }
    default:
      RFID_EXPECT(false, "unknown journal record kind");
  }
  RFID_EXPECT(r.exhausted(), "trailing bytes in journal record");
  return record;
}

[[nodiscard]] std::uint64_t checksum_of(std::string_view payload) {
  return hash::fnv1a64(std::span(
      reinterpret_cast<const std::byte*>(payload.data()), payload.size()));
}

}  // namespace

std::string encode_record(const JournalRecord& record) {
  const std::string payload = encode_payload(record);
  ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u64(checksum_of(payload));
  std::string out = frame.take();
  out += payload;
  return out;
}

JournalScan scan_journal(std::string_view bytes) {
  JournalScan scan;
  if (bytes.substr(0, kJournalMagic.size()) != kJournalMagic) {
    scan.dropped_bytes = bytes.size();
    return scan;
  }
  scan.header_valid = true;
  std::size_t pos = kJournalMagic.size();
  scan.valid_bytes = pos;
  constexpr std::size_t kFrameHeader = 4 + 8;
  while (bytes.size() - pos >= kFrameHeader) {
    ByteReader frame(bytes.substr(pos, kFrameHeader));
    const std::uint32_t len = frame.u32();
    const std::uint64_t declared = frame.u64();
    if (bytes.size() - pos - kFrameHeader < len) break;  // torn tail
    const std::string_view payload = bytes.substr(pos + kFrameHeader, len);
    if (checksum_of(payload) != declared) break;  // torn or rotted
    try {
      scan.records.push_back(decode_payload(payload));
    } catch (const std::invalid_argument&) {
      break;  // checksum collision on garbage; treat as corruption
    }
    pos += kFrameHeader + len;
    scan.valid_bytes = pos;
  }
  scan.dropped_bytes = bytes.size() - scan.valid_bytes;
  return scan;
}

}  // namespace rfid::storage
