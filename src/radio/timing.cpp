#include "radio/timing.h"

#include <cmath>

namespace rfid::radio {

std::uint64_t communication_budget(double deadline_us, double honest_min_scan_us,
                                   double comm_roundtrip_us) noexcept {
  if (comm_roundtrip_us <= 0.0) return 0;
  const double slack = deadline_us - honest_min_scan_us;
  if (slack <= 0.0) return 0;
  return static_cast<std::uint64_t>(std::floor(slack / comm_roundtrip_us));
}

}  // namespace rfid::radio
