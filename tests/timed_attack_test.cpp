// Tests for the deadline-priced attack (Sec. 5.4's two-pronged defense).
#include <gtest/gtest.h>

#include "attack/timed_attack.h"
#include "protocol/utrp.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::attack::honest_utrp_scan_us;
using rfid::attack::run_timed_utrp_attack;
using rfid::protocol::UtrpReader;
using rfid::protocol::UtrpServer;
using rfid::tag::TagSet;

constexpr double kCommUs = 2000.0;  // 2 ms per reader-to-reader round trip

struct Scenario {
  TagSet remaining;
  TagSet stolen;
  UtrpServer server;
  rfid::protocol::UtrpChallenge challenge;
};

Scenario make_scenario(std::uint64_t seed, std::uint64_t n = 300,
                       std::uint64_t m = 5, std::uint64_t budget = 20) {
  rfid::util::Rng rng(seed);
  TagSet set = TagSet::make_random(n, rng);
  UtrpServer server(set, {.tolerated_missing = m, .confidence = 0.95}, budget);
  TagSet stolen = set.steal_random(m + 1, rng);
  auto challenge = server.issue_challenge(rng);
  return Scenario{std::move(set), std::move(stolen), std::move(server),
                  std::move(challenge)};
}

TEST(TimedAttack, CommunicationTimeScalesWithBudget) {
  const rfid::radio::TimingModel timing;
  auto a = make_scenario(1);
  const auto few = run_timed_utrp_attack(a.remaining.tags(), a.stolen.tags(),
                                         rfid::hash::SlotHasher{}, a.challenge,
                                         5, timing, kCommUs);
  auto b = make_scenario(1);
  const auto many = run_timed_utrp_attack(b.remaining.tags(), b.stolen.tags(),
                                          rfid::hash::SlotHasher{}, b.challenge,
                                          200, timing, kCommUs);
  EXPECT_LE(few.comms_used, 5u);
  EXPECT_GT(many.comms_used, few.comms_used);
  EXPECT_GT(many.comm_time_us, few.comm_time_us);
  EXPECT_DOUBLE_EQ(few.comm_time_us,
                   static_cast<double>(few.comms_used) * kCommUs);
}

TEST(TimedAttack, ElapsedDecomposesExactly) {
  const rfid::radio::TimingModel timing;
  auto s = make_scenario(2);
  const auto outcome = run_timed_utrp_attack(
      s.remaining.tags(), s.stolen.tags(), rfid::hash::SlotHasher{},
      s.challenge, 20, timing, kCommUs);
  EXPECT_DOUBLE_EQ(outcome.elapsed_us,
                   outcome.air_time_us + outcome.comm_time_us);
  EXPECT_GT(outcome.air_time_us, 0.0);
}

TEST(TimedAttack, HonestScanSetsTheBaseline) {
  // An honest reader's scan time must not include any comm overhead; the
  // attacker's air time is comparable, so the deadline margin is pure tcomm.
  const rfid::radio::TimingModel timing;
  rfid::util::Rng rng(3);
  TagSet set = TagSet::make_random(300, rng);
  const UtrpServer server(set, {.tolerated_missing = 5, .confidence = 0.95}, 20);
  const auto challenge = server.issue_challenge(rng);
  const UtrpReader reader;
  const auto scan = reader.scan(set.tags(), challenge);
  const double honest = honest_utrp_scan_us(scan.bitstring, scan.reseeds, timing);
  EXPECT_GT(honest, 0.0);

  auto s = make_scenario(3);
  const auto attack = run_timed_utrp_attack(
      s.remaining.tags(), s.stolen.tags(), rfid::hash::SlotHasher{},
      s.challenge, 20, timing, kCommUs);
  // Same frame size, similar composition: air times within a factor of two.
  EXPECT_LT(attack.air_time_us, honest * 2.0);
  EXPECT_GT(attack.air_time_us, honest * 0.5);
}

TEST(TimedAttack, TheAdversaryDilemmaIsReal) {
  // With the deadline set to the honest envelope plus the tolerated-budget
  // slack (t such that c = 20), an attacker using a much larger budget blows
  // the deadline; one respecting the budget usually fails the content check.
  const rfid::radio::TimingModel timing;
  int both_checks_passed = 0;
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    auto s = make_scenario(100 + static_cast<std::uint64_t>(t));
    // Honest envelope for this challenge (replay on a pristine copy).
    rfid::util::Rng env_rng(1);
    TagSet honest_copy = TagSet::make_random(300, env_rng);
    const UtrpReader reader;

    const double deadline =
        honest_utrp_scan_us(s.server.expected_bitstring(s.challenge),
                            /*reseeds≈*/s.challenge.frame_size / 4, timing) +
        20.0 * kCommUs;

    for (const std::uint64_t budget : {20ull, 400ull}) {
      auto sc = make_scenario(100 + static_cast<std::uint64_t>(t), 300, 5, 20);
      const auto outcome = run_timed_utrp_attack(
          sc.remaining.tags(), sc.stolen.tags(), rfid::hash::SlotHasher{},
          sc.challenge, budget, timing, kCommUs);
      const bool on_time = outcome.elapsed_us <= deadline;
      const auto verdict =
          sc.server.verify(sc.challenge, outcome.forged, on_time);
      if (verdict.intact) ++both_checks_passed;
    }
  }
  // Escapes require winning the content lottery at the allowed budget —
  // bounded well below alpha's complement across 80 attack attempts.
  EXPECT_LE(both_checks_passed, 10);
}

TEST(TimedAttack, RejectsNegativeLatency) {
  const rfid::radio::TimingModel timing;
  auto s = make_scenario(4);
  EXPECT_THROW(
      (void)run_timed_utrp_attack(s.remaining.tags(), s.stolen.tags(),
                                  rfid::hash::SlotHasher{}, s.challenge, 5,
                                  timing, -1.0),
      std::invalid_argument);
}

}  // namespace
