// Unit tests for the tag substrate: IDs, tag state machine, tag sets.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <unordered_set>

#include "hash/slot_hash.h"
#include "tag/tag.h"
#include "tag/tag_id.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::hash::SlotHasher;
using rfid::tag::Tag;
using rfid::tag::TagId;
using rfid::tag::TagSet;

// ---------------------------------------------------------------- tag id --

TEST(TagId, DefaultIsZero) {
  const TagId id;
  EXPECT_EQ(id.hi(), 0u);
  EXPECT_EQ(id.lo(), 0u);
  EXPECT_EQ(id.slot_word(), 0u);
}

TEST(TagId, SlotWordMixesHighBits) {
  const TagId a(1, 42);
  const TagId b(2, 42);
  EXPECT_NE(a.slot_word(), b.slot_word());
}

TEST(TagId, SlotWordPreservesLowWordDifferences) {
  const TagId a(7, 1);
  const TagId b(7, 2);
  EXPECT_NE(a.slot_word(), b.slot_word());
}

TEST(TagId, OrderingIsLexicographic) {
  EXPECT_LT(TagId(1, 99), TagId(2, 0));
  EXPECT_LT(TagId(1, 5), TagId(1, 6));
  EXPECT_EQ(TagId(3, 4), TagId(3, 4));
}

TEST(TagId, ToStringFormat) {
  const TagId id(0xdeadbeef, 0x0123456789abcdefULL);
  EXPECT_EQ(id.to_string(), "urn:epc:raw:deadbeef.0123456789abcdef");
}

// ------------------------------------------------------------------- tag --

TEST(Tag, FreshTagState) {
  const Tag t(TagId(1, 2));
  EXPECT_EQ(t.counter(), 0u);
  EXPECT_FALSE(t.silenced());
  EXPECT_EQ(t.id(), TagId(1, 2));
}

TEST(Tag, TrpSlotIsStateless) {
  const SlotHasher hasher;
  const Tag t(TagId(1, 99));
  const auto s1 = t.trp_slot(hasher, 7, 100);
  const auto s2 = t.trp_slot(hasher, 7, 100);
  EXPECT_EQ(s1, s2);
  EXPECT_LT(s1, 100u);
  EXPECT_EQ(t.counter(), 0u);  // TRP queries never touch the counter
}

TEST(Tag, UtrpSeedIncrementsCounterFirst) {
  const SlotHasher hasher;
  Tag t(TagId(1, 99));
  const auto slot = t.utrp_receive_seed(hasher, 7, 100);
  EXPECT_EQ(t.counter(), 1u);
  EXPECT_LT(slot, 100u);
  // Alg. 7 line 1-2: the pick uses the *new* counter value.
  EXPECT_EQ(slot, hasher.slot(TagId(1, 99).slot_word(), 7, 100, 1));
}

TEST(Tag, CounterMonotoneAcrossSeeds) {
  const SlotHasher hasher;
  Tag t(TagId(5, 5));
  for (std::uint64_t i = 1; i <= 20; ++i) {
    (void)t.utrp_receive_seed(hasher, i, 64);
    EXPECT_EQ(t.counter(), i);
  }
}

TEST(Tag, CounterSurvivesRoundBoundary) {
  // The anti-replay property: begin_round clears silencing but never the
  // counter.
  const SlotHasher hasher;
  Tag t(TagId(5, 5));
  (void)t.utrp_receive_seed(hasher, 1, 64);
  t.silence();
  t.begin_round();
  EXPECT_FALSE(t.silenced());
  EXPECT_EQ(t.counter(), 1u);
}

TEST(Tag, SameSeedDifferentCounterMovesSlot) {
  // Re-querying with identical (f, r) still yields a fresh pick — the
  // mechanism that defeats the rewind attack of Sec. 5.2/Fig. 3.
  const SlotHasher hasher;
  rfid::util::Rng rng(77);
  int moved = 0;
  constexpr int kTags = 500;
  for (int i = 0; i < kTags; ++i) {
    Tag t(TagId(static_cast<std::uint32_t>(rng()), rng()));
    const auto first = t.utrp_receive_seed(hasher, 42, 256);
    const auto second = t.utrp_receive_seed(hasher, 42, 256);
    if (first != second) ++moved;
  }
  EXPECT_GT(moved, kTags * 9 / 10);
}

// --------------------------------------------------------------- tag set --

TEST(TagSet, MakeRandomCreatesUniqueIds) {
  rfid::util::Rng rng(1);
  const TagSet set = TagSet::make_random(5000, rng);
  EXPECT_EQ(set.size(), 5000u);
  std::unordered_set<std::uint64_t> words;
  for (const Tag& t : set.tags()) words.insert(t.id().slot_word());
  EXPECT_EQ(words.size(), 5000u);
}

TEST(TagSet, MakeRandomZeroTags) {
  rfid::util::Rng rng(2);
  const TagSet set = TagSet::make_random(0, rng);
  EXPECT_TRUE(set.empty());
}

TEST(TagSet, IdsMatchTagOrder) {
  rfid::util::Rng rng(3);
  const TagSet set = TagSet::make_random(50, rng);
  const auto ids = set.ids();
  ASSERT_EQ(ids.size(), 50u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], set.at(i).id());
  }
}

TEST(TagSet, AtRangeChecks) {
  rfid::util::Rng rng(4);
  TagSet set = TagSet::make_random(3, rng);
  EXPECT_NO_THROW((void)set.at(2));
  EXPECT_THROW((void)set.at(3), std::invalid_argument);
}

TEST(TagSet, StealRandomPartitionsTheSet) {
  rfid::util::Rng rng(5);
  TagSet set = TagSet::make_random(100, rng);
  const auto before = set.ids();
  TagSet stolen = set.steal_random(10, rng);
  EXPECT_EQ(set.size(), 90u);
  EXPECT_EQ(stolen.size(), 10u);

  std::set<std::uint64_t> remaining_words;
  for (const Tag& t : set.tags()) remaining_words.insert(t.id().slot_word());
  for (const Tag& t : stolen.tags()) {
    EXPECT_FALSE(remaining_words.contains(t.id().slot_word()))
        << "stolen tag still present";
  }
  // Union equals the original set.
  std::set<std::uint64_t> all = remaining_words;
  for (const Tag& t : stolen.tags()) all.insert(t.id().slot_word());
  EXPECT_EQ(all.size(), before.size());
}

TEST(TagSet, StealAllAndNone) {
  rfid::util::Rng rng(6);
  TagSet set = TagSet::make_random(10, rng);
  const TagSet none = set.steal_random(0, rng);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(set.size(), 10u);
  const TagSet all = set.steal_random(10, rng);
  EXPECT_EQ(all.size(), 10u);
  EXPECT_TRUE(set.empty());
}

TEST(TagSet, StealMoreThanExistThrows) {
  rfid::util::Rng rng(7);
  TagSet set = TagSet::make_random(5, rng);
  EXPECT_THROW((void)set.steal_random(6, rng), std::invalid_argument);
}

TEST(TagSet, StealIsUniform) {
  // Every tag should be stolen roughly equally often across many trials.
  constexpr int kTrials = 20000;
  constexpr std::size_t kSetSize = 20;
  std::vector<int> stolen_count(kSetSize, 0);
  rfid::util::Rng make_rng(8);
  const TagSet proto = TagSet::make_random(kSetSize, make_rng);
  for (int t = 0; t < kTrials; ++t) {
    TagSet set = proto;  // copy, same IDs
    rfid::util::Rng rng(rfid::util::derive_seed(9, static_cast<std::uint64_t>(t)));
    const TagSet stolen = set.steal_random(1, rng);
    for (std::size_t i = 0; i < kSetSize; ++i) {
      if (proto.at(i).id() == stolen.at(0).id()) ++stolen_count[i];
    }
  }
  const double expected = static_cast<double>(kTrials) / kSetSize;
  double chi2 = 0.0;
  for (const int c : stolen_count) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 43.8);  // 19 dof, 99.9% quantile
}

TEST(TagSet, BeginRoundClearsSilenceFlags) {
  rfid::util::Rng rng(10);
  TagSet set = TagSet::make_random(5, rng);
  for (Tag& t : set.tags()) t.silence();
  set.begin_round();
  for (const Tag& t : set.tags()) EXPECT_FALSE(t.silenced());
}

}  // namespace
