// Unit tests for the radio substrate: slots, channel, frame simulation,
// timing model.
#include <gtest/gtest.h>

#include <cmath>

#include "radio/channel.h"
#include "radio/frame.h"
#include "radio/slot.h"
#include "radio/timing.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::hash::SlotHasher;
using rfid::radio::ChannelModel;
using rfid::radio::SlotOutcome;
using rfid::radio::TimingModel;
using rfid::tag::TagSet;

// ------------------------------------------------------------------ slot --

TEST(Slot, OccupiedPredicate) {
  EXPECT_FALSE(rfid::radio::occupied(SlotOutcome::kEmpty));
  EXPECT_TRUE(rfid::radio::occupied(SlotOutcome::kSingle));
  EXPECT_TRUE(rfid::radio::occupied(SlotOutcome::kCollision));
}

TEST(Slot, Names) {
  EXPECT_EQ(rfid::radio::to_string(SlotOutcome::kEmpty), "empty");
  EXPECT_EQ(rfid::radio::to_string(SlotOutcome::kSingle), "single");
  EXPECT_EQ(rfid::radio::to_string(SlotOutcome::kCollision), "collision");
}

// --------------------------------------------------------------- channel --

TEST(Channel, IdealChannelIsDeterministic) {
  rfid::util::Rng rng(1);
  const ChannelModel ideal;
  EXPECT_TRUE(ideal.ideal());
  EXPECT_EQ(rfid::radio::resolve_slot(0, ideal, rng), SlotOutcome::kEmpty);
  EXPECT_EQ(rfid::radio::resolve_slot(1, ideal, rng), SlotOutcome::kSingle);
  EXPECT_EQ(rfid::radio::resolve_slot(2, ideal, rng), SlotOutcome::kCollision);
  EXPECT_EQ(rfid::radio::resolve_slot(100, ideal, rng), SlotOutcome::kCollision);
}

TEST(Channel, TotalLossEmptiesEverySlot) {
  rfid::util::Rng rng(2);
  const ChannelModel lossy{.reply_loss_prob = 1.0, .capture_prob = 0.0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rfid::radio::resolve_slot(3, lossy, rng), SlotOutcome::kEmpty);
  }
}

TEST(Channel, LossRateIsRespectedStatistically) {
  rfid::util::Rng rng(3);
  const ChannelModel lossy{.reply_loss_prob = 0.3, .capture_prob = 0.0};
  int empty = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rfid::radio::resolve_slot(1, lossy, rng) == SlotOutcome::kEmpty) ++empty;
  }
  EXPECT_NEAR(static_cast<double>(empty) / kTrials, 0.3, 0.02);
}

TEST(Channel, FullCaptureTurnsCollisionsIntoSingles) {
  rfid::util::Rng rng(4);
  const ChannelModel capture{.reply_loss_prob = 0.0, .capture_prob = 1.0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rfid::radio::resolve_slot(5, capture, rng), SlotOutcome::kSingle);
  }
}

TEST(Channel, PartialCaptureIsStatistical) {
  rfid::util::Rng rng(5);
  const ChannelModel capture{.reply_loss_prob = 0.0, .capture_prob = 0.4};
  int singles = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rfid::radio::resolve_slot(2, capture, rng) == SlotOutcome::kSingle) {
      ++singles;
    }
  }
  EXPECT_NEAR(static_cast<double>(singles) / kTrials, 0.4, 0.02);
}

// ----------------------------------------------------------------- frame --

TEST(Frame, AssignTrpSlotsDeterministic) {
  rfid::util::Rng rng(6);
  const TagSet set = TagSet::make_random(100, rng);
  const SlotHasher hasher;
  const auto a = rfid::radio::assign_trp_slots(set.tags(), hasher, 9, 128);
  const auto b = rfid::radio::assign_trp_slots(set.tags(), hasher, 9, 128);
  EXPECT_EQ(a, b);
  for (const auto slot : a) EXPECT_LT(slot, 128u);
}

TEST(Frame, AssignTrpSlotsChangesWithR) {
  rfid::util::Rng rng(7);
  const TagSet set = TagSet::make_random(200, rng);
  const SlotHasher hasher;
  const auto a = rfid::radio::assign_trp_slots(set.tags(), hasher, 1, 512);
  const auto b = rfid::radio::assign_trp_slots(set.tags(), hasher, 2, 512);
  EXPECT_NE(a, b);
}

TEST(Frame, OccupancyHistogramCounts) {
  const std::vector<std::uint32_t> choices{0, 0, 3, 3, 3, 7};
  const auto hist = rfid::radio::occupancy_histogram(choices, 8);
  EXPECT_EQ(hist[0], 2u);
  EXPECT_EQ(hist[3], 3u);
  EXPECT_EQ(hist[7], 1u);
  EXPECT_EQ(hist[1], 0u);
}

TEST(Frame, OccupancyRejectsOutOfFrameChoice) {
  const std::vector<std::uint32_t> choices{9};
  EXPECT_THROW((void)rfid::radio::occupancy_histogram(choices, 8),
               std::invalid_argument);
}

TEST(Frame, SimulateFrameClassifiesSlots) {
  rfid::util::Rng rng(8);
  const TagSet set = TagSet::make_random(300, rng);
  const SlotHasher hasher;
  const auto obs =
      rfid::radio::simulate_frame(set.tags(), hasher, 42, 300, {}, rng);
  EXPECT_EQ(obs.outcomes.size(), 300u);
  EXPECT_EQ(obs.bitstring.size(), 300u);
  EXPECT_EQ(obs.empty_slots + obs.single_slots + obs.collision_slots, 300u);
  // Bitstring 1s = occupied slots.
  EXPECT_EQ(obs.bitstring.count(), obs.single_slots + obs.collision_slots);
  // Every tag replied somewhere: singles + colliders account for all 300.
  EXPECT_GT(obs.single_slots, 0u);
}

TEST(Frame, SimulateFrameIdealOccupancyMatchesBallsInBins) {
  // Load factor 1: empty fraction ~ 1/e.
  rfid::util::Rng rng(9);
  const TagSet set = TagSet::make_random(2000, rng);
  const SlotHasher hasher;
  const auto obs =
      rfid::radio::simulate_frame(set.tags(), hasher, 5, 2000, {}, rng);
  const double empty_fraction = static_cast<double>(obs.empty_slots) / 2000.0;
  EXPECT_NEAR(empty_fraction, std::exp(-1.0), 0.05);
}

TEST(Frame, LossyChannelIncreasesEmptySlots) {
  rfid::util::Rng rng(10);
  const TagSet set = TagSet::make_random(500, rng);
  const SlotHasher hasher;
  const auto ideal =
      rfid::radio::simulate_frame(set.tags(), hasher, 5, 600, {}, rng);
  const auto lossy = rfid::radio::simulate_frame(
      set.tags(), hasher, 5, 600, {.reply_loss_prob = 0.5, .capture_prob = 0.0},
      rng);
  EXPECT_GT(lossy.empty_slots, ideal.empty_slots);
}

TEST(Frame, ZeroFrameSizeRejected) {
  rfid::util::Rng rng(11);
  const TagSet set = TagSet::make_random(5, rng);
  const SlotHasher hasher;
  EXPECT_THROW(
      (void)rfid::radio::simulate_frame(set.tags(), hasher, 1, 0, {}, rng),
      std::invalid_argument);
}

TEST(Frame, EmptyTagSpanGivesAllZeroBitstring) {
  rfid::util::Rng rng(12);
  const SlotHasher hasher;
  const auto obs = rfid::radio::simulate_frame({}, hasher, 1, 64, {}, rng);
  EXPECT_EQ(obs.bitstring.count(), 0u);
  EXPECT_EQ(obs.empty_slots, 64u);
}

// ---------------------------------------------------------------- timing --

TEST(Timing, TrpScanAddsUp) {
  const TimingModel t;
  const double us = t.trp_scan_us(10, 5);
  EXPECT_DOUBLE_EQ(us, t.query_broadcast_us + 10 * t.empty_slot_us +
                           5 * t.short_reply_slot_us);
}

TEST(Timing, UtrpAddsReseedCost) {
  const TimingModel t;
  EXPECT_DOUBLE_EQ(t.utrp_scan_us(10, 5, 5),
                   t.trp_scan_us(10, 5) + 5 * t.reseed_broadcast_us);
}

TEST(Timing, CollectAllChargesIdSlots) {
  const TimingModel t;
  const double us = t.collect_all_us(4, 3, 2, 2);
  EXPECT_DOUBLE_EQ(us, 2 * t.query_broadcast_us + 4 * t.empty_slot_us +
                           5 * t.id_reply_slot_us);
}

TEST(Timing, IdSlotsDominateShortSlots) {
  // The premise of the paper's Fig. 4 caveat.
  const TimingModel t;
  EXPECT_GT(t.id_reply_slot_us, 3 * t.short_reply_slot_us);
}

TEST(Timing, CommunicationBudgetFormula) {
  // c = (t - STmin) / tcomm, floored.
  EXPECT_EQ(rfid::radio::communication_budget(1000.0, 500.0, 100.0), 5u);
  EXPECT_EQ(rfid::radio::communication_budget(1000.0, 999.0, 100.0), 0u);
  EXPECT_EQ(rfid::radio::communication_budget(1000.0, 1200.0, 100.0), 0u);
  EXPECT_EQ(rfid::radio::communication_budget(1000.0, 0.0, 0.0), 0u);
  EXPECT_EQ(rfid::radio::communication_budget(1049.0, 1000.0, 10.0), 4u);
}

}  // namespace
