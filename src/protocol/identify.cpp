#include "protocol/identify.h"

namespace rfid::protocol {

IdentifyResult identify_missing_tags(const std::vector<tag::TagId>& enrolled,
                                     std::span<const tag::Tag> present_tags,
                                     const hash::SlotHasher& hasher,
                                     const IdentifyConfig& config,
                                     util::Rng& rng) {
  const auto protocol =
      make_identification_protocol(IdentifyProtocolKind::kIterative, config);
  return protocol->identify(enrolled, present_tags, hasher, rng);
}

}  // namespace rfid::protocol
